(* statsize: command-line front end for statistical gate sizing.

   Subcommands:
     analyze  - statistical timing report of a circuit at given sizes
     size     - solve a sizing problem and report the result
     mc       - batched Monte Carlo sampling of the circuit delay distribution
     tables   - regenerate the paper's tables (same harness as bench/) *)

open Cmdliner

let model_of_ratio ratio =
  if ratio = 0. then Circuit.Sigma_model.Zero else Circuit.Sigma_model.Proportional ratio

(* ---- circuit selection ----------------------------------------------------- *)

let load_library = function
  | None -> Ok (Circuit.Cell.Library.default ())
  | Some path -> (
      match Circuit.Cell_file.parse_file path with
      | Ok lib -> Ok lib
      | Error e -> Error (Format.asprintf "%a" Circuit.Cell_file.pp_error e))

let load_circuit ~blif ~bench ~library_file ~circuit ~wire_load =
  match load_library library_file with
  | Error _ as e -> e
  | Ok library -> (
      match (blif, bench) with
      | Some _, Some _ -> Error "--blif and --bench are mutually exclusive"
      | Some path, None -> (
          match Circuit.Blif.parse_file ~wire_load ~library path with
          | Ok net -> Ok net
          | Error e -> Error (Format.asprintf "%a" Circuit.Blif.pp_error e))
      | None, Some path -> (
          match Circuit.Bench_format.parse_file ~wire_load ~library path with
          | Ok net -> Ok net
          | Error e -> Error (Format.asprintf "%a" Circuit.Bench_format.pp_error e))
      | None, None -> (
          match Circuit.Generate.by_name circuit with
          | Some net -> Ok net
          | None ->
              Error
                (Printf.sprintf
                   "unknown circuit %S (expected fig2|tree|chain|apex1|apex2|k2, or \
                    --blif/--bench FILE)"
                   circuit)))

let circuit_arg =
  let doc = "Built-in circuit: fig2, tree, chain, apex1, apex2 or k2." in
  Arg.(value & opt string "tree" & info [ "c"; "circuit" ] ~docv:"NAME" ~doc)

let blif_arg =
  let doc = "Read the circuit from a structural BLIF file instead." in
  Arg.(value & opt (some file) None & info [ "blif" ] ~docv:"FILE" ~doc)

let bench_arg =
  let doc = "Read the circuit from an ISCAS .bench file instead." in
  Arg.(value & opt (some file) None & info [ "bench" ] ~docv:"FILE" ~doc)

let library_arg =
  let doc = "Cell library file (default: the built-in library)." in
  Arg.(value & opt (some file) None & info [ "library" ] ~docv:"FILE" ~doc)

let wire_load_arg =
  let doc = "Wire capacitance per gate output for BLIF circuits." in
  Arg.(value & opt float 1.0 & info [ "wire-load" ] ~docv:"CAP" ~doc)

let sigma_ratio_arg =
  let doc =
    "Sigma model ratio r in sigma_t = r * mu_t (0 disables uncertainty; the \
     paper uses 0.25)."
  in
  Arg.(value & opt float 0.25 & info [ "sigma-ratio" ] ~docv:"R" ~doc)

let sizes_arg =
  let doc = "Uniform speed factor applied to every gate (default 1.0)." in
  Arg.(value & opt float 1.0 & info [ "sizes" ] ~docv:"S" ~doc)

let jobs_arg =
  let doc =
    "Evaluate the statistical timing sweeps on N domains (a Util.Pool; results \
     are bit-identical to the serial path)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let profile_arg =
  let doc =
    "Write instrumentation counters and phase timings (JSON) to $(docv) on exit."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

(* Run [f] with the pool/instrumentation environment the common [--jobs]
   and [--profile] flags describe, dumping the profile afterwards. *)
let with_runtime ~jobs ~profile f =
  if jobs < 1 then begin
    Printf.eprintf "statsize: --jobs must be >= 1\n";
    exit 1
  end;
  if profile <> None then Util.Instr.enable ();
  let pool = if jobs > 1 then Some (Util.Pool.create ~jobs ()) else None in
  Fun.protect
    ~finally:(fun () -> Option.iter Util.Pool.shutdown pool)
    (fun () ->
      let result = f pool in
      (match profile with
      | None -> ()
      | Some path -> (
          (* ~all: a counter that stayed zero (no recoveries engaged, no
             requests shed) is evidence and must appear in the dump. *)
          let json = Util.Instr.to_json (Util.Instr.snapshot ~all:true ()) in
          match
            Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc json)
          with
          | () -> Printf.printf "profile written to %s\n" path
          | exception Sys_error msg ->
              Printf.eprintf "statsize: cannot write profile: %s\n" msg;
              exit 1));
      result)

(* ---- analyze ----------------------------------------------------------------- *)

let analyze_cmd =
  let run circuit blif bench library_file wire_load sigma_ratio size mc cssta crit
      json jobs profile =
    match load_circuit ~blif ~bench ~library_file ~circuit ~wire_load with
    | Error msg ->
        Printf.eprintf "statsize: %s\n" msg;
        exit 1
    | Ok net ->
        with_runtime ~jobs ~profile @@ fun pool ->
        let model = model_of_ratio sigma_ratio in
        let n = Circuit.Netlist.n_gates net in
        let sizes =
          Array.init n (fun i ->
              min size (Circuit.Netlist.gate net i).Circuit.Netlist.cell.Circuit.Cell.max_size)
        in
        if json then begin
          (* The serve protocol's analyze "result" object, emitted from a
             batch evaluation: byte-equality against a daemon reply's
             "result" member is Int64 bit-identity of the floats
             (Serve.Json prints exact round-trip decimals). *)
          let res = Sta.Ssta.analyze ?pool ~model net ~sizes in
          print_endline
            (Serve.Json.to_string
               (Serve.Protocol.result_json
                  (Serve.Protocol.Analysis
                     {
                       mu = Statdelay.Normal.mu res.Sta.Ssta.circuit;
                       var = Statdelay.Normal.var res.Sta.Ssta.circuit;
                       area = Circuit.Netlist.area net ~sizes;
                       n_gates = n;
                     })));
          exit 0
        end;
        Format.printf "%a@." Circuit.Netlist.pp_summary net;
        let res = Sta.Ssta.analyze ?pool ~model net ~sizes in
        let c = res.Sta.Ssta.circuit in
        let d = Sta.Dsta.analyze net ~sizes in
        Printf.printf "deterministic worst-case delay: %.4f\n" d.Sta.Dsta.circuit;
        Printf.printf "statistical delay: mu = %.4f, sigma = %.4f\n"
          (Statdelay.Normal.mu c) (Statdelay.Normal.sigma c);
        List.iter
          (fun k ->
            Printf.printf "  mu + %gsigma = %.4f\n" k
              (Statdelay.Normal.mu_plus_k_sigma c k))
          [ 1.; 3. ];
        Printf.printf "area (sum of speed factors): %.2f\n"
          (Circuit.Netlist.area net ~sizes);
        if cssta then begin
          let correlated = (Sta.Cssta.analyze ~model net ~sizes).Sta.Cssta.circuit in
          Printf.printf
            "correlation-aware (CSSTA): mu = %.4f, sigma = %.4f (reconvergence-corrected)\n"
            (Statdelay.Normal.mu correlated)
            (Statdelay.Normal.sigma correlated)
        end;
        if mc > 0 then begin
          let samples =
            Sta.Yield.sample_circuit_delays ~rng:(Util.Rng.create 1) ~model net ~sizes
              ~n:mc
          in
          let st = Util.Stats.of_array samples in
          Printf.printf "Monte Carlo (%d samples): mu = %.4f, sigma = %.4f\n" mc
            (Util.Stats.mean st) (Util.Stats.std_dev st)
        end;
        if crit > 0 then begin
          let r = Sta.Crit.monte_carlo ~model net ~sizes ~n:crit in
          Printf.printf "most critical gates (over %d samples):\n" crit;
          List.iteri
            (fun i (name, c) ->
              if i < 10 && c > 0. then Printf.printf "  %-12s %.1f%%\n" name (100. *. c))
            (Sta.Crit.ranked r net)
        end
  in
  let mc_arg =
    let doc = "Validate the analytic result with N Monte Carlo samples." in
    Arg.(value & opt int 0 & info [ "mc" ] ~docv:"N" ~doc)
  in
  let cssta_arg =
    let doc = "Also run the correlation-aware SSTA (reconvergence-corrected sigma)." in
    Arg.(value & flag & info [ "cssta" ] ~doc)
  in
  let crit_arg =
    let doc = "Report gate criticalities from N Monte Carlo samples." in
    Arg.(value & opt int 0 & info [ "crit" ] ~docv:"N" ~doc)
  in
  let json_arg =
    let doc =
      "Emit only the serve-protocol analyze result object (exact round-trip \
       floats; byte-comparable to a daemon reply's 'result' member)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let term =
    Term.(
      const run $ circuit_arg $ blif_arg $ bench_arg $ library_arg $ wire_load_arg
      $ sigma_ratio_arg $ sizes_arg $ mc_arg $ cssta_arg $ crit_arg $ json_arg
      $ jobs_arg $ profile_arg)
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Statistical timing report of a circuit at fixed sizes")
    term

(* ---- size --------------------------------------------------------------------- *)

let objective_of ~objective ~k ~bound ~mu =
  match (objective, bound, mu) with
  | "min-area", None, _ -> Ok Sizing.Objective.Min_area
  | "min-area", Some b, _ -> Ok (Sizing.Objective.Min_area_bounded { k; bound = b })
  | "min-delay", _, _ -> Ok (Sizing.Objective.Min_delay k)
  | "min-sigma", _, Some m -> Ok (Sizing.Objective.Min_sigma { mu = m })
  | "max-sigma", _, Some m -> Ok (Sizing.Objective.Max_sigma { mu = m })
  | ("min-sigma" | "max-sigma"), _, None ->
      Error "min-sigma/max-sigma need --mu TARGET"
  | other, _, _ ->
      Error
        (Printf.sprintf
           "unknown objective %S (expected min-delay|min-area|min-sigma|max-sigma)" other)

let size_cmd =
  let run circuit blif bench library_file wire_load sigma_ratio objective k bound mu
      print_sizes mc deadline max_evals no_recovery no_incremental warm_start jobs
      profile =
    match load_circuit ~blif ~bench ~library_file ~circuit ~wire_load with
    | Error msg ->
        Printf.eprintf "statsize: %s\n" msg;
        exit 1
    | Ok net -> (
        match objective_of ~objective ~k ~bound ~mu with
        | Error msg ->
            Printf.eprintf "statsize: %s\n" msg;
            exit 1
        | Ok obj ->
            (match deadline with
            | Some d when d <= 0. ->
                Printf.eprintf "statsize: --deadline must be positive\n";
                exit 1
            | _ -> ());
            (match max_evals with
            | Some m when m <= 0 ->
                Printf.eprintf "statsize: --max-evals must be positive\n";
                exit 1
            | _ -> ());
            let warm =
              match warm_start with
              | "none" -> `None
              | "gp" -> `Gp
              | "baseline" -> `Baseline
              | s ->
                  Printf.eprintf
                    "statsize: unknown --warm-start %S (expected none, gp or \
                     baseline)\n"
                    s;
                  exit 1
            in
            with_runtime ~jobs ~profile @@ fun pool ->
            let model = model_of_ratio sigma_ratio in
            let options =
              {
                Sizing.Engine.default_options with
                Sizing.Engine.deadline;
                Sizing.Engine.max_evaluations = max_evals;
                Sizing.Engine.recovery = not no_recovery;
                Sizing.Engine.incremental = not no_incremental;
                Sizing.Engine.warm_start = warm;
              }
            in
            let s = Sizing.Engine.solve ~options ?pool ~model net obj in
            Format.printf "%a@." Sizing.Report.pp_solution s;
            if print_sizes then
              List.iter
                (fun (name, sz) -> Printf.printf "  S_%s = %.3f\n" name sz)
                (Sizing.Report.speed_factors net s);
            (match bound with
            | Some deadline when mc > 0 ->
                let y =
                  Sta.Yield.monte_carlo ~rng:(Util.Rng.create 1) ~model net
                    ~sizes:s.Sizing.Engine.sizes ~deadline ~n:mc
                in
                Printf.printf "Monte Carlo yield at D = %g: %.1f%%\n" deadline (100. *. y)
            | _ -> ());
            (* A solve that did not end Converged is a failure, even when the
               ladder degraded gracefully: print the machine-readable
               diagnosis and exit non-zero so scripts cannot mistake it for
               a clean result. *)
            if not s.Sizing.Engine.converged then begin
              print_endline (Sizing.Report.diagnosis_json s);
              exit 2
            end)
  in
  let objective_arg =
    let doc = "Objective: min-delay, min-area, min-sigma or max-sigma." in
    Arg.(value & opt string "min-delay" & info [ "o"; "objective" ] ~docv:"OBJ" ~doc)
  in
  let k_arg =
    let doc = "Guard band factor k in mu + k*sigma (0, 1 or 3 in the paper)." in
    Arg.(value & opt float 0. & info [ "k" ] ~docv:"K" ~doc)
  in
  let bound_arg =
    let doc = "Delay bound D: with min-area, minimises area s.t. mu+k*sigma <= D." in
    Arg.(value & opt (some float) None & info [ "bound" ] ~docv:"D" ~doc)
  in
  let mu_arg =
    let doc = "Fixed mean delay for min-sigma / max-sigma." in
    Arg.(value & opt (some float) None & info [ "mu" ] ~docv:"MU" ~doc)
  in
  let print_sizes_arg =
    let doc = "Print the per-gate speed factors." in
    Arg.(value & flag & info [ "print-sizes" ] ~doc)
  in
  let mc_arg =
    let doc = "Validate a delay bound with N Monte Carlo samples." in
    Arg.(value & opt int 0 & info [ "mc" ] ~docv:"N" ~doc)
  in
  let deadline_arg =
    let doc =
      "Wall-clock budget in seconds for the whole solve (including any \
       recovery attempts); an expired budget returns the best iterate seen \
       with a 'deadline' diagnosis."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let max_evals_arg =
    let doc = "Budget on objective/constraint evaluations across all attempts." in
    Arg.(value & opt (some int) None & info [ "max-evals" ] ~docv:"N" ~doc)
  in
  let no_recovery_arg =
    let doc =
      "Disable the recovery ladder: report the first attempt's typed failure \
       instead of retrying."
    in
    Arg.(value & flag & info [ "no-recovery" ] ~doc)
  in
  let no_incremental_arg =
    let doc =
      "Disable incremental (dirty-cone) re-timing between solver evaluations \
       and run a full SSTA sweep per evaluation.  Results are bit-identical \
       either way; with --profile, the incr.* counters show what the cache \
       saved."
    in
    Arg.(value & flag & info [ "no-incremental" ] ~doc)
  in
  let warm_start_arg =
    let doc =
      "Start the solve from a surrogate's solution: 'gp' solves the mean-model \
       geometric program first (globally optimal on the mean), 'baseline' runs \
       the deterministic greedy, 'none' (default) uses the standard start."
    in
    Arg.(value & opt string "none" & info [ "warm-start" ] ~docv:"KIND" ~doc)
  in
  let term =
    Term.(
      const run $ circuit_arg $ blif_arg $ bench_arg $ library_arg $ wire_load_arg
      $ sigma_ratio_arg $ objective_arg $ k_arg $ bound_arg $ mu_arg $ print_sizes_arg
      $ mc_arg $ deadline_arg $ max_evals_arg $ no_recovery_arg $ no_incremental_arg
      $ warm_start_arg $ jobs_arg $ profile_arg)
  in
  Cmd.v (Cmd.info "size" ~doc:"Solve a statistical gate sizing problem") term

(* ---- gp ------------------------------------------------------------------------ *)

let gp_cmd =
  let run circuit blif bench library_file wire_load bound area_budget equal_area
      print_sizes jobs profile =
    match load_circuit ~blif ~bench ~library_file ~circuit ~wire_load with
    | Error msg ->
        Printf.eprintf "statsize: %s\n" msg;
        exit 1
    | Ok net ->
        let gp_obj =
          match (bound, area_budget, equal_area) with
          | Some _, Some _, _ | Some _, _, true | _, Some _, true ->
              Printf.eprintf
                "statsize: --bound, --area-budget and --equal-area are mutually \
                 exclusive\n";
              exit 1
          | Some d, None, false -> Sizing.Gp.Min_area { delay_bound = d }
          | None, Some a, false -> Sizing.Gp.Min_delay { area_budget = Some a }
          | None, None, true ->
              (* Equal-area differential: budget the GP at the greedy
                 baseline's area so the two are directly comparable. *)
              let base = Sizing.Baseline.minimize_delay net in
              Sizing.Gp.Min_delay { area_budget = Some base.Sizing.Baseline.area }
          | None, None, false -> Sizing.Gp.Min_delay { area_budget = None }
        in
        with_runtime ~jobs ~profile @@ fun _pool ->
        let sol = Sizing.Gp.solve net gp_obj in
        let describe =
          match gp_obj with
          | Sizing.Gp.Min_delay { area_budget = None } -> "min mean delay"
          | Sizing.Gp.Min_delay { area_budget = Some a } ->
              Printf.sprintf "min mean delay s.t. area <= %g" a
          | Sizing.Gp.Min_area { delay_bound = d } ->
              Printf.sprintf "min area s.t. mean delay <= %g" d
        in
        Printf.printf "GP %s on %s (%d gates)\n" describe (Circuit.Netlist.name net)
          (Circuit.Netlist.n_gates net);
        Printf.printf "  status          %s\n"
          (match sol.Sizing.Gp.status with
          | Sizing.Gp.Optimal -> "optimal"
          | Sizing.Gp.Infeasible -> "infeasible"
          | Sizing.Gp.Stalled -> "stalled");
        Printf.printf "  mean delay      %.6f  (epigraph T %.6f)\n"
          sol.Sizing.Gp.mean_delay sol.Sizing.Gp.delay;
        Printf.printf "  area            %.3f\n" sol.Sizing.Gp.area;
        Printf.printf "  problem         %d variables, %d constraints\n"
          sol.Sizing.Gp.n_variables sol.Sizing.Gp.n_constraints;
        Printf.printf "  barrier         %d centerings, %d Newton iterations\n"
          sol.Sizing.Gp.centerings sol.Sizing.Gp.newton_iterations;
        Printf.printf "  duality gap     %.3e\n" sol.Sizing.Gp.duality_gap;
        Format.printf "  KKT certificate %a@." Nlp.Check.pp_kkt sol.Sizing.Gp.kkt;
        Printf.printf "  wall time       %.3f s\n" sol.Sizing.Gp.wall_time;
        if print_sizes then
          Array.iter
            (fun (g : Circuit.Netlist.gate) ->
              Printf.printf "  S_%s = %.3f\n" g.Circuit.Netlist.gate_name
                sol.Sizing.Gp.sizes.(g.Circuit.Netlist.id))
            (Circuit.Netlist.gates net);
        (* Anything short of a certified optimum is a failure exit for
           scripts, mirroring `statsize size`. *)
        (match sol.Sizing.Gp.status with Sizing.Gp.Optimal -> () | _ -> exit 2)
  in
  let bound_arg =
    let doc = "Minimise area subject to mean delay <= $(docv) (the GP min-area form)." in
    Arg.(value & opt (some float) None & info [ "bound" ] ~docv:"D" ~doc)
  in
  let area_budget_arg =
    let doc = "Minimise mean delay subject to total area <= $(docv)." in
    Arg.(value & opt (some float) None & info [ "area-budget" ] ~docv:"A" ~doc)
  in
  let equal_area_arg =
    let doc =
      "Minimise mean delay at the deterministic baseline's area: the \
       equal-area GP-vs-greedy differential."
    in
    Arg.(value & flag & info [ "equal-area" ] ~doc)
  in
  let print_sizes_arg =
    let doc = "Print the per-gate speed factors." in
    Arg.(value & flag & info [ "print-sizes" ] ~doc)
  in
  let term =
    Term.(
      const run $ circuit_arg $ blif_arg $ bench_arg $ library_arg $ wire_load_arg
      $ bound_arg $ area_budget_arg $ equal_area_arg $ print_sizes_arg $ jobs_arg
      $ profile_arg)
  in
  Cmd.v
    (Cmd.info "gp"
       ~doc:
         "Solve the mean-delay geometric program and report its KKT certificate \
          and duality gap")
    term

(* ---- mc ------------------------------------------------------------------------ *)

let phi_of_k k =
  (* P(Z <= k) for the guard-band factor, via the library's own CDF. *)
  Sta.Yield.analytic (Statdelay.Normal.make ~mu:0. ~sigma:1.) ~deadline:k

let mc_cmd =
  let run circuit blif bench library_file wire_load sigma_ratio size samples batch
      seed budgets claim bound_fraction jobs profile =
    match load_circuit ~blif ~bench ~library_file ~circuit ~wire_load with
    | Error msg ->
        Printf.eprintf "statsize: %s\n" msg;
        exit 1
    | Ok net ->
        if samples <= 0 then begin
          Printf.eprintf "statsize: --samples must be >= 1\n";
          exit 1
        end;
        with_runtime ~jobs ~profile @@ fun pool ->
        let model = model_of_ratio sigma_ratio in
        Format.printf "%a@." Circuit.Netlist.pp_summary net;
        if claim then begin
          (* Section 4's conformance claim: size to mu + k sigma <= D and
             measure the realised yield against Phi(k). *)
          let unsized, _ =
            Sizing.Engine.evaluate ?pool ~model net
              ~sizes:(Circuit.Netlist.min_sizes net)
          in
          let deadline =
            bound_fraction *. Statdelay.Normal.mu unsized.Sta.Ssta.circuit
          in
          Printf.printf
            "guard-band conformance claim: D = %.4f (%g x unsized mu), %d samples\n"
            deadline bound_fraction samples;
          let t =
            Util.Table.create
              ~header:
                [ "constraint"; "mu"; "sigma"; "area"; "predicted"; "MC"; "95% CI" ]
          in
          for i = 1 to 6 do
            Util.Table.set_align t i Util.Table.Right
          done;
          List.iter
            (fun k ->
              let sol =
                Sizing.Engine.solve ?pool ~model net
                  (Sizing.Objective.Min_area_bounded { k; bound = deadline })
              in
              let mc =
                Sta.Mcsta.sample ?pool ~batch ~seed ~model net
                  ~sizes:sol.Sizing.Engine.sizes ~n:samples
              in
              let c = Sta.Mcsta.conformance mc ~budget:deadline in
              Util.Table.add_row t
                [
                  Printf.sprintf "mu + %gsigma <= D" k;
                  Printf.sprintf "%.4f" sol.Sizing.Engine.mu;
                  Printf.sprintf "%.4f" sol.Sizing.Engine.sigma;
                  Printf.sprintf "%.2f" sol.Sizing.Engine.area;
                  Printf.sprintf "%.2f%%" (100. *. phi_of_k k);
                  Printf.sprintf "%.2f%%" (100. *. c.Sta.Mcsta.p);
                  Printf.sprintf "[%.2f%%, %.2f%%]" (100. *. c.Sta.Mcsta.ci_lo)
                    (100. *. c.Sta.Mcsta.ci_hi);
                ])
            [ 0.; 1.; 3. ];
          Util.Table.print t;
          Printf.printf
            "(paper, Section 4: the three constraints should conform at 50%% / 84.1%% \
             / 99.8%%)\n"
        end
        else begin
          let n = Circuit.Netlist.n_gates net in
          let sizes =
            Array.init n (fun i ->
                min size
                  (Circuit.Netlist.gate net i).Circuit.Netlist.cell
                    .Circuit.Cell.max_size)
          in
          let res = Sta.Ssta.analyze ?pool ~model net ~sizes in
          let c = res.Sta.Ssta.circuit in
          Printf.printf "SSTA (analytic): mu = %.4f, sigma = %.4f\n"
            (Statdelay.Normal.mu c) (Statdelay.Normal.sigma c);
          let t0 = Util.Instr.now_ns () in
          let mc = Sta.Mcsta.sample ?pool ~batch ~seed ~model net ~sizes ~n:samples in
          let dt = float_of_int (Util.Instr.now_ns () - t0) /. 1e9 in
          Format.printf "%a@." Sta.Mcsta.pp_summary (Sta.Mcsta.summarize mc);
          Printf.printf "throughput: %.0f samples/s (%d domains, batch %d)\n"
            (float_of_int samples /. dt)
            (match pool with Some p -> Util.Pool.size p | None -> 1)
            batch;
          List.iter
            (fun budget ->
              let conf = Sta.Mcsta.conformance mc ~budget in
              Format.printf "%a | analytic %.2f%%@." Sta.Mcsta.pp_conformance conf
                (100. *. Sta.Yield.analytic c ~deadline:budget))
            budgets
        end
  in
  let samples_arg =
    let doc = "Number of Monte Carlo samples." in
    Arg.(value & opt int 20_000 & info [ "n"; "samples" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc =
      "Samples per propagation batch (results are identical for any batch size)."
    in
    Arg.(value & opt int 1024 & info [ "batch" ] ~docv:"B" ~doc)
  in
  let seed_arg =
    let doc = "Seed of the deterministic per-gate sample streams." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"S" ~doc)
  in
  let budget_arg =
    let doc =
      "Report P(Tmax <= D) with a binomial confidence interval (repeatable)."
    in
    Arg.(value & opt_all float [] & info [ "budget" ] ~docv:"D" ~doc)
  in
  let claim_arg =
    let doc =
      "Reproduce Section 4's conformance claim: size the circuit to mu + k*sigma \
       <= D for k = 0, 1, 3 and compare the Monte Carlo yield with Phi(k)."
    in
    Arg.(value & flag & info [ "claim" ] ~doc)
  in
  let bound_fraction_arg =
    let doc =
      "With --claim, the deadline as a fraction of the unsized mean delay \
       (loose enough that all three guard-band constraints bind)."
    in
    Arg.(value & opt float 0.92 & info [ "bound-fraction" ] ~docv:"F" ~doc)
  in
  let term =
    Term.(
      const run $ circuit_arg $ blif_arg $ bench_arg $ library_arg $ wire_load_arg
      $ sigma_ratio_arg $ sizes_arg $ samples_arg $ batch_arg $ seed_arg
      $ budget_arg $ claim_arg $ bound_fraction_arg $ jobs_arg $ profile_arg)
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Batched Monte Carlo SSTA: sample the circuit delay distribution \
          (deterministic across --jobs and --batch)")
    term

(* ---- tables -------------------------------------------------------------------- *)

let tables_cmd =
  let run which =
    let model = Circuit.Sigma_model.paper_default in
    let all =
      [
        "example"; "table2"; "table3"; "yield"; "mc"; "corner"; "ablation";
        "extensions"; "table1";
      ]
    in
    let selected = match which with [] -> all | w -> w in
    List.iter
      (fun name ->
        match name with
        | "table1" -> Experiments.Table1.(print (run ~model ()))
        | "table2" -> Experiments.Table2.(print (run ~model ()))
        | "table3" -> Experiments.Table3.(print (run ~model ()))
        | "example" -> Experiments.Example_fig2.(print (run ~model ()))
        | "yield" ->
            Experiments.Yield_exp.(print (run ~model ~net:(Circuit.Generate.tree ()) ()));
            Experiments.Yield_exp.(print (run ~model ()))
        | "mc" -> Experiments.Mc_accuracy.(print (run ~model ()))
        | "corner" -> Experiments.Corner_exp.(print (run ~model ()))
        | "scale" -> Experiments.Scale_exp.(print (run ~model ()))
        | "ablation" -> Experiments.Ablation.(print (run ()))
        | "extensions" ->
            Experiments.Nary_exp.(print (run ()));
            Experiments.Correlation_exp.(print (run ~model ()));
            Experiments.Power_exp.(print (run ~model ()))
        | other -> Printf.eprintf "statsize tables: skipping unknown table %S\n" other)
      selected
  in
  let which_arg =
    let doc = "Tables to regenerate (default: all)." in
    Arg.(value & pos_all string [] & info [] ~docv:"TABLE" ~doc)
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ which_arg)

(* ---- sim --------------------------------------------------------------------- *)

(* Deterministic simulation harness over the whole engine stack:
   generate a keyed-seed op sequence, run it with the invariant suite
   after every op, and on failure shrink to a minimal trace that
   `statsize sim --replay FILE` re-executes bit-for-bit.
   Exit codes: 0 clean, 1 invariant violation, 2 usage/IO error. *)
let sim_cmd =
  let parse_dag s =
    match String.split_on_char ',' s |> List.map int_of_string_opt with
    | [ Some n_gates; Some n_pis; Some depth; Some seed ] ->
        Ok (Sim.Op.Dag { n_gates; n_pis; depth; seed })
    | _ -> Error (Printf.sprintf "bad --dag spec %S (want N,PIS,DEPTH,SEED)" s)
  in
  let run seed n_ops circuit dag plant replay out no_shrink max_runs jobs profile =
    let code =
      with_runtime ~jobs ~profile @@ fun pool ->
    let pools = match pool with None -> [] | Some p -> [ (jobs, p) ] in
    let fail_usage msg =
      Printf.eprintf "statsize sim: %s\n" msg;
      2
    in
    (* Report a failing run; shrink + persist unless told not to. *)
    let report_failure (trace : Sim.Trace.t) (f : Sim.Harness.failure) =
      print_endline
        (Sim.Harness.describe_failure ~seed:trace.Sim.Trace.seed
           ~circuit:trace.Sim.Trace.circuit
           ~n_ops:(List.length trace.Sim.Trace.ops) f);
      if not no_shrink then begin
        let rerun t =
          match (Sim.Trace.run ~pools t).Sim.Harness.outcome with
          | Sim.Harness.Failed f -> Some f
          | Sim.Harness.Passed -> None
        in
        let shrunk = Sim.Shrink.minimize ~max_runs ~run:rerun trace f in
        Printf.printf
          "shrunk to %d ops (%d candidate runs); violating op: %s\n"
          (List.length shrunk.Sim.Shrink.trace.Sim.Trace.ops)
          shrunk.Sim.Shrink.runs
          (Sim.Op.to_line shrunk.Sim.Shrink.failure.Sim.Harness.op);
        Sim.Trace.save out shrunk.Sim.Shrink.trace;
        Printf.printf "minimal trace written to %s\n  replay: %s\n" out
          (Sim.Trace.replay_command out)
      end;
      1
    in
    match replay with
    | Some path -> (
        match Sim.Trace.load path with
        | Error msg -> fail_usage msg
        | Ok trace -> (
            let report = Sim.Trace.run ~pools trace in
            match report.Sim.Harness.outcome with
            | Sim.Harness.Passed ->
                Printf.printf "replay %s: %d ops, all invariants held\n" path
                  report.Sim.Harness.ops_run;
                (match trace.Sim.Trace.violation with
                | Some expected ->
                    Printf.printf
                      "note: trace expected violation %S but the run passed\n"
                      expected
                | None -> ());
                0
            | Sim.Harness.Failed f ->
                print_endline
                  (Sim.Harness.describe_failure ~seed:trace.Sim.Trace.seed
                     ~circuit:trace.Sim.Trace.circuit
                     ~n_ops:(List.length trace.Sim.Trace.ops) f);
                1))
    | None -> (
        let circuit_spec =
          match (circuit, dag) with
          | Some _, Some _ -> Error "--circuit and --dag are mutually exclusive"
          | Some name, None -> Ok (Sim.Op.Named name)
          | None, Some spec -> parse_dag spec
          | None, None -> Ok Sim.Gen.default.Sim.Gen.circuit
        in
        match circuit_spec with
        | Error msg -> fail_usage msg
        | Ok circuit -> (
            match
              try Ok (Sim.Gen.instantiate circuit)
              with Invalid_argument msg -> Error msg
            with
            | Error msg -> fail_usage msg
            | Ok net -> (
                let weights =
                  if plant then
                    { Sim.Gen.default_weights with Sim.Gen.corrupt = 2 }
                  else Sim.Gen.default_weights
                in
                let config =
                  { Sim.Gen.default with Sim.Gen.circuit; n_ops; weights }
                in
                let ops = Sim.Gen.sequence ~net ~seed config in
                let report = Sim.Harness.run_net ~pools ~seed net ops in
                match report.Sim.Harness.outcome with
                | Sim.Harness.Passed ->
                    Printf.printf
                      "seed %d: %d ops on %s, all invariants held (%d solves, %d \
                       faults injected)\n"
                      seed report.Sim.Harness.ops_run
                      (Sim.Op.circuit_flags circuit)
                      report.Sim.Harness.solves report.Sim.Harness.faults_fired;
                    0
                | Sim.Harness.Failed f ->
                    report_failure
                      { Sim.Trace.seed; circuit; ops; violation = None }
                      f)))
    in
    if code <> 0 then exit code
  in
  let seed_arg =
    let doc = "Run seed; op $(i,k) is a pure function of (seed, k)." in
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let ops_arg =
    let doc = "Number of ops to generate." in
    Arg.(value & opt int 200 & info [ "ops" ] ~docv:"K" ~doc)
  in
  let sim_circuit_arg =
    let doc = "Drive a built-in circuit (fig2, tree, chain, apex1, apex2, k2)." in
    Arg.(value & opt (some string) None & info [ "circuit" ] ~docv:"NAME" ~doc)
  in
  let dag_arg =
    let doc = "Drive a generated DAG: gates,pis,depth,seed (default 150,20,8,1)." in
    Arg.(value & opt (some string) None & info [ "dag" ] ~docv:"SPEC" ~doc)
  in
  let plant_arg =
    let doc =
      "Enable cache-corruption ops in the generator (a planted divergence the \
       invariant suite must catch; demonstrates shrinking)."
    in
    Arg.(value & flag & info [ "plant" ] ~doc)
  in
  let replay_arg =
    let doc = "Re-execute a saved trace file instead of generating ops." in
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let out_arg =
    let doc = "Where to write the shrunk trace on failure." in
    Arg.(value & opt string "sim_trace.txt" & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let no_shrink_arg =
    let doc = "Report the first failure without shrinking it." in
    Arg.(value & flag & info [ "no-shrink" ] ~doc)
  in
  let max_runs_arg =
    let doc = "Candidate-run budget for the shrinker." in
    Arg.(value & opt int 400 & info [ "max-runs" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "Deterministic randomized simulation of the engine stack with \
          automatic shrinking")
    Term.(
      const run $ seed_arg $ ops_arg $ sim_circuit_arg $ dag_arg $ plant_arg
      $ replay_arg $ out_arg $ no_shrink_arg $ max_runs_arg $ jobs_arg
      $ profile_arg)

(* ---- serve -------------------------------------------------------------------- *)

(* Fault spec: KIND[@TRIGGER] with KIND one of nan-value, inf-value,
   nan-gradient, inf-gradient, perturb:AMP and TRIGGER one of always
   (default), first:N, at:N.  E.g. "nan-value@always". *)
let parse_fault_spec s =
  let kind_s, trig_s =
    match String.index_opt s '@' with
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
    | None -> (s, None)
  in
  let kind =
    match kind_s with
    | "nan-value" -> Ok Util.Fault.Nan_value
    | "inf-value" -> Ok Util.Fault.Inf_value
    | "nan-gradient" -> Ok Util.Fault.Nan_gradient
    | "inf-gradient" -> Ok Util.Fault.Inf_gradient
    | k when String.length k > 8 && String.sub k 0 8 = "perturb:" -> (
        match float_of_string_opt (String.sub k 8 (String.length k - 8)) with
        | Some amp -> Ok (Util.Fault.Perturb amp)
        | None -> Error (Printf.sprintf "bad perturb amplitude in %S" s))
    | _ -> Error (Printf.sprintf "unknown fault kind %S" kind_s)
  in
  let trigger =
    match trig_s with
    | None | Some "always" -> Ok Util.Fault.Always
    | Some t when String.length t > 6 && String.sub t 0 6 = "first:" -> (
        match int_of_string_opt (String.sub t 6 (String.length t - 6)) with
        | Some n -> Ok (Util.Fault.First n)
        | None -> Error (Printf.sprintf "bad trigger in %S" s))
    | Some t when String.length t > 3 && String.sub t 0 3 = "at:" -> (
        match int_of_string_opt (String.sub t 3 (String.length t - 3)) with
        | Some n -> Ok (Util.Fault.At n)
        | None -> Error (Printf.sprintf "bad trigger in %S" s))
    | Some t -> Error (Printf.sprintf "unknown fault trigger %S" t)
  in
  match (kind, trigger) with
  | Ok kind, Ok trigger -> Ok { Util.Fault.kind; component = None; trigger }
  | (Error _ as e), _ | _, (Error _ as e) -> e

(* Line client for a daemon on a Unix socket: pumps stdin lines to the
   socket, prints reply lines, and exits once every request sent has
   been answered. *)
let run_client path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect sock (Unix.ADDR_UNIX path)
   with Unix.Unix_error (e, _, _) ->
     Printf.eprintf "statsize serve --connect: %s: %s\n" path
       (Unix.error_message e);
     exit 1);
  let sent = Atomic.make 0 and received = Atomic.make 0 in
  let closed = Atomic.make false in
  let printer =
    Thread.create
      (fun () ->
        let chunk = Bytes.create 4096 in
        let buf = Buffer.create 256 in
        let rec go () =
          match Unix.read sock chunk 0 (Bytes.length chunk) with
          | 0 -> Atomic.set closed true
          | n ->
              for i = 0 to n - 1 do
                let c = Bytes.get chunk i in
                if c = '\n' then begin
                  print_endline (Buffer.contents buf);
                  flush stdout;
                  Buffer.clear buf;
                  Atomic.incr received
                end
                else Buffer.add_char buf c
              done;
              go ()
          | exception Unix.Unix_error _ -> Atomic.set closed true
        in
        go ())
      ()
  in
  (try
     while true do
       let line = input_line stdin in
       if String.trim line <> "" then begin
         let data = Bytes.of_string (line ^ "\n") in
         let len = Bytes.length data in
         let off = ref 0 in
         while !off < len do
           off := !off + Unix.write sock data !off (len - !off)
         done;
         Atomic.incr sent
       end
     done
   with End_of_file -> () | Unix.Unix_error _ -> ());
  (* Every request gets exactly one reply line; wait for the balance. *)
  while (not (Atomic.get closed)) && Atomic.get received < Atomic.get sent do
    Thread.yield ()
  done;
  (* shutdown, not close: close would leave the printer blocked in
     [Unix.read] forever — shutdown makes that read return 0. *)
  (try Unix.shutdown sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Thread.join printer with _ -> ());
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if Atomic.get received < Atomic.get sent then exit 1

let serve_cmd =
  let run circuits socket connect sigma_ratio queue_capacity warm_capacity
      default_deadline_ms default_max_evals breaker_threshold breaker_cooldown
      faults fault_seed jobs profile =
    match connect with
    | Some path -> run_client path
    | None -> (
        let faults =
          List.fold_left
            (fun acc spec ->
              match (acc, parse_fault_spec spec) with
              | Error _, _ -> acc
              | _, (Error _ as e) -> e
              | Ok sites, Ok site -> Ok (site :: sites))
            (Ok []) faults
        in
        match faults with
        | Error msg ->
            Printf.eprintf "statsize serve: %s\n" msg;
            exit 1
        | Ok sites ->
            let instrument =
              if sites = [] then None
              else
                let plan = Util.Fault.plan ~seed:fault_seed (List.rev sites) in
                Some
                  (fun problem ->
                    Nlp.Problem.map_components
                      (fun ~component obj ->
                        Util.Fault.wrap plan
                          ~component:(Nlp.Problem.component_index component)
                          obj)
                      problem)
            in
            with_runtime ~jobs ~profile @@ fun pool ->
            (* The stats request is part of the protocol, so the daemon
               always runs instrumented. *)
            Util.Instr.enable ();
            let model = model_of_ratio sigma_ratio in
            let config =
              {
                Serve.Server.queue_capacity;
                warm_capacity;
                default_deadline_ms;
                default_max_evals;
                breaker =
                  {
                    Serve.Breaker.threshold = breaker_threshold;
                    cooldown_s = breaker_cooldown;
                  };
              }
            in
            let server = Serve.Server.create ?pool ?instrument ~config () in
            List.iter
              (fun name ->
                match Circuit.Generate.by_name name with
                | Some net -> Serve.Server.add_circuit server ~name ~model net
                | None ->
                    Printf.eprintf
                      "statsize serve: unknown circuit %S (expected \
                       fig2|tree|chain|apex1|apex2|k2)\n"
                      name;
                    exit 1)
              circuits;
            (* Replies own stdout; operator chatter goes to stderr. *)
            Printf.eprintf "statsize serve: %s ready (%s), %d-deep queue, %d warm engines\n%!"
              (String.concat "," (Serve.Server.circuits server))
              (match socket with
              | Some p -> Printf.sprintf "socket %s" p
              | None -> "stdio")
              queue_capacity warm_capacity;
            (match socket with
            | Some path -> Serve.Server.run_socket server ~path
            | None -> Serve.Server.run_stdio server);
            let submitted, served, degraded, shed, refused =
              Serve.Server.counters server
            in
            Printf.eprintf
              "statsize serve: drained; %d submitted = %d served + %d degraded \
               + %d shed + %d refused\n%!"
              submitted served degraded shed refused)
  in
  let circuits_arg =
    let doc = "Circuits to load (comma-separated built-in names)." in
    Arg.(
      value
      & opt (list string) [ "fig2"; "tree"; "chain" ]
      & info [ "circuits" ] ~docv:"NAMES" ~doc)
  in
  let socket_arg =
    let doc = "Listen on a Unix-domain socket instead of stdin/stdout." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let connect_arg =
    let doc =
      "Client mode: pump stdin request lines to a daemon's socket and print \
       its reply lines."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"PATH" ~doc)
  in
  let queue_capacity_arg =
    let doc = "Admission queue bound; beyond it requests are shed by class." in
    Arg.(value & opt int 32 & info [ "queue-capacity" ] ~docv:"N" ~doc)
  in
  let warm_capacity_arg =
    let doc = "Warmed-engine LRU bound (resident incremental engines)." in
    Arg.(value & opt int 4 & info [ "warm-capacity" ] ~docv:"N" ~doc)
  in
  let deadline_ms_arg =
    let doc = "Default per-request deadline in milliseconds." in
    Arg.(value & opt (some float) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let max_evals_arg =
    let doc = "Default per-request evaluation budget (size requests)." in
    Arg.(value & opt (some int) None & info [ "max-evals" ] ~docv:"N" ~doc)
  in
  let breaker_threshold_arg =
    let doc = "Consecutive solve breakdowns before a circuit is quarantined." in
    Arg.(value & opt int 3 & info [ "breaker-threshold" ] ~docv:"N" ~doc)
  in
  let breaker_cooldown_arg =
    let doc = "Quarantine cooldown in seconds before a trial solve." in
    Arg.(value & opt float 30. & info [ "breaker-cooldown" ] ~docv:"SECONDS" ~doc)
  in
  let fault_arg =
    let doc =
      "Inject a deterministic fault into every size request's solver \
       evaluations: KIND[@TRIGGER], KIND one of nan-value, inf-value, \
       nan-gradient, inf-gradient, perturb:AMP; TRIGGER one of always, \
       first:N, at:N.  Repeatable.  For resilience drills."
    in
    Arg.(value & opt_all string [] & info [ "fault" ] ~docv:"SPEC" ~doc)
  in
  let fault_seed_arg =
    let doc = "Seed of the keyed fault-injection draws." in
    Arg.(value & opt int 0 & info [ "fault-seed" ] ~docv:"N" ~doc)
  in
  let term =
    Term.(
      const run $ circuits_arg $ socket_arg $ connect_arg $ sigma_ratio_arg
      $ queue_capacity_arg $ warm_capacity_arg $ deadline_ms_arg $ max_evals_arg
      $ breaker_threshold_arg $ breaker_cooldown_arg $ fault_arg $ fault_seed_arg
      $ jobs_arg $ profile_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived timing daemon: line-JSON requests over stdio or a Unix \
          socket, with admission control, deadlines, graceful degradation and \
          per-circuit quarantine")
    term

let main_cmd =
  let doc = "gate sizing under a statistical delay model (DATE 2000 reproduction)" in
  let info = Cmd.info "statsize" ~version:"1.0.0" ~doc in
  Cmd.group info [ analyze_cmd; size_cmd; gp_cmd; mc_cmd; tables_cmd; sim_cmd; serve_cmd ]

let () = exit (Cmd.eval main_cmd)
