(* Validation of the analytical statistical operators against Monte Carlo
   sampling (the adequacy claim of Section 3).

   Three layers:
   1. the two-operand Clark max against exact sampling,
   2. the repeated two-operand fold for n-ary maxima,
   3. whole-circuit SSTA against sampled deterministic re-timing —
      including circuits with reconvergent fanout, where the paper's
      independence assumption is only an approximation (its declared
      future work).

   Run with: dune exec examples/monte_carlo_validation.exe *)

open Statdelay

let () =
  let rng = Util.Rng.create 2024 in

  Printf.printf "1. two-operand max: analytic (eq. 10/12/13) vs 10^6 samples\n";
  List.iter
    (fun (ma, sa, mb, sb) ->
      let a = Normal.make ~mu:ma ~sigma:sa and b = Normal.make ~mu:mb ~sigma:sb in
      let cmp = Mc.compare_max2 rng a b ~n:1_000_000 in
      Printf.printf
        "   max(N(%g,%g), N(%g,%g)): analytic mu %.4f sigma %.4f | sampled mu %.4f sigma %.4f\n"
        ma sa mb sb
        (Normal.mu cmp.Mc.analytic)
        (Normal.sigma cmp.Mc.analytic)
        cmp.Mc.sampled_mu cmp.Mc.sampled_sigma)
    [ (0., 1., 0., 1.); (1., 0.5, 1.3, 0.2); (2., 0.3, 0., 1.) ];

  Printf.printf "\n2. n-ary max by repeated two-operand folding\n";
  let operands =
    List.init 8 (fun i -> Normal.make ~mu:(1. +. (0.05 *. float_of_int i)) ~sigma:0.25)
  in
  let cmp = Mc.compare_max_list rng operands ~n:1_000_000 in
  Printf.printf
    "   8 similar operands: folded mu %.4f sigma %.4f | exact sampled mu %.4f sigma %.4f\n"
    (Normal.mu cmp.Mc.analytic)
    (Normal.sigma cmp.Mc.analytic)
    cmp.Mc.sampled_mu cmp.Mc.sampled_sigma;
  Printf.printf
    "   (the fold is itself an approximation for n > 2 - the paper's Section 7\n\
    \    lists an explicit n-ary max as future work; the error stays small)\n";

  Printf.printf "\n3. whole-circuit SSTA vs Monte Carlo\n";
  let model = Circuit.Sigma_model.paper_default in
  List.iter
    (fun (label, net) ->
      let sizes = Circuit.Netlist.min_sizes net in
      let analytic = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit in
      let samples = Sta.Yield.sample_circuit_delays ~rng ~model net ~sizes ~n:30_000 in
      let st = Util.Stats.of_array samples in
      Printf.printf
        "   %-22s SSTA mu %.3f sigma %.3f | MC mu %.3f sigma %.3f\n" label
        (Normal.mu analytic) (Normal.sigma analytic) (Util.Stats.mean st)
        (Util.Stats.std_dev st))
    [
      ("chain (no max)", Circuit.Generate.chain ~length:20 ());
      ("tree (independent)", Circuit.Generate.tree ());
      ("apex2* (reconvergent)", Circuit.Generate.apex2_like ());
    ];
  Printf.printf
    "   chain and tree match: their paths share no gates, so the independence\n\
    \   assumption of eq. 6 holds exactly.  The reconvergent DAG shows the\n\
    \   assumption's cost: SSTA overestimates mu slightly and underestimates\n\
    \   sigma - correlations from shared sub-paths, the paper's future work.\n"
