(* Validation of the analytical statistical operators against Monte Carlo
   sampling (the adequacy claim of Section 3).

   Four layers:
   1. the two-operand Clark max against exact sampling,
   2. the repeated two-operand fold for n-ary maxima,
   3. whole-circuit SSTA against the batched circuit-level oracle
      [Sta.Mcsta] — including circuits with reconvergent fanout, where
      the paper's independence assumption is only an approximation (its
      declared future work),
   4. the guard-band conformance claim of Section 4: sizing to
      mu + k sigma <= D should put the realised yield at Phi(k) —
      50% / 84.1% / 99.87% for k = 0 / 1 / 3.

   Run with: dune exec examples/monte_carlo_validation.exe *)

open Statdelay

let () =
  let rng = Util.Rng.create 2024 in

  Printf.printf "1. two-operand max: analytic (eq. 10/12/13) vs 10^6 samples\n";
  List.iter
    (fun (ma, sa, mb, sb) ->
      let a = Normal.make ~mu:ma ~sigma:sa and b = Normal.make ~mu:mb ~sigma:sb in
      let cmp = Mc.compare_max2 rng a b ~n:1_000_000 in
      Printf.printf
        "   max(N(%g,%g), N(%g,%g)): analytic mu %.4f sigma %.4f | sampled mu %.4f sigma %.4f\n"
        ma sa mb sb
        (Normal.mu cmp.Mc.analytic)
        (Normal.sigma cmp.Mc.analytic)
        cmp.Mc.sampled_mu cmp.Mc.sampled_sigma)
    [ (0., 1., 0., 1.); (1., 0.5, 1.3, 0.2); (2., 0.3, 0., 1.) ];

  Printf.printf "\n2. n-ary max by repeated two-operand folding\n";
  let operands =
    List.init 8 (fun i -> Normal.make ~mu:(1. +. (0.05 *. float_of_int i)) ~sigma:0.25)
  in
  let cmp = Mc.compare_max_list rng operands ~n:1_000_000 in
  let se_mu, se_sigma = Mc.standard_errors ~sigma:(Normal.sigma cmp.Mc.analytic) ~n:1_000_000 in
  Printf.printf
    "   8 similar operands: folded mu %.4f sigma %.4f | exact sampled mu %.4f sigma %.4f\n"
    (Normal.mu cmp.Mc.analytic)
    (Normal.sigma cmp.Mc.analytic)
    cmp.Mc.sampled_mu cmp.Mc.sampled_sigma;
  Printf.printf
    "   (sampling noise here is only ~%.4f on mu, so the residual is the fold\n\
    \    bias itself - the paper's Section 7 lists an explicit n-ary max as\n\
    \    future work; the error stays at 1-2%% of sigma)\n"
    (2. *. se_mu);
  ignore se_sigma;

  Printf.printf "\n3. whole-circuit SSTA vs the batched MC oracle (30k samples)\n";
  let model = Circuit.Sigma_model.paper_default in
  List.iter
    (fun (label, net) ->
      let sizes = Circuit.Netlist.min_sizes net in
      let analytic = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit in
      let samples = Sta.Mcsta.sample ~model ~seed:2024 net ~sizes ~n:30_000 in
      let s = Sta.Mcsta.summarize samples in
      Printf.printf
        "   %-22s SSTA mu %.3f sigma %.3f | MC mu %.3f sigma %.3f\n" label
        (Normal.mu analytic) (Normal.sigma analytic) s.Sta.Mcsta.mu
        s.Sta.Mcsta.sigma)
    [
      ("chain (no max)", Circuit.Generate.chain ~length:20 ());
      ("tree (independent)", Circuit.Generate.tree ());
      ("apex2* (reconvergent)", Circuit.Generate.apex2_like ());
    ];
  Printf.printf
    "   chain and tree match: their paths share no gates, so the independence\n\
    \   assumption of eq. 6 holds exactly.  The reconvergent DAG shows the\n\
    \   assumption's cost: SSTA overestimates mu slightly and underestimates\n\
    \   sigma - correlations from shared sub-paths, the paper's future work.\n";

  Printf.printf "\n4. guard-band conformance (Section 4's 50%% / 84.1%% / 99.87%% claim)\n";
  let net = Circuit.Generate.tree () in
  let unsized, _ =
    Sizing.Engine.evaluate ~model net ~sizes:(Circuit.Netlist.min_sizes net)
  in
  let deadline = 0.92 *. Normal.mu unsized.Sta.Ssta.circuit in
  Printf.printf "   tree, deadline D = %.3f (92%% of the unsized mu)\n" deadline;
  List.iter
    (fun (k, predicted) ->
      let sol =
        Sizing.Engine.solve ~model net
          (Sizing.Objective.Min_area_bounded { k; bound = deadline })
      in
      let samples =
        Sta.Mcsta.sample ~model ~seed:9 net ~sizes:sol.Sizing.Engine.sizes
          ~n:100_000
      in
      let c = Sta.Mcsta.conformance samples ~budget:deadline in
      Printf.printf
        "   mu + %.0f sigma <= D: predicted %6.2f%% | MC %6.2f%% (95%% CI [%.2f%%, %.2f%%])\n"
        k (100. *. predicted)
        (100. *. c.Sta.Mcsta.p)
        (100. *. c.Sta.Mcsta.ci_lo)
        (100. *. c.Sta.Mcsta.ci_hi))
    [ (0., 0.5); (1., 0.841344746068543); (3., 0.998650101968370) ];
  Printf.printf
    "   (the tree is reconvergence-free, so the residual deviations are the\n\
    \   normal approximation itself: the true max is slightly right-skewed,\n\
    \   which puts k=0 about half a point above 50%%, and the folded sigma is\n\
    \   ~0.5%% low, which costs ~0.06%% at k=3 - both well inside the paper's\n\
    \   rounded 50 / 84.1 / 99.8 claim)\n"
