(* Yield-driven sizing: the Section-4 guard-banding story.

   Constraining the mean delay only makes 50% of circuits meet the bound;
   adding one sigma of guard band makes 84.1% conform, three sigmas 99.8%.
   This example sizes a circuit for each guard band, validates the claimed
   conformance with Monte Carlo, and shows what each percent of yield
   costs in area.

   Run with: dune exec examples/yield_optimization.exe *)

open Sizing

let () =
  let model = Circuit.Sigma_model.paper_default in
  let net = Circuit.Generate.tree () in
  let unsized = Engine.solve ~model net Objective.Min_area in
  let deadline = 0.85 *. unsized.Engine.mu in
  Printf.printf "circuit: tree (7 NAND gates); delay budget D = %.3f\n\n" deadline;

  let t =
    Util.Table.create
      ~header:[ "guard band"; "mu"; "sigma"; "area"; "analytic yield"; "MC yield" ]
  in
  List.iter
    (fun k ->
      let s =
        Engine.solve ~model net (Objective.Min_area_bounded { k; bound = deadline })
      in
      let analytic = Sta.Yield.analytic s.Engine.timing.Sta.Ssta.circuit ~deadline in
      let mc =
        Sta.Yield.monte_carlo
          ~rng:(Util.Rng.create 7)
          ~model net ~sizes:s.Engine.sizes ~deadline ~n:50_000
      in
      Util.Table.add_row t
        [
          Printf.sprintf "mu+%gsigma <= D" k;
          Printf.sprintf "%.3f" s.Engine.mu;
          Printf.sprintf "%.3f" s.Engine.sigma;
          Printf.sprintf "%.2f" s.Engine.area;
          Printf.sprintf "%.1f%%" (100. *. analytic);
          Printf.sprintf "%.1f%%" (100. *. mc);
        ])
    [ 0.; 1.; 2.; 3. ];
  Util.Table.print t;

  print_newline ();
  Printf.printf
    "Every extra sigma of guard band buys yield for area: the mu-only sizing\n\
     loses half the manufactured circuits, while the 3-sigma sizing loses 0.2%%.\n\n";

  (* Contrast with the deterministic baseline: a worst-case sizer has no
     notion of sigma at all. *)
  let greedy = Baseline.meet_deadline net ~deadline in
  let timing, _ = Engine.evaluate ~model net ~sizes:greedy.Baseline.sizes in
  let mc =
    Sta.Yield.monte_carlo
      ~rng:(Util.Rng.create 7)
      ~model net ~sizes:greedy.Baseline.sizes ~deadline ~n:50_000
  in
  Printf.printf
    "deterministic greedy at the same D: area %.2f, worst-case delay %.3f,\n\
     statistical mu %.3f sigma %.3f -> Monte Carlo yield %.1f%%\n"
    greedy.Baseline.area greedy.Baseline.delay
    (Statdelay.Normal.mu timing.Sta.Ssta.circuit)
    (Statdelay.Normal.sigma timing.Sta.Ssta.circuit)
    (100. *. mc);
  Printf.printf
    "(the deterministic sizer meets the worst-case number but makes no\n\
     promise about the delay distribution - which is the paper's point)\n"
