(* The analysis toolkit around the sizer: traditional corner analysis and
   its pessimism, statistical criticality, correlation-aware SSTA, and the
   exact n-ary max — on one circuit.

   Run with: dune exec examples/analysis_toolkit.exe *)

open Statdelay

let () =
  let model = Circuit.Sigma_model.paper_default in
  let net = Circuit.Generate.apex2_like () in
  let sizes = Circuit.Netlist.min_sizes net in
  Format.printf "%a@.@." Circuit.Netlist.pp_summary net;

  (* 1. The four delay views: deterministic, corner, statistical, exact. *)
  let d = Sta.Dsta.analyze net ~sizes in
  let corners = Sta.Corner.analyze ~model net ~sizes in
  let s = Sta.Ssta.analyze ~model net ~sizes in
  let s_exact = Sta.Ssta.analyze_exact_nary ~model net ~sizes in
  Printf.printf "deterministic (typical):   %.3f\n" d.Sta.Dsta.circuit;
  Printf.printf "worst 3-sigma corner:      %.3f   <- every gate slow at once\n"
    corners.Sta.Corner.worst;
  Printf.printf "statistical mu + 3 sigma:  %.3f   (mu %.3f, sigma %.3f)\n"
    (Normal.mu_plus_k_sigma s.Sta.Ssta.circuit 3.)
    (Normal.mu s.Sta.Ssta.circuit)
    (Normal.sigma s.Sta.Ssta.circuit);
  Printf.printf "  with exact n-ary maxima: mu %.3f, sigma %.3f (fold error is tiny)\n"
    (Normal.mu s_exact.Sta.Ssta.circuit)
    (Normal.sigma s_exact.Sta.Ssta.circuit);

  (* 2. The corner's pessimism, against ground truth. *)
  let p = Sta.Corner.pessimism ~model net ~sizes ~samples:20_000 in
  Printf.printf
    "Monte Carlo 99.87%% quantile: %.3f -> the corner overestimates reality by %.0f%%\n\n"
    p.Sta.Corner.monte_carlo_quantile
    (100. *. (p.Sta.Corner.overestimate -. 1.));

  (* 3. Reconvergent fanout correlates path delays; the correlation-aware
     analysis recovers the sigma the independence assumption loses. *)
  let independent, correlated = Sta.Cssta.compare_to_independent ~model net ~sizes in
  Printf.printf "independence assumption:  mu %.3f sigma %.3f\n"
    (Normal.mu independent) (Normal.sigma independent);
  Printf.printf "correlation-aware (CSSTA): mu %.3f sigma %.3f\n\n"
    (Normal.mu correlated) (Normal.sigma correlated);

  (* 4. Which gates actually matter?  Statistical criticality. *)
  let crit = Sta.Crit.monte_carlo ~model net ~sizes ~n:10_000 in
  Printf.printf "ten most critical gates (probability on the sampled critical path):\n";
  List.iteri
    (fun i (name, c) ->
      if i < 10 then Printf.printf "  %-8s %5.1f%%\n" name (100. *. c))
    (Sta.Crit.ranked crit net)
