(* File-based flow: read a mapped BLIF netlist (ISCAS-85 c17), size it
   statistically, write the netlist back out.

   Run with: dune exec examples/blif_flow.exe [FILE.blif]
   (defaults to examples/c17.blif) *)

let default_paths = [ "examples/c17.blif"; "c17.blif" ]

let find_input () =
  if Array.length Sys.argv > 1 then Some Sys.argv.(1)
  else List.find_opt Sys.file_exists default_paths

let () =
  match find_input () with
  | None ->
      prerr_endline "blif_flow: cannot find c17.blif (pass a path explicitly)";
      exit 1
  | Some path -> (
      let library = Circuit.Cell.Library.default () in
      match Circuit.Blif.parse_file ~wire_load:0.6 ~library path with
      | Error e ->
          Format.eprintf "blif_flow: %a@." Circuit.Blif.pp_error e;
          exit 1
      | Ok net ->
          Format.printf "parsed %s: %a@.@." path Circuit.Netlist.pp_summary net;
          let model = Circuit.Sigma_model.paper_default in
          let unsized = Sizing.Engine.solve ~model net Sizing.Objective.Min_area in
          Format.printf "unsized:   %a@." Sizing.Report.pp_solution unsized;
          let fast =
            Sizing.Engine.solve ~model net (Sizing.Objective.Min_delay 3.)
          in
          Format.printf "min delay: %a@." Sizing.Report.pp_solution fast;
          let bound = 0.85 *. unsized.Sizing.Engine.mu in
          let lean =
            Sizing.Engine.solve ~model net
              (Sizing.Objective.Min_area_bounded { k = 3.; bound })
          in
          Format.printf "budgeted:  %a@." Sizing.Report.pp_solution lean;
          Printf.printf "\nspeed factors of the budgeted sizing:\n";
          List.iter
            (fun (name, s) -> Printf.printf "  %s: %.2f\n" name s)
            (Sizing.Report.speed_factors net lean);
          (* Round-trip the netlist to show the writer. *)
          let out = Filename.temp_file "c17_sized" ".blif" in
          Circuit.Blif.write_file net out;
          Printf.printf "\nnetlist re-written to %s\n" out)
