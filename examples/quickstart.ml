(* Quickstart: build a small circuit, analyse its statistical timing, and
   size it under three different objectives.

   Run with: dune exec examples/quickstart.exe *)

open Circuit
open Statdelay

let () =
  (* 1. Describe a circuit with the builder.  This is the paper's figure-2
     example: two NAND2s and an inverter feeding a three-input gate. *)
  let nand2 = Cell.nand 2 in
  let nand3 = Cell.nand 3 in
  let inv = Cell.make ~name:"inv" ~n_inputs:1 ~t_int:0.06 ~c_in:0.18 () in
  let b = Netlist.Builder.create ~name:"quickstart" () in
  let ia = Netlist.Builder.add_pi b "a" in
  let ib = Netlist.Builder.add_pi b "b" in
  let ic = Netlist.Builder.add_pi b "c" in
  let ga = Netlist.Builder.add_gate b ~name:"A" ~cell:nand2 [ ia; ib ] in
  let gb = Netlist.Builder.add_gate b ~name:"B" ~cell:nand2 [ ib; ic ] in
  let gc = Netlist.Builder.add_gate b ~name:"C" ~cell:inv [ ic ] in
  let gd = Netlist.Builder.add_gate b ~name:"D" ~cell:nand3 [ ga; gb; gc ] in
  Netlist.Builder.mark_po b ~name:"out_c" gc;
  Netlist.Builder.mark_po b ~name:"out_d" gd;
  let net = Netlist.Builder.build b in
  Format.printf "circuit: %a@.@." Netlist.pp_summary net;

  (* 2. Statistical timing at minimum sizes.  Every gate delay is a normal
     random variable with sigma = 0.25 * mu (the paper's model); arrival
     times combine with the analytical max of Section 3. *)
  let model = Sigma_model.paper_default in
  let sizes = Netlist.min_sizes net in
  let timing = Sta.Ssta.analyze ~model net ~sizes in
  let c = timing.Sta.Ssta.circuit in
  Printf.printf "unsized:  mu = %.3f  sigma = %.3f  (99.8%% of circuits under %.3f)\n"
    (Normal.mu c) (Normal.sigma c) (Normal.mu_plus_k_sigma c 3.);

  (* 3. Size it.  Min_delay 3. minimises mu + 3 sigma — the paper's
     "99.8% of circuits as fast as possible" objective (equation 18). *)
  let print_solution s = Format.printf "%a@." Sizing.Report.pp_solution s in
  let fast = Sizing.Engine.solve ~model net (Sizing.Objective.Min_delay 3.) in
  print_solution fast;
  List.iter
    (fun (name, s) -> Printf.printf "  S_%s = %.2f\n" name s)
    (Sizing.Report.speed_factors net fast);

  (* 4. Or trade area for a delay bound: minimise the sum of speed factors
     subject to mu + 3 sigma <= D. *)
  let budget = 0.9 *. Normal.mu_plus_k_sigma c 3. in
  let lean =
    Sizing.Engine.solve ~model net
      (Sizing.Objective.Min_area_bounded { k = 3.; bound = budget })
  in
  print_solution lean;

  (* 5. Check the statistical promise with Monte Carlo: draw every gate
     delay, propagate worst-case, count how many sampled circuits meet the
     bound.  ~99.8% should. *)
  let yield =
    Sta.Yield.monte_carlo
      ~rng:(Util.Rng.create 42)
      ~model net ~sizes:lean.Sizing.Engine.sizes ~deadline:budget ~n:20_000
  in
  Printf.printf "Monte Carlo yield at D = %.3f: %.1f%% (paper's claim: 99.8%%)\n" budget
    (100. *. yield)
