(* The paper's tree-circuit study (Section 6, Tables 2 and 3): how
   different objectives and fixed-mean constraints shape the speed factors
   of a balanced seven-NAND tree.

   Run with: dune exec examples/tree_circuit.exe *)

open Sizing

let () =
  let model = Circuit.Sigma_model.paper_default in
  let net = Circuit.Generate.tree () in
  Format.printf "%a@.@." Circuit.Netlist.pp_summary net;

  (* Establish the feasible mean-delay range. *)
  let slowest = Engine.solve ~model net Objective.Min_area in
  let fastest = Engine.solve ~model net (Objective.Min_delay 0.) in
  Printf.printf "mean delay range: [%.2f (all S=limit), %.2f (all S=1)]\n\n"
    fastest.Engine.mu slowest.Engine.mu;

  (* Table 2: at a fixed mean there is still freedom in sigma — minimum
     area, minimum sigma and maximum sigma give different spreads. *)
  Experiments.Table2.(print (run ~model ()));

  (* Table 3: the per-gate speed factors behind the mid-range rows.  The
     paper's observations to look for:
     - min area and min sigma treat the symmetric groups {A,B,D,E} and
       {C,F} identically, with speed factors growing toward the output;
     - min sigma pushes the output gates much harder (the maximum of
       balanced similar arrivals already cancels much of the input-side
       sigma, so uncertainty near the outputs is what remains);
     - max sigma deliberately unbalances the two halves of the tree. *)
  Experiments.Table3.(print (run ~model ()));

  (* Show the sigma mechanics explicitly: compare the arrival sigma at the
     tree root with the sigma of a single path. *)
  let sizes = Circuit.Netlist.min_sizes net in
  let timing = Sta.Ssta.analyze ~model net ~sizes in
  let root = timing.Sta.Ssta.circuit in
  let path =
    List.fold_left
      (fun acc g -> Statdelay.Normal.add acc timing.Sta.Ssta.gate_delay.(g))
      (Statdelay.Normal.deterministic 0.)
      [ 0; 2; 6 ] (* A -> C -> G *)
  in
  Printf.printf
    "single path A->C->G: mu = %.3f sigma = %.3f\nwhole tree (max of 4 paths): mu = %.3f sigma = %.3f\n"
    (Statdelay.Normal.mu path) (Statdelay.Normal.sigma path) (Statdelay.Normal.mu root)
    (Statdelay.Normal.sigma root);
  Printf.printf
    "-> the max over balanced paths raises the mean slightly but shrinks sigma\n   (the paper's key observation about statistical delay calculation).\n\n";

  (* Statistical criticality explains the Table-3 pattern: the output gate
     is on every sample's critical path, the mid-level gates on half, the
     leaves on a quarter — so sigma-minimisation buys speed where the
     criticality is concentrated. *)
  let crit = Sta.Crit.monte_carlo ~model net ~sizes ~n:20_000 in
  Printf.printf "gate criticalities (probability of lying on the critical path):\n";
  List.iter
    (fun (name, c) -> Printf.printf "  %s: %5.1f%%\n" name (100. *. c))
    (Sta.Crit.ranked crit net)
