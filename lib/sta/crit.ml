open Circuit

type result = { criticality : float array; samples : int }

(* Trace one critical path for externally supplied per-gate delays: start
   from the latest primary output and repeatedly follow the fanin whose
   arrival equals the gate's start time. *)
let trace net arrival gate_delay mark =
  let node_arrival = function
    | Netlist.Pi _ -> 0.
    | Netlist.Gate g -> arrival.(g)
  in
  let last =
    Array.fold_left
      (fun acc po ->
        match (acc, po) with
        | None, Netlist.Gate g -> Some g
        | Some best, Netlist.Gate g -> if arrival.(g) > arrival.(best) then Some g else acc
        | _, Netlist.Pi _ -> acc)
      None (Netlist.pos net)
  in
  let rec walk g =
    mark g;
    let gate = Netlist.gate net g in
    let start = arrival.(g) -. gate_delay.(g) in
    let pred =
      Array.fold_left
        (fun acc fan ->
          match (acc, fan) with
          | None, Netlist.Gate src when abs_float (node_arrival fan -. start) < 1e-9 ->
              Some src
          | _, (Netlist.Gate _ | Netlist.Pi _) -> acc)
        None gate.Netlist.fanin
    in
    match pred with None -> () | Some src -> walk src
  in
  match last with None -> () | Some g -> walk g

let monte_carlo ?rng ?arena ~model net ~sizes ~n =
  if n <= 0 then invalid_arg "Crit.monte_carlo: n must be positive";
  let rng = match rng with Some r -> r | None -> Util.Rng.create 23 in
  let dists = (Ssta.analyze ?arena ~model net ~sizes).Ssta.gate_delay in
  let n_gates = Netlist.n_gates net in
  let counts = Array.make n_gates 0 in
  let gate_delay = Array.make n_gates 0. in
  (* One arrival scratch for all samples — the per-sample propagation
     allocates nothing. *)
  let arrival = Array.make n_gates 0. in
  for _ = 1 to n do
    for g = 0 to n_gates - 1 do
      let d = dists.(g) in
      gate_delay.(g) <-
        Util.Rng.gaussian rng ~mu:(Statdelay.Normal.mu d)
          ~sigma:(Statdelay.Normal.sigma d)
    done;
    let (_ : float) = Dsta.propagate_into net ~gate_delay ~arrival in
    trace net arrival gate_delay (fun g -> counts.(g) <- counts.(g) + 1)
  done;
  {
    criticality = Array.map (fun c -> float_of_int c /. float_of_int n) counts;
    samples = n;
  }

let ranked result net =
  let pairs =
    Array.to_list
      (Array.mapi
         (fun g c -> ((Netlist.gate net g).Netlist.gate_name, c))
         result.criticality)
  in
  List.sort (fun (_, a) (_, b) -> compare b a) pairs
