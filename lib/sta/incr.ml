open Circuit
open Statdelay

type mode = Exact | Epsilon of float

(* ---- instrumentation -------------------------------------------------------- *)

let c_analyze = Util.Instr.counter "incr.analyze"
let c_cache_hit = Util.Instr.counter "incr.cache_hit"
let c_full_sweep = Util.Instr.counter "incr.full_sweep"
let c_reeval = Util.Instr.counter "incr.gates_reevaluated"
let c_cutoff = Util.Instr.counter "incr.cutoff"
let c_gradient = Util.Instr.counter "incr.gradient"
let c_p1_reused = Util.Instr.counter "incr.phase1_reused"
let c_p1_recomputed = Util.Instr.counter "incr.phase1_recomputed"
let c_partials_reused = Util.Instr.counter "incr.partials_reused"
let t_forward = Util.Instr.timer "incr.forward"
let t_reverse = Util.Instr.timer "incr.reverse"

type counters = {
  analyzes : int;
  cache_hits : int;
  full_sweeps : int;
  gates_reevaluated : int;
  cutoffs : int;
  gradients : int;
  phase1_reused : int;
  phase1_recomputed : int;
  partials_reused : int;
}

(* Per-engine totals, updated only from serial sections (unit tests read
   them without enabling the global Instr registry). *)
type stats = {
  mutable s_analyzes : int;
  mutable s_cache_hits : int;
  mutable s_full_sweeps : int;
  mutable s_reeval : int;
  mutable s_cutoffs : int;
  mutable s_gradients : int;
  mutable s_p1_reused : int;
  mutable s_p1_recomputed : int;
  mutable s_partials_reused : int;
}

(* ---- gradient reuse slots --------------------------------------------------- *)

(* One reuse history per distinct seed root: the previous reverse sweep's
   adjoints and phase-1 products (per-operand fold adjoints and the
   gate-delay mean adjoints), plus the engine version they were computed
   against — all stored as plane copies (same interleaved Bigarray
   layout as the arena's), blitted in and out, so slot maintenance
   allocates nothing after engine creation.  Sizing.Engine
   differentiates with the two constant basis seeds (1,0) and (0,1), so
   each gets a stable slot; roots that vary per call (e.g. a direct
   mu+3sigma seed) never pass the bitwise-adjoint guard and just cycle
   through the LRU slots.  Like everything inside the engine, slot
   planes are indexed by the flat view's new (level-major) gate ids. *)
type slot = {
  mutable root_mu_bits : int64;
  mutable root_var_bits : int64;
  mutable s_valid : bool;
  mutable s_version : int;
  s_adj : Arena.vec;  (* per gate: final arrival adjoint pairs *)
  s_active : Bytes.t;
  s_dmu : Arena.vec;  (* per gate: gate-delay mean adjoint *)
  s_fan : Arena.vec;  (* fold-slot pair plane: per-operand adjoints *)
  mutable s_bumps : int;
      (** [t.stamp_bumps] at save time: when many stamps moved since, the
          per-gate reuse checks cannot succeed and are skipped wholesale *)
  mutable s_used : int;  (** LRU tick *)
}

let max_slots = 4

type t = {
  net : Netlist.t;
  model : Sigma_model.t;
  pool : Util.Pool.t option;
  mode : mode;
  n : int;
  (* Cached state of the last analyze lives in the arena's planes: sizes,
     loads, delay moments, arrivals and the per-gate fold prefixes
     ([pre]).  The engine owns the arena exclusively — its [pp] plane
     doubles as the point-keyed Clark-partials cache below, so nothing
     else may run [Arena.reverse] on it.  Every per-gate array in this
     record is indexed by new (level-major) gate id, matching the
     arena. *)
  a : Arena.t;
  mutable f_valid : bool;
      (* cached forward state may serve as a delta base; cleared by
         [invalidate] *)
  mutable initialized : bool;
      (* the planes hold a completed analysis (never cleared: change
         stamps stay meaningful across invalidations) *)
  (* Change tracking.  [version] counts state-changing analyzes;
     [stamp_arrival.(g)] / [stamp_local.(g)] record the last version at
     which gate [g]'s arrival / own delay+load changed value. *)
  mutable version : int;
  stamp_arrival : int array;
  stamp_local : int array;
  mutable stamp_bumps : int;  (* total arrival-stamp writes, ever *)
  (* Seed-independent Clark partials of each gate's fanin fold, stored in
     the arena's [pp] plane (the gate's fold-slot segment), valid while
     every gate-fanin arrival is unchanged since [pc_version.(g)].  Lets
     the second basis-seed gradient at the same point (and any gate whose
     input cone is clean) replay the reverse chain with eight multiplies
     per operand instead of re-running the Clark operators. *)
  pc_version : int array;
  pc_hit : bool array;
  (* PO-fold partials (the [pp] plane's trailing segment), valid for the
     current version only. *)
  mutable po_version : int;
  (* Scratch for one sweep. *)
  dirty : bool array;
  changed : bool array;
  changed_local : bool array;
  mutable marked : int list;
  todo : int array;  (* per-level worklist (dirty subset / phase 1) *)
  (* Gradient reuse. *)
  mutable slots : slot list;
  mutable use_tick : int;
  st : stats;
}

let create ?pool ?(mode = Exact) ~model net =
  (match mode with
  | Exact -> ()
  | Epsilon e ->
      if not (e >= 0.) then invalid_arg "Incr.create: epsilon must be >= 0");
  let n = Netlist.n_gates net in
  {
    net;
    model;
    pool;
    mode;
    n;
    a = Arena.create net;
    f_valid = false;
    initialized = false;
    version = 0;
    stamp_arrival = Array.make n 0;
    stamp_local = Array.make n 0;
    stamp_bumps = 0;
    pc_version = Array.make n (-1);
    pc_hit = Array.make n false;
    po_version = -1;
    dirty = Array.make n false;
    changed = Array.make n false;
    changed_local = Array.make n false;
    marked = [];
    todo = Array.make (max 1 n) 0;
    slots = [];
    use_tick = 0;
    st =
      {
        s_analyzes = 0;
        s_cache_hits = 0;
        s_full_sweeps = 0;
        s_reeval = 0;
        s_cutoffs = 0;
        s_gradients = 0;
        s_p1_reused = 0;
        s_p1_recomputed = 0;
        s_partials_reused = 0;
      };
  }

let netlist t = t.net
let mode t = t.mode
let arena t = t.a

let counters t =
  {
    analyzes = t.st.s_analyzes;
    cache_hits = t.st.s_cache_hits;
    full_sweeps = t.st.s_full_sweeps;
    gates_reevaluated = t.st.s_reeval;
    cutoffs = t.st.s_cutoffs;
    gradients = t.st.s_gradients;
    phase1_reused = t.st.s_p1_reused;
    phase1_recomputed = t.st.s_p1_recomputed;
    partials_reused = t.st.s_partials_reused;
  }

let dirty_fraction t =
  if t.st.s_analyzes = 0 || t.n = 0 then 0.
  else
    float_of_int t.st.s_reeval /. (float_of_int t.st.s_analyzes *. float_of_int t.n)

let invalidate t = t.f_valid <- false

(* ---- forward sweep ---------------------------------------------------------- *)

let bits = Int64.bits_of_float
let fbits_eq a b = Int64.equal (bits a) (bits b)

(* Epsilon-mode closeness on (mu, var) pairs — the operations of the old
   record-based [normal_close], on plane scalars. *)
let close eps nmu nvar omu ovar =
  abs_float (nmu -. omu) <= eps *. (1. +. abs_float omu)
  && abs_float (sqrt nvar -. sqrt ovar) <= eps *. (1. +. sqrt ovar)

let pooled_for t n body =
  match t.pool with
  | Some p when Util.Pool.size p > 1 && n >= 2 * Arena.level_grain ->
      Util.Pool.parallel_for ~grain:Arena.level_grain ~align:8 p ~n body
  | _ ->
      for i = 0 to n - 1 do
        body i
      done

(* Re-evaluate one gate against the engine's current sizes and cached
   fanin arrivals — the exact operations of Arena.eval_gate (hence of a
   from-scratch sweep), computed into locals first so the new values can
   be bit-compared against the cached planes before overwriting them.
   Pure per-gate slot writes: safe to run on the pool.  Change flags are
   left in [t.changed] / [t.changed_local] for the caller's serial
   stamp-and-mark pass.  [id] is a new (level-major) id. *)
let[@inline] recompute_one t id =
  let a = t.a in
  let fl = a.Arena.flat in
  let sizes = a.Arena.sizes in
  let acc = ref fl.Netlist.g_wire_load.(id) in
  for j = fl.Netlist.fo_off.(id) to fl.Netlist.fo_off.(id + 1) - 1 do
    acc :=
      !acc
      +. fl.Netlist.fo_mult.(j)
         *. (fl.Netlist.fo_cin.(j)
            *. Clark.vget sizes fl.Netlist.fo_consumer.(j))
  done;
  let load = !acc in
  let s = Clark.vget sizes id in
  if s < 1. then invalid_arg "Cell.delay: size below 1";
  let mu_t = fl.Netlist.g_t_int.(id) +. (fl.Netlist.g_drive.(id) *. load /. s) in
  let var_t = Sigma_model.var t.model mu_t in
  let var_t =
    if var_t < 0. then
      if var_t > -1e-12 then 0.
      else invalid_arg "Normal.of_var: negative variance"
    else var_t
  in
  let base = fl.Netlist.fi_off.(id) in
  let k = fl.Netlist.fi_off.(id + 1) - base in
  let e0 = fl.Netlist.fi_node.(base) in
  let b0 = if e0 >= 0 then 2 * e0 else (-2 * e0) - 2 in
  let src0 = if e0 >= 0 then a.Arena.arr else a.Arena.pi in
  Clark.vset a.Arena.pre (2 * base) (Clark.vget src0 b0);
  Clark.vset a.Arena.pre ((2 * base) + 1) (Clark.vget src0 (b0 + 1));
  for j = 1 to k - 1 do
    let e = fl.Netlist.fi_node.(base + j) in
    let b = if e >= 0 then 2 * e else (-2 * e) - 2 in
    let src = if e >= 0 then a.Arena.arr else a.Arena.pi in
    Clark.max2_into
      ~mu_a:(Clark.vget a.Arena.pre (2 * (base + j) - 2))
      ~var_a:(Clark.vget a.Arena.pre (2 * (base + j) - 1))
      ~mu_b:(Clark.vget src b)
      ~var_b:(Clark.vget src (b + 1))
      a.Arena.pre (base + j)
  done;
  let arr_mu = Clark.vget a.Arena.pre (2 * (base + k) - 2) +. mu_t in
  let arr_var = Clark.vget a.Arena.pre (2 * (base + k) - 1) +. var_t in
  let old_mu = Clark.vget a.Arena.arr (2 * id)
  and old_var = Clark.vget a.Arena.arr ((2 * id) + 1) in
  let changed =
    (not t.initialized)
    ||
    match t.mode with
    | Exact -> not (fbits_eq arr_mu old_mu && fbits_eq arr_var old_var)
    | Epsilon e -> not (close e arr_mu arr_var old_mu old_var)
  in
  let changed_local =
    (not t.initialized)
    || (not (fbits_eq load (Clark.vget a.Arena.load id)))
    || (not (fbits_eq mu_t (Clark.vget a.Arena.del (2 * id))))
    || not (fbits_eq var_t (Clark.vget a.Arena.del ((2 * id) + 1)))
  in
  Clark.vset a.Arena.load id load;
  Clark.vset a.Arena.del (2 * id) mu_t;
  Clark.vset a.Arena.del ((2 * id) + 1) var_t;
  (match (t.mode, changed) with
  | Epsilon _, false ->
      (* Epsilon cutoff keeps the lagged arrival: consumers then see a
         value consistent with what they were last timed against. *)
      ()
  | _ ->
      Clark.vset a.Arena.arr (2 * id) arr_mu;
      Clark.vset a.Arena.arr ((2 * id) + 1) arr_var);
  t.changed.(id) <- changed;
  t.changed_local.(id) <- changed_local

(* One whole level: the contiguous new-id range [lo, hi). *)
let recompute_range t lo hi =
  pooled_for t (hi - lo) (fun i -> recompute_one t (lo + i))

(* A level's dirty subset, [ids.(0 .. k - 1)]. *)
let recompute_ids t (ids : int array) k =
  pooled_for t k (fun i -> recompute_one t ids.(i))

let refold_pos t = Arena.fold_pos t.a

(* Gather the caller's old-id sizes into the arena's new-id plane. *)
let gather_sizes t (sizes : float array) =
  let inv = t.a.Arena.flat.Netlist.inv_perm in
  for i = 0 to t.n - 1 do
    Clark.vset t.a.Arena.sizes i (Array.unsafe_get sizes (Array.unsafe_get inv i))
  done

let full_sweep t ~sizes =
  t.version <- t.version + 1;
  gather_sizes t sizes;
  let lvl_off = t.a.Arena.flat.Netlist.lvl_off in
  for l = 0 to Array.length lvl_off - 2 do
    recompute_range t lvl_off.(l) lvl_off.(l + 1)
  done;
  for id = 0 to t.n - 1 do
    if t.changed.(id) then begin
      t.stamp_arrival.(id) <- t.version;
      t.stamp_bumps <- t.stamp_bumps + 1
    end;
    if t.changed_local.(id) then t.stamp_local.(id) <- t.version
  done;
  refold_pos t;
  t.st.s_full_sweeps <- t.st.s_full_sweeps + 1;
  t.st.s_reeval <- t.st.s_reeval + t.n;
  Util.Instr.incr c_full_sweep;
  Util.Instr.add c_reeval t.n

let mark t id =
  if not t.dirty.(id) then begin
    t.dirty.(id) <- true;
    t.marked <- id :: t.marked
  end

let incremental_sweep t ~sizes changed_ids =
  t.version <- t.version + 1;
  (* Seed the dirty set: the changed gates themselves, plus every gate
     fanin of a changed gate — the driver's load (hence delay and
     arrival) depends on the consumer's size. *)
  let fl = t.a.Arena.flat in
  List.iter
    (fun id ->
      mark t id;
      for j = fl.Netlist.fi_off.(id) to fl.Netlist.fi_off.(id + 1) - 1 do
        let e = fl.Netlist.fi_node.(j) in
        if e >= 0 then mark t e
      done)
    changed_ids;
  gather_sizes t sizes;
  let reeval = ref 0 and cuts = ref 0 in
  let lvl_off = fl.Netlist.lvl_off in
  for l = 0 to Array.length lvl_off - 2 do
    let lo = lvl_off.(l) and hi = lvl_off.(l + 1) in
    (* The level's dirty subset, in ascending new-id order (within a
       level that coincides with ascending old-id order). *)
    let k = ref 0 in
    for id = lo to hi - 1 do
      if t.dirty.(id) then begin
        t.todo.(!k) <- id;
        incr k
      end
    done;
    if !k > 0 then begin
      recompute_ids t t.todo !k;
      reeval := !reeval + !k;
      for i = 0 to !k - 1 do
        let id = t.todo.(i) in
        if t.changed_local.(id) then t.stamp_local.(id) <- t.version;
        if t.changed.(id) then begin
          t.stamp_arrival.(id) <- t.version;
          t.stamp_bumps <- t.stamp_bumps + 1;
          for j = fl.Netlist.fo_off.(id) to fl.Netlist.fo_off.(id + 1) - 1 do
            mark t fl.Netlist.fo_consumer.(j)
          done
        end
        else incr cuts
      done
    end
  done;
  List.iter (fun id -> t.dirty.(id) <- false) t.marked;
  t.marked <- [];
  refold_pos t;
  t.st.s_reeval <- t.st.s_reeval + !reeval;
  t.st.s_cutoffs <- t.st.s_cutoffs + !cuts;
  Util.Instr.add c_reeval !reeval;
  Util.Instr.add c_cutoff !cuts

(* Bring the engine's cached state to [sizes]. *)
let analyze_state t ~sizes =
  Arena.check_sizes t.a sizes;
  t.st.s_analyzes <- t.st.s_analyzes + 1;
  Util.Instr.incr c_analyze;
  Util.Instr.time t_forward @@ fun () ->
  if not t.f_valid then full_sweep t ~sizes
  else begin
    let inv = t.a.Arena.flat.Netlist.inv_perm in
    let changed_ids = ref [] in
    for i = t.n - 1 downto 0 do
      if not (fbits_eq sizes.(inv.(i)) (Clark.vget t.a.Arena.sizes i)) then
        changed_ids := i :: !changed_ids
    done;
    match !changed_ids with
    | [] ->
        t.st.s_cache_hits <- t.st.s_cache_hits + 1;
        Util.Instr.incr c_cache_hit
    | ids -> incremental_sweep t ~sizes ids
  end;
  t.f_valid <- true;
  t.initialized <- true

let analyze_raw t ~sizes = analyze_state t ~sizes

let analyze t ~sizes =
  analyze_state t ~sizes;
  Ssta.of_arena t.a

(* ---- reverse sweep ---------------------------------------------------------- *)

let make_vec len =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max 1 len) in
  Bigarray.Array1.fill v 0.;
  v

let fresh_slot t rmu rvar =
  let fs = t.a.Arena.flat.Netlist.fold_slots in
  {
    root_mu_bits = rmu;
    root_var_bits = rvar;
    s_valid = false;
    s_version = 0;
    s_adj = make_vec (2 * t.n);
    s_active = Bytes.make (max 1 t.n) '\000';
    s_dmu = make_vec t.n;
    s_fan = make_vec (2 * fs);
    s_bumps = 0;
    s_used = 0;
  }

let slot_for t ~d_mu ~d_var =
  let rmu = bits d_mu and rvar = bits d_var in
  let slot =
    match
      List.find_opt
        (fun s ->
          Int64.equal s.root_mu_bits rmu && Int64.equal s.root_var_bits rvar)
        t.slots
    with
    | Some s -> s
    | None ->
        if List.length t.slots < max_slots then begin
          let s = fresh_slot t rmu rvar in
          t.slots <- s :: t.slots;
          s
        end
        else begin
          (* Recycle the least recently used slot for this new root. *)
          let s =
            List.fold_left
              (fun a b -> if b.s_used < a.s_used then b else a)
              (List.hd t.slots) t.slots
          in
          s.root_mu_bits <- rmu;
          s.root_var_bits <- rvar;
          s.s_valid <- false;
          s
        end
  in
  t.use_tick <- t.use_tick + 1;
  slot.s_used <- t.use_tick;
  slot

(* Every gate fanin's arrival unchanged since version [limit]? *)
let fanin_clean t limit id =
  let fl = t.a.Arena.flat in
  let ok = ref true in
  for j = fl.Netlist.fi_off.(id) to fl.Netlist.fi_off.(id + 1) - 1 do
    let e = fl.Netlist.fi_node.(j) in
    if e >= 0 && t.stamp_arrival.(e) > limit then ok := false
  done;
  !ok

(* The reverse sweep mirrors the arena reverse sweep phase for phase.
   Phase 2 (the serial fixed-order scatter into the adjoint and gradient
   planes) always runs in full — it is the cheap part, and replaying it
   identically is what keeps incremental gradients bit-identical.
   Phase 1 (the Clark partial replays) is where the time goes; a gate's
   phase-1 products are reused from the slot when provably unchanged:

   - the slot is valid and the gate was active in it,
   - the gate's adjoint is bitwise equal to the slot's (adjoints are
     finalized top-down, so at decision time the adjoint pair is final),
   - the gate's own delay and every fanin arrival are unchanged since
     the slot's version (change stamps).

   Under these conditions a recompute would replay bit-identical
   operations on bit-identical operands, so reuse is exact.

   The Clark partials themselves (seed-independent) live in the arena's
   [pp] plane under a separate per-gate version guard [pc_version]: the
   second basis-seed gradient at the same point replays the multiply
   chain against them without touching a Clark operator. *)
let reverse_core t ~d_mu ~d_var =
  let a = t.a in
  let fl = a.Arena.flat in
  let n = t.n in
  Bigarray.Array1.fill a.Arena.adj 0.;
  Bigarray.Array1.fill a.Arena.grad 0.;
  Bytes.fill a.Arena.active 0 (Bytes.length a.Arena.active) '\000';
  (* PO-fold partials: recompute into the pp plane's trailing segment
     only when the engine state moved since they were last taken. *)
  let base = fl.Netlist.po_base in
  let m = Array.length fl.Netlist.po_node in
  if t.po_version <> t.version then begin
    for j = 1 to m - 1 do
      let e = fl.Netlist.po_node.(j) in
      let b = if e >= 0 then 2 * e else (-2 * e) - 2 in
      let src = if e >= 0 then a.Arena.arr else a.Arena.pi in
      Clark.partials_into
        ~mu_a:(Clark.vget a.Arena.pre (2 * (base + j) - 2))
        ~var_a:(Clark.vget a.Arena.pre (2 * (base + j) - 1))
        ~mu_b:(Clark.vget src b)
        ~var_b:(Clark.vget src (b + 1))
        a.Arena.pp (base + j)
    done;
    t.po_version <- t.version
  end;
  (* Backprop the PO fold against the stored partials, then scatter its
     per-operand adjoints in ascending PO order. *)
  Clark.vset a.Arena.fadj (2 * base) d_mu;
  Clark.vset a.Arena.fadj ((2 * base) + 1) d_var;
  for j = m - 1 downto 1 do
    Clark.backprop_apply a.Arena.pp (base + j) a.Arena.fadj ~acc:base
      ~out:(base + j)
  done;
  for i = 0 to m - 1 do
    let e = fl.Netlist.po_node.(i) in
    if e >= 0 then begin
      Clark.vset a.Arena.adj (2 * e)
        (Clark.vget a.Arena.adj (2 * e) +. Clark.vget a.Arena.fadj (2 * (base + i)));
      Clark.vset a.Arena.adj ((2 * e) + 1)
        (Clark.vget a.Arena.adj ((2 * e) + 1)
        +. Clark.vget a.Arena.fadj ((2 * (base + i)) + 1))
    end
  done;
  let slot = slot_for t ~d_mu ~d_var in
  let reused = ref 0 and recomputed = ref 0 and p_hits = ref 0 in
  (* When most arrival stamps moved since the slot was saved, the
     per-gate checks below cannot succeed; skip them wholesale. *)
  let try_reuse = slot.s_valid && t.stamp_bumps - slot.s_bumps <= t.n / 2 in
  let lvl_off = fl.Netlist.lvl_off in
  for l = Array.length lvl_off - 2 downto 0 do
    let lo = lvl_off.(l) and hi = lvl_off.(l + 1) in
    (* Serial reuse-decision pass (cheap comparisons only). *)
    let n_todo = ref 0 in
    for id = lo to hi - 1 do
      let am = Clark.vget a.Arena.adj (2 * id)
      and av = Clark.vget a.Arena.adj ((2 * id) + 1) in
      if am <> 0. || av <> 0. then begin
        Bytes.unsafe_set a.Arena.active id '\001';
        let reusable =
          try_reuse
          && Bytes.unsafe_get slot.s_active id <> '\000'
          && t.stamp_local.(id) <= slot.s_version
          && fbits_eq am (Clark.vget slot.s_adj (2 * id))
          && fbits_eq av (Clark.vget slot.s_adj ((2 * id) + 1))
          && fanin_clean t slot.s_version id
        in
        if reusable then begin
          Clark.vset a.Arena.dmu_t id (Clark.vget slot.s_dmu id);
          let fb = fl.Netlist.fi_off.(id) in
          let fk = fl.Netlist.fi_off.(id + 1) - fb in
          for j = 2 * fb to (2 * (fb + fk)) - 1 do
            Clark.vset a.Arena.fadj j (Clark.vget slot.s_fan j)
          done;
          incr reused
        end
        else begin
          t.todo.(!n_todo) <- id;
          incr n_todo;
          incr recomputed
        end
      end
    done;
    (* Phase 1 on the non-reusable subset: bit-identical to the per-gate
       operations of the arena reverse sweep, with the Clark partials
       themselves served from the point-keyed pp cache when the gate's
       input cone is unchanged since they were computed. *)
    pooled_for t !n_todo (fun i ->
        let id = t.todo.(i) in
        let am = Clark.vget a.Arena.adj (2 * id)
        and av = Clark.vget a.Arena.adj ((2 * id) + 1) in
        Clark.vset a.Arena.dmu_t id
          (am
          +. (av *. Sigma_model.dvar_dmu t.model (Clark.vget a.Arena.del (2 * id))));
        let fb = fl.Netlist.fi_off.(id) in
        let fk = fl.Netlist.fi_off.(id + 1) - fb in
        let pv = t.pc_version.(id) in
        let fresh = pv < 0 || not (fanin_clean t pv id) in
        if fresh then begin
          for j = 1 to fk - 1 do
            let e = fl.Netlist.fi_node.(fb + j) in
            let b = if e >= 0 then 2 * e else (-2 * e) - 2 in
            let src = if e >= 0 then a.Arena.arr else a.Arena.pi in
            Clark.partials_into
              ~mu_a:(Clark.vget a.Arena.pre (2 * (fb + j) - 2))
              ~var_a:(Clark.vget a.Arena.pre (2 * (fb + j) - 1))
              ~mu_b:(Clark.vget src b)
              ~var_b:(Clark.vget src (b + 1))
              a.Arena.pp (fb + j)
          done;
          t.pc_version.(id) <- t.version
        end;
        t.pc_hit.(id) <- not fresh;
        Clark.vset a.Arena.fadj (2 * fb) am;
        Clark.vset a.Arena.fadj ((2 * fb) + 1) av;
        for j = fk - 1 downto 1 do
          Clark.backprop_apply a.Arena.pp (fb + j) a.Arena.fadj ~acc:fb
            ~out:(fb + j)
        done);
    for i = 0 to !n_todo - 1 do
      if t.pc_hit.(t.todo.(i)) then incr p_hits
    done;
    (* Phase 2, serial in decreasing id: identical accumulation order to
       the arena reverse sweep. *)
    for id = hi - 1 downto lo do
      Arena.phase2_gate a id
    done
  done;
  (* Save this sweep's products for the next same-root gradient. *)
  Bigarray.Array1.blit a.Arena.adj slot.s_adj;
  Bigarray.Array1.blit a.Arena.dmu_t slot.s_dmu;
  Bigarray.Array1.blit a.Arena.fadj slot.s_fan;
  Bytes.blit a.Arena.active 0 slot.s_active 0 n;
  slot.s_version <- t.version;
  slot.s_bumps <- t.stamp_bumps;
  slot.s_valid <- true;
  t.st.s_p1_reused <- t.st.s_p1_reused + !reused;
  t.st.s_p1_recomputed <- t.st.s_p1_recomputed + !recomputed;
  t.st.s_partials_reused <- t.st.s_partials_reused + !p_hits;
  Util.Instr.add c_p1_reused !reused;
  Util.Instr.add c_p1_recomputed !recomputed;
  Util.Instr.add c_partials_reused !p_hits

let value_and_gradient t ~sizes ~seed =
  analyze_state t ~sizes;
  let res = Ssta.of_arena t.a in
  t.st.s_gradients <- t.st.s_gradients + 1;
  Util.Instr.incr c_gradient;
  Util.Instr.time t_reverse @@ fun () ->
  let root = seed res in
  reverse_core t ~d_mu:root.Ssta.d_mu ~d_var:root.Ssta.d_var;
  let grad = Array.make t.n 0. in
  Arena.gradient_into t.a grad;
  (res, grad)

let gradient t ~sizes ~seed = snd (value_and_gradient t ~sizes ~seed)

(* Raw plane-level variant for the sizing engine's inner loop: no result
   snapshot, no gradient copy — the caller reads the arena (via {!arena})
   and receives the gradient in its own buffer (old-id order). *)
let gradient_into t ~sizes ~d_mu ~d_var ~out =
  analyze_state t ~sizes;
  t.st.s_gradients <- t.st.s_gradients + 1;
  Util.Instr.incr c_gradient;
  (Util.Instr.time t_reverse @@ fun () -> reverse_core t ~d_mu ~d_var);
  Arena.gradient_into t.a out
