open Circuit
open Statdelay

type mode = Exact | Epsilon of float

(* ---- instrumentation -------------------------------------------------------- *)

let c_analyze = Util.Instr.counter "incr.analyze"
let c_cache_hit = Util.Instr.counter "incr.cache_hit"
let c_full_sweep = Util.Instr.counter "incr.full_sweep"
let c_reeval = Util.Instr.counter "incr.gates_reevaluated"
let c_cutoff = Util.Instr.counter "incr.cutoff"
let c_gradient = Util.Instr.counter "incr.gradient"
let c_p1_reused = Util.Instr.counter "incr.phase1_reused"
let c_p1_recomputed = Util.Instr.counter "incr.phase1_recomputed"
let c_partials_reused = Util.Instr.counter "incr.partials_reused"
let t_forward = Util.Instr.timer "incr.forward"
let t_reverse = Util.Instr.timer "incr.reverse"

type counters = {
  analyzes : int;
  cache_hits : int;
  full_sweeps : int;
  gates_reevaluated : int;
  cutoffs : int;
  gradients : int;
  phase1_reused : int;
  phase1_recomputed : int;
  partials_reused : int;
}

(* Per-engine totals, updated only from serial sections (unit tests read
   them without enabling the global Instr registry). *)
type stats = {
  mutable s_analyzes : int;
  mutable s_cache_hits : int;
  mutable s_full_sweeps : int;
  mutable s_reeval : int;
  mutable s_cutoffs : int;
  mutable s_gradients : int;
  mutable s_p1_reused : int;
  mutable s_p1_recomputed : int;
  mutable s_partials_reused : int;
}

(* ---- gradient reuse slots --------------------------------------------------- *)

(* One reuse history per distinct seed root: the previous reverse sweep's
   adjoints and phase-1 products (Clark-partial backprops and gate-delay
   mean adjoints), plus the engine version they were computed against.
   Sizing.Engine differentiates with the two constant basis seeds (1,0)
   and (0,1), so each gets a stable slot; roots that vary per call (e.g.
   a direct mu+3sigma seed) never pass the bitwise-adjoint guard and just
   cycle through the LRU slots. *)
type slot = {
  mutable root_mu_bits : int64;
  mutable root_var_bits : int64;
  mutable s_valid : bool;
  mutable s_version : int;
  mutable s_adj : Ssta.seed array;
  mutable s_active : bool array;
  mutable s_dmu : float array;
  mutable s_fan : Ssta.seed array array;
  mutable s_bumps : int;
      (** [t.stamp_bumps] at save time: when many stamps moved since, the
          per-gate reuse checks cannot succeed and are skipped wholesale *)
  mutable s_used : int;  (** LRU tick *)
}

let max_slots = 4

type t = {
  net : Netlist.t;
  model : Sigma_model.t;
  pool : Util.Pool.t option;
  mode : mode;
  n : int;
  (* Cached state of the last analyze. *)
  sizes : float array;
  arrival : Normal.t array;
  gate_delay : Normal.t array;
  loads : float array;
  mutable circuit : Normal.t;
  mutable f_valid : bool;
      (* cached forward state may serve as a delta base; cleared by
         [invalidate] *)
  mutable initialized : bool;
      (* the arrays hold a completed analysis (never cleared: change
         stamps stay meaningful across invalidations) *)
  (* Change tracking.  [version] counts state-changing analyzes;
     [stamp_arrival.(g)] / [stamp_local.(g)] record the last version at
     which gate [g]'s arrival / own delay+load changed value. *)
  mutable version : int;
  stamp_arrival : int array;
  stamp_local : int array;
  mutable stamp_bumps : int;  (* total arrival-stamp writes, ever *)
  (* Seed-independent Clark partials of each gate's fanin fold, valid
     while every gate-fanin arrival is unchanged since [pc_version.(g)].
     Lets the second basis-seed gradient at the same point (and any gate
     whose input cone is clean) replay the reverse chain with eight
     multiplies per operand instead of re-running the Clark operators. *)
  pc_partials : Clark.partials array array;
  pc_version : int array;
  pc_hit : bool array;
  (* PO-fold partials, valid for the current version only. *)
  mutable po_partials : Clark.partials array;
  mutable po_version : int;
  (* Scratch for one sweep. *)
  dirty : bool array;
  changed : bool array;
  changed_local : bool array;
  mutable marked : int list;
  (* Gradient reuse. *)
  mutable slots : slot list;
  mutable use_tick : int;
  st : stats;
}

let create ?pool ?(mode = Exact) ~model net =
  (match mode with
  | Exact -> ()
  | Epsilon e ->
      if not (e >= 0.) then invalid_arg "Incr.create: epsilon must be >= 0");
  let n = Netlist.n_gates net in
  {
    net;
    model;
    pool;
    mode;
    n;
    sizes = Array.make n 0.;
    arrival = Array.make n (Normal.deterministic 0.);
    gate_delay = Array.make n (Normal.deterministic 0.);
    loads = Array.make n 0.;
    circuit = Normal.deterministic 0.;
    f_valid = false;
    initialized = false;
    version = 0;
    stamp_arrival = Array.make n 0;
    stamp_local = Array.make n 0;
    stamp_bumps = 0;
    pc_partials = Array.make n [||];
    pc_version = Array.make n (-1);
    pc_hit = Array.make n false;
    po_partials = [||];
    po_version = -1;
    dirty = Array.make n false;
    changed = Array.make n false;
    changed_local = Array.make n false;
    marked = [];
    slots = [];
    use_tick = 0;
    st =
      {
        s_analyzes = 0;
        s_cache_hits = 0;
        s_full_sweeps = 0;
        s_reeval = 0;
        s_cutoffs = 0;
        s_gradients = 0;
        s_p1_reused = 0;
        s_p1_recomputed = 0;
        s_partials_reused = 0;
      };
  }

let netlist t = t.net
let mode t = t.mode

let counters t =
  {
    analyzes = t.st.s_analyzes;
    cache_hits = t.st.s_cache_hits;
    full_sweeps = t.st.s_full_sweeps;
    gates_reevaluated = t.st.s_reeval;
    cutoffs = t.st.s_cutoffs;
    gradients = t.st.s_gradients;
    phase1_reused = t.st.s_p1_reused;
    phase1_recomputed = t.st.s_p1_recomputed;
    partials_reused = t.st.s_partials_reused;
  }

let dirty_fraction t =
  if t.st.s_analyzes = 0 || t.n = 0 then 0.
  else float_of_int t.st.s_reeval /. (float_of_int t.st.s_analyzes *. float_of_int t.n)

let invalidate t = t.f_valid <- false

(* ---- forward sweep ---------------------------------------------------------- *)

let bits = Int64.bits_of_float

let normal_same_bits a b =
  Int64.equal (bits (Normal.mu a)) (bits (Normal.mu b))
  && Int64.equal (bits (Normal.var a)) (bits (Normal.var b))

let normal_close eps a b =
  abs_float (Normal.mu a -. Normal.mu b) <= eps *. (1. +. abs_float (Normal.mu b))
  && abs_float (Normal.sigma a -. Normal.sigma b) <= eps *. (1. +. Normal.sigma b)

let node_arrival t = Ssta.Kernel.node_arrival ~pi_arrival:Ssta.Kernel.default_pi_arrival t.arrival

let pooled_for t n body =
  match t.pool with
  | Some p when Util.Pool.size p > 1 && n >= 2 * Ssta.Kernel.level_grain ->
      Util.Pool.parallel_for ~grain:Ssta.Kernel.level_grain p ~n body
  | _ ->
      for i = 0 to n - 1 do
        body i
      done

(* Re-evaluate the gates of [ids] (one level, or a level's dirty subset)
   against the engine's current sizes and cached fanin arrivals — the
   exact operations of Ssta.analyze's eval_gate, so recomputed values are
   bit-identical to a from-scratch sweep.  Pure per-gate slot writes:
   safe to run on the pool.  Change flags (vs the previously cached
   values) are left in [t.changed] / [t.changed_local] for the caller's
   serial stamp-and-mark pass. *)
let recompute t ids =
  pooled_for t (Array.length ids) (fun i ->
      let id = ids.(i) in
      let g = Netlist.gate t.net id in
      let load = Netlist.load t.net ~sizes:t.sizes id in
      let mu_t = Cell.delay g.Netlist.cell ~size:t.sizes.(id) ~load in
      let tdel = Normal.of_var ~mu:mu_t ~var:(Sigma_model.var t.model mu_t) in
      let operands = Array.map (node_arrival t) g.Netlist.fanin in
      let arr = Normal.add (Ssta.Kernel.fold_max_last operands) tdel in
      let changed =
        (not t.initialized)
        ||
        match t.mode with
        | Exact -> not (normal_same_bits arr t.arrival.(id))
        | Epsilon e -> not (normal_close e arr t.arrival.(id))
      in
      let changed_local =
        (not t.initialized)
        || (not (Int64.equal (bits load) (bits t.loads.(id))))
        || not (normal_same_bits tdel t.gate_delay.(id))
      in
      t.loads.(id) <- load;
      t.gate_delay.(id) <- tdel;
      (match (t.mode, changed) with
      | Epsilon _, false ->
          (* Epsilon cutoff keeps the lagged arrival: consumers then see a
             value consistent with what they were last timed against. *)
          ()
      | _ -> t.arrival.(id) <- arr);
      t.changed.(id) <- changed;
      t.changed_local.(id) <- changed_local)

let refold_pos t =
  let po_operands = Array.map (node_arrival t) (Netlist.pos t.net) in
  t.circuit <- Ssta.Kernel.fold_max_last po_operands

let full_sweep t ~sizes =
  t.version <- t.version + 1;
  Array.blit sizes 0 t.sizes 0 t.n;
  Array.iter (fun bucket -> recompute t bucket) (Netlist.level_buckets t.net);
  for id = 0 to t.n - 1 do
    if t.changed.(id) then begin
      t.stamp_arrival.(id) <- t.version;
      t.stamp_bumps <- t.stamp_bumps + 1
    end;
    if t.changed_local.(id) then t.stamp_local.(id) <- t.version
  done;
  refold_pos t;
  t.st.s_full_sweeps <- t.st.s_full_sweeps + 1;
  t.st.s_reeval <- t.st.s_reeval + t.n;
  Util.Instr.incr c_full_sweep;
  Util.Instr.add c_reeval t.n

let mark t id =
  if not t.dirty.(id) then begin
    t.dirty.(id) <- true;
    t.marked <- id :: t.marked
  end

let incremental_sweep t ~sizes changed_ids =
  t.version <- t.version + 1;
  (* Seed the dirty set: the changed gates themselves, plus every gate
     fanin of a changed gate — the driver's load (hence delay and
     arrival) depends on the consumer's size. *)
  List.iter
    (fun id ->
      mark t id;
      Array.iter
        (function Netlist.Pi _ -> () | Netlist.Gate d -> mark t d)
        (Netlist.gate t.net id).Netlist.fanin)
    changed_ids;
  Array.blit sizes 0 t.sizes 0 t.n;
  let reeval = ref 0 and cuts = ref 0 in
  Array.iter
    (fun bucket ->
      let k = ref 0 in
      Array.iter (fun id -> if t.dirty.(id) then incr k) bucket;
      if !k > 0 then begin
        (* The bucket's dirty subset, in bucket (ascending id) order. *)
        let ids = Array.make !k 0 in
        let j = ref 0 in
        Array.iter
          (fun id ->
            if t.dirty.(id) then begin
              ids.(!j) <- id;
              incr j
            end)
          bucket;
        recompute t ids;
        reeval := !reeval + !k;
        Array.iter
          (fun id ->
            if t.changed_local.(id) then t.stamp_local.(id) <- t.version;
            if t.changed.(id) then begin
              t.stamp_arrival.(id) <- t.version;
              t.stamp_bumps <- t.stamp_bumps + 1;
              List.iter (fun (c, _) -> mark t c) (Netlist.fanout t.net id)
            end
            else incr cuts)
          ids
      end)
    (Netlist.level_buckets t.net);
  List.iter (fun id -> t.dirty.(id) <- false) t.marked;
  t.marked <- [];
  refold_pos t;
  t.st.s_reeval <- t.st.s_reeval + !reeval;
  t.st.s_cutoffs <- t.st.s_cutoffs + !cuts;
  Util.Instr.add c_reeval !reeval;
  Util.Instr.add c_cutoff !cuts

(* Bring the engine's cached state to [sizes]. *)
let analyze_state t ~sizes =
  Netlist.check_sizes t.net sizes;
  t.st.s_analyzes <- t.st.s_analyzes + 1;
  Util.Instr.incr c_analyze;
  Util.Instr.time t_forward @@ fun () ->
  if not t.f_valid then full_sweep t ~sizes
  else begin
    let changed_ids = ref [] in
    for id = t.n - 1 downto 0 do
      if not (Int64.equal (bits sizes.(id)) (bits t.sizes.(id))) then
        changed_ids := id :: !changed_ids
    done;
    match !changed_ids with
    | [] ->
        t.st.s_cache_hits <- t.st.s_cache_hits + 1;
        Util.Instr.incr c_cache_hit
    | ids -> incremental_sweep t ~sizes ids
  end;
  t.f_valid <- true;
  t.initialized <- true

let snapshot t : Ssta.result =
  {
    Ssta.arrival = Array.copy t.arrival;
    gate_delay = Array.copy t.gate_delay;
    loads = Array.copy t.loads;
    circuit = t.circuit;
  }

let analyze t ~sizes =
  analyze_state t ~sizes;
  snapshot t

(* ---- reverse sweep ---------------------------------------------------------- *)

let zero_seed = { Ssta.d_mu = 0.; d_var = 0. }

let seed_bits_eq (a : Ssta.seed) (b : Ssta.seed) =
  Int64.equal (bits a.Ssta.d_mu) (bits b.Ssta.d_mu)
  && Int64.equal (bits a.Ssta.d_var) (bits b.Ssta.d_var)

(* Seed-independent Clark partials of the left-fold max over [operands]:
   the exact [Clark.max2_full] evaluations Ssta's [backprop_fold]
   performs, hoisted out so they can be cached across seeds (the two
   basis gradients of one evaluation share them) and across sparse
   deltas (gates whose input cone is clean keep them). *)
let fold_partials operands =
  let k = Array.length operands in
  if k <= 1 then [||]
  else begin
    let prefix = Ssta.Kernel.fold_max operands in
    Array.init (k - 1) (fun j -> snd (Clark.max2_full prefix.(j) operands.(j + 1)))
  end

(* Replays [Ssta.Kernel.backprop_fold]'s multiply chain against stored
   partials — identical expressions in identical order, so the result is
   bitwise equal to recomputing the fold from the operands. *)
let backprop_with partials k (adj : Ssta.seed) =
  let out = Array.make k zero_seed in
  let acc = ref adj in
  for i = k - 1 downto 1 do
    let p = partials.(i - 1) in
    let a = !acc in
    out.(i) <-
      {
        Ssta.d_mu =
          (a.Ssta.d_mu *. p.Clark.dmu_dmu_b) +. (a.Ssta.d_var *. p.Clark.dvar_dmu_b);
        d_var =
          (a.Ssta.d_mu *. p.Clark.dmu_dvar_b) +. (a.Ssta.d_var *. p.Clark.dvar_dvar_b);
      };
    acc :=
      {
        Ssta.d_mu =
          (a.Ssta.d_mu *. p.Clark.dmu_dmu_a) +. (a.Ssta.d_var *. p.Clark.dvar_dmu_a);
        d_var =
          (a.Ssta.d_mu *. p.Clark.dmu_dvar_a) +. (a.Ssta.d_var *. p.Clark.dvar_dvar_a);
      }
  done;
  out.(0) <- !acc;
  out

let fresh_slot rmu rvar =
  {
    root_mu_bits = rmu;
    root_var_bits = rvar;
    s_valid = false;
    s_version = 0;
    s_adj = [||];
    s_active = [||];
    s_dmu = [||];
    s_fan = [||];
    s_bumps = 0;
    s_used = 0;
  }

let slot_for t (root : Ssta.seed) =
  let rmu = bits root.Ssta.d_mu and rvar = bits root.Ssta.d_var in
  let slot =
    match
      List.find_opt
        (fun s -> Int64.equal s.root_mu_bits rmu && Int64.equal s.root_var_bits rvar)
        t.slots
    with
    | Some s -> s
    | None ->
        if List.length t.slots < max_slots then begin
          let s = fresh_slot rmu rvar in
          t.slots <- s :: t.slots;
          s
        end
        else begin
          (* Recycle the least recently used slot for this new root. *)
          let s =
            List.fold_left
              (fun a b -> if b.s_used < a.s_used then b else a)
              (List.hd t.slots) t.slots
          in
          s.root_mu_bits <- rmu;
          s.root_var_bits <- rvar;
          s.s_valid <- false;
          s
        end
  in
  t.use_tick <- t.use_tick + 1;
  slot.s_used <- t.use_tick;
  slot

(* The reverse sweep mirrors Ssta.value_and_gradient phase for phase.
   Phase 2 (the serial fixed-order scatter into adj/grad) always runs in
   full — it is the cheap part, and replaying it identically is what
   keeps incremental gradients bit-identical.  Phase 1 (the Clark
   partial replays) is where the time goes; a gate's phase-1 products
   are reused from the slot when provably unchanged:

   - the slot is valid and the gate was active in it,
   - the gate's adjoint is bitwise equal to the slot's (adjoints are
     finalized top-down, so at decision time adj.(id) is final),
   - the gate's own delay and every fanin arrival are unchanged since
     the slot's version (change stamps).

   Under these conditions a recompute would replay bit-identical
   operations on bit-identical operands, so reuse is exact. *)
let value_and_gradient t ~sizes ~seed =
  analyze_state t ~sizes;
  let res = snapshot t in
  t.st.s_gradients <- t.st.s_gradients + 1;
  Util.Instr.incr c_gradient;
  Util.Instr.time t_reverse @@ fun () ->
  let net = t.net and n = t.n in
  let adj = Array.make n zero_seed in
  let add_adj node (a : Ssta.seed) =
    match node with
    | Netlist.Pi _ -> ()
    | Netlist.Gate g ->
        let cur = adj.(g) in
        adj.(g) <-
          { Ssta.d_mu = cur.Ssta.d_mu +. a.Ssta.d_mu; d_var = cur.Ssta.d_var +. a.Ssta.d_var }
  in
  let po_nodes = Netlist.pos net in
  if t.po_version <> t.version then begin
    t.po_partials <- fold_partials (Array.map (node_arrival t) po_nodes);
    t.po_version <- t.version
  end;
  let root = seed res in
  let po_adj = backprop_with t.po_partials (Array.length po_nodes) root in
  Array.iteri (fun i node -> add_adj node po_adj.(i)) po_nodes;
  let grad = Array.make n 0. in
  let slot = slot_for t root in
  let active = Array.make n false in
  let dmu_ts = Array.make n 0. in
  let fan_adjs = Array.make n [||] in
  let todo = Array.make n 0 in
  let reused = ref 0 and recomputed = ref 0 and p_hits = ref 0 in
  (* When most arrival stamps moved since the slot was saved, the
     per-gate checks below cannot succeed; skip them wholesale. *)
  let try_reuse = slot.s_valid && t.stamp_bumps - slot.s_bumps <= t.n / 2 in
  let buckets = Netlist.level_buckets net in
  for l = Array.length buckets - 1 downto 0 do
    let bucket = buckets.(l) in
    let len = Array.length bucket in
    (* Serial reuse-decision pass (cheap comparisons only). *)
    let n_todo = ref 0 in
    for i = 0 to len - 1 do
      let id = bucket.(i) in
      let a = adj.(id) in
      if a.Ssta.d_mu <> 0. || a.Ssta.d_var <> 0. then begin
        active.(id) <- true;
        let reusable =
          try_reuse && slot.s_active.(id)
          && t.stamp_local.(id) <= slot.s_version
          && seed_bits_eq a slot.s_adj.(id)
          && Array.for_all
               (function
                 | Netlist.Pi _ -> true
                 | Netlist.Gate d -> t.stamp_arrival.(d) <= slot.s_version)
               (Netlist.gate net id).Netlist.fanin
        in
        if reusable then begin
          dmu_ts.(id) <- slot.s_dmu.(id);
          fan_adjs.(id) <- slot.s_fan.(id);
          incr reused
        end
        else begin
          todo.(!n_todo) <- id;
          incr n_todo;
          incr recomputed
        end
      end
    done;
    (* Phase 1 on the non-reusable subset: bit-identical to the per-gate
       operations of Ssta.value_and_gradient's phase 1, with the Clark
       partials themselves served from the point-keyed cache when the
       gate's input cone is unchanged since they were computed. *)
    pooled_for t !n_todo (fun i ->
        let id = todo.(i) in
        let a = adj.(id) in
        let g = Netlist.gate net id in
        let tdel = t.gate_delay.(id) in
        dmu_ts.(id) <-
          a.Ssta.d_mu +. (a.Ssta.d_var *. Sigma_model.dvar_dmu t.model (Normal.mu tdel));
        let fanin = g.Netlist.fanin in
        let pv = t.pc_version.(id) in
        let fresh =
          pv < 0
          || not
               (Array.for_all
                  (function
                    | Netlist.Pi _ -> true
                    | Netlist.Gate d -> t.stamp_arrival.(d) <= pv)
                  fanin)
        in
        if fresh then begin
          t.pc_partials.(id) <- fold_partials (Array.map (node_arrival t) fanin);
          t.pc_version.(id) <- t.version
        end;
        t.pc_hit.(id) <- not fresh;
        fan_adjs.(id) <- backprop_with t.pc_partials.(id) (Array.length fanin) a);
    for i = 0 to !n_todo - 1 do
      if t.pc_hit.(todo.(i)) then incr p_hits
    done;
    (* Phase 2, serial in decreasing id: identical accumulation order to
       Ssta.value_and_gradient (fan_adjs are kept for the slot rather
       than dropped — same numbers either way). *)
    for i = len - 1 downto 0 do
      let id = bucket.(i) in
      if active.(id) then begin
        let g = Netlist.gate net id in
        let dmu_t = dmu_ts.(id) in
        let cell = g.Netlist.cell in
        let s_g = t.sizes.(id) in
        grad.(id) <-
          grad.(id) -. (dmu_t *. cell.Cell.drive *. t.loads.(id) /. (s_g *. s_g));
        List.iter
          (fun (consumer, mult) ->
            let c = Netlist.gate net consumer in
            grad.(consumer) <-
              grad.(consumer)
              +. dmu_t *. cell.Cell.drive *. float_of_int mult
                 *. c.Netlist.cell.Cell.c_in /. s_g)
          (Netlist.fanout net id);
        Array.iteri (fun i node -> add_adj node fan_adjs.(id).(i)) g.Netlist.fanin
      end
    done
  done;
  slot.s_adj <- adj;
  slot.s_active <- active;
  slot.s_dmu <- dmu_ts;
  slot.s_fan <- fan_adjs;
  slot.s_version <- t.version;
  slot.s_bumps <- t.stamp_bumps;
  slot.s_valid <- true;
  t.st.s_p1_reused <- t.st.s_p1_reused + !reused;
  t.st.s_p1_recomputed <- t.st.s_p1_recomputed + !recomputed;
  t.st.s_partials_reused <- t.st.s_partials_reused + !p_hits;
  Util.Instr.add c_p1_reused !reused;
  Util.Instr.add c_p1_recomputed !recomputed;
  Util.Instr.add c_partials_reused !p_hits;
  (res, grad)

let gradient t ~sizes ~seed = snd (value_and_gradient t ~sizes ~seed)
