open Circuit
open Statdelay

let analytic circuit ~deadline = Normal.cdf_at circuit deadline

type delay_shape = Gaussian | Uniform | Shifted_exponential | Two_point

(* Draw from the given family with mean [mu] and standard deviation
   [sigma] (all four families are moment-matched). *)
let draw_shape rng shape ~mu ~sigma =
  match shape with
  | Gaussian -> Util.Rng.gaussian rng ~mu ~sigma
  | Uniform ->
      let half_width = sigma *. sqrt 3. in
      Util.Rng.uniform rng ~lo:(mu -. half_width) ~hi:(mu +. half_width)
  | Shifted_exponential ->
      let u = Util.Rng.float rng in
      let u = if u <= 0. then epsilon_float else u in
      mu -. sigma -. (sigma *. log u) (* Exp(rate 1/sigma) has mean = sd = sigma *)
  | Two_point -> if Util.Rng.float rng < 0.5 then mu -. sigma else mu +. sigma

let sample_circuit_delays ?rng ?(shape = Gaussian) ?arena ~model net ~sizes ~n =
  let rng = match rng with Some r -> r | None -> Util.Rng.create 7 in
  (* Gate delay moments come off the (arena-backed) analytic sweep; the
     per-sample deterministic retiming then reuses one arrival scratch,
     so the sampling loop allocates only the output array. *)
  let res = Ssta.analyze ?arena ~model net ~sizes in
  let n_gates = Netlist.n_gates net in
  let gate_delay = Array.make n_gates 0. in
  let arrival = Array.make n_gates 0. in
  Array.init n (fun _ ->
      for g = 0 to n_gates - 1 do
        let d = res.Ssta.gate_delay.(g) in
        gate_delay.(g) <-
          draw_shape rng shape ~mu:(Normal.mu d) ~sigma:(Normal.sigma d)
      done;
      Dsta.propagate_into net ~gate_delay ~arrival)

let monte_carlo ?rng ?arena ~model net ~sizes ~deadline ~n =
  let samples = sample_circuit_delays ?rng ?arena ~model net ~sizes ~n in
  Util.Stats.fraction_le samples deadline
