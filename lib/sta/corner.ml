open Statdelay

type corners = { best : float; typical : float; worst : float }

let analyze ?(k = 3.) ~model net ~sizes =
  let dists = (Ssta.analyze ~model net ~sizes).Ssta.gate_delay in
  let at f =
    let gate_delay = Array.map f dists in
    (Dsta.analyze_with_delays net ~gate_delay).Dsta.circuit
  in
  {
    best = at (fun d -> max 0. (Normal.mu d -. (k *. Normal.sigma d)));
    typical = at Normal.mu;
    worst = at (fun d -> Normal.mu d +. (k *. Normal.sigma d));
  }

type pessimism = {
  corners : corners;
  statistical : float;
  monte_carlo_quantile : float;
  overestimate : float;
}

let pessimism ?rng ?(k = 3.) ?(samples = 20_000) ~model net ~sizes =
  let corners = analyze ~k ~model net ~sizes in
  let circuit = (Ssta.analyze ~model net ~sizes).Ssta.circuit in
  let statistical = Normal.mu_plus_k_sigma circuit k in
  let draws = Yield.sample_circuit_delays ?rng ~model net ~sizes ~n:samples in
  let q = Util.Special.normal_cdf k in
  let monte_carlo_quantile = Util.Stats.quantile draws q in
  {
    corners;
    statistical;
    monte_carlo_quantile;
    overestimate = corners.worst /. monte_carlo_quantile;
  }
