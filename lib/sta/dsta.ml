open Circuit

type result = {
  arrival : float array;
  gate_delay : float array;
  circuit : float;
}

let delays net ~sizes =
  Netlist.check_sizes net sizes;
  Array.map
    (fun (g : Netlist.gate) ->
      let load = Netlist.load net ~sizes g.Netlist.id in
      Cell.delay g.Netlist.cell ~size:sizes.(g.Netlist.id) ~load)
    (Netlist.gates net)

let propagate_into ?(pi_arrival = fun _ -> 0.) net ~gate_delay ~arrival =
  let n = Netlist.n_gates net in
  if Array.length gate_delay <> n || Array.length arrival < n then
    invalid_arg "Dsta.propagate_into: dimension mismatch";
  let node_arrival = function
    | Netlist.Pi i -> pi_arrival i
    | Netlist.Gate g -> arrival.(g)
  in
  Array.iter
    (fun (g : Netlist.gate) ->
      let u =
        Array.fold_left
          (fun acc fan -> max acc (node_arrival fan))
          neg_infinity g.Netlist.fanin
      in
      arrival.(g.Netlist.id) <- u +. gate_delay.(g.Netlist.id))
    (Netlist.gates net);
  Array.fold_left
    (fun acc po -> max acc (node_arrival po))
    neg_infinity (Netlist.pos net)

let analyze_with_delays ?pi_arrival net ~gate_delay =
  let arrival = Array.make (Netlist.n_gates net) 0. in
  let circuit = propagate_into ?pi_arrival net ~gate_delay ~arrival in
  { arrival; gate_delay; circuit }

let analyze ?pi_arrival net ~sizes =
  analyze_with_delays ?pi_arrival net ~gate_delay:(delays net ~sizes)

let required net ~gate_delay ~deadline =
  let n = Netlist.n_gates net in
  let req = Array.make n infinity in
  (* A gate feeding a PO must finish by the deadline. *)
  Array.iter
    (function Netlist.Gate g -> req.(g) <- min req.(g) deadline | Netlist.Pi _ -> ())
    (Netlist.pos net);
  (* Reverse topological order = decreasing id. *)
  for g = n - 1 downto 0 do
    let gate = Netlist.gate net g in
    let own_start = req.(g) -. gate_delay.(g) in
    Array.iter
      (function
        | Netlist.Gate src -> req.(src) <- min req.(src) own_start
        | Netlist.Pi _ -> ())
      gate.Netlist.fanin
  done;
  req

let slack net ~sizes ~deadline =
  let gate_delay = delays net ~sizes in
  let { arrival; _ } = analyze_with_delays net ~gate_delay in
  let req = required net ~gate_delay ~deadline in
  Array.mapi (fun i r -> r -. arrival.(i)) req

let critical_path net ~sizes =
  let { arrival; gate_delay; _ } = analyze net ~sizes in
  let node_arrival = function
    | Netlist.Pi _ -> 0.
    | Netlist.Gate g -> arrival.(g)
  in
  (* Start at the latest PO gate, walk back through the latest fanin. *)
  let last =
    Array.fold_left
      (fun acc po ->
        match (acc, po) with
        | None, Netlist.Gate g -> Some g
        | Some best, Netlist.Gate g -> if arrival.(g) > arrival.(best) then Some g else acc
        | _, Netlist.Pi _ -> acc)
      None (Netlist.pos net)
  in
  let rec walk acc g =
    let gate = Netlist.gate net g in
    let u = arrival.(g) -. gate_delay.(g) in
    let pred =
      Array.fold_left
        (fun acc fan ->
          match fan with
          | Netlist.Gate src
            when acc = None && abs_float (node_arrival fan -. u) < 1e-9 ->
              Some src
          | Netlist.Gate _ | Netlist.Pi _ -> acc)
        None gate.Netlist.fanin
    in
    match pred with None -> g :: acc | Some src -> walk (g :: acc) src
  in
  match last with None -> [] | Some g -> walk [] g
