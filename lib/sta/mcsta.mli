(** Batched circuit-level Monte Carlo SSTA — the sampling golden oracle.

    The paper's headline evidence is statistical: sized circuits meet
    their constraint in 50% / 84.1% / 99.8% of manufactured instances for
    {m \mu} / {m \mu + \sigma} / {m \mu + 3\sigma} guard-banding
    (Section 4), and the normal approximation behind Clark's max is only
    ever validated by sampling.  This engine draws whole-circuit delay
    realizations directly: per-gate delay samples propagate level by
    level with the {e exact} [max]/[+] semantics (no moment matching), so
    its empirical distribution of {m T_{max}} is the reference the
    analytic {!Ssta} is judged against.

    {2 Determinism contract}

    Sampling is keyed, not sequential: gate [g] draws from the private
    stream [Util.Rng.keyed seed ~key:g], and sample [k] of that stream is
    consumed in global order.  Consequences, locked in by the test suite:

    - results are {e bit-identical} (every [Int64.bits_of_float]) for the
      same [seed] regardless of [batch] size, and
    - regardless of [?pool] domain count — within a level each gate fills
      only its own row of the batch buffer from its own stream, and every
      cross-gate reduction (the primary-output max, the moment
      accumulation, quantiles) runs serially in a fixed order.

    Instrumented via {!Util.Instr}: counters [mc.sample], [mc.samples],
    [mc.batches], [mc.parallel_levels], [mc.serial_levels]; timer
    [mc.sample]. *)

type draw = Util.Rng.t -> mu:float -> sigma:float -> float
(** A per-gate delay sampler.  The default draws from the model's own
    normal assumption; {!Yield.draw_shape} supplies the moment-matched
    non-normal families of the F-SHAPE experiment.  A draw must be a
    deterministic function of the generator state for the bit-identity
    guarantees to hold. *)

val gaussian_draw : draw
(** [Util.Rng.gaussian]: the model's own assumption. *)

val sample :
  ?pool:Util.Pool.t ->
  ?arena:Arena.t ->
  ?batch:int ->
  ?seed:int ->
  ?draw:draw ->
  ?pi_arrival:(int -> float) ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  n:int ->
  float array
(** [sample ~model net ~sizes ~n] is [n] independent realizations of the
    circuit delay {m T_{max}}, in sample order.  Each realization draws
    every gate delay from [draw] (default {!gaussian_draw}) with the
    sizable-cell mean and the {!Circuit.Sigma_model} standard deviation
    at the given [sizes], and propagates worst-case arrivals exactly.

    [batch] (default 1024) bounds the working set: arrivals are kept in a
    flat [n_gates * batch] float array reused across batches.  [seed]
    (default 1) selects the keyed stream family.  [pi_arrival] gives each
    primary input a deterministic arrival time (default [0.]).  [pool]
    distributes the per-level gate rows over its domains; see the
    determinism contract above.

    [arena] reuses a flat {!Arena}'s planes for the per-gate delay means
    (one {!Arena.forward} instead of a fresh {!Dsta.delays} array) —
    bit-identical samples either way.  Raises [Invalid_argument] if the
    arena belongs to a different netlist. *)

(** {1 Reductions} *)

type summary = {
  n : int;
  mu : float;  (** empirical mean of {m T_{max}} *)
  sigma : float;  (** unbiased sample standard deviation *)
  min_t : float;
  max_t : float;
  quantiles : (float * float) list;  (** [(p, empirical p-quantile)] *)
}

val default_quantiles : float list
(** The paper-relevant probabilities: 0.5, {m \Phi(1)} = 0.8413 and
    {m \Phi(3)} = 0.99865. *)

val summarize : ?quantiles:float list -> float array -> summary
(** Empirical moments and quantiles of a sample array (serial, fixed
    order — deterministic). *)

type conformance = {
  budget : float;  (** the delay constraint {m D} being checked *)
  n : int;
  hits : int;  (** samples with {m T_{max} \le D} *)
  p : float;  (** point estimate [hits / n] *)
  ci_lo : float;
  ci_hi : float;
      (** 95% Wilson score interval for the true conformance probability *)
}

val conformance : ?z:float -> float array -> budget:float -> conformance
(** [conformance samples ~budget] estimates {m P(T_{max} \le budget)}
    with a binomial confidence interval ([z] defaults to 1.96, i.e.
    95%).  This is the estimator that reproduces the Section-4
    50% / 84.1% / 99.8% guard-band claim. *)

val pp_summary : Format.formatter -> summary -> unit
val pp_conformance : Format.formatter -> conformance -> unit
