open Circuit
open Statdelay

(* Flat structure-of-arrays timing state shared by every STA engine.

   One arena holds every per-gate and per-fold-step quantity of a
   statistical timing analysis in unboxed [Bigarray.Array1] (float64)
   planes, indexed by the flat view's {e level-major} gate ids (or by
   fold slot, see Netlist.flat).  Moment planes interleave (mu, var)
   pairs — slot [i] at indices [2i] / [2i + 1] — so a random gather of
   a fanin arrival touches one cache line instead of two parallel
   planes, and a levelized sweep walks each level's pairs as one
   contiguous block.  All planes are allocated once in [create] (off
   the OCaml heap: the GC neither scans nor moves them); the forward
   and reverse sweeps then write in place, so a steady-state
   evaluation — the inner loop of an augmented-Lagrangian sizing
   solve — allocates nothing.

   Id spaces.  Everything inside the arena is in new (level-major) ids;
   the public boundary stays in old gate ids: [forward ~sizes] takes an
   old-id size vector (gathered through [flat.inv_perm] once per sweep)
   and [gradient_into] / [delay_means_into] scatter back through the
   same permutation.  Because the permutation is monotone within each
   level (Netlist.flat's contract), the new-id sweep order coincides
   with the old-id order the boxed reference uses, level by level.

   Bit-identity contract: the sweeps perform the same floating-point
   operations in the same order as the boxed reference implementation
   (Ssta.Boxed), via the flat Clark kernels (Clark.max2_into and
   friends), so arrivals, circuit moments and gradients are
   Int64-bit-identical to the record-returning path at 1, 2 or 4
   domains.  test/test_arena.ml enforces this differentially.

   Scratch-plane layout.  A gate's fanin fold of Clark.max2 owns the
   slot range [fi_off.(g) .. fi_off.(g+1) - 1] of the [pre] (prefix
   moments), [fadj] (per-operand adjoints) and [pp] (8 partials per
   step) planes; the primary-output fold owns the trailing
   [po_base .. po_base + n_pos - 1] segment.  Ranges are disjoint across
   gates, which is what lets the level-parallel phases write without
   synchronisation while keeping the serial scatter order fixed (the
   same two-phase scheme as the boxed sweeps). *)

type vec = Clark.vec

(* Compact index column: staging reads one index per fold slot / fanout
   edge, so storing them as int32 halves that stream's bandwidth next
   to OCaml's 8-byte [int array]. *)
type ivec = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t


(* Staging gathers in C (stage_stubs.c): pure pair/size copies — no
   floating-point arithmetic, so bit-identity is untouched — with
   software prefetch keeping a couple of dozen cache misses in flight,
   which the OCaml loop's out-of-order window alone cannot. *)
external stage_gather_pairs : Clark.vec -> ivec -> Clark.vec -> int -> int -> unit
  = "sta_stage_gather_pairs"
[@@noalloc]

external stage_gather_sizes : Clark.vec -> ivec -> Clark.vec -> int -> int -> unit
  = "sta_stage_gather_sizes"
[@@noalloc]

type t = {
  net : Netlist.t;
  flat : Netlist.flat;
  n : int;  (** gate count; every per-gate plane has this many slots *)
  (* -- forward state, valid after [forward] -- *)
  sizes : vec;  (** last sizes swept, permuted to new-id order *)
  load : vec;
  del : vec;  (** gate delay (mu, var) pairs *)
  arr : vec;  (** arrival (mu, var) pairs per gate *)
  pre : vec;  (** fold-slot pair plane: prefix maxima of each fold *)
  opnd : vec;
      (** level-window pair scratch: the current level's staged fanin
          operands, indexed by [slot - fi_off.(level lo)] — sized for
          the widest level so it stays cache-resident across levels *)
  fosz : vec;
      (** level-window scratch: the current level's staged consumer
          sizes, indexed by [edge - fo_off.(level lo)] *)
  fi_b : ivec;
      (** fold-slot column: pair index of each operand in [arr] —
          [2 * e] for a gate fanin, [2 * (n + i)] for primary input
          [i] (whose pairs live in [arr]'s tail section) — so staging
          is a branch-free gather from a single plane *)
  fo_c : ivec;  (** fanout-edge column: [fo_consumer] as int32 *)
  pi : vec;  (** primary-input arrival pairs (zero by default) *)
  (* -- reverse state, valid after [reverse] -- *)
  pp : vec;  (** fold-slot plane x8: Clark partials per fold step *)
  adj : vec;  (** arrival adjoint pairs per gate *)
  dmu_t : vec;  (** gate-delay mean adjoint per gate *)
  active : Bytes.t;  (** ['\001'] iff gate has a non-zero arrival adjoint *)
  fadj : vec;  (** fold-slot pair plane: per-operand adjoints *)
  grad : vec;  (** d(seeded objective)/d(size) per gate, new-id order *)
}

(* Bigarray.Array1.create leaves the plane uninitialised — always
   zero-fill before first use.  Large planes are advised onto 2 MiB
   pages before that first touch: the sweeps gather fanin operands and
   consumer sizes at random across whole planes, and with 4 KiB pages
   a million-gate plane costs a TLB walk per gather (DESIGN.md
   Section 10). *)
let make_vec len =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max 1 len) in
  Util.Hugepage.advise v;
  Bigarray.Array1.fill v 0.;
  v

let create net =
  let n = Netlist.n_gates net in
  let fl = Netlist.flat net in
  let fs = fl.Netlist.fold_slots in
  let npi = max 1 (Netlist.n_pis net) in
  (* Primary-input pairs live in a tail section of [arr] (pair index
     [n + i] for PI [i]); [pi] is a shared sub-view of that section.
     With every operand in one plane, [fi_b] can pre-resolve each fold
     slot's source to a plain pair index and staging needs no branch. *)
  let arr = make_vec (2 * (n + npi)) in
  let pi = Bigarray.Array1.sub arr (2 * n) (2 * npi) in
  let make_ivec len =
    let v =
      Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout (max 1 len)
    in
    Util.Hugepage.advise v;
    Bigarray.Array1.fill v 0l;
    v
  in
  let fi_b = make_ivec (Array.length fl.Netlist.fi_node) in
  Array.iteri
    (fun sl e ->
      let b = if e >= 0 then 2 * e else 2 * (n + ((-e) - 1)) in
      Bigarray.Array1.set fi_b sl (Int32.of_int b))
    fl.Netlist.fi_node;
  let fo_c = make_ivec (Array.length fl.Netlist.fo_consumer) in
  Array.iteri
    (fun j c -> Bigarray.Array1.set fo_c j (Int32.of_int c))
    fl.Netlist.fo_consumer;
  (* The staging scratch only needs to hold one level at a time:
     re-using a widest-level window keeps it L2-resident instead of
     streaming a cold fold-slot-sized plane past the cache each
     sweep. *)
  let max_fi = ref 1 and max_fo = ref 1 in
  let lvl_off = fl.Netlist.lvl_off in
  for l = 0 to Array.length lvl_off - 2 do
    let lo = lvl_off.(l) and hi = lvl_off.(l + 1) in
    let fi = fl.Netlist.fi_off.(hi) - fl.Netlist.fi_off.(lo) in
    let fo = fl.Netlist.fo_off.(hi) - fl.Netlist.fo_off.(lo) in
    if fi > !max_fi then max_fi := fi;
    if fo > !max_fo then max_fo := fo
  done;
  {
    net;
    flat = fl;
    n;
    sizes = make_vec n;
    load = make_vec n;
    del = make_vec (2 * n);
    arr;
    pre = make_vec (2 * fs);
    opnd = make_vec (2 * !max_fi);
    fosz = make_vec !max_fo;
    fi_b;
    fo_c;
    pi;
    pp = make_vec (Clark.partials_width * fs);
    adj = make_vec (2 * n);
    dmu_t = make_vec n;
    active = Bytes.make (max 1 n) '\000';
    fadj = make_vec (2 * fs);
    grad = make_vec n;
  }

let netlist t = t.net

(* ---- primary-input arrivals ------------------------------------------------- *)

(* The boxed sweeps query a [pi_arrival] closure at every operand
   occurrence; the arena samples it once per PI into the pair plane.
   Identical by the Pool determinism contract (the closure must be
   pure). *)
let set_pi_arrival t f =
  for i = 0 to Netlist.n_pis t.net - 1 do
    let d = f i in
    Clark.vset t.pi (2 * i) (Normal.mu d);
    Clark.vset t.pi ((2 * i) + 1) (Normal.var d)
  done

let clear_pi_arrival t = Bigarray.Array1.fill t.pi 0.

(* ---- instrumentation and level scheduling ----------------------------------- *)

(* Shared with Ssta's boxed sweeps so bench sections aggregate. *)
let c_par_levels = Util.Instr.counter "ssta.parallel_levels"
let c_ser_levels = Util.Instr.counter "ssta.serial_levels"
let level_grain = 16

(* Serial sweeps stage-and-evaluate wide levels in sub-blocks of this
   many gates, so the staged window (~40 fanin pairs + fanout sizes
   per gate block) cycles through the closest cache levels instead of
   round-tripping a whole level's worth of scratch through L2. *)
let stage_block = 4096

(* ---- size validation -------------------------------------------------------- *)

(* Same checks, same exceptions, same messages as Netlist.check_sizes —
   iterating old gate ids so the first offender reported matches — with
   the message built only in the cold failure branch. *)
let bad_size t id s =
  invalid_arg
    (Printf.sprintf "Netlist.check_sizes: size %g of gate %s outside [1, %g]" s
       (Netlist.gate t.net id).Netlist.gate_name
       t.flat.Netlist.g_max_size.(t.flat.Netlist.perm.(id)))

let check_sizes t (sizes : float array) =
  if Array.length sizes <> t.n then
    invalid_arg "Netlist.check_sizes: dimension mismatch";
  let gmax = t.flat.Netlist.g_max_size in
  let perm = t.flat.Netlist.perm in
  for id = 0 to t.n - 1 do
    let s = sizes.(id) in
    if s < 1. -. 1e-9 || s > Array.unsafe_get gmax (Array.unsafe_get perm id) +. 1e-9
    then bad_size t id s
  done

(* ---- forward sweep ---------------------------------------------------------- *)

(* Gather one level's fanin operand pairs and consumer sizes into the
   contiguous staging planes ([opnd], [fosz]).  These are the sweep's
   only random accesses; issued from inside the Clark fold they would
   serialise behind the compute chain, while these tight
   independent-iteration copy loops keep many cache misses in flight
   at once (memory-level parallelism).  Pure copies, so the staged
   values — and everything computed from them — are bit-identical to a
   direct gather. *)
let stage_fanin t lo hi =
  let fl = t.flat in
  let s0 = Array.unsafe_get fl.Netlist.fi_off lo in
  let s1 = Array.unsafe_get fl.Netlist.fi_off hi in
  stage_gather_pairs t.arr t.fi_b t.opnd s0 s1

let stage_fanout t lo hi =
  let fl = t.flat in
  let f0 = Array.unsafe_get fl.Netlist.fo_off lo in
  let f1 = Array.unsafe_get fl.Netlist.fo_off hi in
  stage_gather_sizes t.sizes t.fo_c t.fosz f0 f1

(* One gate: load (CSR fold in fanout-list order, Netlist.load's exact
   accumulation), delay moments (Cell.delay + Sigma_model.var with
   Normal.of_var's validation unfolded), fanin fold of Clark.max2 into
   this gate's prefix slots, arrival = fold + delay.  [id] is a new
   (level-major) id; every column and plane index below is too.
   Requires [stage_fanin] / [stage_fanout] to have staged the gate's
   level; [s0] / [f0] are that level's first fold slot and fanout edge
   (the scratch-window origins). *)
let eval_gate t model s0 f0 id =
  let fl = t.flat in
  let acc = ref (Array.unsafe_get fl.Netlist.g_wire_load id) in
  let j1 = Array.unsafe_get fl.Netlist.fo_off (id + 1) in
  for j = Array.unsafe_get fl.Netlist.fo_off id to j1 - 1 do
    acc :=
      !acc
      +. Array.unsafe_get fl.Netlist.fo_mult j
         *. (Array.unsafe_get fl.Netlist.fo_cin j
            *. Clark.vget t.fosz (j - f0))
  done;
  let load = !acc in
  Clark.vset t.load id load;
  let s = Clark.vget t.sizes id in
  if s < 1. then invalid_arg "Cell.delay: size below 1";
  let mu_t =
    Array.unsafe_get fl.Netlist.g_t_int id
    +. (Array.unsafe_get fl.Netlist.g_drive id *. load /. s)
  in
  let var_t = Sigma_model.var model mu_t in
  (* Normal.of_var, unfolded to avoid the record. *)
  let var_t =
    if var_t < 0. then
      if var_t > -1e-12 then 0.
      else invalid_arg "Normal.of_var: negative variance"
    else var_t
  in
  Clark.vset t.del (2 * id) mu_t;
  Clark.vset t.del ((2 * id) + 1) var_t;
  let base = Array.unsafe_get fl.Netlist.fi_off id in
  let k = Array.unsafe_get fl.Netlist.fi_off (id + 1) - base in
  let ob = base - s0 in
  if k = 1 then
    (* Single-operand fold: the prefix slot would only ever be read
       back by this [add_into], and the reverse sweep's partials loop
       never touches it — feed the staged operand straight through
       (the exact same value, so bit-identity is untouched). *)
    Clark.add_into
      ~mu_a:(Clark.vget t.opnd (2 * ob))
      ~var_a:(Clark.vget t.opnd ((2 * ob) + 1))
      ~mu_b:mu_t ~var_b:var_t t.arr id
  else begin
    Clark.vset t.pre (2 * base) (Clark.vget t.opnd (2 * ob));
    Clark.vset t.pre ((2 * base) + 1) (Clark.vget t.opnd ((2 * ob) + 1));
    for j = 1 to k - 1 do
      Clark.max2_into
        ~mu_a:(Clark.vget t.pre (2 * (base + j) - 2))
        ~var_a:(Clark.vget t.pre (2 * (base + j) - 1))
        ~mu_b:(Clark.vget t.opnd (2 * (ob + j)))
        ~var_b:(Clark.vget t.opnd ((2 * (ob + j)) + 1))
        t.pre (base + j)
    done;
    Clark.add_into
      ~mu_a:(Clark.vget t.pre (2 * (base + k) - 2))
      ~var_a:(Clark.vget t.pre (2 * (base + k) - 1))
      ~mu_b:mu_t ~var_b:var_t t.arr id
  end

(* Primary-output fold into the trailing fold-slot segment; the circuit
   moments end up in the segment's last slot. *)
let fold_pos t =
  let fl = t.flat in
  let base = fl.Netlist.po_base in
  let m = Array.length fl.Netlist.po_node in
  let e0 = fl.Netlist.po_node.(0) in
  let b0 = if e0 >= 0 then 2 * e0 else (-2 * e0) - 2 in
  let src0 = if e0 >= 0 then t.arr else t.pi in
  Clark.vset t.pre (2 * base) (Clark.vget src0 b0);
  Clark.vset t.pre ((2 * base) + 1) (Clark.vget src0 (b0 + 1));
  for j = 1 to m - 1 do
    let e = fl.Netlist.po_node.(j) in
    let b = if e >= 0 then 2 * e else (-2 * e) - 2 in
    let src = if e >= 0 then t.arr else t.pi in
    Clark.max2_into
      ~mu_a:(Clark.vget t.pre (2 * (base + j) - 2))
      ~var_a:(Clark.vget t.pre (2 * (base + j) - 1))
      ~mu_b:(Clark.vget src b)
      ~var_b:(Clark.vget src (b + 1))
      t.pre (base + j)
  done

let[@inline] circuit_mu t =
  Clark.vget t.pre
    (2 * (t.flat.Netlist.po_base + Array.length t.flat.Netlist.po_node - 1))

let[@inline] circuit_var t =
  Clark.vget t.pre
    ((2 * (t.flat.Netlist.po_base + Array.length t.flat.Netlist.po_node - 1)) + 1)

let forward ?pool ~model t ~sizes =
  check_sizes t sizes;
  let inv = t.flat.Netlist.inv_perm in
  for i = 0 to t.n - 1 do
    Clark.vset t.sizes i (Array.unsafe_get sizes (Array.unsafe_get inv i))
  done;
  let lvl_off = t.flat.Netlist.lvl_off in
  let d = Array.length lvl_off - 1 in
  (match pool with
  | Some p when Util.Pool.size p > 1 ->
      for l = 0 to d - 1 do
        let lo = lvl_off.(l) in
        let w = lvl_off.(l + 1) - lo in
        stage_fanin t lo (lo + w);
        stage_fanout t lo (lo + w);
        let s0 = t.flat.Netlist.fi_off.(lo)
        and f0 = t.flat.Netlist.fo_off.(lo) in
        if w >= 2 * level_grain then begin
          Util.Instr.incr c_par_levels;
          Util.Pool.parallel_for ~grain:level_grain ~align:8 p ~n:w (fun i ->
              eval_gate t model s0 f0 (lo + i))
        end
        else begin
          Util.Instr.incr c_ser_levels;
          for id = lo to lo + w - 1 do
            eval_gate t model s0 f0 id
          done
        end
      done
  | _ ->
      (* Serial fast path: plain nested loops, no closures — this is
         the allocation-free branch the zero-alloc regression pins.
         Each level is one contiguous new-id segment, so the sweep
         streams the pair planes level block by level block. *)
      for l = 0 to d - 1 do
        Util.Instr.incr c_ser_levels;
        let lo = lvl_off.(l) and hi = lvl_off.(l + 1) in
        let b0 = ref lo in
        while !b0 < hi do
          let b1 = min hi (!b0 + stage_block) in
          stage_fanin t !b0 b1;
          stage_fanout t !b0 b1;
          let s0 = t.flat.Netlist.fi_off.(!b0)
          and f0 = t.flat.Netlist.fo_off.(!b0) in
          for id = !b0 to b1 - 1 do
            eval_gate t model s0 f0 id
          done;
          b0 := b1
        done
      done);
  fold_pos t

(* ---- reverse sweep ---------------------------------------------------------- *)

(* Phase 1 of one gate (write-disjoint, parallelisable): fold the
   arrival adjoint through the gate's recorded fanin fold.  The forward
   sweep's prefix slots still hold this gate's fold prefixes, so the
   partials are computed from stored moments instead of re-folding —
   the same values bit-for-bit, since the boxed path recomputes them
   with identical operations. *)
let phase1_gate t model s0 id =
  let fl = t.flat in
  let a_mu = Clark.vget t.adj (2 * id)
  and a_var = Clark.vget t.adj ((2 * id) + 1) in
  Clark.vset t.dmu_t id
    (a_mu +. (a_var *. Sigma_model.dvar_dmu model (Clark.vget t.del (2 * id))));
  let base = fl.Netlist.fi_off.(id) in
  let k = fl.Netlist.fi_off.(id + 1) - base in
  let ob = base - s0 in
  Clark.vset t.fadj (2 * base) a_mu;
  Clark.vset t.fadj ((2 * base) + 1) a_var;
  (* Operand moments come from the level's re-staged scratch window —
     the reverse sweep never writes arrivals, so [stage_fanin] gathers
     exactly the pairs the forward sweep folded. *)
  for j = k - 1 downto 1 do
    Clark.partials_into
      ~mu_a:(Clark.vget t.pre (2 * (base + j) - 2))
      ~var_a:(Clark.vget t.pre (2 * (base + j) - 1))
      ~mu_b:(Clark.vget t.opnd (2 * (ob + j)))
      ~var_b:(Clark.vget t.opnd ((2 * (ob + j)) + 1))
      t.pp (base + j);
    Clark.backprop_apply t.pp (base + j) t.fadj ~acc:base ~out:(base + j)
  done

(* Phase 2 of one gate (serial, fixed order): scatter the gradient
   contributions of mu_t = t_int + drive * load / S and the fanin
   adjoints into the shared accumulators — the same expressions and the
   same accumulation order as the boxed phase 2. *)
let phase2_gate t id =
  if Bytes.unsafe_get t.active id <> '\000' then begin
    let fl = t.flat in
    let dmu_t = Clark.vget t.dmu_t id in
    let drive = fl.Netlist.g_drive.(id) in
    let s_g = Clark.vget t.sizes id in
    Clark.vset t.grad id
      (Clark.vget t.grad id
      -. (dmu_t *. drive *. Clark.vget t.load id /. (s_g *. s_g)));
    let j1 = fl.Netlist.fo_off.(id + 1) in
    for j = fl.Netlist.fo_off.(id) to j1 - 1 do
      let c = fl.Netlist.fo_consumer.(j) in
      Clark.vset t.grad c
        (Clark.vget t.grad c
        +. dmu_t *. drive *. fl.Netlist.fo_mult.(j) *. fl.Netlist.fo_cin.(j)
           /. s_g)
    done;
    let base = fl.Netlist.fi_off.(id) in
    let k = fl.Netlist.fi_off.(id + 1) - base in
    for i = 0 to k - 1 do
      let e = fl.Netlist.fi_node.(base + i) in
      if e >= 0 then begin
        Clark.vset t.adj (2 * e)
          (Clark.vget t.adj (2 * e) +. Clark.vget t.fadj (2 * (base + i)));
        Clark.vset t.adj ((2 * e) + 1)
          (Clark.vget t.adj ((2 * e) + 1)
          +. Clark.vget t.fadj ((2 * (base + i)) + 1))
      end
    done
  end

let reverse ?pool ~model t ~d_mu ~d_var =
  let fl = t.flat in
  Bigarray.Array1.fill t.adj 0.;
  Bigarray.Array1.fill t.grad 0.;
  Bytes.fill t.active 0 (Bytes.length t.active) '\000';
  (* Seed the primary-output fold and scatter its per-operand adjoints
     (ascending PO order, as the boxed sweep does). *)
  let base = fl.Netlist.po_base in
  let m = Array.length fl.Netlist.po_node in
  Clark.vset t.fadj (2 * base) d_mu;
  Clark.vset t.fadj ((2 * base) + 1) d_var;
  for j = m - 1 downto 1 do
    let e = fl.Netlist.po_node.(j) in
    let b = if e >= 0 then 2 * e else (-2 * e) - 2 in
    let src = if e >= 0 then t.arr else t.pi in
    Clark.partials_into
      ~mu_a:(Clark.vget t.pre (2 * (base + j) - 2))
      ~var_a:(Clark.vget t.pre (2 * (base + j) - 1))
      ~mu_b:(Clark.vget src b)
      ~var_b:(Clark.vget src (b + 1))
      t.pp (base + j);
    Clark.backprop_apply t.pp (base + j) t.fadj ~acc:base ~out:(base + j)
  done;
  for i = 0 to m - 1 do
    let e = fl.Netlist.po_node.(i) in
    if e >= 0 then begin
      Clark.vset t.adj (2 * e)
        (Clark.vget t.adj (2 * e) +. Clark.vget t.fadj (2 * (base + i)));
      Clark.vset t.adj ((2 * e) + 1)
        (Clark.vget t.adj ((2 * e) + 1) +. Clark.vget t.fadj ((2 * (base + i)) + 1))
    end
  done;
  let lvl_off = fl.Netlist.lvl_off in
  let d = Array.length lvl_off - 1 in
  for l = d - 1 downto 0 do
    let lo = lvl_off.(l) in
    let hi = lvl_off.(l + 1) in
    let w = hi - lo in
    (* Re-stage this level's fanin operands: the forward sweep's
       window now holds a later level's.  Phase 1 is per-gate
       write-disjoint, so block order within the level is free. *)
    (match pool with
    | Some p when Util.Pool.size p > 1 && w >= 2 * level_grain ->
        Util.Instr.incr c_par_levels;
        stage_fanin t lo hi;
        let s0 = fl.Netlist.fi_off.(lo) in
        Util.Pool.parallel_for ~grain:level_grain ~align:8 p ~n:w (fun i ->
            let id = lo + i in
            if
              Clark.vget t.adj (2 * id) <> 0.
              || Clark.vget t.adj ((2 * id) + 1) <> 0.
            then begin
              Bytes.unsafe_set t.active id '\001';
              phase1_gate t model s0 id
            end)
    | _ ->
        Util.Instr.incr c_ser_levels;
        let b0 = ref lo in
        while !b0 < hi do
          let b1 = min hi (!b0 + stage_block) in
          stage_fanin t !b0 b1;
          let s0 = fl.Netlist.fi_off.(!b0) in
          for id = !b0 to b1 - 1 do
            if
              Clark.vget t.adj (2 * id) <> 0.
              || Clark.vget t.adj ((2 * id) + 1) <> 0.
            then begin
              Bytes.unsafe_set t.active id '\001';
              phase1_gate t model s0 id
            end
          done;
          b0 := b1
        done);
    for id = hi - 1 downto lo do
      phase2_gate t id
    done
  done

(* ---- old-id boundary accessors ---------------------------------------------- *)

let gradient_into t (out : float array) =
  if Array.length out < t.n then
    invalid_arg "Arena.gradient_into: output shorter than the gate count";
  let inv = t.flat.Netlist.inv_perm in
  for i = 0 to t.n - 1 do
    Array.unsafe_set out (Array.unsafe_get inv i) (Clark.vget t.grad i)
  done

let delay_means_into t (out : float array) =
  if Array.length out < t.n then
    invalid_arg "Arena.delay_means_into: output shorter than the gate count";
  let inv = t.flat.Netlist.inv_perm in
  for i = 0 to t.n - 1 do
    Array.unsafe_set out (Array.unsafe_get inv i) (Clark.vget t.del (2 * i))
  done
