open Circuit
open Statdelay

(* Flat structure-of-arrays timing state shared by every STA engine.

   One arena holds every per-gate and per-fold-step quantity of a
   statistical timing analysis in unboxed [float array] planes, indexed
   by gate id (or by fold slot, see Netlist.flat).  All planes are
   allocated once in [create]; the forward and reverse sweeps then write
   in place, so a steady-state evaluation — the inner loop of an
   augmented-Lagrangian sizing solve — allocates nothing on the OCaml
   heap.

   Bit-identity contract: the sweeps perform the same floating-point
   operations in the same order as the boxed reference implementation
   (Ssta.Boxed), via the flat Clark kernels (Clark.max2_into and
   friends), so arrivals, circuit moments and gradients are
   Int64-bit-identical to the record-returning path at 1, 2 or 4
   domains.  test/test_arena.ml enforces this differentially.

   Scratch-plane layout.  A gate's fanin fold of Clark.max2 owns the
   slot range [fi_off.(g) .. fi_off.(g+1) - 1] of the [pre_*] (prefix
   moments), [fadj_*] (per-operand adjoints) and [pp] (8 partials per
   step) planes; the primary-output fold owns the trailing
   [po_base .. po_base + n_pos - 1] segment.  Ranges are disjoint across
   gates, which is what lets the level-parallel phases write without
   synchronisation while keeping the serial scatter order fixed (the
   same two-phase scheme as the boxed sweeps). *)

type t = {
  net : Netlist.t;
  flat : Netlist.flat;
  buckets : int array array;
  n : int;  (** gate count; every per-gate plane has this length *)
  (* -- forward state, valid after [forward] -- *)
  sizes : float array;  (** copy of the last sizes swept *)
  load : float array;
  del_mu : float array;  (** gate delay mean [mu_t] *)
  del_var : float array;  (** gate delay variance *)
  arr_mu : float array;  (** arrival mean per gate *)
  arr_var : float array;
  pre_mu : float array;  (** fold-slot plane: prefix maxima of each fold *)
  pre_var : float array;
  pi_mu : float array;  (** primary-input arrivals (zero by default) *)
  pi_var : float array;
  (* -- reverse state, valid after [reverse] -- *)
  pp : float array;  (** fold-slot plane x8: Clark partials per fold step *)
  adj_mu : float array;  (** arrival adjoints per gate *)
  adj_var : float array;
  dmu_t : float array;  (** gate-delay mean adjoint per gate *)
  active : bool array;  (** gate has a non-zero arrival adjoint *)
  fadj_mu : float array;  (** fold-slot plane: per-operand adjoints *)
  fadj_var : float array;
  grad : float array;  (** d(seeded objective)/d(size) per gate *)
}

let create net =
  let n = Netlist.n_gates net in
  let fl = Netlist.flat net in
  let fs = fl.Netlist.fold_slots in
  let npi = max 1 (Netlist.n_pis net) in
  {
    net;
    flat = fl;
    buckets = Netlist.level_buckets net;
    n;
    sizes = Array.make (max 1 n) 0.;
    load = Array.make (max 1 n) 0.;
    del_mu = Array.make (max 1 n) 0.;
    del_var = Array.make (max 1 n) 0.;
    arr_mu = Array.make (max 1 n) 0.;
    arr_var = Array.make (max 1 n) 0.;
    pre_mu = Array.make fs 0.;
    pre_var = Array.make fs 0.;
    pi_mu = Array.make npi 0.;
    pi_var = Array.make npi 0.;
    pp = Array.make (Clark.partials_width * fs) 0.;
    adj_mu = Array.make (max 1 n) 0.;
    adj_var = Array.make (max 1 n) 0.;
    dmu_t = Array.make (max 1 n) 0.;
    active = Array.make (max 1 n) false;
    fadj_mu = Array.make fs 0.;
    fadj_var = Array.make fs 0.;
    grad = Array.make (max 1 n) 0.;
  }

let netlist t = t.net

(* ---- primary-input arrivals ------------------------------------------------- *)

(* The boxed sweeps query a [pi_arrival] closure at every operand
   occurrence; the arena samples it once per PI into planes.  Identical
   by the Pool determinism contract (the closure must be pure). *)
let set_pi_arrival t f =
  for i = 0 to Netlist.n_pis t.net - 1 do
    let d = f i in
    t.pi_mu.(i) <- Normal.mu d;
    t.pi_var.(i) <- Normal.var d
  done

let clear_pi_arrival t =
  Array.fill t.pi_mu 0 (Array.length t.pi_mu) 0.;
  Array.fill t.pi_var 0 (Array.length t.pi_var) 0.

(* ---- instrumentation and level scheduling ----------------------------------- *)

(* Shared with Ssta's boxed sweeps so bench sections aggregate. *)
let c_par_levels = Util.Instr.counter "ssta.parallel_levels"
let c_ser_levels = Util.Instr.counter "ssta.serial_levels"
let level_grain = 16

(* ---- size validation -------------------------------------------------------- *)

(* Same checks, same exceptions, same messages as Netlist.check_sizes —
   but loop-and-compare over the flat planes, with the message built
   only in the cold failure branch. *)
let bad_size t id s =
  invalid_arg
    (Printf.sprintf "Netlist.check_sizes: size %g of gate %s outside [1, %g]" s
       (Netlist.gate t.net id).Netlist.gate_name
       t.flat.Netlist.g_max_size.(id))

let check_sizes t (sizes : float array) =
  if Array.length sizes <> t.n then
    invalid_arg "Netlist.check_sizes: dimension mismatch";
  for id = 0 to t.n - 1 do
    let s = sizes.(id) in
    if s < 1. -. 1e-9 || s > t.flat.Netlist.g_max_size.(id) +. 1e-9 then
      bad_size t id s
  done

(* ---- forward sweep ---------------------------------------------------------- *)

(* One gate: load (CSR fold in fanout-list order, Netlist.load's exact
   accumulation), delay moments (Cell.delay + Sigma_model.var with
   Normal.of_var's validation unfolded), fanin fold of Clark.max2 into
   this gate's prefix slots, arrival = fold + delay. *)
let eval_gate t model id =
  let fl = t.flat in
  let sizes = t.sizes in
  let acc = ref fl.Netlist.g_wire_load.(id) in
  let j1 = fl.Netlist.fo_off.(id + 1) in
  for j = fl.Netlist.fo_off.(id) to j1 - 1 do
    acc :=
      !acc
      +. fl.Netlist.fo_mult.(j)
         *. (fl.Netlist.fo_cin.(j) *. sizes.(fl.Netlist.fo_consumer.(j)))
  done;
  let load = !acc in
  t.load.(id) <- load;
  let s = sizes.(id) in
  if s < 1. then invalid_arg "Cell.delay: size below 1";
  let mu_t = fl.Netlist.g_t_int.(id) +. (fl.Netlist.g_drive.(id) *. load /. s) in
  let var_t = Sigma_model.var model mu_t in
  (* Normal.of_var, unfolded to avoid the record. *)
  let var_t =
    if var_t < 0. then
      if var_t > -1e-12 then 0.
      else invalid_arg "Normal.of_var: negative variance"
    else var_t
  in
  t.del_mu.(id) <- mu_t;
  t.del_var.(id) <- var_t;
  let base = fl.Netlist.fi_off.(id) in
  let k = fl.Netlist.fi_off.(id + 1) - base in
  let e0 = fl.Netlist.fi_node.(base) in
  if e0 >= 0 then begin
    t.pre_mu.(base) <- t.arr_mu.(e0);
    t.pre_var.(base) <- t.arr_var.(e0)
  end
  else begin
    t.pre_mu.(base) <- t.pi_mu.(-e0 - 1);
    t.pre_var.(base) <- t.pi_var.(-e0 - 1)
  end;
  for j = 1 to k - 1 do
    let e = fl.Netlist.fi_node.(base + j) in
    let mu_b = if e >= 0 then t.arr_mu.(e) else t.pi_mu.(-e - 1) in
    let var_b = if e >= 0 then t.arr_var.(e) else t.pi_var.(-e - 1) in
    Clark.max2_into
      ~mu_a:t.pre_mu.(base + j - 1)
      ~var_a:t.pre_var.(base + j - 1)
      ~mu_b ~var_b t.pre_mu t.pre_var (base + j)
  done;
  Clark.add_into
    ~mu_a:t.pre_mu.(base + k - 1)
    ~var_a:t.pre_var.(base + k - 1)
    ~mu_b:mu_t ~var_b:var_t t.arr_mu t.arr_var id

(* Primary-output fold into the trailing fold-slot segment; the circuit
   moments end up in the segment's last slot. *)
let fold_pos t =
  let fl = t.flat in
  let base = fl.Netlist.po_base in
  let m = Array.length fl.Netlist.po_node in
  let e0 = fl.Netlist.po_node.(0) in
  if e0 >= 0 then begin
    t.pre_mu.(base) <- t.arr_mu.(e0);
    t.pre_var.(base) <- t.arr_var.(e0)
  end
  else begin
    t.pre_mu.(base) <- t.pi_mu.(-e0 - 1);
    t.pre_var.(base) <- t.pi_var.(-e0 - 1)
  end;
  for j = 1 to m - 1 do
    let e = fl.Netlist.po_node.(j) in
    let mu_b = if e >= 0 then t.arr_mu.(e) else t.pi_mu.(-e - 1) in
    let var_b = if e >= 0 then t.arr_var.(e) else t.pi_var.(-e - 1) in
    Clark.max2_into
      ~mu_a:t.pre_mu.(base + j - 1)
      ~var_a:t.pre_var.(base + j - 1)
      ~mu_b ~var_b t.pre_mu t.pre_var (base + j)
  done

let[@inline] circuit_mu t =
  t.pre_mu.(t.flat.Netlist.po_base + Array.length t.flat.Netlist.po_node - 1)

let[@inline] circuit_var t =
  t.pre_var.(t.flat.Netlist.po_base + Array.length t.flat.Netlist.po_node - 1)

let forward ?pool ~model t ~sizes =
  check_sizes t sizes;
  Array.blit sizes 0 t.sizes 0 t.n;
  let buckets = t.buckets in
  (match pool with
  | Some p when Util.Pool.size p > 1 ->
      Array.iter
        (fun bucket ->
          let n = Array.length bucket in
          if n >= 2 * level_grain then begin
            Util.Instr.incr c_par_levels;
            Util.Pool.parallel_for ~grain:level_grain p ~n (fun i ->
                eval_gate t model bucket.(i))
          end
          else begin
            Util.Instr.incr c_ser_levels;
            for i = 0 to n - 1 do
              eval_gate t model bucket.(i)
            done
          end)
        buckets
  | _ ->
      (* Serial fast path: plain nested loops, no closures — this is
         the allocation-free branch the zero-alloc regression pins. *)
      for l = 0 to Array.length buckets - 1 do
        Util.Instr.incr c_ser_levels;
        let bucket = buckets.(l) in
        for i = 0 to Array.length bucket - 1 do
          eval_gate t model bucket.(i)
        done
      done);
  fold_pos t

(* ---- reverse sweep ---------------------------------------------------------- *)

(* Phase 1 of one gate (write-disjoint, parallelisable): fold the
   arrival adjoint through the gate's recorded fanin fold.  The forward
   sweep's prefix slots still hold this gate's fold prefixes, so the
   partials are computed from stored moments instead of re-folding —
   the same values bit-for-bit, since the boxed path recomputes them
   with identical operations. *)
let phase1_gate t model id =
  let fl = t.flat in
  let a_mu = t.adj_mu.(id) and a_var = t.adj_var.(id) in
  t.dmu_t.(id) <- a_mu +. (a_var *. Sigma_model.dvar_dmu model t.del_mu.(id));
  let base = fl.Netlist.fi_off.(id) in
  let k = fl.Netlist.fi_off.(id + 1) - base in
  t.fadj_mu.(base) <- a_mu;
  t.fadj_var.(base) <- a_var;
  for j = k - 1 downto 1 do
    let e = fl.Netlist.fi_node.(base + j) in
    let mu_b = if e >= 0 then t.arr_mu.(e) else t.pi_mu.(-e - 1) in
    let var_b = if e >= 0 then t.arr_var.(e) else t.pi_var.(-e - 1) in
    Clark.partials_into
      ~mu_a:t.pre_mu.(base + j - 1)
      ~var_a:t.pre_var.(base + j - 1)
      ~mu_b ~var_b t.pp (base + j);
    Clark.backprop_apply t.pp (base + j) t.fadj_mu t.fadj_var ~acc:base
      ~out:(base + j)
  done

(* Phase 2 of one gate (serial, fixed order): scatter the gradient
   contributions of mu_t = t_int + drive * load / S and the fanin
   adjoints into the shared accumulators — the same expressions and the
   same accumulation order as the boxed phase 2. *)
let phase2_gate t id =
  if t.active.(id) then begin
    let fl = t.flat in
    let dmu_t = t.dmu_t.(id) in
    let drive = fl.Netlist.g_drive.(id) in
    let s_g = t.sizes.(id) in
    t.grad.(id) <-
      t.grad.(id) -. (dmu_t *. drive *. t.load.(id) /. (s_g *. s_g));
    let j1 = fl.Netlist.fo_off.(id + 1) in
    for j = fl.Netlist.fo_off.(id) to j1 - 1 do
      let c = fl.Netlist.fo_consumer.(j) in
      t.grad.(c) <-
        t.grad.(c)
        +. dmu_t *. drive *. fl.Netlist.fo_mult.(j) *. fl.Netlist.fo_cin.(j)
           /. s_g
    done;
    let base = fl.Netlist.fi_off.(id) in
    let k = fl.Netlist.fi_off.(id + 1) - base in
    for i = 0 to k - 1 do
      let e = fl.Netlist.fi_node.(base + i) in
      if e >= 0 then begin
        t.adj_mu.(e) <- t.adj_mu.(e) +. t.fadj_mu.(base + i);
        t.adj_var.(e) <- t.adj_var.(e) +. t.fadj_var.(base + i)
      end
    done
  end

let reverse ?pool ~model t ~d_mu ~d_var =
  let fl = t.flat in
  Array.fill t.adj_mu 0 t.n 0.;
  Array.fill t.adj_var 0 t.n 0.;
  Array.fill t.grad 0 t.n 0.;
  Array.fill t.active 0 t.n false;
  (* Seed the primary-output fold and scatter its per-operand adjoints
     (ascending PO order, as the boxed sweep does). *)
  let base = fl.Netlist.po_base in
  let m = Array.length fl.Netlist.po_node in
  t.fadj_mu.(base) <- d_mu;
  t.fadj_var.(base) <- d_var;
  for j = m - 1 downto 1 do
    let e = fl.Netlist.po_node.(j) in
    let mu_b = if e >= 0 then t.arr_mu.(e) else t.pi_mu.(-e - 1) in
    let var_b = if e >= 0 then t.arr_var.(e) else t.pi_var.(-e - 1) in
    Clark.partials_into
      ~mu_a:t.pre_mu.(base + j - 1)
      ~var_a:t.pre_var.(base + j - 1)
      ~mu_b ~var_b t.pp (base + j);
    Clark.backprop_apply t.pp (base + j) t.fadj_mu t.fadj_var ~acc:base
      ~out:(base + j)
  done;
  for i = 0 to m - 1 do
    let e = fl.Netlist.po_node.(i) in
    if e >= 0 then begin
      t.adj_mu.(e) <- t.adj_mu.(e) +. t.fadj_mu.(base + i);
      t.adj_var.(e) <- t.adj_var.(e) +. t.fadj_var.(base + i)
    end
  done;
  let buckets = t.buckets in
  for l = Array.length buckets - 1 downto 0 do
    let bucket = buckets.(l) in
    let n = Array.length bucket in
    (match pool with
    | Some p when Util.Pool.size p > 1 && n >= 2 * level_grain ->
        Util.Instr.incr c_par_levels;
        Util.Pool.parallel_for ~grain:level_grain p ~n (fun i ->
            let id = bucket.(i) in
            if t.adj_mu.(id) <> 0. || t.adj_var.(id) <> 0. then begin
              t.active.(id) <- true;
              phase1_gate t model id
            end)
    | _ ->
        Util.Instr.incr c_ser_levels;
        for i = 0 to n - 1 do
          let id = bucket.(i) in
          if t.adj_mu.(id) <> 0. || t.adj_var.(id) <> 0. then begin
            t.active.(id) <- true;
            phase1_gate t model id
          end
        done);
    for i = n - 1 downto 0 do
      phase2_gate t bucket.(i)
    done
  done
