(** Deterministic (worst-case) static timing analysis.

    The classical analysis the paper's statistical treatment replaces:
    each gate has the single delay {m t_{cell}(S)} of the sizable-cell
    model and arrival times propagate with [max] and [+] (paper eq. 1–3
    with point values).  Used by the deterministic baseline sizer and as
    the per-sample propagation engine of the Monte Carlo validator. *)

type result = {
  arrival : float array;  (** arrival time at each gate output *)
  gate_delay : float array;  (** cell propagation delay per gate *)
  circuit : float;  (** max arrival over the primary outputs *)
}

val delays : Circuit.Netlist.t -> sizes:float array -> float array
(** Mean cell propagation delay per gate at the given sizes — the
    deterministic half of the delay model, shared with the Monte Carlo
    engine ({!Mcsta}), which adds the sampled uncertainty on top. *)

val analyze :
  ?pi_arrival:(int -> float) -> Circuit.Netlist.t -> sizes:float array -> result
(** Worst-case arrival times.  [pi_arrival] defaults to [fun _ -> 0.]. *)

val analyze_with_delays :
  ?pi_arrival:(int -> float) ->
  Circuit.Netlist.t ->
  gate_delay:float array ->
  result
(** Propagation with externally supplied per-gate delays (one Monte Carlo
    sample). *)

val propagate_into :
  ?pi_arrival:(int -> float) ->
  Circuit.Netlist.t ->
  gate_delay:float array ->
  arrival:float array ->
  float
(** Allocation-free core of {!analyze_with_delays}: fills the
    caller-owned [arrival] scratch (length at least [n_gates]) and
    returns the circuit delay.  The Monte Carlo loops ({!Crit},
    {!Yield}) reuse one scratch across all samples.  Same operations,
    same bits as {!analyze_with_delays}. *)

val required :
  Circuit.Netlist.t -> gate_delay:float array -> deadline:float -> float array
(** Required times per gate for the given deadline (backwards pass). *)

val slack :
  Circuit.Netlist.t -> sizes:float array -> deadline:float -> float array
(** [required - arrival] per gate. *)

val critical_path : Circuit.Netlist.t -> sizes:float array -> int list
(** Gate ids of one most-critical PI-to-PO path, input side first. *)
