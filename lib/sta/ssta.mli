(** Statistical static timing analysis (paper Sections 2–4).

    Forward pass: in topological order, each gate's input arrival is the
    repeated two-operand Clark max of its fanin arrivals (paper eq. 1 /
    18b), the gate delay — mean from the sizable-cell model, variance
    from the {!Circuit.Sigma_model} — is added with the independent-sum
    rule (eq. 4), and the circuit-level distribution is the stochastic
    max over all primary outputs (eq. 17's {m T_{max}}).

    Reverse pass: because every step is a closed-form function of means
    and variances with known partials ({!Statdelay.Clark.max2_full}), the
    gradient of any scalar functional of the circuit distribution with
    respect to {e all} gate sizes is computed exactly by one adjoint
    sweep — the same derivative information the paper feeds to LANCELOT,
    organised as reverse-mode differentiation instead of explicit
    constraint derivatives.

    {2 Parallel evaluation}

    Both sweeps walk the netlist level by level
    ({!Circuit.Netlist.level_buckets}); gates within a level are
    independent, so passing [?pool] evaluates each sufficiently wide
    level across the pool's domains.  Results are {e bit-identical} to
    the serial path: parallel phases only write per-gate slots, and every
    shared accumulation (the adjoint and gradient scatters) runs serially
    in a fixed order — see ARCHITECTURE.md's determinism contract.  When
    [?pool] is used, a caller-supplied [pi_arrival] must be pure (it is
    called concurrently from worker domains).

    Instrumented via {!Util.Instr}: counters [ssta.analyze],
    [ssta.gradient], [ssta.parallel_levels], [ssta.serial_levels] and
    timers [ssta.forward], [ssta.reverse]. *)

open Statdelay

type result = {
  arrival : Normal.t array;  (** arrival distribution at each gate output *)
  gate_delay : Normal.t array;  (** delay distribution of each gate *)
  loads : float array;  (** capacitive load seen by each gate *)
  circuit : Normal.t;  (** stochastic max over the primary outputs *)
}

val analyze :
  ?pool:Util.Pool.t ->
  ?arena:Arena.t ->
  ?pi_arrival:(int -> Normal.t) ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  result
(** Forward statistical timing.  [pi_arrival] defaults to the
    deterministic arrival [Normal.deterministic 0.] at every input.
    [pool] parallelises the per-level gate evaluations (bit-identical to
    the serial result).

    The sweep runs over a flat structure-of-arrays {!Arena}; passing
    [?arena] (created with {!Arena.create} on the same netlist) reuses
    its planes so repeated evaluations allocate only the returned
    [result] snapshot.  Raises [Invalid_argument] if the arena belongs
    to a different netlist. *)

val analyze_exact_nary :
  ?pi_arrival:(int -> Normal.t) ->
  ?points:int ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  result
(** Like {!analyze} but every multi-operand maximum (gate fanins and the
    primary-output reduction) uses the exact n-ary operator of
    {!Statdelay.Nary} instead of the paper's repeated two-operand fold —
    the analysis-side integration of the paper's future work #2.
    Analysis only (no gradients); noticeably slower per max. *)

type seed = { d_mu : float; d_var : float }
(** Derivative of the objective functional with respect to the circuit
    distribution's mean ([d_mu]) and variance ([d_var]) — the reverse
    sweep is seeded with {m (\partial f/\partial\mu,
    \partial f/\partial\sigma^2)} of the functional [f] being
    differentiated.  Note the variance, not the standard deviation:
    {!mu_plus_k_sigma_seed} shows the conversion. *)

val gradient :
  ?pool:Util.Pool.t ->
  ?arena:Arena.t ->
  ?pi_arrival:(int -> Normal.t) ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  seed:(result -> seed) ->
  float array
(** [gradient ~model net ~sizes ~seed] is
    {m \nabla_S\, f(\mu_{T_{max}}(S), \sigma^2_{T_{max}}(S))} where the
    caller supplies {m (\partial f/\partial\mu, \partial f/\partial\sigma^2)}
    via [seed] (evaluated on the forward result).  One forward plus one
    reverse sweep, O(edges).  [pool] parallelises both sweeps
    (bit-identical to the serial result). *)

val value_and_gradient :
  ?pool:Util.Pool.t ->
  ?arena:Arena.t ->
  ?pi_arrival:(int -> Normal.t) ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  seed:(result -> seed) ->
  result * float array
(** Like {!gradient} but also returns the forward result. *)

val of_arena : Arena.t -> result
(** Boundary conversion: snapshot an arena's forward state (as left by
    {!Arena.forward}) into the public result shape.  Bit-exact — the
    records are built directly from the plane values. *)

val forward_raw :
  ?pool:Util.Pool.t ->
  ?pi_arrival:(int -> Normal.t) ->
  model:Circuit.Sigma_model.t ->
  Arena.t ->
  sizes:float array ->
  unit
(** {!analyze} without the snapshot: runs the forward sweep on the given
    arena (same instrumentation) and leaves the results in its planes —
    {!Arena.circuit_mu} / {!Arena.circuit_var} and the per-gate planes.
    Allocation-free in serial mode; the sizing engine's inner loop is
    built on this. *)

val reverse_raw :
  ?pool:Util.Pool.t ->
  model:Circuit.Sigma_model.t ->
  Arena.t ->
  d_mu:float ->
  d_var:float ->
  unit
(** The adjoint sweep of {!gradient} without the snapshot or the fresh
    gradient array: requires the state left by {!forward_raw}, fills the
    arena's [grad] plane.  Counted as [ssta.gradient]. *)

(** {1 Boxed reference implementation}

    The original record-based sweeps, kept verbatim.  The arena-backed
    entry points above must agree with these to the last bit —
    [test/test_arena.ml] compares them with [Int64.bits_of_float] on
    every arrival, delay, load, circuit moment and gradient entry.
    Slower and allocation-heavy; use only as a differential oracle. *)

module Boxed : sig
  val analyze :
    ?pool:Util.Pool.t ->
    ?pi_arrival:(int -> Normal.t) ->
    model:Circuit.Sigma_model.t ->
    Circuit.Netlist.t ->
    sizes:float array ->
    result

  val value_and_gradient :
    ?pool:Util.Pool.t ->
    ?pi_arrival:(int -> Normal.t) ->
    model:Circuit.Sigma_model.t ->
    Circuit.Netlist.t ->
    sizes:float array ->
    seed:(result -> seed) ->
    result * float array

  val gradient :
    ?pool:Util.Pool.t ->
    ?pi_arrival:(int -> Normal.t) ->
    model:Circuit.Sigma_model.t ->
    Circuit.Netlist.t ->
    sizes:float array ->
    seed:(result -> seed) ->
    float array
end

(** {1 Common functionals} *)

(** {1 Kernel}

    The floating-point kernels both sweeps are built from, re-exported
    for {!Incr} (which must replay {e bit-identical} operations on the
    dirty cone) and for the differential tests.  Not a stable public
    API. *)

module Kernel : sig
  val default_pi_arrival : int -> Normal.t
  (** [Normal.deterministic 0.] at every input. *)

  val node_arrival :
    pi_arrival:(int -> Normal.t) ->
    Normal.t array ->
    Circuit.Netlist.node ->
    Normal.t
  (** Arrival of a fanin node: [pi_arrival i] for [Pi i], slot [g] of the
      arrival array for [Gate g]. *)

  val fold_max : Normal.t array -> Normal.t array
  (** Prefix maxima of the left fold of {!Statdelay.Clark.max2};
      [.(k-1)] is the fold value. *)

  val fold_max_last : Normal.t array -> Normal.t
  (** The final fold value only (same operations, same result bits). *)

  val backprop_fold : Normal.t array -> Normal.t array -> seed -> seed array
  (** Adjoint of a recorded fold: per-operand adjoints given the adjoint
      of the final prefix. *)

  val level_grain : int
  (** Minimum per-domain indices before a level is handed to the pool. *)
end

val mu_plus_k_sigma_seed : float -> result -> seed
(** Seed for {m f = \mu + k\sigma}:
    {m \partial f/\partial\mu = 1}, {m \partial f/\partial\sigma^2 = k / (2\sigma)}.
    For [k <> 0.] and a degenerate (zero-variance) circuit distribution
    the variance derivative is taken as [0.]. *)

val sigma_seed : result -> seed
(** Seed for {m f = \sigma}. *)
