(** Statistical criticality analysis.

    Under a deterministic delay model the critical path is a single path;
    under the paper's statistical model {e every} path has some
    probability of being the slowest one.  A gate's {e criticality} is
    the probability that it lies on the critical path of a manufactured
    circuit — the quantity a statistical sizer is implicitly spreading
    effort across (visible in Table 3: [min sigma] pushes the
    always-critical output gates much harder than the
    sometimes-critical inputs).

    Criticalities are estimated by Monte Carlo: each sample draws every
    gate delay, retimes the circuit deterministically, traces the critical
    path, and counts the gates on it.  Statistical tie-breaking makes this
    well-defined even on perfectly balanced circuits. *)

type result = {
  criticality : float array;
      (** per gate: fraction of samples whose critical path contains it *)
  samples : int;
}

val monte_carlo :
  ?rng:Util.Rng.t ->
  ?arena:Arena.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  n:int ->
  result
(** [n]-sample criticality estimate at the given sizing.  Each sample
    draws every gate delay from the sigma model, retimes the circuit with
    {!Dsta.propagate_into} (one arrival scratch for the whole run) and
    traces one critical path; ties are broken by the randomness of the
    draws themselves.  [arena] reuses a flat {!Arena} for the analytic
    sweep that supplies the delay moments. *)

val ranked : result -> Circuit.Netlist.t -> (string * float) list
(** Gate name / criticality pairs, most critical first. *)
