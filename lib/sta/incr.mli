(** Incremental statistical timing: dirty-cone re-evaluation.

    The sizing solver re-evaluates the circuit at a sequence of iterates
    that differ in only some of the speed factors (line searches move the
    interior coordinates while projected coordinates stay pinned at their
    bounds, and multiplier updates re-evaluate at the {e same} point).  A
    full forward/reverse sweep per evaluation — the dominant hot path —
    recomputes every gate regardless.  This engine is a persistent
    alternative: it caches the last analysis (per-gate arrival moments,
    gate delays, loads) and, given the next size vector, re-propagates
    {e only} the transitive fan-out cone of the changed gates.

    {2 Dirty-cone rule}

    A gate must be re-evaluated when any input of its delay/arrival
    computation changed:

    - its own size changed, or
    - its load changed — i.e. the size of one of its {e fanout}
      consumers changed, so the drivers of every changed gate are seeded
      dirty alongside it, or
    - the arrival of one of its fanin gates changed.

    Dirtiness propagates level by level ({!Circuit.Netlist.level_buckets})
    with {e early cutoff}: if a re-evaluated gate's arrival is unchanged
    (bit-identical in {!Exact} mode, within tolerance in {!Epsilon}
    mode), its consumers are not marked.  Clean gates keep their cached
    values, which are bit-identical to what a from-scratch sweep would
    produce because every in-place Clark kernel ({!Statdelay.Clark})
    is replayed with bit-identical operands on the same arena planes.

    {2 Gradient}

    The reverse sweep re-runs its cheap scatter phase in full (in the
    exact order of {!Ssta.value_and_gradient}, which is what keeps
    gradients bit-identical), but the expensive phase — the
    {!Statdelay.Clark.partials_into} replays per gate — is reused
    from the previous gradient evaluation whenever the gate's operands,
    delay and adjoint are unchanged since.  Reuse histories are kept per
    seed root (the engine's basis seeds {m (1,0)} and {m (0,1)} each get
    their own slot).

    {2 Modes}

    {!Exact} (the default) guarantees results — values {e and}
    gradients — bit-identical to {!Ssta.analyze} /
    {!Ssta.value_and_gradient} at every step; the differential harness
    [test/test_incr.ml] asserts this over randomized delta sequences at
    1/2/4 domains.  {!Epsilon}[ e] additionally cuts propagation when a
    recomputed arrival moved by less than [e] (relative, on mu and
    sigma); the cached arrival then {e lags} the recomputed one by up to
    [e] per gate, trading exactness for a smaller cone.

    {2 Parallelism and instrumentation}

    [?pool] parallelises the per-level dirty recomputation and the
    reverse phase-1 replays exactly as in {!Ssta} (disjoint per-gate
    writes, serial scatters), so pooled results are bit-identical to
    serial ones.  Instrumented via {!Util.Instr}: counters
    [incr.analyze], [incr.cache_hit], [incr.full_sweep],
    [incr.gates_reevaluated], [incr.cutoff], [incr.gradient],
    [incr.phase1_reused], [incr.phase1_recomputed],
    [incr.partials_reused]. *)

type mode =
  | Exact
      (** cut propagation only on bit-identical arrivals; results are
          bit-identical to from-scratch sweeps *)
  | Epsilon of float
      (** cut propagation when mu and sigma moved less than this
          relative tolerance; approximate, bounded per-gate lag *)

type t
(** A persistent engine bound to one netlist, sigma model and optional
    pool.  Not thread-safe: one engine per solver. *)

val create :
  ?pool:Util.Pool.t ->
  ?mode:mode ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  t
(** A fresh engine with an empty cache; the first {!analyze} is a full
    sweep.  [mode] defaults to {!Exact}.  Primary-input arrivals are the
    default deterministic zero ({!Ssta.Kernel.default_pi_arrival}). *)

val netlist : t -> Circuit.Netlist.t
val mode : t -> mode

val analyze : t -> sizes:float array -> Ssta.result
(** Forward timing at [sizes], re-evaluating only the dirty cone of the
    delta against the engine's cached state.  The returned result is a
    fresh snapshot (safe to hold across later calls).  In {!Exact} mode
    it is bit-identical to [Ssta.analyze ~model net ~sizes]. *)

val value_and_gradient :
  t ->
  sizes:float array ->
  seed:(Ssta.result -> Ssta.seed) ->
  Ssta.result * float array
(** Incremental counterpart of {!Ssta.value_and_gradient}; in {!Exact}
    mode both components are bit-identical to it. *)

val gradient :
  t -> sizes:float array -> seed:(Ssta.result -> Ssta.seed) -> float array
(** [snd] of {!value_and_gradient}. *)

(** {2 Raw plane-level access}

    The engine's cached state lives in a flat {!Arena} it owns
    exclusively (its partials plane doubles as the point-keyed Clark
    cache).  The sizing engine's inner loop uses these entry points to
    evaluate timing with {e zero} per-call allocation: no result
    snapshot, no fresh gradient array. *)

val arena : t -> Arena.t
(** The engine's arena.  Read-only for callers: after {!analyze_raw}
    the [load], [del_*], [arr_*] planes and {!Arena.circuit_mu} /
    {!Arena.circuit_var} reflect the analysis at the last [sizes].  Do
    not run {!Arena.reverse} (or any other writer) on it — that would
    corrupt the partials cache. *)

val analyze_raw : t -> sizes:float array -> unit
(** {!analyze} without the snapshot: brings the arena planes to
    [sizes]. *)

val gradient_into :
  t -> sizes:float array -> d_mu:float -> d_var:float -> out:float array -> unit
(** {!gradient} with a raw constant seed [(d_mu, d_var)] and a
    caller-owned output buffer (length [n_gates], overwritten).  Same
    reuse machinery, same bits as the snapshot path. *)

val invalidate : t -> unit
(** Wholesale invalidation: the next {!analyze} runs a full sweep
    (counted in [incr.full_sweep]).  Called by {!Sizing.Engine} at every
    solve attempt boundary — recovery-ladder rungs, perturbed restarts
    and objective switches on a reused engine.  Gradient reuse histories
    survive (they are guarded by change stamps, not by this flag). *)

type counters = {
  analyzes : int;  (** {!analyze} calls, including via the gradient *)
  cache_hits : int;  (** calls with no size delta *)
  full_sweeps : int;  (** cold or invalidated calls *)
  gates_reevaluated : int;  (** dirty gates recomputed, full sweeps included *)
  cutoffs : int;  (** recomputed gates whose arrival was unchanged *)
  gradients : int;  (** gradient calls *)
  phase1_reused : int;  (** reverse-sweep partial replays skipped *)
  phase1_recomputed : int;  (** reverse-sweep partial replays executed *)
  partials_reused : int;
      (** recomputed replays that served their Clark partials from the
          point-keyed cache (shared across seeds at one point) instead of
          re-running the Clark operators *)
}

val counters : t -> counters
(** This engine's lifetime totals (the [incr.*] {!Util.Instr} counters
    aggregate the same quantities across engines). *)

val dirty_fraction : t -> float
(** [gates_reevaluated / (analyzes * n_gates)] — the mean fraction of
    the circuit re-evaluated per analyze; [1.0] means caching never
    engaged, full sweeps on every call. *)
