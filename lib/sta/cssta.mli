(** Correlation-aware statistical static timing analysis.

    Implements the paper's first declared piece of future work (Section
    7): handling the correlation between arrival times that reconvergent
    fanout creates.  The plain {!Ssta} assumes every max has independent
    operands (paper eq. 6); on circuits whose near-critical paths share
    gates this overestimates the mean slightly and can underestimate the
    standard deviation substantially (quantified by the F-MC bench).

    This analysis propagates, alongside each arrival distribution, its
    correlation coefficient with every other gate's arrival, using Clark's
    correlated-max formulas ({!Statdelay.Correlation}):

    - gate delays are independent of everything, so an addition scales the
      correlation by {m \sigma_U / \sigma_T};
    - a two-operand max with operand correlation {m \rho} (read from the
      matrix) produces moments via the correlated Clark max and
      correlations to third variables via the cross-correlation rule.

    Cost: O(gates) memory per node — an n x n correlation matrix — and
    O(edges x gates) time; fine for the paper's circuit sizes (a few
    thousand gates), not for millions.  Analysis only (no gradients): the
    sizing engine keeps the paper's independence assumption, as the paper
    does. *)

open Statdelay

type result = {
  arrival : Normal.t array;  (** arrival distribution per gate *)
  gate_delay : Normal.t array;
  circuit : Normal.t;  (** correlation-aware max over the primary outputs *)
  correlation : float array array;
      (** [correlation.(i).(j)] = estimated correlation of the arrival
          times of gates [i] and [j]; diagonal 1 for gates with positive
          arrival variance, 0 rows/columns for degenerate ones *)
}

val analyze :
  ?pi_arrival:(int -> Normal.t) ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  result
(** Forward correlation-aware statistical timing. *)

val compare_to_independent :
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  Normal.t * Normal.t
(** [(independent, correlated)] circuit distributions from {!Ssta} and
    this module, for side-by-side reporting. *)
