(** Flat structure-of-arrays timing state shared by every STA engine.

    An arena packs all per-gate and per-fold-step state of a statistical
    timing analysis into unboxed [Bigarray.Array1] float64 planes
    ({!Statdelay.Clark.vec}), allocated once per circuit by {!create}.
    Planes are indexed by the flat view's {e level-major} gate ids
    ({!Circuit.Netlist.flat}), and moment planes interleave (mu, var)
    pairs — slot [i] at indices [2i] / [2i + 1] — so one level is one
    contiguous memory block and a fanin gather costs one cache line.
    Bigarray data lives outside the OCaml heap: million-gate planes are
    neither scanned nor moved by the GC.  {!forward} and {!reverse}
    sweep in place: a steady-state evaluation allocates zero words,
    which is what collapses minor-GC traffic in sizing solves
    (DESIGN.md Sections 9 and 10).

    The public boundary stays in {e old} gate ids: {!forward} takes the
    caller's old-id size vector, and {!gradient_into} /
    {!delay_means_into} scatter results back through the permutation.

    The sweeps perform bit-identical floating-point operations to the
    boxed reference ({!Ssta.Boxed}), via the in-place Clark kernels, at
    any pool width — [test/test_arena.ml] enforces Int64 equality of
    arrivals, circuit moments and gradients differentially.

    The record is exposed so the engines built on top ([Ssta], [Incr],
    [Mcsta], [Sizing.Engine]) and the differential tests can read the
    planes directly.  Treat it as read-only outside [lib/sta]; the
    layout is engine-internal and may change. *)

type vec = Statdelay.Clark.vec

type ivec = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Compact (int32) index column, halving the staging loops' index
    stream next to OCaml's 8-byte [int array]. *)

type t = {
  net : Circuit.Netlist.t;
  flat : Circuit.Netlist.flat;
  n : int;  (** gate count; every per-gate plane has this many slots *)
  sizes : vec;  (** sizes last swept by {!forward}, new-id order *)
  load : vec;  (** capacitive load per gate *)
  del : vec;  (** gate delay (mu, var) pairs *)
  arr : vec;  (** arrival (mu, var) pairs per gate *)
  pre : vec;  (** fold-slot pair plane: prefix maxima of each fold *)
  opnd : vec;
      (** level-window pair scratch (sized for the widest level): the
          current level's staged fanin operands at
          [slot - fi_off.(level lo)] — the sweep's random reads,
          gathered by tight copy loops so the cache misses overlap,
          re-used across levels so the window stays cache-resident
          (both sweeps stage each level before folding it) *)
  fosz : vec;
      (** level-window scratch: the current level's staged consumer
          sizes at [edge - fo_off.(level lo)] *)
  fi_b : ivec;
      (** fold-slot column: each operand's pair index in [arr] ([2e]
          for gate [e]; [2 (n + i)] for primary input [i], whose pairs
          occupy [arr]'s tail section), making staging a branch-free
          single-plane gather *)
  fo_c : ivec;  (** fanout-edge column: [fo_consumer] as int32 *)
  pi : vec;
      (** primary-input arrival pairs (zero by default) — a shared
          sub-view of [arr]'s tail section, {e not} a separate plane *)
  pp : vec;  (** fold-slot plane x8: Clark partials per fold step *)
  adj : vec;  (** arrival adjoint pairs per gate *)
  dmu_t : vec;  (** gate-delay mean adjoint per gate *)
  active : Bytes.t;  (** ['\001'] iff gate has a non-zero arrival adjoint *)
  fadj : vec;  (** fold-slot pair plane: per-operand adjoints *)
  grad : vec;  (** gradient w.r.t. gate sizes (new-id), after {!reverse} *)
}

val create : Circuit.Netlist.t -> t
(** Allocates every plane (the only allocation site).  O(gates + fanin
    edges) words; reusable across any number of sweeps. *)

val netlist : t -> Circuit.Netlist.t

val set_pi_arrival : t -> (int -> Statdelay.Normal.t) -> unit
(** Samples a primary-input arrival closure into the [pi] pair plane
    (the boxed engines' [?pi_arrival] argument). *)

val clear_pi_arrival : t -> unit
(** Resets primary inputs to the default deterministic-zero arrival. *)

val check_sizes : t -> float array -> unit
(** {!Circuit.Netlist.check_sizes} — same checks, same exceptions, same
    messages, same (old-id) reporting order — as a flat loop over the
    columns (no closure, no allocation on the success path). *)

val forward :
  ?pool:Util.Pool.t -> model:Circuit.Sigma_model.t -> t -> sizes:float array -> unit
(** Levelized forward sweep: loads, gate delay moments, fanin folds,
    arrivals, primary-output fold.  [sizes] is in old gate-id order
    (validated as {!check_sizes} plus [Cell.delay]'s size-below-1
    guard, then gathered into the arena's new-id plane).
    Allocation-free when [pool] is absent or has size 1. *)

val reverse :
  ?pool:Util.Pool.t ->
  model:Circuit.Sigma_model.t ->
  t ->
  d_mu:float ->
  d_var:float ->
  unit
(** Adjoint sweep seeded with [(d_mu, d_var)] on the circuit
    distribution; requires the state left by {!forward}.  Fills [grad]
    (and the adjoint planes).  Same two-phase levelized schedule as the
    boxed sweep, so results are bit-identical at any pool width.
    Allocation-free in serial mode. *)

val gradient_into : t -> float array -> unit
(** [gradient_into t out] scatters the gradient left by {!reverse} into
    [out] in old gate-id order ([out.(old_id)]).  Raises
    [Invalid_argument] if [out] is shorter than the gate count. *)

val delay_means_into : t -> float array -> unit
(** [delay_means_into t out] scatters the per-gate delay means left by
    {!forward} into [out] in old gate-id order. *)

val fold_pos : t -> unit
(** Re-runs only the primary-output fold over the current [arr]
    plane (the tail step of {!forward}), for engines ({!Incr}) that
    update arrivals selectively. *)

val circuit_mu : t -> float
(** Circuit-level max arrival mean, after {!forward}. *)

val circuit_var : t -> float

val phase2_gate : t -> int -> unit
(** One gate's serial scatter step of the reverse sweep (gradient
    contributions of [mu_t] plus the fanin adjoint scatter), exposed for
    {!Incr}, whose phase 1 differs (partials caching) but whose phase 2
    must replay exactly these accumulations.  Takes a {e new-id};
    requires [dmu_t], the [fadj] segment and [active] for the gate to
    be set. *)

val level_grain : int
(** Minimum level width (per the [2 * grain] rule) before a level is
    handed to the pool — same threshold as the boxed sweeps. *)
