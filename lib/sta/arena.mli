(** Flat structure-of-arrays timing state shared by every STA engine.

    An arena packs all per-gate and per-fold-step state of a statistical
    timing analysis into unboxed [float array] planes indexed by gate id
    (or by fold slot — see {!Circuit.Netlist.flat}), allocated once per
    circuit by {!create}.  {!forward} and {!reverse} then sweep in
    place: a steady-state evaluation allocates zero words on the OCaml
    heap, which is what collapses minor-GC traffic in sizing solves
    (DESIGN.md Section 9).

    The sweeps perform bit-identical floating-point operations to the
    boxed reference ({!Ssta.Boxed}), via the in-place Clark kernels, at
    any pool width — [test/test_arena.ml] enforces Int64 equality of
    arrivals, circuit moments and gradients differentially.

    The record is exposed so the engines built on top ([Ssta], [Incr],
    [Mcsta], [Sizing.Engine]) and the differential tests can read the
    planes directly.  Treat it as read-only outside [lib/sta]; the
    layout is engine-internal and may change. *)

type t = {
  net : Circuit.Netlist.t;
  flat : Circuit.Netlist.flat;
  buckets : int array array;
  n : int;  (** gate count; every per-gate plane has this length *)
  sizes : float array;  (** copy of the sizes last swept by {!forward} *)
  load : float array;  (** capacitive load per gate *)
  del_mu : float array;  (** gate delay mean *)
  del_var : float array;  (** gate delay variance *)
  arr_mu : float array;  (** arrival mean per gate *)
  arr_var : float array;  (** arrival variance per gate *)
  pre_mu : float array;  (** fold-slot plane: prefix maxima of each fold *)
  pre_var : float array;
  pi_mu : float array;  (** primary-input arrival means (zero by default) *)
  pi_var : float array;
  pp : float array;  (** fold-slot plane x8: Clark partials per fold step *)
  adj_mu : float array;  (** arrival mean adjoint per gate *)
  adj_var : float array;
  dmu_t : float array;  (** gate-delay mean adjoint per gate *)
  active : bool array;  (** gate has a non-zero arrival adjoint *)
  fadj_mu : float array;  (** fold-slot plane: per-operand adjoints *)
  fadj_var : float array;
  grad : float array;  (** gradient w.r.t. gate sizes, after {!reverse} *)
}

val create : Circuit.Netlist.t -> t
(** Allocates every plane (the only allocation site).  O(gates + fanin
    edges) words; reusable across any number of sweeps. *)

val netlist : t -> Circuit.Netlist.t

val set_pi_arrival : t -> (int -> Statdelay.Normal.t) -> unit
(** Samples a primary-input arrival closure into the [pi_*] planes (the
    boxed engines' [?pi_arrival] argument). *)

val clear_pi_arrival : t -> unit
(** Resets primary inputs to the default deterministic-zero arrival. *)

val check_sizes : t -> float array -> unit
(** {!Circuit.Netlist.check_sizes} — same checks, same exceptions, same
    messages — as a flat loop over the planes (no closure, no
    allocation on the success path). *)

val forward :
  ?pool:Util.Pool.t -> model:Circuit.Sigma_model.t -> t -> sizes:float array -> unit
(** Levelized forward sweep: loads, gate delay moments, fanin folds,
    arrivals, primary-output fold.  Validates [sizes] (as
    {!check_sizes} plus [Cell.delay]'s size-below-1 guard) and copies
    them into the arena.  Allocation-free when [pool] is absent or has
    size 1. *)

val reverse :
  ?pool:Util.Pool.t ->
  model:Circuit.Sigma_model.t ->
  t ->
  d_mu:float ->
  d_var:float ->
  unit
(** Adjoint sweep seeded with [(d_mu, d_var)] on the circuit
    distribution; requires the state left by {!forward}.  Fills [grad]
    (and the adjoint planes).  Same two-phase levelized schedule as the
    boxed sweep, so results are bit-identical at any pool width.
    Allocation-free in serial mode. *)

val fold_pos : t -> unit
(** Re-runs only the primary-output fold over the current [arr_*]
    planes (the tail step of {!forward}), for engines ({!Incr}) that
    update arrivals selectively. *)

val circuit_mu : t -> float
(** Circuit-level max arrival mean, after {!forward}. *)

val circuit_var : t -> float

val phase2_gate : t -> int -> unit
(** One gate's serial scatter step of the reverse sweep (gradient
    contributions of [mu_t] plus the fanin adjoint scatter), exposed for
    {!Incr}, whose phase 1 differs (partials caching) but whose phase 2
    must replay exactly these accumulations.  Requires [dmu_t], the
    [fadj_*] segment and [active] for the gate to be set. *)

val level_grain : int
(** Minimum bucket width (per the [2 * grain] rule) before a level is
    handed to the pool — same threshold as the boxed sweeps. *)
