open Circuit
open Statdelay

type result = {
  arrival : Normal.t array;
  gate_delay : Normal.t array;
  circuit : Normal.t;
  correlation : float array array;
}

let clip r = Util.Numerics.clamp ~lo:(-1.) ~hi:1. r

let analyze ?(pi_arrival = fun _ -> Normal.deterministic 0.) ~model net ~sizes =
  Netlist.check_sizes net sizes;
  let n = Netlist.n_gates net in
  let arrival = Array.make n (Normal.deterministic 0.) in
  let gate_delay = Array.make n (Normal.deterministic 0.) in
  let correlation = Array.make_matrix n n 0. in
  (* Distribution and correlation row (to all gate arrivals) of a node. *)
  let node_dist = function
    | Netlist.Pi i -> pi_arrival i
    | Netlist.Gate h -> arrival.(h)
  in
  let node_corr node k =
    match node with Netlist.Pi _ -> 0. | Netlist.Gate h -> correlation.(h).(k)
  in
  let node_self_corr a node =
    (* correlation between the running max [a] (with correlation row [r])
       and the operand node *)
    match node with Netlist.Pi _ -> 0. | Netlist.Gate h -> a.(h)
  in
  (* Fold the correlated max over a node array; returns the distribution
     and its correlation row. *)
  let fold_max nodes =
    let first = nodes.(0) in
    let dist = ref (node_dist first) in
    let r = Array.init n (fun k -> node_corr first k) in
    for i = 1 to Array.length nodes - 1 do
      let node = nodes.(i) in
      let x = node_dist node in
      let rho = node_self_corr r node in
      let wa, wb, c = Correlation.blend_weights !dist x ~rho in
      for k = 0 to n - 1 do
        r.(k) <- clip ((wa *. r.(k)) +. (wb *. node_corr node k))
      done;
      dist := c
    done;
    (!dist, r)
  in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let load = Netlist.load net ~sizes id in
      let mu_t = Cell.delay g.Netlist.cell ~size:sizes.(id) ~load in
      let t = Normal.of_var ~mu:mu_t ~var:(Sigma_model.var model mu_t) in
      gate_delay.(id) <- t;
      let u, r_u = fold_max g.Netlist.fanin in
      let arr = Normal.add u t in
      arrival.(id) <- arr;
      (* The gate delay is independent of every arrival, so correlations
         scale by sigma_U / sigma_T. *)
      let sigma_u = Normal.sigma u and sigma_t = Normal.sigma arr in
      let scale = if sigma_t > 0. then sigma_u /. sigma_t else 0. in
      for k = 0 to id - 1 do
        let v = clip (r_u.(k) *. scale) in
        correlation.(id).(k) <- v;
        correlation.(k).(id) <- v
      done;
      correlation.(id).(id) <- (if Normal.var arr > 0. then 1. else 0.))
    (Netlist.gates net);
  let circuit, _ = fold_max (Netlist.pos net) in
  { arrival; gate_delay; circuit; correlation }

let compare_to_independent ~model net ~sizes =
  let independent = (Ssta.analyze ~model net ~sizes).Ssta.circuit in
  let correlated = (analyze ~model net ~sizes).circuit in
  (independent, correlated)
