(** Traditional corner (best / typical / worst case) timing analysis.

    The paper's introduction motivates statistical analysis by noting that
    "the traditional best case / typical / worst case delay analysis ...
    is known to give very pessimistic estimates in many cases": setting
    {e every} gate simultaneously to its worst-case delay ignores that the
    slowest paths would all have to be unlucky at once.  This module
    implements that traditional analysis so the pessimism can be measured
    (experiment F-CORNER): the worst corner at {m \mu + k\sigma} per gate
    exceeds the statistical {m \mu + k\sigma_{T_{max}}} of the circuit —
    and the true Monte Carlo quantile — by a margin that grows with
    circuit depth. *)

type corners = {
  best : float;  (** every gate at {m \mu_t - k\sigma_t} *)
  typical : float;  (** every gate at {m \mu_t} *)
  worst : float;  (** every gate at {m \mu_t + k\sigma_t} *)
}

val analyze :
  ?k:float ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  corners
(** Corner delays with guard band [k] (default [3.]).  Best-corner delays
    are floored at [0.]. *)

type pessimism = {
  corners : corners;
  statistical : float;  (** the statistical {m \mu + k\sigma_{T_{max}}} *)
  monte_carlo_quantile : float;
      (** the empirical {m \Phi(k)}-quantile of the sampled circuit delay *)
  overestimate : float;
      (** [worst / monte_carlo_quantile] — the pessimism factor *)
}

val pessimism :
  ?rng:Util.Rng.t ->
  ?k:float ->
  ?samples:int ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  pessimism
(** Quantifies the worst-corner overestimate against the statistical
    analysis and ground-truth Monte Carlo (default 20_000 samples). *)
