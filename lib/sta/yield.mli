(** Timing yield: the fraction of manufactured/operating circuits that
    meet a delay constraint.

    Section 4 of the paper: constraining {m \mu_{T_{max}}} makes 50% of
    circuits conform, {m \mu + \sigma} 84.1%, {m \mu + 3\sigma} 99.8%.
    {!analytic} evaluates that claim from the SSTA result; {!monte_carlo}
    validates it by sampling actual gate delays and re-running a
    deterministic timing analysis per sample. *)

val analytic : Statdelay.Normal.t -> deadline:float -> float
(** [analytic circuit ~deadline] is {m P(T_{max} \le deadline)} under the
    normal approximation. *)

type delay_shape =
  | Gaussian  (** the model's own assumption *)
  | Uniform  (** uniform on {m \mu \pm \sigma\sqrt3} *)
  | Shifted_exponential
      (** {m \mu - \sigma + Exp(\sigma)}: maximally skewed, same moments *)
  | Two_point  (** {m \mu \pm \sigma} with probability 1/2 each *)
(** Alternative gate-delay distributions with the same mean and variance.
    Section 3 of the paper (citing [1]) claims the element distribution's
    shape is almost irrelevant to the circuit-level delay distribution;
    sampling with these families tests that claim (experiment F-SHAPE). *)

val draw_shape : Util.Rng.t -> delay_shape -> mu:float -> sigma:float -> float
(** One draw from the given family with the given first two moments —
    the per-gate sampler behind {!sample_circuit_delays}, exposed so the
    batched engine ({!Mcsta}) can run the same shape experiment. *)

val sample_circuit_delays :
  ?rng:Util.Rng.t ->
  ?shape:delay_shape ->
  ?arena:Arena.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  n:int ->
  float array
(** [n] Monte Carlo samples of the true circuit delay: each sample draws
    every gate delay independently from the given [shape] (default
    {!Gaussian}) with the model's {m (\mu_t, \sigma_t)} and propagates
    worst-case arrivals deterministically ({!Dsta.propagate_into}, one
    shared arrival scratch).  The delay moments come from the
    arena-backed {!Ssta.analyze}; [arena] reuses a caller-owned
    {!Arena}. *)

val monte_carlo :
  ?rng:Util.Rng.t ->
  ?arena:Arena.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  deadline:float ->
  n:int ->
  float
(** Empirical yield: fraction of samples with circuit delay at most
    [deadline]. *)
