open Circuit

type draw = Util.Rng.t -> mu:float -> sigma:float -> float

let gaussian_draw rng ~mu ~sigma = Util.Rng.gaussian rng ~mu ~sigma

(* ---- instrumentation ------------------------------------------------------- *)

let c_sample = Util.Instr.counter "mc.sample"
let c_samples = Util.Instr.counter "mc.samples"
let c_batches = Util.Instr.counter "mc.batches"
let c_par_levels = Util.Instr.counter "mc.parallel_levels"
let c_ser_levels = Util.Instr.counter "mc.serial_levels"
let t_sample = Util.Instr.timer "mc.sample"

(* Unlike the analytic sweeps, one gate's body here covers a whole batch
   of draws (microseconds of work), so a level is worth distributing as
   soon as it holds two gates. *)
let for_level pool n body =
  match pool with
  | Some p when Util.Pool.size p > 1 && n >= 2 ->
      Util.Instr.incr c_par_levels;
      Util.Pool.parallel_for ~grain:1 p ~n body
  | _ ->
      Util.Instr.incr c_ser_levels;
      for i = 0 to n - 1 do
        body i
      done

let sample ?pool ?arena ?(batch = 1024) ?(seed = 1) ?(draw = gaussian_draw)
    ?(pi_arrival = fun _ -> 0.) ~model net ~sizes ~n =
  if n <= 0 then invalid_arg "Mcsta.sample: n must be positive";
  if batch <= 0 then invalid_arg "Mcsta.sample: batch must be positive";
  Netlist.check_sizes net sizes;
  Util.Instr.incr c_sample;
  Util.Instr.add c_samples n;
  Util.Instr.time t_sample @@ fun () ->
  let ng = Netlist.n_gates net in
  (* Per-gate delay moments at the given sizes (fixed for the whole run).
     With an arena they are read off its delay pair plane
     ([Arena.delay_means_into], back in old-id order) — same loads,
     same delay expression, bit-identical to [Dsta.delays].  The sigma
     is always recomputed from the model (the plane holds the variance;
     [sqrt] of it is not guaranteed bit-identical to
     [Sigma_model.sigma]). *)
  let mu_t =
    match arena with
    | Some a ->
        if not (Arena.netlist a == net) then
          invalid_arg "Mcsta.sample: arena was created for a different netlist";
        Arena.forward ?pool ~model a ~sizes;
        let mu = Array.make ng 0. in
        Arena.delay_means_into a mu;
        mu
    | None -> Dsta.delays net ~sizes
  in
  let sigma_t = Array.init ng (fun g -> Sigma_model.sigma model mu_t.(g)) in
  (* One private stream per gate: sample k of gate g depends only on
     (seed, g, k), never on the batch boundaries or the schedule. *)
  let streams = Array.init ng (fun g -> Util.Rng.keyed seed ~key:g) in
  let buckets = Netlist.level_buckets net in
  let pos = Netlist.pos net in
  let out = Array.make n 0. in
  let b = min batch n in
  (* Flat row-major arrival buffer: gate g's sample k lives at g*b + k. *)
  let arrival = Array.make (ng * b) 0. in
  let completed = ref 0 in
  while !completed < n do
    let bsz = min b (n - !completed) in
    Util.Instr.incr c_batches;
    Array.iter
      (fun bucket ->
        for_level pool (Array.length bucket) (fun i ->
            let id = bucket.(i) in
            let g = Netlist.gate net id in
            let rng = streams.(id) in
            let mu = mu_t.(id) and sigma = sigma_t.(id) in
            let fanin = g.Netlist.fanin in
            let deg = Array.length fanin in
            let base = id * b in
            for k = 0 to bsz - 1 do
              let u = ref 0. in
              if deg > 0 then begin
                u := neg_infinity;
                for j = 0 to deg - 1 do
                  let v =
                    match fanin.(j) with
                    | Netlist.Pi p -> pi_arrival p
                    | Netlist.Gate f -> arrival.((f * b) + k)
                  in
                  if v > !u then u := v
                done
              end;
              arrival.(base + k) <- !u +. draw rng ~mu ~sigma
            done))
      buckets;
    (* Primary-output reduction: serial, fixed order. *)
    for k = 0 to bsz - 1 do
      let t =
        Array.fold_left
          (fun acc po ->
            let v =
              match po with
              | Netlist.Pi p -> pi_arrival p
              | Netlist.Gate g -> arrival.((g * b) + k)
            in
            if v > acc then v else acc)
          neg_infinity pos
      in
      out.(!completed + k) <- t
    done;
    completed := !completed + bsz
  done;
  out

(* ---- reductions ------------------------------------------------------------- *)

type summary = {
  n : int;
  mu : float;
  sigma : float;
  min_t : float;
  max_t : float;
  quantiles : (float * float) list;
}

let default_quantiles = [ 0.5; 0.841344746068543; 0.998650101968370 ]

let summarize ?(quantiles = default_quantiles) samples =
  if Array.length samples = 0 then invalid_arg "Mcsta.summarize: empty sample";
  let st = Util.Stats.of_array samples in
  {
    n = Util.Stats.count st;
    mu = Util.Stats.mean st;
    sigma = Util.Stats.std_dev st;
    min_t = Util.Stats.min_value st;
    max_t = Util.Stats.max_value st;
    quantiles = List.map (fun p -> (p, Util.Stats.quantile samples p)) quantiles;
  }

type conformance = {
  budget : float;
  n : int;
  hits : int;
  p : float;
  ci_lo : float;
  ci_hi : float;
}

let conformance ?(z = 1.96) samples ~budget =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Mcsta.conformance: empty sample";
  let hits =
    Array.fold_left (fun acc t -> if t <= budget then acc + 1 else acc) 0 samples
  in
  let ci_lo, ci_hi = Util.Stats.wilson_interval ~z ~hits ~n () in
  { budget; n; hits; p = float_of_int hits /. float_of_int n; ci_lo; ci_hi }

let pp_summary ppf (s : summary) =
  Format.fprintf ppf "MC (%d samples): mu = %.4f, sigma = %.4f, range [%.4f, %.4f]"
    s.n s.mu s.sigma s.min_t s.max_t;
  List.iter (fun (p, q) -> Format.fprintf ppf "@.  q%.5g = %.4f" (100. *. p) q)
    s.quantiles

let pp_conformance ppf c =
  Format.fprintf ppf
    "P(Tmax <= %g) = %.2f%% (%d/%d, 95%% CI [%.2f%%, %.2f%%])" c.budget
    (100. *. c.p) c.hits c.n (100. *. c.ci_lo) (100. *. c.ci_hi)
