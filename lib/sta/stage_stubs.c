/* Staging gathers for the flat timing arena.
 *
 * These are the sweeps' only random memory accesses: copying each fold
 * slot's fanin operand pair (and each fanout edge's consumer size)
 * from its home plane into the level's contiguous scratch window.
 * They are pure copies -- no floating-point arithmetic -- so doing
 * them in C cannot perturb results; the point of the C version is
 * __builtin_prefetch, which OCaml cannot express: issuing the gather
 * addresses a couple of dozen iterations ahead keeps that many cache
 * misses in flight instead of the handful the out-of-order window
 * finds on its own.
 *
 * Index columns are trusted (built once in Arena.create from the
 * validated CSR view); callers pass half-open index ranges.
 */

#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/bigarray.h>

#define PREFETCH_AHEAD 24

/* opnd[2i .. 2i+1] = arr[fib[s0+i] .. fib[s0+i]+1] for s0+i in [s0, s1) */
CAMLprim value sta_stage_gather_pairs(value varr, value vfib, value vopnd,
                                      value vs0, value vs1)
{
  const double *arr = (const double *)Caml_ba_data_val(varr);
  const int32_t *fib = (const int32_t *)Caml_ba_data_val(vfib);
  double *opnd = (double *)Caml_ba_data_val(vopnd);
  long s0 = Long_val(vs0);
  long m = Long_val(vs1) - s0;
  long i;
  for (i = 0; i < m; i++) {
    if (i + PREFETCH_AHEAD < m)
      __builtin_prefetch(&arr[fib[s0 + i + PREFETCH_AHEAD]], 0, 1);
    int32_t b = fib[s0 + i];
    opnd[2 * i] = arr[b];
    opnd[2 * i + 1] = arr[b + 1];
  }
  return Val_unit;
}

/* fosz[i] = sizes[foc[f0+i]] for f0+i in [f0, f1) */
CAMLprim value sta_stage_gather_sizes(value vsizes, value vfoc, value vfosz,
                                      value vf0, value vf1)
{
  const double *sizes = (const double *)Caml_ba_data_val(vsizes);
  const int32_t *foc = (const int32_t *)Caml_ba_data_val(vfoc);
  double *fosz = (double *)Caml_ba_data_val(vfosz);
  long f0 = Long_val(vf0);
  long m = Long_val(vf1) - f0;
  long i;
  for (i = 0; i < m; i++) {
    if (i + PREFETCH_AHEAD < m)
      __builtin_prefetch(&sizes[foc[f0 + i + PREFETCH_AHEAD]], 0, 1);
    fosz[i] = sizes[foc[f0 + i]];
  }
  return Val_unit;
}
