open Circuit
open Statdelay

type result = {
  arrival : Normal.t array;
  gate_delay : Normal.t array;
  loads : float array;
  circuit : Normal.t;
}

let default_pi_arrival _ = Normal.deterministic 0.

let node_arrival ~pi_arrival arrival = function
  | Netlist.Pi i -> pi_arrival i
  | Netlist.Gate g -> arrival.(g)

(* Prefix maxima of a left fold of Clark.max2: prefix.(0) is the first
   operand, prefix.(i) = max2 (prefix.(i-1), operand i).  Recording them
   lets the reverse sweep recompute each step's partials. *)
let fold_max operands =
  let k = Array.length operands in
  let prefix = Array.make k operands.(0) in
  for i = 1 to k - 1 do
    prefix.(i) <- Clark.max2 prefix.(i - 1) operands.(i)
  done;
  prefix

let analyze_with_max ~max_op ~pi_arrival ~model net ~sizes =
  Netlist.check_sizes net sizes;
  let n = Netlist.n_gates net in
  let arrival = Array.make n (Normal.deterministic 0.) in
  let gate_delay = Array.make n (Normal.deterministic 0.) in
  let loads = Array.make n 0. in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let load = Netlist.load net ~sizes id in
      loads.(id) <- load;
      let mu_t = Cell.delay g.Netlist.cell ~size:sizes.(id) ~load in
      let t = Normal.of_var ~mu:mu_t ~var:(Sigma_model.var model mu_t) in
      gate_delay.(id) <- t;
      let operands = Array.map (node_arrival ~pi_arrival arrival) g.Netlist.fanin in
      arrival.(id) <- Normal.add (max_op operands) t)
    (Netlist.gates net);
  let po_operands = Array.map (node_arrival ~pi_arrival arrival) (Netlist.pos net) in
  { arrival; gate_delay; loads; circuit = max_op po_operands }

let analyze ?(pi_arrival = default_pi_arrival) ~model net ~sizes =
  let max_op operands = (fold_max operands).(Array.length operands - 1) in
  analyze_with_max ~max_op ~pi_arrival ~model net ~sizes

let analyze_exact_nary ?(pi_arrival = default_pi_arrival) ?points ~model net ~sizes =
  let max_op operands =
    if Array.length operands = 1 then operands.(0)
    else Nary.max_list ?points (Array.to_list operands)
  in
  analyze_with_max ~max_op ~pi_arrival ~model net ~sizes

type seed = { d_mu : float; d_var : float }

(* Adjoint of a recorded fold of Clark.max2.  [adj] is the adjoint of the
   final prefix; returns the per-operand adjoints. *)
let backprop_fold operands prefix (adj : seed) =
  let k = Array.length operands in
  let out = Array.make k { d_mu = 0.; d_var = 0. } in
  let acc = ref adj in
  for i = k - 1 downto 1 do
    let _, p = Clark.max2_full prefix.(i - 1) operands.(i) in
    let a = !acc in
    out.(i) <-
      {
        d_mu = (a.d_mu *. p.Clark.dmu_dmu_b) +. (a.d_var *. p.Clark.dvar_dmu_b);
        d_var = (a.d_mu *. p.Clark.dmu_dvar_b) +. (a.d_var *. p.Clark.dvar_dvar_b);
      };
    acc :=
      {
        d_mu = (a.d_mu *. p.Clark.dmu_dmu_a) +. (a.d_var *. p.Clark.dvar_dmu_a);
        d_var = (a.d_mu *. p.Clark.dmu_dvar_a) +. (a.d_var *. p.Clark.dvar_dvar_a);
      }
  done;
  out.(0) <- !acc;
  out

let value_and_gradient ?(pi_arrival = default_pi_arrival) ~model net ~sizes ~seed =
  let res = analyze ~pi_arrival ~model net ~sizes in
  let n = Netlist.n_gates net in
  (* Adjoints of each gate's arrival distribution. *)
  let adj = Array.make n { d_mu = 0.; d_var = 0. } in
  let add_adj node (a : seed) =
    match node with
    | Netlist.Pi _ -> ()
    | Netlist.Gate g ->
        let cur = adj.(g) in
        adj.(g) <- { d_mu = cur.d_mu +. a.d_mu; d_var = cur.d_var +. a.d_var }
  in
  (* Seed the PO fold. *)
  let po_nodes = Netlist.pos net in
  let po_operands = Array.map (node_arrival ~pi_arrival res.arrival) po_nodes in
  let po_prefix = fold_max po_operands in
  let root = seed res in
  let po_adj = backprop_fold po_operands po_prefix root in
  Array.iteri (fun i node -> add_adj node po_adj.(i)) po_nodes;
  let grad = Array.make n 0. in
  (* Reverse topological order: ids decrease. *)
  for id = n - 1 downto 0 do
    let g = Netlist.gate net id in
    let a = adj.(id) in
    if a.d_mu <> 0. || a.d_var <> 0. then begin
      (* arrival = U + t: both mean and variance adjoints pass through
         unchanged to the input max U and to the gate delay t. *)
      let t = res.gate_delay.(id) in
      (* Gate delay: var_t = F(mu_t) folds the variance adjoint into the
         mean adjoint. *)
      let dmu_t =
        a.d_mu +. (a.d_var *. Sigma_model.dvar_dmu model (Normal.mu t))
      in
      (* mu_t = t_int + drive * load / S_g with
         load = wire + sum_c m_c * C_in_c * S_c. *)
      let cell = g.Netlist.cell in
      let s_g = sizes.(id) in
      grad.(id) <-
        grad.(id) -. (dmu_t *. cell.Cell.drive *. res.loads.(id) /. (s_g *. s_g));
      List.iter
        (fun (consumer, mult) ->
          let c = Netlist.gate net consumer in
          grad.(consumer) <-
            grad.(consumer)
            +. dmu_t *. cell.Cell.drive *. float_of_int mult
               *. c.Netlist.cell.Cell.c_in /. s_g)
        (Netlist.fanout net id);
      (* Input max U: replay the fanin fold. *)
      let operands = Array.map (node_arrival ~pi_arrival res.arrival) g.Netlist.fanin in
      let prefix = fold_max operands in
      let fan_adj = backprop_fold operands prefix a in
      Array.iteri (fun i node -> add_adj node fan_adj.(i)) g.Netlist.fanin
    end
  done;
  (res, grad)

let gradient ?pi_arrival ~model net ~sizes ~seed =
  snd (value_and_gradient ?pi_arrival ~model net ~sizes ~seed)

let mu_plus_k_sigma_seed k res =
  let var = Normal.var res.circuit in
  let d_var = if k = 0. || var <= 0. then 0. else k /. (2. *. sqrt var) in
  { d_mu = 1.; d_var }

let sigma_seed res =
  let var = Normal.var res.circuit in
  let d_var = if var <= 0. then 0. else 1. /. (2. *. sqrt var) in
  { d_mu = 0.; d_var }
