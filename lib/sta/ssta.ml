open Circuit
open Statdelay

type result = {
  arrival : Normal.t array;
  gate_delay : Normal.t array;
  loads : float array;
  circuit : Normal.t;
}

let default_pi_arrival _ = Normal.deterministic 0.

let node_arrival ~pi_arrival arrival = function
  | Netlist.Pi i -> pi_arrival i
  | Netlist.Gate g -> arrival.(g)

(* Prefix maxima of a left fold of Clark.max2: prefix.(0) is the first
   operand, prefix.(i) = max2 (prefix.(i-1), operand i).  Recording them
   lets the reverse sweep recompute each step's partials. *)
let fold_max operands =
  let k = Array.length operands in
  let prefix = Array.make k operands.(0) in
  for i = 1 to k - 1 do
    prefix.(i) <- Clark.max2 prefix.(i - 1) operands.(i)
  done;
  prefix

(* The final fold value without materialising the prefix array (the
   forward sweep only needs the last element; same operations, same
   result bits). *)
let fold_max_last operands =
  let acc = ref operands.(0) in
  for i = 1 to Array.length operands - 1 do
    acc := Clark.max2 !acc operands.(i)
  done;
  !acc

(* ---- instrumentation -------------------------------------------------------- *)

let c_analyze = Util.Instr.counter "ssta.analyze"
let c_gradient = Util.Instr.counter "ssta.gradient"
let c_par_levels = Util.Instr.counter "ssta.parallel_levels"
let c_ser_levels = Util.Instr.counter "ssta.serial_levels"
let t_forward = Util.Instr.timer "ssta.forward"
let t_reverse = Util.Instr.timer "ssta.reverse"

(* ---- level scheduling ------------------------------------------------------- *)

(* Minimum indices per domain before a level is worth handing to the
   pool: one gate evaluation costs on the order of a microsecond, a pool
   wake-up tens of microseconds. *)
let level_grain = 16

(* Run [body] over one level's bucket, in parallel when a pool is given
   and the level is wide enough.  [body i] only writes per-gate slots
   (see Util.Pool's determinism contract), so the result is bit-identical
   either way. *)
let for_level pool n body =
  match pool with
  | Some p when Util.Pool.size p > 1 && n >= 2 * level_grain ->
      Util.Instr.incr c_par_levels;
      Util.Pool.parallel_for ~grain:level_grain p ~n body
  | _ ->
      Util.Instr.incr c_ser_levels;
      for i = 0 to n - 1 do
        body i
      done

let analyze_with_max ~max_op ~pi_arrival ~model net ~sizes =
  Netlist.check_sizes net sizes;
  let n = Netlist.n_gates net in
  let arrival = Array.make n (Normal.deterministic 0.) in
  let gate_delay = Array.make n (Normal.deterministic 0.) in
  let loads = Array.make n 0. in
  Array.iter
    (fun (g : Netlist.gate) ->
      let id = g.Netlist.id in
      let load = Netlist.load net ~sizes id in
      loads.(id) <- load;
      let mu_t = Cell.delay g.Netlist.cell ~size:sizes.(id) ~load in
      let t = Normal.of_var ~mu:mu_t ~var:(Sigma_model.var model mu_t) in
      gate_delay.(id) <- t;
      let operands = Array.map (node_arrival ~pi_arrival arrival) g.Netlist.fanin in
      arrival.(id) <- Normal.add (max_op operands) t)
    (Netlist.gates net);
  let po_operands = Array.map (node_arrival ~pi_arrival arrival) (Netlist.pos net) in
  { arrival; gate_delay; loads; circuit = max_op po_operands }

(* Levelized forward sweep.  Within a level every gate only reads arrivals
   of strictly lower levels (and sizes/fanouts, which are constant during
   the sweep) and writes its own slots, so the levels can be evaluated
   bucket-parallel with results bit-identical to the serial gate-order
   sweep. *)
let boxed_analyze ?pool ?(pi_arrival = default_pi_arrival) ~model net ~sizes =
  Util.Instr.incr c_analyze;
  Util.Instr.time t_forward @@ fun () ->
  Netlist.check_sizes net sizes;
  let n = Netlist.n_gates net in
  let arrival = Array.make n (Normal.deterministic 0.) in
  let gate_delay = Array.make n (Normal.deterministic 0.) in
  let loads = Array.make n 0. in
  let eval_gate id =
    let g = Netlist.gate net id in
    let load = Netlist.load net ~sizes id in
    loads.(id) <- load;
    let mu_t = Cell.delay g.Netlist.cell ~size:sizes.(id) ~load in
    let t = Normal.of_var ~mu:mu_t ~var:(Sigma_model.var model mu_t) in
    gate_delay.(id) <- t;
    let operands = Array.map (node_arrival ~pi_arrival arrival) g.Netlist.fanin in
    arrival.(id) <- Normal.add (fold_max_last operands) t
  in
  Array.iter
    (fun bucket -> for_level pool (Array.length bucket) (fun i -> eval_gate bucket.(i)))
    (Netlist.level_buckets net);
  let po_operands = Array.map (node_arrival ~pi_arrival arrival) (Netlist.pos net) in
  { arrival; gate_delay; loads; circuit = fold_max_last po_operands }

let analyze_exact_nary ?(pi_arrival = default_pi_arrival) ?points ~model net ~sizes =
  let max_op operands =
    if Array.length operands = 1 then operands.(0)
    else Nary.max_list ?points (Array.to_list operands)
  in
  analyze_with_max ~max_op ~pi_arrival ~model net ~sizes

type seed = { d_mu : float; d_var : float }

(* Adjoint of a recorded fold of Clark.max2.  [adj] is the adjoint of the
   final prefix; returns the per-operand adjoints. *)
let backprop_fold operands prefix (adj : seed) =
  let k = Array.length operands in
  let out = Array.make k { d_mu = 0.; d_var = 0. } in
  let acc = ref adj in
  for i = k - 1 downto 1 do
    let _, p = Clark.max2_full prefix.(i - 1) operands.(i) in
    let a = !acc in
    out.(i) <-
      {
        d_mu = (a.d_mu *. p.Clark.dmu_dmu_b) +. (a.d_var *. p.Clark.dvar_dmu_b);
        d_var = (a.d_mu *. p.Clark.dmu_dvar_b) +. (a.d_var *. p.Clark.dvar_dvar_b);
      };
    acc :=
      {
        d_mu = (a.d_mu *. p.Clark.dmu_dmu_a) +. (a.d_var *. p.Clark.dvar_dmu_a);
        d_var = (a.d_mu *. p.Clark.dmu_dvar_a) +. (a.d_var *. p.Clark.dvar_dvar_a);
      }
  done;
  out.(0) <- !acc;
  out

(* Reverse sweep, levelized.

   A gate's arrival adjoint receives contributions only from strictly
   higher levels (its consumers) and from the primary-output fold, so
   once the sweep reaches a level every adjoint in it is final.  Each
   level is processed in two phases:

   - phase 1 (parallelisable): per gate, recompute the fanin fold and its
     Clark partials and store the per-operand adjoints and the gate-delay
     mean adjoint in per-gate scratch slots — the expensive part, pure
     and write-disjoint;
   - phase 2 (serial, decreasing id): scatter those contributions into
     the shared [adj] and [grad] accumulators.

   Phase 2's fixed order makes every floating-point accumulation happen
   in the same sequence whether or not phase 1 ran on a pool, which is
   what makes parallel gradients bit-identical to serial ones. *)
let boxed_value_and_gradient ?pool ?(pi_arrival = default_pi_arrival) ~model net
    ~sizes ~seed =
  let res = boxed_analyze ?pool ~pi_arrival ~model net ~sizes in
  Util.Instr.incr c_gradient;
  Util.Instr.time t_reverse @@ fun () ->
  let n = Netlist.n_gates net in
  (* Adjoints of each gate's arrival distribution. *)
  let adj = Array.make n { d_mu = 0.; d_var = 0. } in
  let add_adj node (a : seed) =
    match node with
    | Netlist.Pi _ -> ()
    | Netlist.Gate g ->
        let cur = adj.(g) in
        adj.(g) <- { d_mu = cur.d_mu +. a.d_mu; d_var = cur.d_var +. a.d_var }
  in
  (* Seed the PO fold. *)
  let po_nodes = Netlist.pos net in
  let po_operands = Array.map (node_arrival ~pi_arrival res.arrival) po_nodes in
  let po_prefix = fold_max po_operands in
  let root = seed res in
  let po_adj = backprop_fold po_operands po_prefix root in
  Array.iteri (fun i node -> add_adj node po_adj.(i)) po_nodes;
  let grad = Array.make n 0. in
  (* Per-gate scratch for phase 1 results. *)
  let active = Array.make n false in
  let dmu_ts = Array.make n 0. in
  let fan_adjs = Array.make n [||] in
  let buckets = Netlist.level_buckets net in
  for l = Array.length buckets - 1 downto 0 do
    let bucket = buckets.(l) in
    for_level pool (Array.length bucket) (fun i ->
        let id = bucket.(i) in
        let a = adj.(id) in
        if a.d_mu <> 0. || a.d_var <> 0. then begin
          active.(id) <- true;
          let g = Netlist.gate net id in
          (* arrival = U + t: both mean and variance adjoints pass through
             unchanged to the input max U and to the gate delay t.
             Gate delay: var_t = F(mu_t) folds the variance adjoint into
             the mean adjoint. *)
          let t = res.gate_delay.(id) in
          dmu_ts.(id) <-
            a.d_mu +. (a.d_var *. Sigma_model.dvar_dmu model (Normal.mu t));
          (* Input max U: replay the fanin fold. *)
          let operands =
            Array.map (node_arrival ~pi_arrival res.arrival) g.Netlist.fanin
          in
          fan_adjs.(id) <- backprop_fold operands (fold_max operands) a
        end);
    for i = Array.length bucket - 1 downto 0 do
      let id = bucket.(i) in
      if active.(id) then begin
        let g = Netlist.gate net id in
        let dmu_t = dmu_ts.(id) in
        (* mu_t = t_int + drive * load / S_g with
           load = wire + sum_c m_c * C_in_c * S_c. *)
        let cell = g.Netlist.cell in
        let s_g = sizes.(id) in
        grad.(id) <-
          grad.(id) -. (dmu_t *. cell.Cell.drive *. res.loads.(id) /. (s_g *. s_g));
        List.iter
          (fun (consumer, mult) ->
            let c = Netlist.gate net consumer in
            grad.(consumer) <-
              grad.(consumer)
              +. dmu_t *. cell.Cell.drive *. float_of_int mult
                 *. c.Netlist.cell.Cell.c_in /. s_g)
          (Netlist.fanout net id);
        Array.iteri (fun i node -> add_adj node fan_adjs.(id).(i)) g.Netlist.fanin;
        fan_adjs.(id) <- [||]
      end
    done
  done;
  (res, grad)

(* The original record-based sweeps, kept verbatim as the golden
   reference the arena path is differentially tested against
   (test/test_arena.ml asserts Int64 bit-identity of every arrival,
   delay, load, circuit moment and gradient entry). *)
module Boxed = struct
  let analyze = boxed_analyze
  let value_and_gradient = boxed_value_and_gradient

  let gradient ?pool ?pi_arrival ~model net ~sizes ~seed =
    snd (boxed_value_and_gradient ?pool ?pi_arrival ~model net ~sizes ~seed)
end

(* ---- arena-backed entry points ----------------------------------------------

   The public [analyze] / [value_and_gradient] sweep a flat
   structure-of-arrays arena (see Arena) and convert back to the boxed
   [result] at the boundary.  Passing [?arena] (built for the same
   netlist) reuses its planes so the sweep itself allocates nothing;
   otherwise a fresh arena is created for the call. *)

let arena_for ?arena net =
  match arena with
  | Some a ->
      if not (Arena.netlist a == net) then
        invalid_arg "Ssta: arena was created for a different netlist";
      a
  | None -> Arena.create net

(* Boundary conversion: planes -> the public result shape.  The Normal.t
   records are built directly from the plane values (the arena already
   performed of_var's validation), so the snapshot is bit-exact. *)
let of_arena (a : Arena.t) : result =
  let n = a.Arena.n in
  let perm = a.Arena.flat.Circuit.Netlist.perm in
  {
    arrival =
      Array.init n (fun i ->
          let j = 2 * perm.(i) in
          { Normal.mu = Clark.vget a.Arena.arr j;
            var = Clark.vget a.Arena.arr (j + 1) });
    gate_delay =
      Array.init n (fun i ->
          let j = 2 * perm.(i) in
          { Normal.mu = Clark.vget a.Arena.del j;
            var = Clark.vget a.Arena.del (j + 1) });
    loads = Array.init n (fun i -> Clark.vget a.Arena.load perm.(i));
    circuit = { Normal.mu = Arena.circuit_mu a; var = Arena.circuit_var a };
  }

let run_forward ?pool ?pi_arrival ~model a ~sizes =
  Util.Instr.incr c_analyze;
  Util.Instr.time t_forward @@ fun () ->
  (match pi_arrival with
  | Some f -> Arena.set_pi_arrival a f
  | None -> Arena.clear_pi_arrival a);
  Arena.forward ?pool ~model a ~sizes;
  of_arena a

let analyze ?pool ?arena ?pi_arrival ~model net ~sizes =
  let a = arena_for ?arena net in
  run_forward ?pool ?pi_arrival ~model a ~sizes

let value_and_gradient ?pool ?arena ?pi_arrival ~model net ~sizes ~seed =
  let a = arena_for ?arena net in
  let res = run_forward ?pool ?pi_arrival ~model a ~sizes in
  Util.Instr.incr c_gradient;
  Util.Instr.time t_reverse @@ fun () ->
  let root = seed res in
  Arena.reverse ?pool ~model a ~d_mu:root.d_mu ~d_var:root.d_var;
  let grad = Array.make (Array.length sizes) 0. in
  Arena.gradient_into a grad;
  (res, grad)

let gradient ?pool ?arena ?pi_arrival ~model net ~sizes ~seed =
  snd (value_and_gradient ?pool ?arena ?pi_arrival ~model net ~sizes ~seed)

(* Raw plane-level entry points: same sweeps, same instrumentation, but
   no result snapshot and no fresh gradient array — the sizing engine's
   inner loop reads the planes in place. *)
let forward_raw ?pool ?pi_arrival ~model a ~sizes =
  Util.Instr.incr c_analyze;
  Util.Instr.time t_forward @@ fun () ->
  (match pi_arrival with
  | Some f -> Arena.set_pi_arrival a f
  | None -> Arena.clear_pi_arrival a);
  Arena.forward ?pool ~model a ~sizes

let reverse_raw ?pool ~model a ~d_mu ~d_var =
  Util.Instr.incr c_gradient;
  Util.Instr.time t_reverse @@ fun () ->
  Arena.reverse ?pool ~model a ~d_mu ~d_var

(* The exact floating-point kernels of both sweeps, re-exported so the
   incremental engine (Incr) replays bit-identical operations instead of
   maintaining a drifting copy. *)
module Kernel = struct
  let default_pi_arrival = default_pi_arrival
  let node_arrival = node_arrival
  let fold_max = fold_max
  let fold_max_last = fold_max_last
  let backprop_fold = backprop_fold
  let level_grain = level_grain
end

let mu_plus_k_sigma_seed k res =
  let var = Normal.var res.circuit in
  let d_var = if k = 0. || var <= 0. then 0. else k /. (2. *. sqrt var) in
  { d_mu = 1.; d_var }

let sigma_seed res =
  let var = Normal.var res.circuit in
  let d_var = if var <= 0. then 0. else 1. /. (2. *. sqrt var) in
  { d_mu = 0.; d_var }
