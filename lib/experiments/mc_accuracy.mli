(** Accuracy of the analytical statistical operators against Monte Carlo
    (the Section-3 adequacy claim for the normal approximation of the
    max, inherited from the paper's references [1] and [2]).

    Two experiments: a parameter grid for the single two-operand max
    (varying mean separation and sigma ratio), and whole-circuit SSTA
    versus the batched circuit-level oracle {!Sta.Mcsta} on the tree and
    a benchmark stand-in. *)

type grid_row = {
  dmu : float;  (** mean separation in units of {m \sigma_A} *)
  sigma_ratio : float;  (** {m \sigma_B/\sigma_A} *)
  mu_err : float;  (** |analytic - sampled| mean *)
  sigma_err : float;
}

type circuit_row = {
  circuit_name : string;
  analytic_mu : float;
  analytic_sigma : float;
  mc_mu : float;
  mc_sigma : float;
}

type shape_row = {
  shape_name : string;
  shape_mc_mu : float;
  shape_mc_sigma : float;
}
(** F-SHAPE: Monte Carlo on the tree with moment-matched non-normal gate
    delays — Section 3's claim that the element distribution's shape is
    almost irrelevant to the circuit-level result. *)

type result = {
  grid : grid_row list;
  circuits : circuit_row list;
  shapes : shape_row list;
  shape_reference : circuit_row;  (** SSTA on the shape-test circuit *)
}

val run :
  ?pool:Util.Pool.t ->
  ?model:Circuit.Sigma_model.t ->
  ?samples:int ->
  ?seed:int ->
  unit ->
  result
(** Default 200_000 samples per grid point, [samples / 4] per circuit and
    per shape.  The circuit-level rows are drawn with {!Sta.Mcsta.sample},
    so results are identical for any [?pool]. *)

val print : result -> unit
