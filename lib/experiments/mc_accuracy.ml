open Statdelay

type grid_row = {
  dmu : float;
  sigma_ratio : float;
  mu_err : float;
  sigma_err : float;
}

type circuit_row = {
  circuit_name : string;
  analytic_mu : float;
  analytic_sigma : float;
  mc_mu : float;
  mc_sigma : float;
}

type shape_row = {
  shape_name : string;
  shape_mc_mu : float;
  shape_mc_sigma : float;
}

type result = {
  grid : grid_row list;
  circuits : circuit_row list;
  shapes : shape_row list;
  shape_reference : circuit_row;
}

let run ?pool ?(model = Circuit.Sigma_model.paper_default) ?(samples = 200_000)
    ?(seed = 11) () =
  let rng = Util.Rng.create seed in
  let grid =
    List.concat_map
      (fun dmu ->
        List.map
          (fun sigma_ratio ->
            let a = Normal.make ~mu:0. ~sigma:1. in
            let b = Normal.make ~mu:dmu ~sigma:sigma_ratio in
            let cmp = Mc.compare_max2 rng a b ~n:samples in
            { dmu; sigma_ratio; mu_err = cmp.Mc.mu_abs_err; sigma_err = cmp.Mc.sigma_abs_err })
          [ 0.5; 1.; 2. ])
      [ 0.; 0.5; 1.; 2.; 4. ]
  in
  (* Circuit-level comparisons run on the batched oracle: same per-gate
     moments as the analytic engine, exact max/+ propagation of sampled
     delays.  The seed is offset per circuit so rows are independent. *)
  let circuit_samples = max 2 (samples / 4) in
  let circuit idx net =
    let sizes = Circuit.Netlist.min_sizes net in
    let res = Sta.Ssta.analyze ~model net ~sizes in
    let mc =
      Sta.Mcsta.sample ?pool ~model ~seed:(seed + (97 * (idx + 1))) net ~sizes
        ~n:circuit_samples
    in
    let st = Util.Stats.of_array mc in
    {
      circuit_name = Circuit.Netlist.name net;
      analytic_mu = Normal.mu res.Sta.Ssta.circuit;
      analytic_sigma = Normal.sigma res.Sta.Ssta.circuit;
      mc_mu = Util.Stats.mean st;
      mc_sigma = Util.Stats.std_dev st;
    }
  in
  (* F-SHAPE: same circuit, same per-gate moments, different element
     distribution families, injected through the oracle's [draw] hook. *)
  let shape_net = Circuit.Generate.tree () in
  let shape_sizes = Circuit.Netlist.min_sizes shape_net in
  let shape_samples = max 2 (samples / 4) in
  let shapes =
    List.map
      (fun (shape_name, shape) ->
        let draw rng ~mu ~sigma = Sta.Yield.draw_shape rng shape ~mu ~sigma in
        let mc =
          Sta.Mcsta.sample ?pool ~model ~seed:(seed + 1) ~draw shape_net
            ~sizes:shape_sizes ~n:shape_samples
        in
        let st = Util.Stats.of_array mc in
        {
          shape_name;
          shape_mc_mu = Util.Stats.mean st;
          shape_mc_sigma = Util.Stats.std_dev st;
        })
      [
        ("gaussian", Sta.Yield.Gaussian);
        ("uniform", Sta.Yield.Uniform);
        ("shifted exponential", Sta.Yield.Shifted_exponential);
        ("two-point", Sta.Yield.Two_point);
      ]
  in
  {
    grid;
    circuits =
      List.mapi circuit
        [
          Circuit.Generate.tree ();
          Circuit.Generate.chain ~length:30 ();
          Circuit.Generate.apex2_like ();
          Circuit.Generate.apex1_like ();
        ];
    shapes;
    shape_reference = circuit 0 shape_net;
  }

let print r =
  Printf.printf "# analytic max vs Monte Carlo (operands N(0,1) and N(dmu, ratio^2))\n";
  let t =
    Util.Table.create ~header:[ "dmu"; "sigma ratio"; "|mu err|"; "|sigma err|" ]
  in
  for i = 0 to 3 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun g ->
      Util.Table.add_row t
        [
          Printf.sprintf "%.1f" g.dmu;
          Printf.sprintf "%.1f" g.sigma_ratio;
          Printf.sprintf "%.4f" g.mu_err;
          Printf.sprintf "%.4f" g.sigma_err;
        ])
    r.grid;
  Util.Table.print t;
  Printf.printf "\n# circuit-level SSTA vs batched MC oracle (unsized circuits)\n";
  let t2 =
    Util.Table.create
      ~header:[ "circuit"; "SSTA mu"; "SSTA sigma"; "MC mu"; "MC sigma" ]
  in
  for i = 1 to 4 do
    Util.Table.set_align t2 i Util.Table.Right
  done;
  List.iter
    (fun c ->
      Util.Table.add_row t2
        [
          c.circuit_name;
          Printf.sprintf "%.3f" c.analytic_mu;
          Printf.sprintf "%.4f" c.analytic_sigma;
          Printf.sprintf "%.3f" c.mc_mu;
          Printf.sprintf "%.4f" c.mc_sigma;
        ])
    r.circuits;
  Util.Table.print t2;
  Printf.printf
    "\n# F-SHAPE: element-distribution shape (tree, per-gate moments fixed)\n";
  Printf.printf "SSTA (normal model): mu %.3f sigma %.4f\n" r.shape_reference.analytic_mu
    r.shape_reference.analytic_sigma;
  let t3 =
    Util.Table.create ~header:[ "gate-delay shape"; "MC mu"; "MC sigma" ]
  in
  for i = 1 to 2 do
    Util.Table.set_align t3 i Util.Table.Right
  done;
  List.iter
    (fun s ->
      Util.Table.add_row t3
        [
          s.shape_name;
          Printf.sprintf "%.3f" s.shape_mc_mu;
          Printf.sprintf "%.4f" s.shape_mc_sigma;
        ])
    r.shapes;
  Util.Table.print t3;
  Printf.printf
    "(Section 3's claim: only the element moments matter for the circuit-level\n\
     distribution - the families above share moments but differ wildly in shape)\n\n"
