open Sizing

type row = { true_ratio : float; yields : (float * float) list }

type result = {
  nominal_ratio : float;
  deadline : float;
  predicted : (float * float) list;
  rows : row list;
}

let guard_bands = [ 0.; 1.; 3. ]

let run ?net ?(nominal_ratio = 0.25) ?(true_ratios = [ 0.15; 0.25; 0.35; 0.45 ])
    ?(samples = 20_000) ?(seed = 67) () =
  let net = match net with Some n -> n | None -> Circuit.Generate.tree () in
  let nominal = Circuit.Sigma_model.Proportional nominal_ratio in
  let unsized = Engine.solve ~model:nominal net Objective.Min_area in
  let deadline = 0.85 *. unsized.Engine.mu in
  (* Size once per guard band under the nominal model. *)
  let sized =
    List.map
      (fun k ->
        (k, Engine.solve ~model:nominal net (Objective.Min_area_bounded { k; bound = deadline })))
      guard_bands
  in
  let rows =
    List.map
      (fun true_ratio ->
        let truth = Circuit.Sigma_model.Proportional true_ratio in
        let yields =
          List.map
            (fun (k, s) ->
              ( k,
                Sta.Yield.monte_carlo
                  ~rng:(Util.Rng.create seed)
                  ~model:truth net ~sizes:s.Engine.sizes ~deadline ~n:samples ))
            sized
        in
        { true_ratio; yields })
      true_ratios
  in
  {
    nominal_ratio;
    deadline;
    predicted = List.map (fun k -> (k, Util.Special.normal_cdf k)) guard_bands;
    rows;
  }

let print r =
  Printf.printf
    "# EXT-ROBUST: yield under sigma-model error (sized with ratio %.2f, D = %.2f)\n"
    r.nominal_ratio r.deadline;
  let t =
    Util.Table.create
      ~header:
        ("true sigma/mu"
        :: List.map (fun (k, _) -> Printf.sprintf "yield (k=%g)" k) r.predicted)
  in
  for i = 0 to List.length r.predicted do
    Util.Table.set_align t i Util.Table.Right
  done;
  Util.Table.add_row t
    ("predicted"
    :: List.map (fun (_, p) -> Printf.sprintf "%.1f%%" (100. *. p)) r.predicted);
  Util.Table.add_separator t;
  List.iter
    (fun row ->
      Util.Table.add_row t
        (Printf.sprintf "%.2f" row.true_ratio
        :: List.map (fun (_, y) -> Printf.sprintf "%.1f%%" (100. *. y)) row.yields))
    r.rows;
  Util.Table.print t;
  Printf.printf
    "(when the real uncertainty exceeds the calibrated model, the mu-only sizing\n\
     collapses below its 50%% promise while the 3-sigma guard band degrades\n\
     gracefully - the practical case for the statistical objectives)\n\n"
