(** Reproduction of Table 3: per-gate speed factors of the tree circuit at
    the mid-range fixed mean delay, under [min area], [min sigma] and
    [max sigma].

    The paper's observations, checked by the test-suite on this data:
    both [min area] and [min sigma] treat the symmetric gate groups
    ({m \{A,B,D,E\}} and {m \{C,F\}}) identically and give gates nearer
    the output larger speed factors — more extremely so for
    [min sigma] — while [max sigma] deliberately unbalances the paths. *)

type result = {
  net : Circuit.Netlist.t;
  target_mu : float;
  gate_names : string array;
  rows : (string * float array) list;
      (** objective label, speed factor per gate in name order *)
}

val run : ?model:Circuit.Sigma_model.t -> ?target_mu:float -> unit -> result
(** Default target is the Table-2 mid target. *)

val print : result -> unit
