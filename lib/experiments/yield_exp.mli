(** Validation of the conformance claim of Section 4: constraining
    {m \mu \le D} makes 50% of circuits meet [D], {m \mu+\sigma \le D}
    84.1%, and {m \mu+3\sigma \le D} 99.8%.

    For each guard band [k] the circuit is area-minimised under
    {m \mu + k\sigma \le D}; the analytic yield is
    {m \Phi\!\big((D-\mu)/\sigma\big)} of the sized circuit, and the Monte
    Carlo yield re-times thousands of sampled circuits.  When the
    constraint is active the analytic yield is exactly {m \Phi(k)}. *)

type row = {
  k : float;
  solution : Sizing.Engine.solution;
  predicted : float;  (** the paper's claim: {m \Phi(k)} *)
  analytic : float;  (** yield from the sized circuit's distribution *)
  monte_carlo : float;  (** empirical yield over [samples] *)
}

type result = { net : Circuit.Netlist.t; deadline : float; rows : row list }

val run :
  ?model:Circuit.Sigma_model.t ->
  ?net:Circuit.Netlist.t ->
  ?bound_fraction:float ->
  ?samples:int ->
  ?seed:int ->
  unit ->
  result
(** Defaults: the apex2 stand-in, deadline at 85% of the unsized mean
    delay, 20_000 Monte Carlo samples. *)

val print : result -> unit
