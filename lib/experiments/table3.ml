open Sizing

type result = {
  net : Circuit.Netlist.t;
  target_mu : float;
  gate_names : string array;
  rows : (string * float array) list;
}

let run ?(model = Circuit.Sigma_model.paper_default) ?target_mu () =
  let net = Circuit.Generate.tree () in
  let target_mu =
    match target_mu with
    | Some t -> t
    | None -> Table2.mid_target (Table2.run ~model ())
  in
  let solve = Engine.solve ~model net in
  let speed_factors objective =
    let s = solve objective in
    Array.of_list (List.map snd (Report.speed_factors net s))
  in
  let rows =
    [
      ( "min sum S_i",
        speed_factors (Objective.Min_area_bounded { k = 0.; bound = target_mu }) );
      ("min sigma", speed_factors (Objective.Min_sigma { mu = target_mu }));
      ("max sigma", speed_factors (Objective.Max_sigma { mu = target_mu }));
    ]
  in
  let gate_names =
    Array.map
      (fun (g : Circuit.Netlist.gate) -> g.Circuit.Netlist.gate_name)
      (Circuit.Netlist.gates net)
  in
  { net; target_mu; gate_names; rows }

let print r =
  Printf.printf "# tree speed factors at muTmax = %g\n" r.target_mu;
  let header =
    "objective" :: Array.to_list (Array.map (fun n -> "S_" ^ n) r.gate_names)
  in
  let t = Util.Table.create ~header in
  List.iteri (fun i _ -> if i > 0 then Util.Table.set_align t i Util.Table.Right) header;
  List.iter
    (fun (label, sizes) ->
      Util.Table.add_row t
        (label
        :: Array.to_list (Array.map (Util.Table.fmt_float ~decimals:2) sizes)))
    r.rows;
  Util.Table.print t;
  print_newline ()
