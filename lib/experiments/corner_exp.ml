type row = {
  circuit_name : string;
  gates : int;
  depth : int;
  typical : float;
  worst_corner : float;
  statistical : float;
  mc_quantile : float;
  overestimate : float;
}

type result = { k : float; rows : row list }

let run ?(model = Circuit.Sigma_model.paper_default) ?(k = 3.) ?(samples = 20_000)
    ?(seed = 41) () =
  let rng = Util.Rng.create seed in
  let circuits =
    [
      Circuit.Generate.tree ();
      Circuit.Generate.chain ~length:30 ();
      Circuit.Generate.apex2_like ();
      Circuit.Generate.apex1_like ();
    ]
  in
  let rows =
    List.map
      (fun net ->
        let sizes = Circuit.Netlist.min_sizes net in
        let p = Sta.Corner.pessimism ~rng ~k ~samples ~model net ~sizes in
        {
          circuit_name = Circuit.Netlist.name net;
          gates = Circuit.Netlist.n_gates net;
          depth = Circuit.Netlist.depth net;
          typical = p.Sta.Corner.corners.Sta.Corner.typical;
          worst_corner = p.Sta.Corner.corners.Sta.Corner.worst;
          statistical = p.Sta.Corner.statistical;
          mc_quantile = p.Sta.Corner.monte_carlo_quantile;
          overestimate = p.Sta.Corner.overestimate;
        })
      circuits
  in
  { k; rows }

let print r =
  Printf.printf
    "# F-CORNER: worst-case corner vs statistical analysis (guard band k = %g)\n" r.k;
  let t =
    Util.Table.create
      ~header:
        [
          "circuit"; "gates"; "depth"; "typical"; "worst corner"; "mu+3sigma";
          "MC q99.87"; "pessimism";
        ]
  in
  for i = 1 to 7 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          row.circuit_name;
          string_of_int row.gates;
          string_of_int row.depth;
          Printf.sprintf "%.2f" row.typical;
          Printf.sprintf "%.2f" row.worst_corner;
          Printf.sprintf "%.2f" row.statistical;
          Printf.sprintf "%.2f" row.mc_quantile;
          Printf.sprintf "%.0f%%" (100. *. (row.overestimate -. 1.));
        ])
    r.rows;
  Util.Table.print t;
  Printf.printf
    "(the worst corner assumes every gate is simultaneously 3-sigma slow; the\n\
     deeper the circuit, the more the statistics average and the larger the\n\
     corner's overestimate - the paper's Section-1 motivation, quantified)\n\n"
