(** Reproduction of the Section-5 worked example: sizing the four-gate
    circuit of figure 2 for minimal {m \mu + 3\sigma} (equation 18), with
    {m \sigma = 0.25\mu} and speed factors in [1, 3].

    Solved twice — once with the paper's full equation-17/18 NLP
    ({!Sizing.Formulate}) and once with the reduced-space engine — to
    demonstrate the two formulations find the same optimum. *)

type result = {
  net : Circuit.Netlist.t;
  full : Sizing.Engine.solution;  (** the eq.-18 formulation *)
  reduced : Sizing.Engine.solution;
  n_variables : int;  (** variables in the full NLP *)
  n_constraints : int;
  agreement : float;  (** max abs speed-factor difference between the two *)
}

val run : ?model:Circuit.Sigma_model.t -> unit -> result
val print : result -> unit
