(** EXT-NARY: accuracy of the paper's repeated two-operand max (eq. 18b)
    against the exact n-ary moments of {!Statdelay.Nary} — the paper's
    second piece of declared future work, quantified.

    Two operand families are swept over n:
    - "balanced": n similar operands (the hard case — every fold step
      re-approximates a distinctly non-normal intermediate), and
    - "dominated": one operand well above the rest (the easy case). *)

type row = {
  n : int;
  family : string;
  fold_mu_err : float;
  fold_sigma_err : float;
  exact_sigma : float;  (** scale for judging the errors *)
}

type result = { rows : row list }

val run : ?max_n:int -> unit -> result
val print : result -> unit
