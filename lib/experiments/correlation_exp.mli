(** EXT-CORR: correlation-aware SSTA versus the paper's independence
    assumption — the paper's first piece of declared future work,
    implemented and measured.

    For each circuit, compares the circuit-level delay distribution from
    the independent {!Sta.Ssta}, the correlation-propagating
    {!Sta.Cssta}, and ground-truth Monte Carlo.  On reconvergence-free
    circuits all three agree; on reconvergent DAGs the independent
    analysis overestimates the mean and underestimates sigma while the
    correlated analysis tracks Monte Carlo closely. *)

type row = {
  circuit_name : string;
  gates : int;
  ssta : Statdelay.Normal.t;
  cssta : Statdelay.Normal.t;
  mc_mu : float;
  mc_sigma : float;
}

type result = { rows : row list }

val run :
  ?model:Circuit.Sigma_model.t -> ?samples:int -> ?seed:int -> ?big:bool -> unit -> result
(** [big] (default true) includes the 982- and 1692-cell stand-ins. *)

val print : result -> unit
