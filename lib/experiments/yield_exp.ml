open Sizing

type row = {
  k : float;
  solution : Engine.solution;
  predicted : float;
  analytic : float;
  monte_carlo : float;
}

type result = { net : Circuit.Netlist.t; deadline : float; rows : row list }

let run ?(model = Circuit.Sigma_model.paper_default) ?net ?(bound_fraction = 0.85)
    ?(samples = 20_000) ?(seed = 2024) () =
  let net = match net with Some n -> n | None -> Circuit.Generate.apex2_like () in
  let unsized = Engine.solve ~model net Objective.Min_area in
  let deadline = bound_fraction *. unsized.Engine.mu in
  let rows =
    List.map
      (fun k ->
        let solution =
          Engine.solve ~model net (Objective.Min_area_bounded { k; bound = deadline })
        in
        let analytic =
          Sta.Yield.analytic solution.Engine.timing.Sta.Ssta.circuit ~deadline
        in
        let monte_carlo =
          Sta.Yield.monte_carlo
            ~rng:(Util.Rng.create seed)
            ~model net ~sizes:solution.Engine.sizes ~deadline ~n:samples
        in
        { k; solution; predicted = Util.Special.normal_cdf k; analytic; monte_carlo })
      [ 0.; 1.; 3. ]
  in
  { net; deadline; rows }

let print r =
  Printf.printf "# yield vs guard band (circuit %s, deadline D = %.2f)\n"
    (Circuit.Netlist.name r.net) r.deadline;
  let t =
    Util.Table.create
      ~header:
        [ "constraint"; "muTmax"; "sigmaTmax"; "sum S_i"; "predicted"; "analytic"; "MC yield" ]
  in
  for i = 1 to 6 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          Printf.sprintf "%s <= D" (Objective.metric_name row.k);
          Util.Table.fmt_float ~decimals:2 row.solution.Engine.mu;
          Util.Table.fmt_float ~decimals:3 row.solution.Engine.sigma;
          Util.Table.fmt_float ~decimals:0 row.solution.Engine.area;
          Printf.sprintf "%.1f%%" (100. *. row.predicted);
          Printf.sprintf "%.1f%%" (100. *. row.analytic);
          Printf.sprintf "%.1f%%" (100. *. row.monte_carlo);
        ])
    r.rows;
  Util.Table.print t;
  print_newline ()
