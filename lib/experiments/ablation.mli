(** Ablations of the design choices the paper calls out in Section 4.

    - [sigma_sweep]: the sigma model {m \sigma_t = f(\mu_t)} is pluggable;
      sweeping the proportionality ratio shows how delay uncertainty
      magnitude changes what sizing buys.
    - [formulation]: eq. 14 (raw {m 1/S}) versus eq. 15 (multiplied
      through by {m S}, mostly-linear constraint terms) — the paper's
      stated reason for the reformulation is solver efficiency.
    - [baseline]: statistical sizing versus a deterministic TILOS-style
      greedy sizer at the same deadline — what the statistical objective
      buys in yield for comparable area. *)

type sigma_row = {
  ratio : float;
  mu : float;
  sigma : float;
  area : float;
}

type formulation_row = {
  form : string;  (** ["eq15 (linearised)"] or ["eq14 (1/S)"] *)
  inner_iterations : int;
  evaluations : int;
  wall_time : float;
  objective_value : float;  (** final {m \mu + 3\sigma} *)
  converged : bool;
}

type baseline_row = {
  method_name : string;
  area : float;
  worst_case_delay : float;  (** deterministic STA delay *)
  mu : float;
  sigma : float;
  mc_yield : float;  (** fraction of sampled circuits meeting the deadline *)
}

type solver_row = {
  solver_name : string;  (** ["projected L-BFGS"] or ["trust-region Newton-CG"] *)
  s_iterations : int;
  s_evaluations : int;
  s_wall_time : float;
  s_objective : float;  (** final objective value *)
  s_converged : bool;
}

type result = {
  sigma_sweep : sigma_row list;
  formulation : formulation_row list;
  deadline : float;
  baseline : baseline_row list;
  solver : solver_row list;
      (** A-SOLVER: first-order vs second-order inner solver on the same
          sizing problem (LANCELOT is second-order; our default is
          first-order) *)
}

val run : ?samples:int -> ?seed:int -> unit -> result
val print : result -> unit
