open Statdelay

type row = {
  n : int;
  family : string;
  fold_mu_err : float;
  fold_sigma_err : float;
  exact_sigma : float;
}

type result = { rows : row list }

let balanced n =
  List.init n (fun i -> Normal.make ~mu:(1. +. (0.02 *. float_of_int i)) ~sigma:0.25)

let dominated n =
  Normal.make ~mu:2. ~sigma:0.25
  :: List.init (n - 1) (fun i -> Normal.make ~mu:(1. +. (0.02 *. float_of_int i)) ~sigma:0.25)

let run ?(max_n = 16) () =
  let ns = List.filter (fun n -> n <= max_n) [ 2; 3; 4; 6; 8; 12; 16 ] in
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun (family, operands) ->
            let exact = Nary.max_list operands in
            let mu_err, sigma_err = Nary.fold_error operands in
            {
              n;
              family;
              fold_mu_err = mu_err;
              fold_sigma_err = sigma_err;
              exact_sigma = Normal.sigma exact;
            })
          [ ("balanced", balanced n); ("dominated", dominated n) ])
      ns
  in
  { rows }

let print r =
  Printf.printf
    "# EXT-NARY: repeated two-operand fold (paper eq. 18b) vs exact n-ary max\n";
  let t =
    Util.Table.create
      ~header:[ "n"; "family"; "|mu err|"; "|sigma err|"; "exact sigma" ]
  in
  for i = 2 to 4 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          string_of_int row.n;
          row.family;
          Printf.sprintf "%.5f" row.fold_mu_err;
          Printf.sprintf "%.5f" row.fold_sigma_err;
          Printf.sprintf "%.4f" row.exact_sigma;
        ])
    r.rows;
  Util.Table.print t;
  Printf.printf
    "(fold errors grow with n for balanced operands but stay well below sigma;\n\
     the explicit n-ary operator removes them - the paper's future work #2)\n\n"
