open Circuit
open Sizing

type case = { cname : string; net : Netlist.t; bound_fraction : float }

(* The paper's bounds sit at 120/173.7 = 0.69 (apex1), 29/31.5 = 0.92
   (apex2) and 120/184.0 = 0.65 (k2) of the unsized mean delay. *)
let cases ?(small = false) () =
  if small then
    [
      {
        cname = "mini1";
        net = Generate.random_dag { Generate.default_spec with n_gates = 60; seed = 5 };
        bound_fraction = 0.8;
      };
    ]
  else
    [
      { cname = "apex1*"; net = Generate.apex1_like (); bound_fraction = 0.69 };
      { cname = "apex2*"; net = Generate.apex2_like (); bound_fraction = 0.92 };
      { cname = "k2*"; net = Generate.k2_like (); bound_fraction = 0.65 };
    ]

type case_result = {
  case : case;
  bound : float;
  rows : Engine.solution list;
}

let run_case ?(model = Sigma_model.paper_default) ?pool case =
  let net = case.net in
  let unsized = Engine.solve ?pool ~model net Objective.Min_area in
  let bound = case.bound_fraction *. unsized.Engine.mu in
  let objectives =
    [
      Objective.Min_delay 0.;
      Objective.Min_delay 1.;
      Objective.Min_delay 3.;
      Objective.Min_area_bounded { k = 0.; bound };
      Objective.Min_area_bounded { k = 1.; bound };
      Objective.Min_area_bounded { k = 3.; bound };
    ]
  in
  let rows = unsized :: List.map (Engine.solve ?pool ~model net) objectives in
  { case; bound; rows }

let run ?small ?model ?pool () = List.map (run_case ?model ?pool) (cases ?small ())

let print results =
  List.iter
    (fun r ->
      Printf.printf "# %s: %d cells, delay bound D = %.2f\n" r.case.cname
        (Netlist.n_gates r.case.net) r.bound;
      Util.Table.print (Report.table ~name:r.case.cname r.rows);
      print_newline ())
    results
