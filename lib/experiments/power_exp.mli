(** EXT-POWER: the weighted-sum objective of Section 4 instantiated as
    dynamic power.

    Sweeps the delay budget and, at each budget, minimises (a) area (the
    paper's {m \sum S_i}) and (b) dynamic power (weights from
    {!Circuit.Activity}); reports both metrics for both sizings.  The
    power-optimal sizing spends area on low-activity gates to save
    switched capacitance. *)

type row = {
  bound : float;
  area_solution : Sizing.Engine.solution;
  power_solution : Sizing.Engine.solution;
  area_of_area_opt : float;
  power_of_area_opt : float;
  area_of_power_opt : float;
  power_of_power_opt : float;
}

type result = { net : Circuit.Netlist.t; rows : row list }

val run :
  ?model:Circuit.Sigma_model.t ->
  ?net:Circuit.Netlist.t ->
  ?k:float ->
  ?fractions:float list ->
  unit ->
  result
(** Defaults: apex2 stand-in, [k = 3.] guard band, budgets at 90/80/70% of
    the unsized mean delay. *)

val print : result -> unit
