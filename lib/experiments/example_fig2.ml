open Sizing

type result = {
  net : Circuit.Netlist.t;
  full : Engine.solution;
  reduced : Engine.solution;
  n_variables : int;
  n_constraints : int;
  agreement : float;
}

let run ?(model = Circuit.Sigma_model.paper_default) () =
  let net = Circuit.Generate.example_fig2 () in
  let objective = Objective.Min_delay 3. in
  let form = Formulate.build ~model net objective in
  let full = Formulate.solve form in
  let reduced = Engine.solve ~model net objective in
  let agreement =
    Array.fold_left max 0.
      (Array.mapi
         (fun i s -> abs_float (s -. reduced.Engine.sizes.(i)))
         full.Engine.sizes)
  in
  {
    net;
    full;
    reduced;
    n_variables = Formulate.n_variables form;
    n_constraints = Formulate.n_constraints form;
    agreement;
  }

let print r =
  Printf.printf "# Section 5 example (fig. 2): min mu+3sigma, sigma = 0.25 mu\n";
  Printf.printf "full eq.-18 NLP: %d variables, %d equality constraints\n"
    r.n_variables r.n_constraints;
  let t =
    Util.Table.create
      ~header:
        ("formulation" :: "muTmax" :: "sigmaTmax" :: "mu+3sigma" :: "sum S_i"
        :: Array.to_list
             (Array.map
                (fun (g : Circuit.Netlist.gate) -> "S_" ^ g.Circuit.Netlist.gate_name)
                (Circuit.Netlist.gates r.net)))
  in
  let row label (s : Engine.solution) =
    Util.Table.add_row t
      (label
      :: Util.Table.fmt_float ~decimals:3 s.Engine.mu
      :: Util.Table.fmt_float ~decimals:4 s.Engine.sigma
      :: Util.Table.fmt_float ~decimals:3 (s.Engine.mu +. (3. *. s.Engine.sigma))
      :: Util.Table.fmt_float ~decimals:2 s.Engine.area
      :: Array.to_list (Array.map (Util.Table.fmt_float ~decimals:2) s.Engine.sizes))
  in
  row "full (eq. 18)" r.full;
  row "reduced" r.reduced;
  Util.Table.print t;
  Printf.printf "max speed-factor disagreement: %.4f\n\n" r.agreement
