open Statdelay

type row = {
  circuit_name : string;
  gates : int;
  ssta : Normal.t;
  cssta : Normal.t;
  mc_mu : float;
  mc_sigma : float;
}

type result = { rows : row list }

let run ?(model = Circuit.Sigma_model.paper_default) ?(samples = 20_000) ?(seed = 17)
    ?(big = true) () =
  let rng = Util.Rng.create seed in
  let circuits =
    [ Circuit.Generate.tree (); Circuit.Generate.apex2_like () ]
    @ (if big then [ Circuit.Generate.apex1_like (); Circuit.Generate.k2_like () ] else [])
  in
  let rows =
    List.map
      (fun net ->
        let sizes = Circuit.Netlist.min_sizes net in
        let ssta, cssta = Sta.Cssta.compare_to_independent ~model net ~sizes in
        let mc = Sta.Yield.sample_circuit_delays ~rng ~model net ~sizes ~n:samples in
        let st = Util.Stats.of_array mc in
        {
          circuit_name = Circuit.Netlist.name net;
          gates = Circuit.Netlist.n_gates net;
          ssta;
          cssta;
          mc_mu = Util.Stats.mean st;
          mc_sigma = Util.Stats.std_dev st;
        })
      circuits
  in
  { rows }

let print r =
  Printf.printf
    "# EXT-CORR: independence assumption (paper eq. 6) vs correlation-aware SSTA\n";
  let t =
    Util.Table.create
      ~header:
        [
          "circuit"; "gates"; "SSTA mu"; "SSTA sigma"; "CSSTA mu"; "CSSTA sigma";
          "MC mu"; "MC sigma";
        ]
  in
  for i = 1 to 7 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          row.circuit_name;
          string_of_int row.gates;
          Printf.sprintf "%.3f" (Normal.mu row.ssta);
          Printf.sprintf "%.4f" (Normal.sigma row.ssta);
          Printf.sprintf "%.3f" (Normal.mu row.cssta);
          Printf.sprintf "%.4f" (Normal.sigma row.cssta);
          Printf.sprintf "%.3f" row.mc_mu;
          Printf.sprintf "%.4f" row.mc_sigma;
        ])
    r.rows;
  Util.Table.print t;
  Printf.printf
    "(reconvergent fanout correlates path delays: the independent analysis is\n\
     conservative in mu and optimistic in sigma; propagating Clark's\n\
     correlations recovers most of the gap - the paper's future work #1)\n\n"
