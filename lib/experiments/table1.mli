(** Reproduction of Table 1: statistical sizing of the large benchmark
    circuits.

    For each circuit (our apex1/apex2/k2 stand-ins) the paper reports
    seven experiments: the all-minimum sizing (the {m \sum S_i} row, which
    also gives the upper end of the delay range), minimisation of
    {m \mu}, {m \mu + \sigma} and {m \mu + 3\sigma}, and area minimisation
    under {m \mu \le D}, {m \mu + \sigma \le D} and
    {m \mu + 3\sigma \le D}.

    The delay bounds [D] are placed at the same relative position in each
    circuit's feasible delay range as the paper's bounds (120, 29, 120)
    are in its reported ranges, so the area/σ trade-off shape is
    comparable even though absolute delays differ. *)

type case = {
  cname : string;
  net : Circuit.Netlist.t;
  bound_fraction : float;
      (** position of the delay bound within the unsized mean delay *)
}

val cases : ?small:bool -> unit -> case list
(** The three benchmark stand-ins.  [small] (default false) replaces them
    with reduced-size circuits for quick test runs. *)

type case_result = {
  case : case;
  bound : float;
  rows : Sizing.Engine.solution list;  (** the seven experiments in order *)
}

val run_case :
  ?model:Circuit.Sigma_model.t -> ?pool:Util.Pool.t -> case -> case_result

val run :
  ?small:bool ->
  ?model:Circuit.Sigma_model.t ->
  ?pool:Util.Pool.t ->
  unit ->
  case_result list
(** [pool] parallelises the SSTA evaluations inside every solve (these
    are the Table-1-scale circuits the levelized engine targets). *)

val print : case_result list -> unit
(** Renders the paper-format table to stdout. *)
