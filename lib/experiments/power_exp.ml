open Sizing

type row = {
  bound : float;
  area_solution : Engine.solution;
  power_solution : Engine.solution;
  area_of_area_opt : float;
  power_of_area_opt : float;
  area_of_power_opt : float;
  power_of_power_opt : float;
}

type result = { net : Circuit.Netlist.t; rows : row list }

let run ?(model = Circuit.Sigma_model.paper_default) ?net ?(k = 3.)
    ?(fractions = [ 0.9; 0.8; 0.7 ]) () =
  let net = match net with Some n -> n | None -> Circuit.Generate.apex2_like () in
  let weights = Circuit.Activity.power_weights net in
  let unsized = Engine.solve ~model net Objective.Min_area in
  let rows =
    List.map
      (fun f ->
        let bound = f *. unsized.Engine.mu in
        let area_solution =
          Engine.solve ~model net (Objective.Min_area_bounded { k; bound })
        in
        let power_solution =
          Engine.solve ~model net
            (Objective.Min_weighted { label = "power"; weights; k; bound })
        in
        let power_of sizes = Circuit.Activity.dynamic_power net ~sizes in
        {
          bound;
          area_solution;
          power_solution;
          area_of_area_opt = area_solution.Engine.area;
          power_of_area_opt = power_of area_solution.Engine.sizes;
          area_of_power_opt = power_solution.Engine.area;
          power_of_power_opt = power_of power_solution.Engine.sizes;
        })
      fractions
  in
  { net; rows }

let print r =
  Printf.printf
    "# EXT-POWER: weighted objective (Section 4) as dynamic power, circuit %s\n"
    (Circuit.Netlist.name r.net);
  let t =
    Util.Table.create
      ~header:
        [
          "delay bound"; "objective"; "sum S_i"; "switched cap"; "muTmax"; "sigmaTmax";
        ]
  in
  for i = 2 to 5 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          Printf.sprintf "%.2f" row.bound;
          "min area";
          Printf.sprintf "%.1f" row.area_of_area_opt;
          Printf.sprintf "%.3f" row.power_of_area_opt;
          Printf.sprintf "%.2f" row.area_solution.Engine.mu;
          Printf.sprintf "%.3f" row.area_solution.Engine.sigma;
        ];
      Util.Table.add_row t
        [
          "";
          "min power";
          Printf.sprintf "%.1f" row.area_of_power_opt;
          Printf.sprintf "%.3f" row.power_of_power_opt;
          Printf.sprintf "%.2f" row.power_solution.Engine.mu;
          Printf.sprintf "%.3f" row.power_solution.Engine.sigma;
        ])
    r.rows;
  Util.Table.print t;
  print_newline ()
