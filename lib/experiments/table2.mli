(** Reproduction of Table 2 (and the data for Table 3): the seven-NAND
    tree circuit under different objectives and fixed-mean constraints.

    The paper first establishes the feasible range of the mean delay
    ([min area] → slowest, [min mu] → fastest), picks three mean-delay
    targets in that range (one mid, two near the extremes), and for each
    target runs [min area], [min sigma] and [max sigma] at that fixed
    mean.  The observations reproduced here: a fixed mean leaves a margin
    for the standard deviation, the margin is widest mid-range, and
    minimising sigma costs more area than minimising area. *)

type row = { label : string; solution : Sizing.Engine.solution }

type result = {
  net : Circuit.Netlist.t;
  mu_slow : float;  (** mean delay of the all-minimum sizing *)
  mu_fast : float;  (** mean delay of the min-mu sizing *)
  targets : float array;  (** the three fixed-mean targets *)
  rows : row list;
}

val run : ?model:Circuit.Sigma_model.t -> unit -> result
(** Runs the eleven experiments of Table 2 on {!Circuit.Generate.tree}.
    Targets are placed at 20%, 55% and 90% of the feasible range, the
    same relative positions as the paper's 5.8 / 6.5 / 7.2 within
    [5.4, 7.4]. *)

val mid_target : result -> float
(** The middle target (the paper's 6.5) — Table 3 reports the speed
    factors at this value. *)

val print : result -> unit
