open Sizing

type row = { label : string; solution : Engine.solution }

type result = {
  net : Circuit.Netlist.t;
  mu_slow : float;
  mu_fast : float;
  targets : float array;
  rows : row list;
}

(* Paper targets 5.8/6.5/7.2 sit at 20%/55%/90% of the [5.4, 7.4] range. *)
let target_fractions = [| 0.2; 0.55; 0.9 |]

let run ?(model = Circuit.Sigma_model.paper_default) () =
  let net = Circuit.Generate.tree () in
  let solve = Engine.solve ~model net in
  let slowest = solve Objective.Min_area in
  let fastest = solve (Objective.Min_delay 0.) in
  let mu_slow = slowest.Engine.mu and mu_fast = fastest.Engine.mu in
  let targets =
    Array.map
      (fun f -> Float.round ((mu_fast +. (f *. (mu_slow -. mu_fast))) *. 10.) /. 10.)
      target_fractions
  in
  let fixed_mean_rows target =
    [
      {
        label = Printf.sprintf "min area @ mu=%g" target;
        solution = solve (Objective.Min_area_bounded { k = 0.; bound = target });
      };
      {
        label = Printf.sprintf "min sigma @ mu=%g" target;
        solution = solve (Objective.Min_sigma { mu = target });
      };
      {
        label = Printf.sprintf "max sigma @ mu=%g" target;
        solution = solve (Objective.Max_sigma { mu = target });
      };
    ]
  in
  let rows =
    { label = "min area"; solution = slowest }
    :: { label = "min mu"; solution = fastest }
    :: List.concat_map fixed_mean_rows (Array.to_list targets)
  in
  { net; mu_slow; mu_fast; targets; rows }

let mid_target r = r.targets.(1)

let print r =
  Printf.printf "# tree circuit: mean delay range [%.2f, %.2f], targets %s\n"
    r.mu_fast r.mu_slow
    (String.concat ", "
       (List.map (Printf.sprintf "%g") (Array.to_list r.targets)));
  let t = Util.Table.create ~header:[ "objective"; "constraint"; "muTmax"; "sigmaTmax"; "sum S_i" ] in
  for i = 2 to 4 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun { solution; _ } ->
      let minimize, constr = Report.split_objective solution.Engine.objective in
      Util.Table.add_row t
        [
          minimize;
          constr;
          Util.Table.fmt_float ~decimals:2 solution.Engine.mu;
          Util.Table.fmt_float ~decimals:3 solution.Engine.sigma;
          Util.Table.fmt_float ~decimals:2 solution.Engine.area;
        ])
    r.rows;
  Util.Table.print t;
  print_newline ()
