open Circuit
open Sizing

type sigma_row = { ratio : float; mu : float; sigma : float; area : float }

type formulation_row = {
  form : string;
  inner_iterations : int;
  evaluations : int;
  wall_time : float;
  objective_value : float;
  converged : bool;
}

type baseline_row = {
  method_name : string;
  area : float;
  worst_case_delay : float;
  mu : float;
  sigma : float;
  mc_yield : float;
}

type solver_row = {
  solver_name : string;
  s_iterations : int;
  s_evaluations : int;
  s_wall_time : float;
  s_objective : float;
  s_converged : bool;
}

type result = {
  sigma_sweep : sigma_row list;
  formulation : formulation_row list;
  deadline : float;
  baseline : baseline_row list;
  solver : solver_row list;
}

let sigma_sweep net =
  List.map
    (fun ratio ->
      let model = Sigma_model.Proportional ratio in
      let s = Engine.solve ~model net (Objective.Min_delay 3.) in
      { ratio; mu = s.Engine.mu; sigma = s.Engine.sigma; area = s.Engine.area })
    [ 0.05; 0.1; 0.25; 0.4; 0.5 ]

let formulation_ablation () =
  let model = Sigma_model.paper_default in
  let net = Generate.tree () in
  let objective = Objective.Min_delay 3. in
  List.map
    (fun (form, linearized) ->
      let f = Formulate.build ~linearized ~model net objective in
      let s = Formulate.solve f in
      {
        form;
        inner_iterations = s.Engine.iterations;
        evaluations = s.Engine.evaluations;
        wall_time = s.Engine.wall_time;
        objective_value = s.Engine.mu +. (3. *. s.Engine.sigma);
        converged = s.Engine.converged;
      })
    [ ("eq15 (linearised)", true); ("eq14 (1/S)", false) ]

let baseline_comparison ~samples ~seed net deadline =
  let model = Sigma_model.paper_default in
  let yield_of sizes =
    Sta.Yield.monte_carlo ~rng:(Util.Rng.create seed) ~model net ~sizes ~deadline
      ~n:samples
  in
  let stat_row name objective =
    let s = Engine.solve ~model net objective in
    {
      method_name = name;
      area = s.Engine.area;
      worst_case_delay = (Sta.Dsta.analyze net ~sizes:s.Engine.sizes).Sta.Dsta.circuit;
      mu = s.Engine.mu;
      sigma = s.Engine.sigma;
      mc_yield = yield_of s.Engine.sizes;
    }
  in
  let greedy = Baseline.meet_deadline net ~deadline in
  let timing, _ = Engine.evaluate ~model net ~sizes:greedy.Baseline.sizes in
  let greedy_row =
    {
      method_name = "deterministic greedy (TILOS)";
      area = greedy.Baseline.area;
      worst_case_delay = greedy.Baseline.delay;
      mu = Statdelay.Normal.mu timing.Sta.Ssta.circuit;
      sigma = Statdelay.Normal.sigma timing.Sta.Ssta.circuit;
      mc_yield = yield_of greedy.Baseline.sizes;
    }
  in
  [
    greedy_row;
    stat_row "statistical, mu <= D" (Objective.Min_area_bounded { k = 0.; bound = deadline });
    stat_row "statistical, mu+3sigma <= D"
      (Objective.Min_area_bounded { k = 3.; bound = deadline });
  ]

(* A-SOLVER: the same sizing problem solved with the first-order and the
   second-order inner solver. *)
let solver_ablation net deadline =
  let model = Sigma_model.paper_default in
  let objective = Objective.Min_area_bounded { k = 3.; bound = deadline } in
  let run_with solver_name inner_solver =
    let solver = { Nlp.Auglag.default_options with Nlp.Auglag.inner_solver } in
    let s =
      Engine.solve
        ~options:{ Engine.default_options with Engine.solver }
        ~model net objective
    in
    {
      solver_name;
      s_iterations = s.Engine.iterations;
      s_evaluations = s.Engine.evaluations;
      s_wall_time = s.Engine.wall_time;
      s_objective = s.Engine.area;
      s_converged = s.Engine.converged;
    }
  in
  [
    run_with "projected L-BFGS" `Lbfgs;
    run_with "trust-region Newton-CG" (`Newton Nlp.Newton.default_options);
  ]

let run ?(samples = 20_000) ?(seed = 31) () =
  let net = Generate.apex2_like () in
  let model = Sigma_model.paper_default in
  let unsized = Engine.solve ~model net Objective.Min_area in
  let deadline = 0.85 *. unsized.Engine.mu in
  {
    sigma_sweep = sigma_sweep net;
    formulation = formulation_ablation ();
    deadline;
    baseline = baseline_comparison ~samples ~seed net deadline;
    solver = solver_ablation net deadline;
  }

let print r =
  Printf.printf "# A-SIGMA: sigma-model ratio sweep (apex2*, min mu+3sigma)\n";
  let t = Util.Table.create ~header:[ "sigma/mu ratio"; "muTmax"; "sigmaTmax"; "sum S_i" ] in
  for i = 0 to 3 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun s ->
      Util.Table.add_row t
        [
          Printf.sprintf "%.2f" s.ratio;
          Util.Table.fmt_float s.mu;
          Util.Table.fmt_float ~decimals:3 s.sigma;
          Util.Table.fmt_float s.area;
        ])
    r.sigma_sweep;
  Util.Table.print t;
  Printf.printf "\n# A-FORM: eq. 15 vs eq. 14 delay-constraint form (tree, full NLP)\n";
  let t2 =
    Util.Table.create
      ~header:[ "form"; "inner iters"; "evaluations"; "CPU"; "mu+3sigma"; "converged" ]
  in
  List.iter
    (fun f ->
      Util.Table.add_row t2
        [
          f.form;
          string_of_int f.inner_iterations;
          string_of_int f.evaluations;
          Report.cpu_string f.wall_time;
          Util.Table.fmt_float ~decimals:3 f.objective_value;
          string_of_bool f.converged;
        ])
    r.formulation;
  Util.Table.print t2;
  Printf.printf "\n# baseline: deterministic vs statistical at deadline D = %.2f\n"
    r.deadline;
  let t3 =
    Util.Table.create
      ~header:[ "method"; "sum S_i"; "worst-case delay"; "mu"; "sigma"; "MC yield" ]
  in
  for i = 1 to 5 do
    Util.Table.set_align t3 i Util.Table.Right
  done;
  List.iter
    (fun b ->
      Util.Table.add_row t3
        [
          b.method_name;
          Util.Table.fmt_float b.area;
          Util.Table.fmt_float b.worst_case_delay;
          Util.Table.fmt_float b.mu;
          Util.Table.fmt_float ~decimals:3 b.sigma;
          Printf.sprintf "%.1f%%" (100. *. b.mc_yield);
        ])
    r.baseline;
  Util.Table.print t3;
  Printf.printf
    "\n# A-SOLVER: inner solver of the augmented Lagrangian (min area s.t. mu+3sigma <= D)\n";
  let t4 =
    Util.Table.create
      ~header:[ "inner solver"; "iterations"; "evaluations"; "CPU"; "sum S_i"; "converged" ]
  in
  List.iter
    (fun s ->
      Util.Table.add_row t4
        [
          s.solver_name;
          string_of_int s.s_iterations;
          string_of_int s.s_evaluations;
          Report.cpu_string s.s_wall_time;
          Util.Table.fmt_float s.s_objective;
          string_of_bool s.s_converged;
        ])
    r.solver;
  Util.Table.print t4;
  print_newline ()
