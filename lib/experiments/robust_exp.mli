(** EXT-ROBUST: sensitivity of the yield promise to sigma-model error.

    The paper's sigma model {m \sigma_t = f(\mu_t)} must be calibrated;
    what if it is wrong?  This experiment sizes the circuit under the
    nominal model (ratio 0.25) with guard bands k = 0, 1, 3 and then
    measures the Monte Carlo yield when the {e true} gate-delay
    uncertainty has a different ratio.  The bigger the guard band, the
    more model error the sizing tolerates — the practical argument for
    the paper's {m \mu + 3\sigma} objectives. *)

type row = {
  true_ratio : float;
  yields : (float * float) list;  (** (guard band k, MC yield) *)
}

type result = {
  nominal_ratio : float;
  deadline : float;
  predicted : (float * float) list;  (** (k, Phi(k)) under the nominal model *)
  rows : row list;
}

val run :
  ?net:Circuit.Netlist.t ->
  ?nominal_ratio:float ->
  ?true_ratios:float list ->
  ?samples:int ->
  ?seed:int ->
  unit ->
  result

val print : result -> unit
