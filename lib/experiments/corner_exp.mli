(** F-CORNER: pessimism of the traditional worst-case corner.

    The paper's motivating claim (Section 1): best/typical/worst-case
    analysis "is known to give very pessimistic estimates in many cases",
    because the circuit-level uncertainty is much smaller than the
    element-level uncertainty once the statistics of many gates combine.
    For each circuit this experiment compares the worst corner (every gate
    at {m \mu + 3\sigma}) with the statistical {m \mu + 3\sigma_{T_{max}}}
    and the true Monte Carlo 99.87% quantile. *)

type row = {
  circuit_name : string;
  gates : int;
  depth : int;
  typical : float;
  worst_corner : float;
  statistical : float;
  mc_quantile : float;
  overestimate : float;  (** worst corner / MC quantile *)
}

type result = { k : float; rows : row list }

val run :
  ?model:Circuit.Sigma_model.t -> ?k:float -> ?samples:int -> ?seed:int -> unit -> result

val print : result -> unit
