(** F-SCALE: solver scalability over circuit size.

    Table 1's headline is that the statistical sizing NLP is solvable "for
    circuits of up to a few thousand gates" (hours on 1999 hardware).
    This experiment sweeps random mapped DAGs from 100 to 5000 cells and
    reports the wall time and iteration counts of a delay minimisation and
    an area minimisation under a delay bound — demonstrating the paper's
    scale and one notch beyond it. *)

type row = {
  gates : int;
  min_delay_time : float;
  min_delay_iterations : int;
  bounded_time : float;
  bounded_iterations : int;
  speedup : float;  (** unsized mu / sized mu *)
}

type result = { rows : row list }

val run :
  ?model:Circuit.Sigma_model.t ->
  ?sizes_list:int list ->
  ?seed:int ->
  ?pool:Util.Pool.t ->
  unit ->
  result
(** Default sweep: 100, 300, 1000, 3000, 5000 gates.  [pool]
    parallelises the SSTA evaluations inside every solve. *)

val print : result -> unit
