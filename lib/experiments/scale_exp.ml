open Sizing

type row = {
  gates : int;
  min_delay_time : float;
  min_delay_iterations : int;
  bounded_time : float;
  bounded_iterations : int;
  speedup : float;
}

type result = { rows : row list }

let run ?(model = Circuit.Sigma_model.paper_default)
    ?(sizes_list = [ 100; 300; 1000; 3000; 5000 ]) ?(seed = 53) ?pool () =
  let rows =
    List.map
      (fun gates ->
        let spec =
          {
            Circuit.Generate.default_spec with
            Circuit.Generate.n_gates = gates;
            n_pis = max 8 (gates / 20);
            target_depth = max 6 (int_of_float (3. *. sqrt (float_of_int gates)) / 2);
            seed = seed + gates;
          }
        in
        let net = Circuit.Generate.random_dag spec in
        let unsized = Engine.solve ?pool ~model net Objective.Min_area in
        let fast = Engine.solve ?pool ~model net (Objective.Min_delay 3.) in
        let bound = 0.75 *. unsized.Engine.mu in
        let bounded =
          Engine.solve ?pool ~model net (Objective.Min_area_bounded { k = 3.; bound })
        in
        {
          gates;
          min_delay_time = fast.Engine.wall_time;
          min_delay_iterations = fast.Engine.iterations;
          bounded_time = bounded.Engine.wall_time;
          bounded_iterations = bounded.Engine.iterations;
          speedup = unsized.Engine.mu /. fast.Engine.mu;
        })
      sizes_list
  in
  { rows }

let print r =
  Printf.printf "# F-SCALE: solver cost vs circuit size (reduced-space engine)\n";
  let t =
    Util.Table.create
      ~header:
        [
          "gates"; "min mu+3s CPU"; "iters"; "area s.t. delay CPU"; "iters"; "speed-up";
        ]
  in
  for i = 0 to 5 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun row ->
      Util.Table.add_row t
        [
          string_of_int row.gates;
          Report.cpu_string row.min_delay_time;
          string_of_int row.min_delay_iterations;
          Report.cpu_string row.bounded_time;
          string_of_int row.bounded_iterations;
          Printf.sprintf "%.2fx" row.speedup;
        ])
    r.rows;
  Util.Table.print t;
  Printf.printf
    "(the paper reports minutes-to-hours with LANCELOT on 1999 hardware for up\n\
     to 1692 cells; the adjoint-gradient reduced formulation keeps the cost\n\
     near-linear in circuit size)\n\n"
