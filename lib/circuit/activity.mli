(** Signal probabilities and switching activity.

    Section 4 of the paper: "We can choose a weighted sum of sizing
    factors in the objective function.  This can model area, or, if we
    take into account capacitances and switching activity under zero
    delay model in the weights, power."  This module computes those
    weights: signal probabilities propagate through the cells' boolean
    functions under the usual spatial-independence assumption, the
    zero-delay toggle probability of a net is {m 2p(1-p)}, and the power
    weight of a gate is its input capacitance times the activity of the
    nets driving it — so dynamic power is an affine function of the speed
    factors, exactly the linear objective the paper describes.

    Cell functions are recognised by library name ([inv], [buf], [nand*],
    [nor*], [and*], [or*], [xor2], [aoi21], [oai21]); unknown cells fall
    back to an output probability of [0.5]. *)

val signal_probabilities :
  ?pi_probability:(int -> float) -> Netlist.t -> float array
(** [signal_probabilities net] is [P(output = 1)] for each gate, assuming
    spatially independent inputs.  [pi_probability] defaults to
    [fun _ -> 0.5]. *)

val switching_activity :
  ?pi_probability:(int -> float) -> Netlist.t -> float array
(** Zero-delay toggle probability {m 2p(1-p)} of each gate output. *)

val pi_activity : ?pi_probability:(int -> float) -> Netlist.t -> int -> float
(** Toggle probability of a primary input. *)

val power_weights : ?pi_probability:(int -> float) -> Netlist.t -> float array
(** [power_weights net] gives, per gate [c], the coefficient of [S_c] in
    the dynamic-power expression: {m C_{in,c}\sum_{f \in fanin(c)} a_f}
    with [a_f] the activity of the driving net.  Feed this to
    {!Sizing.Objective.Min_weighted}. *)

val dynamic_power : ?pi_probability:(int -> float) -> Netlist.t -> sizes:float array -> float
(** Total switched capacitance per cycle:
    {m \sum_g a_g C_{wire,g} + \sum_c w_c S_c} with [w] from
    {!power_weights} — affine in the speed factors, as Section 4
    requires of the weighted objective. *)
