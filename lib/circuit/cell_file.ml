type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "cell library: line %d: %s" e.line e.message

exception Error of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

let parse_cell line_no tokens =
  match tokens with
  | [] -> assert false
  | name :: fields ->
      if name = "" then fail line_no "missing cell name";
      let n_inputs = ref None in
      let t_int = ref None in
      let drive = ref None in
      let c_in = ref None in
      let max_size = ref None in
      let area = ref None in
      List.iter
        (fun field ->
          match String.index_opt field '=' with
          | None -> fail line_no "malformed field %S (expected key=value)" field
          | Some i ->
              let key = String.sub field 0 i in
              let value = String.sub field (i + 1) (String.length field - i - 1) in
              let float_value () =
                match float_of_string_opt value with
                | Some v -> v
                | None -> fail line_no "field %s: %S is not a number" key value
              in
              (match key with
              | "inputs" -> (
                  match int_of_string_opt value with
                  | Some v when v > 0 -> n_inputs := Some v
                  | _ -> fail line_no "inputs must be a positive integer, got %S" value)
              | "t_int" -> t_int := Some (float_value ())
              | "drive" -> drive := Some (float_value ())
              | "c_in" -> c_in := Some (float_value ())
              | "limit" -> max_size := Some (float_value ())
              | "area" -> area := Some (float_value ())
              | other -> fail line_no "unknown field %s" other))
        fields;
      let n_inputs =
        match !n_inputs with
        | Some n -> n
        | None -> fail line_no "cell %s: missing inputs=" name
      in
      (try
         Cell.make ?t_int:!t_int ?drive:!drive ?c_in:!c_in ?max_size:!max_size
           ?area:!area ~name ~n_inputs ()
       with Invalid_argument m -> fail line_no "cell %s: %s" name m)

let parse_string text =
  match
    let cells = ref [] in
    List.iteri
      (fun i raw ->
        let line_no = i + 1 in
        let line =
          match String.index_opt raw '#' with
          | Some j -> String.sub raw 0 j
          | None -> raw
        in
        match
          String.split_on_char ' ' (String.trim line)
          |> List.filter (fun t -> t <> "")
        with
        | [] -> ()
        | "cell" :: rest when rest <> [] -> cells := parse_cell line_no rest :: !cells
        | "cell" :: [] -> fail line_no "cell directive without a name"
        | other :: _ -> fail line_no "unknown directive %s" other)
      (String.split_on_char '\n' text);
    Cell.Library.of_list (List.rev !cells)
  with
  | lib -> Ok lib
  | exception Error e -> Error e
  | exception Invalid_argument m -> Error { line = 0; message = m }

let parse_file path =
  match open_in path with
  | exception Sys_error m -> Result.Error { line = 0; message = m }
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> parse_string text
      | exception Sys_error m -> Result.Error { line = 0; message = m }
      | exception End_of_file ->
          Result.Error { line = 0; message = path ^ ": truncated read" })

let to_string library =
  let cells =
    List.sort
      (fun (a : Cell.t) b -> compare a.Cell.name b.Cell.name)
      (Cell.Library.cells library)
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# statsize cell library\n";
  List.iter
    (fun (c : Cell.t) ->
      Buffer.add_string buf
        (Printf.sprintf "cell %s inputs=%d t_int=%g drive=%g c_in=%g limit=%g area=%g\n"
           c.Cell.name c.Cell.n_inputs c.Cell.t_int c.Cell.drive c.Cell.c_in
           c.Cell.max_size c.Cell.area))
    cells;
  Buffer.contents buf

let write_file library path =
  let oc = open_out path in
  output_string oc (to_string library);
  close_out oc
