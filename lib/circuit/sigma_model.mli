(** The relation {m \sigma_t = f(t_{cell})} between a gate's mean delay and
    its delay uncertainty (paper eq. 16).

    The paper keeps [f] abstract and uses {m \sigma = 0.25\,\mu} in all
    experiments (eq. 18e).  We make the model pluggable, including the
    derivative {m d\sigma_t^2 / d\mu_t} needed by the sizing gradients. *)

type t =
  | Zero  (** deterministic delays — recovers classical static sizing *)
  | Proportional of float
      (** {m \sigma = k\,\mu}; the paper's choice with [k = 0.25] *)
  | Affine of { base : float; ratio : float }
      (** {m \sigma = base + ratio\cdot\mu}: a size-independent noise floor
          (e.g. wire uncertainty) plus a proportional part *)
  | Constant of float  (** {m \sigma} independent of the mean *)

val paper_default : t
(** [Proportional 0.25]. *)

val sigma : t -> float -> float
(** [sigma model mu_t] is {m f(\mu_t)}; requires [mu_t >= 0.]. *)

val var : t -> float -> float
(** [var model mu_t] is {m f(\mu_t)^2}. *)

val dvar_dmu : t -> float -> float
(** [dvar_dmu model mu_t] is {m d f(\mu_t)^2 / d\mu_t}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
