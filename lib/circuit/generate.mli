(** Benchmark circuit generators.

    The paper evaluates on the MCNC circuits apex1, apex2 and k2 (mapped;
    982, 117 and 1692 cells) plus two hand-made circuits: the four-gate
    example of figure 2 (Section 5) and the seven-NAND balanced tree of
    figure 3 (Section 6).  The MCNC netlists are not distributable here,
    so {!apex1_like}, {!apex2_like} and {!k2_like} generate deterministic
    synthetic mapped DAGs with exactly the published cell counts and
    comparable structure (see DESIGN.md, substitution table); the two
    hand-made circuits are reconstructed exactly. *)

val example_fig2 : ?wire_load:float -> unit -> Netlist.t
(** The Section-5 example: gates [A], [B] (nand2 on PIs), [C] (inverter on
    a PI), all feeding the three-input gate [D]; primary outputs are [C]
    and [D] (paper eq. 18a). *)

val tree :
  ?levels:int ->
  ?cell:Cell.t ->
  ?wire_load:float ->
  ?output_load:float ->
  unit ->
  Netlist.t
(** The figure-3 balanced NAND tree.  [levels = 3] (default) gives the
    paper's seven-gate circuit with gates named [A] … [G] in the paper's
    order (inputs-to-output, left-to-right).  Cell defaults are tuned so
    the unsized / fully-sized mean delays bracket a range comparable to
    Table 2 (about 7.4 down to 5.4 time units). *)

val chain : ?length:int -> ?cell:Cell.t -> ?wire_load:float -> unit -> Netlist.t
(** A [length]-gate inverter chain; the textbook sizing sanity check. *)

type dag_spec = {
  n_gates : int;
  n_pis : int;
  target_depth : int;
  seed : int;
  wire_load : float;
  prev_level_bias : float;
      (** probability that a fanin comes from the immediately preceding
          level (controls how close the realised depth is to
          [target_depth]) *)
}

val default_spec : dag_spec

val random_dag : ?library:Cell.Library.t -> dag_spec -> Netlist.t
(** A deterministic pseudo-random mapped DAG: gates are spread uniformly
    over [target_depth] levels, cells are drawn from [library] with a
    fanin mix typical of mapped combinational logic, and every gate
    without a consumer becomes a primary output. *)

val apex1_like : unit -> Netlist.t
(** 982 cells, 45 PIs — stand-in for MCNC apex1. *)

val apex2_like : unit -> Netlist.t
(** 117 cells, 39 PIs — stand-in for MCNC apex2. *)

val k2_like : unit -> Netlist.t
(** 1692 cells, 46 PIs — stand-in for MCNC k2. *)

val by_name : string -> Netlist.t option
(** Lookup used by the CLI: ["fig2"], ["tree"], ["chain"],
    ["apex1"], ["apex2"], ["k2"]. *)
