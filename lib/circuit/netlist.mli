(** Gate-level netlists (paper Section 2's circuit model).

    A netlist is a DAG of sizable gates over a set of primary inputs.  The
    builder only lets a gate reference nodes that already exist, so every
    netlist is acyclic by construction and the gate array is in
    topological order.

    Each gate output carries a wire capacitance ({m C_{load}}); the paper
    deliberately lumps all wiring at a gate output into a single
    capacitance (Section 2), and so do we. *)

type node = Pi of int | Gate of int

type gate = {
  id : int;
  gate_name : string;
  cell : Cell.t;
  fanin : node array;
  wire_load : float;  (** {m C_{load}}: wire capacitance at this gate's output *)
}

type t

(** {1 Construction} *)

module Builder : sig
  type netlist := t
  type t

  val create : ?name:string -> unit -> t

  val add_pi : t -> string -> node
  (** Declares a primary input; duplicate names raise
      [Invalid_argument]. *)

  val add_gate :
    t -> ?name:string -> ?wire_load:float -> cell:Cell.t -> node list -> node
  (** [add_gate b ~cell fanin] adds a gate.  The fanin count must equal
      [cell.n_inputs]; all fanin nodes must already exist.  [wire_load]
      defaults to [1.0]. *)

  val mark_po : t -> ?name:string -> node -> unit
  (** Declares a primary output (a gate or, degenerately, a PI). *)

  val build : t -> netlist
  (** Finalises.  Raises [Invalid_argument] if no primary output was
      declared or a gate is dangling-input. *)
end

(** {1 Accessors} *)

val name : t -> string
val n_pis : t -> int
val n_gates : t -> int
val n_pos : t -> int
val gate : t -> int -> gate
val gates : t -> gate array
val pi_name : t -> int -> string
val pos : t -> node array
val po_name : t -> int -> string

val fanout : t -> int -> (int * int) list
(** [fanout t g] lists the [(consumer gate id, pin multiplicity)] pairs
    driven by gate [g]. *)

val load : t -> sizes:float array -> int -> float
(** [load t ~sizes g] is the total capacitance gate [g] drives:
    {m C_{load,g} + \sum_{i \in fanout(g)} C_{in,i} S_i}.  [sizes] is
    indexed by gate id. *)

val area : t -> sizes:float array -> float
(** {m \sum_i area_i \cdot S_i}; with unit cell areas this is the paper's
    {m \sum S_i} metric. *)

val min_sizes : t -> float array
(** All-ones vector (every speed factor at its lower bound). *)

val max_sizes : t -> float array
(** Per-gate [cell.max_size] vector. *)

val check_sizes : t -> float array -> unit
(** Validates dimension and bounds; raises [Invalid_argument]. *)

(** {1 Structure} *)

val levels : t -> int array
(** Logic level per gate: [1 + max] over fanin levels, PIs at level 0. *)

val depth : t -> int

val level_buckets : t -> int array array
(** [level_buckets t] partitions the gate ids by logic level:
    [(level_buckets t).(l)] lists, in ascending id order, the gates at
    level [l + 1].  Every fanin of a gate in bucket [l] is a PI or a gate
    in a bucket [< l], so the gates of one bucket are independent — this
    is the schedule the levelized (and parallel) SSTA sweeps follow.
    Computed once per netlist and cached; the concatenation of all
    buckets is a permutation of [0 .. n_gates - 1].

    The cache is filled lazily: when a netlist is shared across domains,
    the first analysis (which happens on one domain before any parallel
    region starts) populates it. *)

(** {1 Flat topology view}

    A compressed-sparse-row encoding of the whole topology in unboxed
    [int array] / [float array] planes, for the structure-of-arrays
    timing engines ({!Sta.Arena}): walking the graph then touches no
    lists, records or closures.  Computed once per netlist and cached
    (same lazy, fill-before-sharing lifecycle as {!level_buckets}).

    The flat view renumbers gates {e level-major}: new ids are assigned
    level by level, ascending old id within each level, so one level's
    gates occupy the contiguous new-id range
    [lvl_off.(l) .. lvl_off.(l+1) - 1] and a levelized sweep walks
    memory in cache-blocked order.  Every column and every encoded gate
    reference below is in new-id space; {!flat.perm} / {!flat.inv_perm}
    translate.  Because the permutation is monotone inside each level,
    ascending (or descending) new-id order within a level coincides
    with ascending (descending) old-id order — which is what keeps the
    permuted sweeps' floating-point operation order, and hence their
    bits, identical to the id-ordered boxed reference. *)

type flat = {
  perm : int array;
      (** old gate id -> new (level-major) id, length [n_gates] *)
  inv_perm : int array;  (** new id -> old gate id *)
  lvl_off : int array;
      (** level segment offsets, length [depth + 1]: the gates of level
          [l + 1] hold new ids [lvl_off.(l) .. lvl_off.(l+1) - 1] *)
  fi_off : int array;
      (** fanin row offsets, length [n_gates + 1], indexed by new id:
          gate [g]'s fanin nodes live at
          [fi_node.(fi_off.(g)) .. fi_node.(fi_off.(g+1) - 1)] *)
  fi_node : int array;
      (** encoded fanin nodes, in [gate.fanin] order: a gate is its new
          id, [Pi i] is [-i - 1] *)
  po_node : int array;  (** encoded primary-output nodes, in {!pos} order *)
  po_base : int;
      (** [fi_off.(n_gates)]: the primary-output segment's base in a
          fold-slot-indexed scratch plane *)
  fold_slots : int;
      (** [po_base + n_pos]: total slots a per-operand scratch plane
          needs (one per fanin edge plus one per primary output) *)
  fo_off : int array;  (** fanout row offsets, length [n_gates + 1], new-id *)
  fo_consumer : int array;  (** consumer new id per fanout entry *)
  fo_mult : float array;  (** pin multiplicity, pre-converted to float *)
  fo_cin : float array;  (** consumer cell input capacitance [C_in] *)
  g_t_int : float array;  (** per-gate cell intrinsic delay, new-id order *)
  g_drive : float array;  (** per-gate cell drive resistance, new-id order *)
  g_wire_load : float array;  (** per-gate output wire capacitance, new-id *)
  g_max_size : float array;  (** per-gate size upper bound, new-id order *)
}
(** Entries of one fanout row appear in {!fanout}-list order (consumer
    ids renamed, order untouched), so a fold over the row accumulates
    in the same floating-point order as {!load}. *)

val flat : t -> flat

(** {1 Streaming construction}

    Loaders that stream a large design can hand the topology over as
    old-id CSR columns instead of going through {!Builder}, skipping
    the boxed record graph entirely: {!of_csr} computes the flat view
    and the level buckets straight from the columns, and only
    reconstructs the per-gate records / fanout adjacency lists (from
    the retained columns, lazily) if a record-level accessor such as
    {!gate} or {!fanout} is later called.  Peak construction memory is
    the columns themselves — a few [int]/[float] words per fanin edge —
    rather than a record and a list cell per gate. *)

val of_csr :
  ?name:string ->
  pi_names:string array ->
  cells:Cell.t array ->
  wire_loads:float array ->
  fi_off:int array ->
  fi_node:int array ->
  pos:node array ->
  po_names:string array ->
  unit ->
  t
(** [of_csr ~pi_names ~cells ~wire_loads ~fi_off ~fi_node ~pos ~po_names ()]
    builds a netlist from old-id CSR columns: gate [g] (ids must be
    topologically ordered — every gate fanin reference strictly below
    [g]) uses cell [cells.(g)], drives wire capacitance
    [wire_loads.(g)], and its encoded fanin nodes (gate [g'] as [g'],
    [Pi i] as [-i - 1]) sit at [fi_node.(fi_off.(g))
    .. fi_node.(fi_off.(g+1) - 1)].  Gate names default to ["g<id>"],
    as with unnamed {!Builder.add_gate}.  The resulting netlist is
    indistinguishable from the equivalent {!Builder} sequence — same
    flat view, same fanout lists, same floating-point sweep results
    bit for bit.  Raises [Invalid_argument] on ragged columns, fanin
    arity/cell mismatches, out-of-range references or an empty
    [pos]. *)

type stats = {
  gates_count : int;
  pi_count : int;
  po_count : int;
  depth : int;
  max_fanout : int;
  avg_fanin : float;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
val pp_summary : Format.formatter -> t -> unit
