(** Gate-level netlists (paper Section 2's circuit model).

    A netlist is a DAG of sizable gates over a set of primary inputs.  The
    builder only lets a gate reference nodes that already exist, so every
    netlist is acyclic by construction and the gate array is in
    topological order.

    Each gate output carries a wire capacitance ({m C_{load}}); the paper
    deliberately lumps all wiring at a gate output into a single
    capacitance (Section 2), and so do we. *)

type node = Pi of int | Gate of int

type gate = {
  id : int;
  gate_name : string;
  cell : Cell.t;
  fanin : node array;
  wire_load : float;  (** {m C_{load}}: wire capacitance at this gate's output *)
}

type t

(** {1 Construction} *)

module Builder : sig
  type netlist := t
  type t

  val create : ?name:string -> unit -> t

  val add_pi : t -> string -> node
  (** Declares a primary input; duplicate names raise
      [Invalid_argument]. *)

  val add_gate :
    t -> ?name:string -> ?wire_load:float -> cell:Cell.t -> node list -> node
  (** [add_gate b ~cell fanin] adds a gate.  The fanin count must equal
      [cell.n_inputs]; all fanin nodes must already exist.  [wire_load]
      defaults to [1.0]. *)

  val mark_po : t -> ?name:string -> node -> unit
  (** Declares a primary output (a gate or, degenerately, a PI). *)

  val build : t -> netlist
  (** Finalises.  Raises [Invalid_argument] if no primary output was
      declared or a gate is dangling-input. *)
end

(** {1 Accessors} *)

val name : t -> string
val n_pis : t -> int
val n_gates : t -> int
val n_pos : t -> int
val gate : t -> int -> gate
val gates : t -> gate array
val pi_name : t -> int -> string
val pos : t -> node array
val po_name : t -> int -> string

val fanout : t -> int -> (int * int) list
(** [fanout t g] lists the [(consumer gate id, pin multiplicity)] pairs
    driven by gate [g]. *)

val load : t -> sizes:float array -> int -> float
(** [load t ~sizes g] is the total capacitance gate [g] drives:
    {m C_{load,g} + \sum_{i \in fanout(g)} C_{in,i} S_i}.  [sizes] is
    indexed by gate id. *)

val area : t -> sizes:float array -> float
(** {m \sum_i area_i \cdot S_i}; with unit cell areas this is the paper's
    {m \sum S_i} metric. *)

val min_sizes : t -> float array
(** All-ones vector (every speed factor at its lower bound). *)

val max_sizes : t -> float array
(** Per-gate [cell.max_size] vector. *)

val check_sizes : t -> float array -> unit
(** Validates dimension and bounds; raises [Invalid_argument]. *)

(** {1 Structure} *)

val levels : t -> int array
(** Logic level per gate: [1 + max] over fanin levels, PIs at level 0. *)

val depth : t -> int

val level_buckets : t -> int array array
(** [level_buckets t] partitions the gate ids by logic level:
    [(level_buckets t).(l)] lists, in ascending id order, the gates at
    level [l + 1].  Every fanin of a gate in bucket [l] is a PI or a gate
    in a bucket [< l], so the gates of one bucket are independent — this
    is the schedule the levelized (and parallel) SSTA sweeps follow.
    Computed once per netlist and cached; the concatenation of all
    buckets is a permutation of [0 .. n_gates - 1].

    The cache is filled lazily: when a netlist is shared across domains,
    the first analysis (which happens on one domain before any parallel
    region starts) populates it. *)

(** {1 Flat topology view}

    A compressed-sparse-row encoding of the whole topology in unboxed
    [int array] / [float array] planes, for the structure-of-arrays
    timing engines ({!Sta.Arena}): walking the graph then touches no
    lists, records or closures.  Computed once per netlist and cached
    (same lazy, fill-before-sharing lifecycle as {!level_buckets}). *)

type flat = {
  fi_off : int array;
      (** fanin row offsets, length [n_gates + 1]: gate [g]'s fanin
          nodes live at [fi_node.(fi_off.(g)) .. fi_node.(fi_off.(g+1) - 1)] *)
  fi_node : int array;
      (** encoded fanin nodes, in [gate.fanin] order: [Gate g] is [g],
          [Pi i] is [-i - 1] *)
  po_node : int array;  (** encoded primary-output nodes, in {!pos} order *)
  po_base : int;
      (** [fi_off.(n_gates)]: the primary-output segment's base in a
          fold-slot-indexed scratch plane *)
  fold_slots : int;
      (** [po_base + n_pos]: total slots a per-operand scratch plane
          needs (one per fanin edge plus one per primary output) *)
  fo_off : int array;  (** fanout row offsets, length [n_gates + 1] *)
  fo_consumer : int array;  (** consumer gate id per fanout entry *)
  fo_mult : float array;  (** pin multiplicity, pre-converted to float *)
  fo_cin : float array;  (** consumer cell input capacitance [C_in] *)
  g_t_int : float array;  (** per-gate cell intrinsic delay *)
  g_drive : float array;  (** per-gate cell drive resistance *)
  g_wire_load : float array;  (** per-gate output wire capacitance *)
  g_max_size : float array;  (** per-gate size upper bound *)
}
(** Entries of one fanout row appear in {!fanout}-list order, so a fold
    over the row accumulates in the same floating-point order as
    {!load}. *)

val flat : t -> flat

type stats = {
  gates_count : int;
  pi_count : int;
  po_count : int;
  depth : int;
  max_fanout : int;
  avg_fanin : float;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
val pp_summary : Format.formatter -> t -> unit
