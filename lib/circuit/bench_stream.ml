(* Streaming .bench reader: same grammar, same elaboration semantics
   as Bench_format, but the circuit is accumulated directly as the
   old-id CSR columns Netlist.of_csr consumes — gate cells, wire
   loads, and the packed fanin column — instead of a Builder record
   graph.  Gates are appended in exactly the order Bench_format's
   Builder would create them (same statement passes, same worklist
   rounds, same decomposition recursion), so the resulting netlist is
   indistinguishable: same ids, same flat view, bit-identical sweeps.
   test/test_arena.ml pins this equivalence.

   What "streaming" buys at scale: peak construction memory is the
   retained statements plus a few words per fanin edge (the columns),
   rather than a gate record, a fanin node list and a fanout list cell
   per gate — the difference between loading a million-gate .bench in
   the columns' ~100 MB and multiplying it through the OCaml heap. *)

open Bench_format

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* Minimal growable array; [push] uses the pushed value as the fill
   element so no dummy is needed. *)
module Vec = struct
  type 'a t = { mutable a : 'a array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let push v x =
    if v.len = Array.length v.a then begin
      let cap = max 8 (2 * Array.length v.a) in
      let na = Array.make cap x in
      Array.blit v.a 0 na 0 v.len;
      v.a <- na
    end;
    v.a.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.a 0 v.len
end

(* CSR accumulator.  Nodes are encoded as Netlist.of_csr expects:
   gate [g] as [g], primary input [i] as [-i - 1]. *)
type csr = {
  pi_names : string Vec.t;
  cells : Cell.t Vec.t;
  wire_loads : float Vec.t;
  fi_off : int Vec.t;  (* n_gates + 1 entries once finalised *)
  fi_node : int Vec.t;
}

let add_pi c name =
  let i = c.pi_names.Vec.len in
  Vec.push c.pi_names name;
  -i - 1

let add_gate c ~wire_load ~cell fanin =
  let g = c.cells.Vec.len in
  Vec.push c.cells cell;
  Vec.push c.wire_loads wire_load;
  List.iter (Vec.push c.fi_node) fanin;
  Vec.push c.fi_off c.fi_node.Vec.len;
  g

let named ~library ~line name =
  match Cell.Library.find library name with
  | Some c -> c
  | None -> fail line "library has no cell %s" name

let sized_cell ~library op arity =
  Cell.Library.find library (Printf.sprintf "%s%d" (String.lowercase_ascii op) arity)

(* Bench_format.instantiate, verbatim semantics, over encoded nodes. *)
let rec instantiate ~c ~library ~wire_load ~line op fanin =
  let arity = List.length fanin in
  let direct cell = add_gate c ~wire_load ~cell fanin in
  let split_reduce reduce_op =
    let k = arity / 2 in
    let left = List.filteri (fun i _ -> i < k) fanin in
    let right = List.filteri (fun i _ -> i >= k) fanin in
    ( instantiate ~c ~library ~wire_load ~line reduce_op left,
      instantiate ~c ~library ~wire_load ~line reduce_op right )
  in
  match (op, arity) with
  | _, 0 -> fail line "%s with no inputs" op
  | ("AND" | "OR"), 1 -> List.hd fanin
  | "NOT", 1 -> direct (named ~library ~line "inv")
  | ("BUFF" | "BUF"), 1 -> direct (named ~library ~line "buf")
  | ("AND" | "OR" | "NAND" | "NOR" | "XOR"), n when n >= 2 -> (
      match sized_cell ~library op n with
      | Some cell -> direct cell
      | None -> (
          match op with
          | "AND" | "OR" ->
              let l, r = split_reduce op in
              add_gate c ~wire_load
                ~cell:(named ~library ~line (String.lowercase_ascii op ^ "2"))
                [ l; r ]
          | "NAND" | "NOR" ->
              let reduce_op = if op = "NAND" then "AND" else "OR" in
              let l, r = split_reduce reduce_op in
              add_gate c ~wire_load
                ~cell:(named ~library ~line (String.lowercase_ascii op ^ "2"))
                [ l; r ]
          | "XOR" ->
              let cell = named ~library ~line "xor2" in
              List.fold_left
                (fun acc x -> add_gate c ~wire_load ~cell [ acc; x ])
                (List.hd fanin) (List.tl fanin)
          | _ -> assert false))
  | _ -> fail line "unsupported operator %s with %d inputs" op arity

(* A pass-3 output in statement order: an OUTPUT directive, or a DFF
   whose data input becomes a pseudo primary output. *)
type out_stmt = Out of string | Dff of assign

(* [next_line ()] yields raw lines until [None].  Statements are
   elaborated with the same three passes as Bench_format.build; pass 1
   runs inline while lines stream by (INPUTs and DFF pseudo-inputs are
   registered in statement order), the rest is deferred. *)
let build_stream ?(wire_load = 1.0) ~library next_line =
  let c =
    {
      pi_names = Vec.create ();
      cells = Vec.create ();
      wire_loads = Vec.create ();
      fi_off = Vec.create ();
      fi_node = Vec.create ();
    }
  in
  Vec.push c.fi_off 0;
  let net_node : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let assigns = Vec.create () in
  let outs = Vec.create () in
  let line_no = ref 0 in
  let rec read () =
    match next_line () with
    | None -> ()
    | Some raw ->
        incr line_no;
        (match parse_line !line_no raw with
        | None -> ()
        | Some (Input name) ->
            if Hashtbl.mem net_node name then
              failwith ("duplicate INPUT " ^ name);
            Hashtbl.replace net_node name (add_pi c name)
        | Some (Output name) -> Vec.push outs (Out name)
        | Some (Assign ({ op = "DFF"; target; _ } as a)) ->
            Hashtbl.replace net_node target (add_pi c (target ^ "_ff"));
            Vec.push outs (Dff a)
        | Some (Assign a) -> Vec.push assigns a);
        read ()
  in
  read ();
  (* Pass 2: combinational assignments in dependency order — the same
     worklist rounds (and therefore the same gate ids) as
     Bench_format.build. *)
  let remaining = ref (Array.to_list (Vec.to_array assigns)) in
  let stuck = ref false in
  while !remaining <> [] && not !stuck do
    let ready, blocked =
      List.partition
        (fun { args; _ } -> List.for_all (Hashtbl.mem net_node) args)
        !remaining
    in
    if ready = [] then stuck := true
    else begin
      List.iter
        (fun { target; op; args } ->
          if Hashtbl.mem net_node target then
            failwith ("net driven twice: " ^ target);
          let fanin = List.map (Hashtbl.find net_node) args in
          let node = instantiate ~c ~library ~wire_load ~line:0 op fanin in
          Hashtbl.replace net_node target node)
        ready;
      remaining := blocked
    end
  done;
  if !stuck then failwith "combinational cycle or undriven net in .bench file";
  (* Pass 3: primary outputs and DFF data inputs, in statement order. *)
  let outputs = ref [] in
  Array.iter
    (function
      | Out name -> outputs := (name, name) :: !outputs
      | Dff { target; args = [ d ]; _ } ->
          outputs := (d, target ^ "_d") :: !outputs
      | Dff _ -> failwith "DFF takes one input")
    (Vec.to_array outs);
  let outputs = List.rev !outputs in
  let pos =
    Array.of_list
      (List.map
         (fun (net, _) ->
           match Hashtbl.find_opt net_node net with
           | Some e -> if e >= 0 then Netlist.Gate e else Netlist.Pi (-e - 1)
           | None -> failwith ("output " ^ net ^ " is not driven"))
         outputs)
  in
  let po_names = Array.of_list (List.map snd outputs) in
  Netlist.of_csr ~name:"bench" ~pi_names:(Vec.to_array c.pi_names)
    ~cells:(Vec.to_array c.cells) ~wire_loads:(Vec.to_array c.wire_loads)
    ~fi_off:(Vec.to_array c.fi_off) ~fi_node:(Vec.to_array c.fi_node) ~pos
    ~po_names ()

let wrap f =
  match f () with
  | netlist -> Ok netlist
  | exception Error e -> Result.Error e
  | exception Failure m -> Result.Error { line = 0; message = m }
  | exception Invalid_argument m -> Result.Error { line = 0; message = m }

let parse_string ?wire_load ~library text =
  let lines = String.split_on_char '\n' text in
  let rest = ref lines in
  let next () =
    match !rest with
    | [] -> None
    | l :: tl ->
        rest := tl;
        Some l
  in
  wrap (fun () -> build_stream ?wire_load ~library next)

let parse_file ?wire_load ~library path =
  match open_in path with
  | exception Sys_error m -> Result.Error { line = 0; message = m }
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let next () = In_channel.input_line ic in
          wrap (fun () -> build_stream ?wire_load ~library next))
