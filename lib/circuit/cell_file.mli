(** Reader/writer for cell libraries in a simple text format.

    One cell per line:

    {v
    # comment
    cell nand2 inputs=2 t_int=0.12 drive=1.0 c_in=0.25 limit=3 area=1
    v}

    Every field except [name] and [inputs] is optional and falls back to
    {!Cell.make}'s defaults.  This lets experiments run against a
    technology description without recompiling (CLI flag
    [--library FILE]). *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (Cell.Library.t, error) result

val parse_file : string -> (Cell.Library.t, error) result
(** Never raises: missing, unreadable or truncated files come back as
    [Error] with [line = 0], like syntax errors do. *)

val to_string : Cell.Library.t -> string
(** Cells sorted by name; [parse_string] of the result reproduces the
    library. *)

val write_file : Cell.Library.t -> string -> unit
