(** Reader for the ISCAS-85/89 [.bench] netlist format.

    The other format the paper's benchmark circuits circulate in:

    {v
    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)
    G22 = NOT(G10)
    v}

    Gate operators are mapped to library cells by name and arity
    ([NAND(a,b)] -> [nand2], [NOT] -> [inv], [BUFF] -> [buf], and so on).
    [DFF]s are cut in the standard way for combinational timing: the
    flip-flop output becomes a pseudo primary input and its data input a
    pseudo primary output, so ISCAS-89 sequential circuits analyse as
    their combinational core. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

exception Error of error

(** {1 Statement-level parsing}

    Exposed for {!Bench_stream}, which re-uses the line grammar but
    builds CSR columns instead of a {!Netlist.Builder} record graph. *)

type assign = { target : string; op : string; args : string list }
(** One [target = OP(arg, ...)] line; [op] is upper-cased. *)

type statement = Input of string | Output of string | Assign of assign

val parse_line : int -> string -> statement option
(** [parse_line line_no raw] parses one raw line ([None] for blank
    lines and comments).  Raises {!Error} on a syntax error. *)

val parse_string :
  ?wire_load:float ->
  library:Cell.Library.t ->
  string ->
  (Netlist.t, error) result

val parse_file :
  ?wire_load:float ->
  library:Cell.Library.t ->
  string ->
  (Netlist.t, error) result
(** Never raises: missing, unreadable or truncated files come back as
    [Error] with [line = 0], like syntax errors do. *)
