(** Sizable cell model (paper Section 4, after Berkelaar & Jess 1990).

    The propagation delay of a gate with speed factor {m S_{cell}} is

    {math t_{cell} = t_{int} + c\,\frac{C_{load} + \sum_i C_{in,i} S_i}{S_{cell}}}

    where [t_int] is the sizing-invariant internal delay, [c] converts
    capacitance to delay, {m C_{load}} is the (wire) capacitance at the
    gate output, and {m C_{in,i} S_i} are the input capacitances of the
    fanout gates, which grow with their speed factors.  The speed factor
    ranges over {m 1 \le S \le limit}; area and power scale linearly with
    [S]. *)

type t = {
  name : string;  (** library cell name, e.g. ["nand2"] *)
  n_inputs : int;  (** number of input pins *)
  t_int : float;  (** internal delay, unchanged by sizing *)
  drive : float;  (** the constant [c]: delay per unit of load at [S = 1] *)
  c_in : float;  (** input-pin capacitance at [S = 1] *)
  max_size : float;  (** the paper's [limit]; maximum speed-up factor *)
  area : float;  (** area per unit speed factor *)
}

val make :
  ?t_int:float ->
  ?drive:float ->
  ?c_in:float ->
  ?max_size:float ->
  ?area:float ->
  name:string ->
  n_inputs:int ->
  unit ->
  t
(** Constructor with validation: all parameters must be positive and
    [max_size >= 1.].  Defaults give a generic gate
    ([t_int = 0.1], [drive = 1.], [c_in = 0.2], [max_size = 3.],
    [area = 1.]). *)

val delay : t -> size:float -> load:float -> float
(** [delay cell ~size ~load] is {m t_{int} + c \cdot load / S}, where
    [load] already includes the size-dependent fanout capacitance. *)

val input_cap : t -> size:float -> float
(** [input_cap cell ~size] is {m C_{in} \cdot S}. *)

val nand : int -> t
(** [nand k] is the default k-input NAND used by the tree benchmark. *)

val pp : Format.formatter -> t -> unit

(** {1 Cell libraries} *)

module Library : sig
  type cell = t

  type t
  (** A named collection of cells, looked up by the BLIF reader and by the
      generators. *)

  val of_list : cell list -> t
  val find : t -> string -> cell option
  val find_exn : t -> string -> cell
  val cells : t -> cell list

  val best_fit : t -> n_inputs:int -> cell
  (** The library cell with the matching input count (smallest
      sufficient). *)

  val default : unit -> t
  (** A small technology-like library: inv, nand2..4, nor2..3, and2, or2,
      xor2, buf, aoi21, oai21 — enough variety to map the synthetic
      benchmark circuits. *)
end
