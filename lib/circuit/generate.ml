open Util

(* Paper figure 2: gates A, B (2-input on PIs), C (1-input on a PI), all
   three feeding the 3-input gate D; POs are C and D. *)
let example_fig2 ?(wire_load = 1.0) () =
  let b = Netlist.Builder.create ~name:"fig2" () in
  let a = Netlist.Builder.add_pi b "a" in
  let bb = Netlist.Builder.add_pi b "b" in
  let c = Netlist.Builder.add_pi b "c" in
  let nand2 = Cell.nand 2 in
  let inv = Cell.make ~name:"inv" ~n_inputs:1 ~t_int:0.06 ~c_in:0.18 () in
  let nand3 = Cell.nand 3 in
  let ga = Netlist.Builder.add_gate b ~name:"A" ~wire_load ~cell:nand2 [ a; bb ] in
  let gb = Netlist.Builder.add_gate b ~name:"B" ~wire_load ~cell:nand2 [ bb; c ] in
  let gc = Netlist.Builder.add_gate b ~name:"C" ~wire_load ~cell:inv [ c ] in
  let gd =
    Netlist.Builder.add_gate b ~name:"D" ~wire_load ~cell:nand3 [ ga; gb; gc ]
  in
  Netlist.Builder.mark_po b ~name:"out_c" gc;
  Netlist.Builder.mark_po b ~name:"out_d" gd;
  Netlist.Builder.build b

(* Figure 3: balanced NAND tree.  The default cell parameters are tuned so
   that the unsized / fully-sized mean delay range is comparable to the
   paper's [7.4, 5.4] (Table 2). *)
let tree_default_cell =
  Cell.make ~name:"nand2t" ~n_inputs:2 ~t_int:0.87 ~drive:1.0 ~c_in:0.5 ~max_size:3.
    ~area:1. ()

let tree ?(levels = 3) ?cell ?(wire_load = 0.93) ?(output_load = 1.5) () =
  if levels < 1 then invalid_arg "Generate.tree: levels must be >= 1";
  let cell = match cell with Some c -> c | None -> tree_default_cell in
  if cell.Cell.n_inputs <> 2 then invalid_arg "Generate.tree: cell must be 2-input";
  let b = Netlist.Builder.create ~name:"tree" () in
  let gate_counter = ref 0 in
  let pi_counter = ref 0 in
  let next_gate_name () =
    let i = !gate_counter in
    incr gate_counter;
    if i < 26 then String.make 1 (Char.chr (Char.code 'A' + i))
    else Printf.sprintf "G%d" i
  in
  let next_pi () =
    let i = !pi_counter in
    incr pi_counter;
    Netlist.Builder.add_pi b (Printf.sprintf "i%d" i)
  in
  (* Post-order construction so that for levels = 3 the names A..G match
     the paper's figure: A,B feed C; D,E feed F; C,F feed G. *)
  let rec subtree depth =
    let fanin =
      if depth = 1 then [ next_pi (); next_pi () ]
      else [ subtree (depth - 1); subtree (depth - 1) ]
    in
    let is_root = depth = levels in
    let name = next_gate_name () in
    Netlist.Builder.add_gate b ~name
      ~wire_load:(if is_root then output_load else wire_load)
      ~cell fanin
  in
  let root = subtree levels in
  Netlist.Builder.mark_po b ~name:"out" root;
  Netlist.Builder.build b

let chain ?(length = 10) ?cell ?(wire_load = 0.5) () =
  if length < 1 then invalid_arg "Generate.chain: length must be >= 1";
  let cell =
    match cell with
    | Some c -> c
    | None -> Cell.make ~name:"inv" ~n_inputs:1 ~t_int:0.06 ~c_in:0.18 ()
  in
  if cell.Cell.n_inputs <> 1 then invalid_arg "Generate.chain: cell must be 1-input";
  let b = Netlist.Builder.create ~name:"chain" () in
  let pi = Netlist.Builder.add_pi b "in" in
  let rec extend node k =
    if k = 0 then node
    else
      let g =
        Netlist.Builder.add_gate b
          ~name:(Printf.sprintf "inv%d" (length - k))
          ~wire_load ~cell [ node ]
      in
      extend g (k - 1)
  in
  let last = extend pi length in
  Netlist.Builder.mark_po b ~name:"out" last;
  Netlist.Builder.build b

type dag_spec = {
  n_gates : int;
  n_pis : int;
  target_depth : int;
  seed : int;
  wire_load : float;
  prev_level_bias : float;
}

let default_spec =
  {
    n_gates = 200;
    n_pis = 20;
    target_depth = 12;
    seed = 1;
    wire_load = 1.0;
    prev_level_bias = 0.75;
  }

(* Fanin-count mix typical of a mapped combinational netlist. *)
let pick_fanin_count rng =
  let r = Rng.float rng in
  if r < 0.15 then 1 else if r < 0.70 then 2 else if r < 0.92 then 3 else 4

let random_dag ?library spec =
  if spec.n_gates < 1 then invalid_arg "Generate.random_dag: n_gates must be >= 1";
  if spec.n_pis < 1 then invalid_arg "Generate.random_dag: n_pis must be >= 1";
  if spec.target_depth < 1 || spec.target_depth > spec.n_gates then
    invalid_arg "Generate.random_dag: bad target_depth";
  let library = match library with Some l -> l | None -> Cell.Library.default () in
  let rng = Rng.create spec.seed in
  let b =
    Netlist.Builder.create ~name:(Printf.sprintf "dag%d_%d" spec.n_gates spec.seed) ()
  in
  let pis = Array.init spec.n_pis (fun i -> Netlist.Builder.add_pi b (Printf.sprintf "i%d" i)) in
  let depth = spec.target_depth in
  (* Spread gates over levels 1..depth as evenly as possible. *)
  let per_level = Array.make (depth + 1) 0 in
  for i = 0 to spec.n_gates - 1 do
    let l = 1 + (i * depth / spec.n_gates) in
    per_level.(l) <- per_level.(l) + 1
  done;
  let level_gates : Netlist.node list array = Array.make (depth + 1) [] in
  let older : Netlist.node array ref = ref pis in
  let consumed = Hashtbl.create spec.n_gates in
  let pick_from arr = arr.(Rng.int rng (Array.length arr)) in
  (* Spatially local pick: gate j of a level draws mostly from sources near
     the corresponding position of the previous level.  This keeps fan-in
     cones mostly disjoint, like placed-and-mapped logic, instead of every
     gate sharing the whole previous level (which would create far more
     path reconvergence — and correlation — than real circuits have). *)
  let pick_local arr ~j ~of_level =
    let len = Array.length arr in
    let anchor = j * len / max 1 of_level in
    let window = max 2 (len / 8) in
    let i = anchor + Rng.int rng (2 * window) - window in
    arr.(((i mod len) + len) mod len)
  in
  for l = 1 to depth do
    let prev =
      if l = 1 then pis else Array.of_list level_gates.(l - 1)
    in
    let fresh = ref [] in
    for j = 0 to per_level.(l) - 1 do
      let k = pick_fanin_count rng in
      let cell = Cell.Library.best_fit library ~n_inputs:k in
      let k = cell.Cell.n_inputs in
      let fanin =
        List.init k (fun pin ->
            (* The first pin of the first gate in each level is forced to
               the previous level so the realised depth equals the target. *)
            if (j = 0 && pin = 0) || Rng.float rng < spec.prev_level_bias then
              pick_local prev ~j ~of_level:per_level.(l)
            else pick_from !older)
      in
      List.iter
        (function Netlist.Gate g -> Hashtbl.replace consumed g () | Netlist.Pi _ -> ())
        fanin;
      let g = Netlist.Builder.add_gate b ~wire_load:spec.wire_load ~cell fanin in
      fresh := g :: !fresh
    done;
    level_gates.(l) <- List.rev !fresh;
    older := Array.append !older (Array.of_list level_gates.(l))
  done;
  (* Every gate nobody consumes is a primary output. *)
  Array.iter
    (function
      | Netlist.Gate g when not (Hashtbl.mem consumed g) ->
          Netlist.Builder.mark_po b (Netlist.Gate g)
      | Netlist.Gate _ | Netlist.Pi _ -> ())
    !older;
  Netlist.Builder.build b

let apex1_like () =
  random_dag { default_spec with n_gates = 982; n_pis = 45; target_depth = 24; seed = 42 }

let apex2_like () =
  random_dag { default_spec with n_gates = 117; n_pis = 39; target_depth = 12; seed = 43 }

let k2_like () =
  random_dag { default_spec with n_gates = 1692; n_pis = 46; target_depth = 28; seed = 44 }

let by_name = function
  | "fig2" -> Some (example_fig2 ())
  | "tree" -> Some (tree ())
  | "chain" -> Some (chain ())
  | "apex1" -> Some (apex1_like ())
  | "apex2" -> Some (apex2_like ())
  | "k2" -> Some (k2_like ())
  | _ -> None
