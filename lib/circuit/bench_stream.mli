(** Streaming [.bench] reader for large circuits.

    Same grammar and elaboration semantics as {!Bench_format} — same
    three statement passes, same worklist rounds, same wide-operator
    decomposition — but the circuit is accumulated directly as the
    old-id CSR columns {!Netlist.of_csr} consumes, never materialising
    the {!Netlist.Builder} record graph.  The result is
    indistinguishable from {!Bench_format.parse_file}: same gate ids
    and names, same flat view, bit-identical sweep results
    ([test/test_arena.ml] pins the equivalence on every bundled
    circuit).

    Memory contract: peak construction footprint is the retained
    statement text plus a few machine words per fanin edge (the CSR
    columns themselves, which the netlist then owns), instead of a
    gate record, a fanin node list and fanout list cells per gate.
    Use this loader for 10{^5}-gate-and-up files; prefer
    {!Bench_format} only when its richer per-line error positions
    matter more than footprint. *)

val parse_string :
  ?wire_load:float ->
  library:Cell.Library.t ->
  string ->
  (Netlist.t, Bench_format.error) result
(** Parses a whole [.bench] text held in memory.  Mostly for tests —
    the point of this module is {!parse_file}, which never holds the
    file contents at once. *)

val parse_file :
  ?wire_load:float ->
  library:Cell.Library.t ->
  string ->
  (Netlist.t, Bench_format.error) result
(** Reads the file line by line ([Error] with [line = 0] for missing
    or unreadable files, like {!Bench_format.parse_file}). *)
