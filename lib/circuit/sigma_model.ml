type t =
  | Zero
  | Proportional of float
  | Affine of { base : float; ratio : float }
  | Constant of float

let paper_default = Proportional 0.25

(* [@inline]: called once per gate per timing evaluation from the flat
   sweeps (Sta.Arena); without inlining the classic-mode call boundary
   boxes the float argument and result. *)
let[@inline] sigma t mu =
  match t with
  | Zero -> 0.
  | Proportional k -> k *. mu
  | Affine { base; ratio } -> base +. (ratio *. mu)
  | Constant s -> s

let[@inline] var t mu =
  let s = sigma t mu in
  s *. s

let[@inline] dvar_dmu t mu =
  match t with
  | Zero -> 0.
  | Proportional k -> 2. *. k *. k *. mu
  | Affine { base; ratio } -> 2. *. ratio *. (base +. (ratio *. mu))
  | Constant _ -> 0.

let pp ppf = function
  | Zero -> Format.pp_print_string ppf "sigma=0"
  | Proportional k -> Format.fprintf ppf "sigma=%g*mu" k
  | Affine { base; ratio } -> Format.fprintf ppf "sigma=%g+%g*mu" base ratio
  | Constant s -> Format.fprintf ppf "sigma=%g" s

let to_string t = Format.asprintf "%a" pp t
