type t = {
  name : string;
  n_inputs : int;
  t_int : float;
  drive : float;
  c_in : float;
  max_size : float;
  area : float;
}

let make ?(t_int = 0.1) ?(drive = 1.) ?(c_in = 0.2) ?(max_size = 3.) ?(area = 1.)
    ~name ~n_inputs () =
  if n_inputs <= 0 then invalid_arg "Cell.make: n_inputs must be positive";
  if t_int < 0. || drive <= 0. || c_in < 0. || area <= 0. then
    invalid_arg "Cell.make: parameters must be positive";
  if max_size < 1. then invalid_arg "Cell.make: max_size must be >= 1";
  { name; n_inputs; t_int; drive; c_in; max_size; area }

let delay cell ~size ~load =
  if size < 1. then invalid_arg "Cell.delay: size below 1";
  cell.t_int +. (cell.drive *. load /. size)

let input_cap cell ~size = cell.c_in *. size

let nand k =
  make ~name:(Printf.sprintf "nand%d" k) ~n_inputs:k
    ~t_int:(0.1 +. (0.02 *. float_of_int (k - 1)))
    ~c_in:(0.2 +. (0.05 *. float_of_int (k - 1)))
    ()

let pp ppf c =
  Format.fprintf ppf "%s(in=%d t_int=%g c=%g C_in=%g limit=%g)" c.name c.n_inputs
    c.t_int c.drive c.c_in c.max_size

module Library = struct
  type cell = t
  type nonrec t = (string, cell) Hashtbl.t

  let of_list cells =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (c : cell) ->
        if Hashtbl.mem tbl c.name then
          invalid_arg ("Cell.Library.of_list: duplicate cell " ^ c.name);
        Hashtbl.add tbl c.name c)
      cells;
    tbl

  let find t name = Hashtbl.find_opt t name
  let find_exn t name =
    match find t name with
    | Some c -> c
    | None -> invalid_arg ("Cell.Library.find_exn: unknown cell " ^ name)

  let cells t = Hashtbl.fold (fun _ c acc -> c :: acc) t []

  let best_fit t ~n_inputs =
    let candidates =
      List.filter (fun (c : cell) -> c.n_inputs >= n_inputs) (cells t)
    in
    match
      List.sort (fun (a : cell) b -> compare a.n_inputs b.n_inputs) candidates
    with
    | c :: _ -> c
    | [] -> invalid_arg "Cell.Library.best_fit: no cell with enough inputs"

  let default () =
    of_list
      [
        make ~name:"buf" ~n_inputs:1 ~t_int:0.08 ~c_in:0.15 ();
        make ~name:"inv" ~n_inputs:1 ~t_int:0.06 ~c_in:0.18 ();
        nand 2;
        nand 3;
        nand 4;
        make ~name:"nor2" ~n_inputs:2 ~t_int:0.12 ~c_in:0.22 ();
        make ~name:"nor3" ~n_inputs:3 ~t_int:0.15 ~c_in:0.26 ();
        make ~name:"and2" ~n_inputs:2 ~t_int:0.14 ~c_in:0.2 ();
        make ~name:"or2" ~n_inputs:2 ~t_int:0.15 ~c_in:0.21 ();
        make ~name:"xor2" ~n_inputs:2 ~t_int:0.18 ~c_in:0.3 ();
        make ~name:"aoi21" ~n_inputs:3 ~t_int:0.16 ~c_in:0.24 ();
        make ~name:"oai21" ~n_inputs:3 ~t_int:0.16 ~c_in:0.24 ();
      ]
end
