type node = Pi of int | Gate of int

type gate = {
  id : int;
  gate_name : string;
  cell : Cell.t;
  fanin : node array;
  wire_load : float;
}

type t = {
  name : string;
  pis : string array;
  gates : gate array;
  pos : node array;
  po_names : string array;
  fanout : (int * int) list array;
  mutable bucket_cache : int array array option;
      (* per-level gate-id buckets, computed once per netlist on first
         use (the topology never changes after [Builder.build]) *)
}

module Builder = struct
  type netlist = t

  type t = {
    mutable bname : string;
    mutable rev_pis : string list;
    mutable n_pi : int;
    pi_seen : (string, unit) Hashtbl.t;
    mutable rev_gates : gate list;
    mutable n_gate : int;
    mutable rev_pos : (node * string) list;
  }

  let create ?(name = "circuit") () =
    {
      bname = name;
      rev_pis = [];
      n_pi = 0;
      pi_seen = Hashtbl.create 16;
      rev_gates = [];
      n_gate = 0;
      rev_pos = [];
    }

  let add_pi b name =
    if Hashtbl.mem b.pi_seen name then
      invalid_arg ("Netlist.Builder.add_pi: duplicate input " ^ name);
    Hashtbl.add b.pi_seen name ();
    let id = b.n_pi in
    b.rev_pis <- name :: b.rev_pis;
    b.n_pi <- id + 1;
    Pi id

  let node_exists b = function
    | Pi i -> i >= 0 && i < b.n_pi
    | Gate i -> i >= 0 && i < b.n_gate

  let add_gate b ?name ?(wire_load = 1.0) ~cell fanin =
    let fanin = Array.of_list fanin in
    if Array.length fanin <> cell.Cell.n_inputs then
      invalid_arg
        (Printf.sprintf "Netlist.Builder.add_gate: cell %s expects %d inputs, got %d"
           cell.Cell.name cell.Cell.n_inputs (Array.length fanin));
    Array.iter
      (fun n ->
        if not (node_exists b n) then
          invalid_arg "Netlist.Builder.add_gate: fanin node does not exist")
      fanin;
    if wire_load < 0. then invalid_arg "Netlist.Builder.add_gate: negative wire load";
    let id = b.n_gate in
    let gate_name =
      match name with Some n -> n | None -> Printf.sprintf "g%d" id
    in
    b.rev_gates <- { id; gate_name; cell; fanin; wire_load } :: b.rev_gates;
    b.n_gate <- id + 1;
    Gate id

  let mark_po b ?name node =
    if not (node_exists b node) then
      invalid_arg "Netlist.Builder.mark_po: node does not exist";
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "po%d" (List.length b.rev_pos)
    in
    b.rev_pos <- (node, name) :: b.rev_pos

  let build b : netlist =
    if b.rev_pos = [] then invalid_arg "Netlist.Builder.build: no primary output";
    let gates = Array.of_list (List.rev b.rev_gates) in
    let pos_pairs = List.rev b.rev_pos in
    let fanout = Array.make (Array.length gates) [] in
    Array.iter
      (fun g ->
        let seen = Hashtbl.create 4 in
        Array.iter
          (function
            | Pi _ -> ()
            | Gate src ->
                let m = try Hashtbl.find seen src with Not_found -> 0 in
                Hashtbl.replace seen src (m + 1))
          g.fanin;
        Hashtbl.iter (fun src m -> fanout.(src) <- (g.id, m) :: fanout.(src)) seen)
      gates;
    {
      name = b.bname;
      pis = Array.of_list (List.rev b.rev_pis);
      gates;
      pos = Array.of_list (List.map fst pos_pairs);
      po_names = Array.of_list (List.map snd pos_pairs);
      fanout;
      bucket_cache = None;
    }
end

let name t = t.name
let n_pis t = Array.length t.pis
let n_gates t = Array.length t.gates
let n_pos t = Array.length t.pos
let gate t i = t.gates.(i)
let gates t = t.gates
let pi_name t i = t.pis.(i)
let pos t = t.pos
let po_name t i = t.po_names.(i)
let fanout t i = t.fanout.(i)

let load t ~sizes g =
  let gate = t.gates.(g) in
  List.fold_left
    (fun acc (consumer, mult) ->
      let c = t.gates.(consumer) in
      acc +. (float_of_int mult *. Cell.input_cap c.cell ~size:sizes.(consumer)))
    gate.wire_load t.fanout.(g)

let area t ~sizes =
  let acc = ref 0. in
  Array.iter (fun g -> acc := !acc +. (g.cell.Cell.area *. sizes.(g.id))) t.gates;
  !acc

let min_sizes t = Array.make (n_gates t) 1.

let max_sizes t = Array.map (fun g -> g.cell.Cell.max_size) t.gates

let check_sizes t sizes =
  if Array.length sizes <> n_gates t then
    invalid_arg "Netlist.check_sizes: dimension mismatch";
  Array.iter
    (fun g ->
      let s = sizes.(g.id) in
      if s < 1. -. 1e-9 || s > g.cell.Cell.max_size +. 1e-9 then
        invalid_arg
          (Printf.sprintf "Netlist.check_sizes: size %g of gate %s outside [1, %g]" s
             g.gate_name g.cell.Cell.max_size))
    t.gates

let levels t =
  let lvl = Array.make (n_gates t) 0 in
  Array.iter
    (fun g ->
      let m =
        Array.fold_left
          (fun acc -> function Pi _ -> acc | Gate i -> max acc lvl.(i))
          0 g.fanin
      in
      lvl.(g.id) <- m + 1)
    t.gates;
  lvl

let depth t = if n_gates t = 0 then 0 else Array.fold_left max 0 (levels t)

let compute_buckets t =
  let lvl = levels t in
  let d = Array.fold_left max 0 lvl in
  let counts = Array.make d 0 in
  Array.iter (fun l -> counts.(l - 1) <- counts.(l - 1) + 1) lvl;
  let buckets = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make d 0 in
  (* ascending-id iteration keeps every bucket sorted by gate id *)
  Array.iteri
    (fun id l ->
      buckets.(l - 1).(fill.(l - 1)) <- id;
      fill.(l - 1) <- fill.(l - 1) + 1)
    lvl;
  buckets

let level_buckets t =
  match t.bucket_cache with
  | Some b -> b
  | None ->
      let b = compute_buckets t in
      t.bucket_cache <- Some b;
      b

type stats = {
  gates_count : int;
  pi_count : int;
  po_count : int;
  depth : int;
  max_fanout : int;
  avg_fanin : float;
}

let stats t =
  let max_fanout =
    Array.fold_left
      (fun acc l -> max acc (List.fold_left (fun a (_, m) -> a + m) 0 l))
      0 t.fanout
  in
  let total_fanin =
    Array.fold_left (fun acc g -> acc + Array.length g.fanin) 0 t.gates
  in
  {
    gates_count = n_gates t;
    pi_count = n_pis t;
    po_count = n_pos t;
    depth = depth t;
    max_fanout;
    avg_fanin =
      (if n_gates t = 0 then 0.
       else float_of_int total_fanin /. float_of_int (n_gates t));
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "gates=%d pis=%d pos=%d depth=%d max_fanout=%d avg_fanin=%.2f" s.gates_count
    s.pi_count s.po_count s.depth s.max_fanout s.avg_fanin

let pp_summary ppf t = Format.fprintf ppf "%s: %a" t.name pp_stats (stats t)
