type node = Pi of int | Gate of int

type gate = {
  id : int;
  gate_name : string;
  cell : Cell.t;
  fanin : node array;
  wire_load : float;
}

type flat = {
  perm : int array;
  inv_perm : int array;
  lvl_off : int array;
  fi_off : int array;
  fi_node : int array;
  po_node : int array;
  po_base : int;
  fold_slots : int;
  fo_off : int array;
  fo_consumer : int array;
  fo_mult : float array;
  fo_cin : float array;
  g_t_int : float array;
  g_drive : float array;
  g_wire_load : float array;
  g_max_size : float array;
}

type t = {
  name : string;
  pis : string array;
  n_g : int;
  gates_l : gate array Lazy.t;
      (* record view of the gates; lazy so a CSR-loaded netlist
         ([of_csr]) only materialises the boxed graph when a
         record-level accessor is actually used *)
  pos : node array;
  po_names : string array;
  fanout_l : (int * int) list array Lazy.t;
  mutable bucket_cache : int array array option;
      (* per-level gate-id buckets, computed once per netlist on first
         use (the topology never changes after [Builder.build]) *)
  mutable flat_cache : flat option;
      (* flat CSR topology view for the structure-of-arrays timing
         engines, same once-per-netlist lifecycle as [bucket_cache] *)
}

module Builder = struct
  type netlist = t

  type t = {
    mutable bname : string;
    mutable rev_pis : string list;
    mutable n_pi : int;
    pi_seen : (string, unit) Hashtbl.t;
    mutable rev_gates : gate list;
    mutable n_gate : int;
    mutable rev_pos : (node * string) list;
  }

  let create ?(name = "circuit") () =
    {
      bname = name;
      rev_pis = [];
      n_pi = 0;
      pi_seen = Hashtbl.create 16;
      rev_gates = [];
      n_gate = 0;
      rev_pos = [];
    }

  let add_pi b name =
    if Hashtbl.mem b.pi_seen name then
      invalid_arg ("Netlist.Builder.add_pi: duplicate input " ^ name);
    Hashtbl.add b.pi_seen name ();
    let id = b.n_pi in
    b.rev_pis <- name :: b.rev_pis;
    b.n_pi <- id + 1;
    Pi id

  let node_exists b = function
    | Pi i -> i >= 0 && i < b.n_pi
    | Gate i -> i >= 0 && i < b.n_gate

  let add_gate b ?name ?(wire_load = 1.0) ~cell fanin =
    let fanin = Array.of_list fanin in
    if Array.length fanin <> cell.Cell.n_inputs then
      invalid_arg
        (Printf.sprintf "Netlist.Builder.add_gate: cell %s expects %d inputs, got %d"
           cell.Cell.name cell.Cell.n_inputs (Array.length fanin));
    Array.iter
      (fun n ->
        if not (node_exists b n) then
          invalid_arg "Netlist.Builder.add_gate: fanin node does not exist")
      fanin;
    if wire_load < 0. then invalid_arg "Netlist.Builder.add_gate: negative wire load";
    let id = b.n_gate in
    let gate_name =
      match name with Some n -> n | None -> Printf.sprintf "g%d" id
    in
    b.rev_gates <- { id; gate_name; cell; fanin; wire_load } :: b.rev_gates;
    b.n_gate <- id + 1;
    Gate id

  let mark_po b ?name node =
    if not (node_exists b node) then
      invalid_arg "Netlist.Builder.mark_po: node does not exist";
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "po%d" (List.length b.rev_pos)
    in
    b.rev_pos <- (node, name) :: b.rev_pos

  let build b : netlist =
    if b.rev_pos = [] then invalid_arg "Netlist.Builder.build: no primary output";
    let gates = Array.of_list (List.rev b.rev_gates) in
    let pos_pairs = List.rev b.rev_pos in
    let fanout = Array.make (Array.length gates) [] in
    Array.iter
      (fun g ->
        let seen = Hashtbl.create 4 in
        Array.iter
          (function
            | Pi _ -> ()
            | Gate src ->
                let m = try Hashtbl.find seen src with Not_found -> 0 in
                Hashtbl.replace seen src (m + 1))
          g.fanin;
        Hashtbl.iter (fun src m -> fanout.(src) <- (g.id, m) :: fanout.(src)) seen)
      gates;
    {
      name = b.bname;
      pis = Array.of_list (List.rev b.rev_pis);
      n_g = Array.length gates;
      gates_l = Lazy.from_val gates;
      pos = Array.of_list (List.map fst pos_pairs);
      po_names = Array.of_list (List.map snd pos_pairs);
      fanout_l = Lazy.from_val fanout;
      bucket_cache = None;
      flat_cache = None;
    }
end

let name t = t.name
let n_pis t = Array.length t.pis
let n_gates t = t.n_g
let n_pos t = Array.length t.pos
let gate t i = (Lazy.force t.gates_l).(i)
let gates t = Lazy.force t.gates_l
let pi_name t i = t.pis.(i)
let pos t = t.pos
let po_name t i = t.po_names.(i)
let fanout t i = (Lazy.force t.fanout_l).(i)

let load t ~sizes g =
  let gates = Lazy.force t.gates_l in
  let gate = gates.(g) in
  List.fold_left
    (fun acc (consumer, mult) ->
      let c = gates.(consumer) in
      acc +. (float_of_int mult *. Cell.input_cap c.cell ~size:sizes.(consumer)))
    gate.wire_load (Lazy.force t.fanout_l).(g)

let area t ~sizes =
  let acc = ref 0. in
  Array.iter
    (fun g -> acc := !acc +. (g.cell.Cell.area *. sizes.(g.id)))
    (Lazy.force t.gates_l);
  !acc

let min_sizes t = Array.make (n_gates t) 1.

let max_sizes t = Array.map (fun g -> g.cell.Cell.max_size) (Lazy.force t.gates_l)

let check_sizes t sizes =
  if Array.length sizes <> n_gates t then
    invalid_arg "Netlist.check_sizes: dimension mismatch";
  Array.iter
    (fun g ->
      let s = sizes.(g.id) in
      if s < 1. -. 1e-9 || s > g.cell.Cell.max_size +. 1e-9 then
        invalid_arg
          (Printf.sprintf "Netlist.check_sizes: size %g of gate %s outside [1, %g]" s
             g.gate_name g.cell.Cell.max_size))
    (Lazy.force t.gates_l)

let levels t =
  let lvl = Array.make (n_gates t) 0 in
  Array.iter
    (fun g ->
      let m =
        Array.fold_left
          (fun acc -> function Pi _ -> acc | Gate i -> max acc lvl.(i))
          0 g.fanin
      in
      lvl.(g.id) <- m + 1)
    (Lazy.force t.gates_l);
  lvl

let depth t = if n_gates t = 0 then 0 else Array.fold_left max 0 (levels t)

(* Level buckets from a per-gate level array (ascending-id iteration
   keeps every bucket sorted by gate id). *)
let buckets_of_levels lvl =
  let d = Array.fold_left max 0 lvl in
  let counts = Array.make d 0 in
  Array.iter (fun l -> counts.(l - 1) <- counts.(l - 1) + 1) lvl;
  let buckets = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make d 0 in
  Array.iteri
    (fun id l ->
      buckets.(l - 1).(fill.(l - 1)) <- id;
      fill.(l - 1) <- fill.(l - 1) + 1)
    lvl;
  buckets

let compute_buckets t = buckets_of_levels (levels t)

let level_buckets t =
  match t.bucket_cache with
  | Some b -> b
  | None ->
      let b = compute_buckets t in
      t.bucket_cache <- Some b;
      b

(* Flat CSR encoding of the topology.  Fanin nodes are encoded as ints:
   [Gate g] is [g], [Pi i] is [-i - 1].  Fanout entries preserve the
   order of the [fanout] adjacency lists (fixed at build time), so a
   fold over a CSR row performs the same floating-point accumulation
   order as [load]'s list fold.

   The flat view renumbers the gates level-major: new ids are assigned
   level by level, ascending old id within a level, so each level's
   gates (and their interleaved arrival slots) occupy one contiguous,
   cache-blocked range [lvl_off.(l) .. lvl_off.(l+1) - 1].  [perm] /
   [inv_perm] carry the old<->new mapping; every per-gate column and
   every encoded gate reference in the flat view uses new ids.  The
   renumbering changes no floating-point operation: a gate's fanin and
   fanout rows keep their original within-row order (ids merely
   renamed), gates within a level are independent in the forward sweep,
   and descending-new-id within a level coincides with descending-old-id
   — the boxed reverse sweep's serial scatter order — because the
   permutation is monotone inside each level. *)
let encode_node = function Gate g -> g | Pi i -> -i - 1

(* Build the permuted flat view from old-id CSR columns.  [fo_mult_i] is
   the integer pin multiplicity; converted to float in the column.
   Returns the flat view and the old-id level array (levels are
   1-based; PIs sit at level 0). *)
let build_flat ~n ~n_pos ~fi_off:fi_off_o ~fi_node:fi_node_o ~po_node:po_node_o
    ~fo_off:fo_off_o ~fo_consumer:fo_consumer_o ~fo_mult_i ~fo_cin:fo_cin_o
    ~g_t_int ~g_drive ~g_wire_load ~g_max_size =
  let lvl = Array.make n 0 in
  for g = 0 to n - 1 do
    let m = ref 0 in
    for j = fi_off_o.(g) to fi_off_o.(g + 1) - 1 do
      let e = fi_node_o.(j) in
      if e >= 0 && lvl.(e) > !m then m := lvl.(e)
    done;
    lvl.(g) <- !m + 1
  done;
  let d = Array.fold_left max 0 lvl in
  (* lvl_off.(0) = 0 (no gate sits at level 0); after the prefix sum
     lvl_off.(l) is the end of level l's new-id segment, so segment [l]
     (the gates of level l + 1) is [lvl_off.(l) .. lvl_off.(l+1) - 1]. *)
  let lvl_off = Array.make (d + 1) 0 in
  Array.iter (fun l -> lvl_off.(l) <- lvl_off.(l) + 1) lvl;
  for l = 1 to d do
    lvl_off.(l) <- lvl_off.(l) + lvl_off.(l - 1)
  done;
  let perm = Array.make n 0 in
  let inv_perm = Array.make n 0 in
  let fill = Array.sub lvl_off 0 (max 1 d) in
  for g = 0 to n - 1 do
    let l = lvl.(g) - 1 in
    let i = fill.(l) in
    perm.(g) <- i;
    inv_perm.(i) <- g;
    fill.(l) <- i + 1
  done;
  let map_node e = if e >= 0 then perm.(e) else e in
  let fi_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let o = inv_perm.(i) in
    fi_off.(i + 1) <- fi_off.(i) + (fi_off_o.(o + 1) - fi_off_o.(o))
  done;
  let nfi = fi_off.(n) in
  let fi_node = Array.make (max 1 nfi) 0 in
  for i = 0 to n - 1 do
    let o = inv_perm.(i) in
    let b = fi_off.(i) and bo = fi_off_o.(o) in
    for j = 0 to fi_off_o.(o + 1) - bo - 1 do
      fi_node.(b + j) <- map_node fi_node_o.(bo + j)
    done
  done;
  let fo_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let o = inv_perm.(i) in
    fo_off.(i + 1) <- fo_off.(i) + (fo_off_o.(o + 1) - fo_off_o.(o))
  done;
  let nfo = fo_off.(n) in
  let fo_consumer = Array.make (max 1 nfo) 0 in
  let fo_mult = Array.make (max 1 nfo) 0. in
  let fo_cin = Array.make (max 1 nfo) 0. in
  for i = 0 to n - 1 do
    let o = inv_perm.(i) in
    let b = fo_off.(i) and bo = fo_off_o.(o) in
    for j = 0 to fo_off_o.(o + 1) - bo - 1 do
      fo_consumer.(b + j) <- perm.(fo_consumer_o.(bo + j));
      fo_mult.(b + j) <- float_of_int fo_mult_i.(bo + j);
      fo_cin.(b + j) <- fo_cin_o.(bo + j)
    done
  done;
  let gather col = Array.init n (fun i -> col.(inv_perm.(i))) in
  ( {
      perm;
      inv_perm;
      lvl_off;
      fi_off;
      fi_node;
      po_node = Array.map map_node po_node_o;
      po_base = nfi;
      fold_slots = nfi + n_pos;
      fo_off;
      fo_consumer;
      fo_mult;
      fo_cin;
      g_t_int = gather g_t_int;
      g_drive = gather g_drive;
      g_wire_load = gather g_wire_load;
      g_max_size = gather g_max_size;
    },
    lvl )

(* Old-id CSR columns from the record graph, then the shared permuted
   build.  The fanout columns preserve [fanout]-list order. *)
let compute_flat t =
  let n = n_gates t in
  let gates = Lazy.force t.gates_l in
  let fanout = Lazy.force t.fanout_l in
  let fi_off = Array.make (n + 1) 0 in
  Array.iter
    (fun g -> fi_off.(g.id + 1) <- fi_off.(g.id) + Array.length g.fanin)
    gates;
  let nfi = fi_off.(n) in
  let fi_node = Array.make (max 1 nfi) 0 in
  Array.iter
    (fun g ->
      let base = fi_off.(g.id) in
      Array.iteri (fun j nd -> fi_node.(base + j) <- encode_node nd) g.fanin)
    gates;
  let po_node = Array.map encode_node t.pos in
  let fo_off = Array.make (n + 1) 0 in
  for g = 0 to n - 1 do
    fo_off.(g + 1) <- fo_off.(g) + List.length fanout.(g)
  done;
  let nfo = fo_off.(n) in
  let fo_consumer = Array.make (max 1 nfo) 0 in
  let fo_mult_i = Array.make (max 1 nfo) 0 in
  let fo_cin = Array.make (max 1 nfo) 0. in
  Array.iteri
    (fun g l ->
      let j = ref fo_off.(g) in
      List.iter
        (fun (consumer, mult) ->
          fo_consumer.(!j) <- consumer;
          fo_mult_i.(!j) <- mult;
          fo_cin.(!j) <- gates.(consumer).cell.Cell.c_in;
          incr j)
        l)
    fanout;
  fst
    (build_flat ~n ~n_pos:(Array.length t.pos) ~fi_off ~fi_node ~po_node ~fo_off
       ~fo_consumer ~fo_mult_i ~fo_cin
       ~g_t_int:(Array.map (fun g -> g.cell.Cell.t_int) gates)
       ~g_drive:(Array.map (fun g -> g.cell.Cell.drive) gates)
       ~g_wire_load:(Array.map (fun g -> g.wire_load) gates)
       ~g_max_size:(Array.map (fun g -> g.cell.Cell.max_size) gates))

let flat t =
  match t.flat_cache with
  | Some f -> f
  | None ->
      let f = compute_flat t in
      t.flat_cache <- Some f;
      f

(* ---- streaming CSR construction ---------------------------------------------

   [of_csr] builds a netlist directly from old-id CSR columns — the
   entry point for streaming loaders (Bench_stream) that never hold a
   record graph.  The permuted flat view and the level buckets are
   computed here, straight from the columns, and pre-seeded into the
   caches; the record planes ([gates] / [fanout]) are reconstructed
   lazily from the retained columns only if a record-level accessor is
   called.  The fanout rows are materialised in descending-consumer-id
   order with per-gate pin multiplicities — exactly the adjacency lists
   [Builder.build] produces (consumers are visited in ascending id and
   prepended), so [flat] and [load] folds accumulate in the same
   floating-point order as a record-built netlist. *)
let decode_node e = if e >= 0 then Gate e else Pi (-e - 1)

let of_csr ?(name = "csr") ~pi_names ~cells ~wire_loads ~fi_off ~fi_node ~pos
    ~po_names () =
  let n = Array.length cells in
  let n_pi = Array.length pi_names in
  if Array.length wire_loads <> n || Array.length fi_off <> n + 1 then
    invalid_arg "Netlist.of_csr: column length mismatch";
  if Array.length pos <> Array.length po_names || Array.length pos = 0 then
    invalid_arg "Netlist.of_csr: no primary output";
  for g = 0 to n - 1 do
    if fi_off.(g + 1) - fi_off.(g) <> cells.(g).Cell.n_inputs then
      invalid_arg
        (Printf.sprintf "Netlist.of_csr: cell %s expects %d inputs, got %d"
           cells.(g).Cell.name cells.(g).Cell.n_inputs
           (fi_off.(g + 1) - fi_off.(g)));
    if wire_loads.(g) < 0. then invalid_arg "Netlist.of_csr: negative wire load";
    for j = fi_off.(g) to fi_off.(g + 1) - 1 do
      let e = fi_node.(j) in
      if e >= g || -e - 1 >= n_pi then
        invalid_arg "Netlist.of_csr: fanin node does not exist"
    done
  done;
  Array.iter
    (function
      | Gate g when g >= 0 && g < n -> ()
      | Pi i when i >= 0 && i < n_pi -> ()
      | _ -> invalid_arg "Netlist.of_csr: primary output node does not exist")
    pos;
  (* Fanout columns: one entry per distinct (driver, consumer) pair,
     rows in descending consumer id.  Within a fanin row, an entry is
     counted once at its first occurrence (multiplicities folded in). *)
  let fo_cnt = Array.make (max 1 n) 0 in
  let row_first g j =
    let s = fi_node.(j) in
    let first = ref true in
    for k = fi_off.(g) to j - 1 do
      if fi_node.(k) = s then first := false
    done;
    !first
  in
  for g = 0 to n - 1 do
    for j = fi_off.(g) to fi_off.(g + 1) - 1 do
      if fi_node.(j) >= 0 && row_first g j then
        fo_cnt.(fi_node.(j)) <- fo_cnt.(fi_node.(j)) + 1
    done
  done;
  let fo_off = Array.make (n + 1) 0 in
  for g = 0 to n - 1 do
    fo_off.(g + 1) <- fo_off.(g) + fo_cnt.(g)
  done;
  let nfo = fo_off.(n) in
  let fo_consumer = Array.make (max 1 nfo) 0 in
  let fo_mult_i = Array.make (max 1 nfo) 0 in
  let fo_cin = Array.make (max 1 nfo) 0. in
  let fill = Array.sub fo_off 0 (max 1 n) in
  for g = n - 1 downto 0 do
    for j = fi_off.(g) to fi_off.(g + 1) - 1 do
      let s = fi_node.(j) in
      if s >= 0 && row_first g j then begin
        let m = ref 0 in
        for k = fi_off.(g) to fi_off.(g + 1) - 1 do
          if fi_node.(k) = s then incr m
        done;
        fo_consumer.(fill.(s)) <- g;
        fo_mult_i.(fill.(s)) <- !m;
        fo_cin.(fill.(s)) <- cells.(g).Cell.c_in;
        fill.(s) <- fill.(s) + 1
      end
    done
  done;
  let po_node = Array.map encode_node pos in
  let fl, lvl =
    build_flat ~n ~n_pos:(Array.length pos) ~fi_off ~fi_node ~po_node ~fo_off
      ~fo_consumer ~fo_mult_i ~fo_cin
      ~g_t_int:(Array.map (fun c -> c.Cell.t_int) cells)
      ~g_drive:(Array.map (fun c -> c.Cell.drive) cells)
      ~g_wire_load:wire_loads
      ~g_max_size:(Array.map (fun c -> c.Cell.max_size) cells)
  in
  {
    name;
    pis = pi_names;
    n_g = n;
    gates_l =
      lazy
        (Array.init n (fun g ->
             let b = fi_off.(g) in
             {
               id = g;
               gate_name = Printf.sprintf "g%d" g;
               cell = cells.(g);
               fanin =
                 Array.init (fi_off.(g + 1) - b) (fun j ->
                     decode_node fi_node.(b + j));
               wire_load = wire_loads.(g);
             }));
    pos;
    po_names;
    fanout_l =
      lazy
        (Array.init n (fun s ->
             List.init (fo_off.(s + 1) - fo_off.(s)) (fun j ->
                 (fo_consumer.(fo_off.(s) + j), fo_mult_i.(fo_off.(s) + j)))));
    bucket_cache = Some (buckets_of_levels lvl);
    flat_cache = Some fl;
  }

type stats = {
  gates_count : int;
  pi_count : int;
  po_count : int;
  depth : int;
  max_fanout : int;
  avg_fanin : float;
}

let stats t =
  let max_fanout =
    Array.fold_left
      (fun acc l -> max acc (List.fold_left (fun a (_, m) -> a + m) 0 l))
      0 (Lazy.force t.fanout_l)
  in
  let total_fanin =
    Array.fold_left (fun acc g -> acc + Array.length g.fanin) 0 (Lazy.force t.gates_l)
  in
  {
    gates_count = n_gates t;
    pi_count = n_pis t;
    po_count = n_pos t;
    depth = depth t;
    max_fanout;
    avg_fanin =
      (if n_gates t = 0 then 0.
       else float_of_int total_fanin /. float_of_int (n_gates t));
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "gates=%d pis=%d pos=%d depth=%d max_fanout=%d avg_fanin=%.2f" s.gates_count
    s.pi_count s.po_count s.depth s.max_fanout s.avg_fanin

let pp_summary ppf t = Format.fprintf ppf "%s: %a" t.name pp_stats (stats t)
