type node = Pi of int | Gate of int

type gate = {
  id : int;
  gate_name : string;
  cell : Cell.t;
  fanin : node array;
  wire_load : float;
}

type flat = {
  fi_off : int array;
  fi_node : int array;
  po_node : int array;
  po_base : int;
  fold_slots : int;
  fo_off : int array;
  fo_consumer : int array;
  fo_mult : float array;
  fo_cin : float array;
  g_t_int : float array;
  g_drive : float array;
  g_wire_load : float array;
  g_max_size : float array;
}

type t = {
  name : string;
  pis : string array;
  gates : gate array;
  pos : node array;
  po_names : string array;
  fanout : (int * int) list array;
  mutable bucket_cache : int array array option;
      (* per-level gate-id buckets, computed once per netlist on first
         use (the topology never changes after [Builder.build]) *)
  mutable flat_cache : flat option;
      (* flat CSR topology view for the structure-of-arrays timing
         engines, same once-per-netlist lifecycle as [bucket_cache] *)
}

module Builder = struct
  type netlist = t

  type t = {
    mutable bname : string;
    mutable rev_pis : string list;
    mutable n_pi : int;
    pi_seen : (string, unit) Hashtbl.t;
    mutable rev_gates : gate list;
    mutable n_gate : int;
    mutable rev_pos : (node * string) list;
  }

  let create ?(name = "circuit") () =
    {
      bname = name;
      rev_pis = [];
      n_pi = 0;
      pi_seen = Hashtbl.create 16;
      rev_gates = [];
      n_gate = 0;
      rev_pos = [];
    }

  let add_pi b name =
    if Hashtbl.mem b.pi_seen name then
      invalid_arg ("Netlist.Builder.add_pi: duplicate input " ^ name);
    Hashtbl.add b.pi_seen name ();
    let id = b.n_pi in
    b.rev_pis <- name :: b.rev_pis;
    b.n_pi <- id + 1;
    Pi id

  let node_exists b = function
    | Pi i -> i >= 0 && i < b.n_pi
    | Gate i -> i >= 0 && i < b.n_gate

  let add_gate b ?name ?(wire_load = 1.0) ~cell fanin =
    let fanin = Array.of_list fanin in
    if Array.length fanin <> cell.Cell.n_inputs then
      invalid_arg
        (Printf.sprintf "Netlist.Builder.add_gate: cell %s expects %d inputs, got %d"
           cell.Cell.name cell.Cell.n_inputs (Array.length fanin));
    Array.iter
      (fun n ->
        if not (node_exists b n) then
          invalid_arg "Netlist.Builder.add_gate: fanin node does not exist")
      fanin;
    if wire_load < 0. then invalid_arg "Netlist.Builder.add_gate: negative wire load";
    let id = b.n_gate in
    let gate_name =
      match name with Some n -> n | None -> Printf.sprintf "g%d" id
    in
    b.rev_gates <- { id; gate_name; cell; fanin; wire_load } :: b.rev_gates;
    b.n_gate <- id + 1;
    Gate id

  let mark_po b ?name node =
    if not (node_exists b node) then
      invalid_arg "Netlist.Builder.mark_po: node does not exist";
    let name =
      match name with
      | Some n -> n
      | None -> Printf.sprintf "po%d" (List.length b.rev_pos)
    in
    b.rev_pos <- (node, name) :: b.rev_pos

  let build b : netlist =
    if b.rev_pos = [] then invalid_arg "Netlist.Builder.build: no primary output";
    let gates = Array.of_list (List.rev b.rev_gates) in
    let pos_pairs = List.rev b.rev_pos in
    let fanout = Array.make (Array.length gates) [] in
    Array.iter
      (fun g ->
        let seen = Hashtbl.create 4 in
        Array.iter
          (function
            | Pi _ -> ()
            | Gate src ->
                let m = try Hashtbl.find seen src with Not_found -> 0 in
                Hashtbl.replace seen src (m + 1))
          g.fanin;
        Hashtbl.iter (fun src m -> fanout.(src) <- (g.id, m) :: fanout.(src)) seen)
      gates;
    {
      name = b.bname;
      pis = Array.of_list (List.rev b.rev_pis);
      gates;
      pos = Array.of_list (List.map fst pos_pairs);
      po_names = Array.of_list (List.map snd pos_pairs);
      fanout;
      bucket_cache = None;
      flat_cache = None;
    }
end

let name t = t.name
let n_pis t = Array.length t.pis
let n_gates t = Array.length t.gates
let n_pos t = Array.length t.pos
let gate t i = t.gates.(i)
let gates t = t.gates
let pi_name t i = t.pis.(i)
let pos t = t.pos
let po_name t i = t.po_names.(i)
let fanout t i = t.fanout.(i)

let load t ~sizes g =
  let gate = t.gates.(g) in
  List.fold_left
    (fun acc (consumer, mult) ->
      let c = t.gates.(consumer) in
      acc +. (float_of_int mult *. Cell.input_cap c.cell ~size:sizes.(consumer)))
    gate.wire_load t.fanout.(g)

let area t ~sizes =
  let acc = ref 0. in
  Array.iter (fun g -> acc := !acc +. (g.cell.Cell.area *. sizes.(g.id))) t.gates;
  !acc

let min_sizes t = Array.make (n_gates t) 1.

let max_sizes t = Array.map (fun g -> g.cell.Cell.max_size) t.gates

let check_sizes t sizes =
  if Array.length sizes <> n_gates t then
    invalid_arg "Netlist.check_sizes: dimension mismatch";
  Array.iter
    (fun g ->
      let s = sizes.(g.id) in
      if s < 1. -. 1e-9 || s > g.cell.Cell.max_size +. 1e-9 then
        invalid_arg
          (Printf.sprintf "Netlist.check_sizes: size %g of gate %s outside [1, %g]" s
             g.gate_name g.cell.Cell.max_size))
    t.gates

let levels t =
  let lvl = Array.make (n_gates t) 0 in
  Array.iter
    (fun g ->
      let m =
        Array.fold_left
          (fun acc -> function Pi _ -> acc | Gate i -> max acc lvl.(i))
          0 g.fanin
      in
      lvl.(g.id) <- m + 1)
    t.gates;
  lvl

let depth t = if n_gates t = 0 then 0 else Array.fold_left max 0 (levels t)

let compute_buckets t =
  let lvl = levels t in
  let d = Array.fold_left max 0 lvl in
  let counts = Array.make d 0 in
  Array.iter (fun l -> counts.(l - 1) <- counts.(l - 1) + 1) lvl;
  let buckets = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make d 0 in
  (* ascending-id iteration keeps every bucket sorted by gate id *)
  Array.iteri
    (fun id l ->
      buckets.(l - 1).(fill.(l - 1)) <- id;
      fill.(l - 1) <- fill.(l - 1) + 1)
    lvl;
  buckets

let level_buckets t =
  match t.bucket_cache with
  | Some b -> b
  | None ->
      let b = compute_buckets t in
      t.bucket_cache <- Some b;
      b

(* Flat CSR encoding of the topology.  Fanin nodes are encoded as ints:
   [Gate g] is [g], [Pi i] is [-i - 1].  Fanout entries preserve the
   order of the [fanout] adjacency lists (fixed at build time), so a
   fold over a CSR row performs the same floating-point accumulation
   order as [load]'s list fold. *)
let encode_node = function Gate g -> g | Pi i -> -i - 1

let compute_flat t =
  let n = n_gates t in
  let fi_off = Array.make (n + 1) 0 in
  Array.iter
    (fun g -> fi_off.(g.id + 1) <- fi_off.(g.id) + Array.length g.fanin)
    t.gates;
  let nfi = fi_off.(n) in
  let fi_node = Array.make (max 1 nfi) 0 in
  Array.iter
    (fun g ->
      let base = fi_off.(g.id) in
      Array.iteri (fun j nd -> fi_node.(base + j) <- encode_node nd) g.fanin)
    t.gates;
  let po_node = Array.map encode_node t.pos in
  let fo_off = Array.make (n + 1) 0 in
  for g = 0 to n - 1 do
    fo_off.(g + 1) <- fo_off.(g) + List.length t.fanout.(g)
  done;
  let nfo = fo_off.(n) in
  let fo_consumer = Array.make (max 1 nfo) 0 in
  let fo_mult = Array.make (max 1 nfo) 0. in
  let fo_cin = Array.make (max 1 nfo) 0. in
  Array.iteri
    (fun g l ->
      let j = ref fo_off.(g) in
      List.iter
        (fun (consumer, mult) ->
          fo_consumer.(!j) <- consumer;
          fo_mult.(!j) <- float_of_int mult;
          fo_cin.(!j) <- t.gates.(consumer).cell.Cell.c_in;
          incr j)
        l)
    t.fanout;
  {
    fi_off;
    fi_node;
    po_node;
    po_base = nfi;
    fold_slots = nfi + Array.length t.pos;
    fo_off;
    fo_consumer;
    fo_mult;
    fo_cin;
    g_t_int = Array.map (fun g -> g.cell.Cell.t_int) t.gates;
    g_drive = Array.map (fun g -> g.cell.Cell.drive) t.gates;
    g_wire_load = Array.map (fun g -> g.wire_load) t.gates;
    g_max_size = Array.map (fun g -> g.cell.Cell.max_size) t.gates;
  }

let flat t =
  match t.flat_cache with
  | Some f -> f
  | None ->
      let f = compute_flat t in
      t.flat_cache <- Some f;
      f

type stats = {
  gates_count : int;
  pi_count : int;
  po_count : int;
  depth : int;
  max_fanout : int;
  avg_fanin : float;
}

let stats t =
  let max_fanout =
    Array.fold_left
      (fun acc l -> max acc (List.fold_left (fun a (_, m) -> a + m) 0 l))
      0 t.fanout
  in
  let total_fanin =
    Array.fold_left (fun acc g -> acc + Array.length g.fanin) 0 t.gates
  in
  {
    gates_count = n_gates t;
    pi_count = n_pis t;
    po_count = n_pos t;
    depth = depth t;
    max_fanout;
    avg_fanin =
      (if n_gates t = 0 then 0.
       else float_of_int total_fanin /. float_of_int (n_gates t));
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "gates=%d pis=%d pos=%d depth=%d max_fanout=%d avg_fanin=%.2f" s.gates_count
    s.pi_count s.po_count s.depth s.max_fanout s.avg_fanin

let pp_summary ppf t = Format.fprintf ppf "%s: %a" t.name pp_stats (stats t)
