type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "blif: line %d: %s" e.line e.message

exception Error of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

(* A raw .gate statement before net resolution. *)
type raw_gate = {
  line : int;
  cell_name : string;
  input_nets : string list;
  output_net : string;
}

type statements = {
  model : string;
  inputs : string list;
  outputs : string list;
  raw_gates : raw_gate list;
}

(* Strip comments, join continuation lines, split into (line_no, tokens). *)
let logical_lines text =
  let physical = String.split_on_char '\n' text in
  let rec join acc pending pending_line no = function
    | [] ->
        let acc = match pending with Some p -> (pending_line, p) :: acc | None -> acc in
        List.rev acc
    | raw :: rest ->
        let no = no + 1 in
        let line =
          match String.index_opt raw '#' with
          | Some i -> String.sub raw 0 i
          | None -> raw
        in
        let line = String.trim line in
        let continued = String.length line > 0 && line.[String.length line - 1] = '\\' in
        let body = if continued then String.sub line 0 (String.length line - 1) else line in
        let merged, merged_line =
          match pending with
          | Some p -> (p ^ " " ^ body, pending_line)
          | None -> (body, no)
        in
        if continued then join acc (Some merged) merged_line no rest
        else if String.trim merged = "" then join acc None 0 no rest
        else join ((merged_line, merged) :: acc) None 0 no rest
  in
  join [] None 0 0 physical

let tokens_of line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let split_pair line tok =
  match String.index_opt tok '=' with
  | Some i ->
      ( String.sub tok 0 i,
        String.sub tok (i + 1) (String.length tok - i - 1) )
  | None -> fail line "malformed pin binding %S (expected formal=actual)" tok

let parse_statements text =
  let model = ref None in
  let inputs = ref [] in
  let outputs = ref [] in
  let raw_gates = ref [] in
  let ended = ref false in
  List.iter
    (fun (line, content) ->
      if not !ended then
        match tokens_of content with
        | [] -> ()
        | ".model" :: rest ->
            if !model <> None then fail line "duplicate .model";
            model := Some (match rest with n :: _ -> n | [] -> "blif")
        | ".inputs" :: rest -> inputs := !inputs @ rest
        | ".outputs" :: rest -> outputs := !outputs @ rest
        | ".gate" :: cell_name :: pins ->
            let pairs = List.map (split_pair line) pins in
            (match List.rev pairs with
            | (_, output_net) :: rev_inputs ->
                let input_nets = List.rev_map snd rev_inputs in
                raw_gates := { line; cell_name; input_nets; output_net } :: !raw_gates
            | [] -> fail line ".gate with no pins")
        | ".gate" :: [] -> fail line ".gate with no cell name"
        | ".end" :: _ -> ended := true
        | directive :: _ when directive.[0] = '.' ->
            fail line "unsupported directive %s" directive
        | _ -> fail line "unexpected tokens %S" content)
    (logical_lines text);
  {
    model = (match !model with Some m -> m | None -> "blif");
    inputs = !inputs;
    outputs = !outputs;
    raw_gates = List.rev !raw_gates;
  }

(* Order gates so that every fanin net is defined before use (Kahn). *)
let topo_order stmts =
  let defined_by = Hashtbl.create 64 in
  List.iteri
    (fun i (g : raw_gate) ->
      if Hashtbl.mem defined_by g.output_net then
        fail g.line "net %s driven twice" g.output_net;
      Hashtbl.add defined_by g.output_net i)
    stmts.raw_gates;
  let is_pi = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace is_pi n ()) stmts.inputs;
  let gates = Array.of_list stmts.raw_gates in
  let n = Array.length gates in
  let indeg = Array.make n 0 in
  let consumers = Array.make n [] in
  Array.iteri
    (fun i g ->
      List.iter
        (fun net ->
          if not (Hashtbl.mem is_pi net) then
            match Hashtbl.find_opt defined_by net with
            | Some src ->
                indeg.(i) <- indeg.(i) + 1;
                consumers.(src) <- i :: consumers.(src)
            | None -> fail g.line "undriven net %s" net)
        g.input_nets)
    gates;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    order := i :: !order;
    List.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      consumers.(i)
  done;
  if !seen <> n then fail 0 "combinational cycle in netlist";
  List.rev_map (fun i -> gates.(i)) !order

let build ?(wire_load = 1.0) ~library stmts =
  let b = Netlist.Builder.create ~name:stmts.model () in
  let net_node : (string, Netlist.node) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun pi -> Hashtbl.replace net_node pi (Netlist.Builder.add_pi b pi))
    stmts.inputs;
  List.iter
    (fun (g : raw_gate) ->
      let cell =
        match Cell.Library.find library g.cell_name with
        | Some c -> c
        | None -> fail g.line "unknown cell %s" g.cell_name
      in
      if List.length g.input_nets <> cell.Cell.n_inputs then
        fail g.line "cell %s expects %d inputs, got %d" g.cell_name cell.Cell.n_inputs
          (List.length g.input_nets);
      let fanin =
        List.map
          (fun net ->
            match Hashtbl.find_opt net_node net with
            | Some n -> n
            | None -> fail g.line "undriven net %s" net)
          g.input_nets
      in
      let node = Netlist.Builder.add_gate b ~name:g.output_net ~wire_load ~cell fanin in
      Hashtbl.replace net_node g.output_net node)
    (topo_order stmts);
  List.iter
    (fun out ->
      match Hashtbl.find_opt net_node out with
      | Some n -> Netlist.Builder.mark_po b ~name:out n
      | None -> fail 0 "output %s is not driven" out)
    stmts.outputs;
  Netlist.Builder.build b

let parse_string ?wire_load ~library text =
  match build ?wire_load ~library (parse_statements text) with
  | netlist -> Ok netlist
  | exception Error e -> Error e
  | exception Invalid_argument m -> Error { line = 0; message = m }

let parse_file ?wire_load ~library path =
  match open_in path with
  | exception Sys_error m -> Result.Error { line = 0; message = m }
  | ic ->
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      parse_string ?wire_load ~library text

let to_string netlist =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf ".model %s\n" (Netlist.name netlist));
  Buffer.add_string buf ".inputs";
  for i = 0 to Netlist.n_pis netlist - 1 do
    Buffer.add_string buf (" " ^ Netlist.pi_name netlist i)
  done;
  Buffer.add_char buf '\n';
  (* Gate output nets are synthesised as [n<id>]; if a primary input
     already uses such a name (ISCAS netlists name PIs n1, n2, ...),
     underscores are appended until the name is fresh — otherwise the
     reparsed netlist would silently rewire those PIs. *)
  let pi_names = Hashtbl.create 16 in
  for i = 0 to Netlist.n_pis netlist - 1 do
    Hashtbl.replace pi_names (Netlist.pi_name netlist i) ()
  done;
  let gate_net =
    Array.init (Netlist.n_gates netlist) (fun g ->
        let rec fresh name =
          if Hashtbl.mem pi_names name then fresh (name ^ "_") else name
        in
        fresh (Printf.sprintf "n%d" g))
  in
  let net_of = function
    | Netlist.Pi i -> Netlist.pi_name netlist i
    | Netlist.Gate g -> gate_net.(g)
  in
  Buffer.add_string buf ".outputs";
  Array.iter (fun po -> Buffer.add_string buf (" " ^ net_of po)) (Netlist.pos netlist);
  Buffer.add_char buf '\n';
  Array.iter
    (fun (g : Netlist.gate) ->
      Buffer.add_string buf (Printf.sprintf ".gate %s" g.Netlist.cell.Cell.name);
      Array.iteri
        (fun pin fan -> Buffer.add_string buf (Printf.sprintf " i%d=%s" pin (net_of fan)))
        g.Netlist.fanin;
      Buffer.add_string buf (Printf.sprintf " O=%s\n" gate_net.(g.Netlist.id)))
    (Netlist.gates netlist);
  Buffer.add_string buf ".end\n";
  Buffer.contents buf

let write_file netlist path =
  let oc = open_out path in
  output_string oc (to_string netlist);
  close_out oc
