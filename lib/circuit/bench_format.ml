type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "bench: line %d: %s" e.line e.message

exception Error of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

type assign = { target : string; op : string; args : string list }

type statement = Input of string | Output of string | Assign of assign

(* "G10 = NAND(G1, G3)" / "INPUT(G1)" / "OUTPUT(G22)" *)
let parse_line line_no raw =
  let text =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  let text = String.trim text in
  if text = "" then None
  else begin
    let call s =
      (* NAME(arg, arg, ...) *)
      match String.index_opt s '(' with
      | None -> fail line_no "expected a call, got %S" s
      | Some open_paren ->
          let close_paren =
            match String.rindex_opt s ')' with
            | Some i when i > open_paren -> i
            | _ -> fail line_no "unbalanced parentheses in %S" s
          in
          let name = String.trim (String.sub s 0 open_paren) in
          let args_text = String.sub s (open_paren + 1) (close_paren - open_paren - 1) in
          let args =
            String.split_on_char ',' args_text
            |> List.map String.trim
            |> List.filter (fun a -> a <> "")
          in
          (name, args)
    in
    match String.index_opt text '=' with
    | Some eq ->
        let target = String.trim (String.sub text 0 eq) in
        let rhs = String.sub text (eq + 1) (String.length text - eq - 1) in
        let op, args = call rhs in
        if target = "" then fail line_no "missing assignment target";
        Some (Assign { target; op = String.uppercase_ascii op; args })
    | None -> (
        let name, args = call text in
        match (String.uppercase_ascii name, args) with
        | "INPUT", [ a ] -> Some (Input a)
        | "OUTPUT", [ a ] -> Some (Output a)
        | ("INPUT" | "OUTPUT"), _ -> fail line_no "INPUT/OUTPUT take one argument"
        | other, _ -> fail line_no "unknown directive %s" other)
  end

let named ~library ~line name =
  match Cell.Library.find library name with
  | Some c -> c
  | None -> fail line "library has no cell %s" name

let sized_cell ~library op arity =
  Cell.Library.find library (Printf.sprintf "%s%d" (String.lowercase_ascii op) arity)

(* Instantiate one .bench operator, decomposing operators wider than any
   library cell into balanced trees: a wide AND/OR becomes a tree of
   2-input cells, a wide NAND/NOR becomes the matching 2-input inverting
   cell fed by AND/OR trees, XOR folds associatively. *)
let rec instantiate ~b ~library ~wire_load ~line op fanin =
  let arity = List.length fanin in
  let direct name = Netlist.Builder.add_gate b ~wire_load ~cell:name fanin in
  let split_reduce reduce_op =
    let k = arity / 2 in
    let left = List.filteri (fun i _ -> i < k) fanin in
    let right = List.filteri (fun i _ -> i >= k) fanin in
    ( instantiate ~b ~library ~wire_load ~line reduce_op left,
      instantiate ~b ~library ~wire_load ~line reduce_op right )
  in
  match (op, arity) with
  | _, 0 -> fail line "%s with no inputs" op
  | ("AND" | "OR"), 1 -> List.hd fanin
  | "NOT", 1 -> direct (named ~library ~line "inv")
  | ("BUFF" | "BUF"), 1 -> direct (named ~library ~line "buf")
  | ("AND" | "OR" | "NAND" | "NOR" | "XOR"), n when n >= 2 -> (
      match sized_cell ~library op n with
      | Some cell -> direct cell
      | None -> (
          match op with
          | "AND" | "OR" ->
              let l, r = split_reduce op in
              Netlist.Builder.add_gate b ~wire_load
                ~cell:(named ~library ~line (String.lowercase_ascii op ^ "2"))
                [ l; r ]
          | "NAND" | "NOR" ->
              let reduce_op = if op = "NAND" then "AND" else "OR" in
              let l, r = split_reduce reduce_op in
              Netlist.Builder.add_gate b ~wire_load
                ~cell:(named ~library ~line (String.lowercase_ascii op ^ "2"))
                [ l; r ]
          | "XOR" ->
              let cell = named ~library ~line "xor2" in
              List.fold_left
                (fun acc x -> Netlist.Builder.add_gate b ~wire_load ~cell [ acc; x ])
                (List.hd fanin) (List.tl fanin)
          | _ -> assert false))
  | _ -> fail line "unsupported operator %s with %d inputs" op arity

let build ?(wire_load = 1.0) ~library text =
  let statements =
    String.split_on_char '\n' text
    |> List.mapi (fun i raw -> parse_line (i + 1) raw)
    |> List.filter_map Fun.id
  in
  let b = Netlist.Builder.create ~name:"bench" () in
  let net_node : (string, Netlist.node) Hashtbl.t = Hashtbl.create 64 in
  let outputs = ref [] in
  (* Pass 1: primary inputs, and DFF outputs as pseudo-inputs. *)
  List.iter
    (function
      | Input name ->
          if Hashtbl.mem net_node name then failwith ("duplicate INPUT " ^ name);
          Hashtbl.replace net_node name (Netlist.Builder.add_pi b name)
      | Assign { target; op = "DFF"; _ } ->
          Hashtbl.replace net_node target
            (Netlist.Builder.add_pi b (target ^ "_ff"))
      | Output _ | Assign _ -> ())
    statements;
  (* Pass 2: combinational assignments in dependency order (worklist: keep
     instantiating the assignments whose arguments are all defined). *)
  let remaining =
    ref
      (List.filter_map
         (function
           | Assign ({ op; _ } as a) when op <> "DFF" -> Some a
           | Input _ | Output _ | Assign _ -> None)
         statements)
  in
  let stuck = ref false in
  while !remaining <> [] && not !stuck do
    let ready, blocked =
      List.partition
        (fun { args; _ } -> List.for_all (Hashtbl.mem net_node) args)
        !remaining
    in
    if ready = [] then stuck := true
    else begin
      List.iter
        (fun { target; op; args } ->
          if Hashtbl.mem net_node target then
            failwith ("net driven twice: " ^ target);
          let fanin = List.map (Hashtbl.find net_node) args in
          let node = instantiate ~b ~library ~wire_load ~line:0 op fanin in
          Hashtbl.replace net_node target node)
        ready;
      remaining := blocked
    end
  done;
  if !stuck then failwith "combinational cycle or undriven net in .bench file";
  (* Pass 3: primary outputs, and DFF data inputs as pseudo-outputs. *)
  List.iter
    (function
      | Output name -> outputs := (name, name) :: !outputs
      | Assign { target; op = "DFF"; args = [ d ] } -> outputs := (d, target ^ "_d") :: !outputs
      | Assign { op = "DFF"; _ } -> failwith "DFF takes one input"
      | Input _ | Assign _ -> ())
    statements;
  List.iter
    (fun (net, label) ->
      match Hashtbl.find_opt net_node net with
      | Some n -> Netlist.Builder.mark_po b ~name:label n
      | None -> failwith ("output " ^ net ^ " is not driven"))
    (List.rev !outputs);
  Netlist.Builder.build b

let parse_string ?wire_load ~library text =
  match build ?wire_load ~library text with
  | netlist -> Ok netlist
  | exception Error e -> Error e
  | exception Failure m -> Error { line = 0; message = m }
  | exception Invalid_argument m -> Error { line = 0; message = m }

let parse_file ?wire_load ~library path =
  match open_in path with
  | exception Sys_error m -> Result.Error { line = 0; message = m }
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> parse_string ?wire_load ~library text
      | exception Sys_error m -> Result.Error { line = 0; message = m }
      | exception End_of_file ->
          Result.Error { line = 0; message = path ^ ": truncated read" })
