(** Reader/writer for a structural BLIF subset.

    Supports mapped netlists of the kind the paper's MCNC benchmarks come
    in: [.model], [.inputs], [.outputs], [.gate <cell> <pin>=<net> ...]
    and [.end], with [#] comments and [\ ] line continuations.  In each
    [.gate] line the {e last} formal/actual pair is the gate output; the
    remaining pairs are the inputs in declaration order.  Cells are
    resolved against a {!Cell.Library}.

    BLIF carries no capacitance information, so every gate output receives
    the uniform [wire_load] given at parse time. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string :
  ?wire_load:float -> library:Cell.Library.t -> string -> (Netlist.t, error) result

val parse_file :
  ?wire_load:float -> library:Cell.Library.t -> string -> (Netlist.t, error) result
(** Like {!parse_string} on the file's contents.  Malformed input — a
    truncated or syntactically broken file, or an unreadable path — comes
    back as [Error], never as an escaping exception. *)

val to_string : Netlist.t -> string
(** Serialises a netlist back to the same subset (input pins are named
    [i0], [i1], …; the output pin [O]).  [parse_string] of the result
    reproduces the netlist up to gate names. *)

val write_file : Netlist.t -> string -> unit
