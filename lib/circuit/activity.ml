let default_pi_probability _ = 0.5

(* P(out = 1) of a cell given input probabilities, by library name. *)
let output_probability cell_name inputs =
  let p_and = Array.fold_left ( *. ) 1. inputs in
  let p_or = 1. -. Array.fold_left (fun acc p -> acc *. (1. -. p)) 1. inputs in
  let starts_with prefix =
    String.length cell_name >= String.length prefix
    && String.sub cell_name 0 (String.length prefix) = prefix
  in
  if starts_with "inv" then 1. -. inputs.(0)
  else if starts_with "buf" then inputs.(0)
  else if starts_with "nand" then 1. -. p_and
  else if starts_with "nor" then 1. -. p_or
  else if starts_with "and" then p_and
  else if starts_with "or" then p_or
  else if starts_with "xor" && Array.length inputs = 2 then
    (inputs.(0) *. (1. -. inputs.(1))) +. (inputs.(1) *. (1. -. inputs.(0)))
  else if starts_with "aoi21" && Array.length inputs = 3 then
    (* out = not (a*b + c) *)
    let ab = inputs.(0) *. inputs.(1) in
    1. -. (ab +. inputs.(2) -. (ab *. inputs.(2)))
  else if starts_with "oai21" && Array.length inputs = 3 then
    (* out = not ((a + b) * c) *)
    let a_or_b = 1. -. ((1. -. inputs.(0)) *. (1. -. inputs.(1))) in
    1. -. (a_or_b *. inputs.(2))
  else 0.5

let signal_probabilities ?(pi_probability = default_pi_probability) net =
  let n = Netlist.n_gates net in
  let prob = Array.make n 0.5 in
  let node_probability = function
    | Netlist.Pi i -> pi_probability i
    | Netlist.Gate g -> prob.(g)
  in
  Array.iter
    (fun (g : Netlist.gate) ->
      let inputs = Array.map node_probability g.Netlist.fanin in
      prob.(g.Netlist.id) <- output_probability g.Netlist.cell.Cell.name inputs)
    (Netlist.gates net);
  prob

let toggle p = 2. *. p *. (1. -. p)

let switching_activity ?pi_probability net =
  Array.map toggle (signal_probabilities ?pi_probability net)

let pi_activity ?(pi_probability = default_pi_probability) _net i =
  toggle (pi_probability i)

let power_weights ?pi_probability net =
  let activity = switching_activity ?pi_probability net in
  let pi_prob = match pi_probability with Some f -> f | None -> default_pi_probability in
  let net_activity = function
    | Netlist.Pi i -> toggle (pi_prob i)
    | Netlist.Gate g -> activity.(g)
  in
  Array.map
    (fun (c : Netlist.gate) ->
      let driving = Array.fold_left (fun acc f -> acc +. net_activity f) 0. c.Netlist.fanin in
      c.Netlist.cell.Cell.c_in *. driving)
    (Netlist.gates net)

(* Every switched net charges the input capacitance of the pins it drives
   (plus the driving gate's wire load), so the total per-cycle switched
   capacitance is
     sum_g a_g * C_wire_g  +  sum_c S_c * C_in_c * sum_{f in fanin(c)} a_f
   — the second term is exactly [power_weights], keeping this function
   affine in the speed factors. *)
let dynamic_power ?pi_probability net ~sizes =
  let activity = switching_activity ?pi_probability net in
  let weights = power_weights ?pi_probability net in
  let acc = ref 0. in
  Array.iteri
    (fun g a ->
      acc := !acc +. (a *. (Netlist.gate net g).Netlist.wire_load))
    activity;
  Array.iteri (fun c w -> acc := !acc +. (w *. sizes.(c))) weights;
  !acc
