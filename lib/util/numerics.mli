(** Small numeric helpers shared across the solver and timing code. *)

val clamp : lo:float -> hi:float -> float -> float
(** [clamp ~lo ~hi x] projects [x] onto [[lo, hi]]. *)

val approx_eq : ?rtol:float -> ?atol:float -> float -> float -> bool
(** [approx_eq a b] holds when [|a - b| <= atol + rtol * max |a| |b|].
    Defaults: [rtol = 1e-9], [atol = 1e-12]. *)

val linspace : float -> float -> int -> float array
(** [linspace lo hi n] is [n] evenly spaced points from [lo] to [hi]
    inclusive; requires [n >= 2]. *)

val fd_gradient :
  ?h:float ->
  ?lo:float array ->
  ?hi:float array ->
  (float array -> float) ->
  float array ->
  float array
(** Central finite-difference gradient, used only to cross-check analytic
    derivatives in tests and the NLP derivative checker.  With [lo]/[hi],
    the sample points are clamped into the box, so a coordinate at an
    active bound is differenced one-sidedly ({m O(h)} instead of
    {m O(h^2)}, but never evaluating [f] outside its domain); a
    coordinate whose box pinches to a point gets slope [0.].  Without
    bounds the classic symmetric stencil is used unchanged.  Raises
    [Invalid_argument] on a bound-vector dimension mismatch. *)

val dot : float array -> float array -> float
val norm2 : float array -> float
val norm_inf : float array -> float
val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs [y <- a*x + y] in place. *)

val sum : float array -> float
(** Kahan-compensated sum. *)
