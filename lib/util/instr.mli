(** Lightweight instrumentation: named counters and monotonic-clock
    timers with zero-cost-when-disabled semantics.

    Counters and timers are interned by name in a global registry at
    module initialisation time ([let c = Instr.counter "ssta.analyze"]
    at top level), so the hot path touches no hash table.  While
    instrumentation is disabled (the default) {!incr}, {!add} and
    {!time} reduce to a single load-and-branch; when enabled they update
    atomics, so they are safe to call from pool worker domains (see
    {!Pool}).

    Timers use the process monotonic clock ([CLOCK_MONOTONIC], via
    bechamel's stub), not [Sys.time]: CPU time sums over domains and
    would hide any parallel speedup. *)

(** {1 Enabling} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zeroes every registered counter and timer (registration survives). *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Interns (or retrieves) the counter named [name].  Names are
    conventionally dot-separated, [subsystem.event]. *)

val incr : counter -> unit
val add : counter -> int -> unit

val count : counter -> int
(** Current value (0 while disabled unless previously enabled). *)

(** {1 Timers} *)

type timer

val timer : string -> timer
(** Interns (or retrieves) the timer named [name]. *)

val time : timer -> (unit -> 'a) -> 'a
(** [time t f] runs [f ()], attributing its wall-clock duration — and
    the calling domain's minor-heap / promoted words allocated during it
    ([Gc.counters] deltas) — to [t], counting one call; or just runs
    [f ()] when disabled.  Everything is recorded even if [f] raises.
    The allocation bookkeeping itself costs a few words per enabled
    call, so a section that allocates nothing reports a small constant
    rather than exactly zero when timers nest. *)

val now_ns : unit -> int
(** Monotonic clock reading in nanoseconds (works regardless of
    {!enabled}); useful for ad-hoc wall-clock measurement. *)

(** {1 Histograms}

    Fixed log-spaced latency histograms (bucket upper bounds from 100 µs
    to 3 s plus an overflow bucket), one atomic increment per
    observation.  The timing-service daemon ({!Serve.Server}) keeps one
    per request kind. *)

type histogram

val histogram : string -> histogram
(** Interns (or retrieves) the histogram named [name]. *)

val observe_ns : histogram -> int -> unit
(** Records one duration in nanoseconds (no-op while disabled). *)

val observations : histogram -> int
(** Observations recorded so far. *)

(** {1 Reporting} *)

type timed = {
  calls : int;
  seconds : float;
  minor_words : int;  (** minor-heap words allocated inside the section *)
  promoted_words : int;  (** words promoted to the major heap inside it *)
}

type hist = {
  observations : int;
  sum_seconds : float;
  buckets : (float * int) list;
      (** cumulative-style [(upper_bound_seconds, count)] per bucket, the
          last bound [infinity]; counts are per-bucket, not cumulative *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  timers : (string * timed) list;  (** sorted by name *)
  histograms : (string * hist) list;  (** sorted by name *)
}

val snapshot : ?all:bool -> unit -> snapshot
(** Registered counters, timers and histograms with non-zero activity.
    [~all:true] also includes zero-valued entries, so a profile dump
    records every registered instrument — a counter that {e stayed} zero
    (no recoveries engaged, no requests shed) is evidence, not noise. *)

val to_json : snapshot -> string
(** The snapshot as a JSON object:
    [{"counters": {name: count, ...},
      "timers": {name: {"calls": n, "seconds": s,
                        "minor_words": w, "promoted_words": p}, ...},
      "histograms": {name: {"observations": n, "sum_seconds": s,
                            "buckets": [{"le": b, "count": c}, ...]}, ...}}].
    The overflow bucket's bound renders as the string ["inf"]. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable two-column rendering. *)
