(** Special functions for statistical delay calculation.

    Double-precision error function and standard-normal distribution
    functions.  The error function follows W. J. Cody's rational Chebyshev
    approximation (as in netlib's CALERF), accurate to about [1e-16]
    relative error; the inverse normal CDF uses Acklam's rational
    approximation refined with one Halley step, giving close to full double
    precision. *)

val erf : float -> float
(** [erf x] is the error function
    {m \frac{2}{\sqrt\pi}\int_0^x e^{-t^2}\,dt}. *)

val erfc : float -> float
(** [erfc x] is the complementary error function [1. -. erf x], computed
    without cancellation for large [x]. *)

val normal_pdf : float -> float
(** [normal_pdf x] is the standard normal density
    {m \varphi(x) = e^{-x^2/2}/\sqrt{2\pi}}. *)

val normal_cdf : float -> float
(** [normal_cdf x] is the standard normal distribution function
    {m \Phi(x)}, the paper's (suitably normalised) [phi] of equation 11. *)

val normal_ppf : float -> float
(** [normal_ppf p] is the quantile function, the inverse of
    {!normal_cdf}.  Requires [0. < p && p < 1.]; raises
    [Invalid_argument] otherwise. *)

val log_normal_cdf : float -> float
(** [log_normal_cdf x] is [log (normal_cdf x)] computed stably in the far
    left tail (used for log-yield computations). *)

val sqrt2 : float
(** [sqrt 2.] *)

val erfc_pos : float -> float
(** [erfc_pos x] is [erfc x] for [x >= 0.] — the positive-branch Cody
    kernel that {!erfc} dispatches to on either side of zero.  Exposed
    for callers that need both normal tails [Phi alpha] and
    [Phi (-. alpha)] of the same argument: by the sign symmetry of
    {!erfc}, both equal [0.5 *. e] and [0.5 *. (2. -. e)] for the single
    kernel value [e = erfc_pos (abs_float (alpha /. sqrt2))],
    bit-identically to two independent {!normal_cdf} calls.  The
    statistical-max kernels (Statdelay.Clark) use this to evaluate one
    rational approximation per max instead of two. *)

val inv_sqrt_2pi : float
(** [1. /. sqrt (2. *. pi)] *)
