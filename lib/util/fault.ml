type kind = Nan_value | Inf_value | Nan_gradient | Inf_gradient | Perturb of float

type trigger = At of int | First of int | Always

type site = { kind : kind; component : int option; trigger : trigger }

type fired = { eval : int; component : int; kind : kind }

type plan = {
  seed : int;
  sites : site array;
  hits : int array;  (* per-site fire count, for First *)
  mutable next_eval : int;
  mutable log : fired list;
}

let plan ?(seed = 0) sites =
  let sites = Array.of_list sites in
  { seed; sites; hits = Array.make (Array.length sites) 0; next_eval = 0; log = [] }

let evaluations p = p.next_eval

let log p = List.rev p.log

let pp_kind ppf = function
  | Nan_value -> Format.pp_print_string ppf "nan-value"
  | Inf_value -> Format.pp_print_string ppf "inf-value"
  | Nan_gradient -> Format.pp_print_string ppf "nan-gradient"
  | Inf_gradient -> Format.pp_print_string ppf "inf-gradient"
  | Perturb a -> Format.fprintf ppf "perturb(%g)" a

(* First matching armed site wins; its hit counter advances. *)
let select p ~eval ~component =
  let n = Array.length p.sites in
  let rec go i =
    if i >= n then None
    else
      let s = p.sites.(i) in
      let component_matches =
        match s.component with None -> true | Some c -> c = component
      in
      let armed =
        match s.trigger with
        | At e -> e = eval
        | First k -> p.hits.(i) < k
        | Always -> true
      in
      if component_matches && armed then begin
        p.hits.(i) <- p.hits.(i) + 1;
        Some s.kind
      end
      else go (i + 1)
  in
  go 0

let corrupt p ~eval kind (v, g) =
  (* All randomness is a pure function of (seed, eval): the Mcsta keyed
     discipline, so injections replay identically run to run. *)
  let rng () = Rng.keyed p.seed ~key:eval in
  let with_entry poison =
    let g = Array.copy g in
    if Array.length g > 0 then g.(Rng.int (rng ()) (Array.length g)) <- poison;
    (v, g)
  in
  match kind with
  | Nan_value -> (Float.nan, g)
  | Inf_value -> (Float.infinity, g)
  | Nan_gradient -> with_entry Float.nan
  | Inf_gradient -> with_entry Float.infinity
  | Perturb amp ->
      let scale = 1. +. (amp *. Rng.normal (rng ())) in
      (v *. scale, Array.map (fun gi -> gi *. scale) g)

let wrap p ~component f x =
  let eval = p.next_eval in
  p.next_eval <- eval + 1;
  let result = f x in
  match select p ~eval ~component with
  | None -> result
  | Some kind ->
      p.log <- { eval; component; kind } :: p.log;
      corrupt p ~eval kind result
