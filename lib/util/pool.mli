(** Reusable domain pool for data-parallel index loops (OCaml 5).

    A pool spawns its worker domains once ({!create}) and reuses them for
    every subsequent {!parallel_for}, so the per-call cost is a mutex
    broadcast rather than a domain spawn (~ tens of microseconds versus
    milliseconds).  The calling domain participates in the work, so a
    pool of size [j] applies [j] domains to each loop.

    {2 Determinism contract}

    [parallel_for] makes {e no} guarantee about which domain executes
    which index or in which order — only that [body i] runs exactly once
    for every [0 <= i < n] before the call returns.  Callers obtain
    results that are bit-identical to a serial [for] loop by obeying two
    rules, which every use in this codebase follows:

    - [body i] writes only to slot [i] of pre-allocated output arrays
      (disjoint writes, no shared accumulation);
    - any reduction over the slots (sums of adjoints, folds of maxima) is
      performed by the caller {e after} the loop, serially, in a fixed
      order.

    Under those rules every floating-point operation sees the same
    operands in the same order regardless of the number of domains, so
    parallel results are bit-identical to serial ones.

    Nested [parallel_for] calls (from inside a [body]) are not
    supported. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] total
    including the caller).  [jobs] defaults to
    [Domain.recommended_domain_count ()].  Raises [Invalid_argument] if
    [jobs < 1].  A pool of size 1 spawns nothing and runs every loop
    inline. *)

val size : t -> int
(** Number of domains the pool applies to a loop, caller included. *)

val parallel_for : ?grain:int -> ?align:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n body] runs [body i] once for each
    [0 <= i < n], distributing chunks of indices over the pool's domains
    through a shared work queue.  [grain] (default 1) is the minimum
    chunk size: loops with [n < 2 * grain] — too small to amortise the
    wake-up — run inline on the caller.  [align] (default 1) rounds the
    chunk size up to a multiple of [align], so every chunk boundary
    falls on an [align]-index stride: callers whose slot [i] writes land
    [align] to a cache line (e.g. the interleaved timing-arena planes,
    8 mu/var pairs per 128 bytes) pass [~align:8] and no two domains
    ever write the same line.  If any [body] raises, the remaining
    chunks are abandoned, all domains quiesce, and the first exception
    is re-raised on the caller. *)

val shutdown : t -> unit
(** Joins the worker domains.  Idempotent.  Using the pool afterwards
    raises [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    whether [f] returns or raises. *)
