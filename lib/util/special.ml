(* Cody-style rational approximations for erf/erfc (cf. netlib CALERF) and
   Acklam's inverse normal CDF with a Halley refinement. *)

let pi = 4. *. atan 1.
let sqrt2 = sqrt 2.
let inv_sqrt_2pi = 1. /. sqrt (2. *. pi)
let inv_sqrt_pi = 1. /. sqrt pi

(* The hot functions below ([erf_small] through [normal_cdf]) carry
   [@inline]: the statistical-max kernels (Statdelay.Clark) call them
   per gate per evaluation, and in classic (non-flambda) mode the
   cross-module call boundary would otherwise box the float argument
   and result.  Inlined, the whole pdf/cdf chain compiles to
   straight-line unboxed float code. *)

(* |x| <= 0.46875 *)
let[@inline] erf_small x =
  let a0 = 3.16112374387056560e+00
  and a1 = 1.13864154151050156e+02
  and a2 = 3.77485237685302021e+02
  and a3 = 3.20937758913846947e+03
  and a4 = 1.85777706184603153e-01 in
  let b0 = 2.36012909523441209e+01
  and b1 = 2.44024637934444173e+02
  and b2 = 1.28261652607737228e+03
  and b3 = 2.84423683343917062e+03 in
  let z = x *. x in
  let num = ((((a4 *. z +. a0) *. z +. a1) *. z +. a2) *. z +. a3) in
  let den = ((((z +. b0) *. z +. b1) *. z +. b2) *. z +. b3) in
  x *. num /. den

(* 0.46875 <= x <= 4, returns erfc x for x >= 0 *)
let[@inline] erfc_mid x =
  let c0 = 5.64188496988670089e-01
  and c1 = 8.88314979438837594e+00
  and c2 = 6.61191906371416295e+01
  and c3 = 2.98635138197400131e+02
  and c4 = 8.81952221241769090e+02
  and c5 = 1.71204761263407058e+03
  and c6 = 2.05107837782607147e+03
  and c7 = 1.23033935479799725e+03
  and c8 = 2.15311535474403846e-08 in
  let d0 = 1.57449261107098347e+01
  and d1 = 1.17693950891312499e+02
  and d2 = 5.37181101862009858e+02
  and d3 = 1.62138957456669019e+03
  and d4 = 3.29079923573345963e+03
  and d5 = 4.36261909014324716e+03
  and d6 = 3.43936767414372164e+03
  and d7 = 1.23033935480374942e+03 in
  (* Straight-line Horner chains: the exact left-fold the previous
     array-literal formulation performed, without allocating the
     coefficient arrays and fold closure per call.  Bit-identical. *)
  let num =
    ((((((((c8 *. x) +. c0) *. x +. c1) *. x +. c2) *. x +. c3) *. x +. c4)
      *. x +. c5)
     *. x +. c6)
    *. x +. c7
  in
  let den =
    ((((((((1. *. x) +. d0) *. x +. d1) *. x +. d2) *. x +. d3) *. x +. d4)
      *. x +. d5)
     *. x +. d6)
    *. x +. d7
  in
  exp (-.x *. x) *. num /. den

(* x > 4, returns erfc x *)
let[@inline] erfc_large x =
  let p0 = 3.05326634961232344e-01
  and p1 = 3.60344899949804439e-01
  and p2 = 1.25781726111229246e-01
  and p3 = 1.60837851487422766e-02
  and p4 = 6.58749161529837803e-04
  and p5 = 1.63153871373020978e-02 in
  let q0 = 2.56852019228982242e+00
  and q1 = 1.87295284992346047e+00
  and q2 = 5.27905102951428412e-01
  and q3 = 6.05183413124413191e-02
  and q4 = 2.33520497626869185e-03 in
  if x > 26.6 then 0.
  else
    let z = 1. /. (x *. x) in
    let num = ((((p5 *. z +. p0) *. z +. p1) *. z +. p2) *. z +. p3) *. z +. p4 in
    let den = ((((z +. q0) *. z +. q1) *. z +. q2) *. z +. q3) *. z +. q4 in
    let r = z *. num /. den in
    exp (-.x *. x) /. x *. (inv_sqrt_pi -. r)

let[@inline] erfc_pos x =
  if x <= 0.46875 then 1. -. erf_small x
  else if x <= 4. then erfc_mid x
  else erfc_large x

let[@inline] erfc x = if x >= 0. then erfc_pos x else 2. -. erfc_pos (-.x)

let erf x =
  let ax = abs_float x in
  if ax <= 0.46875 then erf_small x
  else
    let e = 1. -. erfc_pos ax in
    if x >= 0. then e else -.e

let[@inline] normal_pdf x = inv_sqrt_2pi *. exp (-0.5 *. x *. x)
let[@inline] normal_cdf x = 0.5 *. erfc (-.x /. sqrt2)

(* Stable log Phi(x): for x < -8 use the asymptotic expansion of the Mills
   ratio, otherwise log of the direct value. *)
let log_normal_cdf x =
  if x > -8. then log (normal_cdf x)
  else
    let z = -.x in
    let z2 = z *. z in
    (* Phi(x) ~ phi(z)/z * (1 - 1/z^2 + 3/z^4 - 15/z^6) *)
    let corr = 1. -. (1. /. z2) +. (3. /. (z2 *. z2)) -. (15. /. (z2 *. z2 *. z2)) in
    (-0.5 *. z2) -. log (z /. inv_sqrt_2pi) +. log corr

(* Acklam's rational approximation to the inverse normal CDF. *)
let ppf_estimate p =
  let a1 = -3.969683028665376e+01
  and a2 = 2.209460984245205e+02
  and a3 = -2.759285104469687e+02
  and a4 = 1.383577518672690e+02
  and a5 = -3.066479806614716e+01
  and a6 = 2.506628277459239e+00 in
  let b1 = -5.447609879822406e+01
  and b2 = 1.615858368580409e+02
  and b3 = -1.556989798598866e+02
  and b4 = 6.680131188771972e+01
  and b5 = -1.328068155288572e+01 in
  let c1 = -7.784894002430293e-03
  and c2 = -3.223964580411365e-01
  and c3 = -2.400758277161838e+00
  and c4 = -2.549732539343734e+00
  and c5 = 4.374664141464968e+00
  and c6 = 2.938163982698783e+00 in
  let d1 = 7.784695709041462e-03
  and d2 = 3.224671290700398e-01
  and d3 = 2.445134137142996e+00
  and d4 = 3.754408661907416e+00 in
  let p_low = 0.02425 in
  let p_high = 1. -. p_low in
  if p < p_low then
    let q = sqrt (-2. *. log p) in
    (((((c1 *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5) *. q +. c6)
    /. ((((d1 *. q +. d2) *. q +. d3) *. q +. d4) *. q +. 1.)
  else if p <= p_high then
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a1 *. r +. a2) *. r +. a3) *. r +. a4) *. r +. a5) *. r +. a6)
    *. q
    /. (((((b1 *. r +. b2) *. r +. b3) *. r +. b4) *. r +. b5) *. r +. 1.)
  else
    let q = sqrt (-2. *. log (1. -. p)) in
    -.((((((c1 *. q +. c2) *. q +. c3) *. q +. c4) *. q +. c5) *. q +. c6)
       /. ((((d1 *. q +. d2) *. q +. d3) *. q +. d4) *. q +. 1.))

let normal_ppf p =
  if not (p > 0. && p < 1.) then
    invalid_arg "Special.normal_ppf: p must lie strictly within (0, 1)";
  let x = ppf_estimate p in
  (* One Halley step: e = Phi(x) - p; x <- x - e/(phi(x) + e*x/2) view. *)
  let e = normal_cdf x -. p in
  let u = e /. normal_pdf x in
  x -. (u /. (1. +. (x *. u /. 2.)))
