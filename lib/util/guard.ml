let is_finite x = x -. x = 0.

let first_nonfinite a =
  let n = Array.length a in
  let rec go i = if i >= n then None else if is_finite a.(i) then go (i + 1) else Some i in
  go 0

let all_finite a = first_nonfinite a = None

type stop = Deadline | Eval_budget

let pp_stop ppf = function
  | Deadline -> Format.pp_print_string ppf "deadline"
  | Eval_budget -> Format.pp_print_string ppf "evaluation budget"

exception Out_of_budget of stop

(* Deadlines are measured on the process monotonic clock (Instr.now_ns,
   CLOCK_MONOTONIC), never the wall clock: an NTP step or a suspended
   laptop must not expire — or resurrect — a budget.  The clock source
   is injectable per budget so tests can drive time by hand. *)
let monotonic_now = Instr.now_ns

type budget = {
  deadline_ns : int option;  (* absolute monotonic-clock instant *)
  max_evals : int option;
  mutable ticked : int;
  now : unit -> int;  (* clock source; [monotonic_now] unless injected *)
}

let budget ?(now = monotonic_now) ?deadline ?max_evals () =
  (match deadline with
  | Some d when not (is_finite d) || d < 0. ->
      invalid_arg "Guard.budget: deadline must be finite and non-negative"
  | _ -> ());
  (match max_evals with
  | Some m when m < 0 -> invalid_arg "Guard.budget: max_evals must be non-negative"
  | _ -> ());
  {
    deadline_ns = Option.map (fun d -> now () + int_of_float (d *. 1e9)) deadline;
    max_evals;
    ticked = 0;
    now;
  }

let exhausted b =
  match b.max_evals with
  | Some m when b.ticked >= m -> Some Eval_budget
  | _ -> (
      match b.deadline_ns with
      | Some t when b.now () > t -> Some Deadline
      | _ -> None)

let tick b =
  match exhausted b with
  | Some stop -> raise (Out_of_budget stop)
  | None -> b.ticked <- b.ticked + 1

let used b = b.ticked

let remaining_seconds b =
  Option.map
    (fun t -> Float.max 0. (float_of_int (t - b.now ()) /. 1e9))
    b.deadline_ns

let remaining_evals b = Option.map (fun m -> max 0 (m - b.ticked)) b.max_evals
