type counter = { cname : string; value : int Atomic.t }

type timer = {
  tname : string;
  calls : int Atomic.t;
  ns : int Atomic.t;
  minor_w : int Atomic.t;  (* minor-heap words allocated inside timed sections *)
  promoted_w : int Atomic.t;  (* words promoted to the major heap inside them *)
}

(* Log-spaced latency buckets shared by every histogram: upper bounds in
   seconds, the last bucket catching everything beyond.  Fixed bounds
   keep observation to one array index + atomic increment and make
   histograms mergeable across processes. *)
let bucket_bounds =
  [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 1e-1; 3e-1; 1.; 3. |]

type histogram = {
  hname : string;
  observations : int Atomic.t;
  sum_ns : int Atomic.t;
  buckets : int Atomic.t array;  (* length bucket_bounds + 1 (overflow) *)
}

(* The registry is touched only at module-initialisation time (interning)
   and when reporting, never on the instrumented hot path. *)
let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 16
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16
let on = Atomic.make false

let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

let intern table make name =
  Mutex.lock registry_lock;
  let v =
    match Hashtbl.find_opt table name with
    | Some v -> v
    | None ->
        let v = make name in
        Hashtbl.add table name v;
        v
  in
  Mutex.unlock registry_lock;
  v

let counter name =
  intern counters (fun cname -> { cname; value = Atomic.make 0 }) name

let timer name =
  intern timers
    (fun tname ->
      {
        tname;
        calls = Atomic.make 0;
        ns = Atomic.make 0;
        minor_w = Atomic.make 0;
        promoted_w = Atomic.make 0;
      })
    name

let histogram name =
  intern histograms
    (fun hname ->
      {
        hname;
        observations = Atomic.make 0;
        sum_ns = Atomic.make 0;
        buckets =
          Array.init (Array.length bucket_bounds + 1) (fun _ -> Atomic.make 0);
      })
    name

let incr c = if Atomic.get on then Atomic.incr c.value
let add c k = if Atomic.get on then ignore (Atomic.fetch_and_add c.value k)
let count c = Atomic.get c.value

let observe_ns h ns =
  if Atomic.get on then begin
    let s = float_of_int ns *. 1e-9 in
    let n = Array.length bucket_bounds in
    let rec slot i = if i >= n || s <= bucket_bounds.(i) then i else slot (i + 1) in
    Atomic.incr h.buckets.(slot 0);
    Atomic.incr h.observations;
    ignore (Atomic.fetch_and_add h.sum_ns ns)
  end

let observations h = Atomic.get h.observations

(* CLOCK_MONOTONIC via bechamel's tiny stub library (the only C binding
   already in the build); [Sys.time] would sum CPU time over domains. *)
let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Allocation is tracked per timed section through [Gc.counters] deltas
   (cheap: reads the current domain's allocation pointers, no heap
   walk).  The bookkeeping itself allocates a few words per call (the
   counters tuple and closure), so enabled-mode figures carry a small
   constant per-call overhead; with instrumentation disabled the hot
   path is still a single load-and-branch. *)
let time t f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_ns () in
    let m0, p0, _ = Gc.counters () in
    Fun.protect
      ~finally:(fun () ->
        let m1, p1, _ = Gc.counters () in
        Atomic.incr t.calls;
        ignore (Atomic.fetch_and_add t.ns (now_ns () - t0));
        ignore (Atomic.fetch_and_add t.minor_w (int_of_float (m1 -. m0)));
        ignore (Atomic.fetch_and_add t.promoted_w (int_of_float (p1 -. p0))))
      f
  end

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
  Hashtbl.iter
    (fun _ t ->
      Atomic.set t.calls 0;
      Atomic.set t.ns 0;
      Atomic.set t.minor_w 0;
      Atomic.set t.promoted_w 0)
    timers;
  Hashtbl.iter
    (fun _ h ->
      Atomic.set h.observations 0;
      Atomic.set h.sum_ns 0;
      Array.iter (fun b -> Atomic.set b 0) h.buckets)
    histograms;
  Mutex.unlock registry_lock

type timed = {
  calls : int;
  seconds : float;
  minor_words : int;
  promoted_words : int;
}

type hist = {
  observations : int;
  sum_seconds : float;
  buckets : (float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  timers : (string * timed) list;
  histograms : (string * hist) list;
}

let snapshot ?(all = false) () =
  Mutex.lock registry_lock;
  let cs =
    Hashtbl.fold
      (fun name c acc ->
        let v = Atomic.get c.value in
        if v = 0 && not all then acc else (name, v) :: acc)
      counters []
  in
  let ts =
    Hashtbl.fold
      (fun name (t : timer) acc ->
        let calls = Atomic.get t.calls in
        if calls = 0 && not all then acc
        else
          ( name,
            {
              calls;
              seconds = float_of_int (Atomic.get t.ns) *. 1e-9;
              minor_words = Atomic.get t.minor_w;
              promoted_words = Atomic.get t.promoted_w;
            } )
          :: acc)
      timers []
  in
  let hs =
    Hashtbl.fold
      (fun name (h : histogram) acc ->
        let observations = Atomic.get h.observations in
        if observations = 0 && not all then acc
        else
          ( name,
            {
              observations;
              sum_seconds = float_of_int (Atomic.get h.sum_ns) *. 1e-9;
              buckets =
                List.init (Array.length h.buckets) (fun i ->
                    ( (if i < Array.length bucket_bounds then bucket_bounds.(i)
                       else Float.infinity),
                      Atomic.get h.buckets.(i) ));
            } )
          :: acc)
      histograms []
  in
  Mutex.unlock registry_lock;
  {
    counters = List.sort (fun (a, _) (b, _) -> compare a b) cs;
    timers = List.sort (fun (a, _) (b, _) -> compare a b) ts;
    histograms = List.sort (fun (a, _) (b, _) -> compare a b) hs;
  }

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json s =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\n    \"%s\": %d" (json_escape name) v))
    s.counters;
  if s.counters <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "},\n  \"timers\": {";
  List.iteri
    (fun i (name, t) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n    \"%s\": {\"calls\": %d, \"seconds\": %.9f, \"minor_words\": \
            %d, \"promoted_words\": %d}"
           (json_escape name) t.calls t.seconds t.minor_words t.promoted_words))
    s.timers;
  if s.timers <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "},\n  \"histograms\": {";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\n    \"%s\": {\"observations\": %d, \"sum_seconds\": %.9f, \"buckets\": ["
           (json_escape name) h.observations h.sum_seconds);
      List.iteri
        (fun j (le, count) ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (if Float.is_integer le || le = Float.infinity then
               Printf.sprintf "{\"le\": %s, \"count\": %d}"
                 (if le = Float.infinity then "\"inf\"" else Printf.sprintf "%g" le)
                 count
             else Printf.sprintf "{\"le\": %g, \"count\": %d}" le count))
        h.buckets;
      Buffer.add_string b "]}")
    s.histograms;
  if s.histograms <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "}\n}\n";
  Buffer.contents b

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %12d@," name v) s.counters;
  List.iter
    (fun (name, t) ->
      Format.fprintf ppf "%-32s %12d calls %10.3f ms %10.0f w/call@," name
        t.calls (t.seconds *. 1e3)
        (if t.calls = 0 then 0.
         else float_of_int t.minor_words /. float_of_int t.calls))
    s.timers;
  List.iter
    (fun (name, h) ->
      Format.fprintf ppf "%-32s %12d obs   %10.3f ms mean@," name h.observations
        (if h.observations = 0 then 0.
         else 1e3 *. h.sum_seconds /. float_of_int h.observations))
    s.histograms;
  Format.fprintf ppf "@]"
