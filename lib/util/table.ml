type align = Left | Right

type row = Cells of string array | Separator

type t = {
  header : string array;
  mutable rows : row list; (* reversed *)
  aligns : align array;
}

let create ~header =
  let header = Array.of_list header in
  { header; rows = []; aligns = Array.make (Array.length header) Left }

let set_align t col a =
  if col < 0 || col >= Array.length t.aligns then
    invalid_arg "Table.set_align: column out of range";
  t.aligns.(col) <- a

let add_row t cells =
  let n = Array.length t.header in
  let cells = Array.of_list cells in
  let k = Array.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than columns";
  let padded = Array.make n "" in
  Array.blit cells 0 padded 0 k;
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let to_string t =
  let rows = List.rev t.rows in
  let n = Array.length t.header in
  let widths = Array.map String.length t.header in
  List.iter
    (function
      | Separator -> ()
      | Cells cs ->
          Array.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cs)
    rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = width - String.length s in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
  in
  let emit_cells cs =
    Buffer.add_string buf "| ";
    for i = 0 to n - 1 do
      Buffer.add_string buf (pad t.aligns.(i) widths.(i) cs.(i));
      Buffer.add_string buf (if i = n - 1 then " |" else " | ")
    done;
    Buffer.add_char buf '\n'
  in
  let emit_rule () =
    Buffer.add_char buf '+';
    for i = 0 to n - 1 do
      Buffer.add_string buf (String.make (widths.(i) + 2) '-');
      Buffer.add_char buf '+'
    done;
    Buffer.add_char buf '\n'
  in
  emit_rule ();
  emit_cells t.header;
  emit_rule ();
  List.iter (function Separator -> emit_rule () | Cells cs -> emit_cells cs) rows;
  emit_rule ();
  Buffer.contents buf

let print t = print_string (to_string t)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
