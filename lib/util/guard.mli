(** Numerical-sanity primitives and evaluation budgets for the solver
    resilience layer.

    The NLP stack promises that every solve either succeeds, degrades
    gracefully, or fails with a structured diagnosis.  This module holds
    the two low-level ingredients of that promise:

    - {e finiteness checks} ({!is_finite}, {!first_nonfinite}) used by the
      guarded problem wrapper ({!Nlp.Problem.guarded}) to detect NaN/Inf
      leaking out of objective, constraint or gradient evaluations;
    - {e budgets} ({!budget}, {!tick}) bounding a solve by wall-clock
      deadline and/or a maximum number of component evaluations, so a
      runaway solve returns the best iterate seen instead of spinning.

    Budgets are mutable tokens threaded through the evaluation closures;
    {!tick} raises {!Out_of_budget} at the first evaluation past the
    limit, and the solvers ({!Nlp.Lbfgs}, {!Nlp.Newton}, {!Nlp.Auglag})
    catch it and return their best-so-far iterate with a [Deadline]
    termination reason.

    Deadlines are accounted on the process {e monotonic} clock
    ({!monotonic_now}, i.e. [CLOCK_MONOTONIC]), never
    [Unix.gettimeofday]: a wall-clock step (NTP slew, suspend/resume,
    manual date change) can neither expire a budget early nor extend
    it.  The clock source is injectable per budget ([?now]) so tests
    can drive time deterministically. *)

val is_finite : float -> bool
(** [false] exactly for NaN and the two infinities. *)

val first_nonfinite : float array -> int option
(** Index of the first NaN/Inf entry, if any. *)

val all_finite : float array -> bool

(** {1 Budgets} *)

type stop =
  | Deadline  (** the wall-clock deadline passed *)
  | Eval_budget  (** the evaluation allowance is spent *)

val pp_stop : Format.formatter -> stop -> unit

exception Out_of_budget of stop

type budget
(** Mutable budget token.  A budget with neither limit never stops. *)

val monotonic_now : unit -> int
(** The default clock source: {!Instr.now_ns} ([CLOCK_MONOTONIC],
    nanoseconds).  Exposed so callers can mix their own readings with
    budget arithmetic on the same time base. *)

val budget :
  ?now:(unit -> int) -> ?deadline:float -> ?max_evals:int -> unit -> budget
(** [budget ?deadline ?max_evals ()] starts the clock now: [deadline]
    is in seconds from this call, [max_evals] bounds the number of
    successful {!tick}s.  [now] (default {!monotonic_now}) is the clock
    the budget reads at creation and at every probe — inject a fake for
    deterministic deadline tests; production callers should leave the
    monotonic default so budgets survive wall-clock steps. *)

val tick : budget -> unit
(** Accounts for one evaluation.  Raises {!Out_of_budget} — {e before}
    counting — once the deadline has passed or the allowance is spent. *)

val used : budget -> int
(** Evaluations successfully ticked so far. *)

val exhausted : budget -> stop option
(** Non-raising probe of the current state. *)

val remaining_seconds : budget -> float option
(** Seconds left until the deadline ([None] when no deadline is set);
    never negative. *)

val remaining_evals : budget -> int option
(** Evaluations left ([None] when unlimited); never negative. *)
