(** Deterministic pseudo-random number generation.

    A self-contained xoshiro256++ generator seeded through splitmix64, so
    that Monte Carlo experiments are reproducible across runs and machines
    independently of the OCaml [Random] module's internals. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed; the state is
    expanded with splitmix64 so that small nearby seeds give independent
    streams. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream, advancing [t].
    Used to hand independent streams to parallel experiments. *)

val keyed : int -> key:int -> t
(** [keyed seed ~key] is the [key]-th stream of the run identified by
    [seed]: a pure function of [(seed, key)], with no shared state between
    streams.  Unlike {!split} (which advances the parent and therefore
    depends on creation order), keyed streams can be created in any order
    — or concurrently on worker domains — and always produce the same
    draws.  This is the seeding discipline behind the deterministic
    batched Monte Carlo engine ({!Sta.Mcsta}): one stream per gate, so
    results are independent of batch size and domain count. *)

val copy : t -> t
(** [copy t] is an independent clone of the current state. *)

val uint64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [[0, 1)] with 53-bit resolution. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform on [[lo, hi)]. *)

val int : t -> int -> int
(** [int t n] is uniform on [[0, n)]; requires [n > 0]. *)

val normal : t -> float
(** Standard normal draw (Marsaglia polar method). *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal draw with the given mean and standard deviation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
