(* Spawn-once domain pool with a chunked work queue.

   One job is posted at a time.  Workers sleep on a condition variable
   between jobs; posting a job bumps [generation] and broadcasts.  Each
   participant (workers and the caller) claims chunks of indices with a
   fetch-and-add on the job's [next] counter, so load balancing is
   dynamic while every index is still executed exactly once.

   Completion is tracked by the job itself, not the pool: [next >= n]
   means no unclaimed work remains and [outstanding = 0] means no claimed
   chunk is still running.  Because each job is a fresh record, a worker
   that wakes late simply finds the old job drained and goes back to
   sleep — it can never touch the fields of a newer job through a stale
   reference. *)

type job = {
  body : int -> unit;
  n : int;
  chunk : int;
  next : int Atomic.t;  (* first unclaimed index *)
  outstanding : int Atomic.t;  (* participants inside a claimed chunk *)
  error : exn option Atomic.t;  (* first exception raised by a body *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  mutable generation : int;
  mutable current : job option;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

(* Claim and run chunks until the queue is drained or a body failed.
   [outstanding] is raised *before* the claim so the caller can never
   observe "queue drained, nothing outstanding" while a chunk is being
   claimed. *)
let rec claim (j : job) =
  if Atomic.get j.error = None then begin
    Atomic.incr j.outstanding;
    let lo = Atomic.fetch_and_add j.next j.chunk in
    if lo >= j.n then ignore (Atomic.fetch_and_add j.outstanding (-1))
    else begin
      let hi = min j.n (lo + j.chunk) in
      (try
         for i = lo to hi - 1 do
           j.body i
         done
       with e -> ignore (Atomic.compare_and_set j.error None (Some e)));
      ignore (Atomic.fetch_and_add j.outstanding (-1));
      claim j
    end
  end

let rec worker t seen =
  Mutex.lock t.mutex;
  while (not t.stopped) && t.generation = seen do
    Condition.wait t.work t.mutex
  done;
  let gen = t.generation and job = t.current and stop = t.stopped in
  Mutex.unlock t.mutex;
  if not stop then begin
    (match job with Some j -> claim j | None -> ());
    worker t gen
  end

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> Domain.recommended_domain_count ()
    | Some j ->
        if j < 1 then invalid_arg "Pool.create: jobs must be >= 1";
        j
  in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      generation = 0;
      current = None;
      stopped = false;
      domains = [];
    }
  in
  if jobs > 1 then
    t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t 0));
  t

let size t = t.jobs

let run_serial n body =
  for i = 0 to n - 1 do
    body i
  done

let wait_done (j : job) =
  while
    not
      ((Atomic.get j.next >= j.n || Atomic.get j.error <> None)
      && Atomic.get j.outstanding = 0)
  do
    Domain.cpu_relax ()
  done

let parallel_for ?(grain = 1) ?(align = 1) t ~n body =
  if grain < 1 then invalid_arg "Pool.parallel_for: grain must be >= 1";
  if align < 1 then invalid_arg "Pool.parallel_for: align must be >= 1";
  if n > 0 then
    if t.jobs = 1 || n < 2 * grain then run_serial n body
    else begin
      (* Aim for a few chunks per domain so the fetch-and-add queue can
         rebalance uneven chunk costs, but never below [grain].  Rounding
         the chunk up to a multiple of [align] keeps every chunk boundary
         (all are multiples of [chunk], since claims start at 0) on an
         [align]-element stride, so groups of [align] consecutive indices
         — e.g. the slots sharing a cache line of an interleaved plane —
         are never split across two domains. *)
      let chunk = max grain (1 + ((n - 1) / (t.jobs * 4))) in
      let chunk = ((chunk + align - 1) / align) * align in
      let j =
        {
          body;
          n;
          chunk;
          next = Atomic.make 0;
          outstanding = Atomic.make 0;
          error = Atomic.make None;
        }
      in
      Mutex.lock t.mutex;
      if t.stopped then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.parallel_for: pool is shut down"
      end;
      t.current <- Some j;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      claim j;
      wait_done j;
      match Atomic.get j.error with Some e -> raise e | None -> ()
    end

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
