external madvise_hugepage :
  ('a, 'b, 'c) Bigarray.Array1.t -> int -> unit = "util_madvise_hugepage"
[@@noalloc]

let advise (type a b) (v : (a, b, Bigarray.c_layout) Bigarray.Array1.t) =
  let bytes =
    Bigarray.Array1.dim v * Bigarray.kind_size_in_bytes (Bigarray.Array1.kind v)
  in
  (* Sub-2-MiB regions can never hold a huge page; skip the syscall. *)
  if bytes >= 2 * 1024 * 1024 then madvise_hugepage v bytes
