(** Deterministic fault injection for evaluation closures.

    The resilience layer is only trustworthy if its guards and recovery
    rungs are exercised; this module manufactures the failures.  A
    {!plan} is a schedule of {!site}s — {e which} corruption to apply,
    to {e which} component, at {e which} global evaluation index — and
    {!wrap} turns any [float array -> float * float array] evaluation
    (the shape of every {!Nlp.Problem} objective/constraint) into one
    that follows the schedule.

    Determinism follows the same keying discipline as the batched Monte
    Carlo engine ({!Sta.Mcsta}): every random choice (which gradient
    entry to corrupt, the perturbation draw) comes from {!Rng.keyed}
    [seed ~key:eval_index], a pure function of the plan seed and the
    evaluation index.  Two runs over the same deterministic solver
    trajectory therefore inject bit-identical faults, independent of
    when the plan was built.

    The evaluation counter is shared by all components wrapped with the
    same plan, and keeps counting across solver restarts — so a fault
    pinned to one index is {e transient}: a retry from a recovery rung
    sees a clean problem.  Use [First n] to break exactly the first [n]
    guarded attempts instead. *)

type kind =
  | Nan_value  (** replace the value with NaN *)
  | Inf_value  (** replace the value with +inf *)
  | Nan_gradient  (** NaN into one keyed-random gradient entry *)
  | Inf_gradient  (** +inf into one keyed-random gradient entry *)
  | Perturb of float
      (** multiply value and gradient by [1 + amp * z], [z] a keyed
          standard-normal draw *)

type trigger =
  | At of int  (** fire at exactly this global evaluation index *)
  | First of int  (** fire on the first [n] matching evaluations *)
  | Always  (** fire on every matching evaluation *)

type site = {
  kind : kind;
  component : int option;
      (** restrict to one component index ([None] = any); the component
          numbering is chosen by the caller of {!wrap} *)
  trigger : trigger;
}

type fired = { eval : int; component : int; kind : kind }
(** One log entry: the fault that was actually injected. *)

type plan

val plan : ?seed:int -> site list -> plan
(** A fresh schedule with its evaluation counter at zero. *)

val wrap :
  plan ->
  component:int ->
  (float array -> float * float array) ->
  float array ->
  float * float array
(** [wrap plan ~component f] evaluates [f] and corrupts its result when
    a site matches.  Every call advances the plan's shared evaluation
    counter, corrupted or not. *)

val evaluations : plan -> int
(** Evaluations seen so far across all wrapped components. *)

val log : plan -> fired list
(** The faults injected so far, in firing order. *)

val pp_kind : Format.formatter -> kind -> unit
