/* Advise the kernel to back a Bigarray's data with transparent huge
 * pages.  Million-slot float64 planes gathered at random (fanin
 * operands, consumer sizes) otherwise thrash the second-level TLB:
 * with 4 KiB pages a 16 MiB plane spans 4096 entries, far beyond the
 * STLB, and every gather pays a page walk.  MADV_HUGEPAGE collapses
 * the region to 2 MiB pages (when the system runs THP in "madvise"
 * mode, the common server default), cutting the walk rate ~500x.
 *
 * Best-effort: any failure (unaligned remainder, THP disabled,
 * non-Linux) is silently ignored -- the advice only affects speed. */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

#ifdef __linux__
#include <stdint.h>
#include <sys/mman.h>

#ifndef MADV_HUGEPAGE
#define MADV_HUGEPAGE 14
#endif

#define HP_PAGE 4096u

CAMLprim value util_madvise_hugepage(value vba, value vbytes)
{
  uintptr_t start = (uintptr_t)Caml_ba_data_val(vba);
  uintptr_t stop = start + (uintptr_t)Long_val(vbytes);
  /* madvise wants a page-aligned address: shrink to the contained
   * page range (edge partial pages keep base pages, which is fine). */
  uintptr_t lo = (start + HP_PAGE - 1) & ~(uintptr_t)(HP_PAGE - 1);
  uintptr_t hi = stop & ~(uintptr_t)(HP_PAGE - 1);
  if (hi > lo)
    (void)madvise((void *)lo, (size_t)(hi - lo), MADV_HUGEPAGE);
  return Val_unit;
}

#else

CAMLprim value util_madvise_hugepage(value vba, value vbytes)
{
  (void)vba;
  (void)vbytes;
  return Val_unit;
}

#endif
