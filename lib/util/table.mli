(** Minimal ASCII table rendering for experiment reports.

    Produces aligned, pipe-separated tables in the style of the paper's
    Tables 1–3 so that bench output can be compared line-by-line with the
    published numbers. *)

type align = Left | Right

type t

val create : header:string list -> t
(** A table with the given column headers.  Numeric-looking columns are
    right-aligned by default; use {!set_align} to override. *)

val set_align : t -> int -> align -> unit
(** [set_align t col a] forces the alignment of column [col]. *)

val add_row : t -> string list -> unit
(** Appends a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between row groups. *)

val to_string : t -> string
val print : t -> unit

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper, default 2 decimals. *)
