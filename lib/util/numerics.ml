let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let approx_eq ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  abs_float (a -. b) <= atol +. (rtol *. max (abs_float a) (abs_float b))

let linspace lo hi n =
  if n < 2 then invalid_arg "Numerics.linspace: need at least two points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> if i = n - 1 then hi else lo +. (float_of_int i *. step))

let fd_gradient ?(h = 1e-6) ?lo ?hi f x =
  let n = Array.length x in
  let check_dim name = function
    | Some (b : float array) when Array.length b <> n ->
        invalid_arg (Printf.sprintf "Numerics.fd_gradient: %s dimension mismatch" name)
    | _ -> ()
  in
  check_dim "lo" lo;
  check_dim "hi" hi;
  let g = Array.make n 0. in
  let xt = Array.copy x in
  (match (lo, hi) with
  | None, None ->
      for i = 0 to n - 1 do
        let xi = x.(i) in
        let hi = h *. max 1. (abs_float xi) in
        xt.(i) <- xi +. hi;
        let fp = f xt in
        xt.(i) <- xi -. hi;
        let fm = f xt in
        xt.(i) <- xi;
        g.(i) <- (fp -. fm) /. (2. *. hi)
      done
  | _ ->
      (* Box-aware differencing: sample points are clamped into
         [lo, hi], degrading to a one-sided difference at an active
         bound instead of evaluating f outside its domain (e.g. below
         the S_i >= 1 size bound, where the timing evaluators raise). *)
      for i = 0 to n - 1 do
        let xi = x.(i) in
        let step = h *. max 1. (abs_float xi) in
        let xp =
          match hi with Some u -> Float.min (xi +. step) u.(i) | None -> xi +. step
        in
        let xm =
          match lo with Some l -> Float.max (xi -. step) l.(i) | None -> xi -. step
        in
        if xp > xm then begin
          xt.(i) <- xp;
          let fp = f xt in
          xt.(i) <- xm;
          let fm = f xt in
          xt.(i) <- xi;
          g.(i) <- (fp -. fm) /. (xp -. xm)
        end
        (* xp = xm: the box pinches this coordinate to a point — no
           variation to measure, leave the slot 0. *)
      done);
  g

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Numerics.dot: length mismatch";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> max m (abs_float x)) 0. a

let axpy a x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Numerics.axpy: length mismatch";
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let sum a =
  let s = ref 0. and c = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    a;
  !s
