let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let approx_eq ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  abs_float (a -. b) <= atol +. (rtol *. max (abs_float a) (abs_float b))

let linspace lo hi n =
  if n < 2 then invalid_arg "Numerics.linspace: need at least two points";
  let step = (hi -. lo) /. float_of_int (n - 1) in
  Array.init n (fun i -> if i = n - 1 then hi else lo +. (float_of_int i *. step))

let fd_gradient ?(h = 1e-6) f x =
  let n = Array.length x in
  let g = Array.make n 0. in
  let xt = Array.copy x in
  for i = 0 to n - 1 do
    let xi = x.(i) in
    let hi = h *. max 1. (abs_float xi) in
    xt.(i) <- xi +. hi;
    let fp = f xt in
    xt.(i) <- xi -. hi;
    let fm = f xt in
    xt.(i) <- xi;
    g.(i) <- (fp -. fm) /. (2. *. hi)
  done;
  g

let dot a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Numerics.dot: length mismatch";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun m x -> max m (abs_float x)) 0. a

let axpy a x y =
  let n = Array.length x in
  if Array.length y <> n then invalid_arg "Numerics.axpy: length mismatch";
  for i = 0 to n - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let sum a =
  let s = ref 0. and c = ref 0. in
  Array.iter
    (fun x ->
      let y = x -. !c in
      let t = !s +. y in
      c := t -. !s -. y;
      s := t)
    a;
  !s
