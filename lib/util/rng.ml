type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
  mutable spare : float option; (* cached second output of the polar method *)
}

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = None }

let keyed seed ~key =
  (* Mix the seed and the key through two rounds of splitmix64 so that
     nearby (seed, key) pairs yield decorrelated streams, then expand the
     mixed value into the xoshiro state exactly as [create] does.  The
     result is a pure function of (seed, key): stream [key] of run [seed]
     is the same no matter how many other streams were created before it,
     which is what makes keyed per-gate sampling batch- and
     schedule-independent. *)
  let st = ref (Int64.of_int seed) in
  let mixed_seed = splitmix64 st in
  st := Int64.add mixed_seed (Int64.mul (Int64.of_int key) 0x9E3779B97F4A7C15L);
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3; spare = None }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let uint64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let copy t = { t with spare = t.spare }

let split t =
  let seed = Int64.to_int (uint64 t) land max_int in
  create seed

let float t =
  (* top 53 bits scaled to [0, 1) *)
  let bits = Int64.shift_right_logical (uint64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t ~lo ~hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* rejection-free for our purposes: modulo bias is negligible for n << 2^63 *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (uint64 t) 1) (Int64.of_int n))

let rec normal t =
  match t.spare with
  | Some v ->
      t.spare <- None;
      v
  | None ->
      let u = uniform t ~lo:(-1.) ~hi:1. in
      let v = uniform t ~lo:(-1.) ~hi:1. in
      let s = (u *. u) +. (v *. v) in
      if s >= 1. || s = 0. then normal t
      else begin
        let m = sqrt (-2. *. log s /. s) in
        t.spare <- Some (v *. m);
        u *. m
      end

let gaussian t ~mu ~sigma = mu +. (sigma *. normal t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
