(** Running statistics and sample summaries for Monte Carlo experiments. *)

type t
(** Welford running accumulator: numerically stable single-pass mean and
    variance. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val std_dev : t -> float

val min_value : t -> float
(** Smallest sample seen; [infinity] when empty. *)

val max_value : t -> float
(** Largest sample seen; [neg_infinity] when empty. *)

val of_array : float array -> t

val quantile : float array -> float -> float
(** [quantile samples p] is the [p]-quantile (linear interpolation between
    order statistics).  Sorts a copy; requires a non-empty array and
    [0. <= p <= 1.]. *)

val fraction_le : float array -> float -> float
(** [fraction_le samples x] is the empirical probability
    [P(sample <= x)]. *)

val wilson_interval : ?z:float -> hits:int -> n:int -> unit -> float * float
(** [wilson_interval ~hits ~n ()] is the Wilson score confidence interval
    for a binomial proportion observed as [hits] successes in [n] trials,
    at the normal quantile [z] (default 1.96, i.e. 95%).  Unlike the Wald
    interval it behaves sensibly near 0 and 1 — which is where the
    mu+3sigma conformance estimates live. *)

type histogram = { lo : float; hi : float; counts : int array }

val histogram : float array -> bins:int -> histogram
(** Equal-width histogram over the sample range. *)
