type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let std_dev t = sqrt (variance t)
let min_value t = t.lo
let max_value t = t.hi

let of_array a =
  let t = create () in
  Array.iter (add t) a;
  t

let quantile samples p =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.quantile: empty sample";
  if not (p >= 0. && p <= 1.) then invalid_arg "Stats.quantile: p outside [0, 1]";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let pos = p *. float_of_int (n - 1) in
  let i = int_of_float (floor pos) in
  let frac = pos -. float_of_int i in
  if i + 1 >= n then sorted.(n - 1)
  else sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))

let fraction_le samples x =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.fraction_le: empty sample";
  let c = Array.fold_left (fun acc s -> if s <= x then acc + 1 else acc) 0 samples in
  float_of_int c /. float_of_int n

let wilson_interval ?(z = 1.96) ~hits ~n () =
  if n <= 0 then invalid_arg "Stats.wilson_interval: n must be positive";
  if hits < 0 || hits > n then invalid_arg "Stats.wilson_interval: hits outside [0, n]";
  let nf = float_of_int n in
  let p = float_of_int hits /. nf in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. nf) in
  let center = (p +. (z2 /. (2. *. nf))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1. -. p) /. nf) +. (z2 /. (4. *. nf *. nf)))
  in
  (max 0. (center -. half), min 1. (center +. half))

type histogram = { lo : float; hi : float; counts : int array }

let histogram samples ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  let t = of_array samples in
  let lo = min_value t and hi = max_value t in
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let width = if width <= 0. then 1. else width in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = if b >= bins then bins - 1 else if b < 0 then 0 else b in
      counts.(b) <- counts.(b) + 1)
    samples;
  { lo; hi; counts }
