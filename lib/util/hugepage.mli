(** Transparent-huge-page advice for large Bigarray planes.

    {!advise} asks the kernel ([madvise(MADV_HUGEPAGE)] on Linux) to
    back a Bigarray's data with 2 MiB pages.  Random gathers over a
    multi-megabyte float64 plane are otherwise TLB-bound: at 4 KiB
    pages a million-gate arrival plane (16 MiB) needs 4096 TLB
    entries, several times the second-level TLB, so nearly every
    gather adds a page-table walk.  Huge pages cover the same plane
    with 8 entries.

    Purely advisory and best-effort: a no-op on non-Linux systems,
    when THP is disabled, or for regions under 2 MiB (which cannot
    contain a huge page).  Never raises; never affects results — only
    speed.  Call it right after [Bigarray.Array1.create], {e before}
    first touch, so pages fault in huge from the start instead of
    waiting for [khugepaged] to collapse them. *)

val advise : ('a, 'b, Bigarray.c_layout) Bigarray.Array1.t -> unit
