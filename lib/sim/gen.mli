(** Keyed-seed generation of replayable op sequences.

    Op [k] of run [seed] is a pure function of [(seed, k)] — every draw
    for that op comes from {!Util.Rng.keyed}[ seed ~key:k], the seeding
    discipline of {!Sta.Mcsta}.  A sequence is therefore reproducible
    from its seed alone (the basis of [statsize sim --seed N --ops K]),
    and the shrinker can drop or edit individual ops without changing
    the ops it keeps. *)

(** Relative op-class frequencies; classes with weight 0 are never
    generated. *)
type weights = {
  resize : int;
  batch_resize : int;
  set_objective : int;
  invalidate : int;
  analyze : int;
  gradient : int;
  inject_fault : int;
  set_budget : int;
  solve : int;
  switch_warm_start : int;
  serve : int;
  corrupt : int;
}

val zero_weights : weights
(** All zero — a base for record updates selecting a few classes. *)

val default_weights : weights
(** The full clean vocabulary.  [corrupt] is 0: under the default mix
    every invariant must hold, so corrupting ops are opt-in (the
    planted-divergence demo and [statsize sim --plant]). *)

type config = {
  circuit : Op.circuit;
  n_ops : int;
  weights : weights;
  max_batch : int;  (** cap on coordinates per {!Op.Batch_resize} *)
}

val default : config

val instantiate : Op.circuit -> Circuit.Netlist.t
(** Build the netlist a circuit spec describes (deterministic).  Raises
    [Invalid_argument] on an unknown {!Op.Named} circuit. *)

val op : net:Circuit.Netlist.t -> seed:int -> key:int -> config -> Op.t
(** The [key]-th op of run [seed] — pure in [(seed, key)]. *)

val sequence : net:Circuit.Netlist.t -> seed:int -> config -> Op.t list
(** [List.init config.n_ops] of {!op}. *)
