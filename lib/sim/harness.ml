(* Deterministic execution of an op list against a fresh State, with the
   invariant suite run after every op and execution stopping at the
   first violation.  Pure in (circuit, seed, ops, suite): the foundation
   replay and shrinking stand on. *)

type failure = { step : int; op : Op.t; violation : Invariant.violation }

type outcome = Passed | Failed of failure

type report = {
  outcome : outcome;
  ops_run : int;
  counters : Sta.Incr.counters;
  solves : int;
  faults_fired : int;
}

let run_net ?pools ?incr_pool ?suite ?(model = Circuit.Sigma_model.paper_default)
    ~seed net ops =
  let suite = match suite with Some s -> s | None -> Invariant.default_suite () in
  let st = State.create ?pools ?incr_pool ~seed ~model net in
  let rec go step ops_run = function
    | [] -> { outcome = Passed; ops_run; counters = Sta.Incr.counters st.State.incr;
              solves = st.State.solves; faults_fired = st.State.faults_fired }
    | op :: rest -> (
        let applied =
          try Ok (State.apply st op)
          with exn ->
            Error
              {
                Invariant.name = "exception";
                Invariant.detail =
                  Printf.sprintf "op raised %s" (Printexc.to_string exn);
              }
        in
        match applied with
        | Error violation ->
            {
              outcome = Failed { step; op; violation };
              ops_run = ops_run + 1;
              counters = Sta.Incr.counters st.State.incr;
              solves = st.State.solves;
              faults_fired = st.State.faults_fired;
            }
        | Ok () -> (
            match Invariant.check_all suite st op with
            | Some violation ->
                {
                  outcome = Failed { step; op; violation };
                  ops_run = ops_run + 1;
                  counters = Sta.Incr.counters st.State.incr;
                  solves = st.State.solves;
                  faults_fired = st.State.faults_fired;
                }
            | None -> go (step + 1) (ops_run + 1) rest))
  in
  go 0 0 ops

let run ?pools ?incr_pool ?suite ?model ~seed ~circuit ops =
  run_net ?pools ?incr_pool ?suite ?model ~seed (Gen.instantiate circuit) ops

let describe_failure ~seed ~circuit ~n_ops f =
  Printf.sprintf
    "invariant %S violated at op %d (%s)\n  %s\n  reproduce: statsize sim --seed %d --ops %d %s"
    f.violation.Invariant.name f.step (Op.to_line f.op)
    f.violation.Invariant.detail seed n_ops
    (Op.circuit_flags circuit)
