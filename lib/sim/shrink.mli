(** Automatic minimization of failing traces.

    Shrinking preserves the failure identity: a candidate counts only if
    it violates the {e same} invariant (matched by name) as the original
    failure.  Passes, in order — truncate to the violating op, ddmin
    (delta debugging) over the op list, halve generated-DAG circuits,
    shrink op arguments (sizes toward 1.0, batches toward singletons,
    gradient seeds toward [Seed_mu], objectives toward [Min_delay 0],
    corruption bumps halved), then a final ddmin pass.  Deterministic:
    same inputs, same minimal trace. *)

type result = {
  trace : Trace.t;
      (** minimized trace, with [violation] set to the invariant name *)
  failure : Harness.failure;  (** the failure the minimized trace produces *)
  runs : int;  (** candidate harness runs spent *)
}

val minimize :
  ?max_runs:int ->
  run:(Trace.t -> Harness.failure option) ->
  Trace.t ->
  Harness.failure ->
  result
(** [minimize ~run trace failure] with [run] the candidate evaluator
    (typically [fun t -> match (Trace.run t).outcome with Failed f ->
    Some f | Passed -> None]).  [max_runs] (default 400) bounds the
    total candidate evaluations; the best trace found within the budget
    is returned.  The result's ops are always a subsequence-with-
    simplified-arguments of the input's, so it never grows. *)
