(** The registered invariant suite run after every simulated op.

    The differential checks are bitwise ([Int64.bits_of_float]): in
    exact mode the warm incremental engine, a from-scratch arena sweep,
    the boxed reference sweeps and every pooled domain configuration
    must agree to the last bit.  The structural checks cover the corner
    envelope against {!Sta.Dsta}/{!Sta.Ssta}, correlation-matrix sanity
    of {!Sta.Cssta}, recovery-ladder soundness under injected faults,
    monotone engine counters, and the release-profile words/eval
    ceiling. *)

type violation = { name : string; detail : string }

type check = {
  name : string;
  applies : State.t -> Op.t -> bool;
      (** cheap predicate deciding whether [run] fires after this op *)
  run : State.t -> Op.t -> (unit, string) result;
      (** [Error detail] on violation; exceptions are converted to a
          violation by {!check_all} *)
}

val default_suite : ?max_cssta_gates:int -> unit -> check list
(** The full registry, in run order:

    - [incr-vs-scratch] (every op) — warm {!Sta.Incr.analyze} bitwise
      equals a from-scratch arena sweep; on [Analyze]/[Gradient] ops
      also cross-checked against each pooled configuration of the
      state.  Catches {!Op.Corrupt_cache}.
    - [monotone-counters] (every op) — engine lifetime counters never
      decrease.
    - [arena-vs-boxed] ([Analyze]) — arena sweep vs the boxed oracle.
    - [gradient-vs-scratch] ([Gradient]) — incremental gradient vs
      scratch, boxed and pooled gradients, bitwise.
    - [corner-envelope] ([Analyze]) — best <= typical <= worst, typical
      equals {!Sta.Dsta}, monotone guard band, statistical mean
      dominates the typical corner.
    - [cssta-vs-ssta] ([Analyze], circuits up to [max_cssta_gates]
      gates, default 200 — the correlation matrix is O(n^2)) —
      correlation entries in [[-1, 1]], finite moments, nonnegative
      variance, and the independent half of
      {!Sta.Cssta.compare_to_independent} bitwise equals the scratch
      sweep.
    - [recovery-sound] ([Solve]) — solution inside the box, finite
      consistent moments, non-converged solves explained by ladder
      rungs or budget terminations, and fired faults never paired with
      a silently clean first attempt.
    - [gp-sound] ([Solve], only when the solve involved the GP backend:
      a [`Gp] warm start or a gp-fallback recovery rung) — the reported
      circuit moments and area bitwise equal a from-scratch sweep at the
      reported sizes: the GP hands the engine sizes, never timing
      numbers.
    - [serve-sound] ([Serve_request]) — the daemon execution path
      ({!Serve.Exec} against the state's warm serve target) answers
      bit-identically to a fresh batch evaluation of the same request
      (compared through {!Serve.Protocol.result_json}'s exact float
      rendering, so string equality is Int64 bit-identity), and the
      expired-deadline variant takes the flagged mean-only degradation
      rung rather than a statistical answer or an error.
    - [words-per-eval] ([Analyze]) — when the Clark kernels inline
      (release profile), a steady-state forward sweep allocates at most
      256 minor words; skipped in dev builds. *)

val check_all : check list -> State.t -> Op.t -> violation option
(** First violation in suite order, if any.  An exception raised by a
    check becomes a violation with the exception text as detail. *)
