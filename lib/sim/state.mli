(** The mutable world under test: one circuit, one persistent
    {!Sta.Incr} engine, plus the current sizes, objective, budgets and
    armed fault sites.  {!apply} gives every {!Op.t} its semantics;
    {!Sim.Invariant} checks this state after each op. *)

type t = {
  net : Circuit.Netlist.t;
  model : Circuit.Sigma_model.t;
  seed : int;  (** scenario seed; keys the fault plans of [Solve] ops *)
  sizes : float array;  (** current speed factors, old-id order *)
  maxs : float array;
  incr : Sta.Incr.t;  (** the persistent engine under test *)
  serve : Serve.Exec.target;
      (** the daemon execution path under test: its own committed sizes
          (all-minimum; the sim issues no size requests) and persistent
          engine, driven by {!Op.Serve_request} ops *)
  scratch : Sta.Arena.t;  (** arena for from-scratch differential sweeps *)
  pools : (int * Util.Pool.t) list;
      (** extra [(domains, pool)] configurations the differential
          invariants cross-check against the sequential sweep *)
  unsized_mu : float;
      (** mean circuit delay at all-minimum sizes; objective bounds are
          fractions of this, so the op vocabulary is circuit-agnostic *)
  mutable objective : Sizing.Objective.t;
  mutable warm_start : [ `None | `Gp | `Baseline ];
      (** {!Sizing.Engine.options.warm_start} of subsequent [Solve] ops;
          set by {!Op.Switch_warm_start} *)
  mutable pending_faults : (Util.Fault.kind * int) list;
      (** fault sites armed (kind, [First n]) for the next [Solve] *)
  mutable budget_deadline : float option;
  mutable budget_max_evals : int option;
  mutable last_result : Sta.Ssta.result option;  (** last [Analyze] *)
  mutable last_gradient : (Op.seed_kind * float array) option;
      (** last [Gradient]: the seed kind and the incremental engine's
          gradient, for differential checking *)
  mutable last_serve : (Op.serve * Serve.Protocol.payload) option;
      (** last {!Op.Serve_request} and the payload {!Serve.Exec.exec}
          answered, for the serve-soundness invariant *)
  mutable last_solve : Sizing.Engine.solution option;
  mutable last_solve_faults : int;  (** faults fired during the last solve *)
  mutable solves : int;
  mutable faults_fired : int;  (** lifetime fault-injection count *)
  mutable prev_counters : Sta.Incr.counters;
      (** snapshot for the monotone-counters invariant; that check
          updates it after comparing *)
}

val create :
  ?pools:(int * Util.Pool.t) list ->
  ?incr_pool:Util.Pool.t ->
  seed:int ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  t
(** Fresh world at all-minimum sizes with a cold incremental engine.
    [incr_pool] parallelizes the engine under test itself; [pools] adds
    domain configurations for the invariants to cross-check. *)

val apply : t -> Op.t -> unit
(** Execute one op.  Gate indices are reduced modulo the gate count and
    sizes clamped into the gate's box (non-finite sizes become 1.0), so
    any op is valid on any circuit — the property that lets the shrinker
    trim circuits under a fixed op list.  [Solve] is always bounded
    (default 2000 evaluations when no budget op preceded it). *)

val seed_fun : Op.seed_kind -> Sta.Ssta.result -> Sta.Ssta.seed
(** The adjoint seed an {!Op.Gradient} op queries, shared with the
    invariant suite's recomputations. *)

val resolve_deltas : t -> (int * float) array -> (int * float) array
(** The (gate, size) deltas an {!Op.Srv_whatif} actually submits: gate
    indices reduced modulo the gate count, sizes clamped into the
    gate's box — exposed so the serve-soundness invariant recomputes
    the identical what-if question. *)
