(* Serialized failure traces: the file `statsize sim --replay` re-executes.

   Text format, one declaration per line:

     statsize-sim-trace v1
     seed 42
     circuit dag 150 20 8 1
     violation incr-vs-scratch        (optional: what the trace reproduces)
     op resize 17 0x1.8p+1
     op analyze
     end

   Floats ride in %h hex literals (via Op), so a loaded trace replays
   the exact bits that produced the failure. *)

type t = {
  seed : int;
  circuit : Op.circuit;
  ops : Op.t list;
  violation : string option;
}

let magic = "statsize-sim-trace v1"

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "seed %d\n" t.seed);
  Buffer.add_string b ("circuit " ^ Op.circuit_to_line t.circuit ^ "\n");
  (match t.violation with
  | None -> ()
  | Some v -> Buffer.add_string b ("violation " ^ v ^ "\n"));
  List.iter (fun op -> Buffer.add_string b ("op " ^ Op.to_line op ^ "\n")) t.ops;
  Buffer.add_string b "end\n";
  Buffer.contents b

let ( let* ) = Result.bind

let strip_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s >= pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match lines with
  | [] -> Error "empty trace"
  | header :: rest ->
      let* () =
        if header = magic then Ok ()
        else Error (Printf.sprintf "bad trace header %S (want %S)" header magic)
      in
      let rec parse seed circuit violation ops = function
        | [] -> Error "trace missing `end` line"
        | "end" :: _ -> (
            match (seed, circuit) with
            | Some seed, Some circuit ->
                Ok { seed; circuit; ops = List.rev ops; violation }
            | None, _ -> Error "trace missing `seed` line"
            | _, None -> Error "trace missing `circuit` line")
        | line :: rest -> (
            match strip_prefix ~prefix:"seed " line with
            | Some s -> (
                match int_of_string_opt (String.trim s) with
                | Some n -> parse (Some n) circuit violation ops rest
                | None -> Error (Printf.sprintf "bad seed line %S" line))
            | None -> (
                match strip_prefix ~prefix:"circuit " line with
                | Some s ->
                    let* c = Op.circuit_of_line s in
                    parse seed (Some c) violation ops rest
                | None -> (
                    match strip_prefix ~prefix:"violation " line with
                    | Some v -> parse seed circuit (Some (String.trim v)) ops rest
                    | None -> (
                        match strip_prefix ~prefix:"op " line with
                        | Some s ->
                            let* op = Op.of_line s in
                            parse seed circuit violation (op :: ops) rest
                        | None ->
                            Error (Printf.sprintf "unrecognized trace line %S" line)))))
      in
      parse None None None [] rest

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let replay_command path = Printf.sprintf "statsize sim --replay %s" path

let run ?pools ?incr_pool ?suite ?model t =
  Harness.run ?pools ?incr_pool ?suite ?model ~seed:t.seed ~circuit:t.circuit
    t.ops
