(* The world the simulation harness drives: one circuit, one persistent
   incremental engine, the current sizes/objective/budgets, and the
   fault sites armed for the next solve.  Op semantics live here;
   Sim.Invariant reads this state to check the engine stack after every
   op. *)

type t = {
  net : Circuit.Netlist.t;
  model : Circuit.Sigma_model.t;
  seed : int;  (* scenario seed; keys the fault plans of Solve ops *)
  sizes : float array;  (* current speed factors, old-id order *)
  maxs : float array;
  incr : Sta.Incr.t;  (* the persistent engine under test *)
  serve : Serve.Exec.target;  (* the daemon execution path under test *)
  scratch : Sta.Arena.t;  (* arena for from-scratch differential sweeps *)
  pools : (int * Util.Pool.t) list;  (* extra domain counts to cross-check *)
  unsized_mu : float;  (* mean delay at all-min sizes: anchors objectives *)
  mutable objective : Sizing.Objective.t;
  mutable warm_start : [ `None | `Gp | `Baseline ];
  mutable pending_faults : (Util.Fault.kind * int) list;
  mutable budget_deadline : float option;
  mutable budget_max_evals : int option;
  mutable last_result : Sta.Ssta.result option;
  mutable last_gradient : (Op.seed_kind * float array) option;
  mutable last_serve : (Op.serve * Serve.Protocol.payload) option;
  mutable last_solve : Sizing.Engine.solution option;
  mutable last_solve_faults : int;  (* faults fired during the last solve *)
  mutable solves : int;
  mutable faults_fired : int;
  mutable prev_counters : Sta.Incr.counters;
}

let create ?(pools = []) ?incr_pool ~seed ~model net =
  let scratch = Sta.Arena.create net in
  let unsized =
    Sta.Ssta.analyze ~arena:scratch ~model net ~sizes:(Circuit.Netlist.min_sizes net)
  in
  let incr = Sta.Incr.create ?pool:incr_pool ~model net in
  {
    net;
    model;
    seed;
    sizes = Array.copy (Circuit.Netlist.min_sizes net);
    maxs = Circuit.Netlist.max_sizes net;
    incr;
    serve = Serve.Exec.create ~model net;
    scratch;
    pools;
    unsized_mu = Statdelay.Normal.mu unsized.Sta.Ssta.circuit;
    objective = Sizing.Objective.Min_delay 0.;
    warm_start = `None;
    pending_faults = [];
    budget_deadline = None;
    budget_max_evals = None;
    last_result = None;
    last_gradient = None;
    last_serve = None;
    last_solve = None;
    last_solve_faults = 0;
    solves = 0;
    faults_fired = 0;
    prev_counters = Sta.Incr.counters incr;
  }

let seed_fun = function
  | Op.Seed_mu -> fun _ -> { Sta.Ssta.d_mu = 1.; d_var = 0. }
  | Op.Seed_var -> fun _ -> { Sta.Ssta.d_mu = 0.; d_var = 1. }
  | Op.Seed_mu_k_sigma k -> Sta.Ssta.mu_plus_k_sigma_seed k

let objective_of t = function
  | Op.Obj_min_delay k -> Sizing.Objective.Min_delay k
  | Op.Obj_min_area_bounded { k; frac } ->
      Sizing.Objective.Min_area_bounded { k; bound = frac *. t.unsized_mu }
  | Op.Obj_min_sigma { frac } ->
      Sizing.Objective.Min_sigma { mu = frac *. t.unsized_mu }

let fault_kind = function
  | Op.Nan_value -> Util.Fault.Nan_value
  | Op.Inf_value -> Util.Fault.Inf_value
  | Op.Nan_gradient -> Util.Fault.Nan_gradient
  | Op.Inf_gradient -> Util.Fault.Inf_gradient
  | Op.Perturb amp -> Util.Fault.Perturb amp

(* Gate indices are reduced modulo the gate count and sizes clamped into
   the gate's box, so ops survive circuit shrinking (and hand-edited
   traces cannot push the engines out of their domain). *)
let resolve_gate t gate =
  let n = Array.length t.sizes in
  ((gate mod n) + n) mod n

let clamp_size t g size =
  if Util.Guard.is_finite size then Float.max 1.0 (Float.min size t.maxs.(g))
  else 1.0

let set_size t gate size =
  let g = resolve_gate t gate in
  t.sizes.(g) <- clamp_size t g size

let resolve_deltas t deltas =
  Array.map
    (fun (g, s) ->
      let g = resolve_gate t g in
      (g, clamp_size t g s))
    deltas

let protocol_seed = function
  | Op.Seed_mu -> Serve.Protocol.Seed_mu
  | Op.Seed_var -> Serve.Protocol.Seed_var
  | Op.Seed_mu_k_sigma k -> Serve.Protocol.Seed_mu_k_sigma k

(* An already-expired budget on a hand-driven clock: creation reads the
   first tick, every later probe a strictly larger instant, so the
   zero-second deadline is deterministically past — no wall clock, so
   replays degrade at the same op on any machine. *)
let expired_budget () =
  let t = ref 0 in
  Util.Guard.budget
    ~now:(fun () ->
      incr t;
      !t)
    ~deadline:0. ()

let serve_request t req =
  let explicit () = Serve.Protocol.Explicit (Array.copy t.sizes) in
  let payload =
    match req with
    | Op.Srv_analyze ->
        Serve.Exec.exec t.serve (Serve.Protocol.Analyze { sizes = explicit () })
    | Op.Srv_whatif deltas ->
        Serve.Exec.exec t.serve
          (Serve.Protocol.Whatif { deltas = resolve_deltas t deltas })
    | Op.Srv_gradient kind ->
        Serve.Exec.exec t.serve
          (Serve.Protocol.Gradient
             { sizes = explicit (); seed = protocol_seed kind })
    | Op.Srv_degraded ->
        Serve.Exec.exec ~budget:(expired_budget ()) t.serve
          (Serve.Protocol.Analyze { sizes = explicit () })
  in
  t.last_serve <- Some (req, payload)

let solve t =
  let plan =
    match t.pending_faults with
    | [] -> None
    | sites ->
        Some
          (Util.Fault.plan ~seed:t.seed
             (List.rev_map
                (fun (kind, first) ->
                  {
                    Util.Fault.kind;
                    Util.Fault.component = None;
                    Util.Fault.trigger = Util.Fault.First first;
                  })
                sites))
  in
  let instrument =
    Option.map
      (fun plan problem ->
        Nlp.Problem.map_components
          (fun ~component f ->
            Util.Fault.wrap plan
              ~component:(Nlp.Problem.component_index component)
              f)
          problem)
      plan
  in
  let options =
    {
      Sizing.Engine.default_options with
      Sizing.Engine.deadline = t.budget_deadline;
      (* Always bounded: a runaway solve must not stall the harness. *)
      Sizing.Engine.max_evaluations =
        (match t.budget_max_evals with Some _ as b -> b | None -> Some 2000);
      Sizing.Engine.warm_start = t.warm_start;
      Sizing.Engine.instrument;
    }
  in
  let solution =
    Sizing.Engine.solve ~options ~timing:t.incr ~model:t.model t.net t.objective
  in
  let fired = match plan with None -> 0 | Some p -> List.length (Util.Fault.log p) in
  t.last_solve <- Some solution;
  t.last_solve_faults <- fired;
  t.faults_fired <- t.faults_fired + fired;
  t.solves <- t.solves + 1;
  t.pending_faults <- []

let apply t op =
  match op with
  | Op.Resize { gate; size } -> set_size t gate size
  | Op.Batch_resize pairs -> Array.iter (fun (g, s) -> set_size t g s) pairs
  | Op.Set_objective o -> t.objective <- objective_of t o
  | Op.Invalidate -> Sta.Incr.invalidate t.incr
  | Op.Analyze -> t.last_result <- Some (Sta.Incr.analyze t.incr ~sizes:t.sizes)
  | Op.Gradient kind ->
      let _, grad =
        Sta.Incr.value_and_gradient t.incr ~sizes:t.sizes ~seed:(seed_fun kind)
      in
      t.last_gradient <- Some (kind, grad)
  | Op.Inject_fault { kind; first } ->
      t.pending_faults <- (fault_kind kind, max 1 first) :: t.pending_faults
  | Op.Set_budget { deadline; max_evals } ->
      t.budget_deadline <- deadline;
      t.budget_max_evals <- max_evals
  | Op.Solve -> solve t
  | Op.Switch_warm_start w -> t.warm_start <- w
  | Op.Serve_request req -> serve_request t req
  | Op.Corrupt_cache { gate; bump } ->
      (* Fault-inject the engine's cached state: poke the arrival-mean
         plane of the incremental arena.  A cold or invalidated engine
         overwrites the poke on its next full sweep; a warm one serves
         the corrupt value from cache — which the differential
         invariants must catch. *)
      let g = resolve_gate t gate in
      let arena = Sta.Incr.arena t.incr in
      let g' = (Circuit.Netlist.flat t.net).Circuit.Netlist.perm.(g) in
      let arr = arena.Sta.Arena.arr in
      Statdelay.Clark.vset arr (2 * g')
        (Statdelay.Clark.vget arr (2 * g') +. bump)
