(* The simulation harness's typed operation vocabulary.

   Every op is a closed, serializable description of one action against
   the engine stack; Sim.State gives each its semantics.  Serialization
   uses %h hex floats so a saved trace replays with the exact bits that
   produced a failure. *)

type seed_kind = Seed_mu | Seed_var | Seed_mu_k_sigma of float

type objective =
  | Obj_min_delay of float
  | Obj_min_area_bounded of { k : float; frac : float }
  | Obj_min_sigma of { frac : float }

type fault_kind =
  | Nan_value
  | Inf_value
  | Nan_gradient
  | Inf_gradient
  | Perturb of float

(* Daemon-path requests: the same question asked through Serve.Exec and
   its own warm engine instead of the sim's incremental engine.  The
   serve-soundness invariant compares each answer against a fresh batch
   evaluation. *)
type serve =
  | Srv_analyze
  | Srv_whatif of (int * float) array
  | Srv_gradient of seed_kind
  | Srv_degraded

type t =
  | Resize of { gate : int; size : float }
  | Batch_resize of (int * float) array
  | Set_objective of objective
  | Invalidate
  | Analyze
  | Gradient of seed_kind
  | Inject_fault of { kind : fault_kind; first : int }
  | Set_budget of { deadline : float option; max_evals : int option }
  | Solve
  | Switch_warm_start of [ `None | `Gp | `Baseline ]
  | Corrupt_cache of { gate : int; bump : float }
  | Serve_request of serve

type circuit =
  | Named of string
  | Dag of { n_gates : int; n_pis : int; depth : int; seed : int }

(* ---- serialization ---------------------------------------------------------- *)

(* One op per line, space-separated tokens.  Floats in %h (hex) so the
   round-trip is bit-exact; int tokens in decimal. *)

let float_to_token f = Printf.sprintf "%h" f

let float_of_token s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad float token %S" s)

let int_of_token s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "bad int token %S" s)

let seed_kind_tokens = function
  | Seed_mu -> [ "mu" ]
  | Seed_var -> [ "var" ]
  | Seed_mu_k_sigma k -> [ "mu-k-sigma"; float_to_token k ]

let fault_kind_tokens = function
  | Nan_value -> [ "nan-value" ]
  | Inf_value -> [ "inf-value" ]
  | Nan_gradient -> [ "nan-gradient" ]
  | Inf_gradient -> [ "inf-gradient" ]
  | Perturb amp -> [ "perturb"; float_to_token amp ]

let pair_tokens pairs =
  string_of_int (Array.length pairs)
  :: List.concat_map
       (fun (g, s) -> [ string_of_int g; float_to_token s ])
       (Array.to_list pairs)

let serve_tokens = function
  | Srv_analyze -> [ "analyze" ]
  | Srv_whatif deltas -> "whatif" :: pair_tokens deltas
  | Srv_gradient k -> "gradient" :: seed_kind_tokens k
  | Srv_degraded -> [ "degraded" ]

let objective_tokens = function
  | Obj_min_delay k -> [ "min-delay"; float_to_token k ]
  | Obj_min_area_bounded { k; frac } ->
      [ "min-area-bounded"; float_to_token k; float_to_token frac ]
  | Obj_min_sigma { frac } -> [ "min-sigma"; float_to_token frac ]

let to_line op =
  let tokens =
    match op with
    | Resize { gate; size } -> [ "resize"; string_of_int gate; float_to_token size ]
    | Batch_resize pairs -> "batch" :: pair_tokens pairs
    | Set_objective o -> "objective" :: objective_tokens o
    | Invalidate -> [ "invalidate" ]
    | Analyze -> [ "analyze" ]
    | Gradient k -> "gradient" :: seed_kind_tokens k
    | Inject_fault { kind; first } ->
        ("fault" :: fault_kind_tokens kind) @ [ string_of_int first ]
    | Set_budget { deadline; max_evals } ->
        [
          "budget";
          (match deadline with None -> "-" | Some d -> float_to_token d);
          (match max_evals with None -> "-" | Some m -> string_of_int m);
        ]
    | Solve -> [ "solve" ]
    | Switch_warm_start w ->
        [
          "warm-start";
          (match w with `None -> "none" | `Gp -> "gp" | `Baseline -> "baseline");
        ]
    | Corrupt_cache { gate; bump } ->
        [ "corrupt"; string_of_int gate; float_to_token bump ]
    | Serve_request r -> "serve" :: serve_tokens r
  in
  String.concat " " tokens

let ( let* ) = Result.bind

let parse_pairs what n rest =
  let rec pairs acc = function
    | [] -> Ok (List.rev acc)
    | g :: s :: rest ->
        let* gate = int_of_token g in
        let* size = float_of_token s in
        pairs ((gate, size) :: acc) rest
    | [ _ ] -> Error (what ^ ": odd token count")
  in
  let* ps = pairs [] rest in
  if List.length ps <> n then Error (what ^ ": length mismatch")
  else Ok (Array.of_list ps)

let of_line line =
  let tokens =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [ "resize"; g; s ] ->
      let* gate = int_of_token g in
      let* size = float_of_token s in
      Ok (Resize { gate; size })
  | "batch" :: n :: rest ->
      let* n = int_of_token n in
      let* ps = parse_pairs "batch" n rest in
      Ok (Batch_resize ps)
  | [ "objective"; "min-delay"; k ] ->
      let* k = float_of_token k in
      Ok (Set_objective (Obj_min_delay k))
  | [ "objective"; "min-area-bounded"; k; frac ] ->
      let* k = float_of_token k in
      let* frac = float_of_token frac in
      Ok (Set_objective (Obj_min_area_bounded { k; frac }))
  | [ "objective"; "min-sigma"; frac ] ->
      let* frac = float_of_token frac in
      Ok (Set_objective (Obj_min_sigma { frac }))
  | [ "invalidate" ] -> Ok Invalidate
  | [ "analyze" ] -> Ok Analyze
  | [ "gradient"; "mu" ] -> Ok (Gradient Seed_mu)
  | [ "gradient"; "var" ] -> Ok (Gradient Seed_var)
  | [ "gradient"; "mu-k-sigma"; k ] ->
      let* k = float_of_token k in
      Ok (Gradient (Seed_mu_k_sigma k))
  | [ "fault"; kind; first ] ->
      let* kind =
        match kind with
        | "nan-value" -> Ok Nan_value
        | "inf-value" -> Ok Inf_value
        | "nan-gradient" -> Ok Nan_gradient
        | "inf-gradient" -> Ok Inf_gradient
        | other -> Error (Printf.sprintf "unknown fault kind %S" other)
      in
      let* first = int_of_token first in
      Ok (Inject_fault { kind; first })
  | [ "fault"; "perturb"; amp; first ] ->
      let* amp = float_of_token amp in
      let* first = int_of_token first in
      Ok (Inject_fault { kind = Perturb amp; first })
  | [ "budget"; d; m ] ->
      let* deadline =
        if d = "-" then Ok None else Result.map Option.some (float_of_token d)
      in
      let* max_evals =
        if m = "-" then Ok None else Result.map Option.some (int_of_token m)
      in
      Ok (Set_budget { deadline; max_evals })
  | [ "solve" ] -> Ok Solve
  | [ "warm-start"; "none" ] -> Ok (Switch_warm_start `None)
  | [ "warm-start"; "gp" ] -> Ok (Switch_warm_start `Gp)
  | [ "warm-start"; "baseline" ] -> Ok (Switch_warm_start `Baseline)
  | [ "corrupt"; g; b ] ->
      let* gate = int_of_token g in
      let* bump = float_of_token b in
      Ok (Corrupt_cache { gate; bump })
  | [ "serve"; "analyze" ] -> Ok (Serve_request Srv_analyze)
  | "serve" :: "whatif" :: n :: rest ->
      let* n = int_of_token n in
      let* deltas = parse_pairs "serve whatif" n rest in
      Ok (Serve_request (Srv_whatif deltas))
  | [ "serve"; "gradient"; "mu" ] -> Ok (Serve_request (Srv_gradient Seed_mu))
  | [ "serve"; "gradient"; "var" ] -> Ok (Serve_request (Srv_gradient Seed_var))
  | [ "serve"; "gradient"; "mu-k-sigma"; k ] ->
      let* k = float_of_token k in
      Ok (Serve_request (Srv_gradient (Seed_mu_k_sigma k)))
  | [ "serve"; "degraded" ] -> Ok (Serve_request Srv_degraded)
  | _ -> Error (Printf.sprintf "unparseable op line %S" line)

let circuit_to_line = function
  | Named name -> "named " ^ name
  | Dag { n_gates; n_pis; depth; seed } ->
      Printf.sprintf "dag %d %d %d %d" n_gates n_pis depth seed

let circuit_of_line line =
  match
    String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
  with
  | [ "named"; name ] -> Ok (Named name)
  | [ "dag"; n; p; d; s ] ->
      let* n_gates = int_of_token n in
      let* n_pis = int_of_token p in
      let* depth = int_of_token d in
      let* seed = int_of_token s in
      Ok (Dag { n_gates; n_pis; depth; seed })
  | _ -> Error (Printf.sprintf "unparseable circuit line %S" line)

let circuit_flags = function
  | Named name -> Printf.sprintf "--circuit %s" name
  | Dag { n_gates; n_pis; depth; seed } ->
      Printf.sprintf "--dag %d,%d,%d,%d" n_gates n_pis depth seed

let pp ppf op = Format.pp_print_string ppf (to_line op)
let pp_circuit ppf c = Format.pp_print_string ppf (circuit_to_line c)
