(* Keyed-seed op-sequence generation.

   Op k of run `seed` is a pure function of (seed, k): every draw for
   that op comes from Util.Rng.keyed seed ~key:k, the same discipline as
   the batched Monte Carlo engine.  Sequences are therefore replayable
   from the seed alone, and shrinking can drop or edit ops without
   perturbing the draws of the ops it keeps. *)

type weights = {
  resize : int;
  batch_resize : int;
  set_objective : int;
  invalidate : int;
  analyze : int;
  gradient : int;
  inject_fault : int;
  set_budget : int;
  solve : int;
  switch_warm_start : int;
  serve : int;
  corrupt : int;
}

let zero_weights =
  {
    resize = 0;
    batch_resize = 0;
    set_objective = 0;
    invalidate = 0;
    analyze = 0;
    gradient = 0;
    inject_fault = 0;
    set_budget = 0;
    solve = 0;
    switch_warm_start = 0;
    serve = 0;
    corrupt = 0;
  }

(* Corrupting ops are off by default: under the default mix every
   invariant must hold, so a clean CI sweep really is a clean bill of
   health.  The planted-divergence demo and `statsize sim --plant`
   opt in. *)
let default_weights =
  {
    resize = 30;
    batch_resize = 12;
    set_objective = 4;
    invalidate = 4;
    analyze = 20;
    gradient = 14;
    inject_fault = 3;
    set_budget = 3;
    solve = 2;
    switch_warm_start = 3;
    serve = 8;
    corrupt = 0;
  }

type config = {
  circuit : Op.circuit;
  n_ops : int;
  weights : weights;
  max_batch : int;
}

let default =
  {
    circuit = Op.Dag { n_gates = 150; n_pis = 20; depth = 8; seed = 1 };
    n_ops = 100;
    weights = default_weights;
    max_batch = 16;
  }

let instantiate = function
  | Op.Named name -> (
      match Circuit.Generate.by_name name with
      | Some net -> net
      | None -> invalid_arg (Printf.sprintf "Sim.Gen: unknown circuit %S" name))
  | Op.Dag { n_gates; n_pis; depth; seed } ->
      Circuit.Generate.random_dag
        {
          Circuit.Generate.default_spec with
          Circuit.Generate.n_gates;
          n_pis;
          target_depth = depth;
          seed;
        }

(* Cumulative class table; a draw in [0, total) selects the class. *)
let classes w =
  [
    (w.resize, `Resize);
    (w.batch_resize, `Batch);
    (w.set_objective, `Objective);
    (w.invalidate, `Invalidate);
    (w.analyze, `Analyze);
    (w.gradient, `Gradient);
    (w.inject_fault, `Fault);
    (w.set_budget, `Budget);
    (w.solve, `Solve);
    (w.switch_warm_start, `Warm);
    (w.serve, `Serve);
    (w.corrupt, `Corrupt);
  ]

let draw_resize rng ~n ~maxs =
  let gate = Util.Rng.int rng n in
  let size = Util.Rng.uniform rng ~lo:1.0 ~hi:maxs.(gate) in
  (gate, size)

let op ~net ~seed ~key config =
  let rng = Util.Rng.keyed seed ~key in
  let n = Circuit.Netlist.n_gates net in
  let maxs = Circuit.Netlist.max_sizes net in
  let total =
    List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 (classes config.weights)
  in
  if total <= 0 then invalid_arg "Sim.Gen: all op weights are zero";
  let r = Util.Rng.int rng total in
  let cls =
    let rec pick acc = function
      | [] -> assert false
      | (w, c) :: rest ->
          let acc = acc + max 0 w in
          if r < acc then c else pick acc rest
    in
    pick 0 (classes config.weights)
  in
  match cls with
  | `Resize ->
      let gate, size = draw_resize rng ~n ~maxs in
      Op.Resize { gate; size }
  | `Batch ->
      (* Mirror the legacy test_incr mutation: ~n/20 coordinates per
         sparse delta, capped by the config. *)
      let k = 1 + Util.Rng.int rng (min config.max_batch (max 1 (n / 20))) in
      Op.Batch_resize (Array.init k (fun _ -> draw_resize rng ~n ~maxs))
  | `Objective -> (
      match Util.Rng.int rng 4 with
      | 0 -> Op.Set_objective (Op.Obj_min_delay 0.)
      | 1 -> Op.Set_objective (Op.Obj_min_delay 3.)
      | 2 ->
          let k = if Util.Rng.int rng 2 = 0 then 0. else 1. in
          let frac = Util.Rng.uniform rng ~lo:0.88 ~hi:0.98 in
          Op.Set_objective (Op.Obj_min_area_bounded { k; frac })
      | _ ->
          let frac = Util.Rng.uniform rng ~lo:1.0 ~hi:1.08 in
          Op.Set_objective (Op.Obj_min_sigma { frac }))
  | `Invalidate -> Op.Invalidate
  | `Analyze -> Op.Analyze
  | `Gradient -> (
      match Util.Rng.int rng 3 with
      | 0 -> Op.Gradient Op.Seed_mu
      | 1 -> Op.Gradient Op.Seed_var
      | _ ->
          let k = if Util.Rng.int rng 2 = 0 then 1. else 3. in
          Op.Gradient (Op.Seed_mu_k_sigma k))
  | `Fault ->
      let kind =
        match Util.Rng.int rng 5 with
        | 0 -> Op.Nan_value
        | 1 -> Op.Inf_value
        | 2 -> Op.Nan_gradient
        | 3 -> Op.Inf_gradient
        | _ -> Op.Perturb (Util.Rng.uniform rng ~lo:0.1 ~hi:0.5)
      in
      Op.Inject_fault { kind; first = 1 + Util.Rng.int rng 2 }
  | `Budget ->
      (* Evaluation budgets only: deadlines depend on the wall clock and
         would make replays machine-dependent. *)
      let max_evals = [| 500; 1000; 2000 |].(Util.Rng.int rng 3) in
      Op.Set_budget { deadline = None; max_evals = Some max_evals }
  | `Solve -> Op.Solve
  | `Warm ->
      Op.Switch_warm_start
        (match Util.Rng.int rng 3 with 0 -> `None | 1 -> `Gp | _ -> `Baseline)
  | `Serve -> (
      (* The daemon path, with the same shapes the generator already
         uses for direct ops: analyze weighted double, what-ifs sized
         like sparse batch deltas. *)
      match Util.Rng.int rng 5 with
      | 0 | 1 -> Op.Serve_request Op.Srv_analyze
      | 2 ->
          let k = 1 + Util.Rng.int rng (min config.max_batch (max 1 (n / 20))) in
          Op.Serve_request
            (Op.Srv_whatif (Array.init k (fun _ -> draw_resize rng ~n ~maxs)))
      | 3 -> (
          match Util.Rng.int rng 3 with
          | 0 -> Op.Serve_request (Op.Srv_gradient Op.Seed_mu)
          | 1 -> Op.Serve_request (Op.Srv_gradient Op.Seed_var)
          | _ ->
              let k = if Util.Rng.int rng 2 = 0 then 1. else 3. in
              Op.Serve_request (Op.Srv_gradient (Op.Seed_mu_k_sigma k)))
      | _ -> Op.Serve_request Op.Srv_degraded)
  | `Corrupt ->
      let gate = Util.Rng.int rng n in
      let bump = Util.Rng.uniform rng ~lo:0.5 ~hi:2.0 in
      Op.Corrupt_cache { gate; bump }

let sequence ~net ~seed config =
  List.init config.n_ops (fun key -> op ~net ~seed ~key config)
