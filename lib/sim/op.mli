(** Typed operation vocabulary of the deterministic simulation harness.

    An op names one action against the real engine APIs — resize a gate,
    swap the sizing objective, invalidate the incremental cache, analyze,
    query a gradient, arm a fault, change a budget, run a solve, or
    corrupt the incremental engine's cached planes (the deliberate fault
    the invariant suite must catch).  {!Sim.State.apply} gives each op
    its semantics; this module only defines the vocabulary and its
    bit-exact line serialization (floats travel as [%h] hex literals, so
    a saved trace replays the exact bits that produced a failure). *)

type seed_kind =
  | Seed_mu  (** adjoint seed (1, 0): gradient of {m \mu_{T_{max}}} *)
  | Seed_var  (** adjoint seed (0, 1): gradient of {m \sigma^2_{T_{max}}} *)
  | Seed_mu_k_sigma of float  (** gradient of {m \mu + k\sigma} *)

(** Objective specs are relative to the circuit under test: bounds and
    mean targets are fractions of the unsized mean delay, so one op
    vocabulary drives any generated circuit. *)
type objective =
  | Obj_min_delay of float  (** [Sizing.Objective.Min_delay k] *)
  | Obj_min_area_bounded of { k : float; frac : float }
      (** [Min_area_bounded] with [bound = frac * unsized mu] *)
  | Obj_min_sigma of { frac : float }
      (** [Min_sigma] with [mu = frac * unsized mu] *)

(** Mirror of {!Util.Fault.kind} (kept separate so op serialization does
    not depend on that module's representation). *)
type fault_kind =
  | Nan_value
  | Inf_value
  | Nan_gradient
  | Inf_gradient
  | Perturb of float

(** A daemon-path request: the same timing question asked through
    {!Serve.Exec} against the state's {e own} warm serve target (its
    committed sizes and persistent engine) rather than the sim's
    incremental engine.  The serve-soundness invariant demands each
    answer be bit-identical to a fresh batch evaluation, and that the
    degraded variant is answered by the flagged mean-only rung. *)
type serve =
  | Srv_analyze  (** serve [analyze] at the sim's current sizes *)
  | Srv_whatif of (int * float) array
      (** serve [whatif]: (gate, size) deltas against the serve target's
          committed sizes; indices reduced and sizes clamped like
          {!Resize} so ops survive shrinking *)
  | Srv_gradient of seed_kind  (** serve [gradient] at the current sizes *)
  | Srv_degraded
      (** serve [analyze] under an already-expired deadline (hand-driven
          clock, so replay-deterministic): must take the graceful-
          degradation rung — a flagged mean-only {!Sta.Dsta} answer *)

type t =
  | Resize of { gate : int; size : float }
      (** set one speed factor; the gate index is reduced modulo the gate
          count and the size clamped into the gate's box, so ops stay
          valid while the shrinker trims the circuit *)
  | Batch_resize of (int * float) array  (** several resizes in one op *)
  | Set_objective of objective
  | Invalidate  (** wholesale {!Sta.Incr.invalidate} *)
  | Analyze  (** incremental analyze at the current sizes *)
  | Gradient of seed_kind  (** incremental value-and-gradient query *)
  | Inject_fault of { kind : fault_kind; first : int }
      (** arm a fault site ([First first] trigger) for the next {!Solve} *)
  | Set_budget of { deadline : float option; max_evals : int option }
      (** budgets for subsequent solves.  The generator only emits
          evaluation budgets: a wall-clock deadline makes a solve stop at
          a machine-dependent iterate, which would break replay. *)
  | Solve  (** run {!Sizing.Engine.solve} at the current objective *)
  | Switch_warm_start of [ `None | `Gp | `Baseline ]
      (** set {!Sizing.Engine.options.warm_start} for subsequent solves;
          GP-involved solves are additionally checked by the gp-sound
          invariant *)
  | Corrupt_cache of { gate : int; bump : float }
      (** fault-inject the incremental engine's cached arrival plane:
          add [bump] to the gate's cached arrival mean.  The differential
          invariants must catch this — it is the planted divergence the
          shrinking demo minimizes. *)
  | Serve_request of serve
      (** execute one daemon-path request via {!Serve.Exec}; checked by
          the serve-soundness invariant *)

(** The circuit under test, by name ({!Circuit.Generate.by_name}) or as
    a generated-DAG spec — serialized into traces so a replay rebuilds
    the identical netlist. *)
type circuit =
  | Named of string
  | Dag of { n_gates : int; n_pis : int; depth : int; seed : int }

val to_line : t -> string
(** One-line, space-separated rendering; floats as [%h] hex literals. *)

val of_line : string -> (t, string) result
(** Inverse of {!to_line}; [to_line] round-trips bit-exactly. *)

val circuit_to_line : circuit -> string
val circuit_of_line : string -> (circuit, string) result

val circuit_flags : circuit -> string
(** The [statsize sim] flags selecting this circuit, for repro hints. *)

val pp : Format.formatter -> t -> unit
val pp_circuit : Format.formatter -> circuit -> unit
