(* Automatic minimization of failing traces.

   Given a trace and its failure, find a smaller trace that violates the
   SAME invariant (matched by name — shrinking must not wander off to a
   different bug).  Four passes, each re-truncating to the violating op
   whenever a candidate is accepted:

     1. truncate  — ops after the violating op are irrelevant by
        construction (the harness stops at the first violation);
     2. ddmin     — Zeller-style delta debugging over the op list:
        remove chunks at increasing granularity;
     3. circuit   — halve generated-DAG gate counts while the failure
        persists (op gate indices are reduced modulo the gate count, so
        the op list stays valid on the smaller circuit);
     4. args      — per-op argument shrinking: sizes toward 1.0, batches
        toward singletons, gradient seeds toward Seed_mu, objectives
        toward Min_delay 0, warm starts to none, corruption bumps halved,
        fault counts to 1;

   followed by a final ddmin pass, since simpler args can unlock further
   op removals.  Every candidate evaluation is one full deterministic
   harness run, bounded by [max_runs]. *)

type result = { trace : Trace.t; failure : Harness.failure; runs : int }

let truncate_ops ops keep = List.filteri (fun i _ -> i < keep) ops

let split_chunks ops n =
  let len = List.length ops in
  let base = len / n and extra = len mod n in
  let rec go i rem acc =
    if i >= n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let chunk, rest =
        let rec take k xs acc =
          if k = 0 then (List.rev acc, xs)
          else match xs with [] -> (List.rev acc, []) | x :: r -> take (k - 1) r (x :: acc)
        in
        take size rem []
      in
      go (i + 1) rest (chunk :: acc)
  in
  go 0 ops []

let minimize ?(max_runs = 400) ~run trace0 (fail0 : Harness.failure) =
  let target = fail0.Harness.violation.Invariant.name in
  let runs = ref 0 in
  (* Pass 1: nothing after the violating op matters. *)
  let best =
    ref
      ( { trace0 with Trace.ops = truncate_ops trace0.Trace.ops (fail0.Harness.step + 1) },
        fail0 )
  in
  (* One candidate evaluation; accepts (and re-truncates) on a failure
     of the same invariant. *)
  let try_ (candidate : Trace.t) =
    if !runs >= max_runs || candidate.Trace.ops = [] then false
    else begin
      incr runs;
      match run candidate with
      | Some (f : Harness.failure)
        when f.Harness.violation.Invariant.name = target ->
          best :=
            ( { candidate with
                Trace.ops = truncate_ops candidate.Trace.ops (f.Harness.step + 1) },
              f );
          true
      | _ -> false
    end
  in
  (* Pass 2 (and 5): ddmin over the op list. *)
  let ddmin () =
    let granularity = ref 2 in
    let continue_ = ref true in
    while !continue_ && !runs < max_runs do
      let trace, _ = !best in
      let ops = trace.Trace.ops in
      let len = List.length ops in
      if len <= 1 then continue_ := false
      else begin
        let n = min !granularity len in
        let chunks = split_chunks ops n in
        let removed_some =
          List.exists
            (fun i ->
              let candidate_ops =
                List.concat (List.filteri (fun j _ -> j <> i) chunks)
              in
              try_ { trace with Trace.ops = candidate_ops })
            (List.init (List.length chunks) Fun.id)
        in
        if removed_some then granularity := max 2 (!granularity - 1)
        else if n >= len then continue_ := false
        else granularity := min len (2 * n)
      end
    done
  in
  ddmin ();
  (* Pass 3: shrink the circuit itself (generated DAGs only). *)
  let rec shrink_circuit () =
    let trace, _ = !best in
    match trace.Trace.circuit with
    | Op.Named _ -> ()
    | Op.Dag ({ n_gates; n_pis; _ } as spec) when n_gates > 16 ->
        let n_gates' = max 16 (n_gates / 2) in
        let smaller =
          Op.Dag { spec with n_gates = n_gates'; n_pis = max 2 (min n_pis (n_gates' / 4)) }
        in
        if try_ { trace with Trace.circuit = smaller } then shrink_circuit ()
    | Op.Dag _ -> ()
  in
  shrink_circuit ();
  (* Pass 4: shrink op arguments toward their simplest forms. *)
  let candidates_for = function
    | Op.Resize { gate; size } ->
        let simpler = 1. +. ((size -. 1.) /. 2.) in
        if size <= 1. then []
        else
          Op.Resize { gate; size = 1.0 }
          :: (if simpler < size then [ Op.Resize { gate; size = simpler } ] else [])
    | Op.Batch_resize pairs when Array.length pairs > 1 ->
        let g, s = pairs.(0) in
        [
          Op.Resize { gate = g; size = s };
          Op.Batch_resize (Array.sub pairs 0 (Array.length pairs / 2));
        ]
    | Op.Batch_resize pairs when Array.length pairs = 1 ->
        let g, s = pairs.(0) in
        [ Op.Resize { gate = g; size = s } ]
    | Op.Batch_resize _ -> []
    | Op.Gradient (Op.Seed_mu_k_sigma _) | Op.Gradient Op.Seed_var ->
        [ Op.Gradient Op.Seed_mu ]
    | Op.Set_objective (Op.Obj_min_delay 0.) -> []
    | Op.Set_objective _ -> [ Op.Set_objective (Op.Obj_min_delay 0.) ]
    | Op.Switch_warm_start `None -> []
    | Op.Switch_warm_start _ -> [ Op.Switch_warm_start `None ]
    | Op.Corrupt_cache { gate; bump } when Float.abs bump > 0.125 ->
        [ Op.Corrupt_cache { gate; bump = bump /. 2. } ]
    | Op.Inject_fault { kind; first } when first > 1 ->
        [ Op.Inject_fault { kind; first = 1 } ]
    | Op.Serve_request (Op.Srv_whatif deltas) when Array.length deltas > 1 ->
        [
          Op.Serve_request Op.Srv_analyze;
          Op.Serve_request
            (Op.Srv_whatif (Array.sub deltas 0 (Array.length deltas / 2)));
        ]
    | Op.Serve_request (Op.Srv_whatif _ | Op.Srv_gradient _) ->
        [ Op.Serve_request Op.Srv_analyze ]
    | _ -> []
  in
  let shrink_args () =
    let progress = ref true in
    while !progress && !runs < max_runs do
      progress := false;
      let trace, _ = !best in
      let ops = Array.of_list trace.Trace.ops in
      Array.iteri
        (fun i op ->
          List.iter
            (fun replacement ->
              (* Re-read the current best: an earlier acceptance in this
                 sweep may have changed it. *)
              let trace, _ = !best in
              let ops_now = Array.of_list trace.Trace.ops in
              if i < Array.length ops_now && ops_now.(i) = op then begin
                let candidate = Array.copy ops_now in
                candidate.(i) <- replacement;
                if try_ { trace with Trace.ops = Array.to_list candidate } then
                  progress := true
              end)
            (candidates_for op))
        ops
    done
  in
  shrink_args ();
  (* Pass 5: simpler args can unlock further op removals. *)
  ddmin ();
  let trace, failure = !best in
  let trace =
    { trace with Trace.violation = Some failure.Harness.violation.Invariant.name }
  in
  { trace; failure; runs = !runs }
