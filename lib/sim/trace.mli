(** Serialized failure traces — the file [statsize sim --replay]
    re-executes.

    A trace pins everything a deterministic re-run needs: the scenario
    seed (fault-plan keying), the circuit spec (rebuilt, not stored),
    and the exact op list with floats as [%h] hex literals.  The
    optional violation name records what the trace reproduces. *)

type t = {
  seed : int;
  circuit : Op.circuit;
  ops : Op.t list;
  violation : string option;
}

val to_string : t -> string
val of_string : string -> (t, string) result
(** [of_string (to_string t) = Ok t].  Blank lines and [#] comment lines
    are ignored. *)

val save : string -> t -> unit
val load : string -> (t, string) result

val replay_command : string -> string
(** The copy-pasteable [statsize sim --replay <path>] invocation. *)

val run :
  ?pools:(int * Util.Pool.t) list ->
  ?incr_pool:Util.Pool.t ->
  ?suite:Invariant.check list ->
  ?model:Circuit.Sigma_model.t ->
  t ->
  Harness.report
(** Execute the trace: {!Harness.run} with the trace's seed, circuit
    and ops. *)
