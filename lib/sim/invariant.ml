(* The registered invariant suite the harness runs after every op.

   The differential checks are bitwise: in exact mode the incremental
   engine, the arena sweeps, the boxed reference sweeps and every pooled
   configuration must agree to the last Int64 bit (the repo-wide
   determinism contract).  The remaining checks are structural: corner
   envelopes, correlation-matrix sanity, recovery-ladder soundness under
   injected faults, monotone engine counters, and the release-profile
   allocation ceiling. *)

type violation = { name : string; detail : string }

type check = {
  name : string;
  applies : State.t -> Op.t -> bool;
  run : State.t -> Op.t -> (unit, string) result;
}

let always _ _ = true

let on_analyze _ = function Op.Analyze -> true | _ -> false

let on_gradient _ = function Op.Gradient _ -> true | _ -> false

let on_solve _ = function Op.Solve -> true | _ -> false

let on_serve _ = function Op.Serve_request _ -> true | _ -> false

(* ---- bit-level comparisons -------------------------------------------------- *)

let bits = Int64.bits_of_float

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let ( let* ) = Result.bind

let normal_identical what (a : Statdelay.Normal.t) (b : Statdelay.Normal.t) =
  if
    Int64.equal (bits a.Statdelay.Normal.mu) (bits b.Statdelay.Normal.mu)
    && Int64.equal (bits a.Statdelay.Normal.var) (bits b.Statdelay.Normal.var)
  then Ok ()
  else
    err "%s: (%h, %h) <> (%h, %h)" what a.Statdelay.Normal.mu
      a.Statdelay.Normal.var b.Statdelay.Normal.mu b.Statdelay.Normal.var

let floats_identical what (a : float array) (b : float array) =
  if Array.length a <> Array.length b then
    err "%s: length %d <> %d" what (Array.length a) (Array.length b)
  else
    let rec go i =
      if i >= Array.length a then Ok ()
      else if Int64.equal (bits a.(i)) (bits b.(i)) then go (i + 1)
      else err "%s: slot %d: %h <> %h" what i a.(i) b.(i)
    in
    go 0

let results_identical what (a : Sta.Ssta.result) (b : Sta.Ssta.result) =
  let* () =
    normal_identical (what ^ ": circuit") a.Sta.Ssta.circuit b.Sta.Ssta.circuit
  in
  let* () =
    floats_identical (what ^ ": loads") a.Sta.Ssta.loads b.Sta.Ssta.loads
  in
  let rec arrivals i =
    if i >= Array.length a.Sta.Ssta.arrival then Ok ()
    else
      let* () =
        normal_identical
          (Printf.sprintf "%s: arrival %d" what i)
          a.Sta.Ssta.arrival.(i)
          b.Sta.Ssta.arrival.(i)
      in
      arrivals (i + 1)
  in
  let* () = arrivals 0 in
  let rec delays i =
    if i >= Array.length a.Sta.Ssta.gate_delay then Ok ()
    else
      let* () =
        normal_identical
          (Printf.sprintf "%s: gate_delay %d" what i)
          a.Sta.Ssta.gate_delay.(i)
          b.Sta.Ssta.gate_delay.(i)
      in
      delays (i + 1)
  in
  delays 0

(* ---- differential checks ---------------------------------------------------- *)

(* The heart of the harness: after EVERY op, the warm incremental engine
   must reproduce a from-scratch arena sweep bit-for-bit.  This is the
   check that catches Corrupt_cache, stale dirty-cone state, missed
   invalidations.  On Analyze/Gradient ops the scratch sweep is also
   cross-checked against every pooled domain configuration. *)
let incr_vs_scratch (st : State.t) op =
  let inc = Sta.Incr.analyze st.State.incr ~sizes:st.State.sizes in
  let scratch =
    Sta.Ssta.analyze ~arena:st.State.scratch ~model:st.State.model st.State.net
      ~sizes:st.State.sizes
  in
  let* () = results_identical "incr vs scratch" inc scratch in
  match op with
  | Op.Analyze | Op.Gradient _ ->
      List.fold_left
        (fun acc (jobs, pool) ->
          let* () = acc in
          let pooled =
            Sta.Ssta.analyze ~pool ~arena:st.State.scratch ~model:st.State.model
              st.State.net ~sizes:st.State.sizes
          in
          results_identical
            (Printf.sprintf "scratch vs %d-domain scratch" jobs)
            scratch pooled)
        (Ok ()) st.State.pools
  | _ -> Ok ()

(* Arena sweeps vs the boxed reference implementation (the golden
   record-based oracle kept verbatim from the original engine). *)
let arena_vs_boxed (st : State.t) _ =
  let arena =
    Sta.Ssta.analyze ~arena:st.State.scratch ~model:st.State.model st.State.net
      ~sizes:st.State.sizes
  in
  let boxed =
    Sta.Ssta.Boxed.analyze ~model:st.State.model st.State.net
      ~sizes:st.State.sizes
  in
  results_identical "arena vs boxed" arena boxed

(* After a Gradient op: the incremental engine's gradient must equal the
   from-scratch arena gradient, the boxed reference gradient, and every
   pooled configuration, bit for bit. *)
let gradient_vs_scratch (st : State.t) _ =
  match st.State.last_gradient with
  | None -> Ok ()
  | Some (kind, inc_grad) ->
      let seed = State.seed_fun kind in
      let scratch_grad =
        Sta.Ssta.gradient ~arena:st.State.scratch ~model:st.State.model
          st.State.net ~sizes:st.State.sizes ~seed
      in
      let* () = floats_identical "incr vs scratch gradient" inc_grad scratch_grad in
      let boxed_grad =
        Sta.Ssta.Boxed.gradient ~model:st.State.model st.State.net
          ~sizes:st.State.sizes ~seed
      in
      let* () = floats_identical "scratch vs boxed gradient" scratch_grad boxed_grad in
      List.fold_left
        (fun acc (jobs, pool) ->
          let* () = acc in
          let pooled =
            Sta.Ssta.gradient ~pool ~arena:st.State.scratch ~model:st.State.model
              st.State.net ~sizes:st.State.sizes ~seed
          in
          floats_identical
            (Printf.sprintf "scratch vs %d-domain gradient" jobs)
            scratch_grad pooled)
        (Ok ()) st.State.pools

(* ---- structural checks ------------------------------------------------------ *)

let finite what v = if Util.Guard.is_finite v then Ok () else err "%s: %h" what v

(* Corner envelope: best <= typical <= worst, the typical corner equals
   the deterministic analysis, the guard band is monotone in k, and the
   statistical mean dominates the typical corner (Clark's max mean is
   >= the max of the operand means, which composes through the DAG). *)
let corner_envelope (st : State.t) _ =
  let c1 =
    Sta.Corner.analyze ~k:1. ~model:st.State.model st.State.net
      ~sizes:st.State.sizes
  in
  let c3 =
    Sta.Corner.analyze ~k:3. ~model:st.State.model st.State.net
      ~sizes:st.State.sizes
  in
  let* () = finite "best corner" c3.Sta.Corner.best in
  let* () = finite "worst corner" c3.Sta.Corner.worst in
  let* () =
    if
      c3.Sta.Corner.best <= c3.Sta.Corner.typical
      && c3.Sta.Corner.typical <= c3.Sta.Corner.worst
    then Ok ()
    else
      err "corner order violated: best %h typical %h worst %h"
        c3.Sta.Corner.best c3.Sta.Corner.typical c3.Sta.Corner.worst
  in
  let* () =
    if c3.Sta.Corner.worst >= c1.Sta.Corner.worst -. 1e-12 then Ok ()
    else err "worst corner not monotone in k: k=3 %h < k=1 %h" c3.Sta.Corner.worst c1.Sta.Corner.worst
  in
  let* () =
    if c3.Sta.Corner.best <= c1.Sta.Corner.best +. 1e-12 then Ok ()
    else err "best corner not monotone in k: k=3 %h > k=1 %h" c3.Sta.Corner.best c1.Sta.Corner.best
  in
  let det = Sta.Dsta.analyze st.State.net ~sizes:st.State.sizes in
  let rel = 1e-9 *. Float.max 1. (Float.abs det.Sta.Dsta.circuit) in
  let* () =
    if Float.abs (c3.Sta.Corner.typical -. det.Sta.Dsta.circuit) <= rel then Ok ()
    else
      err "typical corner %h <> deterministic circuit delay %h"
        c3.Sta.Corner.typical det.Sta.Dsta.circuit
  in
  let ssta =
    Sta.Ssta.analyze ~arena:st.State.scratch ~model:st.State.model st.State.net
      ~sizes:st.State.sizes
  in
  let mu = Statdelay.Normal.mu ssta.Sta.Ssta.circuit in
  if mu >= c3.Sta.Corner.typical -. rel then Ok ()
  else err "statistical mean %h below typical corner %h" mu c3.Sta.Corner.typical

(* Correlation-aware analysis: matrix entries are correlations, moments
   are finite with nonnegative variance, and the "independent" half of
   compare_to_independent is bit-identical to the scratch Ssta sweep
   (both claim to be the paper's independence-assumption analysis). *)
let cssta_vs_ssta ~max_gates (st : State.t) _ =
  if Circuit.Netlist.n_gates st.State.net > max_gates then Ok ()
  else
    let res =
      Sta.Cssta.analyze ~model:st.State.model st.State.net ~sizes:st.State.sizes
    in
    let c = res.Sta.Cssta.circuit in
    let* () = finite "cssta circuit mu" c.Statdelay.Normal.mu in
    let* () = finite "cssta circuit var" c.Statdelay.Normal.var in
    let* () =
      if c.Statdelay.Normal.var >= 0. then Ok ()
      else err "cssta circuit variance negative: %h" c.Statdelay.Normal.var
    in
    let* () =
      let bad = ref None in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j r ->
              if !bad = None && not (Util.Guard.is_finite r && Float.abs r <= 1. +. 1e-9)
              then bad := Some (i, j, r))
            row)
        res.Sta.Cssta.correlation;
      match !bad with
      | None -> Ok ()
      | Some (i, j, r) -> err "correlation.(%d).(%d) = %h out of [-1, 1]" i j r
    in
    let independent, _ =
      Sta.Cssta.compare_to_independent ~model:st.State.model st.State.net
        ~sizes:st.State.sizes
    in
    let scratch =
      Sta.Ssta.analyze ~arena:st.State.scratch ~model:st.State.model st.State.net
        ~sizes:st.State.sizes
    in
    normal_identical "cssta independent half vs ssta" independent
      scratch.Sta.Ssta.circuit

(* Recovery-ladder soundness after a Solve: the solution is inside the
   box with finite, mutually consistent moments; a non-converged solve
   must explain itself (ladder rungs taken, or a budget expiry); and a
   NaN/Inf fault that actually fired must leave a trace in the ladder or
   a budget/breakdown termination — never a silently "converged" solve
   on corrupted arithmetic alone. *)
let recovery_sound (st : State.t) _ =
  match st.State.last_solve with
  | None -> Ok ()
  | Some s ->
      let* () = finite "solution mu" s.Sizing.Engine.mu in
      let* () = finite "solution sigma" s.Sizing.Engine.sigma in
      let* () = finite "solution area" s.Sizing.Engine.area in
      let* () =
        if s.Sizing.Engine.sigma >= 0. then Ok ()
        else err "solution sigma negative: %h" s.Sizing.Engine.sigma
      in
      let sizes = s.Sizing.Engine.sizes in
      let* () =
        if Array.length sizes <> Array.length st.State.maxs then
          err "solution has %d sizes for %d gates" (Array.length sizes)
            (Array.length st.State.maxs)
        else
          let rec go i =
            if i >= Array.length sizes then Ok ()
            else if
              sizes.(i) >= 1. -. 1e-6 && sizes.(i) <= st.State.maxs.(i) +. 1e-6
            then go (i + 1)
            else
              err "solution size %d = %h outside [1, %h]" i sizes.(i)
                st.State.maxs.(i)
          in
          go 0
      in
      let explained =
        s.Sizing.Engine.recovery <> []
        || s.Sizing.Engine.termination <> Nlp.Auglag.Converged
      in
      let* () =
        if s.Sizing.Engine.converged || explained then Ok ()
        else Error "solve neither converged nor explained (no rungs, Converged termination)"
      in
      (* Faults fired during the solve: the result must either still
         have converged (the ladder recovered) or explain itself with
         ladder rungs / a non-Converged termination — never a silent
         clean first attempt on corrupted arithmetic. *)
      if st.State.last_solve_faults = 0 then Ok ()
      else if
        s.Sizing.Engine.recovery <> []
        || s.Sizing.Engine.termination <> Nlp.Auglag.Converged
        || s.Sizing.Engine.converged
      then Ok ()
      else
        err "%d faults fired but solve shows no recovery and no convergence"
          st.State.last_solve_faults

(* GP-soundness after a Solve that involved the GP backend (a [`Gp]
   warm start, or a gp-fallback rung in the recovery trail): the GP
   hands the engine sizes, never timing numbers, so the reported
   statistical moments and area must be exactly what a from-scratch
   sweep at the reported sizes produces — bit for bit. *)
let gp_sound (st : State.t) _ =
  match st.State.last_solve with
  | None -> Ok ()
  | Some s ->
      let involved =
        st.State.warm_start = `Gp
        || List.exists
             (fun (a : Sizing.Engine.attempt) ->
               a.Sizing.Engine.rung = Sizing.Engine.Gp_fallback)
             s.Sizing.Engine.recovery
      in
      if not involved then Ok ()
      else
        let r =
          Sta.Ssta.analyze ~arena:st.State.scratch ~model:st.State.model
            st.State.net ~sizes:s.Sizing.Engine.sizes
        in
        let* () =
          normal_identical "gp-sound: reported circuit moments vs scratch replay"
            s.Sizing.Engine.timing.Sta.Ssta.circuit r.Sta.Ssta.circuit
        in
        let area = Circuit.Netlist.area st.State.net ~sizes:s.Sizing.Engine.sizes in
        if Int64.equal (bits area) (bits s.Sizing.Engine.area) then Ok ()
        else err "gp-sound: reported area %h <> recomputed %h" s.Sizing.Engine.area area

(* Serve-soundness: a daemon-path answer (Serve.Exec against the
   state's warm serve target) must be exactly what a fresh batch
   evaluation of the same request produces.  Payloads are compared
   through Protocol.result_json / Json.to_string, whose exact-round-trip
   float rendering makes string equality Int64 bit-identity — the same
   comparison the release soak makes between daemon replies and the
   batch CLI.  The expired-deadline variant must take the graceful-
   degradation rung (a flagged mean-only Dsta payload), never a full
   statistical answer and never an error. *)
let serve_sound (st : State.t) _ =
  match st.State.last_serve with
  | None -> Ok ()
  | Some (req, payload) ->
      let render p = Serve.Json.to_string (Serve.Protocol.result_json p) in
      let shape what expected got =
        err "%s answered %s, want %s" what
          (Format.asprintf "%a" Serve.Protocol.pp_payload got)
          expected
      in
      let expect what expected =
        let got = render payload and want = render expected in
        if String.equal got want then Ok ()
        else err "%s: served %s <> batch %s" what got want
      in
      let analysis ~sizes =
        let r =
          Sta.Ssta.analyze ~arena:st.State.scratch ~model:st.State.model
            st.State.net ~sizes
        in
        Serve.Protocol.Analysis
          {
            mu = Statdelay.Normal.mu r.Sta.Ssta.circuit;
            var = Statdelay.Normal.var r.Sta.Ssta.circuit;
            area = Circuit.Netlist.area st.State.net ~sizes;
            n_gates = Circuit.Netlist.n_gates st.State.net;
          }
      in
      match (req, payload) with
      | Op.Srv_analyze, Serve.Protocol.Analysis _ ->
          expect "serve analyze" (analysis ~sizes:st.State.sizes)
      | Op.Srv_analyze, got -> shape "serve analyze" "an analysis" got
      | Op.Srv_whatif deltas, Serve.Protocol.Analysis _ ->
          (* The committed sizes live on the serve target, not the sim
             state: a what-if is relative to the daemon's world. *)
          let sizes = Array.copy st.State.serve.Serve.Exec.sizes in
          Array.iter
            (fun (g, s) -> sizes.(g) <- s)
            (State.resolve_deltas st deltas);
          expect "serve whatif" (analysis ~sizes)
      | Op.Srv_whatif _, got -> shape "serve whatif" "an analysis" got
      | Op.Srv_gradient kind, Serve.Protocol.Gradient_result _ ->
          let seed = State.seed_fun kind in
          let r =
            Sta.Ssta.analyze ~arena:st.State.scratch ~model:st.State.model
              st.State.net ~sizes:st.State.sizes
          in
          let value =
            match kind with
            | Op.Seed_mu -> Statdelay.Normal.mu r.Sta.Ssta.circuit
            | Op.Seed_var -> Statdelay.Normal.var r.Sta.Ssta.circuit
            | Op.Seed_mu_k_sigma k ->
                Statdelay.Normal.mu_plus_k_sigma r.Sta.Ssta.circuit k
          in
          let gradient =
            Sta.Ssta.gradient ~arena:st.State.scratch ~model:st.State.model
              st.State.net ~sizes:st.State.sizes ~seed
          in
          expect "serve gradient"
            (Serve.Protocol.Gradient_result { value; gradient })
      | Op.Srv_gradient _, got -> shape "serve gradient" "a gradient" got
      | Op.Srv_degraded, Serve.Protocol.Degraded _ ->
          let det = Sta.Dsta.analyze st.State.net ~sizes:st.State.sizes in
          expect "serve degraded"
            (Serve.Protocol.Degraded
               {
                 typical = det.Sta.Dsta.circuit;
                 area = Circuit.Netlist.area st.State.net ~sizes:st.State.sizes;
               })
      | Op.Srv_degraded, got ->
          shape "serve degraded" "the flagged mean-only rung" got

(* Engine lifetime counters never go backwards; full sweeps only happen
   on cold or invalidated engines. *)
let monotone_counters (st : State.t) _ =
  let c = Sta.Incr.counters st.State.incr in
  let p = st.State.prev_counters in
  let pairs =
    [
      ("analyzes", c.Sta.Incr.analyzes, p.Sta.Incr.analyzes);
      ("cache_hits", c.Sta.Incr.cache_hits, p.Sta.Incr.cache_hits);
      ("full_sweeps", c.Sta.Incr.full_sweeps, p.Sta.Incr.full_sweeps);
      ( "gates_reevaluated",
        c.Sta.Incr.gates_reevaluated,
        p.Sta.Incr.gates_reevaluated );
      ("cutoffs", c.Sta.Incr.cutoffs, p.Sta.Incr.cutoffs);
      ("gradients", c.Sta.Incr.gradients, p.Sta.Incr.gradients);
      ("phase1_reused", c.Sta.Incr.phase1_reused, p.Sta.Incr.phase1_reused);
      ( "phase1_recomputed",
        c.Sta.Incr.phase1_recomputed,
        p.Sta.Incr.phase1_recomputed );
      ("partials_reused", c.Sta.Incr.partials_reused, p.Sta.Incr.partials_reused);
    ]
  in
  st.State.prev_counters <- c;
  List.fold_left
    (fun acc (what, cur, prev) ->
      let* () = acc in
      if cur >= prev then Ok ()
      else err "counter %s went backwards: %d -> %d" what prev cur)
    (Ok ()) pairs

(* Release-profile allocation ceiling: when the Clark kernels inline
   (the same canary as test_arena / bench), a steady-state forward sweep
   over the scratch arena stays under the flat 256-word ceiling
   regardless of circuit size.  Skipped in dev builds, where -opaque
   suppresses cross-library inlining. *)
let kernels_inlined =
  lazy
    (let out = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 2 in
     Bigarray.Array1.fill out 0.;
     let x = Sys.opaque_identity 0.5 in
     Gc.full_major ();
     let w0 = Gc.minor_words () in
     for _ = 1 to 1000 do
       Statdelay.Clark.add_into ~mu_a:(x +. 0.5) ~var_a:(x *. 0.2)
         ~mu_b:(x +. 1.5) ~var_b:(x *. 0.4) out 0
     done;
     ignore
       (Sys.opaque_identity
          (Statdelay.Clark.vget out 0 +. Statdelay.Clark.vget out 1));
     Gc.minor_words () -. w0 < 64.)

let words_per_eval ~reps f =
  f ();
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int reps

let words_ceiling (st : State.t) _ =
  if not (Lazy.force kernels_inlined) then Ok ()
  else
    let w =
      words_per_eval ~reps:3 (fun () ->
          Sta.Ssta.forward_raw ~model:st.State.model st.State.scratch
            ~sizes:st.State.sizes)
    in
    if w <= 256. then Ok ()
    else err "steady-state forward sweep allocates %.0f words/eval (ceiling 256)" w

(* ---- suite ------------------------------------------------------------------ *)

let default_suite ?(max_cssta_gates = 200) () =
  [
    { name = "incr-vs-scratch"; applies = always; run = incr_vs_scratch };
    { name = "monotone-counters"; applies = always; run = monotone_counters };
    { name = "arena-vs-boxed"; applies = on_analyze; run = arena_vs_boxed };
    { name = "gradient-vs-scratch"; applies = on_gradient; run = gradient_vs_scratch };
    { name = "corner-envelope"; applies = on_analyze; run = corner_envelope };
    {
      name = "cssta-vs-ssta";
      applies = on_analyze;
      run = cssta_vs_ssta ~max_gates:max_cssta_gates;
    };
    { name = "recovery-sound"; applies = on_solve; run = recovery_sound };
    { name = "gp-sound"; applies = on_solve; run = gp_sound };
    { name = "serve-sound"; applies = on_serve; run = serve_sound };
    { name = "words-per-eval"; applies = on_analyze; run = words_ceiling };
  ]

let check_all suite st op =
  let rec go = function
    | [] -> None
    | c :: rest ->
        if not (c.applies st op) then go rest
        else (
          match
            try c.run st op
            with exn -> Error ("exception: " ^ Printexc.to_string exn)
          with
          | Ok () -> go rest
          | Error detail -> Some { name = c.name; detail })
  in
  go suite
