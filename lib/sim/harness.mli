(** Deterministic op-list execution with per-op invariant checking.

    A run builds a fresh {!State} for the circuit, applies each op in
    order, and runs the invariant suite after every op, stopping at the
    first violation.  Runs are pure in [(circuit, seed, ops, suite)] —
    the property replay and shrinking stand on. *)

type failure = {
  step : int;  (** 0-based index of the violating op *)
  op : Op.t;
  violation : Invariant.violation;
}

type outcome = Passed | Failed of failure

type report = {
  outcome : outcome;
  ops_run : int;  (** ops applied, including the violating one *)
  counters : Sta.Incr.counters;  (** engine counters at end of run *)
  solves : int;
  faults_fired : int;
}

val run_net :
  ?pools:(int * Util.Pool.t) list ->
  ?incr_pool:Util.Pool.t ->
  ?suite:Invariant.check list ->
  ?model:Circuit.Sigma_model.t ->
  seed:int ->
  Circuit.Netlist.t ->
  Op.t list ->
  report
(** Run against an existing netlist.  [suite] defaults to
    {!Invariant.default_suite}; [model] to
    {!Circuit.Sigma_model.paper_default}.  An exception escaping an op
    is reported as a failure with violation name ["exception"]. *)

val run :
  ?pools:(int * Util.Pool.t) list ->
  ?incr_pool:Util.Pool.t ->
  ?suite:Invariant.check list ->
  ?model:Circuit.Sigma_model.t ->
  seed:int ->
  circuit:Op.circuit ->
  Op.t list ->
  report
(** {!run_net} on {!Gen.instantiate}[ circuit]. *)

val describe_failure :
  seed:int -> circuit:Op.circuit -> n_ops:int -> failure -> string
(** Human-readable failure summary ending in a copy-pasteable
    [statsize sim --seed N --ops K ...] repro command. *)
