(* The timing-as-a-service daemon.

   Threading model: any number of reader threads (one per connection,
   or the caller of [submit_line]) parse requests and push them through
   admission control under [lock]; a single executor thread owns every
   engine, breaker and registry structure, so request execution needs
   no locking at all.  Within a request, sweeps still parallelise over
   the Util.Pool domains — the pool provides data-parallelism *inside*
   one evaluation, the queue provides multiplexing *between* clients.

   Robustness ladder, outermost first:
   - admission control: a bounded queue sheds by Protocol.shed_class
     (solves first, analyses last) with typed [overloaded] replies;
   - deadlines: each request carries a Util.Guard budget started at
     admission, so time spent queued counts; an expired analyze/whatif
     degrades to a flagged mean-only Dsta answer, an expired
     gradient/size gets a typed [timeout];
   - per-circuit breakers quarantine a circuit whose solves keep
     breaking down, with typed [quarantined] replies;
   - solve failures invalidate the warmed engine (Exec) so poisoned
     incremental state never crosses requests;
   - shutdown: SIGTERM/SIGINT finish the in-flight request and answer
     every queued one with a typed [shutting_down]; EOF on stdin
     instead finishes the remaining queue before exiting.

   Every reply is counted in exactly one of served / degraded / shed /
   refused, so [submitted = served + degraded + shed + refused] holds at
   every quiescent point — the soak test's conservation law. *)

let requests_c = Util.Instr.counter "serve.requests"
let served_c = Util.Instr.counter "serve.served"
let degraded_c = Util.Instr.counter "serve.degraded"
let shed_c = Util.Instr.counter "serve.shed"
let refused_c = Util.Instr.counter "serve.refused"
let timeout_c = Util.Instr.counter "serve.timeout"
let quarantined_c = Util.Instr.counter "serve.quarantined"
let tripped_c = Util.Instr.counter "serve.tripped"

let request_kinds = [ "analyze"; "whatif"; "gradient"; "size"; "stats"; "health" ]

let latency_h =
  List.map (fun k -> (k, Util.Instr.histogram ("serve.latency." ^ k))) request_kinds

type config = {
  queue_capacity : int;
  warm_capacity : int;
  default_deadline_ms : float option;
  default_max_evals : int option;
  breaker : Breaker.config;
}

let default_config =
  {
    queue_capacity = 32;
    warm_capacity = 4;
    default_deadline_ms = None;
    default_max_evals = None;
    breaker = Breaker.default_config;
  }

type pending = {
  req : Protocol.request;
  budget : Util.Guard.budget option;
  reply : string -> unit;
}

type mode = Run | Finish | Drain

type t = {
  config : config;
  now : unit -> int;
  instrument : (Nlp.Problem.constrained -> Nlp.Problem.constrained) option;
  registry : Registry.t;
  queue : pending Admission.t;
  lock : Mutex.t;
  wake : Condition.t;
  mutable mode : mode;
  mutable executor : Thread.t option;
  stop_flag : bool Atomic.t;  (* set from signal handlers, polled by IO loops *)
  started_ns : int;
  (* Conservation counters: authoritative (the Instr mirrors are
     observability and vanish when instrumentation is off).  submitted,
     shed and refused-at-submit are mutated under [lock]; the rest only
     by the executor thread. *)
  mutable n_submitted : int;
  mutable n_served : int;
  mutable n_degraded : int;
  mutable n_shed : int;
  mutable n_refused : int;
}

let create ?pool ?(now = Util.Guard.monotonic_now) ?instrument
    ?(config = default_config) () =
  {
    config;
    now;
    instrument;
    registry = Registry.create ?pool ~capacity:config.warm_capacity ();
    queue = Admission.create ~capacity:config.queue_capacity;
    lock = Mutex.create ();
    wake = Condition.create ();
    mode = Run;
    executor = None;
    stop_flag = Atomic.make false;
    started_ns = now ();
    n_submitted = 0;
    n_served = 0;
    n_degraded = 0;
    n_shed = 0;
    n_refused = 0;
  }

let add_circuit t ~name ~model net =
  Registry.register ~breaker:t.config.breaker ~now:t.now t.registry ~name ~model
    net

let circuits t = Registry.names t.registry

(* ---- replies ------------------------------------------------------------------ *)

let send p payload =
  let line =
    Protocol.encode_response
      { id = p.req.id; kind = Protocol.kind_of_body p.req.body; payload }
  in
  try p.reply line with _ -> ()  (* a vanished client never kills the daemon *)

let count_refused t =
  t.n_refused <- t.n_refused + 1;
  Util.Instr.incr refused_c

let refuse t p code message =
  count_refused t;
  (match code with
  | Protocol.Timeout -> Util.Instr.incr timeout_c
  | Protocol.Quarantined -> Util.Instr.incr quarantined_c
  | _ -> ());
  send p (Protocol.Error { code; message })

(* ---- stats / health ----------------------------------------------------------- *)

let conservation_fields t =
  [
    ("submitted", Json.Num (float_of_int t.n_submitted));
    ("served", Json.Num (float_of_int t.n_served));
    ("degraded", Json.Num (float_of_int t.n_degraded));
    ("shed", Json.Num (float_of_int t.n_shed));
    ("refused", Json.Num (float_of_int t.n_refused));
  ]

let stats_json t =
  let snap = Util.Instr.snapshot ~all:true () in
  let breakers =
    List.filter_map
      (fun name ->
        match Registry.find t.registry name with
        | None -> None
        | Some e ->
            Some
              ( name,
                Json.Obj
                  [
                    ("state", Json.Str (Breaker.state_name (Breaker.state e.breaker)));
                    ("trips", Json.Num (float_of_int (Breaker.trips e.breaker)));
                  ] ))
      (Registry.names t.registry)
  in
  let histograms =
    List.map
      (fun (name, (h : Util.Instr.hist)) ->
        ( name,
          Json.Obj
            [
              ("observations", Json.Num (float_of_int h.observations));
              ("sum_seconds", Json.Num h.sum_seconds);
              ( "buckets",
                Json.List
                  (List.map
                     (fun (le, count) ->
                       Json.List [ Json.Num le; Json.Num (float_of_int count) ])
                     h.buckets) );
            ] ))
      snap.histograms
  in
  Json.Obj
    (conservation_fields t
    @ [
        ( "uptime_seconds",
          Json.Num (float_of_int (t.now () - t.started_ns) *. 1e-9) );
        ("queue_length", Json.Num (float_of_int (Admission.length t.queue)));
        ( "resident",
          Json.List
            (List.map (fun n -> Json.Str n) (Registry.resident t.registry)) );
        ("evictions", Json.Num (float_of_int (Registry.evictions t.registry)));
        ("breakers", Json.Obj breakers);
        ( "counters",
          Json.Obj
            (List.map
               (fun (name, v) -> (name, Json.Num (float_of_int v)))
               snap.counters) );
        ("histograms", Json.Obj histograms);
      ])

let health_payload t =
  Protocol.Health_result
    {
      status = (if t.mode = Run then "ok" else "draining");
      uptime_seconds = float_of_int (t.now () - t.started_ns) *. 1e-9;
      resident = Registry.resident t.registry;
    }

(* ---- execution (executor thread only) ----------------------------------------- *)

let default_circuit t =
  match Registry.names t.registry with [] -> None | n :: _ -> Some n

let exec_body t (p : pending) =
  match p.req.body with
  | Protocol.Stats ->
      (* Count this very request as served before snapshotting, so the
         conservation law (submitted = served + degraded + shed +
         refused) holds inside the report it is reading. *)
      t.n_served <- t.n_served + 1;
      Util.Instr.incr served_c;
      Protocol.Stats_result (stats_json t)
  | Protocol.Health -> health_payload t
  | body -> (
      let circuit =
        match p.req.circuit with Some c -> Some c | None -> default_circuit t
      in
      match Option.bind circuit (Registry.find t.registry) with
      | None ->
          Protocol.Error
            {
              code = Unknown_circuit;
              message =
                (match circuit with
                | None -> "no circuits registered"
                | Some c -> Printf.sprintf "unknown circuit %S" c);
            }
      | Some entry -> (
          match body with
          | Protocol.Size { objective; recovery } -> (
              match Breaker.admit entry.breaker with
              | Breaker.Reject ->
                  Protocol.Error
                    {
                      code = Quarantined;
                      message =
                        Printf.sprintf
                          "circuit %S is quarantined after repeated numerical \
                           breakdowns"
                          entry.name;
                    }
              | (Breaker.Allow | Breaker.Trial) as verdict ->
                  let target = Registry.target t.registry entry in
                  let outcome =
                    Exec.exec_size_tracked ?budget:p.budget
                      ?instrument:t.instrument target ~objective ~recovery
                  in
                  let trips_before = Breaker.trips entry.breaker in
                  (if outcome.failed then Breaker.failure entry.breaker
                   else
                     match outcome.payload with
                     | Protocol.Sized _ -> Breaker.success entry.breaker
                     | _ ->
                         (* Inconclusive (timeout, unconverged): an
                            [Allow] leaves the breaker untouched, but a
                            [Trial] burns the probe conservatively — a
                            fresh cooldown, not a reopened floodgate. *)
                         if verdict = Breaker.Trial then
                           Breaker.failure entry.breaker);
                  if Breaker.trips entry.breaker > trips_before then
                    Util.Instr.incr tripped_c;
                  outcome.payload)
          | body ->
              let target = Registry.target t.registry entry in
              Exec.exec ?budget:p.budget target body))

let handle t (p : pending) =
  let kind = Protocol.kind_of_body p.req.body in
  let t0 = t.now () in
  let payload = exec_body t p in
  (match List.assoc_opt kind latency_h with
  | Some h -> Util.Instr.observe_ns h (t.now () - t0)
  | None -> ());
  (match payload with
  | Protocol.Error { code; _ } ->
      count_refused t;
      (match code with
      | Protocol.Timeout -> Util.Instr.incr timeout_c
      | Protocol.Quarantined -> Util.Instr.incr quarantined_c
      | _ -> ())
  | Protocol.Degraded _ ->
      t.n_degraded <- t.n_degraded + 1;
      Util.Instr.incr degraded_c
  | Protocol.Stats_result _ -> ()  (* pre-counted in [exec_body] *)
  | _ ->
      t.n_served <- t.n_served + 1;
      Util.Instr.incr served_c);
  send p payload

let rec executor_loop t =
  Mutex.lock t.lock;
  while Admission.is_empty t.queue && t.mode = Run do
    Condition.wait t.wake t.lock
  done;
  match t.mode with
  | Drain ->
      let drained = Admission.drain t.queue in
      Mutex.unlock t.lock;
      List.iter
        (fun p -> refuse t p Protocol.Shutting_down "daemon is draining")
        drained
  | Run | Finish -> (
      match Admission.pop t.queue with
      | Some p ->
          Mutex.unlock t.lock;
          handle t p;
          executor_loop t
      | None ->
          (* Finish mode with an empty queue: clean exit.  (Run mode
             never reaches here — the wait loop holds until work or a
             mode change arrives.) *)
          Mutex.unlock t.lock;
          if t.mode = Run then executor_loop t)

(* ---- submission (any thread) -------------------------------------------------- *)

let make_budget t (req : Protocol.request) =
  let deadline_ms =
    match req.deadline_ms with
    | Some d -> Some d
    | None -> t.config.default_deadline_ms
  in
  let max_evals =
    match req.max_evals with
    | Some m -> Some m
    | None -> t.config.default_max_evals
  in
  match (deadline_ms, max_evals) with
  | None, None -> None
  | _ ->
      Some
        (Util.Guard.budget ~now:t.now
           ?deadline:(Option.map (fun ms -> ms *. 1e-3) deadline_ms)
           ?max_evals ())

let submit_line t ~reply line =
  Util.Instr.incr requests_c;
  match Protocol.decode_request line with
  | Error message ->
      Mutex.lock t.lock;
      t.n_submitted <- t.n_submitted + 1;
      t.n_refused <- t.n_refused + 1;
      Mutex.unlock t.lock;
      Util.Instr.incr refused_c;
      (try
         reply
           (Protocol.encode_response
              {
                id = Json.Null;
                kind = "unknown";
                payload = Error { code = Bad_request; message };
              })
       with _ -> ())
  | Ok req -> (
      let p = { req; budget = make_budget t req; reply } in
      Mutex.lock t.lock;
      t.n_submitted <- t.n_submitted + 1;
      if t.mode <> Run then begin
        t.n_refused <- t.n_refused + 1;
        Mutex.unlock t.lock;
        Util.Instr.incr refused_c;
        send p
          (Protocol.Error
             { code = Shutting_down; message = "daemon is draining" })
      end
      else
        match
          Admission.submit t.queue ~cls:(Protocol.shed_class req.body) p
        with
        | Admission.Enqueued ->
            Condition.signal t.wake;
            Mutex.unlock t.lock;
        | Admission.Shed_victim v ->
            t.n_shed <- t.n_shed + 1;
            Condition.signal t.wake;
            Mutex.unlock t.lock;
            Util.Instr.incr shed_c;
            send v
              (Protocol.Error
                 { code = Overloaded; message = "shed by admission control" })
        | Admission.Shed_self ->
            t.n_shed <- t.n_shed + 1;
            Mutex.unlock t.lock;
            Util.Instr.incr shed_c;
            send p
              (Protocol.Error
                 { code = Overloaded; message = "shed by admission control" }))

(* ---- lifecycle ----------------------------------------------------------------- *)

let start t =
  match t.executor with
  | Some _ -> invalid_arg "Server.start: already started"
  | None -> t.executor <- Some (Thread.create executor_loop t)

let request_stop t mode =
  Mutex.lock t.lock;
  if t.mode = Run then t.mode <- mode;
  Condition.broadcast t.wake;
  Mutex.unlock t.lock

let stop ?(drain = true) t =
  request_stop t (if drain then Drain else Finish);
  match t.executor with
  | Some th ->
      Thread.join th;
      t.executor <- None
  | None -> ()

let counters t =
  Mutex.lock t.lock;
  let r =
    ( t.n_submitted,
      t.n_served,
      t.n_degraded,
      t.n_shed,
      t.n_refused )
  in
  Mutex.unlock t.lock;
  r

(* ---- IO front-ends ------------------------------------------------------------- *)

let install_signal_handlers t =
  (* Handlers may run on any thread, so they only flip an atomic flag;
     the IO loops poll it between selects and run the drain normally. *)
  let request _ = Atomic.set t.stop_flag true in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle request) with _ -> ());
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle request) with _ -> ());
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ()

(* Reads [fd] line by line, invoking [on_line] per line, until EOF or
   [until ()].  select-with-timeout so signal flags are polled. *)
let pump_lines ?(until = fun () -> false) fd ~on_line =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let eof = ref false in
  let stop = ref false in
  while not (!stop || !eof) do
    if until () then stop := true
    else
      match Unix.select [ fd ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> eof := true
          | n ->
              for i = 0 to n - 1 do
                let c = Bytes.get chunk i in
                if c = '\n' then begin
                  on_line (Buffer.contents buf);
                  Buffer.clear buf
                end
                else Buffer.add_char buf c
              done
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> eof := true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  if !eof && Buffer.length buf > 0 then on_line (Buffer.contents buf);
  !eof

let write_line_locked lock fd line =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      let data = Bytes.of_string (line ^ "\n") in
      let len = Bytes.length data in
      let off = ref 0 in
      try
        while !off < len do
          off := !off + Unix.write fd data !off (len - !off)
        done
      with Unix.Unix_error _ -> ())

let run_stdio t =
  install_signal_handlers t;
  start t;
  let out_lock = Mutex.create () in
  let reply = write_line_locked out_lock Unix.stdout in
  let eof =
    pump_lines
      ~until:(fun () -> Atomic.get t.stop_flag)
      Unix.stdin
      ~on_line:(fun line ->
        if String.trim line <> "" then submit_line t ~reply line)
  in
  (* EOF is a polite goodbye: finish the queued work.  A signal is an
     order to drain: queued requests get typed shutting_down replies. *)
  stop t ~drain:(not eof)

let run_socket t ~path =
  install_signal_handlers t;
  start t;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  let drained = Atomic.make false in
  let readers = ref [] in
  let serve_connection fd =
    let out_lock = Mutex.create () in
    let reply = write_line_locked out_lock fd in
    let eof =
      pump_lines
        ~until:(fun () -> Atomic.get drained)
        fd
        ~on_line:(fun line ->
          if String.trim line <> "" then submit_line t ~reply line)
    in
    (* On shutdown the connection must stay writable until the executor
       has answered the drained queue — [drained] is set only after
       [stop] returns, so closing here is safe either way. *)
    ignore eof;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ sock ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept sock with
        | fd, _ -> readers := Thread.create serve_connection fd :: !readers
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  stop t ~drain:true;
  Atomic.set drained true;
  List.iter Thread.join !readers;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  try Unix.unlink path with Unix.Unix_error _ -> ()
