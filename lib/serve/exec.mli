(** Request execution against one warmed circuit target.

    A {!target} bundles what the daemon keeps warm per circuit: the
    netlist, sigma model, committed speed factors and a persistent
    {!Sta.Incr} dirty-cone engine.  Everything here runs on a single
    thread (the daemon's executor, or the sim harness's state) — no
    locking, no shared mutation.

    Robustness contract: {!exec} {e never raises}.  Malformed inputs
    become [Bad_request]; a request whose deadline already expired is
    answered with the graceful-degradation rung (analyze/whatif: a
    deterministic mean-only {!Sta.Dsta} sweep, flagged [degraded]) or a
    typed [Timeout] (gradient/size); a size request ending in numerical
    breakdown rebuilds the warmed engine so no poisoned incremental
    state survives into the next request. *)

type target = {
  net : Circuit.Netlist.t;
  model : Circuit.Sigma_model.t;
  pool : Util.Pool.t option;
  mutable sizes : float array;  (** committed speed factors *)
  mutable incr : Sta.Incr.t;  (** warmed dirty-cone engine *)
}

val create :
  ?pool:Util.Pool.t ->
  ?sizes:float array ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  target
(** Fresh target; [sizes] (validated, copied) defaults to all-min. *)

val rebuild_incr : target -> unit
(** Replaces the warmed engine with a cold one — invalidation after a
    failed solve. *)

val exec :
  ?budget:Util.Guard.budget ->
  ?instrument:(Nlp.Problem.constrained -> Nlp.Problem.constrained) ->
  target ->
  Protocol.body ->
  Protocol.payload
(** Executes one request body.  [budget] carries the request deadline /
    eval allowance ({!Util.Guard}); a size request threads the
    {e remaining} budget into the sizing engine.  [instrument] is the
    fault-injection hook forwarded to {!Sizing.Engine.options}.
    [Stats]/[Health] are control-plane and answered by the server, not
    here.  A converged size request commits its sizes to the target. *)

type size_outcome = {
  payload : Protocol.payload;
  failed : bool;  (** counts toward the circuit's breaker *)
}

val exec_size_tracked :
  ?budget:Util.Guard.budget ->
  ?instrument:(Nlp.Problem.constrained -> Nlp.Problem.constrained) ->
  target ->
  objective:Protocol.objective_spec ->
  recovery:bool ->
  size_outcome
(** {!exec} for size requests, additionally reporting whether the solve
    counts as a breaker failure (numerical breakdown after the ladder,
    or an escaped exception — not deadline or non-convergence, which are
    load signals rather than evidence the circuit is poisoned). *)
