(* Request execution: one warmed circuit target, one typed answer per
   request body.

   A [target] bundles everything the daemon keeps warm for a circuit:
   the netlist, the sigma model, the committed speed factors, and a
   persistent Sta.Incr engine whose dirty-cone cache makes consecutive
   requests against the same circuit cheap.  All functions here run on
   the daemon's single executor thread (or inside the sim harness's
   single-threaded state) — no locking.

   Robustness contract:
   - [exec] never raises: malformed inputs become [Bad_request],
     anything unexpected becomes [Internal].
   - A request whose deadline already expired degrades (analyze/whatif:
     deterministic Dsta mean-only answer, flagged) or times out
     (gradient/size) instead of burning executor time.
   - A size request that ends in numerical breakdown invalidates the
     warmed engine: the incr cache could have been poisoned by the
     failing trajectory, so it is rebuilt from scratch before the next
     request touches it. *)

type target = {
  net : Circuit.Netlist.t;
  model : Circuit.Sigma_model.t;
  pool : Util.Pool.t option;
  mutable sizes : float array;  (* committed speed factors *)
  mutable incr : Sta.Incr.t;  (* warmed dirty-cone engine *)
}

let make_incr ?pool ~model net =
  match pool with
  | Some pool -> Sta.Incr.create ~pool ~model net
  | None -> Sta.Incr.create ~model net

let create ?pool ?sizes ~model net =
  let sizes =
    match sizes with
    | Some s ->
        Circuit.Netlist.check_sizes net s;
        Array.copy s
    | None -> Circuit.Netlist.min_sizes net
  in
  { net; model; pool; sizes; incr = make_incr ?pool ~model net }

let rebuild_incr t = t.incr <- make_incr ?pool:t.pool ~model:t.model t.net

exception Bad of string

let resolve_sizes t = function
  | Protocol.Committed -> t.sizes
  | Protocol.Uniform s ->
      let sizes = Array.make (Circuit.Netlist.n_gates t.net) s in
      (try Circuit.Netlist.check_sizes t.net sizes
       with Invalid_argument m -> raise (Bad m));
      sizes
  | Protocol.Explicit sizes ->
      (try Circuit.Netlist.check_sizes t.net sizes
       with Invalid_argument m -> raise (Bad m));
      sizes

let apply_deltas t deltas =
  let n = Circuit.Netlist.n_gates t.net in
  let sizes = Array.copy t.sizes in
  Array.iter
    (fun (g, s) ->
      if g < 0 || g >= n then
        raise (Bad (Printf.sprintf "gate %d out of range (n_gates = %d)" g n));
      sizes.(g) <- s)
    deltas;
  (try Circuit.Netlist.check_sizes t.net sizes
   with Invalid_argument m -> raise (Bad m));
  sizes

let analysis_payload t ~sizes (r : Sta.Ssta.result) =
  Protocol.Analysis
    {
      mu = Statdelay.Normal.mu r.circuit;
      var = Statdelay.Normal.var r.circuit;
      area = Circuit.Netlist.area t.net ~sizes;
      n_gates = Circuit.Netlist.n_gates t.net;
    }

(* Graceful-degradation rung: when the statistical answer cannot be
   afforded, a deterministic mean-only Dsta sweep still can — O(edges),
   no Clark operators, no engine state.  Always flagged on the wire. *)
let degraded_payload t ~sizes =
  let r = Sta.Dsta.analyze t.net ~sizes in
  Protocol.Degraded
    { typical = r.circuit; area = Circuit.Netlist.area t.net ~sizes }

let seed_fn = function
  | Protocol.Seed_mu -> fun _ -> { Sta.Ssta.d_mu = 1.; d_var = 0. }
  | Protocol.Seed_var -> fun _ -> { Sta.Ssta.d_mu = 0.; d_var = 1. }
  | Protocol.Seed_mu_k_sigma k -> Sta.Ssta.mu_plus_k_sigma_seed k

let seed_value seed (r : Sta.Ssta.result) =
  match seed with
  | Protocol.Seed_mu -> Statdelay.Normal.mu r.circuit
  | Protocol.Seed_var -> Statdelay.Normal.var r.circuit
  | Protocol.Seed_mu_k_sigma k -> Statdelay.Normal.mu_plus_k_sigma r.circuit k

let objective_of_spec = function
  | Protocol.Min_delay k -> Sizing.Objective.Min_delay k
  | Protocol.Min_area_bounded { k; bound } ->
      Sizing.Objective.Min_area_bounded { k; bound }
  | Protocol.Min_sigma { mu } -> Sizing.Objective.Min_sigma { mu }

type size_outcome = {
  payload : Protocol.payload;
  failed : bool;  (* counts toward the circuit's breaker *)
}

let exec_size t ?budget ?instrument ~objective ~recovery () =
  let deadline = Option.bind budget Util.Guard.remaining_seconds in
  let max_evaluations = Option.bind budget Util.Guard.remaining_evals in
  let options =
    {
      Sizing.Engine.default_options with
      deadline;
      max_evaluations;
      recovery;
      instrument;
    }
  in
  let solve () =
    match t.pool with
    | Some pool ->
        Sizing.Engine.solve ~options ~pool ~timing:t.incr ~model:t.model t.net
          (objective_of_spec objective)
    | None ->
        Sizing.Engine.solve ~options ~timing:t.incr ~model:t.model t.net
          (objective_of_spec objective)
  in
  let sol = solve () in
  let rungs =
    List.map (fun (a : Sizing.Engine.attempt) -> Sizing.Engine.rung_name a.rung)
      sol.recovery
  in
  if sol.converged then begin
    (* Commit: subsequent Committed-sizes requests see the new sizing,
       and the incr engine is already warm at exactly this point. *)
    t.sizes <- Array.copy sol.sizes;
    {
      payload =
        Protocol.Sized
          {
            mu = sol.mu;
            sigma = sol.sigma;
            area = sol.area;
            sizes = sol.sizes;
            evaluations = sol.evaluations;
            rungs;
          };
      failed = false;
    }
  end
  else begin
    (* The failing trajectory ran through the warmed incr cache; rebuild
       it so no poisoned state survives into the next request. *)
    rebuild_incr t;
    let code, message =
      match sol.termination with
      | Nlp.Auglag.Breakdown ->
          ( Protocol.Breakdown,
            Printf.sprintf "numerical breakdown (rungs: %s)"
              (if rungs = [] then "none" else String.concat ", " rungs) )
      | Nlp.Auglag.Deadline -> (Protocol.Timeout, "solve budget exhausted")
      | _ ->
          ( Protocol.Unconverged,
            Printf.sprintf "solver did not converge (residual %g)"
              sol.max_violation )
    in
    {
      payload = Protocol.Error { code; message };
      failed = (match sol.termination with Nlp.Auglag.Breakdown -> true | _ -> false);
    }
  end

let expired budget =
  match budget with
  | None -> false
  | Some b -> Util.Guard.exhausted b = Some Util.Guard.Deadline

let exec ?budget ?instrument t body =
  try
    match body with
    | Protocol.Analyze { sizes = spec } ->
        let sizes = resolve_sizes t spec in
        if expired budget then degraded_payload t ~sizes
        else analysis_payload t ~sizes (Sta.Incr.analyze t.incr ~sizes)
    | Protocol.Whatif { deltas } ->
        let sizes = apply_deltas t deltas in
        if expired budget then degraded_payload t ~sizes
        else analysis_payload t ~sizes (Sta.Incr.analyze t.incr ~sizes)
    | Protocol.Gradient { sizes = spec; seed } ->
        if expired budget then
          Protocol.Error
            { code = Timeout; message = "deadline expired before service" }
        else
          let sizes = resolve_sizes t spec in
          let r, gradient =
            Sta.Incr.value_and_gradient t.incr ~sizes ~seed:(seed_fn seed)
          in
          Protocol.Gradient_result { value = seed_value seed r; gradient }
    | Protocol.Size { objective; recovery } ->
        if expired budget then
          Protocol.Error
            { code = Timeout; message = "deadline expired before service" }
        else (exec_size t ?budget ?instrument ~objective ~recovery ()).payload
    | Protocol.Stats | Protocol.Health ->
        Protocol.Error
          { code = Internal; message = "control-plane request reached Exec" }
  with
  | Bad m -> Protocol.Error { code = Bad_request; message = m }
  | Invalid_argument m -> Protocol.Error { code = Bad_request; message = m }
  | e ->
      (* Never let an exception out: the engine may hold arbitrary state
         mid-failure, so rebuild it before answering. *)
      rebuild_incr t;
      Protocol.Error { code = Internal; message = Printexc.to_string e }

let exec_size_tracked ?budget ?instrument t ~objective ~recovery =
  if expired budget then
    {
      payload =
        Protocol.Error
          { code = Timeout; message = "deadline expired before service" };
      failed = false;
    }
  else
    try exec_size t ?budget ?instrument ~objective ~recovery ()
    with e ->
      rebuild_incr t;
      {
        payload = Protocol.Error { code = Internal; message = Printexc.to_string e };
        failed = true;
      }
