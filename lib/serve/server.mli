(** The timing-as-a-service daemon.

    Loads a library of circuits once, keeps warmed timing engines in a
    bounded LRU ({!Registry}), and answers line-JSON requests
    ({!Protocol}) over stdin or a Unix socket.

    {2 Threading model}

    Reader threads (one per connection, or any caller of
    {!submit_line}) parse and enqueue under the server lock; a {e
    single} executor thread owns every engine, breaker and registry
    structure, so execution itself is lock-free.  Within one request,
    SSTA sweeps still parallelise over the {!Util.Pool} domains — the
    pool is data-parallelism {e inside} an evaluation, the queue is
    multiplexing {e between} clients.

    {2 Robustness ladder}

    Outermost first: bounded admission queue shedding by
    {!Protocol.shed_class} (typed [overloaded]); per-request
    {!Util.Guard} budgets started at admission (queue time counts), an
    expired analyze/whatif degrading to a flagged mean-only {!Sta.Dsta}
    answer and an expired gradient/size to a typed [timeout];
    per-circuit {!Breaker}s quarantining solve-poisoned circuits (typed
    [quarantined]) while others keep serving; engine invalidation after
    any failed solve; and a clean drain on SIGTERM/SIGINT — the
    in-flight request finishes, queued ones get typed [shutting_down].

    Every reply lands in exactly one of served / degraded / shed /
    refused, so [submitted = served + degraded + shed + refused] holds
    at every quiescent point (asserted by the soak test).  Mirrored as
    [serve.*] {!Util.Instr} counters plus [serve.latency.<kind>]
    histograms. *)

type config = {
  queue_capacity : int;  (** admission queue bound (default 32) *)
  warm_capacity : int;  (** warmed-engine LRU bound (default 4) *)
  default_deadline_ms : float option;
      (** applied to requests that carry no [deadline_ms] *)
  default_max_evals : int option;
  breaker : Breaker.config;
}

val default_config : config

type t

val create :
  ?pool:Util.Pool.t ->
  ?now:(unit -> int) ->
  ?instrument:(Nlp.Problem.constrained -> Nlp.Problem.constrained) ->
  ?config:config ->
  unit ->
  t
(** [now] (monotonic nanoseconds, default {!Util.Guard.monotonic_now})
    drives budgets, breakers and latency measurement — injectable for
    deterministic tests.  [instrument] is the fault-injection hook
    forwarded to every size request's {!Sizing.Engine.options}. *)

val add_circuit :
  t -> name:string -> model:Circuit.Sigma_model.t -> Circuit.Netlist.t -> unit
(** Registers a circuit (cold).  Call before {!start}. *)

val circuits : t -> string list

(** {1 Programmatic operation} — what the tests and the sim harness
    drive; the IO front-ends below are thin shells over these. *)

val start : t -> unit
(** Spawns the executor thread.  Raises [Invalid_argument] if already
    started. *)

val submit_line : t -> reply:(string -> unit) -> string -> unit
(** Parses and admits one request line.  [reply] receives exactly one
    response line, possibly on another thread (the executor's), possibly
    before this call returns (parse failures, shed, draining).  Safe
    from any thread; never raises into the caller through [reply]. *)

val stop : ?drain:bool -> t -> unit
(** Stops the executor and joins it.  With [drain] (default): queued
    requests are answered with typed [shutting_down] after the in-flight
    one finishes — the SIGTERM path.  With [~drain:false]: the queue is
    finished normally first — the stdin-EOF path.  Idempotent. *)

val counters : t -> int * int * int * int * int
(** [(submitted, served, degraded, shed, refused)] — the conservation
    counters; [submitted] equals the sum of the rest whenever no request
    is queued or in flight. *)

val stats_json : t -> Json.t
(** The [stats] reply body (conservation counters, queue depth, resident
    circuits, evictions, breaker states, [Instr] counters and latency
    histograms).  Executor-thread state; call only when the server is
    stopped or from inside a [stats] request. *)

(** {1 IO front-ends} — install SIGTERM/SIGINT handlers, start the
    executor, block until shutdown, and drain. *)

val run_stdio : t -> unit
(** Serves newline-framed requests from stdin to stdout.  EOF finishes
    the queue and exits; SIGTERM/SIGINT drain with [shutting_down]. *)

val run_socket : t -> path:string -> unit
(** Listens on a Unix-domain socket, one reader thread per connection.
    SIGTERM/SIGINT drain; queued replies are flushed to their
    connections before sockets close. *)
