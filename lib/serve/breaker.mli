(** Per-circuit circuit breaker: quarantines a circuit whose size
    requests keep breaking down numerically, so one poisoned netlist
    cannot monopolise the executor while other circuits keep serving.

    Three-state machine: [Closed] admits everything; [threshold]
    {e consecutive} failures trip it to [Open] (requests rejected with a
    [Quarantined] reply); after [cooldown_s] the next admission probe is
    a [Trial] ([Half_open]) — its success re-closes the breaker, its
    failure re-opens a fresh cooldown.

    The clock is injectable ([?now], same monotonic-nanosecond
    discipline as {!Util.Guard} budgets) so tests drive cooldowns
    deterministically.  Not thread-safe: the daemon's single executor
    thread owns every breaker. *)

type config = { threshold : int; cooldown_s : float }

val default_config : config
(** 3 consecutive failures, 30 s cooldown. *)

type state = Closed | Open | Half_open

type t

val create : ?now:(unit -> int) -> config -> t
(** Fresh breaker in [Closed].  Raises [Invalid_argument] when
    [threshold < 1]. *)

type verdict =
  | Allow  (** closed: admit normally *)
  | Trial  (** cooldown elapsed: admit exactly this request as the probe *)
  | Reject  (** quarantined: answer [Quarantined] without executing *)

val admit : t -> verdict
(** Admission probe; the [Trial] transition to [Half_open] happens
    here.  While [Half_open] (trial in flight), further probes
    [Reject]. *)

val success : t -> unit
(** Report the outcome of an admitted request: resets the failure run
    and re-closes the breaker. *)

val failure : t -> unit
(** A failed admitted request: extends the consecutive-failure run
    (possibly tripping [Open]), or re-opens from a failed trial. *)

val state : t -> state
val trips : t -> int
(** Closed→Open transitions so far (trial re-opens included). *)

val state_name : state -> string
