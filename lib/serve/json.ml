(* Minimal self-contained JSON for the line-oriented serve protocol.

   The repo bakes in no JSON dependency, and the protocol needs exact
   float round-trips (responses are compared bit-for-bit against batch
   evaluations), so this module controls number formatting itself:
   floats are emitted with the shortest of %.15g/%.16g/%.17g that parses
   back to the same bits — compact for humans, lossless for the
   differential tests. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- printing ---------------------------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Integral values print without an exponent or trailing ".0"
       noise; int-valued fields (ids, counts) stay readable. *)
    Printf.sprintf "%.0f" f
  else if f <> f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p f in
      if float_of_string s = f then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> ( match try_prec 16 with Some s -> s | None -> Printf.sprintf "%.17g" f)

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ---- parsing ----------------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %c at offset %d, got %c" ch c.pos x
  | None -> parse_error "expected %c at offset %d, got end of input" ch c.pos

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "bad literal at offset %d" c.pos

let parse_string_body c =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents b
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> parse_error "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.text then
                  parse_error "truncated \\u escape";
                let hex = String.sub c.text c.pos 4 in
                c.pos <- c.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> parse_error "bad \\u escape %S" hex
                in
                (* Basic-multilingual-plane only; encode as UTF-8. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | e -> parse_error "bad escape \\%c" e);
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> parse_error "bad number %S at offset %d" s start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      Str (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> parse_error "expected , or ] at offset %d" c.pos
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev (kv :: acc))
          | _ -> parse_error "expected , or } at offset %d" c.pos
        in
        fields []
  | Some _ -> Num (parse_number c)

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length text then
        Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors --------------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None

let int_ = function
  | Num f when Float.is_integer f && Float.abs f <= 4.611686018427388e18 ->
      Some (int_of_float f)
  | _ -> None

let bool_ = function Bool b -> Some b | _ -> None
let list_ = function List l -> Some l | _ -> None
