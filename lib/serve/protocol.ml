(* Typed request/response vocabulary of the timing-as-a-service daemon,
   and its line-JSON wire form.

   Every request is one JSON object on one line; every request gets
   exactly one JSON reply line.  Floats travel through Json's
   exact-round-trip number rendering, so a served analysis compares
   bit-for-bit against a batch evaluation of the same request — string
   equality of the "result" object is Int64 bit-identity. *)

type seed_kind = Seed_mu | Seed_var | Seed_mu_k_sigma of float

type sizes_spec =
  | Committed  (* the circuit's current (committed) speed factors *)
  | Uniform of float
  | Explicit of float array

type objective_spec =
  | Min_delay of float
  | Min_area_bounded of { k : float; bound : float }
  | Min_sigma of { mu : float }

type body =
  | Analyze of { sizes : sizes_spec }
  | Whatif of { deltas : (int * float) array }
  | Gradient of { sizes : sizes_spec; seed : seed_kind }
  | Size of { objective : objective_spec; recovery : bool }
  | Stats
  | Health

type request = {
  id : Json.t;  (* echoed verbatim in the reply; Null when absent *)
  circuit : string option;
  deadline_ms : float option;
  max_evals : int option;
  body : body;
}

type error_code =
  | Bad_request
  | Unknown_circuit
  | Overloaded
  | Timeout
  | Quarantined
  | Shutting_down
  | Breakdown
  | Unconverged
  | Internal

type payload =
  | Analysis of { mu : float; var : float; area : float; n_gates : int }
  | Degraded of { typical : float; area : float }
  | Gradient_result of { value : float; gradient : float array }
  | Sized of {
      mu : float;
      sigma : float;
      area : float;
      sizes : float array;
      evaluations : int;
      rungs : string list;
    }
  | Stats_result of Json.t
  | Health_result of {
      status : string;
      uptime_seconds : float;
      resident : string list;
    }
  | Error of { code : error_code; message : string }

type response = { id : Json.t; kind : string; payload : payload }

(* ---- request kinds and shedding priority ------------------------------------- *)

let kind_of_body = function
  | Analyze _ -> "analyze"
  | Whatif _ -> "whatif"
  | Gradient _ -> "gradient"
  | Size _ -> "size"
  | Stats -> "stats"
  | Health -> "health"

(* Load-shedding class: higher sheds first.  An expensive solve is the
   first casualty of overload, a cheap analysis the last; stats/health
   are control-plane and never shed. *)
let shed_class = function
  | Size _ -> 2
  | Gradient _ -> 1
  | Analyze _ | Whatif _ -> 0
  | Stats | Health -> -1

let error_code_name = function
  | Bad_request -> "bad_request"
  | Unknown_circuit -> "unknown_circuit"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Quarantined -> "quarantined"
  | Shutting_down -> "shutting_down"
  | Breakdown -> "breakdown"
  | Unconverged -> "unconverged"
  | Internal -> "internal"

let error_code_of_name = function
  | "bad_request" -> Some Bad_request
  | "unknown_circuit" -> Some Unknown_circuit
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "quarantined" -> Some Quarantined
  | "shutting_down" -> Some Shutting_down
  | "breakdown" -> Some Breakdown
  | "unconverged" -> Some Unconverged
  | "internal" -> Some Internal
  | _ -> None

(* ---- encoding ----------------------------------------------------------------- *)

let num f = Json.Num f
let floats a = Json.List (Array.to_list (Array.map num a))

let seed_to_json = function
  | Seed_mu -> Json.Str "mu"
  | Seed_var -> Json.Str "var"
  | Seed_mu_k_sigma k -> Json.Obj [ ("mu_k_sigma", num k) ]

let sizes_to_fields = function
  | Committed -> []
  | Uniform s -> [ ("sizes", num s) ]
  | Explicit a -> [ ("sizes", floats a) ]

let objective_to_json = function
  | Min_delay k -> Json.Obj [ ("kind", Json.Str "min-delay"); ("k", num k) ]
  | Min_area_bounded { k; bound } ->
      Json.Obj
        [ ("kind", Json.Str "min-area-bounded"); ("k", num k); ("bound", num bound) ]
  | Min_sigma { mu } -> Json.Obj [ ("kind", Json.Str "min-sigma"); ("mu", num mu) ]

let encode_request (r : request) =
  let base =
    (match r.id with Json.Null -> [] | id -> [ ("id", id) ])
    @ (match r.circuit with None -> [] | Some c -> [ ("circuit", Json.Str c) ])
    @ (match r.deadline_ms with None -> [] | Some d -> [ ("deadline_ms", num d) ])
    @ (match r.max_evals with None -> [] | Some m -> [ ("max_evals", num (float_of_int m)) ])
  in
  let body_fields =
    match r.body with
    | Analyze { sizes } -> sizes_to_fields sizes
    | Whatif { deltas } ->
        [
          ( "deltas",
            Json.List
              (Array.to_list
                 (Array.map
                    (fun (g, s) -> Json.List [ num (float_of_int g); num s ])
                    deltas)) );
        ]
    | Gradient { sizes; seed } -> sizes_to_fields sizes @ [ ("seed", seed_to_json seed) ]
    | Size { objective; recovery } ->
        ("objective", objective_to_json objective)
        :: (if recovery then [] else [ ("recovery", Json.Bool false) ])
    | Stats | Health -> []
  in
  Json.to_string
    (Json.Obj (("op", Json.Str (kind_of_body r.body)) :: (base @ body_fields)))

let result_json = function
  | Analysis { mu; var; area; n_gates } ->
      Json.Obj
        [
          ("mu", num mu);
          ("var", num var);
          ("area", num area);
          ("n_gates", num (float_of_int n_gates));
        ]
  | Degraded { typical; area } ->
      Json.Obj
        [ ("engine", Json.Str "dsta"); ("typical", num typical); ("area", num area) ]
  | Gradient_result { value; gradient } ->
      Json.Obj [ ("value", num value); ("gradient", floats gradient) ]
  | Sized { mu; sigma; area; sizes; evaluations; rungs } ->
      Json.Obj
        [
          ("mu", num mu);
          ("sigma", num sigma);
          ("area", num area);
          ("sizes", floats sizes);
          ("evaluations", num (float_of_int evaluations));
          ("rungs", Json.List (List.map (fun r -> Json.Str r) rungs));
        ]
  | Stats_result j -> j
  | Health_result { status; uptime_seconds; resident } ->
      Json.Obj
        [
          ("status", Json.Str status);
          ("uptime_seconds", num uptime_seconds);
          ("resident", Json.List (List.map (fun r -> Json.Str r) resident));
        ]
  | Error _ -> Json.Null

let encode_response r =
  let id_field = [ ("id", r.id) ] in
  match r.payload with
  | Error { code; message } ->
      Json.to_string
        (Json.Obj
           (id_field
           @ [
               ("ok", Json.Bool false);
               ("kind", Json.Str r.kind);
               ( "error",
                 Json.Obj
                   [
                     ("code", Json.Str (error_code_name code));
                     ("message", Json.Str message);
                   ] );
             ]))
  | payload ->
      let degraded = match payload with Degraded _ -> true | _ -> false in
      Json.to_string
        (Json.Obj
           (id_field
           @ [
               ("ok", Json.Bool true);
               ("kind", Json.Str r.kind);
               ("degraded", Json.Bool degraded);
               ("result", result_json payload);
             ]))

(* ---- decoding ----------------------------------------------------------------- *)

let ( let* ) = Result.bind

let field_num name j =
  match Option.bind (Json.member name j) Json.num with
  | Some f -> Ok f
  | None -> Stdlib.Error (Printf.sprintf "missing or non-numeric field %S" name)

let field_floats name j =
  match Option.bind (Json.member name j) Json.list_ with
  | None -> Stdlib.Error (Printf.sprintf "missing or non-array field %S" name)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (Array.of_list (List.rev acc))
        | x :: rest -> (
            match Json.num x with
            | Some f -> go (f :: acc) rest
            | None -> Stdlib.Error (Printf.sprintf "non-numeric entry in %S" name))
      in
      go [] items

let decode_sizes j =
  match Json.member "sizes" j with
  | None -> Ok Committed
  | Some (Json.Num s) -> Ok (Uniform s)
  | Some (Json.List _) ->
      let* a = field_floats "sizes" j in
      Ok (Explicit a)
  | Some _ -> Stdlib.Error "field \"sizes\" must be a number or an array"

let decode_seed j =
  match Json.member "seed" j with
  | None | Some (Json.Str "mu") -> Ok Seed_mu
  | Some (Json.Str "var") -> Ok Seed_var
  | Some (Json.Obj _ as o) -> (
      match Option.bind (Json.member "mu_k_sigma" o) Json.num with
      | Some k -> Ok (Seed_mu_k_sigma k)
      | None -> Stdlib.Error "bad \"seed\" object (want {\"mu_k_sigma\": k})")
  | Some _ -> Stdlib.Error "bad \"seed\" (want \"mu\", \"var\" or {\"mu_k_sigma\": k})"

let decode_objective j =
  match Json.member "objective" j with
  | None -> Stdlib.Error "size request needs an \"objective\""
  | Some o -> (
      match Option.bind (Json.member "kind" o) Json.str with
      | Some "min-delay" ->
          let k =
            Option.value ~default:0. (Option.bind (Json.member "k" o) Json.num)
          in
          Ok (Min_delay k)
      | Some "min-area-bounded" ->
          let k =
            Option.value ~default:0. (Option.bind (Json.member "k" o) Json.num)
          in
          let* bound = field_num "bound" o in
          Ok (Min_area_bounded { k; bound })
      | Some "min-sigma" ->
          let* mu = field_num "mu" o in
          Ok (Min_sigma { mu })
      | Some other -> Stdlib.Error (Printf.sprintf "unknown objective kind %S" other)
      | None -> Stdlib.Error "objective needs a \"kind\"")

let decode_request line =
  let* j = Json.parse line in
  let id = Option.value ~default:Json.Null (Json.member "id" j) in
  let circuit = Option.bind (Json.member "circuit" j) Json.str in
  let deadline_ms = Option.bind (Json.member "deadline_ms" j) Json.num in
  let max_evals = Option.bind (Json.member "max_evals" j) Json.int_ in
  let* body =
    match Option.bind (Json.member "op" j) Json.str with
    | None -> Stdlib.Error "request needs an \"op\" string"
    | Some "analyze" ->
        let* sizes = decode_sizes j in
        Ok (Analyze { sizes })
    | Some "whatif" -> (
        match Option.bind (Json.member "deltas" j) Json.list_ with
        | None -> Stdlib.Error "whatif request needs a \"deltas\" array"
        | Some items ->
            let rec go acc = function
              | [] -> Ok (Whatif { deltas = Array.of_list (List.rev acc) })
              | Json.List [ g; s ] :: rest -> (
                  match (Json.int_ g, Json.num s) with
                  | Some g, Some s -> go ((g, s) :: acc) rest
                  | _ -> Stdlib.Error "whatif delta entries are [gate, size] pairs")
              | _ -> Stdlib.Error "whatif delta entries are [gate, size] pairs"
            in
            go [] items)
    | Some "gradient" ->
        let* sizes = decode_sizes j in
        let* seed = decode_seed j in
        Ok (Gradient { sizes; seed })
    | Some "size" ->
        let* objective = decode_objective j in
        let recovery =
          Option.value ~default:true
            (Option.bind (Json.member "recovery" j) Json.bool_)
        in
        Ok (Size { objective; recovery })
    | Some "stats" -> Ok Stats
    | Some "health" -> Ok Health
    | Some other -> Stdlib.Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { id; circuit; deadline_ms; max_evals; body }

let decode_response line =
  let* j = Json.parse line in
  let id = Option.value ~default:Json.Null (Json.member "id" j) in
  let* kind =
    match Option.bind (Json.member "kind" j) Json.str with
    | Some k -> Ok k
    | None -> Stdlib.Error "response needs a \"kind\""
  in
  match Option.bind (Json.member "ok" j) Json.bool_ with
  | Some false -> (
      match Json.member "error" j with
      | None -> Stdlib.Error "failed response carries no \"error\""
      | Some e ->
          let* code =
            match
              Option.bind (Option.bind (Json.member "code" e) Json.str)
                error_code_of_name
            with
            | Some c -> Ok c
            | None -> Stdlib.Error "unknown error code"
          in
          let message =
            Option.value ~default:""
              (Option.bind (Json.member "message" e) Json.str)
          in
          Ok { id; kind; payload = Error { code; message } })
  | Some true -> (
      let degraded =
        Option.value ~default:false (Option.bind (Json.member "degraded" j) Json.bool_)
      in
      match Json.member "result" j with
      | None -> Stdlib.Error "ok response carries no \"result\""
      | Some r -> (
          match kind with
          | "analyze" | "whatif" when degraded ->
              let* typical = field_num "typical" r in
              let* area = field_num "area" r in
              Ok { id; kind; payload = Degraded { typical; area } }
          | "analyze" | "whatif" ->
              let* mu = field_num "mu" r in
              let* var = field_num "var" r in
              let* area = field_num "area" r in
              let* n = field_num "n_gates" r in
              Ok
                {
                  id;
                  kind;
                  payload = Analysis { mu; var; area; n_gates = int_of_float n };
                }
          | "gradient" ->
              let* value = field_num "value" r in
              let* gradient = field_floats "gradient" r in
              Ok { id; kind; payload = Gradient_result { value; gradient } }
          | "size" ->
              let* mu = field_num "mu" r in
              let* sigma = field_num "sigma" r in
              let* area = field_num "area" r in
              let* sizes = field_floats "sizes" r in
              let* evals = field_num "evaluations" r in
              let rungs =
                match Option.bind (Json.member "rungs" r) Json.list_ with
                | None -> []
                | Some items -> List.filter_map Json.str items
              in
              Ok
                {
                  id;
                  kind;
                  payload =
                    Sized
                      {
                        mu;
                        sigma;
                        area;
                        sizes;
                        evaluations = int_of_float evals;
                        rungs;
                      };
                }
          | "stats" -> Ok { id; kind; payload = Stats_result r }
          | "health" ->
              let status =
                Option.value ~default:"ok"
                  (Option.bind (Json.member "status" r) Json.str)
              in
              let* uptime_seconds = field_num "uptime_seconds" r in
              let resident =
                match Option.bind (Json.member "resident" r) Json.list_ with
                | None -> []
                | Some items -> List.filter_map Json.str items
              in
              Ok
                {
                  id;
                  kind;
                  payload = Health_result { status; uptime_seconds; resident };
                }
          | other -> Stdlib.Error (Printf.sprintf "unknown response kind %S" other)))
  | _ -> Stdlib.Error "response needs a boolean \"ok\""

let pp_payload ppf = function
  | Analysis { mu; var; _ } -> Format.fprintf ppf "analysis mu=%g var=%g" mu var
  | Degraded { typical; _ } -> Format.fprintf ppf "degraded typical=%g" typical
  | Gradient_result { value; gradient } ->
      Format.fprintf ppf "gradient value=%g n=%d" value (Array.length gradient)
  | Sized { mu; sigma; _ } -> Format.fprintf ppf "sized mu=%g sigma=%g" mu sigma
  | Stats_result _ -> Format.pp_print_string ppf "stats"
  | Health_result { status; _ } -> Format.fprintf ppf "health %s" status
  | Error { code; message } ->
      Format.fprintf ppf "error %s: %s" (error_code_name code) message
