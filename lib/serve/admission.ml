(* Admission control: a bounded FIFO with load-shedding priority.

   Pure data structure (no locks — the server serialises access under
   its own mutex) so the shedding policy is unit-testable in isolation.

   Policy: when the queue is full, the most sheddable *queued* entry
   (highest Protocol.shed_class; FIFO-oldest among ties) is evicted to
   make room — but only if it is strictly more sheddable than the
   arrival; otherwise the arrival itself is shed.  Expensive solves are
   the first casualties of overload, cheap analyses the last, and a
   burst of solves can never starve analysis traffic.  Control-plane
   entries (class -1: stats/health) are capacity-exempt: they enqueue
   even into a full queue and are never chosen as victims. *)

type 'a entry = { item : 'a; cls : int; seq : int }

type 'a t = {
  capacity : int;
  mutable entries : 'a entry list;  (* FIFO: head is oldest *)
  mutable next_seq : int;
  mutable length : int;  (* counted entries (class >= 0) only *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity < 1";
  { capacity; entries = []; next_seq = 0; length = 0 }

let length t = t.length
let is_empty t = t.entries = []

type 'a outcome =
  | Enqueued
  | Shed_victim of 'a  (* the arrival enqueued; this older entry was evicted *)
  | Shed_self  (* the arrival itself was refused *)

let push t entry =
  t.entries <- t.entries @ [ entry ];
  if entry.cls >= 0 then t.length <- t.length + 1

(* Most sheddable queued entry: highest class, oldest among ties. *)
let victim t =
  List.fold_left
    (fun best e ->
      if e.cls < 0 then best
      else
        match best with
        | None -> Some e
        | Some b -> if e.cls > b.cls then Some e else best)
    None t.entries

let submit t ~cls item =
  let entry = { item; cls; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if cls < 0 || t.length < t.capacity then begin
    push t entry;
    Enqueued
  end
  else
    match victim t with
    | Some v when v.cls > cls ->
        t.entries <- List.filter (fun e -> e.seq <> v.seq) t.entries;
        t.length <- t.length - 1;
        push t entry;
        Shed_victim v.item
    | _ -> Shed_self

let pop t =
  match t.entries with
  | [] -> None
  | e :: rest ->
      t.entries <- rest;
      if e.cls >= 0 then t.length <- t.length - 1;
      Some e.item

let drain t =
  let items = List.map (fun e -> e.item) t.entries in
  t.entries <- [];
  t.length <- 0;
  items
