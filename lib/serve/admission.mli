(** Admission control for the daemon's request queue: a bounded FIFO
    with load-shedding priority.

    A pure data structure — no locks; the server serialises access under
    its own mutex — so the shedding policy is unit-testable in
    isolation.

    Shedding policy on a full queue: the most sheddable {e queued} entry
    (highest {!Protocol.shed_class}; FIFO-oldest among ties) is evicted
    to make room for the arrival, but only when it is {e strictly} more
    sheddable; otherwise the arrival itself is refused.  So under
    overload, expensive solves are shed before gradients before
    analyses, and a burst of solves can never starve analysis traffic.
    Class [-1] entries (stats/health control-plane) are capacity-exempt:
    they always enqueue, count toward neither the bound nor victim
    selection, and drain in FIFO order with everything else. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

type 'a outcome =
  | Enqueued
  | Shed_victim of 'a
      (** the arrival was enqueued; this older, more-sheddable entry was
          evicted and must be answered [Overloaded] *)
  | Shed_self  (** the arrival was refused; answer it [Overloaded] *)

val submit : 'a t -> cls:int -> 'a -> 'a outcome
(** Offers an entry with shedding class [cls] ({!Protocol.shed_class}). *)

val pop : 'a t -> 'a option
(** Oldest entry, FIFO. *)

val drain : 'a t -> 'a list
(** Empties the queue, returning entries in FIFO order — shutdown path
    (each drained request gets a typed [Shutting_down] reply). *)

val length : 'a t -> int
(** Counted (class ≥ 0) entries currently queued. *)

val is_empty : 'a t -> bool
(** True when nothing at all is queued, control-plane included. *)
