(** Circuit registry with an LRU of warmed engines.

    Registered circuits (netlists, committed sizes, per-circuit
    {!Breaker}) are resident forever; the expensive part — a warmed
    {!Exec.target} whose {!Sta.Incr} engine owns a full timing arena —
    is bounded: at most [capacity] targets are live, and warming one
    more evicts the least recently used ([serve.evicted] counter).
    Committed sizes survive eviction; only the incremental cache is
    lost, so the first analyze after a re-warm is a full sweep.

    Single-threaded — owned by the daemon's executor thread. *)

type entry = {
  name : string;
  net : Circuit.Netlist.t;
  model : Circuit.Sigma_model.t;
  mutable sizes : float array;
  breaker : Breaker.t;
  mutable warm : warm option;
}

and warm = { target : Exec.target; mutable last_used : int }

type t

val create : ?pool:Util.Pool.t -> capacity:int -> unit -> t
(** [capacity] bounds {e warmed} engines, not registered circuits.
    Raises [Invalid_argument] when [capacity < 1]. *)

val register :
  ?breaker:Breaker.config ->
  ?now:(unit -> int) ->
  t ->
  name:string ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  unit
(** Adds a circuit (cold, all-min sizes).  [now] is forwarded to the
    circuit's breaker clock.  Raises [Invalid_argument] on a duplicate
    name. *)

val find : t -> string -> entry option

val target : t -> entry -> Exec.target
(** The entry's warmed target, warming (and possibly LRU-evicting
    another circuit) on demand; bumps recency. *)

val evict : t -> string -> bool
(** Force-evicts one circuit's warm state; [true] if it was warm. *)

val names : t -> string list
(** Registration order. *)

val resident : t -> string list
(** Circuits currently holding a warmed engine, registration order. *)

val warm_count : t -> int
val evictions : t -> int
