(* Per-circuit circuit breaker.

   A circuit whose size requests keep ending in numerical breakdown is
   quarantined so it cannot monopolise the executor while every other
   circuit keeps serving.  Classic three-state machine:

     Closed --(threshold consecutive failures)--> Open
     Open --(cooldown elapsed)--> Half_open (one trial request admitted)
     Half_open --success--> Closed | --failure--> Open (fresh cooldown)

   Time comes from an injectable monotonic clock (same discipline as
   Util.Guard budgets) so tests drive the cooldown deterministically. *)

type config = { threshold : int; cooldown_s : float }

let default_config = { threshold = 3; cooldown_s = 30. }

type state = Closed | Open | Half_open

type t = {
  config : config;
  now : unit -> int;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable opened_at_ns : int;
  mutable trips : int;
}

let create ?(now = Util.Guard.monotonic_now) config =
  if config.threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  {
    config;
    now;
    state = Closed;
    consecutive_failures = 0;
    opened_at_ns = 0;
    trips = 0;
  }

let state t = t.state
let trips t = t.trips

type verdict = Allow | Trial | Reject

let cooldown_ns t = int_of_float (t.config.cooldown_s *. 1e9)

let admit t =
  match t.state with
  | Closed -> Allow
  | Half_open ->
      (* One trial is already in flight (or was never answered —
         conservatively keep rejecting until success/failure lands). *)
      Reject
  | Open ->
      if t.now () - t.opened_at_ns >= cooldown_ns t then begin
        t.state <- Half_open;
        Trial
      end
      else Reject

let success t =
  t.consecutive_failures <- 0;
  t.state <- Closed

let failure t =
  match t.state with
  | Half_open ->
      (* The trial failed: straight back to quarantine, fresh cooldown. *)
      t.state <- Open;
      t.opened_at_ns <- t.now ();
      t.trips <- t.trips + 1
  | Open -> ()
  | Closed ->
      t.consecutive_failures <- t.consecutive_failures + 1;
      if t.consecutive_failures >= t.config.threshold then begin
        t.state <- Open;
        t.opened_at_ns <- t.now ();
        t.trips <- t.trips + 1
      end

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"
