(** Minimal self-contained JSON for the line-oriented serve protocol.

    The repo deliberately carries no JSON dependency; this module
    implements the small subset the daemon needs, with one property the
    usual libraries do not promise: {e float round-trips are exact}.
    {!to_string} emits every non-integral number with the shortest of
    [%.15g]/[%.16g]/[%.17g] that parses back to the identical bits, so a
    response travelled through the wire format compares Int64-bit-equal
    to the in-process value — the foundation of the serve-soundness
    invariant and the soak test's served-vs-batch identity check.

    Not a general-purpose JSON library: numbers are [float]s (ints
    survive exactly up to 2^53), [\u] escapes cover the basic
    multilingual plane only, and NaN/infinities serialize as the strings
    ["nan"]/["inf"]/["-inf"] (they never appear on the ok path). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One-line rendering (no newlines — the protocol is line-framed). *)

val parse : string -> (t, string) result
(** Parses one complete JSON value; trailing garbage is an error. *)

val number_to_string : float -> string
(** The exact-round-trip float rendering used by {!to_string}. *)

(** {1 Accessors} — total, [None] on shape mismatch. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val int_ : t -> int option
val bool_ : t -> bool option
val list_ : t -> t list option
