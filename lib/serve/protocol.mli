(** Typed request/response vocabulary of the timing daemon and its
    line-JSON wire form.

    One request per line, one reply line per request.  Numeric fields
    ride {!Json}'s exact-round-trip float rendering, so the ["result"]
    object of a served reply is string-comparable against a batch
    re-evaluation of the same request — string equality is Int64
    bit-identity.  Both directions (encode and decode) are exposed for
    requests {e and} responses: the daemon decodes requests and encodes
    responses, while clients, the scripted smoke session and the sim
    harness's serve-soundness invariant do the reverse. *)

type seed_kind = Seed_mu | Seed_var | Seed_mu_k_sigma of float

type sizes_spec =
  | Committed  (** the circuit's current committed speed factors *)
  | Uniform of float
  | Explicit of float array

type objective_spec =
  | Min_delay of float  (** minimise [mu + k sigma] *)
  | Min_area_bounded of { k : float; bound : float }
  | Min_sigma of { mu : float }

type body =
  | Analyze of { sizes : sizes_spec }
  | Whatif of { deltas : (int * float) array }
  | Gradient of { sizes : sizes_spec; seed : seed_kind }
  | Size of { objective : objective_spec; recovery : bool }
  | Stats
  | Health

type request = {
  id : Json.t;  (** echoed verbatim in the reply; [Null] when absent *)
  circuit : string option;
  deadline_ms : float option;
  max_evals : int option;
  body : body;
}

type error_code =
  | Bad_request
  | Unknown_circuit
  | Overloaded  (** shed by admission control *)
  | Timeout  (** deadline expired before or during service *)
  | Quarantined  (** the circuit's breaker is open *)
  | Shutting_down  (** drained from the queue at shutdown *)
  | Breakdown  (** solve ended in numerical breakdown (recovery off/exhausted) *)
  | Unconverged
  | Internal

type payload =
  | Analysis of { mu : float; var : float; area : float; n_gates : int }
  | Degraded of { typical : float; area : float }
      (** graceful-degradation rung: deterministic mean-only [Dsta]
          answer, always flagged ["degraded": true] on the wire *)
  | Gradient_result of { value : float; gradient : float array }
  | Sized of {
      mu : float;
      sigma : float;
      area : float;
      sizes : float array;
      evaluations : int;
      rungs : string list;  (** recovery rungs engaged, in order *)
    }
  | Stats_result of Json.t
  | Health_result of {
      status : string;
      uptime_seconds : float;
      resident : string list;  (** circuits with warmed engines *)
    }
  | Error of { code : error_code; message : string }

type response = { id : Json.t; kind : string; payload : payload }

val kind_of_body : body -> string
(** ["analyze"] / ["whatif"] / ["gradient"] / ["size"] / ["stats"] /
    ["health"]; names histogram and counter keys. *)

val shed_class : body -> int
(** Load-shedding priority: higher sheds first.  [Size] 2, [Gradient] 1,
    [Analyze]/[Whatif] 0, [Stats]/[Health] -1 (control-plane, never
    shed). *)

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

val result_json : payload -> Json.t
(** The ["result"] object of an ok reply ([Null] for [Error]) — exposed
    so [statsize analyze --json] can emit the {e identical} object from
    a batch evaluation, making served-vs-batch bit-identity a string
    comparison. *)

val pp_payload : Format.formatter -> payload -> unit
