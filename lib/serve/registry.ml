(* Circuit registry with an LRU of warmed engines.

   Netlists are cheap relative to warmed engine state (an Sta.Incr
   engine owns a full arena: ~20 float planes over the gate count), so
   the registry keeps every registered circuit resident forever but
   bounds the number of *warmed* Exec.targets: acquiring a target for a
   cold circuit warms it, evicting the least-recently-used warm entry
   once more than [capacity] would be live.  Committed sizes survive
   eviction (copied back into the entry), so a re-warmed circuit resumes
   from its last sizing — only the incremental cache is lost (the first
   analyze after re-warming is a full sweep).

   Single-threaded: owned by the daemon's executor. *)

let evicted_c = Util.Instr.counter "serve.evicted"

type entry = {
  name : string;
  net : Circuit.Netlist.t;
  model : Circuit.Sigma_model.t;
  mutable sizes : float array;  (* committed sizes; survives eviction *)
  breaker : Breaker.t;
  mutable warm : warm option;
}

and warm = { target : Exec.target; mutable last_used : int }

type t = {
  capacity : int;
  pool : Util.Pool.t option;
  entries : (string, entry) Hashtbl.t;
  mutable names : string list;  (* registration order, for listings *)
  mutable clock : int;  (* LRU tick *)
  mutable evictions : int;
}

let create ?pool ~capacity () =
  if capacity < 1 then invalid_arg "Registry.create: capacity < 1";
  {
    capacity;
    pool;
    entries = Hashtbl.create 16;
    names = [];
    clock = 0;
    evictions = 0;
  }

let register ?(breaker = Breaker.default_config) ?now t ~name ~model net =
  if Hashtbl.mem t.entries name then
    invalid_arg (Printf.sprintf "Registry.register: duplicate circuit %S" name);
  let entry =
    {
      name;
      net;
      model;
      sizes = Circuit.Netlist.min_sizes net;
      breaker = Breaker.create ?now breaker;
      warm = None;
    }
  in
  Hashtbl.add t.entries name entry;
  t.names <- t.names @ [ name ]

let find t name = Hashtbl.find_opt t.entries name
let names t = t.names
let evictions t = t.evictions

let resident t =
  List.filter (fun n -> (Hashtbl.find t.entries n).warm <> None) t.names

let warm_count t =
  Hashtbl.fold (fun _ e n -> if e.warm = None then n else n + 1) t.entries 0

let evict_entry t e =
  match e.warm with
  | None -> ()
  | Some w ->
      (* Committed sizes live in the target while warm; preserve them. *)
      e.sizes <- Array.copy w.target.Exec.sizes;
      e.warm <- None;
      t.evictions <- t.evictions + 1;
      Util.Instr.incr evicted_c

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e best ->
        match (e.warm, best) with
        | None, _ -> best
        | Some w, None -> Some (e, w.last_used)
        | Some w, Some (_, lu) -> if w.last_used < lu then Some (e, w.last_used) else best)
      t.entries None
  in
  match victim with Some (e, _) -> evict_entry t e | None -> ()

let target t (e : entry) =
  t.clock <- t.clock + 1;
  match e.warm with
  | Some w ->
      w.last_used <- t.clock;
      w.target
  | None ->
      if warm_count t >= t.capacity then evict_lru t;
      let target =
        match t.pool with
        | Some pool -> Exec.create ~pool ~sizes:e.sizes ~model:e.model e.net
        | None -> Exec.create ~sizes:e.sizes ~model:e.model e.net
      in
      e.warm <- Some { target; last_used = t.clock };
      target

let evict t name =
  match Hashtbl.find_opt t.entries name with
  | None -> false
  | Some e ->
      let was_warm = e.warm <> None in
      evict_entry t e;
      was_warm
