type bounds = { lower : float array; upper : float array }

let bounds ~lower ~upper =
  let n = Array.length lower in
  if Array.length upper <> n then invalid_arg "Problem.bounds: length mismatch";
  Array.iteri
    (fun i l -> if l > upper.(i) then invalid_arg "Problem.bounds: lower > upper")
    lower;
  { lower; upper }

let box ~dim ~lo ~hi = bounds ~lower:(Array.make dim lo) ~upper:(Array.make dim hi)
let unbounded ~dim = box ~dim ~lo:neg_infinity ~hi:infinity

let project b x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- Util.Numerics.clamp ~lo:b.lower.(i) ~hi:b.upper.(i) x.(i)
  done

type objective = float array -> float * float array

type t = { dim : int; bnds : bounds; objective : objective }

let make ~bounds:bnds ~objective = { dim = Array.length bnds.lower; bnds; objective }

type constraint_kind = Eq | Le

type constr = { kind : constraint_kind; cname : string; eval : objective }

type constrained = { base : t; constraints : constr array }

let constrain base constraints = { base; constraints = Array.of_list constraints }

let eq ?(name = "eq") eval = { kind = Eq; cname = name; eval }
let le ?(name = "le") eval = { kind = Le; cname = name; eval }

let max_violation problem x =
  Array.fold_left
    (fun acc c ->
      let v, _ = c.eval x in
      let viol = match c.kind with Eq -> abs_float v | Le -> max 0. v in
      max acc viol)
    0. problem.constraints

(* ---- resilience layer ---------------------------------------------------- *)

type component = Objective | Constraint of int

let component_index = function Objective -> 0 | Constraint i -> i + 1

let pp_component ppf = function
  | Objective -> Format.pp_print_string ppf "objective"
  | Constraint i -> Format.fprintf ppf "constraint %d" i

type fault =
  | Nonfinite_value of float
  | Nonfinite_gradient of int
  | Nonfinite_iterate of int
  | Out_of_box of int

let pp_fault ppf = function
  | Nonfinite_value v -> Format.fprintf ppf "non-finite value %h" v
  | Nonfinite_gradient i -> Format.fprintf ppf "non-finite gradient entry %d" i
  | Nonfinite_iterate i -> Format.fprintf ppf "non-finite iterate entry %d" i
  | Out_of_box i -> Format.fprintf ppf "iterate entry %d outside the bounds" i

type breakdown = {
  b_component : component;
  b_fault : fault;
  b_x : float array;
  b_eval : int;
}

exception Numerical_breakdown of breakdown

let pp_breakdown ppf b =
  Format.fprintf ppf "numerical breakdown in the %a at evaluation %d: %a"
    pp_component b.b_component b.b_eval pp_fault b.b_fault

let () =
  Printexc.register_printer (function
    | Numerical_breakdown b -> Some (Format.asprintf "%a" pp_breakdown b)
    | _ -> None)

let map_components f problem =
  {
    base = { problem.base with objective = f ~component:Objective problem.base.objective };
    constraints =
      Array.mapi
        (fun i c -> { c with eval = f ~component:(Constraint i) c.eval })
        problem.constraints;
  }

(* Box-membership tolerance: iterates are produced by [project], so any
   genuine excursion is a solver bug or an injected fault, but allow a
   whisker of floating-point slack around the face of the box. *)
let box_slack = 1e-9

let guarded ?budget ?(check = true) problem =
  let bnds = problem.base.bnds in
  let evals = ref 0 in
  let wrap ~component f x =
    Option.iter Util.Guard.tick budget;
    let eval = !evals in
    incr evals;
    let break fault =
      raise (Numerical_breakdown
               { b_component = component; b_fault = fault; b_x = Array.copy x;
                 b_eval = eval })
    in
    if check then begin
      (match Util.Guard.first_nonfinite x with
      | Some i -> break (Nonfinite_iterate i)
      | None -> ());
      Array.iteri
        (fun i xi ->
          let slack = box_slack *. (1. +. abs_float xi) in
          if xi < bnds.lower.(i) -. slack || xi > bnds.upper.(i) +. slack then
            break (Out_of_box i))
        x
    end;
    let v, g = f x in
    if check then begin
      if not (Util.Guard.is_finite v) then break (Nonfinite_value v);
      match Util.Guard.first_nonfinite g with
      | Some i -> break (Nonfinite_gradient i)
      | None -> ()
    end;
    (v, g)
  in
  map_components wrap problem
