type bounds = { lower : float array; upper : float array }

let bounds ~lower ~upper =
  let n = Array.length lower in
  if Array.length upper <> n then invalid_arg "Problem.bounds: length mismatch";
  Array.iteri
    (fun i l -> if l > upper.(i) then invalid_arg "Problem.bounds: lower > upper")
    lower;
  { lower; upper }

let box ~dim ~lo ~hi = bounds ~lower:(Array.make dim lo) ~upper:(Array.make dim hi)
let unbounded ~dim = box ~dim ~lo:neg_infinity ~hi:infinity

let project b x =
  for i = 0 to Array.length x - 1 do
    x.(i) <- Util.Numerics.clamp ~lo:b.lower.(i) ~hi:b.upper.(i) x.(i)
  done

type objective = float array -> float * float array

type t = { dim : int; bnds : bounds; objective : objective }

let make ~bounds:bnds ~objective = { dim = Array.length bnds.lower; bnds; objective }

type constraint_kind = Eq | Le

type constr = { kind : constraint_kind; cname : string; eval : objective }

type constrained = { base : t; constraints : constr array }

let constrain base constraints = { base; constraints = Array.of_list constraints }

let eq ?(name = "eq") eval = { kind = Eq; cname = name; eval }
let le ?(name = "le") eval = { kind = Le; cname = name; eval }

let max_violation problem x =
  Array.fold_left
    (fun acc c ->
      let v, _ = c.eval x in
      let viol = match c.kind with Eq -> abs_float v | Le -> max 0. v in
      max acc viol)
    0. problem.constraints
