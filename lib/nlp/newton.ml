open Util

type options = {
  max_iterations : int;
  tolerance : float;
  initial_radius : float;
  max_radius : float;
  eta_accept : float;
  cg_tolerance : float;
  fd_epsilon : float;
}

let default_options =
  {
    max_iterations = 200;
    tolerance = 1e-8;
    initial_radius = 1.;
    max_radius = 1e3;
    eta_accept = 0.05;
    cg_tolerance = 0.01;
    fd_epsilon = 1e-7;
  }

type outcome = Converged | Iteration_limit | Step_failure | Interrupted

type report = {
  x : float array;
  f : float;
  gradient : float array;
  iterations : int;
  evaluations : int;
  projected_gradient_norm : float;
  outcome : outcome;
}

let projected_gradient_norm (bnds : Problem.bounds) x g =
  let m = ref 0. in
  for i = 0 to Array.length x - 1 do
    let step = Numerics.clamp ~lo:bnds.lower.(i) ~hi:bnds.upper.(i) (x.(i) -. g.(i)) in
    m := max !m (abs_float (step -. x.(i)))
  done;
  !m

(* Coordinates pinned at a bound with the gradient pushing further out are
   frozen; CG works in the complementary (free) subspace. *)
let free_mask (bnds : Problem.bounds) x g =
  Array.init (Array.length x) (fun i ->
      let at_lower = x.(i) <= bnds.lower.(i) +. 1e-12 && g.(i) > 0. in
      let at_upper = x.(i) >= bnds.upper.(i) -. 1e-12 && g.(i) < 0. in
      not (at_lower || at_upper))

let mask_apply mask v =
  Array.mapi (fun i vi -> if mask.(i) then vi else 0.) v

(* Steihaug-Toint truncated CG: approximately minimise
   g'p + p'Hp/2 subject to |p| <= radius, within the free subspace.
   [hv] evaluates Hessian-vector products. *)
let steihaug ~options ~hv ~mask g radius =
  let n = Array.length g in
  let p = Array.make n 0. in
  let r = mask_apply mask (Array.map (fun gi -> -.gi) g) in
  let d = Array.copy r in
  let r0_norm = Numerics.norm2 r in
  if r0_norm = 0. then p
  else begin
    let boundary_step p d =
      (* tau >= 0 with |p + tau d| = radius *)
      let dd = Numerics.dot d d in
      let pd = Numerics.dot p d in
      let pp = Numerics.dot p p in
      let disc = (pd *. pd) -. (dd *. ((pp -. (radius *. radius)))) in
      let tau = ((-.pd) +. sqrt (max 0. disc)) /. dd in
      let out = Array.copy p in
      Numerics.axpy tau d out;
      out
    in
    let result = ref None in
    let iter = ref 0 in
    while !result = None && !iter < 2 * n do
      incr iter;
      let hd = mask_apply mask (hv d) in
      let dhd = Numerics.dot d hd in
      if dhd <= 0. then result := Some (boundary_step p d)
      else begin
        let rr = Numerics.dot r r in
        let alpha = rr /. dhd in
        let p_next = Array.copy p in
        Numerics.axpy alpha d p_next;
        if Numerics.norm2 p_next >= radius then result := Some (boundary_step p d)
        else begin
          Array.blit p_next 0 p 0 n;
          Numerics.axpy (-.alpha) hd r;
          let rr_next = Numerics.dot r r in
          if sqrt rr_next <= options.cg_tolerance *. r0_norm then result := Some (Array.copy p)
          else begin
            let beta = rr_next /. rr in
            for i = 0 to n - 1 do
              d.(i) <- r.(i) +. (beta *. d.(i))
            done
          end
        end
      end
    done;
    match !result with Some p -> p | None -> p
  end

let minimize ?(options = default_options) (p : Problem.t) ~x0 =
  let n = p.Problem.dim in
  if Array.length x0 <> n then invalid_arg "Newton.minimize: x0 dimension mismatch";
  let x = Array.copy x0 in
  Problem.project p.Problem.bnds x;
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    p.Problem.objective x
  in
  let f = ref nan and g = ref (Array.make n 0.) in
  let radius = ref options.initial_radius in
  let finish iterations outcome =
    {
      x;
      f = !f;
      gradient = !g;
      iterations;
      evaluations = !evaluations;
      projected_gradient_norm = projected_gradient_norm p.Problem.bnds x !g;
      outcome;
    }
  in
  (* Forward-difference Hessian-vector product around the current point.
     The probe point is projected onto the box so the objective is never
     evaluated at infeasible sizes; at an active bound this degrades to a
     one-sided (possibly zero) curvature estimate, which the active-set
     mask makes harmless. *)
  let hv x g v =
    let norm = Numerics.norm_inf v in
    if norm = 0. then Array.make n 0.
    else begin
      let eps = options.fd_epsilon *. (1. +. Numerics.norm_inf x) /. norm in
      let xt = Array.copy x in
      Numerics.axpy eps v xt;
      Problem.project p.Problem.bnds xt;
      let _, gt = eval xt in
      Array.init n (fun i -> (gt.(i) -. g.(i)) /. eps)
    end
  in
  let iterations_done = ref 0 in
  let rec loop iter consecutive_failures =
    iterations_done := iter;
    if projected_gradient_norm p.Problem.bnds x !g <= options.tolerance then
      finish iter Converged
    else if iter >= options.max_iterations then finish iter Iteration_limit
    else if consecutive_failures > 30 then finish iter Step_failure
    else begin
      let mask = free_mask p.Problem.bnds x !g in
      let step = steihaug ~options ~hv:(hv x !g) ~mask !g !radius in
      let xt = Array.copy x in
      Numerics.axpy 1. step xt;
      Problem.project p.Problem.bnds xt;
      let actual_step = Array.init n (fun i -> xt.(i) -. x.(i)) in
      if Numerics.norm_inf actual_step = 0. then begin
        radius := !radius /. 4.;
        loop (iter + 1) (consecutive_failures + 1)
      end
      else begin
        let ft, gt = eval xt in
        (* Predicted reduction from the quadratic model. *)
        let hs = hv x !g actual_step in
        let predicted =
          -.(Numerics.dot !g actual_step +. (0.5 *. Numerics.dot actual_step hs))
        in
        let actual = !f -. ft in
        let rho = if predicted > 0. then actual /. predicted else -1. in
        if rho >= options.eta_accept && actual > 0. then begin
          Array.blit xt 0 x 0 n;
          f := ft;
          g := gt;
          if rho > 0.75 && Numerics.norm2 actual_step >= 0.99 *. !radius then
            radius := min options.max_radius (2. *. !radius)
          else if rho < 0.25 then radius := !radius /. 4.;
          loop (iter + 1) 0
        end
        else begin
          radius := !radius /. 4.;
          if !radius < 1e-14 then finish (iter + 1) Step_failure
          else loop (iter + 1) (consecutive_failures + 1)
        end
      end
    end
  in
  (* As in Lbfgs, x/f/g only change on accepted improving steps, so an
     expired budget returns the best iterate seen rather than nothing. *)
  match
    let f0, g0 = eval x in
    f := f0;
    g := g0
  with
  | exception Util.Guard.Out_of_budget _ -> finish 0 Interrupted
  | () -> (
      try loop 0 0
      with Util.Guard.Out_of_budget _ -> finish !iterations_done Interrupted)
