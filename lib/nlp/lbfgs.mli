(** Box-projected limited-memory BFGS.

    The inner solver of the augmented-Lagrangian loop (the role the
    bound-constrained trust-region solver plays inside LANCELOT).  The
    quasi-Newton direction comes from the standard two-loop recursion;
    steps follow the projected path {m x(\alpha) = P(x + \alpha d)} with
    Armijo backtracking, and convergence is declared on the projected
    gradient {m \lVert P(x - \nabla f) - x\rVert_\infty}. *)

type options = {
  max_iterations : int;  (** default 1500 *)
  memory : int;  (** L-BFGS history pairs, default 10 *)
  tolerance : float;  (** projected-gradient infinity norm, default 1e-6 *)
  f_tolerance : float;  (** relative objective stagnation, default 1e-14 *)
  armijo : float;  (** sufficient-decrease constant, default 1e-4 *)
  max_backtracks : int;  (** default 40 *)
}

val default_options : options

type outcome =
  | Converged
  | Stagnated
  | Iteration_limit
  | Line_search_failure
  | Interrupted
      (** a {!Util.Guard.Out_of_budget} fired during an evaluation; the
          report carries the best iterate seen so far (NaN objective if
          the budget expired before the very first evaluation) *)

type report = {
  x : float array;
  f : float;
  gradient : float array;
  iterations : int;
  evaluations : int;
  projected_gradient_norm : float;
  outcome : outcome;
}

val pp_outcome : Format.formatter -> outcome -> unit

val minimize : ?options:options -> Problem.t -> x0:float array -> report
(** Minimises from [x0] (projected onto the bounds first).  The incoming
    [x0] array is not mutated. *)
