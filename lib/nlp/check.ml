type verdict = {
  max_abs_error : float;
  max_rel_error : float;
  worst_index : int;
  ok : bool;
}

let gradient ?(h = 1e-6) ?(rtol = 1e-5) ?(atol = 1e-7) ?lo ?hi f x =
  let _, analytic = f x in
  let numeric = Util.Numerics.fd_gradient ~h ?lo ?hi (fun x -> fst (f x)) x in
  let max_abs = ref 0. and max_rel = ref 0. and worst = ref 0 in
  Array.iteri
    (fun i a ->
      let d = abs_float (a -. numeric.(i)) in
      let scale = max (abs_float a) (abs_float numeric.(i)) in
      let rel = if scale > 0. then d /. scale else 0. in
      if d > !max_abs then begin
        max_abs := d;
        worst := i
      end;
      if rel > !max_rel then max_rel := rel)
    analytic;
  let ok =
    Array.for_all
      (fun i ->
        let a = analytic.(i) and n = numeric.(i) in
        abs_float (a -. n) <= atol +. (rtol *. max (abs_float a) (abs_float n)))
      (Array.init (Array.length analytic) (fun i -> i))
  in
  { max_abs_error = !max_abs; max_rel_error = !max_rel; worst_index = !worst; ok }

let pp_verdict ppf v =
  Format.fprintf ppf "max_abs=%.3e max_rel=%.3e worst=%d %s" v.max_abs_error
    v.max_rel_error v.worst_index
    (if v.ok then "OK" else "MISMATCH")

(* ---- first-order (KKT) residuals ------------------------------------------- *)

type kkt = {
  stationarity : float;
  feasibility : float;
  complementarity : float;
  kkt_ok : bool;
}

(* Stationarity of min f(x) s.t. c_j(x) <= 0, lo <= x <= hi with the bound
   multipliers eliminated: at an interior coordinate the Lagrangian
   gradient L = grad f + sum lambda_j grad c_j must vanish; at an active
   lower bound only its negative part is a violation (a positive L_i is
   absorbed by the bound multiplier), symmetrically at an upper bound.
   [active_tol] is the width of the "at the bound" band in x. *)
let kkt ?(tol = 1e-6) ?(active_tol = 1e-9) ~bounds ~x ~objective_gradient
    ?(inequalities = []) () =
  let n = Array.length x in
  if Array.length objective_gradient <> n then
    invalid_arg "Check.kkt: gradient dimension mismatch";
  let lagr = Array.copy objective_gradient in
  let feasibility = ref 0. and complementarity = ref 0. in
  let dual_violation = ref 0. in
  List.iter
    (fun (c, grad, lambda) ->
      feasibility := Float.max !feasibility (Float.max 0. c);
      complementarity := Float.max !complementarity (Float.abs (lambda *. c));
      dual_violation := Float.max !dual_violation (Float.max 0. (-.lambda));
      List.iter
        (fun (i, g) ->
          if i < 0 || i >= n then invalid_arg "Check.kkt: gradient index out of range";
          lagr.(i) <- lagr.(i) +. (lambda *. g))
        grad)
    inequalities;
  let stationarity = ref 0. in
  let lo = bounds.Problem.lower and hi = bounds.Problem.upper in
  for i = 0 to n - 1 do
    feasibility :=
      Float.max !feasibility (Float.max (lo.(i) -. x.(i)) (x.(i) -. hi.(i)));
    let at_lo = x.(i) <= lo.(i) +. active_tol in
    let at_hi = x.(i) >= hi.(i) -. active_tol in
    let r =
      match (at_lo, at_hi) with
      | true, true -> 0. (* pinched coordinate: any L_i is absorbed *)
      | true, false -> Float.max 0. (-.lagr.(i))
      | false, true -> Float.max 0. lagr.(i)
      | false, false -> Float.abs lagr.(i)
    in
    stationarity := Float.max !stationarity r
  done;
  let stationarity = Float.max !stationarity !dual_violation in
  {
    stationarity;
    feasibility = !feasibility;
    complementarity = !complementarity;
    kkt_ok =
      stationarity <= tol && !feasibility <= tol && !complementarity <= tol;
  }

let kkt_residual v =
  Float.max v.stationarity (Float.max v.feasibility v.complementarity)

let pp_kkt ppf v =
  Format.fprintf ppf "stationarity=%.3e feasibility=%.3e complementarity=%.3e %s"
    v.stationarity v.feasibility v.complementarity
    (if v.kkt_ok then "OK" else "VIOLATED")
