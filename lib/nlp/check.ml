type verdict = {
  max_abs_error : float;
  max_rel_error : float;
  worst_index : int;
  ok : bool;
}

let gradient ?(h = 1e-6) ?(rtol = 1e-5) ?(atol = 1e-7) ?lo ?hi f x =
  let _, analytic = f x in
  let numeric = Util.Numerics.fd_gradient ~h ?lo ?hi (fun x -> fst (f x)) x in
  let max_abs = ref 0. and max_rel = ref 0. and worst = ref 0 in
  Array.iteri
    (fun i a ->
      let d = abs_float (a -. numeric.(i)) in
      let scale = max (abs_float a) (abs_float numeric.(i)) in
      let rel = if scale > 0. then d /. scale else 0. in
      if d > !max_abs then begin
        max_abs := d;
        worst := i
      end;
      if rel > !max_rel then max_rel := rel)
    analytic;
  let ok =
    Array.for_all
      (fun i ->
        let a = analytic.(i) and n = numeric.(i) in
        abs_float (a -. n) <= atol +. (rtol *. max (abs_float a) (abs_float n)))
      (Array.init (Array.length analytic) (fun i -> i))
  in
  { max_abs_error = !max_abs; max_rel_error = !max_rel; worst_index = !worst; ok }

let pp_verdict ppf v =
  Format.fprintf ppf "max_abs=%.3e max_rel=%.3e worst=%d %s" v.max_abs_error
    v.max_rel_error v.worst_index
    (if v.ok then "OK" else "MISMATCH")
