(** Augmented-Lagrangian method for equality/inequality constraints over
    simple bounds — the same algorithmic family as LANCELOT, which the
    paper uses to solve the sizing formulations "exactly".

    Equality constraints use the classical Hestenes–Powell augmented
    Lagrangian; inequalities the Rockafellar form
    {m \frac{\rho}{2}\big(\max(0, c + \lambda/\rho)^2 - (\lambda/\rho)^2\big)}.
    Each outer iteration minimises the augmented Lagrangian over the box
    with {!Lbfgs}, then updates multipliers and, when the violation does
    not shrink enough, increases the penalty. *)

type options = {
  outer_iterations : int;  (** default 50 *)
  constraint_tolerance : float;  (** default 1e-7 *)
  initial_penalty : float;  (** default 10. *)
  penalty_growth : float;  (** default 10. *)
  max_penalty : float;  (** default 1e10 *)
  violation_decrease : float;
      (** required shrink factor per outer iteration before the penalty is
          raised, default 0.25 *)
  inner : Lbfgs.options;  (** inner solver options (L-BFGS mode) *)
  inner_solver : [ `Lbfgs | `Newton of Newton.options ];
      (** which bound-constrained inner solver minimises the augmented
          Lagrangian: the first-order projected L-BFGS (default) or the
          second-order trust-region Newton-CG — LANCELOT's flavour
          (A-SOLVER ablation) *)
}

val default_options : options

type report = {
  x : float array;
  f : float;  (** true objective at [x] (no penalty terms) *)
  multipliers : float array;
  penalty : float;
  max_violation : float;
  outer_iterations : int;
  inner_iterations : int;
  evaluations : int;
  converged : bool;
}

val solve : ?options:options -> Problem.constrained -> x0:float array -> report
(** Solves the constrained problem from [x0].  When the constraint list is
    empty this reduces to a single {!Lbfgs} run. *)
