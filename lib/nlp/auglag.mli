(** Augmented-Lagrangian method for equality/inequality constraints over
    simple bounds — the same algorithmic family as LANCELOT, which the
    paper uses to solve the sizing formulations "exactly".

    Equality constraints use the classical Hestenes–Powell augmented
    Lagrangian; inequalities the Rockafellar form
    {m \frac{\rho}{2}\big(\max(0, c + \lambda/\rho)^2 - (\lambda/\rho)^2\big)}.
    Each outer iteration minimises the augmented Lagrangian over the box
    with {!Lbfgs}, then updates multipliers and, when the violation does
    not shrink enough, increases the penalty.

    {b Resilience.}  By default every evaluation runs behind
    {!Problem.guarded}, so NaN/Inf leaking out of an objective,
    constraint or gradient surfaces as a [Breakdown] termination with
    the typed {!Problem.breakdown} diagnosis instead of corrupting the
    iteration or escaping as an exception.  Optional [deadline] /
    [max_evaluations] budgets bound the solve; when one expires the
    report carries the most feasible iterate checkpointed so far and a
    [Deadline] termination.  [solve] never raises on numerical failure —
    every exit path is a {!report} with a {!termination} reason. *)

type options = {
  outer_iterations : int;  (** default 50 *)
  constraint_tolerance : float;  (** default 1e-7 *)
  initial_penalty : float;  (** default 10. *)
  penalty_growth : float;  (** default 10. *)
  max_penalty : float;  (** default 1e10 *)
  violation_decrease : float;
      (** required shrink factor per outer iteration before the penalty is
          raised, default 0.25 *)
  inner : Lbfgs.options;  (** inner solver options (L-BFGS mode) *)
  inner_solver : [ `Lbfgs | `Newton of Newton.options ];
      (** which bound-constrained inner solver minimises the augmented
          Lagrangian: the first-order projected L-BFGS (default) or the
          second-order trust-region Newton-CG — LANCELOT's flavour
          (A-SOLVER ablation) *)
  deadline : float option;
      (** wall-clock budget in seconds for the whole solve, default [None] *)
  max_evaluations : int option;
      (** budget on component (objective/constraint) evaluations, default
          [None] *)
  guard : bool;
      (** check every evaluation for NaN/Inf and out-of-box iterates
          (default [true]); purely observational — guarded and unguarded
          solves of a healthy problem are bit-identical *)
}

val default_options : options

type termination =
  | Converged  (** constraint violation within tolerance *)
  | Deadline  (** a wall-clock or evaluation budget expired *)
  | Breakdown  (** a guard caught NaN/Inf — see [report.breakdown] *)
  | Stalled
      (** the outer-iteration allowance ran out (or, with no
          constraints, the inner solver hit its iteration limit) *)
  | Penalty_ceiling
      (** the penalty reached [max_penalty] and the violation stopped
          shrinking — the classic signature of an infeasible or
          ill-posed constraint set *)

val pp_termination : Format.formatter -> termination -> unit

val termination_name : termination -> string
(** Stable kebab-case identifier, e.g. for JSON diagnoses. *)

type report = {
  x : float array;
  f : float;  (** true objective at [x] (no penalty terms) *)
  multipliers : float array;
  penalty : float;
  max_violation : float;
  outer_iterations : int;
  inner_iterations : int;
  evaluations : int;
  termination : termination;
  breakdown : Problem.breakdown option;
      (** the typed diagnosis when [termination = Breakdown] *)
  converged : bool;  (** [termination = Converged] *)
}

val solve : ?options:options -> Problem.constrained -> x0:float array -> report
(** Solves the constrained problem from [x0].  When the constraint list is
    empty this reduces to a single {!Lbfgs} run.  On [Deadline],
    [Breakdown], [Stalled] and [Penalty_ceiling] exits the report holds
    the most feasible iterate seen (checkpointed once per outer
    iteration), with [f]/[max_violation] re-measured on the caller's
    unguarded problem so the diagnosis itself cannot run out of
    budget. *)
