(** Finite-difference verification of analytic gradients.

    The paper stresses that exact analytical derivatives are what makes
    the statistical sizing formulation tractable; this checker is how the
    test suite (and any new objective) demonstrates the analytic gradients
    are in fact the derivatives of the implemented functions. *)

type verdict = {
  max_abs_error : float;
  max_rel_error : float;
  worst_index : int;
  ok : bool;
}

val gradient :
  ?h:float ->
  ?rtol:float ->
  ?atol:float ->
  ?lo:float array ->
  ?hi:float array ->
  (float array -> float * float array) ->
  float array ->
  verdict
(** Compares the analytic gradient with central differences at the given
    point.  Defaults: [h = 1e-6], [rtol = 1e-5], [atol = 1e-7].

    Pass the feasible box as [lo]/[hi] when [f]'s domain is bounded —
    e.g. sizing objectives, defined only for speed factors {m S_i \ge 1}:
    the stencil is then clamped into the box
    ({!Util.Numerics.fd_gradient}), so checking an iterate {e at} a bound
    degrades to a one-sided difference instead of stepping outside the
    simplex-like feasible set and evaluating [f] where it raises.  When
    a coordinate sits at a bound, prefer an [h] coarse enough that the
    {m O(h)} one-sided truncation error stays below [atol]/[rtol]. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 First-order (KKT) residuals}

    Beyond gradient correctness, a solver's answer needs a first-order
    certificate: the residuals of the Karush-Kuhn-Tucker conditions at a
    candidate point.  {!kkt} measures them for the box-constrained
    problem with inequality constraints

    {math \min f(x) \quad\text{s.t.}\quad c_j(x) \le 0,\; l \le x \le u}

    given the candidate [x], the objective gradient, and for each
    inequality its value, (sparse) gradient and multiplier.  The
    {!Sizing.Gp} backend computes its barrier-dual certificate through
    this helper, and [statsize gp] reports it. *)

type kkt = {
  stationarity : float;
      (** {m \|\nabla f + \textstyle\sum_j \lambda_j \nabla c_j\|_\infty}
          with the bound multipliers eliminated by projection: at an
          active lower (upper) bound only the negative (positive) part
          of the Lagrangian gradient counts.  Also absorbs any negative
          multiplier ({m \lambda_j < 0} is a dual-feasibility
          violation). *)
  feasibility : float;
      (** {m \max_j \max(0, c_j(x))} joined with the worst box
          violation. *)
  complementarity : float;  (** {m \max_j |\lambda_j\, c_j(x)|} *)
  kkt_ok : bool;  (** all three residuals within [tol] *)
}

val kkt :
  ?tol:float ->
  ?active_tol:float ->
  bounds:Problem.bounds ->
  x:float array ->
  objective_gradient:float array ->
  ?inequalities:(float * (int * float) list * float) list ->
  unit ->
  kkt
(** [kkt ~bounds ~x ~objective_gradient ~inequalities ()] with each
    inequality given as [(c(x), sparse gradient, lambda)]; the sparse
    gradient lists [(index, d c / d x_index)] pairs (indices may
    repeat; contributions add).  Defaults: [tol = 1e-6] (threshold for
    [kkt_ok]), [active_tol = 1e-9] (how close to a bound counts as
    active).  Raises [Invalid_argument] on dimension or index
    mismatches. *)

val kkt_residual : kkt -> float
(** The scalar headline: the max of the three residuals. *)

val pp_kkt : Format.formatter -> kkt -> unit
