(** Finite-difference verification of analytic gradients.

    The paper stresses that exact analytical derivatives are what makes
    the statistical sizing formulation tractable; this checker is how the
    test suite (and any new objective) demonstrates the analytic gradients
    are in fact the derivatives of the implemented functions. *)

type verdict = {
  max_abs_error : float;
  max_rel_error : float;
  worst_index : int;
  ok : bool;
}

val gradient :
  ?h:float ->
  ?rtol:float ->
  ?atol:float ->
  (float array -> float * float array) ->
  float array ->
  verdict
(** Compares the analytic gradient with central differences at the given
    point.  Defaults: [h = 1e-6], [rtol = 1e-5], [atol = 1e-7]. *)

val pp_verdict : Format.formatter -> verdict -> unit
