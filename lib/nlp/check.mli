(** Finite-difference verification of analytic gradients.

    The paper stresses that exact analytical derivatives are what makes
    the statistical sizing formulation tractable; this checker is how the
    test suite (and any new objective) demonstrates the analytic gradients
    are in fact the derivatives of the implemented functions. *)

type verdict = {
  max_abs_error : float;
  max_rel_error : float;
  worst_index : int;
  ok : bool;
}

val gradient :
  ?h:float ->
  ?rtol:float ->
  ?atol:float ->
  ?lo:float array ->
  ?hi:float array ->
  (float array -> float * float array) ->
  float array ->
  verdict
(** Compares the analytic gradient with central differences at the given
    point.  Defaults: [h = 1e-6], [rtol = 1e-5], [atol = 1e-7].

    Pass the feasible box as [lo]/[hi] when [f]'s domain is bounded —
    e.g. sizing objectives, defined only for speed factors {m S_i \ge 1}:
    the stencil is then clamped into the box
    ({!Util.Numerics.fd_gradient}), so checking an iterate {e at} a bound
    degrades to a one-sided difference instead of stepping outside the
    simplex-like feasible set and evaluating [f] where it raises.  When
    a coordinate sits at a bound, prefer an [h] coarse enough that the
    {m O(h)} one-sided truncation error stays below [atol]/[rtol]. *)

val pp_verdict : Format.formatter -> verdict -> unit
