open Util

type options = {
  max_iterations : int;
  memory : int;
  tolerance : float;
  f_tolerance : float;
  armijo : float;
  max_backtracks : int;
}

let default_options =
  {
    max_iterations = 1500;
    memory = 10;
    tolerance = 1e-6;
    f_tolerance = 1e-14;
    armijo = 1e-4;
    max_backtracks = 40;
  }

type outcome = Converged | Stagnated | Iteration_limit | Line_search_failure | Interrupted

type report = {
  x : float array;
  f : float;
  gradient : float array;
  iterations : int;
  evaluations : int;
  projected_gradient_norm : float;
  outcome : outcome;
}

let pp_outcome ppf = function
  | Converged -> Format.pp_print_string ppf "converged"
  | Stagnated -> Format.pp_print_string ppf "stagnated"
  | Iteration_limit -> Format.pp_print_string ppf "iteration limit"
  | Line_search_failure -> Format.pp_print_string ppf "line search failure"
  | Interrupted -> Format.pp_print_string ppf "interrupted"

(* ||P(x - g) - x||_inf : first-order criticality measure on a box. *)
let projected_gradient_norm (bnds : Problem.bounds) x g =
  let m = ref 0. in
  for i = 0 to Array.length x - 1 do
    let step = Numerics.clamp ~lo:bnds.lower.(i) ~hi:bnds.upper.(i) (x.(i) -. g.(i)) in
    m := max !m (abs_float (step -. x.(i)))
  done;
  !m

(* Two-loop recursion over the stored (s, y) pairs; returns -H g. *)
let two_loop history g =
  let d = Array.map (fun gi -> -.gi) g in
  match history with
  | [] -> d
  | (s_last, y_last) :: _ ->
      let alphas =
        List.map
          (fun (s, y) ->
            let rho = 1. /. Numerics.dot y s in
            let a = rho *. Numerics.dot s d in
            Numerics.axpy (-.a) y d;
            (a, rho, s, y))
          history
      in
      let gamma = Numerics.dot s_last y_last /. Numerics.dot y_last y_last in
      Array.iteri (fun i di -> d.(i) <- gamma *. di) d;
      List.iter
        (fun (a, rho, s, y) ->
          let b = rho *. Numerics.dot y d in
          Numerics.axpy (a -. b) s d)
        (List.rev alphas);
      d

let minimize ?(options = default_options) (p : Problem.t) ~x0 =
  let n = p.Problem.dim in
  if Array.length x0 <> n then invalid_arg "Lbfgs.minimize: x0 dimension mismatch";
  let x = Array.copy x0 in
  Problem.project p.Problem.bnds x;
  let evaluations = ref 0 in
  let eval x =
    incr evaluations;
    p.Problem.objective x
  in
  let f = ref nan and g = ref (Array.make n 0.) in
  let finish iterations outcome =
    {
      x;
      f = !f;
      gradient = !g;
      iterations;
      evaluations = !evaluations;
      projected_gradient_norm = projected_gradient_norm p.Problem.bnds x !g;
      outcome;
    }
  in
  (* Best-so-far checkpointing is implicit: x/f/g are only overwritten on
     accepted (strictly improving) steps, so when a budget expires
     mid-iteration the state refs still hold the best iterate seen and we
     can return it instead of nothing. *)
  let iterations_done = ref 0 in
  match
    let f0, g0 = eval x in
    f := f0;
    g := g0
  with
  | exception Util.Guard.Out_of_budget _ -> finish 0 Interrupted
  | () ->
  let history = ref [] in
  let rec loop iter stagnant =
    iterations_done := iter;
    if projected_gradient_norm p.Problem.bnds x !g <= options.tolerance then
      finish iter Converged
    else if iter >= options.max_iterations then finish iter Iteration_limit
    else begin
      (* Zero the components that point out of the box at an active bound:
         they would be clipped by the projection anyway, and leaving them
         in routinely turns a descent direction into an ascent one along
         the projected path (wasting a whole backtracking run). *)
      let mask_direction d =
        for i = 0 to n - 1 do
          let at_lower = x.(i) <= p.Problem.bnds.Problem.lower.(i) +. 1e-12 in
          let at_upper = x.(i) >= p.Problem.bnds.Problem.upper.(i) -. 1e-12 in
          if (at_lower && d.(i) < 0.) || (at_upper && d.(i) > 0.) then d.(i) <- 0.
        done;
        d
      in
      let d = mask_direction (two_loop !history !g) in
      (* Fall back to steepest descent when the quasi-Newton direction is
         not a descent direction (can happen after bound activity). *)
      let d =
        if Numerics.dot d !g >= 0. then begin
          history := [];
          mask_direction (Array.map (fun gi -> -.gi) !g)
        end
        else d
      in
      (* Backtracking Armijo search along the projected path. *)
      let rec search d alpha backtracks =
        if backtracks > options.max_backtracks then None
        else begin
          let xt = Array.copy x in
          Numerics.axpy alpha d xt;
          Problem.project p.Problem.bnds xt;
          let ft, gt = eval xt in
          let actual_step = Array.init n (fun i -> xt.(i) -. x.(i)) in
          let predicted = Numerics.dot !g actual_step in
          if Numerics.norm_inf actual_step = 0. then None
          else if
            (* Armijo when the projected step is a descent step; otherwise
               (rounding near bounds can make g.s >= 0) accept any strict
               decrease rather than discarding progress. *)
            (predicted < 0. && ft <= !f +. (options.armijo *. predicted))
            || (predicted >= 0. && ft < !f)
          then Some (xt, ft, gt, actual_step)
          else search d (alpha /. 2.) (backtracks + 1)
        end
      in
      (* Even a descent direction can stop being one along the projection
         arc (its clipped components flip the sign of g.s); the projected
         steepest-descent direction never does, so retry with it before
         giving up. *)
      let attempt =
        match search d 1. 0 with
        | Some _ as result -> result
        | None ->
            history := [];
            search (mask_direction (Array.map (fun gi -> -.gi) !g)) 1. 0
      in
      match attempt with
      | None -> finish iter Line_search_failure
      | Some (xt, ft, gt, s) ->
          let y = Array.init n (fun i -> gt.(i) -. !g.(i)) in
          let sy = Numerics.dot s y in
          if sy > 1e-12 *. Numerics.norm2 s *. Numerics.norm2 y then begin
            history := (s, y) :: !history;
            if List.length !history > options.memory then
              history := List.filteri (fun i _ -> i < options.memory) !history
          end;
          let f_prev = !f in
          Array.blit xt 0 x 0 n;
          f := ft;
          g := gt;
          (* Declare stagnation only after several consecutive iterations
             without meaningful objective change — a single tiny step (e.g.
             a clipped move onto a bound) is normal progress. *)
          let tiny =
            abs_float (f_prev -. ft)
            <= options.f_tolerance *. max 1. (abs_float f_prev)
          in
          if tiny && stagnant >= 2 then finish (iter + 1) Stagnated
          else loop (iter + 1) (if tiny then stagnant + 1 else 0)
    end
  in
  (try loop 0 0
   with Util.Guard.Out_of_budget _ -> finish !iterations_done Interrupted)
