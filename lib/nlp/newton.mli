(** Trust-region Newton-CG over box bounds.

    LANCELOT — the solver the paper uses — is a second-order method: its
    bound-constrained inner solver minimises a quadratic model inside a
    trust region.  This module provides the same flavour as an alternative
    to the first-order {!Lbfgs} inner solver: Steihaug–Toint truncated
    conjugate gradients on the quadratic model, with Hessian–vector
    products taken by forward differencing of the user's analytic gradient
    (so only first derivatives need to be coded, as everywhere else in
    this reproduction).

    Box bounds are handled with an active-set projection: coordinates
    pinned at a bound with an inward-pointing gradient are frozen out of
    the CG subspace, and trial steps are projected back onto the box.
    The A-SOLVER ablation compares it with {!Lbfgs} on the paper's
    formulations. *)

type options = {
  max_iterations : int;  (** outer (trust-region) iterations, default 200 *)
  tolerance : float;  (** projected-gradient infinity norm, default 1e-8 *)
  initial_radius : float;  (** default 1. *)
  max_radius : float;  (** default 1e3 *)
  eta_accept : float;  (** minimum actual/predicted ratio to accept, default 0.05 *)
  cg_tolerance : float;  (** relative residual for the CG solve, default 0.01 *)
  fd_epsilon : float;  (** Hessian-vector differencing step, default 1e-7 *)
}

val default_options : options

type outcome =
  | Converged
  | Iteration_limit
  | Step_failure
  | Interrupted
      (** a {!Util.Guard.Out_of_budget} fired during an evaluation; the
          report carries the best iterate seen so far *)

type report = {
  x : float array;
  f : float;
  gradient : float array;
  iterations : int;
  evaluations : int;  (** objective/gradient evaluations, including Hv products *)
  projected_gradient_norm : float;
  outcome : outcome;
}

val minimize : ?options:options -> Problem.t -> x0:float array -> report
