(** Nonlinear-programming problem definitions.

    The paper solves gate sizing with LANCELOT, a large-scale
    augmented-Lagrangian package for problems of the form

    {math \min f(x) \quad\text{s.t.}\quad c_i(x) = 0,\; l \le x \le u}

    (equation 17 is exactly of this shape: equality constraints plus
    simple variable bounds).  This module describes that problem class;
    {!Lbfgs} solves the bound-constrained case and {!Auglag} the general
    case. *)

type bounds = { lower : float array; upper : float array }

val bounds : lower:float array -> upper:float array -> bounds
(** Validates [lower.(i) <= upper.(i)] and equal lengths. *)

val box : dim:int -> lo:float -> hi:float -> bounds
(** Uniform bounds. *)

val unbounded : dim:int -> bounds
(** [(-inf, +inf)] in every coordinate. *)

val project : bounds -> float array -> unit
(** Clips the vector onto the box in place. *)

type objective = float array -> float * float array
(** Returns the value and a freshly allocated gradient. *)

type t = { dim : int; bnds : bounds; objective : objective }

val make : bounds:bounds -> objective:objective -> t

type constraint_kind =
  | Eq  (** [c(x) = 0] *)
  | Le  (** [c(x) <= 0] *)

type constr = { kind : constraint_kind; cname : string; eval : objective }

type constrained = { base : t; constraints : constr array }

val constrain : t -> constr list -> constrained

val eq : ?name:string -> objective -> constr
val le : ?name:string -> objective -> constr

val max_violation : constrained -> float array -> float
(** Largest constraint violation at [x] ([|c|] for equalities,
    [max 0 c] for inequalities). *)

(** {1 Resilience layer}

    The guarded wrapper is the first rung of the solver resilience
    story (DESIGN.md §7): every component evaluation is checked for
    NaN/Inf values, non-finite gradients and out-of-box iterates, and
    any violation raises the typed {!Numerical_breakdown} carrying the
    offending component, the fault class, a snapshot of the iterate and
    the global evaluation index.  {!Auglag.solve} installs it by
    default, catches the exception, and reports a [Breakdown]
    termination instead of crashing or looping. *)

type component = Objective | Constraint of int  (** constraint array index *)

val component_index : component -> int
(** Stable integer id: 0 for the objective, [i + 1] for constraint [i]
    — the numbering used by {!Util.Fault} sites. *)

val pp_component : Format.formatter -> component -> unit

type fault =
  | Nonfinite_value of float  (** the evaluation returned NaN/Inf *)
  | Nonfinite_gradient of int  (** gradient entry index *)
  | Nonfinite_iterate of int  (** NaN/Inf in the evaluation point itself *)
  | Out_of_box of int  (** iterate entry escaped the bounds *)

val pp_fault : Format.formatter -> fault -> unit

type breakdown = {
  b_component : component;
  b_fault : fault;
  b_x : float array;  (** snapshot of the iterate at the failure *)
  b_eval : int;  (** global guarded-evaluation index *)
}

exception Numerical_breakdown of breakdown

val pp_breakdown : Format.formatter -> breakdown -> unit

val map_components :
  (component:component -> objective -> objective) -> constrained -> constrained
(** Rewraps every evaluation closure (objective and each constraint)
    — the hook {!Util.Fault} injectors and custom monitors attach
    through. *)

val guarded : ?budget:Util.Guard.budget -> ?check:bool -> constrained -> constrained
(** [guarded ?budget ?check p] returns an observationally identical
    problem whose evaluations (i) tick [budget] first, so an exhausted
    budget raises {!Util.Guard.Out_of_budget} before the next
    evaluation starts, and (ii) when [check] (default [true]), verify
    iterate/value/gradient sanity and raise {!Numerical_breakdown} on
    the first violation.  Values and gradients pass through unchanged,
    so a guarded solve is bit-identical to an unguarded one until the
    moment it fails. *)
