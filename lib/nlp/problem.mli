(** Nonlinear-programming problem definitions.

    The paper solves gate sizing with LANCELOT, a large-scale
    augmented-Lagrangian package for problems of the form

    {math \min f(x) \quad\text{s.t.}\quad c_i(x) = 0,\; l \le x \le u}

    (equation 17 is exactly of this shape: equality constraints plus
    simple variable bounds).  This module describes that problem class;
    {!Lbfgs} solves the bound-constrained case and {!Auglag} the general
    case. *)

type bounds = { lower : float array; upper : float array }

val bounds : lower:float array -> upper:float array -> bounds
(** Validates [lower.(i) <= upper.(i)] and equal lengths. *)

val box : dim:int -> lo:float -> hi:float -> bounds
(** Uniform bounds. *)

val unbounded : dim:int -> bounds
(** [(-inf, +inf)] in every coordinate. *)

val project : bounds -> float array -> unit
(** Clips the vector onto the box in place. *)

type objective = float array -> float * float array
(** Returns the value and a freshly allocated gradient. *)

type t = { dim : int; bnds : bounds; objective : objective }

val make : bounds:bounds -> objective:objective -> t

type constraint_kind =
  | Eq  (** [c(x) = 0] *)
  | Le  (** [c(x) <= 0] *)

type constr = { kind : constraint_kind; cname : string; eval : objective }

type constrained = { base : t; constraints : constr array }

val constrain : t -> constr list -> constrained

val eq : ?name:string -> objective -> constr
val le : ?name:string -> objective -> constr

val max_violation : constrained -> float array -> float
(** Largest constraint violation at [x] ([|c|] for equalities,
    [max 0 c] for inequalities). *)
