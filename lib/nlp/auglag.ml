open Util

type options = {
  outer_iterations : int;
  constraint_tolerance : float;
  initial_penalty : float;
  penalty_growth : float;
  max_penalty : float;
  violation_decrease : float;
  inner : Lbfgs.options;
  inner_solver : [ `Lbfgs | `Newton of Newton.options ];
}

let default_options =
  {
    outer_iterations = 50;
    constraint_tolerance = 1e-7;
    initial_penalty = 10.;
    penalty_growth = 10.;
    max_penalty = 1e10;
    violation_decrease = 0.25;
    inner = Lbfgs.default_options;
    inner_solver = `Lbfgs;
  }

let c_outer = Instr.counter "auglag.outer_iterations"
let c_inner = Instr.counter "auglag.inner_iterations"
let c_evals = Instr.counter "auglag.evaluations"
let t_inner = Instr.timer "auglag.inner_solve"

(* Uniform view of the two inner solvers: final point, iterations,
   evaluations, and whether the run ended for a benign reason. *)
let run_inner options problem ~x0 =
  Instr.time t_inner @@ fun () ->
  match options.inner_solver with
  | `Lbfgs ->
      let r = Lbfgs.minimize ~options:options.inner problem ~x0 in
      ( r.Lbfgs.x,
        r.Lbfgs.iterations,
        r.Lbfgs.evaluations,
        r.Lbfgs.outcome <> Lbfgs.Iteration_limit )
  | `Newton newton_options ->
      let r = Newton.minimize ~options:newton_options problem ~x0 in
      ( r.Newton.x,
        r.Newton.iterations,
        r.Newton.evaluations,
        r.Newton.outcome <> Newton.Iteration_limit )

type report = {
  x : float array;
  f : float;
  multipliers : float array;
  penalty : float;
  max_violation : float;
  outer_iterations : int;
  inner_iterations : int;
  evaluations : int;
  converged : bool;
}

(* Augmented Lagrangian value and gradient at x for the given multipliers
   and penalty. *)
let augmented (problem : Problem.constrained) lambda rho x =
  let f, g = problem.Problem.base.Problem.objective x in
  let g = Array.copy g in
  let total = ref f in
  Array.iteri
    (fun i (c : Problem.constr) ->
      let v, gv = c.Problem.eval x in
      match c.Problem.kind with
      | Problem.Eq ->
          total := !total +. (lambda.(i) *. v) +. (0.5 *. rho *. v *. v);
          Numerics.axpy (lambda.(i) +. (rho *. v)) gv g
      | Problem.Le ->
          let shifted = v +. (lambda.(i) /. rho) in
          if shifted > 0. then begin
            total :=
              !total
              +. (0.5 *. rho
                  *. ((shifted *. shifted) -. (lambda.(i) /. rho *. (lambda.(i) /. rho))));
            Numerics.axpy (rho *. shifted) gv g
          end
          else total := !total -. (0.5 *. lambda.(i) *. lambda.(i) /. rho))
    problem.Problem.constraints;
  (!total, g)

let solve ?(options = default_options) (problem : Problem.constrained) ~x0 =
  let m = Array.length problem.Problem.constraints in
  let base = problem.Problem.base in
  if m = 0 then begin
    let x, iterations, evaluations, ok = run_inner options base ~x0 in
    Instr.add c_inner iterations;
    Instr.add c_evals evaluations;
    let f, _ = base.Problem.objective x in
    {
      x;
      f;
      multipliers = [||];
      penalty = 0.;
      max_violation = 0.;
      outer_iterations = 0;
      inner_iterations = iterations;
      evaluations;
      converged = ok;
    }
  end
  else begin
    let lambda = Array.make m 0. in
    let rho = ref options.initial_penalty in
    let x = Array.copy x0 in
    Problem.project base.Problem.bnds x;
    let inner_iterations = ref 0 in
    let evaluations = ref 0 in
    let prev_violation = ref infinity in
    let result = ref None in
    let outer = ref 0 in
    while !result = None && !outer < options.outer_iterations do
      incr outer;
      Instr.incr c_outer;
      let sub =
        Problem.make ~bounds:base.Problem.bnds ~objective:(fun x ->
            augmented problem lambda !rho x)
      in
      let xr, iterations, evals, _ = run_inner options sub ~x0:x in
      Instr.add c_inner iterations;
      Instr.add c_evals evals;
      inner_iterations := !inner_iterations + iterations;
      evaluations := !evaluations + evals;
      Array.blit xr 0 x 0 base.Problem.dim;
      (* Multiplier updates and violation measurement. *)
      let violation = ref 0. in
      Array.iteri
        (fun i (c : Problem.constr) ->
          let v, _ = c.Problem.eval x in
          (match c.Problem.kind with
          | Problem.Eq ->
              violation := max !violation (abs_float v);
              lambda.(i) <- lambda.(i) +. (!rho *. v)
          | Problem.Le ->
              violation := max !violation (max 0. v);
              lambda.(i) <- max 0. (lambda.(i) +. (!rho *. v))))
        problem.Problem.constraints;
      if !violation <= options.constraint_tolerance then begin
        let f, _ = base.Problem.objective x in
        result :=
          Some
            {
              x = Array.copy x;
              f;
              multipliers = Array.copy lambda;
              penalty = !rho;
              max_violation = !violation;
              outer_iterations = !outer;
              inner_iterations = !inner_iterations;
              evaluations = !evaluations;
              converged = true;
            }
      end
      else begin
        if !violation > options.violation_decrease *. !prev_violation then
          rho := min options.max_penalty (!rho *. options.penalty_growth);
        prev_violation := !violation
      end
    done;
    match !result with
    | Some r -> r
    | None ->
        let f, _ = base.Problem.objective x in
        {
          x;
          f;
          multipliers = lambda;
          penalty = !rho;
          max_violation = Problem.max_violation problem x;
          outer_iterations = !outer;
          inner_iterations = !inner_iterations;
          evaluations = !evaluations;
          converged = false;
        }
  end
