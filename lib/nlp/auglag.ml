open Util

type options = {
  outer_iterations : int;
  constraint_tolerance : float;
  initial_penalty : float;
  penalty_growth : float;
  max_penalty : float;
  violation_decrease : float;
  inner : Lbfgs.options;
  inner_solver : [ `Lbfgs | `Newton of Newton.options ];
  deadline : float option;
  max_evaluations : int option;
  guard : bool;
}

let default_options =
  {
    outer_iterations = 50;
    constraint_tolerance = 1e-7;
    initial_penalty = 10.;
    penalty_growth = 10.;
    max_penalty = 1e10;
    violation_decrease = 0.25;
    inner = Lbfgs.default_options;
    inner_solver = `Lbfgs;
    deadline = None;
    max_evaluations = None;
    guard = true;
  }

let c_outer = Instr.counter "auglag.outer_iterations"
let c_inner = Instr.counter "auglag.inner_iterations"
let c_evals = Instr.counter "auglag.evaluations"
let c_breakdowns = Instr.counter "auglag.breakdowns"
let c_budget_stops = Instr.counter "auglag.budget_stops"
let t_inner = Instr.timer "auglag.inner_solve"

(* Uniform view of the two inner solvers: final point, iterations,
   evaluations, and how the run ended. *)
let run_inner options problem ~x0 =
  Instr.time t_inner @@ fun () ->
  match options.inner_solver with
  | `Lbfgs ->
      let r = Lbfgs.minimize ~options:options.inner problem ~x0 in
      ( r.Lbfgs.x,
        r.Lbfgs.iterations,
        r.Lbfgs.evaluations,
        match r.Lbfgs.outcome with
        | Lbfgs.Converged | Lbfgs.Stagnated | Lbfgs.Line_search_failure -> `Ok
        | Lbfgs.Iteration_limit -> `Limit
        | Lbfgs.Interrupted -> `Interrupted )
  | `Newton newton_options ->
      let r = Newton.minimize ~options:newton_options problem ~x0 in
      ( r.Newton.x,
        r.Newton.iterations,
        r.Newton.evaluations,
        match r.Newton.outcome with
        | Newton.Converged | Newton.Step_failure -> `Ok
        | Newton.Iteration_limit -> `Limit
        | Newton.Interrupted -> `Interrupted )

type termination = Converged | Deadline | Breakdown | Stalled | Penalty_ceiling

let pp_termination ppf t =
  Format.pp_print_string ppf
    (match t with
    | Converged -> "converged"
    | Deadline -> "deadline"
    | Breakdown -> "breakdown"
    | Stalled -> "stalled"
    | Penalty_ceiling -> "penalty ceiling")

let termination_name = function
  | Converged -> "converged"
  | Deadline -> "deadline"
  | Breakdown -> "breakdown"
  | Stalled -> "stalled"
  | Penalty_ceiling -> "penalty-ceiling"

type report = {
  x : float array;
  f : float;
  multipliers : float array;
  penalty : float;
  max_violation : float;
  outer_iterations : int;
  inner_iterations : int;
  evaluations : int;
  termination : termination;
  breakdown : Problem.breakdown option;
  converged : bool;
}

(* Augmented Lagrangian value and gradient at x for the given multipliers
   and penalty. *)
let augmented (problem : Problem.constrained) lambda rho x =
  let f, g = problem.Problem.base.Problem.objective x in
  let g = Array.copy g in
  let total = ref f in
  Array.iteri
    (fun i (c : Problem.constr) ->
      let v, gv = c.Problem.eval x in
      match c.Problem.kind with
      | Problem.Eq ->
          total := !total +. (lambda.(i) *. v) +. (0.5 *. rho *. v *. v);
          Numerics.axpy (lambda.(i) +. (rho *. v)) gv g
      | Problem.Le ->
          let shifted = v +. (lambda.(i) /. rho) in
          if shifted > 0. then begin
            total :=
              !total
              +. (0.5 *. rho
                  *. ((shifted *. shifted) -. (lambda.(i) /. rho *. (lambda.(i) /. rho))));
            Numerics.axpy (rho *. shifted) gv g
          end
          else total := !total -. (0.5 *. lambda.(i) *. lambda.(i) /. rho))
    problem.Problem.constraints;
  (!total, g)

(* Objective value and violation for abnormal-exit reports, measured on
   the caller's unguarded problem so the budget cannot interfere with
   producing the diagnosis.  Any exception (e.g. a fault that is still
   live at this evaluation index) degrades to NaN instead of escaping. *)
let safe_f (problem : Problem.constrained) x =
  try fst (problem.Problem.base.Problem.objective x) with _ -> nan

let safe_violation problem x =
  try Problem.max_violation problem x with _ -> nan

let solve ?(options = default_options) (problem : Problem.constrained) ~x0 =
  let m = Array.length problem.Problem.constraints in
  let budget =
    match (options.deadline, options.max_evaluations) with
    | None, None -> None
    | deadline, max_evals -> Some (Guard.budget ?deadline ?max_evals ())
  in
  (* [problem] stays the caller's raw problem (used only for final
     reporting); [g] is the guarded/budgeted view every solver-side
     evaluation goes through. *)
  let g =
    if options.guard || budget <> None then
      Problem.guarded ?budget ~check:options.guard problem
    else problem
  in
  let base = g.Problem.base in
  if m = 0 then begin
    match run_inner options base ~x0 with
    | exception Problem.Numerical_breakdown b ->
        Instr.incr c_breakdowns;
        {
          x = Array.copy b.Problem.b_x;
          f = safe_f problem b.Problem.b_x;
          multipliers = [||];
          penalty = 0.;
          max_violation = 0.;
          outer_iterations = 0;
          inner_iterations = 0;
          evaluations = 0;
          termination = Breakdown;
          breakdown = Some b;
          converged = false;
        }
    | x, iterations, evaluations, status ->
        Instr.add c_inner iterations;
        Instr.add c_evals evaluations;
        let termination =
          match status with
          | `Ok -> Converged
          | `Limit -> Stalled
          | `Interrupted ->
              Instr.incr c_budget_stops;
              Deadline
        in
        {
          x;
          f = safe_f problem x;
          multipliers = [||];
          penalty = 0.;
          max_violation = 0.;
          outer_iterations = 0;
          inner_iterations = iterations;
          evaluations;
          termination;
          breakdown = None;
          converged = (termination = Converged);
        }
  end
  else begin
    let lambda = Array.make m 0. in
    let rho = ref options.initial_penalty in
    let x = Array.copy x0 in
    Problem.project base.Problem.bnds x;
    let inner_iterations = ref 0 in
    let evaluations = ref 0 in
    let prev_violation = ref infinity in
    let ceiling_stall = ref 0 in
    let result = ref None in
    let outer = ref 0 in
    (* Checkpoint of the most feasible iterate seen at outer-iteration
       granularity; abnormal exits return it rather than nothing. *)
    let best = ref None in
    let checkpoint xv violation =
      match !best with
      | Some (_, v) when v <= violation -> ()
      | _ -> best := Some (Array.copy xv, violation)
    in
    let abnormal termination breakdown =
      let bx, bviol =
        match !best with Some (xb, v) -> (xb, v) | None -> (Array.copy x, nan)
      in
      let bviol = if Guard.is_finite bviol then bviol else safe_violation problem bx in
      Some
        {
          x = bx;
          f = safe_f problem bx;
          multipliers = Array.copy lambda;
          penalty = !rho;
          max_violation = bviol;
          outer_iterations = !outer;
          inner_iterations = !inner_iterations;
          evaluations = !evaluations;
          termination;
          breakdown;
          converged = false;
        }
    in
    (try
       while !result = None && !outer < options.outer_iterations do
         incr outer;
         Instr.incr c_outer;
         let sub =
           Problem.make ~bounds:base.Problem.bnds ~objective:(fun x ->
               augmented g lambda !rho x)
         in
         let xr, iterations, evals, status = run_inner options sub ~x0:x in
         Instr.add c_inner iterations;
         Instr.add c_evals evals;
         inner_iterations := !inner_iterations + iterations;
         evaluations := !evaluations + evals;
         Array.blit xr 0 x 0 base.Problem.dim;
         if status = `Interrupted then begin
           (* The budget died inside the inner solve: the multiplier/penalty
              state is stale, so stop here with the best checkpoint. *)
           Instr.incr c_budget_stops;
           checkpoint x (safe_violation problem x);
           result := abnormal Deadline None
         end
         else begin
           (* Multiplier updates and violation measurement. *)
           let violation = ref 0. in
           Array.iteri
             (fun i (c : Problem.constr) ->
               let v, _ = c.Problem.eval x in
               match c.Problem.kind with
               | Problem.Eq ->
                   violation := max !violation (abs_float v);
                   lambda.(i) <- lambda.(i) +. (!rho *. v)
               | Problem.Le ->
                   violation := max !violation (max 0. v);
                   lambda.(i) <- max 0. (lambda.(i) +. (!rho *. v)))
             g.Problem.constraints;
           checkpoint x !violation;
           if !violation <= options.constraint_tolerance then begin
             let f, _ = base.Problem.objective x in
             result :=
               Some
                 {
                   x = Array.copy x;
                   f;
                   multipliers = Array.copy lambda;
                   penalty = !rho;
                   max_violation = !violation;
                   outer_iterations = !outer;
                   inner_iterations = !inner_iterations;
                   evaluations = !evaluations;
                   termination = Converged;
                   breakdown = None;
                   converged = true;
                 }
           end
           else begin
             let improved = !violation <= options.violation_decrease *. !prev_violation in
             if not improved then
               rho := min options.max_penalty (!rho *. options.penalty_growth);
             (* With the penalty pinned at its ceiling and the violation no
                longer shrinking, further outer iterations just replay the
                same subproblem: diagnose Penalty_ceiling instead of
                burning the iteration allowance. *)
             if !rho >= options.max_penalty && not improved then begin
               incr ceiling_stall;
               if !ceiling_stall >= 3 then result := abnormal Penalty_ceiling None
             end
             else ceiling_stall := 0;
             prev_violation := !violation
           end
         end
       done
     with
    | Problem.Numerical_breakdown b ->
        Instr.incr c_breakdowns;
        result := abnormal Breakdown (Some b)
    | Guard.Out_of_budget _ ->
        Instr.incr c_budget_stops;
        result := abnormal Deadline None);
    match !result with
    | Some r -> r
    | None -> (
        (* Outer-iteration allowance exhausted without convergence. *)
        let at_ceiling = !rho >= options.max_penalty in
        match abnormal (if at_ceiling then Penalty_ceiling else Stalled) None with
        | Some r -> r
        | None -> assert false)
  end
