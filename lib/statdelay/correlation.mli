(** Stochastic maximum of {e correlated} normals (Clark 1961, full form).

    The paper assumes statistical independence of the max operands (eq. 6)
    and lists "dealing with correlations between stochastic variables in
    the circuit, as a result of reconverging paths" as future work
    (Section 7).  This module implements that future work at the operator
    level: Clark's original formulas handle a correlation coefficient
    {m \rho} between the operands, with

    {math \theta = \sqrt{\sigma_A^2 + \sigma_B^2 - 2\rho\sigma_A\sigma_B}}

    replacing the independent {m \theta}, and also give the correlation of
    the max with any third variable:

    {math r(\max(A,B), X) = \frac{\sigma_A r(A,X)\Phi(\alpha)
                                  + \sigma_B r(B,X)\Phi(-\alpha)}{\sigma_C}}

    which is what lets {!Sta.Cssta} propagate correlations through a whole
    circuit. *)

val theta : Normal.t -> Normal.t -> rho:float -> float
(** The correlated spread {m \theta}; [0.] when the operands are perfectly
    correlated with equal variance. *)

val max2 : Normal.t -> Normal.t -> rho:float -> Normal.t
(** Moment-matched normal for [max(A, B)] with correlation [rho] between
    [A] and [B].  [rho] is clipped to {m [-1, 1]}; [rho = 0.] reproduces
    {!Clark.max2} exactly.  Degenerate spreads fall back to the
    deterministic max of the means (keeping the dominant operand's
    variance). *)

val cross_correlation :
  Normal.t -> Normal.t -> rho:float -> r_a:float -> r_b:float -> float
(** [cross_correlation a b ~rho ~r_a ~r_b] is the correlation of
    [max(A, B)] with a third variable [X], given [r_a = r(A, X)] and
    [r_b = r(B, X)].  The result is clipped to {m [-1, 1]}.  Returns [0.]
    when the max is (numerically) deterministic. *)

val blend_weights : Normal.t -> Normal.t -> rho:float -> float * float * Normal.t
(** [blend_weights a b ~rho] is [(wa, wb, c)] with [c = max2 a b ~rho] and
    [r(C, X) = clip (wa * r(A, X) + wb * r(B, X))] for any third variable
    [X] — the bulk form of {!cross_correlation} used when correlations to
    many variables are propagated at once. *)

val mc_max2 : Util.Rng.t -> Normal.t -> Normal.t -> rho:float -> n:int -> float array
(** Monte Carlo reference: [n] samples of [max(A, B)] where [(A, B)] is
    bivariate normal with correlation [rho] (used by the tests). *)
