open Util

type partials = {
  dmu_dmu_a : float;
  dmu_dmu_b : float;
  dmu_dvar_a : float;
  dmu_dvar_b : float;
  dvar_dmu_a : float;
  dvar_dmu_b : float;
  dvar_dvar_a : float;
  dvar_dvar_b : float;
}

let degenerate_theta = 1e-9

(* Deterministic limit: theta ~ 0 means both operands are (nearly) point
   masses, so max(A, B) is the larger operand.  The one-sided limits of the
   partials are the indicator of the larger operand; an exact tie takes the
   symmetric limit Phi(0) = 1/2. *)
let max2_degenerate (a : Normal.t) (b : Normal.t) =
  let wa, wb =
    if a.Normal.mu > b.Normal.mu then (1., 0.)
    else if a.Normal.mu < b.Normal.mu then (0., 1.)
    else (0.5, 0.5)
  in
  let mu = (wa *. a.Normal.mu) +. (wb *. b.Normal.mu) in
  let var = (wa *. a.Normal.var) +. (wb *. b.Normal.var) in
  ( Normal.of_var ~mu ~var,
    {
      dmu_dmu_a = wa;
      dmu_dmu_b = wb;
      dmu_dvar_a = 0.;
      dmu_dvar_b = 0.;
      dvar_dmu_a = 0.;
      dvar_dmu_b = 0.;
      dvar_dvar_a = wa;
      dvar_dvar_b = wb;
    } )

let moments (a : Normal.t) (b : Normal.t) =
  let mu_a = a.Normal.mu and var_a = a.Normal.var in
  let mu_b = b.Normal.mu and var_b = b.Normal.var in
  let theta = sqrt (var_a +. var_b) in
  let alpha = (mu_a -. mu_b) /. theta in
  let pdf = Special.normal_pdf alpha in
  let cdf_a = Special.normal_cdf alpha in
  let cdf_b = Special.normal_cdf (-.alpha) in
  let mu_c = (mu_a *. cdf_a) +. (mu_b *. cdf_b) +. (theta *. pdf) in
  let e2 =
    ((var_a +. (mu_a *. mu_a)) *. cdf_a)
    +. ((var_b +. (mu_b *. mu_b)) *. cdf_b)
    +. ((mu_a +. mu_b) *. theta *. pdf)
  in
  (theta, alpha, pdf, cdf_a, cdf_b, mu_c, e2)

let c_max2 = Util.Instr.counter "clark.max2"

let max2 a b =
  Util.Instr.incr c_max2;
  if a.Normal.var +. b.Normal.var < degenerate_theta *. degenerate_theta then
    fst (max2_degenerate a b)
  else
    let _, _, _, _, _, mu_c, e2 = moments a b in
    Normal.of_var ~mu:mu_c ~var:(max 0. (e2 -. (mu_c *. mu_c)))

let expectation_sq a b =
  if a.Normal.var +. b.Normal.var < degenerate_theta *. degenerate_theta then
    let c, _ = max2_degenerate a b in
    c.Normal.var +. (c.Normal.mu *. c.Normal.mu)
  else
    let _, _, _, _, _, _, e2 = moments a b in
    e2

let max2_full a b =
  Util.Instr.incr c_max2;
  if a.Normal.var +. b.Normal.var < degenerate_theta *. degenerate_theta then
    max2_degenerate a b
  else begin
    let mu_a = a.Normal.mu and var_a = a.Normal.var in
    let mu_b = b.Normal.mu and var_b = b.Normal.var in
    let theta, alpha, pdf, cdf_a, cdf_b, mu_c, e2 = moments a b in
    let var_c = max 0. (e2 -. (mu_c *. mu_c)) in
    (* d mu_C: the phi-terms from differentiating Phi(alpha) and
       theta*phi(alpha) cancel, leaving the classic Clark results. *)
    let dmu_dmu_a = cdf_a in
    let dmu_dmu_b = cdf_b in
    let dmu_dvar = pdf /. (2. *. theta) in
    (* d E[C^2] (see DESIGN.md Section 5 for the simplification). *)
    let de2_dmu_a = (2. *. mu_a *. cdf_a) +. (2. *. var_a *. pdf /. theta) in
    let de2_dmu_b = (2. *. mu_b *. cdf_b) +. (2. *. var_b *. pdf /. theta) in
    let common = (mu_a +. mu_b) /. (2. *. theta) in
    let skew = alpha *. (var_a -. var_b) /. (2. *. theta *. theta) in
    (* Swapping the operands sends alpha to -alpha, and
       -alpha'*(var_b - var_a) = -alpha*(var_a - var_b), so both sides share
       the same (common - skew) second factor. *)
    let de2_dvar_a = cdf_a +. (pdf *. (common -. skew)) in
    let de2_dvar_b = cdf_b +. (pdf *. (common -. skew)) in
    (* var = E2 - mu^2 chain rule. *)
    let dvar_dmu_a = de2_dmu_a -. (2. *. mu_c *. dmu_dmu_a) in
    let dvar_dmu_b = de2_dmu_b -. (2. *. mu_c *. dmu_dmu_b) in
    let dvar_dvar_a = de2_dvar_a -. (2. *. mu_c *. dmu_dvar) in
    let dvar_dvar_b = de2_dvar_b -. (2. *. mu_c *. dmu_dvar) in
    ( Normal.of_var ~mu:mu_c ~var:var_c,
      {
        dmu_dmu_a;
        dmu_dmu_b;
        dmu_dvar_a = dmu_dvar;
        dmu_dvar_b = dmu_dvar;
        dvar_dmu_a;
        dvar_dmu_b;
        dvar_dvar_a;
        dvar_dvar_b;
      } )
  end

let max_list = function
  | [] -> invalid_arg "Clark.max_list: empty list"
  | x :: rest -> List.fold_left max2 x rest

let max_array a =
  if Array.length a = 0 then invalid_arg "Clark.max_array: empty array";
  let acc = ref a.(0) in
  for i = 1 to Array.length a - 1 do
    acc := max2 !acc a.(i)
  done;
  !acc

let negate (x : Normal.t) = Normal.scale x (-1.)

let min2 a b = negate (max2 (negate a) (negate b))

let min_list = function
  | [] -> invalid_arg "Clark.min_list: empty list"
  | x :: rest -> List.fold_left min2 x rest
