open Util

type partials = {
  dmu_dmu_a : float;
  dmu_dmu_b : float;
  dmu_dvar_a : float;
  dmu_dvar_b : float;
  dvar_dmu_a : float;
  dvar_dmu_b : float;
  dvar_dvar_a : float;
  dvar_dvar_b : float;
}

let degenerate_theta = 1e-9

(* Deterministic limit: theta ~ 0 means both operands are (nearly) point
   masses, so max(A, B) is the larger operand.  The one-sided limits of the
   partials are the indicator of the larger operand; an exact tie takes the
   symmetric limit Phi(0) = 1/2. *)
let max2_degenerate (a : Normal.t) (b : Normal.t) =
  let wa, wb =
    if a.Normal.mu > b.Normal.mu then (1., 0.)
    else if a.Normal.mu < b.Normal.mu then (0., 1.)
    else (0.5, 0.5)
  in
  let mu = (wa *. a.Normal.mu) +. (wb *. b.Normal.mu) in
  let var = (wa *. a.Normal.var) +. (wb *. b.Normal.var) in
  ( Normal.of_var ~mu ~var,
    {
      dmu_dmu_a = wa;
      dmu_dmu_b = wb;
      dmu_dvar_a = 0.;
      dmu_dvar_b = 0.;
      dvar_dmu_a = 0.;
      dvar_dmu_b = 0.;
      dvar_dvar_a = wa;
      dvar_dvar_b = wb;
    } )

let moments (a : Normal.t) (b : Normal.t) =
  let mu_a = a.Normal.mu and var_a = a.Normal.var in
  let mu_b = b.Normal.mu and var_b = b.Normal.var in
  let theta = sqrt (var_a +. var_b) in
  let alpha = (mu_a -. mu_b) /. theta in
  let pdf = Special.normal_pdf alpha in
  (* Both normal tails from ONE Cody-kernel evaluation.
     [Special.normal_cdf alpha] is [0.5 *. erfc y] with
     [y = -.alpha /. sqrt2], and [Special.erfc]'s two sign branches are
     [erfc_pos y] and [2. -. erfc_pos (-.y)] — so the single
     positive-branch value [e = erfc_pos |y|] yields both [Phi alpha]
     and [Phi (-.alpha)].  The selects replay exactly the branch each
     [normal_cdf] call would have taken, so [cdf_a] and [cdf_b] are
     bit-identical to two independent calls while evaluating one
     rational approximation instead of two. *)
  let y = -.alpha /. Special.sqrt2 in
  let e = Special.erfc_pos (if y >= 0. then y else -.y) in
  let half_e = 0.5 *. e in
  let half_c = 0.5 *. (2. -. e) in
  let cdf_a = if y >= 0. then half_e else half_c in
  let cdf_b = if y >= 0. then half_c else half_e in
  let mu_c = (mu_a *. cdf_a) +. (mu_b *. cdf_b) +. (theta *. pdf) in
  let e2 =
    ((var_a +. (mu_a *. mu_a)) *. cdf_a)
    +. ((var_b +. (mu_b *. mu_b)) *. cdf_b)
    +. ((mu_a +. mu_b) *. theta *. pdf)
  in
  (theta, alpha, pdf, cdf_a, cdf_b, mu_c, e2)

let c_max2 = Util.Instr.counter "clark.max2"

let max2 a b =
  Util.Instr.incr c_max2;
  if a.Normal.var +. b.Normal.var < degenerate_theta *. degenerate_theta then
    fst (max2_degenerate a b)
  else
    let _, _, _, _, _, mu_c, e2 = moments a b in
    Normal.of_var ~mu:mu_c ~var:(max 0. (e2 -. (mu_c *. mu_c)))

let expectation_sq a b =
  if a.Normal.var +. b.Normal.var < degenerate_theta *. degenerate_theta then
    let c, _ = max2_degenerate a b in
    c.Normal.var +. (c.Normal.mu *. c.Normal.mu)
  else
    let _, _, _, _, _, _, e2 = moments a b in
    e2

let max2_full a b =
  Util.Instr.incr c_max2;
  if a.Normal.var +. b.Normal.var < degenerate_theta *. degenerate_theta then
    max2_degenerate a b
  else begin
    let mu_a = a.Normal.mu and var_a = a.Normal.var in
    let mu_b = b.Normal.mu and var_b = b.Normal.var in
    let theta, alpha, pdf, cdf_a, cdf_b, mu_c, e2 = moments a b in
    let var_c = max 0. (e2 -. (mu_c *. mu_c)) in
    (* d mu_C: the phi-terms from differentiating Phi(alpha) and
       theta*phi(alpha) cancel, leaving the classic Clark results. *)
    let dmu_dmu_a = cdf_a in
    let dmu_dmu_b = cdf_b in
    let dmu_dvar = pdf /. (2. *. theta) in
    (* d E[C^2] (see DESIGN.md Section 5 for the simplification). *)
    let de2_dmu_a = (2. *. mu_a *. cdf_a) +. (2. *. var_a *. pdf /. theta) in
    let de2_dmu_b = (2. *. mu_b *. cdf_b) +. (2. *. var_b *. pdf /. theta) in
    let common = (mu_a +. mu_b) /. (2. *. theta) in
    let skew = alpha *. (var_a -. var_b) /. (2. *. theta *. theta) in
    (* Swapping the operands sends alpha to -alpha, and
       -alpha'*(var_b - var_a) = -alpha*(var_a - var_b), so both sides share
       the same (common - skew) second factor. *)
    let de2_dvar_a = cdf_a +. (pdf *. (common -. skew)) in
    let de2_dvar_b = cdf_b +. (pdf *. (common -. skew)) in
    (* var = E2 - mu^2 chain rule. *)
    let dvar_dmu_a = de2_dmu_a -. (2. *. mu_c *. dmu_dmu_a) in
    let dvar_dmu_b = de2_dmu_b -. (2. *. mu_c *. dmu_dmu_b) in
    let dvar_dvar_a = de2_dvar_a -. (2. *. mu_c *. dmu_dvar) in
    let dvar_dvar_b = de2_dvar_b -. (2. *. mu_c *. dmu_dvar) in
    ( Normal.of_var ~mu:mu_c ~var:var_c,
      {
        dmu_dmu_a;
        dmu_dmu_b;
        dmu_dvar_a = dmu_dvar;
        dmu_dvar_b = dmu_dvar;
        dvar_dmu_a;
        dvar_dmu_b;
        dvar_dvar_a;
        dvar_dvar_b;
      } )
  end

(* ---- flat in-place kernels --------------------------------------------------

   The same operators as [max2] / [max2_full] / the adjoint chain of a
   recorded fold, operating on caller-owned unboxed [Bigarray.Array1]
   planes instead of returning [Normal.t] records — the allocation-free
   form the structure-of-arrays timing arena (Sta.Arena) sweeps are
   built from.  A moment plane interleaves (mu, var) pairs: slot [i]
   lives at indices [2i] (mean) and [2i + 1] (variance), so one slot is
   16 contiguous bytes and a random gather of a fanin arrival touches a
   single cache line instead of two parallel planes.

   Bit-identity contract: every kernel performs the {e same}
   floating-point operations in the {e same} order as its record-based
   counterpart above, so values and gradients computed through the
   planes are Int64-bit-identical to the boxed path (test/test_arena.ml
   asserts this differentially).  Two deliberate rewrites preserve bits:

   - [Stdlib.max 0. v] is unfolded to [if 0. >= v then 0. else v] — the
     literal definition of [max] specialised at [x = 0.], identical for
     every [v] including NaN and [-0.] — because the polymorphic [max]
     call would box its float arguments;
   - [Normal.of_var]'s validation is a no-op for the non-negative (or
     NaN) variances produced here, so the kernels store the variance
     directly.

   All kernels are [@inline]: in classic (non-flambda) mode this is what
   lets ocamlopt keep the scalar float arguments unboxed through the
   call (verified: the steady-state arena sweep allocates zero words). *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Monomorphic accessors: applied through these [@inline] wrappers the
   bigarray primitives specialise to float64/c_layout and compile to a
   single unboxed load/store, while staying readable at call sites.
   (A plain [let get = Bigarray.Array1.unsafe_get] alias would eta-expand
   the external into a closure and box every float through it.) *)
let[@inline] vget (v : vec) i = Bigarray.Array1.unsafe_get v i
let[@inline] vset (v : vec) i (x : float) = Bigarray.Array1.unsafe_set v i x

let[@inline] add_into ~mu_a ~var_a ~mu_b ~var_b (out : vec) i =
  Bigarray.Array1.unsafe_set out (2 * i) (mu_a +. mu_b);
  Bigarray.Array1.unsafe_set out ((2 * i) + 1) (var_a +. var_b)

(* [max2] on scalars, result written to interleaved slot [i]. *)
let[@inline] max2_into ~mu_a ~var_a ~mu_b ~var_b (out : vec) i =
  Util.Instr.incr c_max2;
  if var_a +. var_b < degenerate_theta *. degenerate_theta then begin
    let wa, wb =
      if mu_a > mu_b then (1., 0.)
      else if mu_a < mu_b then (0., 1.)
      else (0.5, 0.5)
    in
    Bigarray.Array1.unsafe_set out (2 * i) ((wa *. mu_a) +. (wb *. mu_b));
    Bigarray.Array1.unsafe_set out ((2 * i) + 1) ((wa *. var_a) +. (wb *. var_b))
  end
  else begin
    let theta = sqrt (var_a +. var_b) in
    let alpha = (mu_a -. mu_b) /. theta in
    let pdf = Util.Special.normal_pdf alpha in
    (* Single-kernel tail pair, see [moments]. *)
    let y = -.alpha /. Util.Special.sqrt2 in
    let e = Util.Special.erfc_pos (if y >= 0. then y else -.y) in
    let half_e = 0.5 *. e in
    let half_c = 0.5 *. (2. -. e) in
    let cdf_a = if y >= 0. then half_e else half_c in
    let cdf_b = if y >= 0. then half_c else half_e in
    let mu_c = (mu_a *. cdf_a) +. (mu_b *. cdf_b) +. (theta *. pdf) in
    let e2 =
      ((var_a +. (mu_a *. mu_a)) *. cdf_a)
      +. ((var_b +. (mu_b *. mu_b)) *. cdf_b)
      +. ((mu_a +. mu_b) *. theta *. pdf)
    in
    let v = e2 -. (mu_c *. mu_c) in
    Bigarray.Array1.unsafe_set out (2 * i) mu_c;
    Bigarray.Array1.unsafe_set out ((2 * i) + 1) (if 0. >= v then 0. else v)
  end

(* Eight [partials] fields per fold step, stored flat at slots
   [8*pj .. 8*pj+7] in record-field order. *)
let partials_width = 8

(* [max2_full]'s partials (the value is discarded: the forward sweep has
   already recorded the prefix), written to the partials plane [pp] at
   step slot [pj].  Same arithmetic as [max2_full], degenerate branch
   included. *)
let[@inline] partials_into ~mu_a ~var_a ~mu_b ~var_b (pp : vec) pj =
  Util.Instr.incr c_max2;
  let o = partials_width * pj in
  if var_a +. var_b < degenerate_theta *. degenerate_theta then begin
    let wa, wb =
      if mu_a > mu_b then (1., 0.)
      else if mu_a < mu_b then (0., 1.)
      else (0.5, 0.5)
    in
    vset pp o wa;
    vset pp (o + 1) wb;
    vset pp (o + 2) 0.;
    vset pp (o + 3) 0.;
    vset pp (o + 4) 0.;
    vset pp (o + 5) 0.;
    vset pp (o + 6) wa;
    vset pp (o + 7) wb
  end
  else begin
    let theta = sqrt (var_a +. var_b) in
    let alpha = (mu_a -. mu_b) /. theta in
    let pdf = Util.Special.normal_pdf alpha in
    (* Single-kernel tail pair, see [moments]. *)
    let y = -.alpha /. Util.Special.sqrt2 in
    let e = Util.Special.erfc_pos (if y >= 0. then y else -.y) in
    let half_e = 0.5 *. e in
    let half_c = 0.5 *. (2. -. e) in
    let cdf_a = if y >= 0. then half_e else half_c in
    let cdf_b = if y >= 0. then half_c else half_e in
    let mu_c = (mu_a *. cdf_a) +. (mu_b *. cdf_b) +. (theta *. pdf) in
    let de2_dmu_a = (2. *. mu_a *. cdf_a) +. (2. *. var_a *. pdf /. theta) in
    let de2_dmu_b = (2. *. mu_b *. cdf_b) +. (2. *. var_b *. pdf /. theta) in
    let dmu_dvar = pdf /. (2. *. theta) in
    let common = (mu_a +. mu_b) /. (2. *. theta) in
    let skew = alpha *. (var_a -. var_b) /. (2. *. theta *. theta) in
    let de2_dvar_a = cdf_a +. (pdf *. (common -. skew)) in
    let de2_dvar_b = cdf_b +. (pdf *. (common -. skew)) in
    vset pp o cdf_a;
    vset pp (o + 1) cdf_b;
    vset pp (o + 2) dmu_dvar;
    vset pp (o + 3) dmu_dvar;
    vset pp (o + 4) (de2_dmu_a -. (2. *. mu_c *. cdf_a));
    vset pp (o + 5) (de2_dmu_b -. (2. *. mu_c *. cdf_b));
    vset pp (o + 6) (de2_dvar_a -. (2. *. mu_c *. dmu_dvar));
    vset pp (o + 7) (de2_dvar_b -. (2. *. mu_c *. dmu_dvar))
  end

(* One adjoint step of a recorded fold against stored partials: reads the
   prefix adjoint at interleaved slot [acc] of the fold-adjoint plane,
   writes operand b's adjoint to slot [out] and the propagated prefix
   adjoint back to [acc] — the multiply chain of [Ssta]'s
   [backprop_fold], verbatim. *)
let[@inline] backprop_apply (pp : vec) pj (fadj : vec) ~acc ~out =
  let o = partials_width * pj in
  let dmu_dmu_a = vget pp o
  and dmu_dmu_b = vget pp (o + 1)
  and dmu_dvar_a = vget pp (o + 2)
  and dmu_dvar_b = vget pp (o + 3)
  and dvar_dmu_a = vget pp (o + 4)
  and dvar_dmu_b = vget pp (o + 5)
  and dvar_dvar_a = vget pp (o + 6)
  and dvar_dvar_b = vget pp (o + 7) in
  let am = vget fadj (2 * acc) and av = vget fadj ((2 * acc) + 1) in
  vset fadj (2 * out) ((am *. dmu_dmu_b) +. (av *. dvar_dmu_b));
  vset fadj ((2 * out) + 1) ((am *. dmu_dvar_b) +. (av *. dvar_dvar_b));
  vset fadj (2 * acc) ((am *. dmu_dmu_a) +. (av *. dvar_dmu_a));
  vset fadj ((2 * acc) + 1) ((am *. dmu_dvar_a) +. (av *. dvar_dvar_a))

let max_list = function
  | [] -> invalid_arg "Clark.max_list: empty list"
  | x :: rest -> List.fold_left max2 x rest

let max_array a =
  if Array.length a = 0 then invalid_arg "Clark.max_array: empty array";
  let acc = ref a.(0) in
  for i = 1 to Array.length a - 1 do
    acc := max2 !acc a.(i)
  done;
  !acc

let negate (x : Normal.t) = Normal.scale x (-1.)

let min2 a b = negate (max2 (negate a) (negate b))

let min_list = function
  | [] -> invalid_arg "Clark.min_list: empty list"
  | x :: rest -> List.fold_left min2 x rest
