(** Analytical stochastic maximum of two independent normals.

    This is the paper's central mathematical device (Section 3, equations
    10, 12 and 13; derivation in Appendix A): for independent
    {m A \sim N(\mu_A, \sigma_A^2)} and {m B \sim N(\mu_B, \sigma_B^2)},
    the first two moments of {m C = \max(A, B)} are, with
    {m \theta = \sqrt{\sigma_A^2 + \sigma_B^2}} and
    {m \alpha = (\mu_A - \mu_B)/\theta}:

    {math \mu_C = \mu_A\Phi(\alpha) + \mu_B\Phi(-\alpha) + \theta\varphi(\alpha)}
    {math E[C^2] = (\sigma_A^2{+}\mu_A^2)\Phi(\alpha)
                   + (\sigma_B^2{+}\mu_B^2)\Phi(-\alpha)
                   + (\mu_A{+}\mu_B)\,\theta\varphi(\alpha)}
    {math \sigma_C^2 = E[C^2] - \mu_C^2}

    [C] is then re-approximated as normal with these moments (the same
    moment-matching approximation as the paper; accuracy is quantified by
    the Monte Carlo experiments in {!Mc} and the F-MC bench).

    Because the moments are closed-form in
    {m (\mu_A, \sigma_A^2, \mu_B, \sigma_B^2)}, so are their first
    derivatives — this is exactly what enables gradient-based gate sizing
    (Section 4).  {!max2_full} returns all eight partials. *)

type partials = {
  dmu_dmu_a : float;
  dmu_dmu_b : float;
  dmu_dvar_a : float;
  dmu_dvar_b : float;
  dvar_dmu_a : float;
  dvar_dmu_b : float;
  dvar_dvar_a : float;
  dvar_dvar_b : float;
}
(** First derivatives of the result's mean [mu_C] and variance
    [sigma_C^2] with respect to the operands' means and variances. *)

val degenerate_theta : float
(** Threshold on {m \theta} below which the max is treated as the
    deterministic maximum (one-sided limit of the formulas). *)

val max2 : Normal.t -> Normal.t -> Normal.t
(** Moment-matched normal approximation of [max(A, B)]. *)

val max2_full : Normal.t -> Normal.t -> Normal.t * partials
(** {!max2} together with the analytic partials. *)

val expectation_sq : Normal.t -> Normal.t -> float
(** [E[max(A,B)^2]] (paper eq. 12), exposed for tests. *)

(** {1 Flat in-place kernels}

    The same operators on caller-owned unboxed {!vec} planes — no
    [Normal.t] records, no allocation, no GC pressure (Bigarray data
    lives outside the OCaml heap, so million-gate planes neither move
    nor get scanned).  These are what the structure-of-arrays timing
    arena ({!Sta.Arena}) sweeps run on; each performs bit-identical
    floating-point operations to its boxed counterpart above
    (differentially enforced by [test/test_arena.ml]).  All are
    [[@inline]] so the scalar float arguments stay unboxed in
    classic-mode native code. *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** An unboxed double-precision plane.  Moment planes interleave
    (mu, var) pairs — slot [i] is indices [2i] (mean) and [2i + 1]
    (variance) — so one slot occupies 16 contiguous bytes and a random
    gather of a fanin arrival costs one cache line, not one per
    plane. *)

val vget : vec -> int -> float
val vset : vec -> int -> float -> unit
(** Monomorphic unchecked accessors.  Through these [[@inline]] wrappers
    the bigarray primitives specialise to float64/c_layout and compile
    to single unboxed loads/stores — the pattern every plane sweep in
    {!Sta.Arena} uses.  (A plain alias of [Bigarray.Array1.unsafe_get]
    would eta-expand the external into a closure and box the floats.) *)

val add_into :
  mu_a:float -> var_a:float -> mu_b:float -> var_b:float -> vec -> int -> unit
(** [add_into ~mu_a ~var_a ~mu_b ~var_b out i] — independent sum
    ({!Normal.add}) written to interleaved slot [i] of [out]. *)

val max2_into :
  mu_a:float -> var_a:float -> mu_b:float -> var_b:float -> vec -> int -> unit
(** {!max2} on scalars, result moments written to interleaved slot
    [i]. *)

val partials_width : int
(** Slots per fold step in a partials plane: the eight {!partials}
    fields, stored flat in record-field order. *)

val partials_into :
  mu_a:float -> var_a:float -> mu_b:float -> var_b:float -> vec -> int -> unit
(** [partials_into ~mu_a ~var_a ~mu_b ~var_b pp pj] writes
    {!max2_full}'s eight partials to indices
    [partials_width*pj .. partials_width*pj+7] of [pp]. *)

val backprop_apply : vec -> int -> vec -> acc:int -> out:int -> unit
(** [backprop_apply pp pj fadj ~acc ~out] — one adjoint step of a
    recorded left fold: reads the prefix adjoint at interleaved slot
    [acc] of [fadj], writes operand b's adjoint to slot [out] and the
    propagated prefix adjoint back to [acc], using the partials stored
    at step [pj] of [pp].  The exact multiply chain of the boxed
    reverse sweep. *)

val max_list : Normal.t list -> Normal.t
(** Repeated two-operand max, left to right (the paper folds multi-input
    maxima the same way, eq. 18b).  Raises [Invalid_argument] on the empty
    list. *)

val max_array : Normal.t array -> Normal.t

(** {1 Minimum}

    The dual operator, {m \min(A,B) = -\max(-A,-B)} — not used by the
    paper's setup-time sizing but needed the moment one asks hold-time
    (earliest-arrival) questions of the same statistical model. *)

val min2 : Normal.t -> Normal.t -> Normal.t
val min_list : Normal.t list -> Normal.t
