(** Normally distributed schedule times and delays (paper Section 3).

    Every delay-inducing quantity — the arrival (schedule) time [T] of a
    signal and the propagation delay [t] of a gate — is modelled as a
    normal random variable.  Internally we carry the {e variance} rather
    than the standard deviation, mirroring the paper's implementation note
    that only squared standard deviations appear in the sizing
    formulation. *)

type t = { mu : float; var : float }
(** Mean and variance.  [var >= 0.] is an invariant maintained by the
    constructors. *)

val make : mu:float -> sigma:float -> t
(** [make ~mu ~sigma] with [sigma >= 0.]; raises [Invalid_argument] on a
    negative [sigma]. *)

val of_var : mu:float -> var:float -> t
(** [of_var ~mu ~var] with [var >= 0.]; negative variances smaller than a
    rounding tolerance are clipped to [0.], anything more negative raises
    [Invalid_argument]. *)

val deterministic : float -> t
(** A zero-variance (point-mass) value — e.g. a primary-input arrival. *)

val mu : t -> float
val var : t -> float
val sigma : t -> float

val add : t -> t -> t
(** Sum of independent normals (paper eq. 4): means add, variances add. *)

val shift : t -> float -> t
(** [shift x c] adds the constant [c] to [x]. *)

val scale : t -> float -> t
(** [scale x a] is the distribution of [a * X]. *)

val cdf_at : t -> float -> float
(** [cdf_at x d] is [P(X <= d)] — the fraction of circuits meeting a
    delay constraint [d] (Section 4's conformance percentages). *)

val quantile : t -> float -> float
(** [quantile x p] is the [p]-quantile of [x]. *)

val mu_plus_k_sigma : t -> float -> float
(** [mu_plus_k_sigma x k] is the guard-banded delay [mu + k * sigma]. *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
