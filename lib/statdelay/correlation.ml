open Util

let clip_rho rho = Numerics.clamp ~lo:(-1.) ~hi:1. rho

let theta (a : Normal.t) (b : Normal.t) ~rho =
  let rho = clip_rho rho in
  let v =
    a.Normal.var +. b.Normal.var -. (2. *. rho *. Normal.sigma a *. Normal.sigma b)
  in
  sqrt (max 0. v)

let degenerate (a : Normal.t) (b : Normal.t) =
  if a.Normal.mu >= b.Normal.mu then a else b

let max2 (a : Normal.t) (b : Normal.t) ~rho =
  let th = theta a b ~rho in
  if th < Clark.degenerate_theta then degenerate a b
  else begin
    let alpha = (a.Normal.mu -. b.Normal.mu) /. th in
    let pdf = Special.normal_pdf alpha in
    let cdf_a = Special.normal_cdf alpha in
    let cdf_b = Special.normal_cdf (-.alpha) in
    let mu =
      (a.Normal.mu *. cdf_a) +. (b.Normal.mu *. cdf_b) +. (th *. pdf)
    in
    let e2 =
      ((a.Normal.var +. (a.Normal.mu *. a.Normal.mu)) *. cdf_a)
      +. ((b.Normal.var +. (b.Normal.mu *. b.Normal.mu)) *. cdf_b)
      +. ((a.Normal.mu +. b.Normal.mu) *. th *. pdf)
    in
    Normal.of_var ~mu ~var:(max 0. (e2 -. (mu *. mu)))
  end

let blend_weights (a : Normal.t) (b : Normal.t) ~rho =
  let th = theta a b ~rho in
  let c = max2 a b ~rho in
  let sigma_c = Normal.sigma c in
  if sigma_c <= 0. then (0., 0., c)
  else if th < Clark.degenerate_theta then
    (* deterministic choice of the dominant operand *)
    if a.Normal.mu >= b.Normal.mu then (1., 0., c) else (0., 1., c)
  else begin
    let alpha = (a.Normal.mu -. b.Normal.mu) /. th in
    let cdf_a = Special.normal_cdf alpha in
    let cdf_b = Special.normal_cdf (-.alpha) in
    (Normal.sigma a *. cdf_a /. sigma_c, Normal.sigma b *. cdf_b /. sigma_c, c)
  end

let cross_correlation (a : Normal.t) (b : Normal.t) ~rho ~r_a ~r_b =
  let wa, wb, _ = blend_weights a b ~rho in
  clip_rho ((wa *. r_a) +. (wb *. r_b))

let mc_max2 rng (a : Normal.t) (b : Normal.t) ~rho ~n =
  let rho = clip_rho rho in
  let comp = sqrt (max 0. (1. -. (rho *. rho))) in
  Array.init n (fun _ ->
      let z1 = Rng.normal rng in
      let z2 = Rng.normal rng in
      let xa = a.Normal.mu +. (Normal.sigma a *. z1) in
      let xb = b.Normal.mu +. (Normal.sigma b *. ((rho *. z1) +. (comp *. z2))) in
      max xa xb)
