(** Monte Carlo reference implementation of the stochastic operators.

    The paper contrasts its analytical approach with Monte-Carlo-based
    statistical timing ([9], Jyu's thesis) and validates the normal
    approximation of the max by sampling ([1], [2]).  This module provides
    the sampling counterpart of {!Clark} so the approximation error can be
    measured (experiment F-MC). *)

val sample_max2 : Util.Rng.t -> Normal.t -> Normal.t -> n:int -> float array
(** [n] independent draws of [max(A, B)]. *)

val sample_max_list : Util.Rng.t -> Normal.t list -> n:int -> float array
(** [n] independent draws of the exact maximum of the operands. *)

val standard_errors : sigma:float -> n:int -> float * float
(** [standard_errors ~sigma ~n] is [(se_mu, se_sigma)], the sampling
    standard errors of the empirical mean and standard deviation of [n]
    draws from a distribution with standard deviation [sigma]:
    {m SE(\hat\mu) = \sigma/\sqrt{n}} and (for near-normal samples)
    {m SE(\hat\sigma) \approx \sigma/\sqrt{2n}}.  This is the bound the
    comparison tests must budget for: a [compare_*] error is only
    evidence of model error once it exceeds a few standard errors plus
    any known bias of the analytic side (for {!compare_max_list}, the
    fold-order bias of the repeated two-operand Clark max). *)

type comparison = {
  analytic : Normal.t;
  sampled_mu : float;
  sampled_sigma : float;
  mu_abs_err : float;
  sigma_abs_err : float;
}

val compare_max2 : Util.Rng.t -> Normal.t -> Normal.t -> n:int -> comparison
(** Clark's moment-matched max versus the empirical moments of the exact
    sampled max. *)

val compare_max_list : Util.Rng.t -> Normal.t list -> n:int -> comparison
(** Repeated two-operand Clark max versus the empirical moments of the
    exact n-ary max — measures both the normal approximation and the
    fold-order approximation at once.  The observable error therefore
    decomposes as [bias + noise]: a fold/normality bias that does not
    shrink with [n] (about 1–2% of sigma for similar operands; the
    paper's Section 7 lists the explicit n-ary max as future work) plus
    sampling noise bounded by {!standard_errors}.  Tests must assert
    [err <= bias_allowance + z * se], not a bare constant. *)
