(** Monte Carlo reference implementation of the stochastic operators.

    The paper contrasts its analytical approach with Monte-Carlo-based
    statistical timing ([9], Jyu's thesis) and validates the normal
    approximation of the max by sampling ([1], [2]).  This module provides
    the sampling counterpart of {!Clark} so the approximation error can be
    measured (experiment F-MC). *)

val sample_max2 : Util.Rng.t -> Normal.t -> Normal.t -> n:int -> float array
(** [n] independent draws of [max(A, B)]. *)

val sample_max_list : Util.Rng.t -> Normal.t list -> n:int -> float array
(** [n] independent draws of the exact maximum of the operands. *)

type comparison = {
  analytic : Normal.t;
  sampled_mu : float;
  sampled_sigma : float;
  mu_abs_err : float;
  sigma_abs_err : float;
}

val compare_max2 : Util.Rng.t -> Normal.t -> Normal.t -> n:int -> comparison
(** Clark's moment-matched max versus the empirical moments of the exact
    sampled max. *)

val compare_max_list : Util.Rng.t -> Normal.t list -> n:int -> comparison
(** Repeated two-operand Clark max versus the empirical moments of the
    exact n-ary max — measures both the normal approximation and the
    fold-order approximation at once. *)
