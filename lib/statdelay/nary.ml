(* Gauss-Hermite nodes and weights by Newton iteration on the orthonormal
   Hermite recurrence (the classic `gauher' scheme).  Normalised
   polynomials keep the iteration overflow-free up to a few hundred
   points. *)
let gauss_hermite n =
  if n < 1 || n > 180 then invalid_arg "Nary.gauss_hermite: need 1 <= n <= 180";
  let x = Array.make n 0. and w = Array.make n 0. in
  let pim4 = 0.7511255444649425 (* pi^(-1/4) *) in
  let m = (n + 1) / 2 in
  let z = ref 0. and z1 = ref 0. and z2 = ref 0. in
  for i = 0 to m - 1 do
    (* initial guesses, largest root first *)
    (match i with
    | 0 ->
        z :=
          sqrt (float_of_int ((2 * n) + 1))
          -. (1.85575 *. (float_of_int ((2 * n) + 1) ** -0.16667))
    | 1 -> z := !z -. (1.14 *. (float_of_int n ** 0.426) /. !z)
    | 2 -> z := (1.86 *. !z) -. (0.86 *. !z2)
    | 3 -> z := (1.91 *. !z) -. (0.91 *. !z2)
    | _ -> z := (2. *. !z) -. !z2);
    let pp = ref 0. in
    let converged = ref false in
    let iterations = ref 0 in
    while not !converged do
      incr iterations;
      if !iterations > 100 then failwith "Nary.gauss_hermite: no convergence";
      let p1 = ref pim4 and p2 = ref 0. in
      for j = 1 to n do
        let p3 = !p2 in
        p2 := !p1;
        let fj = float_of_int j in
        p1 := (!z *. sqrt (2. /. fj) *. !p2) -. (sqrt ((fj -. 1.) /. fj) *. p3)
      done;
      pp := sqrt (2. *. float_of_int n) *. !p2;
      let dz = !p1 /. !pp in
      z := !z -. dz;
      if abs_float dz < 1e-14 then converged := true
    done;
    z2 := !z1;
    z1 := !z;
    (* store symmetric pair; nodes in increasing order *)
    x.(i) <- -. !z;
    x.(n - 1 - i) <- !z;
    w.(i) <- 2. /. (!pp *. !pp);
    w.(n - 1 - i) <- w.(i)
  done;
  (x, w)

let sqrt_pi = sqrt (4. *. atan 1.)
let sqrt2 = sqrt 2.

let expectation ?(points = 64) f (x : Normal.t) =
  if Normal.var x <= 0. then f (Normal.mu x)
  else begin
    let nodes, weights = gauss_hermite points in
    let mu = Normal.mu x and sigma = Normal.sigma x in
    let acc = ref 0. in
    for i = 0 to points - 1 do
      acc := !acc +. (weights.(i) *. f (mu +. (sigma *. sqrt2 *. nodes.(i))))
    done;
    !acc /. sqrt_pi
  end

(* Product of the other operands' CDFs at x. *)
let others_cdf operands skip x =
  let acc = ref 1. in
  List.iteri
    (fun j (o : Normal.t) -> if j <> skip then acc := !acc *. Normal.cdf_at o x)
    operands;
  !acc

(* Composite Simpson rule on [lo, hi]. *)
let simpson f ~lo ~hi ~intervals =
  let n = if intervals mod 2 = 0 then intervals else intervals + 1 in
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (f lo +. f hi) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4. else 2. in
    acc := !acc +. (w *. f (lo +. (float_of_int i *. h)))
  done;
  !acc *. h /. 3.

(* Interval count that resolves the sharpest CDF transition inside the
   window: quadrature features have the scale of the smallest operand
   sigma. *)
let intervals_for ~points ~width operands =
  let min_sigma =
    List.fold_left (fun acc (x : Normal.t) -> min acc (Normal.sigma x)) infinity operands
  in
  let needed =
    if min_sigma > 0. && Float.is_finite min_sigma then
      int_of_float (ceil (width /. (min_sigma /. 4.)))
    else 512
  in
  min 32_768 (max (8 * points) needed)

(* All operands have positive variance: integrate each term
   x^k phi_i prod_{j<>i} Phi_j over operand i's support window with a step
   fine enough for every Phi_j transition inside it. *)
let max_moments_continuous ~points operands =
  let e1 = ref 0. and e2 = ref 0. in
  List.iteri
    (fun i (xi : Normal.t) ->
      let mu = xi.Normal.mu and sigma = Normal.sigma xi in
      let lo = mu -. (10. *. sigma) and hi = mu +. (10. *. sigma) in
      let intervals = intervals_for ~points ~width:(hi -. lo) operands in
      let density x = Util.Special.normal_pdf ((x -. mu) /. sigma) /. sigma in
      let term k =
        simpson
          (fun x -> (x ** float_of_int k) *. density x *. others_cdf operands i x)
          ~lo ~hi ~intervals
      in
      e1 := !e1 +. term 1;
      e2 := !e2 +. term 2)
    operands;
  (!e1, !e2)

(* Mixed point masses and continuous operands: with m0 the largest point
   mass, C = max(m0, max of the continuous operands), so each continuous
   term integrates over [m0, inf) only — the truncation is handled exactly
   by integrating on the finite support window with Simpson, and the
   atom's own contribution is m0^k P(all continuous <= m0). *)
let max_moments_mixed ~points masses continuous =
  let m_star = List.fold_left (fun acc (m : Normal.t) -> max acc m.Normal.mu) neg_infinity masses in
  let hi =
    List.fold_left
      (fun acc (x : Normal.t) -> max acc (x.Normal.mu +. (10. *. Normal.sigma x)))
      (m_star +. 1.) continuous
  in
  let atom_prob = others_cdf continuous (-1) m_star in
  let intervals = intervals_for ~points ~width:(hi -. m_star) continuous in
  let e1 = ref (m_star *. atom_prob) and e2 = ref (m_star *. m_star *. atom_prob) in
  List.iteri
    (fun i (xi : Normal.t) ->
      let density x =
        Util.Special.normal_pdf ((x -. xi.Normal.mu) /. Normal.sigma xi)
        /. Normal.sigma xi
      in
      let term k =
        simpson
          (fun x -> (x ** float_of_int k) *. density x *. others_cdf continuous i x)
          ~lo:m_star ~hi ~intervals
      in
      e1 := !e1 +. term 1;
      e2 := !e2 +. term 2)
    continuous;
  (!e1, !e2)

let max_moments ?(points = 64) operands =
  if operands = [] then invalid_arg "Nary.max_moments: empty list";
  let masses, continuous =
    List.partition (fun (x : Normal.t) -> Normal.var x <= 0.) operands
  in
  match (masses, continuous) with
  | _, [] ->
      let m =
        List.fold_left (fun acc (x : Normal.t) -> max acc x.Normal.mu) neg_infinity masses
      in
      (m, m *. m)
  | [], _ -> max_moments_continuous ~points continuous
  | _, _ -> max_moments_mixed ~points masses continuous

let max_list ?points operands =
  let e1, e2 = max_moments ?points operands in
  Normal.of_var ~mu:e1 ~var:(max 0. (e2 -. (e1 *. e1)))

let fold_error ?points operands =
  let exact = max_list ?points operands in
  let folded = Clark.max_list operands in
  ( abs_float (Normal.mu exact -. Normal.mu folded),
    abs_float (Normal.sigma exact -. Normal.sigma folded) )
