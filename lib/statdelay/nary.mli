(** Exact moments of the maximum of n independent normals.

    The paper computes multi-operand maxima as repeated two-operand Clark
    maxima (eq. 18b) and lists an explicit n-ary max as future work
    (Section 7): the fold is an approximation because the intermediate max
    is re-approximated as normal before the next step.  This module
    implements that future work: for independent {m X_1,\dots,X_n},

    {math E[C^k] \;=\; \sum_i \int x^k \varphi_i(x) \prod_{j\ne i}\Phi_j(x)\,dx}

    evaluated by deterministic quadrature (composite Simpson with a step
    that resolves the sharpest operand CDF; Gauss–Hermite is used for the
    generic {!expectation} helper), with no normality assumption on the
    intermediate results.  The result is then moment-matched to a normal,
    so the {e only} approximation left is the final moment match.  Point
    masses (e.g. primary-input arrivals) are split out and handled
    exactly.

    Used by the test-suite and the EXT-NARY bench to quantify the
    fold-order error of {!Clark.max_list}. *)

val gauss_hermite : int -> float array * float array
(** [gauss_hermite n] returns the nodes and weights of the [n]-point
    Gauss–Hermite rule for the weight {m e^{-x^2}} on
    {m (-\infty, \infty)}; {m \int e^{-x^2} f \approx \sum_i w_i f(x_i)}.
    Requires [1 <= n <= 180]; nodes are in increasing order. *)

val expectation : ?points:int -> (float -> float) -> Normal.t -> float
(** [expectation f x] is {m E[f(X)]} by Gauss–Hermite quadrature
    (default 64 points). *)

val max_moments : ?points:int -> Normal.t list -> float * float
(** [max_moments xs] is [(E[C], E[C^2])] for the exact maximum [C] of the
    independent operands.  Degenerate (zero-variance) operands are handled
    as point masses.  Raises [Invalid_argument] on the empty list. *)

val max_list : ?points:int -> Normal.t list -> Normal.t
(** Moment-matched normal for the exact n-ary max — the drop-in,
    higher-accuracy alternative to {!Clark.max_list}. *)

val fold_error : ?points:int -> Normal.t list -> float * float
(** [(|mu error|, |sigma error|)] of {!Clark.max_list} relative to the
    exact n-ary moments — the quantity the EXT-NARY experiment reports. *)
