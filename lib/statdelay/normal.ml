type t = { mu : float; var : float }

let neg_var_tolerance = 1e-12

let make ~mu ~sigma =
  if sigma < 0. then invalid_arg "Normal.make: negative sigma";
  { mu; var = sigma *. sigma }

let of_var ~mu ~var =
  if var < 0. then
    if var > -.neg_var_tolerance then { mu; var = 0. }
    else invalid_arg "Normal.of_var: negative variance"
  else { mu; var }

let deterministic mu = { mu; var = 0. }
let mu t = t.mu
let var t = t.var
let sigma t = sqrt t.var
let add a b = { mu = a.mu +. b.mu; var = a.var +. b.var }
let shift t c = { t with mu = t.mu +. c }
let scale t a = { mu = a *. t.mu; var = a *. a *. t.var }

let cdf_at t d =
  if t.var <= 0. then if d >= t.mu then 1. else 0.
  else Util.Special.normal_cdf ((d -. t.mu) /. sigma t)

let quantile t p =
  if t.var <= 0. then t.mu else t.mu +. (sigma t *. Util.Special.normal_ppf p)

let mu_plus_k_sigma t k = t.mu +. (k *. sigma t)

let equal ?(tol = 1e-9) a b =
  Util.Numerics.approx_eq ~rtol:tol a.mu b.mu
  && Util.Numerics.approx_eq ~rtol:tol a.var b.var

let pp ppf t = Format.fprintf ppf "N(mu=%g, sigma=%g)" t.mu (sigma t)
let to_string t = Format.asprintf "%a" pp t
