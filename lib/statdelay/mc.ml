open Util

let draw rng (x : Normal.t) = Rng.gaussian rng ~mu:x.Normal.mu ~sigma:(Normal.sigma x)

let sample_max2 rng a b ~n =
  Array.init n (fun _ -> max (draw rng a) (draw rng b))

let sample_max_list rng xs ~n =
  match xs with
  | [] -> invalid_arg "Mc.sample_max_list: empty list"
  | _ ->
      Array.init n (fun _ ->
          List.fold_left (fun acc x -> max acc (draw rng x)) neg_infinity xs)

let standard_errors ~sigma ~n =
  if n <= 1 then invalid_arg "Mc.standard_errors: need n > 1";
  if sigma < 0. then invalid_arg "Mc.standard_errors: negative sigma";
  let nf = float_of_int n in
  (sigma /. sqrt nf, sigma /. sqrt (2. *. nf))

type comparison = {
  analytic : Normal.t;
  sampled_mu : float;
  sampled_sigma : float;
  mu_abs_err : float;
  sigma_abs_err : float;
}

let compare_of analytic samples =
  let st = Stats.of_array samples in
  let sampled_mu = Stats.mean st in
  let sampled_sigma = Stats.std_dev st in
  {
    analytic;
    sampled_mu;
    sampled_sigma;
    mu_abs_err = abs_float (Normal.mu analytic -. sampled_mu);
    sigma_abs_err = abs_float (Normal.sigma analytic -. sampled_sigma);
  }

let compare_max2 rng a b ~n = compare_of (Clark.max2 a b) (sample_max2 rng a b ~n)

let compare_max_list rng xs ~n =
  compare_of (Clark.max_list xs) (sample_max_list rng xs ~n)
