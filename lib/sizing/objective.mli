(** Sizing objectives and constraints (paper Section 4 and Tables 1–2).

    All delay quantities refer to the circuit-level distribution
    {m T_{max}} (the stochastic max over the primary outputs); [k] selects
    the guard-band {m \mu + k\sigma}.  The paper's experiments instantiate:

    - [Min_area] with no delay bound — every speed factor at its lower
      bound (the {m \sum S_i} row of Table 1),
    - [Min_delay k] for {m k \in \{0, 1, 3\}},
    - [Min_area_bounded] for the area-minimisation rows with
      {m \mu + k\sigma \le D},
    - [Min_sigma]/[Max_sigma] at fixed mean delay for Table 2/3. *)

type t =
  | Min_area  (** minimise {m \sum_i area_i S_i}; trivially all-min sizes *)
  | Min_delay of float  (** [Min_delay k] minimises {m \mu + k\sigma} *)
  | Min_area_bounded of { k : float; bound : float }
      (** minimise area subject to {m \mu + k\sigma \le bound} *)
  | Min_sigma of { mu : float }
      (** minimise {m \sigma_{T_{max}}} subject to {m \mu_{T_{max}} = mu} *)
  | Max_sigma of { mu : float }
      (** maximise {m \sigma_{T_{max}}} subject to {m \mu_{T_{max}} = mu} *)
  | Min_weighted of { label : string; weights : float array; k : float; bound : float }
      (** minimise {m \sum_i w_i S_i} subject to {m \mu + k\sigma \le bound}
          — the paper's "weighted sum of sizing factors" objective.  With
          weights from {!Circuit.Activity.power_weights} this minimises
          dynamic power; [label] names the metric in reports (e.g.
          ["power"]). *)

val metric_name : float -> string
(** ["mu"], ["mu+sigma"], ["mu+3sigma"], … for a guard-band factor [k]. *)

val describe : t -> string
(** Human-readable form close to the paper's table rows, e.g.
    ["min mu+3sigma"] or ["min area s.t. mu+sigma <= 120"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer for {!describe}. *)
