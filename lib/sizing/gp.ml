(* Geometric-programming sizing on the mean delay model.

   The pipeline: compile the Berkelaar-Jess mean-delay/area problem from
   the Netlist.flat CSR view into a posynomial program (one epigraph
   arrival variable per gate, so the model is path-free), flatten it to
   index arrays, and minimise in log space with a damped-Newton barrier
   method whose linear systems are solved by Jacobi-preconditioned CG on
   Hessian-vector products (every Hessian is a sum of sparse rank-style
   terms, so H*v costs one pass over the monomial terms).

   Everything here is deterministic: fixed iteration order, no
   randomness, no wall-clock-dependent control flow.  Two solves of the
   same problem return bit-identical results. *)

open Circuit

(* ---- posynomial AST --------------------------------------------------------- *)

module Posy = struct
  type monomial = { coeff : float; terms : (int * float) list }
  type t = monomial list

  let log_monomial { coeff; terms } y =
    List.fold_left (fun acc (i, e) -> acc +. (e *. y.(i))) (log coeff) terms

  let log_eval p y =
    match p with
    | [] -> invalid_arg "Gp.Posy.log_eval: empty posynomial"
    | _ ->
        let ms = List.map (fun m -> log_monomial m y) p in
        let mx = List.fold_left Float.max neg_infinity ms in
        if not (Util.Guard.is_finite mx) then mx
        else mx +. log (List.fold_left (fun s m -> s +. exp (m -. mx)) 0. ms)

  let log_grad ~dim p y =
    let ms = List.map (fun m -> log_monomial m y) p in
    let mx = List.fold_left Float.max neg_infinity ms in
    let s = List.fold_left (fun s m -> s +. exp (m -. mx)) 0. ms in
    let grad = Array.make dim 0. in
    List.iter2
      (fun m lm ->
        let w = exp (lm -. mx) /. s in
        List.iter (fun (i, e) -> grad.(i) <- grad.(i) +. (w *. e)) m.terms)
      p ms;
    grad
end

(* ---- problem compilation ---------------------------------------------------- *)

type objective =
  | Min_delay of { area_budget : float option }
  | Min_area of { delay_bound : float }

(* Variables: flat (new-id) gate sizes at 0..n-1, epigraph arrivals at
   n..2n-1, the circuit delay T at 2n.  Every constraint is a
   posynomial p with meaning p <= 1. *)
let compile net gp_obj =
  let f = Netlist.flat net in
  let n = Netlist.n_gates net in
  let t_var = 2 * n in
  let lo_old = Netlist.min_sizes net in
  let area_new = Array.make (max 1 n) 0. in
  let lo_new = Array.make (max 1 n) 1. in
  for g' = 0 to n - 1 do
    let g = f.Netlist.inv_perm.(g') in
    area_new.(g') <- (Netlist.gate net g).Netlist.cell.Cell.area;
    lo_new.(g') <- lo_old.(g)
  done;
  (* Gate delay divided by the gate's arrival variable:
     t_g / a_g = t_int/a_g + drive*wire/(S_g a_g)
               + sum_consumers drive*mult*c_in*S_c/(S_g a_g). *)
  let delay_monos g' =
    let ai = n + g' in
    let ms = ref [] in
    if f.Netlist.g_t_int.(g') > 0. then
      ms := { Posy.coeff = f.Netlist.g_t_int.(g'); terms = [ (ai, -1.) ] } :: !ms;
    let dw = f.Netlist.g_drive.(g') *. f.Netlist.g_wire_load.(g') in
    if dw > 0. then
      ms := { Posy.coeff = dw; terms = [ (g', -1.); (ai, -1.) ] } :: !ms;
    for e = f.Netlist.fo_off.(g') to f.Netlist.fo_off.(g' + 1) - 1 do
      let c =
        f.Netlist.g_drive.(g') *. f.Netlist.fo_mult.(e) *. f.Netlist.fo_cin.(e)
      in
      if c > 0. then
        ms :=
          {
            Posy.coeff = c;
            terms = [ (f.Netlist.fo_consumer.(e), 1.); (g', -1.); (ai, -1.) ];
          }
          :: !ms
    done;
    (* A zero-delay gate would leave its arrival variable unbounded below;
       anchor it so the barrier problem stays well posed. *)
    if !ms = [] then [ { Posy.coeff = 1e-12; terms = [ (ai, -1.) ] } ] else !ms
  in
  let cons = ref [] in
  let stamp = Array.make (max 1 n) (-1) in
  for g' = 0 to n - 1 do
    let dm = delay_monos g' in
    let has_free = ref false and added = ref false in
    for idx = f.Netlist.fi_off.(g') to f.Netlist.fi_off.(g' + 1) - 1 do
      let x = f.Netlist.fi_node.(idx) in
      if x < 0 then has_free := true
      else if stamp.(x) <> g' then begin
        stamp.(x) <- g';
        added := true;
        (* (a_f + t_g) / a_g <= 1 *)
        cons :=
          ({ Posy.coeff = 1.; terms = [ (n + x, 1.); (n + g', -1.) ] } :: dm)
          :: !cons
      end
    done;
    (* Primary-input fanins arrive at time 0: t_g / a_g <= 1. *)
    if !has_free || not !added then cons := dm :: !cons
  done;
  Array.fill stamp 0 (max 1 n) (-1);
  let po_added = ref false in
  Array.iter
    (fun p ->
      if p >= 0 && stamp.(p) <> n then begin
        stamp.(p) <- n;
        po_added := true;
        (* a_p / T <= 1 *)
        cons :=
          [ { Posy.coeff = 1.; terms = [ (n + p, 1.); (t_var, -1.) ] } ] :: !cons
      end)
    f.Netlist.po_node;
  if not !po_added then
    (* No gate drives a primary output (degenerate): anchor T. *)
    cons := [ { Posy.coeff = 1e-12; terms = [ (t_var, -1.) ] } ] :: !cons;
  (* Box on the sizes, as monomial constraints the barrier handles:
     lo/S <= 1 and S/hi <= 1. *)
  for g' = 0 to n - 1 do
    cons := [ { Posy.coeff = lo_new.(g'); terms = [ (g', -1.) ] } ] :: !cons;
    let hi = f.Netlist.g_max_size.(g') in
    if hi > lo_new.(g') *. (1. +. 1e-9) then
      cons := [ { Posy.coeff = 1. /. hi; terms = [ (g', 1.) ] } ] :: !cons
  done;
  let objective_posy =
    match gp_obj with
    | Min_delay { area_budget } ->
        (match area_budget with
        | None -> ()
        | Some a ->
            if a <= 0. then invalid_arg "Gp.compile: area budget must be positive";
            let ms =
              List.filter_map
                (fun g' ->
                  if area_new.(g') > 0. then
                    Some { Posy.coeff = area_new.(g') /. a; terms = [ (g', 1.) ] }
                  else None)
                (List.init n Fun.id)
            in
            if ms <> [] then cons := ms :: !cons);
        [ { Posy.coeff = 1.; terms = [ (t_var, 1.) ] } ]
    | Min_area { delay_bound } ->
        if delay_bound <= 0. then
          invalid_arg "Gp.compile: delay bound must be positive";
        cons :=
          [ { Posy.coeff = 1. /. delay_bound; terms = [ (t_var, 1.) ] } ]
          :: !cons;
        let ms =
          List.filter_map
            (fun g' ->
              if area_new.(g') > 0. then
                Some { Posy.coeff = area_new.(g'); terms = [ (g', 1.) ] }
              else None)
            (List.init n Fun.id)
        in
        if ms = [] then [ { Posy.coeff = 1.; terms = [] } ] else ms
  in
  (objective_posy, List.rev !cons)

(* ---- flattened model -------------------------------------------------------- *)

(* The solver's working form: every posynomial flattened into CSR-style
   index arrays so the hot loops (values, weights, gradient, diagonal,
   Hessian-vector) are plain array sweeps. *)
type flat_posy = {
  logc : float array;  (* per monomial: log coeff *)
  toff : int array;  (* per monomial: term row offsets *)
  tvar : int array;
  texp : float array;
}

type flat_model = {
  dim : int;
  obj : flat_posy;
  c_off : int array;  (* per constraint: monomial ranges into [cm] *)
  cm : flat_posy;  (* all constraint monomials, concatenated *)
  n_cons : int;
}

let flatten_posy (p : Posy.t) =
  let n_monos = List.length p in
  let n_terms = List.fold_left (fun a m -> a + List.length m.Posy.terms) 0 p in
  let logc = Array.make (max 1 n_monos) 0. in
  let toff = Array.make (n_monos + 1) 0 in
  let tvar = Array.make (max 1 n_terms) 0 in
  let texp = Array.make (max 1 n_terms) 0. in
  let k = ref 0 and t = ref 0 in
  List.iter
    (fun m ->
      logc.(!k) <- log m.Posy.coeff;
      toff.(!k) <- !t;
      List.iter
        (fun (i, e) ->
          tvar.(!t) <- i;
          texp.(!t) <- e;
          incr t)
        m.Posy.terms;
      incr k)
    p;
  toff.(n_monos) <- !t;
  { logc; toff; tvar; texp }

let flatten ~dim objective constraints =
  let n_cons = List.length constraints in
  let c_off = Array.make (n_cons + 1) 0 in
  List.iteri (fun j p -> c_off.(j + 1) <- c_off.(j) + List.length p) constraints;
  let all = List.concat constraints in
  { dim; obj = flatten_posy objective; c_off; cm = flatten_posy all; n_cons }

(* ---- solver ----------------------------------------------------------------- *)

type options = {
  t0 : float;
  barrier_growth : float;
  complementarity_target : float;
  newton_tol : float;
  max_newton : int;
  max_total_newton : int;
  cg_max_iterations : int;
}

let default_options =
  {
    t0 = 1.;
    barrier_growth = 20.;
    complementarity_target = 1e-7;
    newton_tol = 1e-9;
    max_newton = 400;
    max_total_newton = 3000;
    cg_max_iterations = 400;
  }

type status = Optimal | Infeasible | Stalled

type solution = {
  status : status;
  sizes : float array;
  delay : float;
  mean_delay : float;
  area : float;
  gp_objective : objective;
  n_variables : int;
  n_constraints : int;
  centerings : int;
  newton_iterations : int;
  duality_gap : float;
  kkt : Nlp.Check.kkt;
  wall_time : float;
}

(* Mutable solver workspace over a flat model. *)
type ws = {
  model : flat_model;
  y : float array;
  gval : float array;  (* per constraint: g_j = log posy_j(y) *)
  phi1 : float array;  (* per constraint: -1/g_j *)
  phi2 : float array;  (* per constraint: 1/g_j^2 *)
  w : float array;  (* per constraint monomial: LSE weight *)
  ow : float array;  (* per objective monomial: LSE weight *)
  mutable f0 : float;
  o_grad : float array;  (* gradient of f0 (without the barrier weight t) *)
  grad_b : float array;  (* gradient of the barrier function *)
  diag_h : float array;  (* diagonal of the barrier Hessian *)
  mutable reg : float;  (* Tikhonov term added to the Hessian *)
  mdot : float array;  (* scratch: per constraint monomial, alpha_k . v *)
  omdot : float array;  (* scratch: per objective monomial *)
  sg : float array;  (* scratch: one constraint's sparse gradient, dense-backed *)
  touched : int array;  (* scratch: which sg slots are live *)
  d : float array;  (* Newton direction *)
  cg_r : float array;
  cg_z : float array;
  cg_p : float array;
  cg_hp : float array;
  trial : float array;
}

let make_ws model =
  let n_monos = Array.length model.cm.logc in
  let n_omonos = Array.length model.obj.logc in
  let mk () = Array.make model.dim 0. in
  {
    model;
    y = mk ();
    gval = Array.make (max 1 model.n_cons) 0.;
    phi1 = Array.make (max 1 model.n_cons) 0.;
    phi2 = Array.make (max 1 model.n_cons) 0.;
    w = Array.make (max 1 n_monos) 0.;
    ow = Array.make (max 1 n_omonos) 0.;
    f0 = 0.;
    o_grad = mk ();
    grad_b = mk ();
    diag_h = mk ();
    reg = 0.;
    mdot = Array.make (max 1 n_monos) 0.;
    omdot = Array.make (max 1 n_omonos) 0.;
    sg = mk ();
    touched = Array.make model.dim 0;
    d = mk ();
    cg_r = mk ();
    cg_z = mk ();
    cg_p = mk ();
    cg_hp = mk ();
    trial = mk ();
  }

let mono_log (fp : flat_posy) k y =
  let acc = ref fp.logc.(k) in
  for t = fp.toff.(k) to fp.toff.(k + 1) - 1 do
    acc := !acc +. (fp.texp.(t) *. y.(fp.tvar.(t)))
  done;
  !acc

(* Values-only sweep at [y]: fills gval, returns max_j g_j. *)
let eval_gvals ws y =
  let m = ws.model in
  let worst = ref neg_infinity in
  for j = 0 to m.n_cons - 1 do
    let k0 = m.c_off.(j) and k1 = m.c_off.(j + 1) in
    let mx = ref neg_infinity in
    for k = k0 to k1 - 1 do
      let lm = mono_log m.cm k y in
      ws.mdot.(k) <- lm;
      if lm > !mx then mx := lm
    done;
    let s = ref 0. in
    for k = k0 to k1 - 1 do
      s := !s +. exp (ws.mdot.(k) -. !mx)
    done;
    let g = !mx +. log !s in
    ws.gval.(j) <- g;
    if g > !worst then worst := g
  done;
  !worst

let eval_f0 ws y =
  let fp = ws.model.obj in
  let nk = Array.length fp.logc in
  let mx = ref neg_infinity in
  for k = 0 to nk - 1 do
    let lm = mono_log fp k y in
    ws.omdot.(k) <- lm;
    if lm > !mx then mx := lm
  done;
  let s = ref 0. in
  for k = 0 to nk - 1 do
    s := !s +. exp (ws.omdot.(k) -. !mx)
  done;
  !mx +. log !s

(* Normalized barrier value at an already-evaluated point (gvals filled,
   all < 0): B_t = f0 - (1/t) sum log(-g).  Normalizing by t keeps the
   value O(f0) at every barrier weight, so the Armijo test never runs
   into the floating-point resolution of a huge t*f0, and the barrier
   gradient *is* the stationarity vector of the certificate. *)
let barrier_value ws ~t f0 =
  let b = ref 0. in
  for j = 0 to ws.model.n_cons - 1 do
    b := !b -. log (-.ws.gval.(j))
  done;
  f0 +. (!b /. t)

(* Full preparation at the current ws.y: constraint values/weights,
   barrier derivatives phi1/phi2, objective value/weights/gradient, the
   barrier gradient and the Hessian diagonal.  Returns false if the
   point is not strictly feasible. *)
let prepare ws ~t =
  let m = ws.model in
  let feasible = ref true in
  Array.fill ws.grad_b 0 m.dim 0.;
  Array.fill ws.diag_h 0 m.dim 0.;
  Array.fill ws.o_grad 0 m.dim 0.;
  (* objective *)
  let fp = m.obj in
  let nk = Array.length fp.logc in
  let mx = ref neg_infinity in
  for k = 0 to nk - 1 do
    let lm = mono_log fp k ws.y in
    ws.omdot.(k) <- lm;
    if lm > !mx then mx := lm
  done;
  let s = ref 0. in
  for k = 0 to nk - 1 do
    s := !s +. exp (ws.omdot.(k) -. !mx)
  done;
  ws.f0 <- !mx +. log !s;
  for k = 0 to nk - 1 do
    let w = exp (ws.omdot.(k) -. !mx) /. !s in
    ws.ow.(k) <- w;
    for tt = fp.toff.(k) to fp.toff.(k + 1) - 1 do
      let i = fp.tvar.(tt) and e = fp.texp.(tt) in
      ws.o_grad.(i) <- ws.o_grad.(i) +. (w *. e);
      ws.diag_h.(i) <- ws.diag_h.(i) +. (w *. e *. e)
    done
  done;
  for i = 0 to m.dim - 1 do
    ws.grad_b.(i) <- ws.o_grad.(i);
    ws.diag_h.(i) <- ws.diag_h.(i) -. (ws.o_grad.(i) *. ws.o_grad.(i))
  done;
  (* constraints *)
  let n_touch = ref 0 in
  for j = 0 to m.n_cons - 1 do
    let k0 = m.c_off.(j) and k1 = m.c_off.(j + 1) in
    let mx = ref neg_infinity in
    for k = k0 to k1 - 1 do
      let lm = mono_log m.cm k ws.y in
      ws.mdot.(k) <- lm;
      if lm > !mx then mx := lm
    done;
    let s = ref 0. in
    for k = k0 to k1 - 1 do
      s := !s +. exp (ws.mdot.(k) -. !mx)
    done;
    let g = !mx +. log !s in
    ws.gval.(j) <- g;
    if g >= 0. then feasible := false
    else begin
      (* Normalized barrier derivatives phi'(g)/t and phi''(g)/t; with
         this scaling phi1 is exactly the dual estimate lambda_j. *)
      let p1 = -1. /. (g *. t) and p2 = 1. /. (g *. g *. t) in
      ws.phi1.(j) <- p1;
      ws.phi2.(j) <- p2;
      (* sparse gradient of g_j into sg/touched *)
      n_touch := 0;
      for k = k0 to k1 - 1 do
        let w = exp (ws.mdot.(k) -. !mx) /. !s in
        ws.w.(k) <- w;
        for tt = m.cm.toff.(k) to m.cm.toff.(k + 1) - 1 do
          let i = m.cm.tvar.(tt) and e = m.cm.texp.(tt) in
          if ws.sg.(i) = 0. && e <> 0. then begin
            (* first touch of i in this constraint (sg reset below) *)
            ws.touched.(!n_touch) <- i;
            incr n_touch
          end;
          ws.sg.(i) <- ws.sg.(i) +. (w *. e);
          (* second-moment part of the diagonal *)
          ws.diag_h.(i) <- ws.diag_h.(i) +. (p1 *. w *. e *. e)
        done
      done;
      for u = 0 to !n_touch - 1 do
        let i = ws.touched.(u) in
        let gi = ws.sg.(i) in
        ws.grad_b.(i) <- ws.grad_b.(i) +. (p1 *. gi);
        ws.diag_h.(i) <- ws.diag_h.(i) +. ((p2 -. p1) *. gi *. gi);
        ws.sg.(i) <- 0.
      done
    end
  done;
  if !feasible then begin
    let mxd = ref 0. in
    for i = 0 to m.dim - 1 do
      if ws.diag_h.(i) > !mxd then mxd := ws.diag_h.(i)
    done;
    ws.reg <- 1e-11 *. (1. +. !mxd)
  end;
  !feasible

(* Hessian-vector product of the normalized barrier at the prepared
   point.  H = H_f0 + sum_j [phi2_j grad g grad g^T + phi1_j H_gj]
   + reg*I (phi1/phi2 already carry the 1/t), with
   H_g v = sum_k w_k a_k (a_k . v) - (grad g . v) grad g, so each
   constraint contributes w_k a_k [phi1 (a_k.v) + (phi2 - phi1) dgv]
   summed over its terms. *)
let hessian_vec ws v out =
  let m = ws.model in
  for i = 0 to m.dim - 1 do
    out.(i) <- ws.reg *. v.(i)
  done;
  (* objective: LSE Hessian with unit weight *)
  let fp = m.obj in
  let nk = Array.length fp.logc in
  let dgv = ref 0. in
  for k = 0 to nk - 1 do
    let acc = ref 0. in
    for tt = fp.toff.(k) to fp.toff.(k + 1) - 1 do
      acc := !acc +. (fp.texp.(tt) *. v.(fp.tvar.(tt)))
    done;
    ws.omdot.(k) <- !acc;
    dgv := !dgv +. (ws.ow.(k) *. !acc)
  done;
  for k = 0 to nk - 1 do
    let c = ws.ow.(k) *. (ws.omdot.(k) -. !dgv) in
    if c <> 0. then
      for tt = fp.toff.(k) to fp.toff.(k + 1) - 1 do
        let i = fp.tvar.(tt) in
        out.(i) <- out.(i) +. (c *. fp.texp.(tt))
      done
  done;
  for j = 0 to m.n_cons - 1 do
    let k0 = m.c_off.(j) and k1 = m.c_off.(j + 1) in
    let p1 = ws.phi1.(j) and p2 = ws.phi2.(j) in
    let dgv = ref 0. in
    for k = k0 to k1 - 1 do
      let acc = ref 0. in
      for tt = m.cm.toff.(k) to m.cm.toff.(k + 1) - 1 do
        acc := !acc +. (m.cm.texp.(tt) *. v.(m.cm.tvar.(tt)))
      done;
      ws.mdot.(k) <- !acc;
      dgv := !dgv +. (ws.w.(k) *. !acc)
    done;
    let cross = (p2 -. p1) *. !dgv in
    for k = k0 to k1 - 1 do
      let c = ws.w.(k) *. ((p1 *. ws.mdot.(k)) +. cross) in
      if c <> 0. then
        for tt = m.cm.toff.(k) to m.cm.toff.(k + 1) - 1 do
          let i = m.cm.tvar.(tt) in
          out.(i) <- out.(i) +. (c *. m.cm.texp.(tt))
        done
    done
  done

(* Jacobi-preconditioned CG on H d = -grad_b.  Returns the (possibly
   truncated) direction in ws.d. *)
let cg_solve ws ~max_iterations =
  let m = ws.model in
  let dim = m.dim in
  let floor = 1e-12 *. (1. +. ws.reg) in
  let precond i = Float.max (ws.diag_h.(i) +. ws.reg) floor in
  Array.fill ws.d 0 dim 0.;
  let rnorm0 = ref 0. in
  for i = 0 to dim - 1 do
    ws.cg_r.(i) <- -.ws.grad_b.(i);
    rnorm0 := !rnorm0 +. (ws.cg_r.(i) *. ws.cg_r.(i))
  done;
  let rnorm0 = sqrt !rnorm0 in
  if rnorm0 = 0. then ()
  else begin
    let tol = Float.min 0.1 (sqrt rnorm0) *. rnorm0 *. 1e-2 in
    let rz = ref 0. in
    for i = 0 to dim - 1 do
      ws.cg_z.(i) <- ws.cg_r.(i) /. precond i;
      ws.cg_p.(i) <- ws.cg_z.(i);
      rz := !rz +. (ws.cg_r.(i) *. ws.cg_z.(i))
    done;
    let stop = ref false and it = ref 0 in
    while (not !stop) && !it < max_iterations do
      incr it;
      hessian_vec ws ws.cg_p ws.cg_hp;
      let pap = ref 0. in
      for i = 0 to dim - 1 do
        pap := !pap +. (ws.cg_p.(i) *. ws.cg_hp.(i))
      done;
      if !pap <= 0. then begin
        (* Numerically non-PD curvature: keep whatever we have; a zero
           direction falls back to preconditioned steepest descent. *)
        if Array.for_all (fun x -> x = 0.) ws.d then Array.blit ws.cg_z 0 ws.d 0 dim;
        stop := true
      end
      else begin
        let alpha = !rz /. !pap in
        let rnorm = ref 0. in
        for i = 0 to dim - 1 do
          ws.d.(i) <- ws.d.(i) +. (alpha *. ws.cg_p.(i));
          ws.cg_r.(i) <- ws.cg_r.(i) -. (alpha *. ws.cg_hp.(i));
          rnorm := !rnorm +. (ws.cg_r.(i) *. ws.cg_r.(i))
        done;
        if sqrt !rnorm <= tol then stop := true
        else begin
          let rz' = ref 0. in
          for i = 0 to dim - 1 do
            ws.cg_z.(i) <- ws.cg_r.(i) /. precond i;
            rz' := !rz' +. (ws.cg_r.(i) *. ws.cg_z.(i))
          done;
          let beta = !rz' /. !rz in
          rz := !rz';
          for i = 0 to dim - 1 do
            ws.cg_p.(i) <- ws.cg_z.(i) +. (beta *. ws.cg_p.(i))
          done
        end
      end
    done
  end

(* One centering: damped Newton on the normalized barrier
   f0 - (1/t) sum log(-g) from the current (strictly feasible, prepared)
   point.  Because the barrier is normalized, ||grad_b||_inf is exactly
   the stationarity residual the certificate will report with the dual
   estimates lambda_j = phi1_j — so the primary stop is a gradient-norm
   test.  Returns [`Converged] or [`Stalled], plus the steps taken. *)
let debug = try Sys.getenv "STATSIZE_GP_DEBUG" = "1" with Not_found -> false

let center ws ~t ~options ~budget =
  let m = ws.model in
  let steps = ref 0 in
  let verdict = ref `Running in
  let grad_inf () =
    let g = ref 0. in
    for i = 0 to m.dim - 1 do
      let a = Float.abs ws.grad_b.(i) in
      if a > !g then g := a
    done;
    !g
  in
  (* Loose pass for intermediate centerings would also work, but full
     accuracy is cheap here and keeps the path well centered. *)
  let grad_tol = options.newton_tol in
  (* The dual estimates carry a floating-point floor of about
     eps/|g_j| ~ eps * t, so the gradient cannot be driven below roughly
     that; a centering that bottoms out there is done, not stuck. *)
  let grad_floor = 1e3 *. grad_tol in
  let best_grad = ref infinity and stagnation = ref 0 in
  while !verdict = `Running do
    let gi = grad_inf () in
    (* Progress accounting vs the best gradient seen: hard centerings
       legitimately plateau for long stretches mid-path (e.g. while the
       area budget activates), so stagnation only ever ends a centering
       that has already reached the floating-point floor and is merely
       bouncing there. *)
    if gi > 0.9 *. !best_grad then incr stagnation else stagnation := 0;
    if gi < !best_grad then best_grad := gi;
    if gi <= grad_tol then verdict := `Converged
    else if gi <= grad_floor && !stagnation >= 4 then verdict := `Converged
    else if !steps >= min options.max_newton budget then verdict := `Stalled_budget
    else begin
      cg_solve ws ~max_iterations:options.cg_max_iterations;
      let slope = ref 0. in
      for i = 0 to m.dim - 1 do
        slope := !slope +. (ws.grad_b.(i) *. ws.d.(i))
      done;
      if !slope >= 0. then
        (* CG returned a non-descent direction: curvature information is
           exhausted at this precision. *)
        verdict := if gi <= grad_floor then `Converged else `Stalled_line_search
      else begin
        incr steps;
        (* In the quadratic-convergence region (tiny Newton decrement)
           the predicted decrease is below what an Armijo test can
           measure against the barrier value's floating-point
           resolution; there the full Newton step is accepted on strict
           feasibility alone. *)
        let quadratic = -. !slope /. 2. <= 1e-4 in
        let b0 = barrier_value ws ~t ws.f0 in
        let step = ref 1. and accepted = ref false in
        while (not !accepted) && !step > 1e-14 do
          for i = 0 to m.dim - 1 do
            ws.trial.(i) <- ws.y.(i) +. (!step *. ws.d.(i))
          done;
          let worst = eval_gvals ws ws.trial in
          if worst < 0. then begin
            if quadratic then accepted := true
            else begin
              let f0t = eval_f0 ws ws.trial in
              let bt = barrier_value ws ~t f0t in
              if bt <= b0 +. (1e-4 *. !step *. !slope) then accepted := true
              else step := !step *. 0.5
            end
          end
          else step := !step *. 0.5
        done;
        if debug then
          Printf.eprintf
            "    t=%.2e step %d: slope=%.3e quad=%b accepted=%b s=%.3e grad=%.3e\n%!"
            t !steps !slope quadratic !accepted !step gi;
        if not !accepted then
          verdict := if gi <= grad_floor then `Converged else `Stalled_line_search
        else begin
          Array.blit ws.trial 0 ws.y 0 m.dim;
          let ok = prepare ws ~t in
          if not ok then verdict := `Stalled_line_search
        end
      end
    end
  done;
  let v =
    match !verdict with
    | `Converged -> `Converged
    | `Stalled_budget | `Stalled_line_search -> `Stalled
    | `Running -> assert false
  in
  (v, !steps)

(* ---- strictly feasible starts ----------------------------------------------- *)

(* New-id size vector on the log-blend beta between the (slightly
   inflated) lower and (slightly deflated) upper box corners. *)
let blend_sizes ~lo ~hi beta =
  Array.init (Array.length lo) (fun i ->
      let l = log lo.(i) and h = log (Float.max hi.(i) (lo.(i) *. (1. +. 1e-9))) in
      let span = h -. l in
      let margin = 0.02 *. span in
      let y = l +. (beta *. span) in
      exp (Util.Numerics.clamp ~lo:(l +. margin) ~hi:(Float.max (l +. margin) (h -. margin)) y))

(* Deterministic mean-model timing of a new-id size vector, inflated so
   every epigraph constraint starts strictly slack: arrivals and T
   carry a (1 + eps) headroom factor per level. *)
let inflated_arrivals (f : Netlist.flat) ~n sizes =
  let eps = 1e-3 in
  let a = Array.make (max 1 n) 0. in
  for g' = 0 to n - 1 do
    let load = ref f.Netlist.g_wire_load.(g') in
    for e = f.Netlist.fo_off.(g') to f.Netlist.fo_off.(g' + 1) - 1 do
      load :=
        !load +. (f.Netlist.fo_mult.(e) *. f.Netlist.fo_cin.(e) *. sizes.(f.Netlist.fo_consumer.(e)))
    done;
    let tg =
      f.Netlist.g_t_int.(g') +. (f.Netlist.g_drive.(g') *. !load /. sizes.(g'))
    in
    let worst = ref 0. in
    for idx = f.Netlist.fi_off.(g') to f.Netlist.fi_off.(g' + 1) - 1 do
      let x = f.Netlist.fi_node.(idx) in
      if x >= 0 && a.(x) > !worst then worst := a.(x)
    done;
    a.(g') <- (1. +. eps) *. (!worst +. Float.max tg 1e-9)
  done;
  let t = ref 0. in
  Array.iter (fun p -> if p >= 0 && a.(p) > !t then t := a.(p)) f.Netlist.po_node;
  (a, (1. +. eps) *. Float.max !t 1e-9)

(* ---- certificate ------------------------------------------------------------- *)

let certificate ws =
  let m = ws.model in
  (* Sparse constraint gradients at the final point; the barrier dual
     estimate for g_j <= 0 is lambda_j = 1/(t * (-g_j)). *)
  let inequalities = ref [] in
  let n_touch = ref 0 in
  for j = m.n_cons - 1 downto 0 do
    let k0 = m.c_off.(j) and k1 = m.c_off.(j + 1) in
    n_touch := 0;
    for k = k0 to k1 - 1 do
      for tt = m.cm.toff.(k) to m.cm.toff.(k + 1) - 1 do
        let i = m.cm.tvar.(tt) and e = m.cm.texp.(tt) in
        if ws.sg.(i) = 0. && e <> 0. then begin
          ws.touched.(!n_touch) <- i;
          incr n_touch
        end;
        ws.sg.(i) <- ws.sg.(i) +. (ws.w.(k) *. e)
      done
    done;
    let grad = ref [] in
    for u = !n_touch - 1 downto 0 do
      let i = ws.touched.(u) in
      grad := (i, ws.sg.(i)) :: !grad;
      ws.sg.(i) <- 0.
    done;
    (* phi1 is the normalized -1/(t g): exactly the dual estimate. *)
    let lambda = ws.phi1.(j) in
    inequalities := (ws.gval.(j), !grad, lambda) :: !inequalities
  done;
  Nlp.Check.kkt
    ~bounds:(Nlp.Problem.unbounded ~dim:m.dim)
    ~x:ws.y ~objective_gradient:ws.o_grad ~inequalities:!inequalities ()

(* ---- solve ------------------------------------------------------------------- *)

let trivial_kkt = { Nlp.Check.stationarity = 0.; feasibility = 0.; complementarity = 0.; kkt_ok = true }

let finish net gp_obj ~status ~sizes_new ~delay ~n_variables ~n_constraints
    ~centerings ~newton_iterations ~duality_gap ~kkt ~started =
  let f = Netlist.flat net in
  let n = Netlist.n_gates net in
  let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
  (* Interior-point iterates stop a slack of about 1/(t lambda) inside
     any active bound; snap those onto the bound (the rounding step of
     classic GP sizing), then clamp for safety. *)
  let snap_tol = 1e-6 in
  let sizes =
    Array.init n (fun g ->
        let s = sizes_new.(f.Netlist.perm.(g)) in
        if s >= hi.(g) *. (1. -. snap_tol) then hi.(g)
        else if s <= lo.(g) *. (1. +. snap_tol) then lo.(g)
        else Util.Numerics.clamp ~lo:lo.(g) ~hi:hi.(g) s)
  in
  let det = Sta.Dsta.analyze net ~sizes in
  {
    status;
    sizes;
    delay;
    mean_delay = det.Sta.Dsta.circuit;
    area = Netlist.area net ~sizes;
    gp_objective = gp_obj;
    n_variables;
    n_constraints;
    centerings;
    newton_iterations;
    duality_gap;
    kkt;
    wall_time = Sys.time () -. started;
  }

let rec solve ?(options = default_options) net gp_obj =
  let started = Sys.time () in
  let f = Netlist.flat net in
  let n = Netlist.n_gates net in
  let dim = (2 * n) + 1 in
  let lo_old = Netlist.min_sizes net in
  let lo_new = Array.init (max 1 n) (fun g' -> lo_old.(f.Netlist.inv_perm.(g'))) in
  let hi_new = f.Netlist.g_max_size in
  let area_of sizes_new =
    let acc = ref 0. in
    for g' = 0 to n - 1 do
      acc :=
        !acc
        +. ((Netlist.gate net f.Netlist.inv_perm.(g')).Netlist.cell.Cell.area
           *. sizes_new.(g'))
    done;
    !acc
  in
  let min_area = area_of lo_new in
  let fail_finish status sizes_new =
    let _, t0 = inflated_arrivals f ~n sizes_new in
    finish net gp_obj ~status ~sizes_new ~delay:t0 ~n_variables:dim
      ~n_constraints:0 ~centerings:0 ~newton_iterations:0 ~duality_gap:infinity
      ~kkt:{ trivial_kkt with Nlp.Check.kkt_ok = false; stationarity = infinity }
      ~started
  in
  (* Strictly feasible start, or a typed Infeasible/degenerate exit. *)
  let start =
    match gp_obj with
    | Min_delay { area_budget = None } -> Some (blend_sizes ~lo:lo_new ~hi:hi_new 0.2)
    | Min_delay { area_budget = Some a } ->
        if a <= min_area *. (1. +. 1e-9) then None
        else begin
          let s0 = blend_sizes ~lo:lo_new ~hi:hi_new 0.2 in
          let a0 = area_of s0 in
          let target = min_area +. (0.8 *. (a -. min_area)) in
          if a0 <= target then Some s0
          else begin
            (* Area is linear in the sizes: interpolate toward the floor. *)
            let u = 0.5 *. (a -. min_area) /. (a0 -. min_area) in
            Some
              (Array.init (max 1 n) (fun i ->
                   lo_new.(i) +. (u *. (s0.(i) -. lo_new.(i)))))
          end
        end
    | Min_area { delay_bound } ->
        if delay_bound <= 0. then None
        else begin
          (* Scan the log-blend for the fastest strictly feasible start.
             On self-loading circuits the uniform line can miss the bound
             even when it is feasible (sizing every gate up also slows
             its drivers), so fall back to the unbudgeted min-delay
             solution pulled strictly inside the box: that point attains
             the global mean-delay minimum, so if even it misses the
             bound the GP is infeasible on the mean model. *)
          let best = ref None in
          let consider s =
            let _, t0 = inflated_arrivals f ~n s in
            match !best with
            | Some (_, tb) when tb <= t0 -> ()
            | _ -> best := Some (s, t0)
          in
          List.iter
            (fun beta -> consider (blend_sizes ~lo:lo_new ~hi:hi_new beta))
            [ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ];
          (match !best with
          | Some (_, tb) when tb < delay_bound -> ()
          | _ ->
              let fast = solve ~options net (Min_delay { area_budget = None }) in
              List.iter
                (fun mfrac ->
                  consider
                    (Array.init (max 1 n) (fun g' ->
                         let s = fast.sizes.(f.Netlist.inv_perm.(g')) in
                         let l = log lo_new.(g')
                         and h =
                           log (Float.max hi_new.(g') (lo_new.(g') *. (1. +. 1e-9)))
                         in
                         let m = mfrac *. (h -. l) in
                         exp
                           (Util.Numerics.clamp ~lo:(l +. m)
                              ~hi:(Float.max (l +. m) (h -. m))
                              (log s)))))
                [ 1e-2; 1e-4 ]);
          match !best with
          | Some (s, t0) when t0 < delay_bound -> Some s
          | _ -> None
        end
  in
  match start with
  | None -> (
      match gp_obj with
      | Min_delay { area_budget = Some a }
        when a >= min_area *. (1. -. 1e-9) && a <= min_area *. (1. +. 1e-9) ->
          (* The budget pins every size at its floor: the feasible set is
             a single point, optimal by feasibility alone. *)
          let sizes_new = Array.copy lo_new in
          let _, t0 = inflated_arrivals f ~n sizes_new in
          finish net gp_obj ~status:Optimal ~sizes_new ~delay:t0 ~n_variables:dim
            ~n_constraints:0 ~centerings:0 ~newton_iterations:0 ~duality_gap:0.
            ~kkt:trivial_kkt ~started
      | _ -> fail_finish Infeasible (Array.copy lo_new))
  | Some sizes0 -> (
      let objective_posy, constraints = compile net gp_obj in
      let model = flatten ~dim objective_posy constraints in
      let ws = make_ws model in
      let arr0, t0 = inflated_arrivals f ~n sizes0 in
      for g' = 0 to n - 1 do
        ws.y.(g') <- log sizes0.(g');
        ws.y.(n + g') <- log arr0.(g')
      done;
      ws.y.(2 * n) <- log t0;
      if not (prepare ws ~t:options.t0) then fail_finish Infeasible sizes0
      else begin
        let t = ref options.t0 in
        let centerings = ref 0 and total_newton = ref 0 in
        let status = ref Optimal in
        let running = ref true in
        while !running do
          let budget = options.max_total_newton - !total_newton in
          if budget <= 0 then begin
            status := Stalled;
            running := false
          end
          else begin
            let v, steps = center ws ~t:!t ~options ~budget in
            incr centerings;
            total_newton := !total_newton + steps;
            (match v with
            | `Stalled when 1. /. !t > options.complementarity_target ->
                status := Stalled;
                running := false
            | _ -> ());
            if !running then
              if 1. /. !t <= options.complementarity_target then running := false
              else begin
                t := !t *. options.barrier_growth;
                (* phi1/phi2/grad_b depend on t: refresh at the new weight. *)
                ignore (prepare ws ~t:!t)
              end
          end
        done;
        let kkt = certificate ws in
        (* Optimal means both: the barrier loop reached its
           complementarity target AND the first-order certificate at the
           final point checks out. *)
        let status =
          match !status with
          | Optimal when not kkt.Nlp.Check.kkt_ok -> Stalled
          | s -> s
        in
        let sizes_new = Array.init (max 1 n) (fun g' -> exp ws.y.(g')) in
        finish net gp_obj ~status ~sizes_new ~delay:(exp ws.y.(2 * n))
          ~n_variables:dim ~n_constraints:model.n_cons ~centerings:!centerings
          ~newton_iterations:!total_newton
          ~duality_gap:(float_of_int model.n_cons /. !t)
          ~kkt ~started
      end)
