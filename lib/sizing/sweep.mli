(** Area–delay trade-off curves.

    The first two rows of each Table-1 block are the endpoints of the
    circuit's area–delay trade-off; this module fills in the curve by
    solving [min area s.t. mu + k sigma <= D] over a grid of budgets.
    Used by the EXT-PARETO bench section and handy as a library utility
    for exploring a design's feasible region. *)

type point = {
  bound : float;  (** the delay budget D *)
  solution : Engine.solution;
}

type curve = {
  net : Circuit.Netlist.t;
  k : float;
  mu_fast : float;  (** delay of the min-delay sizing (curve's left end) *)
  mu_slow : float;  (** delay of the all-minimum sizing (right end) *)
  points : point list;  (** sorted by decreasing bound *)
}

val area_delay :
  ?options:Engine.options ->
  ?model:Circuit.Sigma_model.t ->
  ?k:float ->
  ?points:int ->
  Circuit.Netlist.t ->
  curve
(** [area_delay net] computes a [points]-point (default 5) curve between
    the feasible extremes of {m \mu + k\sigma} (default [k = 0.]),
    leaving small margins at both ends so every subproblem is feasible. *)

val print : curve -> unit
(** ASCII table of the curve, tightest budget first. *)
