(** Formatting of sizing results in the paper's table style. *)

val split_objective : Objective.t -> string * string
(** [(minimize, constraint)] column cells in the paper's notation. *)

val row : Engine.solution -> string list
(** [objective; constraint; mu; sigma; area; cpu] cells for a Table-1-style
    row. *)

val header : string list
(** Matching header: name, minimize, constraint, muTmax, sigmaTmax,
    sum-S, CPU. *)

val table : name:string -> Engine.solution list -> Util.Table.t
(** A Table-1-style block for one circuit. *)

val speed_factors : Circuit.Netlist.t -> Engine.solution -> (string * float) list
(** Gate-name/speed-factor pairs (Table 3 style), in gate order. *)

val cpu_string : float -> string
(** Seconds rendered like the paper's CPU column (["41 m 13.5 s"] or
    ["18.5 s"]). *)

val pp_solution : Format.formatter -> Engine.solution -> unit
(** One-line summary, including the termination reason and recovery trail
    when the solve did not converge cleanly. *)

val diagnosis_json : Engine.solution -> string
(** Machine-readable failure diagnosis: status, termination reason, the
    recovery rungs taken (with outcome/violation/evaluations each), and
    the typed breakdown when a guard fired.  Printed by the CLI on
    abnormal exits. *)
