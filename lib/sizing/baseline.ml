open Circuit

type options = { bump : float; max_moves : int }

let default_options = { bump = 1.15; max_moves = 100_000 }

type result = {
  sizes : float array;
  delay : float;
  area : float;
  moves : int;
  met : bool;
}

(* Secondary objective used to break ties: the summed arrival time over all
   gates.  On circuits with several equally critical paths (e.g. a balanced
   tree) a single move often leaves the circuit max unchanged; the summed
   arrivals still strictly decrease, so the greedy loop keeps making
   progress instead of stalling. *)
let total_arrival (r : Sta.Dsta.result) = Util.Numerics.sum r.Sta.Dsta.arrival

(* One greedy move: among the critical-path gates, apply the size bump that
   gives the best (delay, total-arrival) decrease per unit of added area.
   Returns None when no bump improves either metric. *)
let best_move ~options net sizes current_delay current_total =
  let path = Sta.Dsta.critical_path net ~sizes in
  let best = ref None in
  List.iter
    (fun g ->
      let cell = (Netlist.gate net g).Netlist.cell in
      let old_size = sizes.(g) in
      let proposal = min (old_size *. options.bump) cell.Cell.max_size in
      if proposal > old_size +. 1e-9 then begin
        sizes.(g) <- proposal;
        let r = Sta.Dsta.analyze net ~sizes in
        sizes.(g) <- old_size;
        let d = r.Sta.Dsta.circuit and total = total_arrival r in
        let improves =
          d < current_delay -. 1e-12
          || (d <= current_delay +. 1e-12 && total < current_total -. 1e-12)
        in
        if improves then begin
          let gain =
            ((current_delay -. d) +. (1e-3 *. (current_total -. total)))
            /. (cell.Cell.area *. (proposal -. old_size))
          in
          match !best with
          | Some (_, _, _, _, best_gain) when best_gain >= gain -> ()
          | _ -> best := Some (g, proposal, d, total, gain)
        end
      end)
    path;
  !best

let run ~options ~stop net =
  let sizes = Netlist.min_sizes net in
  let r0 = Sta.Dsta.analyze net ~sizes in
  let delay = ref r0.Sta.Dsta.circuit in
  let total = ref (total_arrival r0) in
  let moves = ref 0 in
  let finished = ref (stop !delay) in
  while (not !finished) && !moves < options.max_moves do
    match best_move ~options net sizes !delay !total with
    | None -> finished := true
    | Some (g, proposal, d, t, _) ->
        sizes.(g) <- proposal;
        delay := d;
        total := t;
        incr moves;
        if stop d then finished := true
  done;
  (sizes, !delay, !moves)

let minimize_delay ?(options = default_options) net =
  let sizes, delay, moves = run ~options ~stop:(fun _ -> false) net in
  { sizes; delay; area = Netlist.area net ~sizes; moves; met = true }

let meet_deadline ?(options = default_options) net ~deadline =
  let sizes, delay, moves = run ~options ~stop:(fun d -> d <= deadline) net in
  { sizes; delay; area = Netlist.area net ~sizes; moves; met = delay <= deadline }
