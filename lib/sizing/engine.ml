open Circuit
open Statdelay

type options = {
  solver : Nlp.Auglag.options;
  start : [ `Low | `Mid | `High | `Given of float array ];
  warm_start : [ `None | `Gp | `Baseline ];
  restarts : int;
  restart_seed : int;
  deadline : float option;
  max_evaluations : int option;
  recovery : bool;
  incremental : bool;
  instrument : (Nlp.Problem.constrained -> Nlp.Problem.constrained) option;
}

(* Sizing-tuned solver defaults: speed factors live in [1, limit] and the
   reports carry 2-3 decimals, so a 1e-5 projected-gradient tolerance and a
   1e-8 stagnation threshold stop the flat-valley crawl of large min-delay
   problems without affecting the reported digits. *)
let default_options =
  {
    solver =
      {
        Nlp.Auglag.default_options with
        Nlp.Auglag.inner =
          {
            Nlp.Lbfgs.default_options with
            Nlp.Lbfgs.tolerance = 1e-5;
            Nlp.Lbfgs.f_tolerance = 1e-8;
            Nlp.Lbfgs.max_iterations = 1000;
          };
      };
    start = `Mid;
    warm_start = `None;
    restarts = 0;
    restart_seed = 99;
    deadline = None;
    max_evaluations = None;
    recovery = true;
    incremental = true;
    instrument = None;
  }

type rung =
  | Initial
  | Perturbed_restart
  | Alternate_solver
  | Gentler_penalty
  | Gp_fallback
  | Baseline_fallback

let rung_name = function
  | Initial -> "initial"
  | Perturbed_restart -> "perturbed-restart"
  | Alternate_solver -> "alternate-solver"
  | Gentler_penalty -> "gentler-penalty"
  | Gp_fallback -> "gp-fallback"
  | Baseline_fallback -> "baseline-fallback"

let pp_rung ppf r = Format.pp_print_string ppf (rung_name r)

type attempt = {
  rung : rung;
  outcome : Nlp.Auglag.termination;
  breakdown : Nlp.Problem.breakdown option;
  violation : float;
  evals : int;
}

type solution = {
  objective : Objective.t;
  sizes : float array;
  timing : Sta.Ssta.result;
  mu : float;
  sigma : float;
  area : float;
  wall_time : float;
  evaluations : int;
  iterations : int;
  max_violation : float;
  converged : bool;
  termination : Nlp.Auglag.termination;
  recovery : attempt list;
}

let c_solves = Util.Instr.counter "engine.solve"
let c_cache_hits = Util.Instr.counter "engine.cache_hit"
let c_cache_misses = Util.Instr.counter "engine.cache_miss"
let c_recovery = Util.Instr.counter "engine.recovery.engaged"
let c_rung_perturbed = Util.Instr.counter "engine.recovery.perturbed_restart"
let c_rung_alternate = Util.Instr.counter "engine.recovery.alternate_solver"
let c_rung_gentler = Util.Instr.counter "engine.recovery.gentler_penalty"
let c_rung_gp = Util.Instr.counter "engine.recovery.gp_fallback"
let c_rung_baseline = Util.Instr.counter "engine.recovery.baseline_fallback"
let t_solve = Util.Instr.timer "engine.solve"

let evaluate ?pool ?arena ~model net ~sizes =
  let res = Sta.Ssta.analyze ?pool ?arena ~model net ~sizes in
  (res, Netlist.area net ~sizes)

(* The reverse sweep is linear in its seed, so the gradient for any
   functional f(mu, var) is df/dmu * grad_mu + df/dvar * grad_var.  One
   cache entry holds the circuit moments and both basis gradients for
   the most recent point, so objective and constraint closures evaluated
   at the same iterate share the timing analysis.  All buffers are
   allocated once and overwritten in place on each miss: together with
   the allocation-free arena sweeps underneath, a steady-state solver
   evaluation puts nothing on the heap from the timing path. *)
type cache_entry = {
  cx : float array;
  cmom : float array;
  grad_mu : float array;
  grad_var : float array;
  mutable filled : bool;
}

let circuit_mu_of e = e.cmom.(0)
let circuit_var_of e = e.cmom.(1)

let make_cache ?pool ?timing ?arena ~model net =
  let n = Netlist.n_gates net in
  let entry =
    {
      cx = Array.make (max 1 n) nan;
      cmom = Array.make 2 0.;
      grad_mu = Array.make (max 1 n) 0.;
      grad_var = Array.make (max 1 n) 0.;
      filled = false;
    }
  in
  (* From-scratch path: one private arena (or the caller's), forward
     once per miss, one reverse per basis seed. *)
  let arena =
    lazy
      (match arena with
      | Some a ->
          if not (Sta.Arena.netlist a == net) then
            invalid_arg "Engine: arena was created for a different netlist";
          a
      | None -> Sta.Arena.create net)
  in
  fun x ->
    if entry.filled && Array.for_all2 (fun a b -> a = b) entry.cx x then begin
      Util.Instr.incr c_cache_hits;
      entry
    end
    else begin
      Util.Instr.incr c_cache_misses;
      (match timing with
      | Some eng ->
          (* The incremental engine re-times only the fan-out cone of
             the delta against the previous iterate, and the second
             basis differentiation hits its forward cache outright (zero
             dirty gates).  Exact mode: bit-identical to the
             from-scratch path below. *)
          Sta.Incr.analyze_raw eng ~sizes:x;
          let a = Sta.Incr.arena eng in
          entry.cmom.(0) <- Sta.Arena.circuit_mu a;
          entry.cmom.(1) <- Sta.Arena.circuit_var a;
          Sta.Incr.gradient_into eng ~sizes:x ~d_mu:1. ~d_var:0.
            ~out:entry.grad_mu;
          Sta.Incr.gradient_into eng ~sizes:x ~d_mu:0. ~d_var:1.
            ~out:entry.grad_var
      | None ->
          let a = Lazy.force arena in
          Sta.Ssta.forward_raw ?pool ~model a ~sizes:x;
          entry.cmom.(0) <- Sta.Arena.circuit_mu a;
          entry.cmom.(1) <- Sta.Arena.circuit_var a;
          Sta.Ssta.reverse_raw ?pool ~model a ~d_mu:1. ~d_var:0.;
          Sta.Arena.gradient_into a entry.grad_mu;
          Sta.Ssta.reverse_raw ?pool ~model a ~d_mu:0. ~d_var:1.;
          Sta.Arena.gradient_into a entry.grad_var);
      Array.blit x 0 entry.cx 0 n;
      entry.filled <- true;
      entry
    end

(* grad (mu + k*sigma) from the basis gradients. *)
let combine ~k entry =
  let var = circuit_var_of entry in
  let dvar = if k = 0. || var <= 0. then 0. else k /. (2. *. sqrt var) in
  Array.init (Array.length entry.grad_mu) (fun i ->
      entry.grad_mu.(i) +. (dvar *. entry.grad_var.(i)))

let sigma_gradient entry =
  let var = circuit_var_of entry in
  let dvar = if var <= 0. then 0. else 1. /. (2. *. sqrt var) in
  Array.map (fun g -> dvar *. g) entry.grad_var

let area_objective net x =
  let grad = Array.map (fun (g : Netlist.gate) -> g.Netlist.cell.Cell.area) (Netlist.gates net) in
  (Netlist.area net ~sizes:x, grad)

let build_problem ?pool ?timing ?arena ~model net objective =
  let bounds =
    Nlp.Problem.bounds ~lower:(Netlist.min_sizes net) ~upper:(Netlist.max_sizes net)
  in
  let lookup = make_cache ?pool ?timing ?arena ~model net in
  let mu_of = circuit_mu_of in
  let sigma_of e = sqrt (circuit_var_of e) in
  match objective with
  | Objective.Min_area ->
      Nlp.Problem.constrain
        (Nlp.Problem.make ~bounds ~objective:(area_objective net))
        []
  | Objective.Min_delay k ->
      let f x =
        let e = lookup x in
        (mu_of e +. (k *. sigma_of e), combine ~k e)
      in
      Nlp.Problem.constrain (Nlp.Problem.make ~bounds ~objective:f) []
  | Objective.Min_area_bounded { k; bound } | Objective.Min_weighted { k; bound; _ }
    ->
      if bound <= 0. then invalid_arg "Engine: delay bound must be positive";
      let objective_fn =
        match objective with
        | Objective.Min_weighted { weights; _ } ->
            if Array.length weights <> Netlist.n_gates net then
              invalid_arg "Engine: weight vector dimension mismatch";
            fun x ->
              let acc = ref 0. in
              Array.iteri (fun i w -> acc := !acc +. (w *. x.(i))) weights;
              (!acc, Array.copy weights)
        | _ -> area_objective net
      in
      let c x =
        let e = lookup x in
        let g = combine ~k e in
        ( ((mu_of e +. (k *. sigma_of e)) /. bound) -. 1.,
          Array.map (fun gi -> gi /. bound) g )
      in
      Nlp.Problem.constrain
        (Nlp.Problem.make ~bounds ~objective:objective_fn)
        [ Nlp.Problem.le ~name:"delay" c ]
  | Objective.Min_sigma { mu } | Objective.Max_sigma { mu } ->
      if mu <= 0. then invalid_arg "Engine: target mean delay must be positive";
      let sign = match objective with Objective.Max_sigma _ -> -1. | _ -> 1. in
      let f x =
        let e = lookup x in
        (sign *. sigma_of e, Array.map (fun g -> sign *. g) (sigma_gradient e))
      in
      let c x =
        let e = lookup x in
        ((mu_of e /. mu) -. 1., Array.map (fun g -> g /. mu) e.grad_mu)
      in
      Nlp.Problem.constrain
        (Nlp.Problem.make ~bounds ~objective:f)
        [ Nlp.Problem.eq ~name:"mu" c ]

let start_point ~options net =
  let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
  match options.start with
  | `Low -> lo
  | `High -> hi
  | `Mid -> Array.init (Netlist.n_gates net) (fun i -> 0.5 *. (lo.(i) +. hi.(i)))
  | `Given x ->
      Netlist.check_sizes net x;
      Array.copy x

let trivial_solution ?pool ~model net objective sizes started =
  let timing, area = evaluate ?pool ~model net ~sizes in
  {
    objective;
    sizes;
    timing;
    mu = Normal.mu timing.Sta.Ssta.circuit;
    sigma = Normal.sigma timing.Sta.Ssta.circuit;
    area;
    wall_time = Sys.time () -. started;
    evaluations = 1;
    iterations = 0;
    max_violation = 0.;
    converged = true;
    termination = Nlp.Auglag.Converged;
    recovery = [];
  }

(* The ladder retries transient failures; a Deadline exit means the budget
   itself is spent, so there is nothing left to retry with. *)
let retryable = function
  | Nlp.Auglag.Breakdown | Nlp.Auglag.Stalled | Nlp.Auglag.Penalty_ceiling -> true
  | Nlp.Auglag.Converged | Nlp.Auglag.Deadline -> false

(* Between two failed reports, prefer the more feasible, then the lower
   objective (NaNs lose every comparison). *)
let less_broken (a : Nlp.Auglag.report) (b : Nlp.Auglag.report) =
  let key (r : Nlp.Auglag.report) =
    let v = r.Nlp.Auglag.max_violation and f = r.Nlp.Auglag.f in
    ( (if Util.Guard.is_finite v then v else infinity),
      if Util.Guard.is_finite f then f else infinity )
  in
  if key a <= key b then a else b

let baseline_fallback net objective =
  match objective with
  | Objective.Min_delay _ -> Some (Baseline.minimize_delay net).Baseline.sizes
  | Objective.Min_area_bounded { bound; _ } | Objective.Min_weighted { bound; _ } ->
      Some (Baseline.meet_deadline net ~deadline:bound).Baseline.sizes
  | Objective.Min_area | Objective.Min_sigma _ | Objective.Max_sigma _ ->
      (* Min_area never reaches the ladder; the sigma objectives have no
         deterministic counterpart to fall back to. *)
      None

(* The mean-model GP counterpart of a statistical objective: globally
   optimal on the mean, so a strong warm start (and fallback) for the
   nonconvex statistical solve.  [None] when the objective has no GP
   analogue, or when the GP itself could not certify its answer. *)
let gp_sizes net objective =
  let run o =
    let sol = Gp.solve net o in
    match sol.Gp.status with
    | Gp.Optimal -> Some sol.Gp.sizes
    | Gp.Infeasible | Gp.Stalled -> None
  in
  match objective with
  | Objective.Min_delay _ -> run (Gp.Min_delay { area_budget = None })
  | Objective.Min_area_bounded { bound; _ } | Objective.Min_weighted { bound; _ } ->
      run (Gp.Min_area { delay_bound = bound })
  | Objective.Min_area | Objective.Min_sigma _ | Objective.Max_sigma _ -> None

(* Warm-start sizes for [options.warm_start]; takes precedence over
   [options.start] when it produces a point. *)
let warm_start_sizes ~warm net objective =
  match warm with
  | `None -> None
  | `Gp -> gp_sizes net objective
  | `Baseline -> baseline_fallback net objective

let rec solve_impl ?(options = default_options) ?pool ?timing ~model net objective =
  let started = Sys.time () in
  let wall0 = Util.Instr.now_ns () in
  let elapsed () = float_of_int (Util.Instr.now_ns () - wall0) /. 1e9 in
  match objective with
  | Objective.Min_area ->
      (* Every speed factor at its lower bound is optimal: area is strictly
         increasing in every size and there is no delay constraint. *)
      trivial_solution ?pool ~model net objective (Netlist.min_sizes net) started
  | (Objective.Min_sigma { mu } | Objective.Max_sigma { mu })
    when (match options.start with `Given _ -> false | `Low | `Mid | `High -> true) ->
      if mu <= 0. then invalid_arg "Engine: target mean delay must be positive";
      (* The fixed-mean equality constraint fights the sigma objective when
         started far from the feasible manifold (the sigma gradient moves
         the mean away faster than the multipliers pull it back).  Warm
         start from a feasible point: the area-optimal sizing whose delay
         constraint is active at the target mean. *)
      let warm =
        solve_impl ~options:{ options with restarts = 0 } ?pool ?timing ~model net
          (Objective.Min_area_bounded { k = 0.; bound = mu })
      in
      (* A stiff initial penalty keeps the sigma objective from dragging
         the iterate off the feasible manifold and into the box-vertex
         attractors of this nonconvex landscape. *)
      let solver =
        {
          options.solver with
          Nlp.Auglag.initial_penalty = max 100. options.solver.Nlp.Auglag.initial_penalty;
        }
      in
      let remaining_options =
        {
          options with
          start = `Given warm.sizes;
          (* The warm sizing above IS this solve's warm start — a
             [warm_start] request must not override it in the inner
             call (it already shaped the [Min_area_bounded] warm
             solve). *)
          warm_start = `None;
          solver;
          deadline = Option.map (fun d -> Float.max 0. (d -. elapsed ())) options.deadline;
          max_evaluations =
            Option.map (fun m -> max 0 (m - warm.evaluations)) options.max_evaluations;
        }
      in
      let inner =
        solve_impl ~options:remaining_options ?pool ?timing ~model net objective
      in
      {
        inner with
        wall_time = Sys.time () -. started;
        evaluations = warm.evaluations + inner.evaluations;
        recovery = warm.recovery @ inner.recovery;
      }
  | _ ->
      (* One persistent incremental timing engine per solve (or the
         caller's, when sharing across solves): consecutive solver
         evaluations re-time only the changed fan-out cones. *)
      let timing =
        match timing with
        | Some _ as t -> t
        | None -> if options.incremental then Some (Sta.Incr.create ?pool ~model net) else None
      in
      (* One snapshot arena for the final reporting evaluations (never
         the incremental engine's — that one owns its planes). *)
      let snap_arena = lazy (Sta.Arena.create net) in
      let evaluate_snap sizes =
        evaluate ?pool ~arena:(Lazy.force snap_arena) ~model net ~sizes
      in
      let problem = build_problem ?pool ?timing ~model net objective in
      let problem =
        match options.instrument with None -> problem | Some f -> f problem
      in
      let total_evals = ref 0 in
      (* Each attempt gets whatever is left of the overall budget, so the
         deadline bounds the whole ladder, not each rung. *)
      let with_budget (solver : Nlp.Auglag.options) =
        {
          solver with
          Nlp.Auglag.deadline =
            Option.map (fun d -> Float.max 0. (d -. elapsed ())) options.deadline;
          Nlp.Auglag.max_evaluations =
            Option.map (fun m -> max 0 (m - !total_evals)) options.max_evaluations;
        }
      in
      let solve_from ?(solver = options.solver) x0 =
        (* Every attempt — the initial one, multi-start restarts and each
           recovery rung — starts from a wholesale-invalidated timing
           cache: the perturbed/fault-recovery paths must never trust
           state from a failed trajectory, and an objective switch on a
           shared engine gets a full sweep the same way. *)
        Option.iter Sta.Incr.invalidate timing;
        let r = Nlp.Auglag.solve ~options:(with_budget solver) problem ~x0 in
        total_evals := !total_evals + r.Nlp.Auglag.evaluations;
        r
      in
      let attempts = ref [] in
      let record rung (r : Nlp.Auglag.report) =
        attempts :=
          {
            rung;
            outcome = r.Nlp.Auglag.termination;
            breakdown = r.Nlp.Auglag.breakdown;
            violation = r.Nlp.Auglag.max_violation;
            evals = r.Nlp.Auglag.evaluations;
          }
          :: !attempts
      in
      let start =
        match warm_start_sizes ~warm:options.warm_start net objective with
        | Some sizes ->
            (* GP/baseline sizes are already valid sizings; clamp
               defensively so a warm start can never fail the box. *)
            let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
            Array.init (Netlist.n_gates net) (fun i ->
                Util.Numerics.clamp ~lo:lo.(i) ~hi:hi.(i) sizes.(i))
        | None -> start_point ~options net
      in
      let first = solve_from start in
      let better (a : Nlp.Auglag.report) (b : Nlp.Auglag.report) =
        match (a.Nlp.Auglag.converged, b.Nlp.Auglag.converged) with
        | true, false -> a
        | false, true -> b
        | true, true -> if a.Nlp.Auglag.f <= b.Nlp.Auglag.f then a else b
        | false, false -> less_broken a b
      in
      let first =
        if options.restarts <= 0 then first
        else begin
          let rng = Util.Rng.create options.restart_seed in
          let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
          let best = ref first in
          for _ = 1 to options.restarts do
            let x0 =
              Array.init (Netlist.n_gates net) (fun i ->
                  Util.Rng.uniform rng ~lo:lo.(i) ~hi:hi.(i))
            in
            best := better !best (solve_from x0)
          done;
          !best
        end
      in
      (* Recovery ladder: perturbed restart -> other inner solver ->
         gentler penalty growth -> deterministic baseline.  Each rung only
         runs while budget remains and the failure class is retryable. *)
      let budget_left () =
        (match options.deadline with Some d -> elapsed () < d | None -> true)
        && (match options.max_evaluations with
           | Some m -> !total_evals < m
           | None -> true)
      in
      let report, fallback =
        if
          first.Nlp.Auglag.converged
          || (not options.recovery)
          || not (retryable first.Nlp.Auglag.termination)
        then (first, None)
        else begin
          Util.Instr.incr c_recovery;
          record Initial first;
          let rungs =
            [
              ( Perturbed_restart,
                c_rung_perturbed,
                fun () ->
                  let rng = Util.Rng.keyed options.restart_seed ~key:1 in
                  let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
                  let x0 =
                    Array.init (Netlist.n_gates net) (fun i ->
                        Util.Numerics.clamp ~lo:lo.(i) ~hi:hi.(i)
                          (start.(i)
                          +. (0.1 *. (hi.(i) -. lo.(i))
                             *. Util.Rng.uniform rng ~lo:(-1.) ~hi:1.)))
                  in
                  solve_from x0 );
              ( Alternate_solver,
                c_rung_alternate,
                fun () ->
                  let solver =
                    {
                      options.solver with
                      Nlp.Auglag.inner_solver =
                        (match options.solver.Nlp.Auglag.inner_solver with
                        | `Lbfgs -> `Newton Nlp.Newton.default_options
                        | `Newton _ -> `Lbfgs);
                    }
                  in
                  solve_from ~solver start );
              ( Gentler_penalty,
                c_rung_gentler,
                fun () ->
                  let s = options.solver in
                  let solver =
                    {
                      s with
                      Nlp.Auglag.penalty_growth = Float.min 3. s.Nlp.Auglag.penalty_growth;
                      Nlp.Auglag.initial_penalty = Float.max 1. (s.Nlp.Auglag.initial_penalty /. 10.);
                      Nlp.Auglag.violation_decrease = 0.5;
                      Nlp.Auglag.outer_iterations = 2 * s.Nlp.Auglag.outer_iterations;
                    }
                  in
                  solve_from ~solver start );
            ]
          in
          let rec climb best = function
            | [] ->
                (* Solver rungs exhausted: globally-optimal-on-the-mean
                   GP sizing first, then the deterministic baseline, if
                   the objective has either. *)
                if budget_left () then begin
                  match gp_sizes net objective with
                  | Some sizes ->
                      Util.Instr.incr c_rung_gp;
                      (best, Some (Gp_fallback, sizes))
                  | None -> (
                      match baseline_fallback net objective with
                      | Some sizes ->
                          Util.Instr.incr c_rung_baseline;
                          (best, Some (Baseline_fallback, sizes))
                      | None -> (best, None))
                end
                else (best, None)
            | (rung, counter, attempt) :: rest ->
                if not (budget_left ()) then (best, None)
                else begin
                  Util.Instr.incr counter;
                  let r = attempt () in
                  record rung r;
                  if r.Nlp.Auglag.converged then (r, None)
                  else if r.Nlp.Auglag.termination = Nlp.Auglag.Deadline then
                    (better best r, None)
                  else climb (better best r) rest
                end
          in
          climb first rungs
        end
      in
      let recovery = List.rev !attempts in
      let solver_violation = report.Nlp.Auglag.max_violation in
      let solver_f = report.Nlp.Auglag.f in
      let fallback_wins bviol =
        (* The fallbacks target the mean (GP) or worst-case (greedy)
           delay, not the statistical metric, so their point can be
           worse than the best solver iterate; adopt one only when it
           actually is more feasible — or when the solver left nothing
           usable behind. *)
        (not (Util.Guard.is_finite solver_violation))
        || (not (Util.Guard.is_finite solver_f))
        || bviol < solver_violation
      in
      (match fallback with
      | Some (fallback_rung, sizes) ->
          (* Graceful degrade: deterministic sizes, statistical report, and
             the failure trail preserved in [recovery]/[termination]. *)
          let timing, area = evaluate_snap sizes in
          let nc = Normal.mu timing.Sta.Ssta.circuit
          and sc = Normal.sigma timing.Sta.Ssta.circuit in
          let max_violation =
            match objective with
            | Objective.Min_area_bounded { k; bound }
            | Objective.Min_weighted { k; bound; _ } ->
                Float.max 0. (((nc +. (k *. sc)) /. bound) -. 1.)
            | _ -> 0.
          in
          let recovery =
            recovery
            @ [
                {
                  rung = fallback_rung;
                  outcome = Nlp.Auglag.Converged;
                  breakdown = None;
                  violation = max_violation;
                  evals = 0;
                };
              ]
          in
          if not (fallback_wins max_violation) then begin
            let sizes = report.Nlp.Auglag.x in
            let timing, area = evaluate_snap sizes in
            {
              objective;
              sizes;
              timing;
              mu = Normal.mu timing.Sta.Ssta.circuit;
              sigma = Normal.sigma timing.Sta.Ssta.circuit;
              area;
              wall_time = Sys.time () -. started;
              evaluations = !total_evals;
              iterations = report.Nlp.Auglag.inner_iterations;
              max_violation = solver_violation;
              converged = false;
              termination = report.Nlp.Auglag.termination;
              recovery;
            }
          end
          else
            {
              objective;
              sizes;
              timing;
              mu = nc;
              sigma = sc;
              area;
              wall_time = Sys.time () -. started;
              evaluations = !total_evals;
              iterations = 0;
              max_violation;
              converged = false;
              termination = report.Nlp.Auglag.termination;
              recovery;
            }
      | None ->
          let sizes = report.Nlp.Auglag.x in
          let timing, area = evaluate_snap sizes in
          {
            objective;
            sizes;
            timing;
            mu = Normal.mu timing.Sta.Ssta.circuit;
            sigma = Normal.sigma timing.Sta.Ssta.circuit;
            area;
            wall_time = Sys.time () -. started;
            evaluations = !total_evals;
            iterations = report.Nlp.Auglag.inner_iterations;
            max_violation = report.Nlp.Auglag.max_violation;
            converged = report.Nlp.Auglag.converged;
            termination = report.Nlp.Auglag.termination;
            recovery;
          })

let solve ?options ?pool ?timing ~model net objective =
  Util.Instr.incr c_solves;
  (match timing with
  | Some eng when not (Sta.Incr.netlist eng == net) ->
      invalid_arg "Engine.solve: timing engine bound to a different netlist"
  | _ -> ());
  Util.Instr.time t_solve (fun () ->
      solve_impl ?options ?pool ?timing ~model net objective)
