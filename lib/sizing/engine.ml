open Circuit
open Statdelay

type options = {
  solver : Nlp.Auglag.options;
  start : [ `Low | `Mid | `High | `Given of float array ];
  restarts : int;
  restart_seed : int;
}

(* Sizing-tuned solver defaults: speed factors live in [1, limit] and the
   reports carry 2-3 decimals, so a 1e-5 projected-gradient tolerance and a
   1e-8 stagnation threshold stop the flat-valley crawl of large min-delay
   problems without affecting the reported digits. *)
let default_options =
  {
    solver =
      {
        Nlp.Auglag.default_options with
        Nlp.Auglag.inner =
          {
            Nlp.Lbfgs.default_options with
            Nlp.Lbfgs.tolerance = 1e-5;
            Nlp.Lbfgs.f_tolerance = 1e-8;
            Nlp.Lbfgs.max_iterations = 1000;
          };
      };
    start = `Mid;
    restarts = 0;
    restart_seed = 99;
  }

type solution = {
  objective : Objective.t;
  sizes : float array;
  timing : Sta.Ssta.result;
  mu : float;
  sigma : float;
  area : float;
  wall_time : float;
  evaluations : int;
  iterations : int;
  max_violation : float;
  converged : bool;
}

let c_solves = Util.Instr.counter "engine.solve"
let c_cache_hits = Util.Instr.counter "engine.cache_hit"
let c_cache_misses = Util.Instr.counter "engine.cache_miss"
let t_solve = Util.Instr.timer "engine.solve"

let evaluate ?pool ~model net ~sizes =
  let res = Sta.Ssta.analyze ?pool ~model net ~sizes in
  (res, Netlist.area net ~sizes)

(* The reverse sweep is linear in its seed, so the gradient for any
   functional f(mu, var) is df/dmu * grad_mu + df/dvar * grad_var.  One
   cache entry holds the forward result and both basis gradients for the
   most recent point, so objective and constraint closures evaluated at
   the same iterate share the timing analysis. *)
type cache_entry = {
  cx : float array;
  res : Sta.Ssta.result;
  grad_mu : float array;
  grad_var : float array;
}

let make_cache ?pool ~model net =
  let cache : cache_entry option ref = ref None in
  fun x ->
    match !cache with
    | Some e when Array.for_all2 (fun a b -> a = b) e.cx x ->
        Util.Instr.incr c_cache_hits;
        e
    | _ ->
        Util.Instr.incr c_cache_misses;
        let res, grad_mu =
          Sta.Ssta.value_and_gradient ?pool ~model net ~sizes:x ~seed:(fun _ ->
              { Sta.Ssta.d_mu = 1.; d_var = 0. })
        in
        let grad_var =
          Sta.Ssta.gradient ?pool ~model net ~sizes:x ~seed:(fun _ ->
              { Sta.Ssta.d_mu = 0.; d_var = 1. })
        in
        let e = { cx = Array.copy x; res; grad_mu; grad_var } in
        cache := Some e;
        e

(* grad (mu + k*sigma) from the basis gradients. *)
let combine ~k entry =
  let var = Normal.var entry.res.Sta.Ssta.circuit in
  let dvar = if k = 0. || var <= 0. then 0. else k /. (2. *. sqrt var) in
  Array.init (Array.length entry.grad_mu) (fun i ->
      entry.grad_mu.(i) +. (dvar *. entry.grad_var.(i)))

let sigma_gradient entry =
  let var = Normal.var entry.res.Sta.Ssta.circuit in
  let dvar = if var <= 0. then 0. else 1. /. (2. *. sqrt var) in
  Array.map (fun g -> dvar *. g) entry.grad_var

let area_objective net x =
  let grad = Array.map (fun (g : Netlist.gate) -> g.Netlist.cell.Cell.area) (Netlist.gates net) in
  (Netlist.area net ~sizes:x, grad)

let build_problem ?pool ~model net objective =
  let bounds =
    Nlp.Problem.bounds ~lower:(Netlist.min_sizes net) ~upper:(Netlist.max_sizes net)
  in
  let lookup = make_cache ?pool ~model net in
  let mu_of e = Normal.mu e.res.Sta.Ssta.circuit in
  let sigma_of e = Normal.sigma e.res.Sta.Ssta.circuit in
  match objective with
  | Objective.Min_area ->
      Nlp.Problem.constrain
        (Nlp.Problem.make ~bounds ~objective:(area_objective net))
        []
  | Objective.Min_delay k ->
      let f x =
        let e = lookup x in
        (mu_of e +. (k *. sigma_of e), combine ~k e)
      in
      Nlp.Problem.constrain (Nlp.Problem.make ~bounds ~objective:f) []
  | Objective.Min_area_bounded { k; bound } | Objective.Min_weighted { k; bound; _ }
    ->
      if bound <= 0. then invalid_arg "Engine: delay bound must be positive";
      let objective_fn =
        match objective with
        | Objective.Min_weighted { weights; _ } ->
            if Array.length weights <> Netlist.n_gates net then
              invalid_arg "Engine: weight vector dimension mismatch";
            fun x ->
              let acc = ref 0. in
              Array.iteri (fun i w -> acc := !acc +. (w *. x.(i))) weights;
              (!acc, Array.copy weights)
        | _ -> area_objective net
      in
      let c x =
        let e = lookup x in
        let g = combine ~k e in
        ( ((mu_of e +. (k *. sigma_of e)) /. bound) -. 1.,
          Array.map (fun gi -> gi /. bound) g )
      in
      Nlp.Problem.constrain
        (Nlp.Problem.make ~bounds ~objective:objective_fn)
        [ Nlp.Problem.le ~name:"delay" c ]
  | Objective.Min_sigma { mu } | Objective.Max_sigma { mu } ->
      if mu <= 0. then invalid_arg "Engine: target mean delay must be positive";
      let sign = match objective with Objective.Max_sigma _ -> -1. | _ -> 1. in
      let f x =
        let e = lookup x in
        (sign *. sigma_of e, Array.map (fun g -> sign *. g) (sigma_gradient e))
      in
      let c x =
        let e = lookup x in
        ((mu_of e /. mu) -. 1., Array.map (fun g -> g /. mu) e.grad_mu)
      in
      Nlp.Problem.constrain
        (Nlp.Problem.make ~bounds ~objective:f)
        [ Nlp.Problem.eq ~name:"mu" c ]

let start_point ~options net =
  let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
  match options.start with
  | `Low -> lo
  | `High -> hi
  | `Mid -> Array.init (Netlist.n_gates net) (fun i -> 0.5 *. (lo.(i) +. hi.(i)))
  | `Given x ->
      Netlist.check_sizes net x;
      Array.copy x

let trivial_solution ?pool ~model net objective sizes started =
  let timing, area = evaluate ?pool ~model net ~sizes in
  {
    objective;
    sizes;
    timing;
    mu = Normal.mu timing.Sta.Ssta.circuit;
    sigma = Normal.sigma timing.Sta.Ssta.circuit;
    area;
    wall_time = Sys.time () -. started;
    evaluations = 1;
    iterations = 0;
    max_violation = 0.;
    converged = true;
  }

let rec solve_impl ?(options = default_options) ?pool ~model net objective =
  let started = Sys.time () in
  match objective with
  | Objective.Min_area ->
      (* Every speed factor at its lower bound is optimal: area is strictly
         increasing in every size and there is no delay constraint. *)
      trivial_solution ?pool ~model net objective (Netlist.min_sizes net) started
  | (Objective.Min_sigma { mu } | Objective.Max_sigma { mu })
    when (match options.start with `Given _ -> false | `Low | `Mid | `High -> true) ->
      if mu <= 0. then invalid_arg "Engine: target mean delay must be positive";
      (* The fixed-mean equality constraint fights the sigma objective when
         started far from the feasible manifold (the sigma gradient moves
         the mean away faster than the multipliers pull it back).  Warm
         start from a feasible point: the area-optimal sizing whose delay
         constraint is active at the target mean. *)
      let warm =
        solve_impl ~options:{ options with restarts = 0 } ?pool ~model net
          (Objective.Min_area_bounded { k = 0.; bound = mu })
      in
      (* A stiff initial penalty keeps the sigma objective from dragging
         the iterate off the feasible manifold and into the box-vertex
         attractors of this nonconvex landscape. *)
      let solver =
        {
          options.solver with
          Nlp.Auglag.initial_penalty = max 100. options.solver.Nlp.Auglag.initial_penalty;
        }
      in
      let inner =
        solve_impl
          ~options:{ options with start = `Given warm.sizes; solver }
          ?pool ~model net objective
      in
      { inner with wall_time = Sys.time () -. started }
  | _ ->
      let problem = build_problem ?pool ~model net objective in
      let solve_from x0 = Nlp.Auglag.solve ~options:options.solver problem ~x0 in
      let first = solve_from (start_point ~options net) in
      let better (a : Nlp.Auglag.report) (b : Nlp.Auglag.report) =
        match (a.Nlp.Auglag.converged, b.Nlp.Auglag.converged) with
        | true, false -> a
        | false, true -> b
        | _ -> if a.Nlp.Auglag.f <= b.Nlp.Auglag.f then a else b
      in
      let report =
        if options.restarts <= 0 then first
        else begin
          let rng = Util.Rng.create options.restart_seed in
          let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
          let best = ref first in
          for _ = 1 to options.restarts do
            let x0 =
              Array.init (Netlist.n_gates net) (fun i ->
                  Util.Rng.uniform rng ~lo:lo.(i) ~hi:hi.(i))
            in
            best := better !best (solve_from x0)
          done;
          !best
        end
      in
      let sizes = report.Nlp.Auglag.x in
      let timing, area = evaluate ?pool ~model net ~sizes in
      {
        objective;
        sizes;
        timing;
        mu = Normal.mu timing.Sta.Ssta.circuit;
        sigma = Normal.sigma timing.Sta.Ssta.circuit;
        area;
        wall_time = Sys.time () -. started;
        evaluations = report.Nlp.Auglag.evaluations;
        iterations = report.Nlp.Auglag.inner_iterations;
        max_violation = report.Nlp.Auglag.max_violation;
        converged = report.Nlp.Auglag.converged;
      }

let solve ?options ?pool ~model net objective =
  Util.Instr.incr c_solves;
  Util.Instr.time t_solve (fun () -> solve_impl ?options ?pool ~model net objective)
