open Circuit
open Statdelay

type operand = Const of Normal.t | Vars of { mu : int; var : int }

type max_step = { a : operand; b : operand; out_mu : int; out_var : int }

type t = {
  net : Netlist.t;
  model : Sigma_model.t;
  objective : Objective.t;
  pi_arrival : int -> Normal.t;
  dim : int;
  s_ix : int array;  (* speed factor variable per gate *)
  mu_t_ix : int array;
  var_t_ix : int array;
  mu_arr_ix : int array;  (* arrival mean variable per gate *)
  var_arr_ix : int array;
  u_of : operand array;  (* input-max operand per gate *)
  max_steps : max_step list;  (* all intermediate two-operand maxima *)
  tmax : operand;  (* circuit-level distribution *)
  problem : Nlp.Problem.constrained;
  arena : Sta.Arena.t;  (* reused by every forward evaluation on [net] *)
}

let operand_value x = function
  | Const n -> n
  | Vars { mu; var } -> Normal.of_var ~mu:x.(mu) ~var:(max 0. x.(var))

(* ---- constraint builders ------------------------------------------------ *)

(* The gate-delay equality constraint.  [linearized = true] is the paper's
   eq. 15 (multiplied through by S so most terms are linear):
     mu_t * S - t_int * S - c*(wire + sum m*C_in*S_c) = 0
   [linearized = false] is the raw eq. 14 with the 1/S nonlinearity:
     mu_t - t_int - c*(wire + sum m*C_in*S_c)/S = 0
   Both define the same feasible set; the paper reports the former solves
   faster, which the A-FORM ablation bench measures. *)
let delay_constraint ~linearized net (g : Netlist.gate) ~s_ix ~mu_t_ix ~dim =
  let id = g.Netlist.id in
  let cell = g.Netlist.cell in
  let consumers =
    List.map
      (fun (c, m) ->
        let cc = Netlist.gate net c in
        (s_ix.(c), float_of_int m *. cc.Netlist.cell.Cell.c_in))
      (Netlist.fanout net id)
  in
  let eval x =
    let s = x.(s_ix.(id)) and mu_t = x.(mu_t_ix.(id)) in
    let cap =
      List.fold_left (fun acc (ix, w) -> acc +. (w *. x.(ix))) g.Netlist.wire_load
        consumers
    in
    let grad = Array.make dim 0. in
    if linearized then begin
      let v = (mu_t *. s) -. (cell.Cell.t_int *. s) -. (cell.Cell.drive *. cap) in
      grad.(mu_t_ix.(id)) <- s;
      grad.(s_ix.(id)) <- mu_t -. cell.Cell.t_int;
      List.iter
        (fun (ix, w) -> grad.(ix) <- grad.(ix) -. (cell.Cell.drive *. w))
        consumers;
      (v, grad)
    end
    else begin
      let v = mu_t -. cell.Cell.t_int -. (cell.Cell.drive *. cap /. s) in
      grad.(mu_t_ix.(id)) <- 1.;
      grad.(s_ix.(id)) <- cell.Cell.drive *. cap /. (s *. s);
      List.iter
        (fun (ix, w) -> grad.(ix) <- grad.(ix) -. (cell.Cell.drive *. w /. s))
        consumers;
      (v, grad)
    end
  in
  Nlp.Problem.eq ~name:(Printf.sprintf "delay[%s]" g.Netlist.gate_name) eval

(* eq. 16: var_t - f(mu_t)^2 = 0 *)
let sigma_constraint model (g : Netlist.gate) ~mu_t_ix ~var_t_ix ~dim =
  let id = g.Netlist.id in
  let eval x =
    let mu_t = x.(mu_t_ix.(id)) in
    let v = x.(var_t_ix.(id)) -. Sigma_model.var model mu_t in
    let grad = Array.make dim 0. in
    grad.(var_t_ix.(id)) <- 1.;
    grad.(mu_t_ix.(id)) <- -.Sigma_model.dvar_dmu model mu_t;
    (v, grad)
  in
  Nlp.Problem.eq ~name:(Printf.sprintf "sigma[%s]" g.Netlist.gate_name) eval

(* eq. 4: mu_T - mu_U - mu_t = 0 and var_T - var_U - var_t = 0 *)
let add_constraints (g : Netlist.gate) ~u ~mu_t_ix ~var_t_ix ~mu_arr_ix ~var_arr_ix ~dim
    =
  let id = g.Netlist.id in
  let mu_eval x =
    let u_val = operand_value x u in
    let v = x.(mu_arr_ix.(id)) -. Normal.mu u_val -. x.(mu_t_ix.(id)) in
    let grad = Array.make dim 0. in
    grad.(mu_arr_ix.(id)) <- 1.;
    grad.(mu_t_ix.(id)) <- -1.;
    (match u with Vars { mu; _ } -> grad.(mu) <- -1. | Const _ -> ());
    (v, grad)
  in
  let var_eval x =
    let u_val = operand_value x u in
    let v = x.(var_arr_ix.(id)) -. Normal.var u_val -. x.(var_t_ix.(id)) in
    let grad = Array.make dim 0. in
    grad.(var_arr_ix.(id)) <- 1.;
    grad.(var_t_ix.(id)) <- -1.;
    (match u with Vars { var; _ } -> grad.(var) <- -1. | Const _ -> ());
    (v, grad)
  in
  [
    Nlp.Problem.eq ~name:(Printf.sprintf "add_mu[%s]" g.Netlist.gate_name) mu_eval;
    Nlp.Problem.eq ~name:(Printf.sprintf "add_var[%s]" g.Netlist.gate_name) var_eval;
  ]

(* out = max(a, b): two equality constraints with Clark Jacobians. *)
let max_constraints step ~dim =
  let spread grad (op : operand) ~dmu ~dvar =
    match op with
    | Const _ -> ()
    | Vars { mu; var } ->
        grad.(mu) <- grad.(mu) -. dmu;
        grad.(var) <- grad.(var) -. dvar
  in
  let mu_eval x =
    let a = operand_value x step.a and b = operand_value x step.b in
    let c, p = Clark.max2_full a b in
    let v = x.(step.out_mu) -. Normal.mu c in
    let grad = Array.make dim 0. in
    grad.(step.out_mu) <- 1.;
    spread grad step.a ~dmu:p.Clark.dmu_dmu_a ~dvar:p.Clark.dmu_dvar_a;
    spread grad step.b ~dmu:p.Clark.dmu_dmu_b ~dvar:p.Clark.dmu_dvar_b;
    (v, grad)
  in
  let var_eval x =
    let a = operand_value x step.a and b = operand_value x step.b in
    let c, p = Clark.max2_full a b in
    let v = x.(step.out_var) -. Normal.var c in
    let grad = Array.make dim 0. in
    grad.(step.out_var) <- 1.;
    spread grad step.a ~dmu:p.Clark.dvar_dmu_a ~dvar:p.Clark.dvar_dvar_a;
    spread grad step.b ~dmu:p.Clark.dvar_dmu_b ~dvar:p.Clark.dvar_dvar_b;
    (v, grad)
  in
  [ Nlp.Problem.eq ~name:"max_mu" mu_eval; Nlp.Problem.eq ~name:"max_var" var_eval ]

(* ---- build -------------------------------------------------------------- *)

let build ?(pi_arrival = fun _ -> Normal.deterministic 0.) ?(linearized = true) ~model
    net objective =
  (match objective with
  | Objective.Min_area ->
      invalid_arg "Formulate.build: unconstrained Min_area needs no NLP"
  | _ -> ());
  let n = Netlist.n_gates net in
  let counter = ref 0 in
  let fresh () =
    let i = !counter in
    incr counter;
    i
  in
  let s_ix = Array.init n (fun _ -> fresh ()) in
  let mu_t_ix = Array.init n (fun _ -> fresh ()) in
  let var_t_ix = Array.init n (fun _ -> fresh ()) in
  let mu_arr_ix = Array.init n (fun _ -> fresh ()) in
  let var_arr_ix = Array.init n (fun _ -> fresh ()) in
  let max_steps = ref [] in
  (* Fold a list of operands with two-operand maxima; constant pairs are
     folded at build time, mixed pairs allocate output variables. *)
  let fold_max operands =
    List.fold_left
      (fun acc op ->
        match (acc, op) with
        | Const a, Const b -> Const (Clark.max2 a b)
        | a, b ->
            let out_mu = fresh () and out_var = fresh () in
            max_steps := { a; b; out_mu; out_var } :: !max_steps;
            Vars { mu = out_mu; var = out_var })
      (List.hd operands) (List.tl operands)
  in
  let arrival_operand = function
    | Netlist.Pi i -> Const (pi_arrival i)
    | Netlist.Gate g -> Vars { mu = mu_arr_ix.(g); var = var_arr_ix.(g) }
  in
  let u_of =
    Array.map
      (fun (g : Netlist.gate) ->
        fold_max (Array.to_list (Array.map arrival_operand g.Netlist.fanin)))
      (Netlist.gates net)
  in
  let tmax =
    fold_max (Array.to_list (Array.map arrival_operand (Netlist.pos net)))
  in
  let dim = !counter in
  (* Bounds: speed factors in [1, limit]; variance variables >= 0; means free. *)
  let lower = Array.make dim neg_infinity and upper = Array.make dim infinity in
  Array.iter
    (fun (g : Netlist.gate) ->
      lower.(s_ix.(g.Netlist.id)) <- 1.;
      upper.(s_ix.(g.Netlist.id)) <- g.Netlist.cell.Cell.max_size;
      lower.(var_t_ix.(g.Netlist.id)) <- 0.;
      lower.(var_arr_ix.(g.Netlist.id)) <- 0.)
    (Netlist.gates net);
  List.iter (fun st -> lower.(st.out_var) <- 0.) !max_steps;
  let bounds = Nlp.Problem.bounds ~lower ~upper in
  (* Objective over (tmax, sizes). *)
  let tmax_value x = operand_value x tmax in
  let guard_band k x =
    let c = tmax_value x in
    let var = Normal.var c in
    let sigma = sqrt (max 0. var) in
    let value = Normal.mu c +. (k *. sigma) in
    let grad = Array.make dim 0. in
    (match tmax with
    | Vars { mu; var = var_ix } ->
        grad.(mu) <- 1.;
        grad.(var_ix) <- (if k = 0. || sigma <= 0. then 0. else k /. (2. *. sigma))
    | Const _ -> ());
    (value, grad)
  in
  let area_objective x =
    let grad = Array.make dim 0. in
    let v = ref 0. in
    Array.iter
      (fun (g : Netlist.gate) ->
        let a = g.Netlist.cell.Cell.area in
        grad.(s_ix.(g.Netlist.id)) <- a;
        v := !v +. (a *. x.(s_ix.(g.Netlist.id))))
      (Netlist.gates net);
    (!v, grad)
  in
  let sigma_objective sign x =
    let c = tmax_value x in
    let sigma = sqrt (max 0. (Normal.var c)) in
    let grad = Array.make dim 0. in
    (match tmax with
    | Vars { var = var_ix; _ } ->
        grad.(var_ix) <- (if sigma <= 0. then 0. else sign /. (2. *. sigma))
    | Const _ -> ());
    (sign *. sigma, grad)
  in
  let mu_constraint target x =
    let c = tmax_value x in
    let grad = Array.make dim 0. in
    (match tmax with
    | Vars { mu; _ } -> grad.(mu) <- 1. /. target
    | Const _ -> ());
    ((Normal.mu c /. target) -. 1., grad)
  in
  let objective_fn, extra_constraints =
    match objective with
    | Objective.Min_area -> assert false
    | Objective.Min_delay k -> (guard_band k, [])
    | Objective.Min_area_bounded { k; bound } ->
        ( area_objective,
          [
            Nlp.Problem.le ~name:"delay_bound" (fun x ->
                let v, g = guard_band k x in
                ((v /. bound) -. 1., Array.map (fun gi -> gi /. bound) g));
          ] )
    | Objective.Min_sigma { mu } ->
        (sigma_objective 1., [ Nlp.Problem.eq ~name:"mu_target" (mu_constraint mu) ])
    | Objective.Max_sigma { mu } ->
        (sigma_objective (-1.), [ Nlp.Problem.eq ~name:"mu_target" (mu_constraint mu) ])
    | Objective.Min_weighted { weights; k; bound; _ } ->
        if Array.length weights <> n then
          invalid_arg "Formulate.build: weight vector dimension mismatch";
        let weighted x =
          let grad = Array.make dim 0. in
          let v = ref 0. in
          Array.iter
            (fun (g : Netlist.gate) ->
              let w = weights.(g.Netlist.id) in
              grad.(s_ix.(g.Netlist.id)) <- w;
              v := !v +. (w *. x.(s_ix.(g.Netlist.id))))
            (Netlist.gates net);
          (!v, grad)
        in
        ( weighted,
          [
            Nlp.Problem.le ~name:"delay_bound" (fun x ->
                let v, g = guard_band k x in
                ((v /. bound) -. 1., Array.map (fun gi -> gi /. bound) g));
          ] )
  in
  let structural =
    List.concat
      [
        Array.to_list
          (Array.map (fun g -> delay_constraint ~linearized net g ~s_ix ~mu_t_ix ~dim)
             (Netlist.gates net));
        Array.to_list
          (Array.map (fun g -> sigma_constraint model g ~mu_t_ix ~var_t_ix ~dim)
             (Netlist.gates net));
        List.concat_map
          (fun (g : Netlist.gate) ->
            add_constraints g ~u:u_of.(g.Netlist.id) ~mu_t_ix ~var_t_ix ~mu_arr_ix
              ~var_arr_ix ~dim)
          (Array.to_list (Netlist.gates net));
        List.concat_map (fun st -> max_constraints st ~dim) !max_steps;
      ]
  in
  let problem =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds ~objective:objective_fn)
      (structural @ extra_constraints)
  in
  {
    net;
    model;
    objective;
    pi_arrival;
    dim;
    s_ix;
    mu_t_ix;
    var_t_ix;
    mu_arr_ix;
    var_arr_ix;
    u_of;
    max_steps = !max_steps;
    tmax;
    problem;
    arena = Sta.Arena.create net;
  }

let n_variables t = t.dim
let n_constraints t = Array.length t.problem.Nlp.Problem.constraints
let problem t = t.problem

let sizes_of t x = Array.map (fun ix -> x.(ix)) t.s_ix

let consistent_point t ~sizes =
  let net = t.net in
  Netlist.check_sizes net sizes;
  let res =
    Sta.Ssta.analyze ~arena:t.arena ~pi_arrival:t.pi_arrival ~model:t.model net
      ~sizes
  in
  let x = Array.make t.dim 0. in
  Array.iteri (fun g ix -> x.(ix) <- sizes.(g)) t.s_ix;
  Array.iteri
    (fun g ix -> x.(ix) <- Normal.mu res.Sta.Ssta.gate_delay.(g))
    t.mu_t_ix;
  Array.iteri
    (fun g ix -> x.(ix) <- Normal.var res.Sta.Ssta.gate_delay.(g))
    t.var_t_ix;
  Array.iteri (fun g ix -> x.(ix) <- Normal.mu res.Sta.Ssta.arrival.(g)) t.mu_arr_ix;
  Array.iteri (fun g ix -> x.(ix) <- Normal.var res.Sta.Ssta.arrival.(g)) t.var_arr_ix;
  (* Make the intermediate max variables consistent: evaluate each recorded
     step given the already-filled inputs.  Steps were pushed in topological
     order, so replay them oldest-first. *)
  List.iter
    (fun st ->
      let a = operand_value x st.a and b = operand_value x st.b in
      let c = Clark.max2 a b in
      x.(st.out_mu) <- Normal.mu c;
      x.(st.out_var) <- Normal.var c)
    (List.rev t.max_steps);
  x

let initial_point t start =
  let net = t.net in
  let lo = Netlist.min_sizes net and hi = Netlist.max_sizes net in
  let sizes =
    match start with
    | `Low -> lo
    | `High -> hi
    | `Mid -> Array.init (Netlist.n_gates net) (fun i -> 0.5 *. (lo.(i) +. hi.(i)))
  in
  consistent_point t ~sizes

(* The auxiliary-variable NLP is larger and much worse conditioned than the
   reduced problem; the first-order inner solver needs thousands of
   iterations and can stall, while the trust-region Newton-CG solves it in
   tens — matching the paper's observation that LANCELOT needs second-order
   information to deal with these highly nonlinear constraints
   efficiently.  So the full formulation defaults to the second-order
   inner solver. *)
let default_solver_options =
  {
    Nlp.Auglag.default_options with
    Nlp.Auglag.inner_solver =
      `Newton { Nlp.Newton.default_options with Nlp.Newton.max_iterations = 500 };
  }

let solve ?(solver = default_solver_options) ?(start = `Mid) t =
  let started = Sys.time () in
  let x0 = initial_point t start in
  let report = Nlp.Auglag.solve ~options:solver t.problem ~x0 in
  let sizes = sizes_of t report.Nlp.Auglag.x in
  (* Clip rounding noise and re-evaluate with the forward engine. *)
  Array.iteri
    (fun g s ->
      let cell = (Netlist.gate t.net g).Netlist.cell in
      sizes.(g) <- Util.Numerics.clamp ~lo:1. ~hi:cell.Cell.max_size s)
    sizes;
  let timing, area = Engine.evaluate ~arena:t.arena ~model:t.model t.net ~sizes in
  {
    Engine.objective = t.objective;
    sizes;
    timing;
    mu = Normal.mu timing.Sta.Ssta.circuit;
    sigma = Normal.sigma timing.Sta.Ssta.circuit;
    area;
    wall_time = Sys.time () -. started;
    evaluations = report.Nlp.Auglag.evaluations;
    iterations = report.Nlp.Auglag.inner_iterations;
    max_violation = report.Nlp.Auglag.max_violation;
    converged = report.Nlp.Auglag.converged;
    termination = report.Nlp.Auglag.termination;
    recovery = [];
  }
