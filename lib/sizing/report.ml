open Util

let cpu_string seconds =
  if seconds >= 60. then
    let minutes = int_of_float (seconds /. 60.) in
    Printf.sprintf "%d m %.1f s" minutes (seconds -. (60. *. float_of_int minutes))
  else Printf.sprintf "%.1f s" seconds

let split_objective (o : Objective.t) =
  match o with
  | Objective.Min_area -> ("sum S_i", "")
  | Objective.Min_delay k -> (Printf.sprintf "min %s" (Objective.metric_name k), "")
  | Objective.Min_area_bounded { k; bound } ->
      ("sum S_i", Printf.sprintf "%s <= %g" (Objective.metric_name k) bound)
  | Objective.Min_sigma { mu } -> ("min sigma", Printf.sprintf "mu = %g" mu)
  | Objective.Max_sigma { mu } -> ("max sigma", Printf.sprintf "mu = %g" mu)
  | Objective.Min_weighted { label; k; bound; _ } ->
      ("min " ^ label, Printf.sprintf "%s <= %g" (Objective.metric_name k) bound)

let row (s : Engine.solution) =
  let minimize, constr = split_objective s.Engine.objective in
  [
    minimize;
    constr;
    Table.fmt_float ~decimals:2 s.Engine.mu;
    Table.fmt_float ~decimals:3 s.Engine.sigma;
    Table.fmt_float ~decimals:0 s.Engine.area;
    cpu_string s.Engine.wall_time;
  ]

let header = [ "minimize"; "constraint"; "muTmax"; "sigmaTmax"; "sum S_i"; "CPU" ]

let table ~name solutions =
  let t = Table.create ~header:("name" :: header) in
  for i = 0 to 6 do
    Table.set_align t i (if i <= 2 then Table.Left else Table.Right)
  done;
  List.iteri
    (fun i s -> Table.add_row t ((if i = 0 then name else "") :: row s))
    solutions;
  t

let speed_factors net (s : Engine.solution) =
  Array.to_list
    (Array.map
       (fun (g : Circuit.Netlist.gate) ->
         (g.Circuit.Netlist.gate_name, s.Engine.sizes.(g.Circuit.Netlist.id)))
       (Circuit.Netlist.gates net))

let pp_solution ppf (s : Engine.solution) =
  Format.fprintf ppf "%s: mu=%.3f sigma=%.4f area=%.1f%s%s (%s)"
    (Objective.describe s.Engine.objective)
    s.Engine.mu s.Engine.sigma s.Engine.area
    (if s.Engine.converged then ""
     else
       Printf.sprintf " [NOT CONVERGED: %s]"
         (Nlp.Auglag.termination_name s.Engine.termination))
    (match s.Engine.recovery with
    | [] -> ""
    | rungs ->
        Printf.sprintf " [recovery: %s]"
          (String.concat " -> " (List.map (fun a -> Engine.rung_name a.Engine.rung) rungs)))
    (cpu_string s.Engine.wall_time)

(* Machine-readable failure diagnosis for the CLI: what stopped the solve,
   which ladder rungs ran, and the typed breakdown when a guard fired. *)
let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Util.Guard.is_finite f then Printf.sprintf "%.6g" f else Printf.sprintf "\"%h\"" f

let diagnosis_json (s : Engine.solution) =
  let b = Buffer.create 256 in
  Buffer.add_string b "{";
  Buffer.add_string b
    (Printf.sprintf "\"status\": %S, " (if s.Engine.converged then "ok" else "failed"));
  Buffer.add_string b
    (Printf.sprintf "\"termination\": %S, "
       (Nlp.Auglag.termination_name s.Engine.termination));
  Buffer.add_string b
    (Printf.sprintf "\"max_violation\": %s, " (json_float s.Engine.max_violation));
  Buffer.add_string b (Printf.sprintf "\"evaluations\": %d, " s.Engine.evaluations);
  let breakdown =
    List.find_map (fun (a : Engine.attempt) -> a.Engine.breakdown) s.Engine.recovery
  in
  (match breakdown with
  | None -> ()
  | Some bd ->
      Buffer.add_string b
        (Printf.sprintf "\"breakdown\": {\"component\": %d, \"fault\": \"%s\", \"eval\": %d}, "
           (Nlp.Problem.component_index bd.Nlp.Problem.b_component)
           (json_escape (Format.asprintf "%a" Nlp.Problem.pp_fault bd.Nlp.Problem.b_fault))
           bd.Nlp.Problem.b_eval));
  Buffer.add_string b "\"recovery\": [";
  List.iteri
    (fun i (a : Engine.attempt) ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"rung\": %S, \"outcome\": %S, \"violation\": %s, \"evaluations\": %d}"
           (Engine.rung_name a.Engine.rung)
           (Nlp.Auglag.termination_name a.Engine.outcome)
           (json_float a.Engine.violation) a.Engine.evals))
    s.Engine.recovery;
  Buffer.add_string b "]}";
  Buffer.contents b
