open Util

let cpu_string seconds =
  if seconds >= 60. then
    let minutes = int_of_float (seconds /. 60.) in
    Printf.sprintf "%d m %.1f s" minutes (seconds -. (60. *. float_of_int minutes))
  else Printf.sprintf "%.1f s" seconds

let split_objective (o : Objective.t) =
  match o with
  | Objective.Min_area -> ("sum S_i", "")
  | Objective.Min_delay k -> (Printf.sprintf "min %s" (Objective.metric_name k), "")
  | Objective.Min_area_bounded { k; bound } ->
      ("sum S_i", Printf.sprintf "%s <= %g" (Objective.metric_name k) bound)
  | Objective.Min_sigma { mu } -> ("min sigma", Printf.sprintf "mu = %g" mu)
  | Objective.Max_sigma { mu } -> ("max sigma", Printf.sprintf "mu = %g" mu)
  | Objective.Min_weighted { label; k; bound; _ } ->
      ("min " ^ label, Printf.sprintf "%s <= %g" (Objective.metric_name k) bound)

let row (s : Engine.solution) =
  let minimize, constr = split_objective s.Engine.objective in
  [
    minimize;
    constr;
    Table.fmt_float ~decimals:2 s.Engine.mu;
    Table.fmt_float ~decimals:3 s.Engine.sigma;
    Table.fmt_float ~decimals:0 s.Engine.area;
    cpu_string s.Engine.wall_time;
  ]

let header = [ "minimize"; "constraint"; "muTmax"; "sigmaTmax"; "sum S_i"; "CPU" ]

let table ~name solutions =
  let t = Table.create ~header:("name" :: header) in
  for i = 0 to 6 do
    Table.set_align t i (if i <= 2 then Table.Left else Table.Right)
  done;
  List.iteri
    (fun i s -> Table.add_row t ((if i = 0 then name else "") :: row s))
    solutions;
  t

let speed_factors net (s : Engine.solution) =
  Array.to_list
    (Array.map
       (fun (g : Circuit.Netlist.gate) ->
         (g.Circuit.Netlist.gate_name, s.Engine.sizes.(g.Circuit.Netlist.id)))
       (Circuit.Netlist.gates net))

let pp_solution ppf (s : Engine.solution) =
  Format.fprintf ppf "%s: mu=%.3f sigma=%.4f area=%.1f%s (%s)"
    (Objective.describe s.Engine.objective)
    s.Engine.mu s.Engine.sigma s.Engine.area
    (if s.Engine.converged then "" else " [NOT CONVERGED]")
    (cpu_string s.Engine.wall_time)
