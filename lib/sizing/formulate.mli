(** The paper's full gate-sizing NLP (equation 17 / worked example eq. 18).

    Unlike the reduced-space {!Engine}, this module materialises the
    formulation exactly as the paper hands it to LANCELOT: one variable
    per speed factor {e and} per auxiliary timing quantity
    ({m \mu_{t}, \sigma_t^2, \mu_T, \sigma_T^2} per gate, plus one
    {m (\mu, \sigma^2)} pair per intermediate two-operand max), tied
    together with equality constraints:

    - the linearised delay equation
      {m \mu_t S = t_{int} S + c (C_{load} + \sum C_{in} S_i)} (eq. 15 —
      the multiplication through by {m S_{cell}} that the paper performs
      to keep more constraint terms linear),
    - the sigma model {m \sigma_t^2 = f(\mu_t)^2} (eq. 16),
    - the stochastic addition {m \mu_T = \mu_U + \mu_t},
      {m \sigma_T^2 = \sigma_U^2 + \sigma_t^2} (eq. 4),
    - one pair of constraints per two-operand max,
      {m \mu = \max_\mu(\cdot)}, {m \sigma^2 = \max_{\sigma^2}(\cdot)},
      with analytic Jacobians from {!Statdelay.Clark.max2_full}.

    Variances (never standard deviations) are the variables, as the paper
    recommends.  Maxima whose operands are all primary-input constants are
    folded at build time.

    This formulation is intended for small circuits (the worked example
    and the tree benchmark); the test-suite verifies it agrees with the
    reduced engine. *)

type t

val build :
  ?pi_arrival:(int -> Statdelay.Normal.t) ->
  ?linearized:bool ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  Objective.t ->
  t
(** Compiles the formulation.  [Objective.Min_area] (no delay constraint)
    is rejected with [Invalid_argument] — it needs no NLP.

    [linearized] (default [true]) selects the gate-delay constraint form:
    the paper's eq. 15 ({m \mu_t S = t_{int} S + c(\ldots)}, mostly linear
    terms) versus the raw eq. 14 with the {m 1/S} nonlinearity.  The
    feasible set is identical; the paper multiplies through by {m S} for
    solver efficiency, and the A-FORM ablation measures that choice. *)

val n_variables : t -> int
(** Total NLP variables: speed factors plus all auxiliary timing
    quantities (the worked example has 26). *)

val n_constraints : t -> int
(** Equality constraints tying the auxiliary variables together (the
    worked example has 22). *)

val problem : t -> Nlp.Problem.constrained
(** The underlying NLP (for inspection or custom solving). *)

val consistent_point : t -> sizes:float array -> float array
(** [consistent_point t ~sizes] is the full variable vector whose
    auxiliary timing variables are made consistent with the given speed
    factors by a forward SSTA pass — i.e. a point on the feasible
    manifold of the structural equality constraints (feasible for
    everything except, possibly, the delay bound).  This is how the test
    suite manufactures {e random} feasible points for gradient checks. *)

val initial_point : t -> [ `Low | `Mid | `High ] -> float array
(** {!consistent_point} at the all-min, mid-box or all-max speed
    factors. *)

val sizes_of : t -> float array -> float array
(** Extracts the speed factors from a full variable vector. *)

val default_solver_options : Nlp.Auglag.options
(** {!Nlp.Auglag.default_options} with a larger inner iteration budget —
    the auxiliary-variable NLP is bigger and worse conditioned than the
    reduced problem. *)

val solve :
  ?solver:Nlp.Auglag.options ->
  ?start:[ `Low | `Mid | `High ] ->
  t ->
  Engine.solution
(** Solves with the augmented-Lagrangian solver and re-evaluates the
    timing of the extracted sizes with the forward SSTA. *)
