type point = { bound : float; solution : Engine.solution }

type curve = {
  net : Circuit.Netlist.t;
  k : float;
  mu_fast : float;
  mu_slow : float;
  points : point list;
}

let area_delay ?options ?(model = Circuit.Sigma_model.paper_default) ?(k = 0.)
    ?(points = 5) net =
  if points < 2 then invalid_arg "Sweep.area_delay: need at least two points";
  let fastest = Engine.solve ?options ~model net (Objective.Min_delay k) in
  let slowest = Engine.solve ?options ~model net Objective.Min_area in
  let metric (s : Engine.solution) = s.Engine.mu +. (k *. s.Engine.sigma) in
  let lo = metric fastest and hi = metric slowest in
  (* Margins keep every budget strictly feasible: the fast end of the curve
     is only reachable in the limit. *)
  let lo = lo +. (0.02 *. (hi -. lo)) and hi = hi -. (0.02 *. (hi -. lo)) in
  let budgets = Util.Numerics.linspace hi lo points in
  let points =
    Array.to_list
      (Array.map
         (fun bound ->
           {
             bound;
             solution =
               Engine.solve ?options ~model net (Objective.Min_area_bounded { k; bound });
           })
         budgets)
  in
  {
    net;
    k;
    mu_fast = fastest.Engine.mu;
    mu_slow = slowest.Engine.mu;
    points;
  }

let print curve =
  Printf.printf "# area-delay curve: %s, metric %s, feasible mu range [%.2f, %.2f]\n"
    (Circuit.Netlist.name curve.net)
    (Objective.metric_name curve.k)
    curve.mu_fast curve.mu_slow;
  let t =
    Util.Table.create ~header:[ "budget D"; "muTmax"; "sigmaTmax"; "sum S_i"; "CPU" ]
  in
  for i = 0 to 4 do
    Util.Table.set_align t i Util.Table.Right
  done;
  List.iter
    (fun { bound; solution } ->
      Util.Table.add_row t
        [
          Printf.sprintf "%.2f" bound;
          Util.Table.fmt_float solution.Engine.mu;
          Util.Table.fmt_float ~decimals:3 solution.Engine.sigma;
          Util.Table.fmt_float ~decimals:1 solution.Engine.area;
          Report.cpu_string solution.Engine.wall_time;
        ])
    curve.points;
  Util.Table.print t;
  print_newline ()
