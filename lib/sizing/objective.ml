type t =
  | Min_area
  | Min_delay of float
  | Min_area_bounded of { k : float; bound : float }
  | Min_sigma of { mu : float }
  | Max_sigma of { mu : float }
  | Min_weighted of { label : string; weights : float array; k : float; bound : float }

let metric_name k =
  if k = 0. then "mu"
  else if k = 1. then "mu+sigma"
  else Printf.sprintf "mu+%gsigma" k

let describe = function
  | Min_area -> "min area"
  | Min_delay k -> Printf.sprintf "min %s" (metric_name k)
  | Min_area_bounded { k; bound } ->
      Printf.sprintf "min area s.t. %s <= %g" (metric_name k) bound
  | Min_sigma { mu } -> Printf.sprintf "min sigma s.t. mu = %g" mu
  | Max_sigma { mu } -> Printf.sprintf "max sigma s.t. mu = %g" mu
  | Min_weighted { label; k; bound; _ } ->
      Printf.sprintf "min %s s.t. %s <= %g" label (metric_name k) bound

let pp ppf t = Format.pp_print_string ppf (describe t)
