(** Reduced-space statistical gate sizing.

    This engine solves the paper's sizing problems with the speed factors
    {m S} as the only decision variables: the auxiliary timing quantities
    of equation 17 ({m \mu_t, \sigma_t^2, \mu_T, \sigma_T^2, \ldots}) are
    eliminated by the forward SSTA propagation, and their contribution to
    the derivatives is recovered by the adjoint sweep of {!Sta.Ssta}.
    Mathematically this optimises over exactly the feasible manifold of
    the paper's equality constraints, so the two formulations have the
    same minimisers (the tests cross-check this against
    {!Formulate}). *)

type options = {
  solver : Nlp.Auglag.options;
  start : [ `Low | `Mid | `High | `Given of float array ];
      (** initial speed factors: all-1, mid-box, all-max, or explicit *)
  restarts : int;
      (** additional multi-start attempts from perturbed starting points;
          best result wins.  0 (default) disables. *)
  restart_seed : int;
}

val default_options : options

type solution = {
  objective : Objective.t;
  sizes : float array;
  timing : Sta.Ssta.result;
  mu : float;  (** {m \mu_{T_{max}}} at the solution *)
  sigma : float;  (** {m \sigma_{T_{max}}} at the solution *)
  area : float;  (** {m \sum_i area_i S_i} *)
  wall_time : float;  (** seconds spent in [solve] *)
  evaluations : int;  (** objective/constraint evaluations *)
  iterations : int;  (** inner solver iterations *)
  max_violation : float;  (** residual constraint violation *)
  converged : bool;
}

val solve :
  ?options:options ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  Objective.t ->
  solution

val evaluate :
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  Sta.Ssta.result * float
(** Forward timing and area of a given sizing — used to report rows for
    fixed (e.g. all-min) sizings. *)
