(** Reduced-space statistical gate sizing.

    This engine solves the paper's sizing problems with the speed factors
    {m S} as the only decision variables: the auxiliary timing quantities
    of equation 17 ({m \mu_t, \sigma_t^2, \mu_T, \sigma_T^2, \ldots}) are
    eliminated by the forward SSTA propagation, and their contribution to
    the derivatives is recovered by the adjoint sweep of {!Sta.Ssta}.
    Mathematically this optimises over exactly the feasible manifold of
    the paper's equality constraints, so the two formulations have the
    same minimisers (the tests cross-check this against
    {!Formulate}).

    Every timing evaluation inside a solve goes through a one-entry
    cache (see {!make_cache}); passing [?pool] threads a
    {!Util.Pool.t} down to the SSTA sweeps so large circuits evaluate
    level-parallel.  Instrumented via {!Util.Instr}: counters
    [engine.solve], [engine.cache_hit], [engine.cache_miss] and timer
    [engine.solve]. *)

type options = {
  solver : Nlp.Auglag.options;
  start : [ `Low | `Mid | `High | `Given of float array ];
      (** initial speed factors: all-1, mid-box, all-max, or explicit *)
  restarts : int;
      (** additional multi-start attempts from perturbed starting points;
          best result wins.  0 (default) disables. *)
  restart_seed : int;
}

val default_options : options

type solution = {
  objective : Objective.t;
  sizes : float array;
  timing : Sta.Ssta.result;
  mu : float;  (** {m \mu_{T_{max}}} at the solution *)
  sigma : float;  (** {m \sigma_{T_{max}}} at the solution *)
  area : float;  (** {m \sum_i area_i S_i} *)
  wall_time : float;  (** seconds spent in [solve] *)
  evaluations : int;  (** objective/constraint evaluations *)
  iterations : int;  (** inner solver iterations *)
  max_violation : float;  (** residual constraint violation *)
  converged : bool;
}

val solve :
  ?options:options ->
  ?pool:Util.Pool.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  Objective.t ->
  solution
(** Solves the sizing problem; see {!options} for the solver knobs.
    [pool] parallelises every SSTA evaluation of the run — solutions are
    bit-identical with and without it. *)

val evaluate :
  ?pool:Util.Pool.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  Sta.Ssta.result * float
(** Forward timing and area of a given sizing — used to report rows for
    fixed (e.g. all-min) sizings. *)

type cache_entry = {
  cx : float array;  (** the point the entry was computed at *)
  res : Sta.Ssta.result;  (** forward timing at [cx] *)
  grad_mu : float array;  (** gradient of {m \mu_{T_{max}}} *)
  grad_var : float array;  (** gradient of {m \sigma^2_{T_{max}}} *)
}

val make_cache :
  ?pool:Util.Pool.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  float array ->
  cache_entry
(** [make_cache ~model net] returns a memoised evaluator with a
    {e one-entry} cache: calling it at the same point (element-wise
    float equality) as the previous call returns the stored entry
    without re-running the analysis.  The reverse sweep is linear in its
    seed, so the entry stores the two {e basis} gradients (of the mean
    and of the variance) and the gradient of any functional
    {m f(\mu, \sigma^2)} is their linear combination — objective and
    constraint closures evaluated at one iterate share a single timing
    analysis.  The returned entry's arrays are owned by the cache;
    callers must not mutate them. *)
