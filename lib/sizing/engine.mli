(** Reduced-space statistical gate sizing.

    This engine solves the paper's sizing problems with the speed factors
    {m S} as the only decision variables: the auxiliary timing quantities
    of equation 17 ({m \mu_t, \sigma_t^2, \mu_T, \sigma_T^2, \ldots}) are
    eliminated by the forward SSTA propagation, and their contribution to
    the derivatives is recovered by the adjoint sweep of {!Sta.Ssta}.
    Mathematically this optimises over exactly the feasible manifold of
    the paper's equality constraints, so the two formulations have the
    same minimisers (the tests cross-check this against
    {!Formulate}).

    Every timing evaluation inside a solve goes through a one-entry
    cache (see {!make_cache}); passing [?pool] threads a
    {!Util.Pool.t} down to the SSTA sweeps so large circuits evaluate
    level-parallel.

    {b Incremental re-timing.}  With [options.incremental] (the
    default) each solve owns a persistent {!Sta.Incr} engine, so
    consecutive solver evaluations re-propagate only the fan-out cones
    of the sizes the line search actually moved — in exact mode this is
    bit-identical to from-scratch evaluation, so solutions do not move
    by a bit when it is disabled.  The cache is invalidated wholesale at
    every attempt boundary (multi-start restarts, each recovery-ladder
    rung, and any objective switch on a caller-shared [?timing] engine).
    Counters surface as [incr.*] (see {!Sta.Incr}).

    {b Resilience.}  [solve] never raises on numerical failure.  The
    solver stack runs behind {!Nlp.Problem.guarded}; when the initial
    attempt ends in [Breakdown], [Stalled] or [Penalty_ceiling] and
    [options.recovery] is on, a recovery ladder retries with (1) a
    perturbed start, (2) the other inner solver (Lbfgs <-> Newton),
    (3) gentler penalty growth, and finally (4) the mean-model {!Gp}
    sizing, degrading to (5) the deterministic {!Baseline} when the GP
    has no analogue or cannot certify, recording every rung taken in
    [solution.recovery].  Optional [deadline] / [max_evaluations]
    budgets bound the {e whole} ladder, not each rung; a [Deadline]
    exit returns the best iterate seen and stops the ladder.
    Instrumented via {!Util.Instr}: counters [engine.solve],
    [engine.cache_hit], [engine.cache_miss],
    [engine.recovery.engaged], [engine.recovery.<rung>] and timer
    [engine.solve]. *)

type options = {
  solver : Nlp.Auglag.options;
  start : [ `Low | `Mid | `High | `Given of float array ];
      (** initial speed factors: all-1, mid-box, all-max, or explicit *)
  warm_start : [ `None | `Gp | `Baseline ];
      (** start the solve from a cheap surrogate's solution instead of
          [start]: [`Gp] solves the mean-model geometric program
          ({!Gp.solve} — globally optimal on the mean), [`Baseline] runs
          the deterministic greedy.  Takes precedence over [start] when
          the surrogate applies to the objective and succeeds; falls
          back to [start] otherwise (e.g. the sigma objectives, or an
          infeasible GP bound).  Default [`None]. *)
  restarts : int;
      (** additional multi-start attempts from perturbed starting points;
          best result wins.  0 (default) disables. *)
  restart_seed : int;
  deadline : float option;
      (** wall-clock budget in seconds for the whole solve including
          recovery, default [None] *)
  max_evaluations : int option;
      (** budget on objective/constraint evaluations across all attempts,
          default [None] *)
  recovery : bool;  (** enable the recovery ladder (default [true]) *)
  incremental : bool;
      (** evaluate through a persistent {!Sta.Incr} dirty-cone engine
          instead of from-scratch sweeps (default [true]; bit-identical
          results either way) *)
  instrument : (Nlp.Problem.constrained -> Nlp.Problem.constrained) option;
      (** hook applied to the internally built problem before solving —
          used by the fault-injection tests to corrupt evaluations;
          default [None] *)
}

val default_options : options

type rung =
  | Initial  (** the first (non-recovery) attempt, recorded only on failure *)
  | Perturbed_restart  (** deterministic keyed perturbation of the start *)
  | Alternate_solver  (** flip the inner solver: Lbfgs <-> Newton *)
  | Gentler_penalty  (** slower penalty growth, more outer iterations *)
  | Gp_fallback
      (** mean-model {!Gp} sizing — tried before the greedy: it is
          globally optimal on the mean and carries a KKT certificate *)
  | Baseline_fallback  (** deterministic {!Baseline} sizing *)

val rung_name : rung -> string
(** Stable kebab-case identifier, e.g. for JSON diagnoses. *)

val pp_rung : Format.formatter -> rung -> unit

type attempt = {
  rung : rung;
  outcome : Nlp.Auglag.termination;
  breakdown : Nlp.Problem.breakdown option;
  violation : float;
  evals : int;
}

type solution = {
  objective : Objective.t;
  sizes : float array;
  timing : Sta.Ssta.result;
  mu : float;  (** {m \mu_{T_{max}}} at the solution *)
  sigma : float;  (** {m \sigma_{T_{max}}} at the solution *)
  area : float;  (** {m \sum_i area_i S_i} *)
  wall_time : float;  (** seconds spent in [solve] *)
  evaluations : int;
      (** objective/constraint evaluations, summed over every attempt *)
  iterations : int;  (** inner solver iterations of the accepted attempt *)
  max_violation : float;  (** residual constraint violation *)
  converged : bool;
  termination : Nlp.Auglag.termination;
      (** why the accepted attempt ended; [Converged] iff [converged].
          After a baseline fallback this keeps the {e failure} reason of
          the best solver attempt — the fallback is a graceful degrade,
          not a statistical solve. *)
  recovery : attempt list;
      (** every ladder rung taken, in order; [[]] when the first attempt
          converged (guards are observability, not behaviour change) *)
}

val solve :
  ?options:options ->
  ?pool:Util.Pool.t ->
  ?timing:Sta.Incr.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  Objective.t ->
  solution
(** Solves the sizing problem; see {!options} for the solver knobs.
    [pool] parallelises every SSTA evaluation of the run — solutions are
    bit-identical with and without it.  [timing] shares a caller-owned
    incremental engine across solves (it must be bound to [net], else
    [Invalid_argument]); it is invalidated at every attempt boundary, so
    switching objectives between solves forces a full sweep.  Never
    raises on numerical failure: guards, budgets and the recovery ladder
    turn NaN/Inf, stalls and expired budgets into a typed [termination]
    plus the [recovery] trail. *)

val evaluate :
  ?pool:Util.Pool.t ->
  ?arena:Sta.Arena.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  sizes:float array ->
  Sta.Ssta.result * float
(** Forward timing and area of a given sizing — used to report rows for
    fixed (e.g. all-min) sizings.  [arena] reuses a flat {!Sta.Arena}'s
    planes for the sweep. *)

type cache_entry = {
  cx : float array;  (** the point the entry was computed at *)
  cmom : float array;
      (** circuit moments at [cx]: [cmom.(0)] the mean, [cmom.(1)] the
          variance of {m T_{max}} *)
  grad_mu : float array;  (** gradient of {m \mu_{T_{max}}} *)
  grad_var : float array;  (** gradient of {m \sigma^2_{T_{max}}} *)
  mutable filled : bool;  (** false only before the first evaluation *)
}

val make_cache :
  ?pool:Util.Pool.t ->
  ?timing:Sta.Incr.t ->
  ?arena:Sta.Arena.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  float array ->
  cache_entry
(** [make_cache ~model net] returns a memoised evaluator with a
    {e one-entry} cache: calling it at the same point (element-wise
    float equality) as the previous call returns the stored entry
    without re-running the analysis.  The reverse sweep is linear in its
    seed, so the entry stores the two {e basis} gradients (of the mean
    and of the variance) and the gradient of any functional
    {m f(\mu, \sigma^2)} is their linear combination — objective and
    constraint closures evaluated at one iterate share a single timing
    analysis.  With [timing], cache misses evaluate through the
    incremental engine (dirty-cone re-timing; the second basis gradient
    hits its forward cache); otherwise through allocation-free sweeps on
    [arena] (or a private {!Sta.Arena}).  The single entry and its
    buffers are allocated once and overwritten in place — callers must
    not mutate or retain them across calls. *)

val build_problem :
  ?pool:Util.Pool.t ->
  ?timing:Sta.Incr.t ->
  ?arena:Sta.Arena.t ->
  model:Circuit.Sigma_model.t ->
  Circuit.Netlist.t ->
  Objective.t ->
  Nlp.Problem.constrained
(** The reduced-space NLP the engine solves for a given objective —
    exposed so tests can instrument it directly. *)
