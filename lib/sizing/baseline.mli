(** Deterministic greedy gate sizing (TILOS-style) — the classical
    baseline the statistical method is compared against.

    The paper's novelty is sizing under a {e statistical} delay model;
    contemporary sizers (and today's open-source ones) are deterministic.
    This module implements the classic sensitivity-driven greedy loop over
    the worst-case {!Sta.Dsta} delay: repeatedly bump the speed factor of
    the critical-path gate with the best delay-reduction-per-area ratio.
    Comparing its results with the statistical engine quantifies what the
    statistical objectives buy (sigma control, yield). *)

type options = {
  bump : float;  (** multiplicative size increase per move, default 1.15 *)
  max_moves : int;  (** default 100_000 *)
}

val default_options : options
(** [{ bump = 1.15; max_moves = 100_000 }]. *)

type result = {
  sizes : float array;
  delay : float;  (** deterministic worst-case circuit delay *)
  area : float;
  moves : int;
  met : bool;  (** whether the deadline (if any) was met *)
}

val minimize_delay :
  ?options:options -> Circuit.Netlist.t -> result
(** Greedy minimisation of the worst-case delay: keeps taking the best
    sensitivity move while it improves the circuit delay. *)

val meet_deadline :
  ?options:options -> Circuit.Netlist.t -> deadline:float -> result
(** Greedy area-lean sizing until the worst-case delay meets [deadline]
    (or no move helps; check [met]). *)
