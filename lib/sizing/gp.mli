(** Geometric-programming sizing on the mean delay model.

    The Berkelaar-Jess gate delay {m t = t_{int} + c\,C_{load}/S} is a
    posynomial in the speed factors, so the paper's {e mean}-delay sizing
    problems are geometric programs with a provable global optimum.  This
    backend builds that GP from the {!Circuit.Netlist.flat} CSR view —
    path-free, with one epigraph arrival variable per gate — and solves
    it in log space ({m y_i = \log S_i}) with a damped Newton barrier
    method.  No external solver: the log-sum-exp smoothed constraints,
    the barrier, the preconditioned-CG Newton steps and the KKT
    certificate are all here.

    The engine uses it three ways: as an independent global-optimality
    cross-check of the augmented-Lagrangian solver (the statistical
    problem at {m \sigma = 0} {e is} this GP), as a warm start
    ([Engine.options.warm_start]), and as the [Gp_fallback] rung of the
    recovery ladder.

    Everything is deterministic: no randomness, no wall-clock-dependent
    control flow — two solves of the same problem are bit-identical. *)

(** {1 Posynomial AST}

    The model representation the compiler targets, exposed for the
    property tests: a posynomial is a sum of monomials
    {m c \prod_k x_{i_k}^{\alpha_{i_k}}} with {m c > 0}, evaluated at a
    {e log}-point {m y = \log x} as
    {m \log \sum e^{\log c + \alpha\cdot y}} — a log-sum-exp of affine
    functions, hence convex in {m y} (the log-log convexity the QCheck
    tests exercise). *)
module Posy : sig
  type monomial = { coeff : float; terms : (int * float) list }
      (** [coeff] {m > 0}; [terms] lists [(variable, exponent)] pairs
          (a variable may repeat; exponents add) *)

  type t = monomial list  (** a posynomial: a non-empty sum of monomials *)

  val log_eval : t -> float array -> float
  (** [log_eval p y] {m = \log p(e^y)}, computed with a max-shifted
      log-sum-exp (never overflows for finite inputs). *)

  val log_grad : dim:int -> t -> float array -> float array
  (** Gradient of {!log_eval} at [y]: the convex-combination
      {m \sum_k w_k \alpha_k} of the monomial exponent vectors. *)
end

(** {1 The sizing GP} *)

type objective =
  | Min_delay of { area_budget : float option }
      (** minimise the mean circuit delay, optionally subject to
          {m \sum_i area_i S_i \le A} — with [area_budget] set to a
          {!Baseline} solution's area this is the equal-area
          differential of the test layer *)
  | Min_area of { delay_bound : float }
      (** minimise {m \sum_i area_i S_i} subject to a mean-delay bound
          — the mean-model counterpart of [Objective.Min_area_bounded] *)

type options = {
  t0 : float;  (** initial barrier weight *)
  barrier_growth : float;  (** multiplier on [t] between centerings *)
  complementarity_target : float;
      (** outer loop runs until {m 1/t \le} this; the duality-style gap
          certificate is {m m/t} at exit *)
  newton_tol : float;
      (** centering stops when the (normalized) barrier gradient
          {m \infty}-norm — exactly the certificate's stationarity
          residual — falls below this *)
  max_newton : int;  (** per-centering Newton iteration cap *)
  max_total_newton : int;  (** whole-solve Newton iteration cap *)
  cg_max_iterations : int;  (** cap on CG iterations per Newton system *)
}

val default_options : options

type status =
  | Optimal  (** barrier loop reached the complementarity target *)
  | Infeasible
      (** no strictly feasible start exists: the delay bound (or area
          budget) cannot be met on the mean model *)
  | Stalled  (** iteration caps or a dead line search; best point returned *)

type solution = {
  status : status;
  sizes : float array;  (** speed factors, old-id order, inside the box *)
  delay : float;  (** the epigraph variable {m T} at the solution *)
  mean_delay : float;  (** {!Sta.Dsta} circuit delay at [sizes] *)
  area : float;
  gp_objective : objective;
  n_variables : int;  (** {m 2n + 1}: sizes, arrivals, {m T} *)
  n_constraints : int;
  centerings : int;
  newton_iterations : int;
  duality_gap : float;  (** {m m/t} at exit: bounds [f - f*] in log space *)
  kkt : Nlp.Check.kkt;
      (** first-order certificate at the solution, computed by
          {!Nlp.Check.kkt} over the full log-space GP with the barrier
          dual estimates {m \lambda_j = 1/(t\,(-g_j))} *)
  wall_time : float;
}

val solve : ?options:options -> Circuit.Netlist.t -> objective -> solution
(** Compiles the mean-delay/area GP from the netlist's flat view and
    solves it.  Never raises on infeasibility — a bound no sizing can
    meet returns [status = Infeasible] with best-effort sizes.  The
    interior-point iterates stay strictly inside the box; at extraction
    any size within a relative [1e-6] of a bound is snapped onto it (the
    rounding step of classic GP sizing), so the returned [sizes] are
    always a valid sizing and saturated gates sit exactly at their
    bounds. *)

val compile : Circuit.Netlist.t -> objective -> Posy.t * Posy.t list
(** The log-space program [(objective, constraints)] the solver
    minimises: each constraint posynomial {m p} stands for
    {m p(S, a, T) \le 1}.  Variable indices: gate sizes in flat (new-id)
    order at [0..n-1], epigraph arrivals at [n..2n-1], the circuit delay
    {m T} at [2n].  Exposed for the differential tests. *)
