(* Tests for the deterministic simulation harness (lib/sim): op and
   trace serialization round-trips, keyed-generator determinism, clean
   runs under the default op mix, fault-injected solve soundness, the
   shrinking algorithm, and the headline planted-divergence demo — a
   200-op failing sequence minimized to a handful of ops whose saved
   trace replays the identical violation bit-for-bit. *)

let sample_ops =
  [
    Sim.Op.Resize { gate = 17; size = 2.375 };
    Sim.Op.Resize { gate = 3; size = 1.0000000000000002 };
    Sim.Op.Batch_resize [| (0, 1.5); (42, 3.25); (7, 1.1) |];
    Sim.Op.Set_objective (Sim.Op.Obj_min_delay 3.);
    Sim.Op.Set_objective (Sim.Op.Obj_min_area_bounded { k = 1.; frac = 0.93 });
    Sim.Op.Set_objective (Sim.Op.Obj_min_sigma { frac = 1.04 });
    Sim.Op.Invalidate;
    Sim.Op.Analyze;
    Sim.Op.Gradient Sim.Op.Seed_mu;
    Sim.Op.Gradient Sim.Op.Seed_var;
    Sim.Op.Gradient (Sim.Op.Seed_mu_k_sigma 3.);
    Sim.Op.Inject_fault { kind = Sim.Op.Nan_value; first = 1 };
    Sim.Op.Inject_fault { kind = Sim.Op.Perturb 0.25; first = 2 };
    Sim.Op.Set_budget { deadline = None; max_evals = Some 500 };
    Sim.Op.Set_budget { deadline = Some 0.125; max_evals = None };
    Sim.Op.Switch_warm_start `None;
    Sim.Op.Switch_warm_start `Gp;
    Sim.Op.Switch_warm_start `Baseline;
    Sim.Op.Solve;
    Sim.Op.Corrupt_cache { gate = 89; bump = 0.7278906 };
    Sim.Op.Serve_request Sim.Op.Srv_analyze;
    Sim.Op.Serve_request (Sim.Op.Srv_whatif [| (4, 2.5); (19, 1.25) |]);
    Sim.Op.Serve_request (Sim.Op.Srv_gradient (Sim.Op.Seed_mu_k_sigma 3.));
    Sim.Op.Serve_request Sim.Op.Srv_degraded;
  ]

let test_op_line_roundtrip () =
  List.iter
    (fun op ->
      let line = Sim.Op.to_line op in
      match Sim.Op.of_line line with
      | Ok op' ->
          if op <> op' then
            Alcotest.failf "round-trip changed %S -> %S" line (Sim.Op.to_line op')
      | Error msg -> Alcotest.failf "cannot parse %S back: %s" line msg)
    sample_ops;
  (* Bit-exactness through the hex-float tokens. *)
  let size = 1. +. (Float.pi /. 7.) in
  match Sim.Op.of_line (Sim.Op.to_line (Sim.Op.Resize { gate = 0; size })) with
  | Ok (Sim.Op.Resize { size = size'; _ }) ->
      Alcotest.(check bool)
        "bits preserved" true
        (Int64.equal (Int64.bits_of_float size) (Int64.bits_of_float size'))
  | _ -> Alcotest.fail "resize did not round-trip"

let test_op_line_rejects_garbage () =
  List.iter
    (fun line ->
      match Sim.Op.of_line line with
      | Error _ -> ()
      | Ok op ->
          Alcotest.failf "parsed garbage %S as %s" line (Sim.Op.to_line op))
    [ ""; "resize"; "resize x 1.0"; "batch 2 0 1.0"; "warp 9"; "fault bogus 1" ]

let test_circuit_line_roundtrip () =
  List.iter
    (fun c ->
      match Sim.Op.circuit_of_line (Sim.Op.circuit_to_line c) with
      | Ok c' when c = c' -> ()
      | Ok _ | Error _ ->
          Alcotest.failf "circuit %S did not round-trip" (Sim.Op.circuit_to_line c))
    [
      Sim.Op.Named "tree";
      Sim.Op.Dag { n_gates = 150; n_pis = 20; depth = 8; seed = 1 };
    ]

let test_trace_roundtrip () =
  let trace =
    {
      Sim.Trace.seed = 42;
      circuit = Sim.Op.Dag { n_gates = 64; n_pis = 8; depth = 6; seed = 5 };
      ops = sample_ops;
      violation = Some "incr-vs-scratch";
    }
  in
  (match Sim.Trace.of_string (Sim.Trace.to_string trace) with
  | Ok trace' when trace = trace' -> ()
  | Ok _ -> Alcotest.fail "trace round-trip changed contents"
  | Error msg -> Alcotest.failf "trace round-trip failed: %s" msg);
  let path = Filename.temp_file "sim_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sim.Trace.save path trace;
      match Sim.Trace.load path with
      | Ok trace' when trace = trace' -> ()
      | Ok _ -> Alcotest.fail "saved trace differs after load"
      | Error msg -> Alcotest.failf "cannot load saved trace: %s" msg)

let small_dag = Sim.Op.Dag { n_gates = 60; n_pis = 10; depth = 6; seed = 11 }

let test_generator_deterministic () =
  let net = Sim.Gen.instantiate small_dag in
  let config = { Sim.Gen.default with Sim.Gen.circuit = small_dag; n_ops = 60 } in
  let a = Sim.Gen.sequence ~net ~seed:9 config in
  let b = Sim.Gen.sequence ~net ~seed:9 config in
  if a <> b then Alcotest.fail "same seed produced different sequences";
  (* Keyed draws: op k is addressable in isolation, in any order. *)
  List.iteri
    (fun k op ->
      let op' = Sim.Gen.op ~net ~seed:9 ~key:k config in
      if op <> op' then
        Alcotest.failf "op %d differs when drawn in isolation: %s vs %s" k
          (Sim.Op.to_line op) (Sim.Op.to_line op'))
    a;
  let c = Sim.Gen.sequence ~net ~seed:10 config in
  if a = c then Alcotest.fail "different seeds produced identical sequences"

(* Under the default op mix (no corruption) every invariant must hold —
   on a generated DAG and on a named circuit, exercising solves and
   fault injection along the way. *)
let test_clean_run_passes () =
  let report =
    Sim.Harness.run ~seed:5 ~circuit:small_dag
      (let net = Sim.Gen.instantiate small_dag in
       Sim.Gen.sequence ~net ~seed:5
         { Sim.Gen.default with Sim.Gen.circuit = small_dag; n_ops = 50 })
  in
  (match report.Sim.Harness.outcome with
  | Sim.Harness.Passed -> ()
  | Sim.Harness.Failed f ->
      Alcotest.fail
        (Sim.Harness.describe_failure ~seed:5 ~circuit:small_dag ~n_ops:50 f));
  Alcotest.(check int) "all ops ran" 50 report.Sim.Harness.ops_run;
  Alcotest.(check bool)
    "caching engaged" true
    (report.Sim.Harness.counters.Sta.Incr.cache_hits > 0)

let test_clean_run_named_circuit () =
  let circuit = Sim.Op.Named "tree" in
  let net = Sim.Gen.instantiate circuit in
  let ops =
    Sim.Gen.sequence ~net ~seed:2
      { Sim.Gen.default with Sim.Gen.circuit; n_ops = 40 }
  in
  match (Sim.Harness.run ~seed:2 ~circuit ops).Sim.Harness.outcome with
  | Sim.Harness.Passed -> ()
  | Sim.Harness.Failed f ->
      Alcotest.fail (Sim.Harness.describe_failure ~seed:2 ~circuit ~n_ops:40 f)

(* The Cssta / Corner differential checks ride in the default suite —
   the satellite engines are invariants of every sim run, not just unit
   tests. *)
let test_satellite_invariants_registered () =
  let names = List.map (fun c -> c.Sim.Invariant.name) (Sim.Invariant.default_suite ()) in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then
        Alcotest.failf "invariant %S not registered (have: %s)" expected
          (String.concat ", " names))
    [
      "incr-vs-scratch";
      "arena-vs-boxed";
      "gradient-vs-scratch";
      "corner-envelope";
      "cssta-vs-ssta";
      "recovery-sound";
      "gp-sound";
      "serve-sound";
      "monotone-counters";
      "words-per-eval";
    ]

(* Armed faults must actually fire inside the solve, and the
   recovery-sound invariant must hold over the result. *)
let test_fault_injected_solve () =
  let circuit = Sim.Op.Named "tree" in
  let ops =
    [
      Sim.Op.Analyze;
      Sim.Op.Set_budget { deadline = None; max_evals = Some 800 };
      Sim.Op.Inject_fault { kind = Sim.Op.Nan_value; first = 1 };
      Sim.Op.Solve;
      Sim.Op.Analyze;
      Sim.Op.Inject_fault { kind = Sim.Op.Perturb 0.3; first = 2 };
      Sim.Op.Solve;
    ]
  in
  let report = Sim.Harness.run ~seed:21 ~circuit ops in
  (match report.Sim.Harness.outcome with
  | Sim.Harness.Passed -> ()
  | Sim.Harness.Failed f ->
      Alcotest.fail (Sim.Harness.describe_failure ~seed:21 ~circuit ~n_ops:7 f));
  Alcotest.(check int) "two solves ran" 2 report.Sim.Harness.solves;
  Alcotest.(check bool) "faults fired" true (report.Sim.Harness.faults_fired >= 2)

(* Directed warm-start run: solves under each warm-start mode must pass
   every invariant — in particular gp-sound, which replays a GP-involved
   solve's reported moments through a from-scratch sweep, bit for bit.
   The persistent fault armed before the last solve breaks every solver
   rung and lands the recovery ladder on the GP fallback, covering the
   other gp-sound trigger. *)
let test_warm_start_solves_gp_sound () =
  let circuit = Sim.Op.Named "tree" in
  let ops =
    [
      Sim.Op.Set_budget { deadline = None; max_evals = Some 1500 };
      Sim.Op.Switch_warm_start `Gp;
      Sim.Op.Solve;
      Sim.Op.Analyze;
      Sim.Op.Switch_warm_start `Baseline;
      Sim.Op.Solve;
      Sim.Op.Switch_warm_start `None;
      Sim.Op.Inject_fault { kind = Sim.Op.Nan_value; first = 100_000 };
      Sim.Op.Solve;
    ]
  in
  let report = Sim.Harness.run ~seed:17 ~circuit ops in
  (match report.Sim.Harness.outcome with
  | Sim.Harness.Passed -> ()
  | Sim.Harness.Failed f ->
      Alcotest.fail (Sim.Harness.describe_failure ~seed:17 ~circuit ~n_ops:9 f));
  Alcotest.(check int) "three solves ran" 3 report.Sim.Harness.solves

(* The default mix reaches the warm-start modes at all. *)
let test_generator_emits_warm_start_ops () =
  let net = Sim.Gen.instantiate small_dag in
  let ops =
    Sim.Gen.sequence ~net ~seed:4
      { Sim.Gen.default with Sim.Gen.circuit = small_dag; n_ops = 200 }
  in
  Alcotest.(check bool) "warm-start switches generated" true
    (List.exists
       (function Sim.Op.Switch_warm_start _ -> true | _ -> false)
       ops)

(* Directed serve-op run: daemon-path requests interleaved with resizes
   must pass the serve-soundness invariant (bit-identity against batch,
   correctly-typed degradation) on every one of them — including right
   after the engines diverge in warmth (the serve target never saw the
   intermediate sizes the sim engine did). *)
let test_serve_ops_sound () =
  let circuit = Sim.Op.Named "tree" in
  let ops =
    [
      Sim.Op.Serve_request Sim.Op.Srv_analyze;
      Sim.Op.Resize { gate = 2; size = 2.5 };
      Sim.Op.Serve_request Sim.Op.Srv_analyze;
      Sim.Op.Serve_request (Sim.Op.Srv_whatif [| (0, 3.0); (5, 1.5) |]);
      Sim.Op.Serve_request (Sim.Op.Srv_gradient Sim.Op.Seed_mu);
      Sim.Op.Serve_request (Sim.Op.Srv_gradient (Sim.Op.Seed_mu_k_sigma 3.));
      Sim.Op.Batch_resize [| (1, 1.75); (4, 2.0) |];
      Sim.Op.Serve_request Sim.Op.Srv_degraded;
      Sim.Op.Serve_request Sim.Op.Srv_analyze;
    ]
  in
  match (Sim.Harness.run ~seed:13 ~circuit ops).Sim.Harness.outcome with
  | Sim.Harness.Passed -> ()
  | Sim.Harness.Failed f ->
      Alcotest.fail (Sim.Harness.describe_failure ~seed:13 ~circuit ~n_ops:9 f)

(* The default mix actually exercises the daemon path: serve ops must
   appear in generated sequences, including the degraded variant. *)
let test_generator_emits_serve_ops () =
  let net = Sim.Gen.instantiate small_dag in
  let ops =
    Sim.Gen.sequence ~net ~seed:1
      { Sim.Gen.default with Sim.Gen.circuit = small_dag; n_ops = 150 }
  in
  let serves =
    List.filter_map
      (function Sim.Op.Serve_request r -> Some r | _ -> None)
      ops
  in
  Alcotest.(check bool)
    (Printf.sprintf "serve ops generated (got %d)" (List.length serves))
    true
    (List.length serves > 0);
  Alcotest.(check bool) "the degraded variant appears" true
    (List.exists (function Sim.Op.Srv_degraded -> true | _ -> false) serves)

(* Shrinker mechanics against a synthetic failure predicate: "fails iff
   the op list still contains a Corrupt_cache op" — minimal is 1 op. *)
let test_shrinker_on_synthetic_predicate () =
  let is_corrupt = function Sim.Op.Corrupt_cache _ -> true | _ -> false in
  let net = Sim.Gen.instantiate small_dag in
  let filler =
    Sim.Gen.sequence ~net ~seed:3
      { Sim.Gen.default with Sim.Gen.circuit = small_dag; n_ops = 120 }
  in
  let planted = Sim.Op.Corrupt_cache { gate = 5; bump = 1.5 } in
  let ops = List.concat [ List.filteri (fun i _ -> i < 80) filler; [ planted ];
                          List.filteri (fun i _ -> i >= 80) filler ] in
  let trace = { Sim.Trace.seed = 3; circuit = small_dag; ops; violation = None } in
  let fail_of t =
    let rec find i = function
      | [] -> None
      | op :: _ when is_corrupt op ->
          Some
            {
              Sim.Harness.step = i;
              op;
              violation = { Sim.Invariant.name = "planted"; detail = "synthetic" };
            }
      | _ :: rest -> find (i + 1) rest
    in
    find 0 t.Sim.Trace.ops
  in
  let f0 = match fail_of trace with Some f -> f | None -> Alcotest.fail "no corrupt op" in
  let result = Sim.Shrink.minimize ~run:fail_of trace f0 in
  let ops' = result.Sim.Shrink.trace.Sim.Trace.ops in
  Alcotest.(check int) "minimal op count" 1 (List.length ops');
  Alcotest.(check bool) "the surviving op is the corrupt op" true
    (is_corrupt (List.hd ops'));
  (match List.hd ops' with
  | Sim.Op.Corrupt_cache { bump; _ } ->
      Alcotest.(check bool)
        (Printf.sprintf "bump argument shrunk toward 0 (got %h)" bump)
        true (bump <= 0.25)
  | _ -> ());
  Alcotest.(check string) "violation recorded" "planted"
    (match result.Sim.Shrink.trace.Sim.Trace.violation with
    | Some v -> v
    | None -> "<none>")

(* ---- the headline demo ------------------------------------------------------- *)

(* A pinned seed with cache-corruption ops enabled: the 200-op sequence
   violates incr-vs-scratch, the shrinker reduces it to a handful of
   ops, and the saved trace replays the identical violation — same
   invariant, same detail string, bit for bit — on every re-run. *)
let test_planted_divergence_shrinks_and_replays () =
  let circuit = Sim.Op.Dag { n_gates = 100; n_pis = 15; depth = 7; seed = 2 } in
  let seed = 3 in
  let n_ops = 200 in
  let net = Sim.Gen.instantiate circuit in
  let config =
    {
      Sim.Gen.default with
      Sim.Gen.circuit;
      n_ops;
      weights = { Sim.Gen.default_weights with Sim.Gen.corrupt = 2 };
    }
  in
  let ops = Sim.Gen.sequence ~net ~seed config in
  Alcotest.(check int) "the failing sequence has 200 ops" 200 (List.length ops);
  let report = Sim.Harness.run_net ~seed net ops in
  let failure =
    match report.Sim.Harness.outcome with
    | Sim.Harness.Failed f -> f
    | Sim.Harness.Passed ->
        Alcotest.fail "pinned seed no longer fails; pick a new one"
  in
  Alcotest.(check string) "the planted bug is a cache divergence"
    "incr-vs-scratch" failure.Sim.Harness.violation.Sim.Invariant.name;
  (* Shrink. *)
  let trace0 = { Sim.Trace.seed; circuit; ops; violation = None } in
  let rerun t =
    match (Sim.Trace.run t).Sim.Harness.outcome with
    | Sim.Harness.Failed f -> Some f
    | Sim.Harness.Passed -> None
  in
  let shrunk = Sim.Shrink.minimize ~run:rerun trace0 failure in
  let n_min = List.length shrunk.Sim.Shrink.trace.Sim.Trace.ops in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 10 ops (got %d)" n_min)
    true (n_min <= 10);
  Alcotest.(check string) "shrunk trace fails the same invariant"
    "incr-vs-scratch"
    shrunk.Sim.Shrink.failure.Sim.Harness.violation.Sim.Invariant.name;
  (* Save, load, replay twice: identical violation, bit for bit. *)
  let path = Filename.temp_file "sim_shrunk" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sim.Trace.save path shrunk.Sim.Shrink.trace;
      let loaded =
        match Sim.Trace.load path with
        | Ok t -> t
        | Error msg -> Alcotest.failf "cannot load shrunk trace: %s" msg
      in
      let replay_violation () =
        match (Sim.Trace.run loaded).Sim.Harness.outcome with
        | Sim.Harness.Failed f -> f.Sim.Harness.violation
        | Sim.Harness.Passed -> Alcotest.fail "replay did not reproduce the failure"
      in
      let v1 = replay_violation () in
      let v2 = replay_violation () in
      Alcotest.(check string) "replayed invariant" "incr-vs-scratch"
        v1.Sim.Invariant.name;
      (* The detail strings embed %h-rendered moments: string equality
         here IS bit-for-bit equality of the diverging values. *)
      Alcotest.(check string) "bit-identical violation across replays"
        v1.Sim.Invariant.detail v2.Sim.Invariant.detail;
      Alcotest.(check string) "replay matches the in-process shrink"
        shrunk.Sim.Shrink.failure.Sim.Harness.violation.Sim.Invariant.detail
        v1.Sim.Invariant.detail)

let () =
  Alcotest.run "sim"
    [
      ( "serialization",
        [
          Alcotest.test_case "op line round-trip" `Quick test_op_line_roundtrip;
          Alcotest.test_case "op line rejects garbage" `Quick
            test_op_line_rejects_garbage;
          Alcotest.test_case "circuit line round-trip" `Quick
            test_circuit_line_roundtrip;
          Alcotest.test_case "trace round-trip" `Quick test_trace_roundtrip;
        ] );
      ( "generator",
        [
          Alcotest.test_case "keyed determinism" `Quick test_generator_deterministic;
        ] );
      ( "harness",
        [
          Alcotest.test_case "clean run passes" `Quick test_clean_run_passes;
          Alcotest.test_case "clean run on named circuit" `Quick
            test_clean_run_named_circuit;
          Alcotest.test_case "satellite invariants registered" `Quick
            test_satellite_invariants_registered;
          Alcotest.test_case "fault-injected solve" `Quick test_fault_injected_solve;
          Alcotest.test_case "warm-start solves gp-sound" `Quick
            test_warm_start_solves_gp_sound;
          Alcotest.test_case "generator emits warm-start ops" `Quick
            test_generator_emits_warm_start_ops;
          Alcotest.test_case "serve ops sound" `Quick test_serve_ops_sound;
          Alcotest.test_case "generator emits serve ops" `Quick
            test_generator_emits_serve_ops;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "synthetic predicate" `Quick
            test_shrinker_on_synthetic_predicate;
          Alcotest.test_case "planted divergence shrinks and replays" `Slow
            test_planted_divergence_shrinks_and_replays;
        ] );
    ]
