(* Integration tests: the experiment drivers reproduce the paper's
   qualitative results end-to-end. *)

open Experiments

let model = Circuit.Sigma_model.paper_default

let test_table1_small_shape () =
  (* Run the Table-1 protocol on a reduced circuit and check the paper's
     qualitative shape. *)
  match Table1.run ~small:true ~model () with
  | [] -> Alcotest.fail "no results"
  | r :: _ ->
      (match r.Table1.rows with
      | [ unsized; min_mu; min_ms; min_m3s; area_mu; _area_ms; area_m3s ] ->
          let open Sizing.Engine in
          (* delay range: sizing helps *)
          Alcotest.(check bool) "min mu < unsized mu" true (min_mu.mu < unsized.mu);
          Alcotest.(check bool) "unsized area smallest" true
            (unsized.area <= min_mu.area && unsized.area <= area_mu.area);
          (* guard-banded minimisation controls sigma *)
          Alcotest.(check bool) "sigma(mu+3s) <= sigma(mu)+eps" true
            (min_m3s.sigma <= min_mu.sigma +. 0.01);
          Alcotest.(check bool) "ms between" true (min_ms.sigma <= min_mu.sigma +. 0.01);
          (* area-constrained rows: tighter statistical constraints cost area
             but cut mu and sigma *)
          Alcotest.(check bool) "area grows with k" true
            (area_m3s.area >= area_mu.area -. 0.5);
          Alcotest.(check bool) "mu shrinks with k" true (area_m3s.mu <= area_mu.mu +. 1e-6);
          Alcotest.(check bool) "sigma shrinks with k" true
            (area_m3s.sigma <= area_mu.sigma +. 1e-6);
          (* constraints are satisfied *)
          Alcotest.(check bool) "mu row feasible" true (area_mu.mu <= r.Table1.bound +. 1e-3);
          Alcotest.(check bool) "m3s row feasible" true
            (area_m3s.mu +. (3. *. area_m3s.sigma) <= r.Table1.bound +. 1e-3);
          (* every solver run converged *)
          List.iter
            (fun s -> Alcotest.(check bool) "converged" true s.converged)
            r.Table1.rows
      | _ -> Alcotest.fail "expected seven rows")

let test_table2_shape () =
  let r = Table2.run ~model () in
  Alcotest.(check int) "eleven rows" 11 (List.length r.Table2.rows);
  Alcotest.(check bool) "range ordered" true (r.Table2.mu_fast < r.Table2.mu_slow);
  Array.iter
    (fun t ->
      Alcotest.(check bool) "targets inside range" true
        (t >= r.Table2.mu_fast -. 1e-9 && t <= r.Table2.mu_slow +. 1e-9))
    r.Table2.targets;
  (* Group rows per target: min area / min sigma / max sigma. *)
  let by_target = Array.of_list (List.tl (List.tl r.Table2.rows)) in
  Alcotest.(check int) "nine target rows" 9 (Array.length by_target);
  for t = 0 to 2 do
    let area_row = by_target.(3 * t).Table2.solution in
    let min_row = by_target.((3 * t) + 1).Table2.solution in
    let max_row = by_target.((3 * t) + 2).Table2.solution in
    let open Sizing.Engine in
    Alcotest.(check bool) "sigma margin" true (min_row.sigma <= max_row.sigma);
    Alcotest.(check bool) "area-opt within margin" true
      (area_row.sigma >= min_row.sigma -. 1e-6 && area_row.sigma <= max_row.sigma +. 1e-6);
    Alcotest.(check bool) "min sigma costs area" true
      (min_row.area >= area_row.area -. 1e-6)
  done;
  (* Paper: the sigma interval is widest for the middle target. *)
  let margin t =
    let min_row = by_target.((3 * t) + 1).Table2.solution in
    let max_row = by_target.((3 * t) + 2).Table2.solution in
    max_row.Sizing.Engine.sigma -. min_row.Sizing.Engine.sigma
  in
  Alcotest.(check bool) "middle margin widest" true
    (margin 1 >= margin 0 -. 1e-3 && margin 1 >= margin 2 -. 1e-3)

let test_table3_shape () =
  let r = Table3.run ~model () in
  Alcotest.(check int) "three rows" 3 (List.length r.Table3.rows);
  Alcotest.(check int) "seven gates" 7 (Array.length r.Table3.gate_names);
  List.iter
    (fun (label, sizes) ->
      Alcotest.(check int) (label ^ " has 7 sizes") 7 (Array.length sizes);
      Array.iter
        (fun s ->
          if s < 1. -. 1e-6 || s > 3. +. 1e-6 then
            Alcotest.failf "%s: size %.3f out of bounds" label s)
        sizes)
    r.Table3.rows;
  (* min area and min sigma keep the symmetric groups symmetric. *)
  List.iter
    (fun (label, sz) ->
      if label <> "max sigma" then begin
        if abs_float (sz.(0) -. sz.(4)) > 0.02 then
          Alcotest.failf "%s: group {A,B,D,E} asymmetric" label;
        if abs_float (sz.(2) -. sz.(5)) > 0.02 then
          Alcotest.failf "%s: group {C,F} asymmetric" label
      end)
    r.Table3.rows

let test_example_fig2_agreement () =
  let r = Example_fig2.run ~model () in
  Alcotest.(check bool) "full converged" true r.Example_fig2.full.Sizing.Engine.converged;
  Alcotest.(check bool) "reduced converged" true
    r.Example_fig2.reduced.Sizing.Engine.converged;
  Alcotest.(check bool) "formulations agree" true (r.Example_fig2.agreement < 0.02);
  Alcotest.(check int) "26 variables" 26 r.Example_fig2.n_variables

let test_yield_tree_conformance () =
  (* The 50 / 84.1 / 99.8 % claim on the reconvergence-free tree. *)
  let r = Yield_exp.run ~model ~net:(Circuit.Generate.tree ()) ~samples:20_000 () in
  match r.Yield_exp.rows with
  | [ r0; r1; r3 ] ->
      let close a b tol = abs_float (a -. b) <= tol in
      Alcotest.(check bool) "k=0 ~ 50%" true (close r0.Yield_exp.monte_carlo 0.5 0.03);
      Alcotest.(check bool) "k=1 ~ 84.1%" true (close r1.Yield_exp.monte_carlo 0.841 0.03);
      Alcotest.(check bool) "k=3 ~ 99.8%" true (r3.Yield_exp.monte_carlo > 0.97);
      (* analytic yield equals the prediction when the constraint is active *)
      Alcotest.(check bool) "analytic k=0" true
        (close r0.Yield_exp.analytic r0.Yield_exp.predicted 0.02);
      Alcotest.(check bool) "analytic k=1" true
        (close r1.Yield_exp.analytic r1.Yield_exp.predicted 0.02)
  | _ -> Alcotest.fail "expected three rows"

let test_yield_monotone_in_k () =
  let r = Yield_exp.run ~model ~net:(Circuit.Generate.tree ()) ~samples:5_000 () in
  let yields = List.map (fun row -> row.Yield_exp.monte_carlo) r.Yield_exp.rows in
  match yields with
  | [ y0; y1; y3 ] ->
      Alcotest.(check bool) "monotone" true (y0 <= y1 +. 0.02 && y1 <= y3 +. 0.02)
  | _ -> Alcotest.fail "expected three rows"

let test_mc_accuracy_small_errors () =
  let r = Mc_accuracy.run ~model ~samples:100_000 () in
  List.iter
    (fun g ->
      if g.Mc_accuracy.mu_err > 0.02 then
        Alcotest.failf "grid mu error %.4f at dmu=%g ratio=%g" g.Mc_accuracy.mu_err
          g.Mc_accuracy.dmu g.Mc_accuracy.sigma_ratio;
      if g.Mc_accuracy.sigma_err > 0.02 then
        Alcotest.failf "grid sigma error %.4f" g.Mc_accuracy.sigma_err)
    r.Mc_accuracy.grid;
  (* Tree and chain respect independence: SSTA within a few percent. *)
  List.iter
    (fun c ->
      if c.Mc_accuracy.circuit_name = "tree" || c.Mc_accuracy.circuit_name = "chain" then begin
        let rel =
          abs_float (c.Mc_accuracy.analytic_mu -. c.Mc_accuracy.mc_mu)
          /. c.Mc_accuracy.mc_mu
        in
        if rel > 0.02 then
          Alcotest.failf "%s: SSTA mu off by %.2f%%" c.Mc_accuracy.circuit_name (100. *. rel)
      end)
    r.Mc_accuracy.circuits

let test_ablation_shapes () =
  let r = Ablation.run ~samples:4_000 () in
  (* sigma sweep: larger uncertainty ratio -> larger sized sigma *)
  let sigmas =
    List.map (fun (s : Ablation.sigma_row) -> s.Ablation.sigma) r.Ablation.sigma_sweep
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-6 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "sigma monotone in ratio" true (monotone sigmas);
  (* formulation ablation: both converge to the same objective *)
  (match r.Ablation.formulation with
  | [ a; b ] ->
      Alcotest.(check bool) "both converged" true
        (a.Ablation.converged && b.Ablation.converged);
      Alcotest.(check (Alcotest.float 0.02)) "same optimum" a.Ablation.objective_value
        b.Ablation.objective_value
  | _ -> Alcotest.fail "expected two formulation rows");
  (* baseline: statistical sizing achieves (weakly) better yield than the
     deterministic greedy at the same deadline *)
  (match r.Ablation.baseline with
  | greedy :: stat :: _ ->
      Alcotest.(check bool) "statistical yield >= greedy" true
        (stat.Ablation.mc_yield >= greedy.Ablation.mc_yield -. 0.02)
  | _ -> Alcotest.fail "expected baseline rows");
  (* solver ablation: both inner solvers find the same optimum *)
  match r.Ablation.solver with
  | [ lbfgs; newton ] ->
      Alcotest.(check bool) "both converged" true
        (lbfgs.Ablation.s_converged && newton.Ablation.s_converged);
      Alcotest.(check (Alcotest.float 1.0)) "same area" lbfgs.Ablation.s_objective
        newton.Ablation.s_objective
  | _ -> Alcotest.fail "expected two solver rows"

let test_corner_pessimism () =
  let r = Experiments.Corner_exp.run ~model ~samples:5_000 () in
  List.iter
    (fun row ->
      let open Experiments.Corner_exp in
      (* ordering: typical < statistical <= worst corner *)
      Alcotest.(check bool) "typical below statistical" true
        (row.typical < row.statistical);
      Alcotest.(check bool) "corner above statistical" true
        (row.worst_corner >= row.statistical -. 1e-9);
      Alcotest.(check bool) "corner pessimistic vs MC" true (row.overestimate > 1.05);
      (* on independence-respecting circuits the statistical estimate
         tracks the MC quantile closely *)
      if row.circuit_name = "tree" || row.circuit_name = "chain" then begin
        let rel = abs_float (row.statistical -. row.mc_quantile) /. row.mc_quantile in
        if rel > 0.02 then
          Alcotest.failf "%s: mu+3sigma off MC quantile by %.1f%%" row.circuit_name
            (100. *. rel)
      end)
    r.Experiments.Corner_exp.rows

let test_scale_runs_small () =
  let r = Experiments.Scale_exp.run ~model ~sizes_list:[ 60; 120 ] () in
  match r.Experiments.Scale_exp.rows with
  | [ a; b ] ->
      let open Experiments.Scale_exp in
      Alcotest.(check bool) "speedups sensible" true (a.speedup > 1.2 && b.speedup > 1.2);
      Alcotest.(check bool) "times recorded" true
        (a.min_delay_time >= 0. && b.bounded_time >= 0.)
  | _ -> Alcotest.fail "expected two rows"

let test_prints_do_not_raise () =
  (* The print functions are exercised by the bench harness; here we only
     make sure they do not raise on real data. *)
  let r2 = Table2.run ~model () in
  Table2.print r2;
  let r3 = Table3.run ~model ~target_mu:(Table2.mid_target r2) () in
  Table3.print r3;
  Example_fig2.print (Example_fig2.run ~model ());
  Alcotest.(check bool) "ok" true true

let () =
  Alcotest.run "experiments"
    [
      ( "table1",
        [ Alcotest.test_case "small-case shape" `Slow test_table1_small_shape ] );
      ("table2", [ Alcotest.test_case "shape" `Slow test_table2_shape ]);
      ("table3", [ Alcotest.test_case "shape" `Slow test_table3_shape ]);
      ( "example",
        [ Alcotest.test_case "formulations agree" `Quick test_example_fig2_agreement ] );
      ( "yield",
        [
          Alcotest.test_case "tree conformance" `Slow test_yield_tree_conformance;
          Alcotest.test_case "monotone in k" `Slow test_yield_monotone_in_k;
        ] );
      ( "mc_accuracy",
        [ Alcotest.test_case "small errors" `Slow test_mc_accuracy_small_errors ] );
      ("ablation", [ Alcotest.test_case "shapes" `Slow test_ablation_shapes ]);
      ("corner", [ Alcotest.test_case "pessimism" `Slow test_corner_pessimism ]);
      ("scale", [ Alcotest.test_case "small sweep" `Slow test_scale_runs_small ]);
      ("printing", [ Alcotest.test_case "no raise" `Slow test_prints_do_not_raise ]);
    ]
