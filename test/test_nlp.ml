(* Tests for the NLP stack: problem definitions, projected L-BFGS, the
   augmented-Lagrangian solver, and the derivative checker. *)

let check_float ?(eps = 1e-12) msg expected actual =
  Alcotest.check (Alcotest.float eps) msg expected actual

(* ---- Problem ------------------------------------------------------------------ *)

let test_bounds_validation () =
  Alcotest.check_raises "crossed" (Invalid_argument "Problem.bounds: lower > upper")
    (fun () -> ignore (Nlp.Problem.bounds ~lower:[| 1. |] ~upper:[| 0. |]));
  Alcotest.check_raises "mismatch" (Invalid_argument "Problem.bounds: length mismatch")
    (fun () -> ignore (Nlp.Problem.bounds ~lower:[| 1. |] ~upper:[| 2.; 3. |]))

let test_project () =
  let b = Nlp.Problem.box ~dim:3 ~lo:0. ~hi:1. in
  let x = [| -1.; 0.5; 7. |] in
  Nlp.Problem.project b x;
  Alcotest.(check (array (float 1e-15))) "projected" [| 0.; 0.5; 1. |] x

let test_max_violation () =
  let base =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:1)
      ~objective:(fun x -> (x.(0), [| 1. |]))
  in
  let p =
    Nlp.Problem.constrain base
      [
        Nlp.Problem.eq (fun x -> (x.(0) -. 1., [| 1. |]));
        Nlp.Problem.le (fun x -> (x.(0) -. 10., [| 1. |]));
      ]
  in
  check_float "eq violated" 1. (Nlp.Problem.max_violation p [| 0. |]);
  check_float "le slack ignored" 1. (Nlp.Problem.max_violation p [| 2. |]);
  (* at x = 12 the equality misses by 11 and the inequality by 2 *)
  check_float "worst of both" 11. (Nlp.Problem.max_violation p [| 12. |])

(* ---- L-BFGS --------------------------------------------------------------------- *)

let quadratic center x =
  let n = Array.length x in
  let v = ref 0. in
  let g = Array.make n 0. in
  for i = 0 to n - 1 do
    let d = x.(i) -. center.(i) in
    let w = float_of_int (i + 1) in
    v := !v +. (w *. d *. d);
    g.(i) <- 2. *. w *. d
  done;
  (!v, g)

let test_lbfgs_quadratic_unbounded () =
  let center = [| 1.; -2.; 3.; 0.5 |] in
  let p =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:4) ~objective:(quadratic center)
  in
  let r = Nlp.Lbfgs.minimize p ~x0:[| 0.; 0.; 0.; 0. |] in
  (* Converged or Stagnated both indicate success here; Stagnated means the
     objective stopped changing at the optimum before the gradient test. *)
  Alcotest.(check bool) "finished successfully" true
    (match r.Nlp.Lbfgs.outcome with
    | Nlp.Lbfgs.Converged | Nlp.Lbfgs.Stagnated -> true
    | Nlp.Lbfgs.Iteration_limit | Nlp.Lbfgs.Line_search_failure
    | Nlp.Lbfgs.Interrupted ->
        false);
  Array.iteri
    (fun i c -> check_float ~eps:1e-6 (Printf.sprintf "x%d" i) c r.Nlp.Lbfgs.x.(i))
    center

let test_lbfgs_quadratic_active_bounds () =
  (* Unconstrained optimum at (2, -3) but box is [0,1]^2: solution clips to
     (1, 0). *)
  let p =
    Nlp.Problem.make
      ~bounds:(Nlp.Problem.box ~dim:2 ~lo:0. ~hi:1.)
      ~objective:(quadratic [| 2.; -3. |])
  in
  let r = Nlp.Lbfgs.minimize p ~x0:[| 0.5; 0.5 |] in
  check_float ~eps:1e-8 "x0 at upper bound" 1. r.Nlp.Lbfgs.x.(0);
  check_float ~eps:1e-8 "x1 at lower bound" 0. r.Nlp.Lbfgs.x.(1)

let rosenbrock x =
  let a = 1. -. x.(0) in
  let b = x.(1) -. (x.(0) *. x.(0)) in
  let v = (a *. a) +. (100. *. b *. b) in
  let g0 = (-2. *. a) -. (400. *. x.(0) *. b) in
  let g1 = 200. *. b in
  (v, [| g0; g1 |])

let test_lbfgs_rosenbrock () =
  let p =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2) ~objective:rosenbrock
  in
  let r =
    Nlp.Lbfgs.minimize
      ~options:{ Nlp.Lbfgs.default_options with Nlp.Lbfgs.max_iterations = 2000 }
      p ~x0:[| -1.2; 1. |]
  in
  check_float ~eps:1e-5 "x" 1. r.Nlp.Lbfgs.x.(0);
  check_float ~eps:1e-5 "y" 1. r.Nlp.Lbfgs.x.(1)

let test_lbfgs_x0_projected_not_mutated () =
  let p =
    Nlp.Problem.make
      ~bounds:(Nlp.Problem.box ~dim:1 ~lo:0. ~hi:1.)
      ~objective:(quadratic [| 0.5 |])
  in
  let x0 = [| 5. |] in
  let r = Nlp.Lbfgs.minimize p ~x0 in
  check_float "x0 untouched" 5. x0.(0);
  check_float ~eps:1e-8 "solution" 0.5 r.Nlp.Lbfgs.x.(0)

let test_lbfgs_already_optimal () =
  let p =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2)
      ~objective:(quadratic [| 1.; 1. |])
  in
  let r = Nlp.Lbfgs.minimize p ~x0:[| 1.; 1. |] in
  Alcotest.(check bool) "no iterations needed" true (r.Nlp.Lbfgs.iterations = 0);
  Alcotest.(check bool) "converged" true (r.Nlp.Lbfgs.outcome = Nlp.Lbfgs.Converged)

let test_lbfgs_iteration_limit () =
  let p =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2) ~objective:rosenbrock
  in
  let r =
    Nlp.Lbfgs.minimize
      ~options:{ Nlp.Lbfgs.default_options with Nlp.Lbfgs.max_iterations = 3 }
      p ~x0:[| -1.2; 1. |]
  in
  Alcotest.(check bool) "hit limit" true (r.Nlp.Lbfgs.outcome = Nlp.Lbfgs.Iteration_limit);
  Alcotest.(check int) "3 iterations" 3 r.Nlp.Lbfgs.iterations

let test_lbfgs_dimension_mismatch () =
  let p =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2)
      ~objective:(quadratic [| 0.; 0. |])
  in
  Alcotest.check_raises "dim" (Invalid_argument "Lbfgs.minimize: x0 dimension mismatch")
    (fun () -> ignore (Nlp.Lbfgs.minimize p ~x0:[| 0. |]))

let prop_lbfgs_quadratic_random =
  let gen =
    QCheck.Gen.(
      let* dim = int_range 1 8 in
      let* center = array_repeat dim (float_range (-5.) 5.) in
      let* x0 = array_repeat dim (float_range (-5.) 5.) in
      return (center, x0))
  in
  QCheck.Test.make ~name:"lbfgs solves random diagonal quadratics" ~count:50
    (QCheck.make gen) (fun (center, x0) ->
      let p =
        Nlp.Problem.make
          ~bounds:(Nlp.Problem.unbounded ~dim:(Array.length center))
          ~objective:(quadratic center)
      in
      let r = Nlp.Lbfgs.minimize p ~x0 in
      Array.for_all2 (fun a b -> abs_float (a -. b) < 1e-5) r.Nlp.Lbfgs.x center)

(* ---- Augmented Lagrangian ---------------------------------------------------------- *)

let test_auglag_no_constraints_delegates () =
  let p =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2)
         ~objective:(quadratic [| 2.; -1. |]))
      []
  in
  let r = Nlp.Auglag.solve p ~x0:[| 0.; 0. |] in
  Alcotest.(check bool) "converged" true r.Nlp.Auglag.converged;
  check_float ~eps:1e-6 "x0" 2. r.Nlp.Auglag.x.(0);
  check_float ~eps:1e-6 "x1" (-1.) r.Nlp.Auglag.x.(1)

let test_auglag_equality_projection () =
  (* min ||x||^2 s.t. x0 + x1 = 1: solution (0.5, 0.5), multiplier -1. *)
  let base =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2)
      ~objective:(quadratic [| 0.; 0. |])
  in
  (* quadratic with weights 1,2: min x0^2 + 2 x1^2 st x0+x1=1 -> x = (2/3, 1/3) *)
  let p =
    Nlp.Problem.constrain base
      [ Nlp.Problem.eq (fun x -> (x.(0) +. x.(1) -. 1., [| 1.; 1. |])) ]
  in
  let r = Nlp.Auglag.solve p ~x0:[| 0.; 0. |] in
  Alcotest.(check bool) "converged" true r.Nlp.Auglag.converged;
  check_float ~eps:1e-5 "x0" (2. /. 3.) r.Nlp.Auglag.x.(0);
  check_float ~eps:1e-5 "x1" (1. /. 3.) r.Nlp.Auglag.x.(1);
  Alcotest.(check bool) "violation tiny" true (r.Nlp.Auglag.max_violation < 1e-6)

let test_auglag_inequality_inactive () =
  (* min (x-1)^2 s.t. x <= 5: unconstrained optimum feasible. *)
  let p =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:1)
         ~objective:(quadratic [| 1. |]))
      [ Nlp.Problem.le (fun x -> (x.(0) -. 5., [| 1. |])) ]
  in
  let r = Nlp.Auglag.solve p ~x0:[| 3. |] in
  check_float ~eps:1e-6 "x" 1. r.Nlp.Auglag.x.(0)

let test_auglag_inequality_active () =
  (* min (x-10)^2 s.t. x <= 5: solution at the boundary. *)
  let p =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:1)
         ~objective:(quadratic [| 10. |]))
      [ Nlp.Problem.le (fun x -> (x.(0) -. 5., [| 1. |])) ]
  in
  let r = Nlp.Auglag.solve p ~x0:[| 0. |] in
  Alcotest.(check bool) "converged" true r.Nlp.Auglag.converged;
  check_float ~eps:1e-5 "x at bound" 5. r.Nlp.Auglag.x.(0);
  Alcotest.(check bool) "multiplier positive" true (r.Nlp.Auglag.multipliers.(0) > 0.)

let test_auglag_mixed_constraints_with_box () =
  (* min x0^2 + 2 x1^2 s.t. x0 + x1 = 1, x1 <= 0.25, 0 <= x <= 1.
     Equality + active inequality: x = (0.75, 0.25). *)
  let p =
    Nlp.Problem.constrain
      (Nlp.Problem.make
         ~bounds:(Nlp.Problem.box ~dim:2 ~lo:0. ~hi:1.)
         ~objective:(quadratic [| 0.; 0. |]))
      [
        Nlp.Problem.eq (fun x -> (x.(0) +. x.(1) -. 1., [| 1.; 1. |]));
        Nlp.Problem.le (fun x -> (x.(1) -. 0.25, [| 0.; 1. |]));
      ]
  in
  let r = Nlp.Auglag.solve p ~x0:[| 0.5; 0.5 |] in
  Alcotest.(check bool) "converged" true r.Nlp.Auglag.converged;
  check_float ~eps:1e-4 "x0" 0.75 r.Nlp.Auglag.x.(0);
  check_float ~eps:1e-4 "x1" 0.25 r.Nlp.Auglag.x.(1)

let test_auglag_infeasible_reports () =
  (* x = 0 and x = 1 simultaneously: infeasible; solver must not report
     convergence and must report a violation. *)
  let p =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:1)
         ~objective:(quadratic [| 0. |]))
      [
        Nlp.Problem.eq (fun x -> (x.(0), [| 1. |]));
        Nlp.Problem.eq (fun x -> (x.(0) -. 1., [| 1. |]));
      ]
  in
  let options =
    { Nlp.Auglag.default_options with Nlp.Auglag.outer_iterations = 8 }
  in
  let r = Nlp.Auglag.solve ~options p ~x0:[| 0.3 |] in
  Alcotest.(check bool) "not converged" false r.Nlp.Auglag.converged;
  Alcotest.(check bool) "violation reported" true (r.Nlp.Auglag.max_violation > 0.1)

let test_auglag_nonlinear_constraint () =
  (* min x0 + x1 s.t. x0^2 + x1^2 = 1: optimum at (-1/sqrt2, -1/sqrt2). *)
  let base =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2)
      ~objective:(fun x -> (x.(0) +. x.(1), [| 1.; 1. |]))
  in
  let p =
    Nlp.Problem.constrain base
      [
        Nlp.Problem.eq (fun x ->
            ((x.(0) *. x.(0)) +. (x.(1) *. x.(1)) -. 1., [| 2. *. x.(0); 2. *. x.(1) |]));
      ]
  in
  let r = Nlp.Auglag.solve p ~x0:[| 0.5; -0.8 |] in
  Alcotest.(check bool) "converged" true r.Nlp.Auglag.converged;
  let s = -1. /. sqrt 2. in
  check_float ~eps:1e-4 "x0" s r.Nlp.Auglag.x.(0);
  check_float ~eps:1e-4 "x1" s r.Nlp.Auglag.x.(1)

(* ---- termination taxonomy (resilience layer) ------------------------------- *)

(* x = 0 and x = 1 simultaneously: structurally infeasible. *)
let infeasible_problem () =
  Nlp.Problem.constrain
    (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:1)
       ~objective:(quadratic [| 0. |]))
    [
      Nlp.Problem.eq (fun x -> (x.(0), [| 1. |]));
      Nlp.Problem.eq (fun x -> (x.(0) -. 1., [| 1. |]));
    ]

let test_auglag_penalty_ceiling () =
  (* With the ceiling reachable, the infeasible set must be diagnosed as
     Penalty_ceiling — the violation cannot shrink no matter how hard the
     penalty squeezes. *)
  let options =
    { Nlp.Auglag.default_options with Nlp.Auglag.max_penalty = 1e6 }
  in
  let r = Nlp.Auglag.solve ~options (infeasible_problem ()) ~x0:[| 0.3 |] in
  Alcotest.(check bool) "not converged" false r.Nlp.Auglag.converged;
  Alcotest.(check bool) "penalty ceiling" true
    (r.Nlp.Auglag.termination = Nlp.Auglag.Penalty_ceiling);
  Alcotest.(check bool) "no breakdown" true (r.Nlp.Auglag.breakdown = None);
  (* best checkpoint: violation ~ 1/2 at the midpoint between the targets *)
  Alcotest.(check bool) "violation reported" true (r.Nlp.Auglag.max_violation > 0.4);
  check_float ~eps:1e-2 "best iterate between targets" 0.5 r.Nlp.Auglag.x.(0)

let test_auglag_stalled () =
  (* Outer allowance too small to converge, penalty still well below the
     ceiling: Stalled, not Penalty_ceiling. *)
  let options =
    { Nlp.Auglag.default_options with Nlp.Auglag.outer_iterations = 2 }
  in
  let r = Nlp.Auglag.solve ~options (infeasible_problem ()) ~x0:[| 0.3 |] in
  Alcotest.(check bool) "not converged" false r.Nlp.Auglag.converged;
  Alcotest.(check bool) "stalled" true (r.Nlp.Auglag.termination = Nlp.Auglag.Stalled)

let test_auglag_inner_stagnation_reports_ok () =
  (* Inner Stagnated on a well-posed problem is not an error: the outer
     loop keeps going and still converges. *)
  let p =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.box ~dim:2 ~lo:(-5.) ~hi:5.)
         ~objective:(quadratic [| 1.; -2. |]))
      [ Nlp.Problem.le (fun x -> (x.(0) -. 0.5, [| 1.; 0. |])) ]
  in
  let options =
    {
      Nlp.Auglag.default_options with
      Nlp.Auglag.inner =
        { Nlp.Lbfgs.default_options with Nlp.Lbfgs.f_tolerance = 1e-6 };
    }
  in
  let r = Nlp.Auglag.solve ~options p ~x0:[| 3.; 3. |] in
  Alcotest.(check bool) "converged" true r.Nlp.Auglag.converged;
  Alcotest.(check bool) "termination converged" true
    (r.Nlp.Auglag.termination = Nlp.Auglag.Converged)

let test_auglag_m0_iteration_limit_is_stalled () =
  (* No constraints + inner iteration limit -> Stalled. *)
  let p =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2) ~objective:rosenbrock)
      []
  in
  let options =
    {
      Nlp.Auglag.default_options with
      Nlp.Auglag.inner =
        { Nlp.Lbfgs.default_options with Nlp.Lbfgs.max_iterations = 3 };
    }
  in
  let r = Nlp.Auglag.solve ~options p ~x0:[| -1.2; 1. |] in
  Alcotest.(check bool) "not converged" false r.Nlp.Auglag.converged;
  Alcotest.(check bool) "stalled" true (r.Nlp.Auglag.termination = Nlp.Auglag.Stalled)

let test_auglag_breakdown_nan_objective () =
  (* Fault-inject NaN into the objective: the default guard must turn it
     into a Breakdown report with the typed diagnosis, not a crash. *)
  let plan =
    Util.Fault.plan
      [
        {
          Util.Fault.kind = Util.Fault.Nan_value;
          component = Some 0;
          trigger = Util.Fault.First 1;
        };
      ]
  in
  let p =
    Nlp.Problem.map_components
      (fun ~component f ->
        Util.Fault.wrap plan ~component:(Nlp.Problem.component_index component) f)
      (Nlp.Problem.constrain
         (Nlp.Problem.make ~bounds:(Nlp.Problem.box ~dim:2 ~lo:(-5.) ~hi:5.)
            ~objective:(quadratic [| 1.; 1. |]))
         [ Nlp.Problem.le (fun x -> (x.(0) -. 2., [| 1.; 0. |])) ])
  in
  let r = Nlp.Auglag.solve p ~x0:[| 3.; 3. |] in
  Alcotest.(check bool) "not converged" false r.Nlp.Auglag.converged;
  Alcotest.(check bool) "breakdown" true
    (r.Nlp.Auglag.termination = Nlp.Auglag.Breakdown);
  (match r.Nlp.Auglag.breakdown with
  | None -> Alcotest.fail "expected a breakdown diagnosis"
  | Some b ->
      Alcotest.(check bool) "objective blamed" true
        (b.Nlp.Problem.b_component = Nlp.Problem.Objective);
      (match b.Nlp.Problem.b_fault with
      | Nlp.Problem.Nonfinite_value v ->
          Alcotest.(check bool) "NaN recorded" true (Float.is_nan v)
      | f ->
          Alcotest.failf "wrong fault: %s"
            (Format.asprintf "%a" Nlp.Problem.pp_fault f));
      Alcotest.(check bool) "iterate snapshot present" true
        (Array.length b.Nlp.Problem.b_x = 2));
  Alcotest.(check int) "fault fired once" 1 (List.length (Util.Fault.log plan))

let test_auglag_breakdown_inf_constraint_gradient () =
  let plan =
    Util.Fault.plan
      [
        {
          Util.Fault.kind = Util.Fault.Inf_gradient;
          component = Some 1;
          trigger = Util.Fault.At 5;
        };
      ]
  in
  let p =
    Nlp.Problem.map_components
      (fun ~component f ->
        Util.Fault.wrap plan ~component:(Nlp.Problem.component_index component) f)
      (Nlp.Problem.constrain
         (Nlp.Problem.make ~bounds:(Nlp.Problem.box ~dim:2 ~lo:(-5.) ~hi:5.)
            ~objective:(quadratic [| 1.; 1. |]))
         [ Nlp.Problem.le (fun x -> (x.(0) -. 0.5, [| 1.; 0. |])) ])
  in
  let r = Nlp.Auglag.solve p ~x0:[| 3.; 3. |] in
  Alcotest.(check bool) "breakdown" true
    (r.Nlp.Auglag.termination = Nlp.Auglag.Breakdown);
  match r.Nlp.Auglag.breakdown with
  | Some { Nlp.Problem.b_component = Nlp.Problem.Constraint 0;
           b_fault = Nlp.Problem.Nonfinite_gradient _; _ } ->
      ()
  | Some b ->
      Alcotest.failf "wrong diagnosis: %s"
        (Format.asprintf "%a" Nlp.Problem.pp_breakdown b)
  | None -> Alcotest.fail "expected a breakdown diagnosis"

let test_auglag_eval_budget_deadline () =
  (* A tiny evaluation budget must stop the solve with Deadline and the
     best checkpoint, not spin or crash. *)
  let p =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.box ~dim:2 ~lo:(-5.) ~hi:5.)
         ~objective:(quadratic [| 1.; -2. |]))
      [ Nlp.Problem.le (fun x -> (x.(0) -. 0.5, [| 1.; 0. |])) ]
  in
  let options =
    { Nlp.Auglag.default_options with Nlp.Auglag.max_evaluations = Some 12 }
  in
  let r = Nlp.Auglag.solve ~options p ~x0:[| 3.; 3. |] in
  Alcotest.(check bool) "not converged" false r.Nlp.Auglag.converged;
  Alcotest.(check bool) "deadline" true
    (r.Nlp.Auglag.termination = Nlp.Auglag.Deadline);
  Alcotest.(check bool) "iterate finite" true
    (Util.Guard.all_finite r.Nlp.Auglag.x);
  (* m = 0 flavour: the inner solver returns Interrupted *)
  let p0 =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2) ~objective:rosenbrock)
      []
  in
  let r0 = Nlp.Auglag.solve ~options p0 ~x0:[| -1.2; 1. |] in
  Alcotest.(check bool) "m=0 deadline" true
    (r0.Nlp.Auglag.termination = Nlp.Auglag.Deadline)

let test_auglag_guard_bit_identical () =
  (* Guards are observability, not behaviour: a healthy solve is
     bit-identical with and without them. *)
  let make () =
    Nlp.Problem.constrain
      (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2)
         ~objective:(fun x -> (x.(0) +. x.(1), [| 1.; 1. |])))
      [
        Nlp.Problem.eq (fun x ->
            ((x.(0) *. x.(0)) +. (x.(1) *. x.(1)) -. 1., [| 2. *. x.(0); 2. *. x.(1) |]));
      ]
  in
  let on = Nlp.Auglag.solve (make ()) ~x0:[| 0.5; -0.8 |] in
  let off =
    Nlp.Auglag.solve
      ~options:{ Nlp.Auglag.default_options with Nlp.Auglag.guard = false }
      (make ()) ~x0:[| 0.5; -0.8 |]
  in
  Alcotest.(check bool) "same x (bitwise)" true (on.Nlp.Auglag.x = off.Nlp.Auglag.x);
  Alcotest.(check bool) "same f (bitwise)" true
    (Int64.bits_of_float on.Nlp.Auglag.f = Int64.bits_of_float off.Nlp.Auglag.f);
  Alcotest.(check int) "same evaluations" off.Nlp.Auglag.evaluations
    on.Nlp.Auglag.evaluations

let prop_auglag_matches_kkt_solution =
  (* min sum w_i (x_i - c_i)^2 s.t. a.x = b has the closed-form KKT
     solution x_i = c_i - lambda a_i / (2 w_i) with
     lambda = 2 (a.c - b) / sum (a_i^2 / w_i).  The augmented-Lagrangian
     solver must find it. *)
  let gen =
    QCheck.Gen.(
      let* dim = int_range 2 6 in
      let* c = array_repeat dim (float_range (-2.) 2.) in
      let* a = array_repeat dim (float_range 0.5 2.) in
      let* b = float_range (-3.) 3. in
      return (c, a, b))
  in
  QCheck.Test.make ~name:"auglag finds the KKT point of equality QPs" ~count:40
    (QCheck.make gen) (fun (c, a, b) ->
      let dim = Array.length c in
      let w = Array.init dim (fun i -> float_of_int (i + 1)) in
      let objective x =
        let v = ref 0. and g = Array.make dim 0. in
        for i = 0 to dim - 1 do
          let d = x.(i) -. c.(i) in
          v := !v +. (w.(i) *. d *. d);
          g.(i) <- 2. *. w.(i) *. d
        done;
        (!v, g)
      in
      let constr x = (Util.Numerics.dot a x -. b, Array.copy a) in
      let p =
        Nlp.Problem.constrain
          (Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim) ~objective)
          [ Nlp.Problem.eq constr ]
      in
      let r = Nlp.Auglag.solve p ~x0:(Array.make dim 0.) in
      let lambda =
        2. *. (Util.Numerics.dot a c -. b)
        /. Array.fold_left ( +. ) 0. (Array.mapi (fun i ai -> ai *. ai /. w.(i)) a)
      in
      let expected = Array.mapi (fun i ci -> ci -. (lambda *. a.(i) /. (2. *. w.(i)))) c in
      r.Nlp.Auglag.converged
      && Array.for_all2
           (fun x e -> abs_float (x -. e) < 1e-4)
           r.Nlp.Auglag.x expected)

(* ---- Newton trust-region ------------------------------------------------------------ *)

let test_newton_quadratic () =
  let center = [| 1.; -2.; 3.; 0.5 |] in
  let p =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:4) ~objective:(quadratic center)
  in
  let r = Nlp.Newton.minimize p ~x0:[| 0.; 0.; 0.; 0. |] in
  Alcotest.(check bool) "converged" true (r.Nlp.Newton.outcome = Nlp.Newton.Converged);
  Alcotest.(check bool) "few iterations" true (r.Nlp.Newton.iterations <= 10);
  Array.iteri
    (fun i c -> check_float ~eps:1e-6 (Printf.sprintf "x%d" i) c r.Nlp.Newton.x.(i))
    center

let test_newton_rosenbrock () =
  let p =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2) ~objective:rosenbrock
  in
  let r = Nlp.Newton.minimize p ~x0:[| -1.2; 1. |] in
  check_float ~eps:1e-5 "x" 1. r.Nlp.Newton.x.(0);
  check_float ~eps:1e-5 "y" 1. r.Nlp.Newton.x.(1);
  (* second-order method: far fewer iterations than first-order needs *)
  Alcotest.(check bool) "iteration count" true (r.Nlp.Newton.iterations < 100)

let test_newton_active_bounds () =
  let p =
    Nlp.Problem.make
      ~bounds:(Nlp.Problem.box ~dim:2 ~lo:0. ~hi:1.)
      ~objective:(quadratic [| 2.; -3. |])
  in
  let r = Nlp.Newton.minimize p ~x0:[| 0.5; 0.5 |] in
  check_float ~eps:1e-8 "x0 clipped" 1. r.Nlp.Newton.x.(0);
  check_float ~eps:1e-8 "x1 clipped" 0. r.Nlp.Newton.x.(1)

let test_newton_dimension_mismatch () =
  let p =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2)
      ~objective:(quadratic [| 0.; 0. |])
  in
  Alcotest.check_raises "dim" (Invalid_argument "Newton.minimize: x0 dimension mismatch")
    (fun () -> ignore (Nlp.Newton.minimize p ~x0:[| 0. |]))

let test_auglag_newton_inner () =
  (* Same constrained problem as the L-BFGS test, solved with the Newton
     inner solver: min x0^2 + 2 x1^2 s.t. x0 + x1 = 1. *)
  let base =
    Nlp.Problem.make ~bounds:(Nlp.Problem.unbounded ~dim:2)
      ~objective:(quadratic [| 0.; 0. |])
  in
  let p =
    Nlp.Problem.constrain base
      [ Nlp.Problem.eq (fun x -> (x.(0) +. x.(1) -. 1., [| 1.; 1. |])) ]
  in
  let options =
    {
      Nlp.Auglag.default_options with
      Nlp.Auglag.inner_solver = `Newton Nlp.Newton.default_options;
    }
  in
  let r = Nlp.Auglag.solve ~options p ~x0:[| 0.; 0. |] in
  Alcotest.(check bool) "converged" true r.Nlp.Auglag.converged;
  check_float ~eps:1e-5 "x0" (2. /. 3.) r.Nlp.Auglag.x.(0);
  check_float ~eps:1e-5 "x1" (1. /. 3.) r.Nlp.Auglag.x.(1)

let prop_newton_matches_lbfgs =
  let gen =
    QCheck.Gen.(
      let* dim = int_range 1 6 in
      let* center = array_repeat dim (float_range (-3.) 3.) in
      let* x0 = array_repeat dim (float_range (-3.) 3.) in
      return (center, x0))
  in
  QCheck.Test.make ~name:"newton and lbfgs agree on quadratics" ~count:30
    (QCheck.make gen) (fun (center, x0) ->
      let p =
        Nlp.Problem.make
          ~bounds:(Nlp.Problem.box ~dim:(Array.length center) ~lo:(-2.) ~hi:2.)
          ~objective:(quadratic center)
      in
      let a = Nlp.Newton.minimize p ~x0 in
      let b = Nlp.Lbfgs.minimize p ~x0 in
      (* both stop at their own tolerance, so compare achieved objective
         values rather than coordinates *)
      abs_float (a.Nlp.Newton.f -. b.Nlp.Lbfgs.f)
      <= 1e-5 *. (1. +. min (abs_float a.Nlp.Newton.f) (abs_float b.Nlp.Lbfgs.f)))

(* ---- Derivative checker --------------------------------------------------------------- *)

let test_check_accepts_correct_gradient () =
  let f x = ((sin x.(0) *. cos x.(1)) +. (x.(0) *. x.(1)),
             [| (cos x.(0) *. cos x.(1)) +. x.(1); (-.sin x.(0) *. sin x.(1)) +. x.(0) |])
  in
  let v = Nlp.Check.gradient f [| 0.7; -0.3 |] in
  Alcotest.(check bool) "ok" true v.Nlp.Check.ok

let test_check_rejects_wrong_gradient () =
  let f x = (x.(0) *. x.(0), [| x.(0) |]) (* gradient should be 2x *) in
  let v = Nlp.Check.gradient f [| 1.5 |] in
  Alcotest.(check bool) "not ok" false v.Nlp.Check.ok;
  Alcotest.(check int) "worst index" 0 v.Nlp.Check.worst_index

(* Regression: the checker's stencil must respect simplex-like bounds.
   With a coordinate at the lower bound, the unclamped central
   difference steps outside the domain (below S_i = 1, where the timing
   evaluators raise); passing the box clamps the stencil to a one-sided
   difference that stays feasible. *)
let test_check_clamps_stencil_at_lower_bound () =
  let f x =
    Array.iter (fun v -> if v < 1. then invalid_arg "below simplex bound") x;
    ((x.(0) *. x.(0)) +. (3. *. x.(1)), [| 2. *. x.(0); 3. |])
  in
  let x = [| 1.0; 2.0 |] (* first coordinate exactly at the bound *) in
  Alcotest.check_raises "unclamped stencil leaves the domain"
    (Invalid_argument "below simplex bound") (fun () ->
      ignore (Nlp.Check.gradient f x));
  let v = Nlp.Check.gradient ~lo:[| 1.; 1. |] ~hi:[| 10.; 10. |] f x in
  Alcotest.(check bool) "clamped verdict ok" true v.Nlp.Check.ok

let test_check_clamps_at_upper_bound () =
  let f x =
    if x.(0) > 4. then invalid_arg "above bound";
    (exp x.(0), [| exp x.(0) |])
  in
  (* One-sided truncation error is O(h); widen rtol accordingly. *)
  let v = Nlp.Check.gradient ~rtol:1e-4 ~lo:[| 0. |] ~hi:[| 4. |] f [| 4. |] in
  Alcotest.(check bool) "ok at upper bound" true v.Nlp.Check.ok

let test_check_pinched_coordinate_reports_zero () =
  (* lo = hi pinches the coordinate: no feasible variation, numeric slope
     0, so a nonzero analytic derivative is flagged rather than crashing
     on a zero step. *)
  let f x = (x.(0) *. x.(0), [| 2. *. x.(0) |]) in
  let v = Nlp.Check.gradient ~lo:[| 2. |] ~hi:[| 2. |] f [| 2. |] in
  Alcotest.(check bool) "mismatch reported" false v.Nlp.Check.ok;
  Alcotest.(check (float 0.)) "numeric slope is zero" 4. v.Nlp.Check.max_abs_error

let test_check_bound_dimension_mismatch () =
  let f x = (x.(0), [| 1. |]) in
  Alcotest.check_raises "lo mismatch"
    (Invalid_argument "Numerics.fd_gradient: lo dimension mismatch") (fun () ->
      ignore (Nlp.Check.gradient ~lo:[| 0.; 0. |] f [| 1. |]))

(* The motivating case end-to-end: a sizing objective checked at the
   all-min iterate, where every speed factor sits on its S_i = 1 bound
   and Netlist.check_sizes rejects any step below it. *)
let test_check_sizing_objective_at_min_sizes () =
  let net = Circuit.Generate.tree () in
  let model = Circuit.Sigma_model.paper_default in
  let lookup = Sizing.Engine.make_cache ~model net in
  let k = 3. in
  let f x =
    let e = lookup x in
    let mu = e.Sizing.Engine.cmom.(0)
    and sigma = sqrt e.Sizing.Engine.cmom.(1) in
    let dvar = if sigma > 0. then k /. (2. *. sigma) else 0. in
    ( mu +. (k *. sigma),
      Array.mapi (fun i g -> g +. (dvar *. e.Sizing.Engine.grad_var.(i))) e.Sizing.Engine.grad_mu )
  in
  let x = Circuit.Netlist.min_sizes net in
  (match Nlp.Check.gradient f x with
  | _ -> Alcotest.fail "unclamped check should step below the size bound"
  | exception Invalid_argument _ -> ());
  let v =
    Nlp.Check.gradient ~h:1e-4 ~rtol:1e-2 ~atol:1e-4
      ~lo:(Circuit.Netlist.min_sizes net) ~hi:(Circuit.Netlist.max_sizes net) f x
  in
  if not v.Nlp.Check.ok then
    Alcotest.failf "sizing gradient at bound: %s"
      (Format.asprintf "%a" Nlp.Check.pp_verdict v)

(* ---- KKT residuals ------------------------------------------------------------ *)

let box lower upper = { Nlp.Problem.lower; Nlp.Problem.upper }

let test_kkt_unconstrained_optimum () =
  (* f(x) = (x - 2)^2 at its interior minimum: a perfect certificate. *)
  let v =
    Nlp.Check.kkt ~bounds:(box [| 0. |] [| 10. |]) ~x:[| 2. |]
      ~objective_gradient:[| 0. |] ()
  in
  Alcotest.(check bool) "ok" true v.Nlp.Check.kkt_ok;
  Alcotest.(check (float 0.)) "stationarity" 0. v.Nlp.Check.stationarity;
  Alcotest.(check (float 0.)) "feasibility" 0. v.Nlp.Check.feasibility;
  Alcotest.(check (float 0.)) "complementarity" 0. v.Nlp.Check.complementarity;
  Alcotest.(check (float 0.)) "residual" 0. (Nlp.Check.kkt_residual v)

let test_kkt_active_bound_projection () =
  (* min x^2 on [1, 10]: the optimum pins x = 1 with gradient +2.  At an
     active lower bound only the negative part of the gradient counts
     (the positive part is absorbed by the bound multiplier), so the
     certificate is clean. *)
  let bounds = box [| 1. |] [| 10. |] in
  let ok = Nlp.Check.kkt ~bounds ~x:[| 1. |] ~objective_gradient:[| 2. |] () in
  Alcotest.(check bool) "optimal at lower bound" true ok.Nlp.Check.kkt_ok;
  (* The same positive gradient at the UPPER bound is a real descent
     direction into the interior — the projection must keep it. *)
  let bad = Nlp.Check.kkt ~bounds ~x:[| 10. |] ~objective_gradient:[| 2. |] () in
  Alcotest.(check bool) "not optimal at upper bound" false bad.Nlp.Check.kkt_ok;
  Alcotest.(check (float 0.)) "full gradient kept" 2. bad.Nlp.Check.stationarity

let test_kkt_inequality_certificate () =
  (* min x^2 s.t. 1 - x <= 0: optimum x = 1, lambda = 2 cancels the
     objective gradient exactly; the constraint is active so
     complementarity is exact too. *)
  let v =
    Nlp.Check.kkt ~bounds:(box [| -10. |] [| 10. |]) ~x:[| 1. |]
      ~objective_gradient:[| 2. |]
      ~inequalities:[ (0., [ (0, -1.) ], 2.) ]
      ()
  in
  Alcotest.(check bool) "ok" true v.Nlp.Check.kkt_ok;
  Alcotest.(check (float 1e-15)) "stationarity" 0. v.Nlp.Check.stationarity

let test_kkt_negative_multiplier_flagged () =
  (* lambda < 0 is a dual-feasibility violation even when the Lagrangian
     gradient happens to vanish. *)
  let v =
    Nlp.Check.kkt ~bounds:(box [| -10. |] [| 10. |]) ~x:[| 1. |]
      ~objective_gradient:[| -2. |]
      ~inequalities:[ (0., [ (0, -1.) ], -2.) ]
      ()
  in
  Alcotest.(check bool) "not ok" false v.Nlp.Check.kkt_ok;
  Alcotest.(check bool) "stationarity absorbs the bad multiplier" true
    (v.Nlp.Check.stationarity >= 2.)

let test_kkt_complementarity_violation () =
  (* A strictly satisfied constraint carrying a nonzero multiplier:
     |lambda * c| = 1.5 must surface as the complementarity residual. *)
  let v =
    Nlp.Check.kkt ~bounds:(box [| -10. |] [| 10. |]) ~x:[| 0. |]
      ~objective_gradient:[| 3. |]
      ~inequalities:[ (-0.5, [ (0, -3.) ], 3.) ]
      ()
  in
  Alcotest.(check bool) "not ok" false v.Nlp.Check.kkt_ok;
  Alcotest.(check (float 1e-15)) "complementarity" 1.5 v.Nlp.Check.complementarity

let test_kkt_feasibility_residuals () =
  (* Constraint violation and box violation both feed the feasibility
     residual; the larger wins. *)
  let v =
    Nlp.Check.kkt ~bounds:(box [| 0. |] [| 1. |]) ~x:[| 1.25 |]
      ~objective_gradient:[| 0. |]
      ~inequalities:[ (0.5, [ (0, 1.) ], 0.) ]
      ()
  in
  Alcotest.(check bool) "not ok" false v.Nlp.Check.kkt_ok;
  Alcotest.(check (float 1e-15)) "worst violation" 0.5 v.Nlp.Check.feasibility;
  Alcotest.(check (float 1e-15)) "headline is the max residual" 0.5
    (Nlp.Check.kkt_residual v)

let test_kkt_sparse_gradient_accumulates () =
  (* Repeated indices in a sparse constraint gradient add up: two half
     entries behave exactly like one full entry. *)
  let solve entries =
    Nlp.Check.kkt ~bounds:(box [| -10. |] [| 10. |]) ~x:[| 1. |]
      ~objective_gradient:[| 2. |]
      ~inequalities:[ (0., entries, 2.) ]
      ()
  in
  let split = solve [ (0, -0.5); (0, -0.5) ] and whole = solve [ (0, -1.) ] in
  Alcotest.(check (float 0.)) "same stationarity"
    whole.Nlp.Check.stationarity split.Nlp.Check.stationarity;
  Alcotest.(check bool) "both ok" true
    (split.Nlp.Check.kkt_ok && whole.Nlp.Check.kkt_ok)

let test_kkt_input_validation () =
  let bounds = box [| 0. |] [| 1. |] in
  Alcotest.check_raises "gradient dimension"
    (Invalid_argument "Check.kkt: gradient dimension mismatch") (fun () ->
      ignore (Nlp.Check.kkt ~bounds ~x:[| 0.5 |] ~objective_gradient:[| 0.; 0. |] ()));
  Alcotest.check_raises "sparse index range"
    (Invalid_argument "Check.kkt: gradient index out of range") (fun () ->
      ignore
        (Nlp.Check.kkt ~bounds ~x:[| 0.5 |] ~objective_gradient:[| 0. |]
           ~inequalities:[ (0., [ (1, 1.) ], 0.) ]
           ()))

let () =
  let q = Seed_info.to_alcotest in
  Alcotest.run "nlp"
    [
      ( "problem",
        [
          Alcotest.test_case "bounds validation" `Quick test_bounds_validation;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "max_violation" `Quick test_max_violation;
        ] );
      ( "lbfgs",
        [
          Alcotest.test_case "quadratic" `Quick test_lbfgs_quadratic_unbounded;
          Alcotest.test_case "active bounds" `Quick test_lbfgs_quadratic_active_bounds;
          Alcotest.test_case "rosenbrock" `Quick test_lbfgs_rosenbrock;
          Alcotest.test_case "x0 handling" `Quick test_lbfgs_x0_projected_not_mutated;
          Alcotest.test_case "already optimal" `Quick test_lbfgs_already_optimal;
          Alcotest.test_case "iteration limit" `Quick test_lbfgs_iteration_limit;
          Alcotest.test_case "dimension mismatch" `Quick test_lbfgs_dimension_mismatch;
          q prop_lbfgs_quadratic_random;
        ] );
      ( "auglag",
        [
          Alcotest.test_case "no constraints" `Quick test_auglag_no_constraints_delegates;
          Alcotest.test_case "equality" `Quick test_auglag_equality_projection;
          Alcotest.test_case "inactive inequality" `Quick test_auglag_inequality_inactive;
          Alcotest.test_case "active inequality" `Quick test_auglag_inequality_active;
          Alcotest.test_case "mixed with box" `Quick test_auglag_mixed_constraints_with_box;
          Alcotest.test_case "infeasible" `Quick test_auglag_infeasible_reports;
          Alcotest.test_case "nonlinear constraint" `Quick test_auglag_nonlinear_constraint;
          Alcotest.test_case "penalty ceiling" `Quick test_auglag_penalty_ceiling;
          Alcotest.test_case "stalled" `Quick test_auglag_stalled;
          Alcotest.test_case "inner stagnation ok" `Quick
            test_auglag_inner_stagnation_reports_ok;
          Alcotest.test_case "m=0 iteration limit" `Quick
            test_auglag_m0_iteration_limit_is_stalled;
          Alcotest.test_case "breakdown: NaN objective" `Quick
            test_auglag_breakdown_nan_objective;
          Alcotest.test_case "breakdown: Inf gradient" `Quick
            test_auglag_breakdown_inf_constraint_gradient;
          Alcotest.test_case "evaluation budget" `Quick test_auglag_eval_budget_deadline;
          Alcotest.test_case "guard bit-identity" `Quick test_auglag_guard_bit_identical;
          q prop_auglag_matches_kkt_solution;
        ] );
      ( "newton",
        [
          Alcotest.test_case "quadratic" `Quick test_newton_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_newton_rosenbrock;
          Alcotest.test_case "active bounds" `Quick test_newton_active_bounds;
          Alcotest.test_case "dimension mismatch" `Quick test_newton_dimension_mismatch;
          Alcotest.test_case "auglag newton inner" `Quick test_auglag_newton_inner;
          q prop_newton_matches_lbfgs;
        ] );
      ( "check",
        [
          Alcotest.test_case "accepts correct" `Quick test_check_accepts_correct_gradient;
          Alcotest.test_case "rejects wrong" `Quick test_check_rejects_wrong_gradient;
          Alcotest.test_case "clamps at lower bound" `Quick
            test_check_clamps_stencil_at_lower_bound;
          Alcotest.test_case "clamps at upper bound" `Quick
            test_check_clamps_at_upper_bound;
          Alcotest.test_case "pinched coordinate" `Quick
            test_check_pinched_coordinate_reports_zero;
          Alcotest.test_case "bound dimension mismatch" `Quick
            test_check_bound_dimension_mismatch;
          Alcotest.test_case "sizing objective at min sizes" `Quick
            test_check_sizing_objective_at_min_sizes;
        ] );
      ( "kkt",
        [
          Alcotest.test_case "unconstrained optimum" `Quick
            test_kkt_unconstrained_optimum;
          Alcotest.test_case "active bound projection" `Quick
            test_kkt_active_bound_projection;
          Alcotest.test_case "inequality certificate" `Quick
            test_kkt_inequality_certificate;
          Alcotest.test_case "negative multiplier flagged" `Quick
            test_kkt_negative_multiplier_flagged;
          Alcotest.test_case "complementarity violation" `Quick
            test_kkt_complementarity_violation;
          Alcotest.test_case "feasibility residuals" `Quick
            test_kkt_feasibility_residuals;
          Alcotest.test_case "sparse gradient accumulates" `Quick
            test_kkt_sparse_gradient_accumulates;
          Alcotest.test_case "input validation" `Quick test_kkt_input_validation;
        ] );
    ]
