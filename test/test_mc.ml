(* Tests for the batched circuit-level Monte Carlo SSTA oracle
   (Sta.Mcsta) and its differential/property layer:

   - determinism: Int64-bitwise-identical samples for any batch size and
     any domain count (the engine's core contract),
   - differential agreement with the analytic Clark engine on
     independence-respecting circuits, with tolerances budgeted from
     Statdelay.Mc.standard_errors plus the known fold bias,
   - directional checks on reconvergent DAGs (where the paper's
     independence assumption is only an approximation),
   - the deterministic limit: sigma -> 0 collapses both Ssta and Mcsta
     onto Dsta exactly,
   - the Section-4 conformance claim (50% / 84.1% / 99.8%) on the sized
     tree, within the binomial confidence interval plus the documented
     model bias. *)

open Circuit
module Mcsta = Sta.Mcsta

let model = Sigma_model.paper_default
let bits = Int64.bits_of_float

(* The pooled tests default to 2- and 4-domain pools; CI overrides the
   larger one via STATSIZE_TEST_JOBS to pin the pooled path width. *)
let big_jobs =
  match Sys.getenv_opt "STATSIZE_TEST_JOBS" with
  | Some s -> (match int_of_string_opt s with Some j when j >= 2 -> j | _ -> 4)
  | None -> 4

let pool2 = Util.Pool.create ~jobs:2 ()
let pool_big = Util.Pool.create ~jobs:big_jobs ()

let wide_dag ?(n_gates = 600) seed =
  Generate.random_dag
    {
      Generate.default_spec with
      Generate.n_gates;
      n_pis = 40;
      target_depth = 8;
      seed;
    }

let check_samples_identical msg a b =
  Alcotest.(check int) (msg ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then
        Alcotest.failf "%s: sample %d differs (%h vs %h)" msg i x b.(i))
    a

(* ---- determinism ------------------------------------------------------------ *)

let test_batch_invariance () =
  let net = Generate.apex2_like () in
  let sizes = Netlist.min_sizes net in
  let reference = Mcsta.sample ~model ~seed:3 ~batch:1024 net ~sizes ~n:777 in
  List.iter
    (fun batch ->
      let s = Mcsta.sample ~model ~seed:3 ~batch net ~sizes ~n:777 in
      check_samples_identical (Printf.sprintf "batch %d" batch) reference s)
    [ 1; 7; 64; 777; 4096 ]

let test_pool_invariance () =
  let net = wide_dag 51 in
  let sizes = Netlist.min_sizes net in
  let serial = Mcsta.sample ~model ~seed:5 net ~sizes ~n:512 in
  List.iter
    (fun (label, pool) ->
      (* Vary the batch size at the same time: neither knob may matter. *)
      List.iter
        (fun batch ->
          let s = Mcsta.sample ~pool ~batch ~model ~seed:5 net ~sizes ~n:512 in
          check_samples_identical (Printf.sprintf "%s batch %d" label batch) serial s)
        [ 64; 512 ])
    [ ("2 domains", pool2); (Printf.sprintf "%d domains" big_jobs, pool_big) ]

let test_seed_sensitivity () =
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let a = Mcsta.sample ~model ~seed:1 net ~sizes ~n:64 in
  let b = Mcsta.sample ~model ~seed:2 net ~sizes ~n:64 in
  Alcotest.(check bool) "different seeds differ" true (a <> b);
  let a' = Mcsta.sample ~model ~seed:1 net ~sizes ~n:64 in
  check_samples_identical "same seed reproduces" a a'

let test_prefix_property () =
  (* Growing n must extend, not reshuffle, the sample stream: sample k of
     gate g depends only on (seed, g, k). *)
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let long = Mcsta.sample ~model ~seed:4 ~batch:50 net ~sizes ~n:150 in
  let short = Mcsta.sample ~model ~seed:4 ~batch:50 net ~sizes ~n:60 in
  check_samples_identical "prefix" short (Array.sub long 0 60)

let test_invalid_args () =
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  Alcotest.check_raises "n = 0" (Invalid_argument "Mcsta.sample: n must be positive")
    (fun () -> ignore (Mcsta.sample ~model net ~sizes ~n:0));
  Alcotest.check_raises "batch = 0"
    (Invalid_argument "Mcsta.sample: batch must be positive") (fun () ->
      ignore (Mcsta.sample ~model ~batch:0 net ~sizes ~n:10))

(* ---- differential: analytic SSTA vs sampled moments ------------------------- *)

(* Error budget for comparing the analytic result with empirical moments:
   sampling noise (Statdelay.Mc.standard_errors at z = 5) plus a bias
   allowance for the two-operand fold, as fraction of sigma. *)
let moment_budget ~sigma ~n ~bias_frac =
  let se_mu, se_sigma = Statdelay.Mc.standard_errors ~sigma ~n in
  ((5. *. se_mu) +. (bias_frac *. sigma), (5. *. se_sigma) +. (bias_frac *. sigma))

let check_moments name net ~n ~bias_frac =
  let sizes = Netlist.min_sizes net in
  let analytic = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit in
  let mu_a = Statdelay.Normal.mu analytic in
  let sigma_a = Statdelay.Normal.sigma analytic in
  let s = Mcsta.summarize (Mcsta.sample ~pool:pool2 ~model ~seed:17 net ~sizes ~n) in
  let tol_mu, tol_sigma = moment_budget ~sigma:sigma_a ~n ~bias_frac in
  if abs_float (s.Mcsta.mu -. mu_a) > tol_mu then
    Alcotest.failf "%s: mu %.4f vs analytic %.4f (tol %.4f)" name s.Mcsta.mu mu_a
      tol_mu;
  if abs_float (s.Mcsta.sigma -. sigma_a) > tol_sigma then
    Alcotest.failf "%s: sigma %.4f vs analytic %.4f (tol %.4f)" name s.Mcsta.sigma
      sigma_a tol_sigma

let test_moments_chain () =
  (* A chain has no max at all: eq. 4 addition is exact, so the only
     error is sampling noise. *)
  check_moments "chain" (Generate.chain ~length:30 ()) ~n:40_000 ~bias_frac:0.005

let test_moments_tree () =
  (* The tree's paths share no gates, so independence holds exactly and
     the residual is the two-operand fold bias (~1-2% of sigma). *)
  check_moments "tree" (Generate.tree ()) ~n:40_000 ~bias_frac:0.02

let test_reconvergent_directional () =
  (* Under reconvergent fanout the paper's independence assumption makes
     the analytic engine overestimate mu and underestimate sigma (its
     declared future work); the oracle must sit on the proper side. *)
  List.iter
    (fun (name, net) ->
      let sizes = Netlist.min_sizes net in
      let analytic = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit in
      let mu_a = Statdelay.Normal.mu analytic in
      let sigma_a = Statdelay.Normal.sigma analytic in
      let s = Mcsta.summarize (Mcsta.sample ~pool:pool2 ~model ~seed:23 net ~sizes ~n:20_000) in
      let se_mu, _ = Statdelay.Mc.standard_errors ~sigma:s.Mcsta.sigma ~n:s.Mcsta.n in
      if s.Mcsta.mu > mu_a +. (5. *. se_mu) then
        Alcotest.failf "%s: sampled mu %.4f above analytic %.4f" name s.Mcsta.mu mu_a;
      if s.Mcsta.sigma < 0.9 *. sigma_a then
        Alcotest.failf "%s: sampled sigma %.4f below 0.9x analytic %.4f" name
          s.Mcsta.sigma sigma_a;
      (* and the gap stays bounded: the approximation is usable. *)
      if abs_float (s.Mcsta.mu -. mu_a) > 0.10 *. mu_a then
        Alcotest.failf "%s: mu gap exceeds 10%%" name)
    [
      ("apex2*", Generate.apex2_like ());
      ("dag42", wide_dag ~n_gates:300 42);
      ("dag43", wide_dag ~n_gates:300 43);
    ]

(* ---- the deterministic limit ------------------------------------------------ *)

let test_sigma_zero_collapses_to_dsta () =
  List.iter
    (fun (name, net) ->
      let sizes = Netlist.min_sizes net in
      let d = Sta.Dsta.analyze net ~sizes in
      (* Ssta with the Zero model is Dsta gate by gate. *)
      let s = Sta.Ssta.analyze ~model:Sigma_model.Zero net ~sizes in
      Array.iteri
        (fun g (a : Statdelay.Normal.t) ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s: gate %d mu" name g)
            d.Sta.Dsta.arrival.(g) a.Statdelay.Normal.mu;
          Alcotest.(check (float 0.)) "var" 0. a.Statdelay.Normal.var)
        s.Sta.Ssta.arrival;
      (* Mcsta with the Zero model: every sample IS the deterministic
         delay, bit for bit (mu +. 0. *. z leaves mu untouched). *)
      let mc = Mcsta.sample ~model:Sigma_model.Zero ~seed:12 net ~sizes ~n:16 in
      Array.iteri
        (fun i t ->
          if not (Int64.equal (bits t) (bits d.Sta.Dsta.circuit)) then
            Alcotest.failf "%s: sample %d = %h <> dsta %h" name i t
              d.Sta.Dsta.circuit)
        mc)
    [ ("tree", Generate.tree ()); ("dag44", wide_dag ~n_gates:200 44) ]

let test_sigma_limit_continuity () =
  (* Proportional r -> 0 approaches the deterministic answer smoothly. *)
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let d = (Sta.Dsta.analyze net ~sizes).Sta.Dsta.circuit in
  let mu_at r =
    Statdelay.Normal.mu
      (Sta.Ssta.analyze ~model:(Sigma_model.Proportional r) net ~sizes).Sta.Ssta.circuit
  in
  Alcotest.(check (float 1e-6)) "r = 1e-9" d (mu_at 1e-9);
  let err r = abs_float (mu_at r -. d) in
  Alcotest.(check bool) "monotone approach" true (err 1e-3 < err 1e-2 && err 1e-2 < err 1e-1)

(* ---- pi_arrival and draw hooks ---------------------------------------------- *)

let test_pi_arrival_shift () =
  let net = Generate.tree () in
  let sizes = Netlist.min_sizes net in
  let base = Mcsta.sample ~model ~seed:6 net ~sizes ~n:256 in
  let shifted =
    Mcsta.sample ~model ~seed:6 ~pi_arrival:(fun _ -> 2.5) net ~sizes ~n:256
  in
  Array.iteri
    (fun i t ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "sample %d" i) (t +. 2.5)
        shifted.(i))
    base

let test_draw_hook_two_point () =
  (* With the two-point family every gate delay is mu +/- sigma, so on a
     single-path chain each sample is a sum of n such terms: bounded by
     the all-plus / all-minus extremes, and matching the model moments. *)
  let net = Generate.chain ~length:10 () in
  let sizes = Netlist.min_sizes net in
  let mu_t = Sta.Dsta.delays net ~sizes in
  let hi =
    Array.fold_left (fun acc mu -> acc +. mu +. Sigma_model.sigma model mu) 0. mu_t
  in
  let lo =
    Array.fold_left (fun acc mu -> acc +. mu -. Sigma_model.sigma model mu) 0. mu_t
  in
  let draw rng ~mu ~sigma = Sta.Yield.draw_shape rng Sta.Yield.Two_point ~mu ~sigma in
  let samples = Mcsta.sample ~model ~seed:8 ~draw net ~sizes ~n:4096 in
  Array.iter
    (fun t ->
      if t < lo -. 1e-9 || t > hi +. 1e-9 then
        Alcotest.failf "two-point sample %.4f outside [%.4f, %.4f]" t lo hi)
    samples;
  let s = Mcsta.summarize samples in
  let analytic = (Sta.Ssta.analyze ~model net ~sizes).Sta.Ssta.circuit in
  let tol_mu, tol_sigma =
    moment_budget ~sigma:(Statdelay.Normal.sigma analytic) ~n:4096 ~bias_frac:0.01
  in
  Alcotest.(check (float tol_mu)) "two-point mu" (Statdelay.Normal.mu analytic) s.Mcsta.mu;
  Alcotest.(check (float tol_sigma)) "two-point sigma"
    (Statdelay.Normal.sigma analytic) s.Mcsta.sigma

(* ---- reductions ------------------------------------------------------------- *)

let test_summarize_and_conformance () =
  let samples = Array.init 1000 (fun i -> float_of_int i) in
  let s = Mcsta.summarize ~quantiles:[ 0.; 0.5; 1. ] samples in
  Alcotest.(check int) "n" 1000 s.Mcsta.n;
  Alcotest.(check (float 1e-9)) "mu" 499.5 s.Mcsta.mu;
  Alcotest.(check (float 1e-9)) "min" 0. s.Mcsta.min_t;
  Alcotest.(check (float 1e-9)) "max" 999. s.Mcsta.max_t;
  (match s.Mcsta.quantiles with
  | [ (_, q0); (_, q50); (_, q100) ] ->
      Alcotest.(check (float 1e-9)) "q0" 0. q0;
      Alcotest.(check (float 1e-9)) "q50" 499.5 q50;
      Alcotest.(check (float 1e-9)) "q100" 999. q100
  | _ -> Alcotest.fail "expected three quantiles");
  let c = Mcsta.conformance samples ~budget:249. in
  Alcotest.(check int) "hits" 250 c.Mcsta.hits;
  Alcotest.(check (float 1e-9)) "p" 0.25 c.Mcsta.p;
  Alcotest.(check bool) "ci ordered" true
    (0. <= c.Mcsta.ci_lo && c.Mcsta.ci_lo <= c.Mcsta.p
    && c.Mcsta.p <= c.Mcsta.ci_hi && c.Mcsta.ci_hi <= 1.);
  (* Wilson never collapses to a point at the extremes. *)
  let none = Mcsta.conformance samples ~budget:(-1.) in
  Alcotest.(check int) "no hits" 0 none.Mcsta.hits;
  Alcotest.(check bool) "ci_hi > 0 at p = 0" true (none.Mcsta.ci_hi > 0.)

(* ---- the Section-4 conformance claim ---------------------------------------- *)

let test_conformance_claim_sized_tree () =
  let net = Generate.tree () in
  let unsized, _ =
    Sizing.Engine.evaluate ~model net ~sizes:(Netlist.min_sizes net)
  in
  (* 92% of the unsized mean: loose enough that all three guard-band
     constraints bind (at 85% the k=3 sizing saturates; see
     EXPERIMENTS.md), tight enough to be a real constraint. *)
  let deadline = 0.92 *. Statdelay.Normal.mu unsized.Sta.Ssta.circuit in
  let n = 20_000 in
  List.iter
    (fun (k, bias_allowance) ->
      let predicted = Util.Special.normal_cdf k in
      let sol =
        Sizing.Engine.solve ~model net
          (Sizing.Objective.Min_area_bounded { k; bound = deadline })
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%g converged" k)
        true sol.Sizing.Engine.converged;
      (* the constraint must actually bind, or Phi(k) is the wrong target *)
      Alcotest.(check (float 5e-3))
        (Printf.sprintf "k=%g constraint active" k)
        deadline
        (sol.Sizing.Engine.mu +. (k *. sol.Sizing.Engine.sigma));
      let samples =
        Mcsta.sample ~pool:pool_big ~model ~seed:9 net
          ~sizes:sol.Sizing.Engine.sizes ~n
      in
      let c = Mcsta.conformance samples ~budget:deadline in
      (* (a) the estimate sits within binomial noise + model bias of the
         prediction.  The bias allowance covers what the normal model
         cannot: the sampled max is right-skewed (median < mean, so k=0
         reads ~0.5% high) and the folded sigma is ~0.5% low. *)
      let se = sqrt (predicted *. (1. -. predicted) /. float_of_int n) in
      let dev = abs_float (c.Mcsta.p -. predicted) in
      if dev > (3. *. se) +. bias_allowance then
        Alcotest.failf "k=%g: MC %.4f vs predicted %.4f (tol %.4f)" k c.Mcsta.p
          predicted
          ((3. *. se) +. bias_allowance);
      (* (b) the paper's rounded claim lies inside the reported CI. *)
      let claim = match k with 0. -> 0.5 | 1. -> 0.841 | _ -> 0.998 in
      if claim < c.Mcsta.ci_lo -. bias_allowance
         || claim > c.Mcsta.ci_hi +. bias_allowance
      then
        Alcotest.failf "k=%g: paper claim %.3f outside CI [%.4f, %.4f]" k claim
          c.Mcsta.ci_lo c.Mcsta.ci_hi)
    [ (0., 0.008); (1., 0.005); (3., 0.0015) ]

let () =
  let open Alcotest in
  run "mc"
    [
      ( "determinism",
        [
          test_case "batch invariance" `Quick test_batch_invariance;
          test_case "pool invariance" `Quick test_pool_invariance;
          test_case "seed sensitivity" `Quick test_seed_sensitivity;
          test_case "prefix property" `Quick test_prefix_property;
          test_case "invalid args" `Quick test_invalid_args;
        ] );
      ( "differential",
        [
          test_case "chain moments" `Quick test_moments_chain;
          test_case "tree moments" `Quick test_moments_tree;
          test_case "reconvergent directional" `Quick test_reconvergent_directional;
        ] );
      ( "deterministic limit",
        [
          test_case "sigma = 0 collapses to Dsta" `Quick
            test_sigma_zero_collapses_to_dsta;
          test_case "sigma -> 0 continuity" `Quick test_sigma_limit_continuity;
        ] );
      ( "hooks",
        [
          test_case "pi_arrival shift" `Quick test_pi_arrival_shift;
          test_case "two-point draw" `Quick test_draw_hook_two_point;
        ] );
      ( "reductions",
        [ test_case "summarize/conformance" `Quick test_summarize_and_conformance ] );
      ( "claim",
        [ test_case "50/84.1/99.8 on the sized tree" `Slow test_conformance_claim_sized_tree ] );
    ]
