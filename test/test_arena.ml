(* Differential tests for the flat structure-of-arrays timing arena.

   Sta.Ssta.Boxed is the pre-refactor record-based implementation kept
   verbatim as a golden oracle: every arena-backed engine entry point
   must produce Int64-bit-identical values AND gradients against it, on
   generated and .bench circuits, at 1, 2 and 4 domains, across arena
   reuse (the same planes swept at many size vectors).  A second group
   is a Gc-based regression test: a steady-state forward (and reverse)
   sweep on a reused arena must not allocate — strictly in the release
   profile where the Clark kernels inline, within a loose per-gate
   ceiling in the dev profile (whose -opaque flag blocks cross-library
   inlining and re-boxes kernel arguments). *)

open Circuit

let model = Sigma_model.paper_default
let pool2 = Util.Pool.create ~jobs:2 ()
let pool4 = Util.Pool.create ~jobs:4 ()
let pools = [ (1, None); (2, Some pool2); (4, Some pool4) ]

(* ---- bit-level comparison helpers ------------------------------------------- *)

let bits = Int64.bits_of_float

let check_normal_identical msg (a : Statdelay.Normal.t) (b : Statdelay.Normal.t) =
  if
    not
      (Int64.equal (bits a.Statdelay.Normal.mu) (bits b.Statdelay.Normal.mu)
      && Int64.equal (bits a.Statdelay.Normal.var) (bits b.Statdelay.Normal.var))
  then
    Alcotest.failf "%s: (%h, %h) <> (%h, %h)" msg a.Statdelay.Normal.mu
      a.Statdelay.Normal.var b.Statdelay.Normal.mu b.Statdelay.Normal.var

let check_floats_identical msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then
        Alcotest.failf "%s: slot %d: %h <> %h" msg i x b.(i))
    a

let check_results_identical msg (a : Sta.Ssta.result) (b : Sta.Ssta.result) =
  check_normal_identical (msg ^ ": circuit") a.Sta.Ssta.circuit b.Sta.Ssta.circuit;
  Array.iteri
    (fun i x -> check_normal_identical (msg ^ ": arrival") x b.Sta.Ssta.arrival.(i))
    a.Sta.Ssta.arrival;
  Array.iteri
    (fun i x ->
      check_normal_identical (msg ^ ": gate_delay") x b.Sta.Ssta.gate_delay.(i))
    a.Sta.Ssta.gate_delay;
  check_floats_identical (msg ^ ": loads") a.Sta.Ssta.loads b.Sta.Ssta.loads

(* ---- circuits under test ---------------------------------------------------- *)

let wide_dag ?(n_gates = 300) seed =
  Generate.random_dag
    {
      Generate.default_spec with
      Generate.n_gates;
      n_pis = 30;
      target_depth = 8;
      seed;
    }

let bench_net =
  lazy
    (let path =
       match
         List.find_opt Sys.file_exists
           [ "../examples/cla4.bench"; "examples/cla4.bench" ]
       with
       | Some p -> p
       | None -> Alcotest.fail "examples/cla4.bench not found (is it a test dep?)"
     in
     match Bench_format.parse_file ~library:(Cell.Library.default ()) path with
     | Ok net -> net
     | Error e ->
         Alcotest.failf "cla4.bench: %s" (Format.asprintf "%a" Bench_format.pp_error e))

let nets_under_test () =
  [
    ("fig2", Generate.example_fig2 ());
    ("tree", Generate.tree ());
    ("cla4.bench", Lazy.force bench_net);
    ("apex2*", Generate.apex2_like ());
    ("dag300", wide_dag 13);
  ]

(* ---- differential harness --------------------------------------------------- *)

let basis_mu _ = { Sta.Ssta.d_mu = 1.; d_var = 0. }
let basis_var _ = { Sta.Ssta.d_mu = 0.; d_var = 1. }

let seed_for step =
  match step mod 3 with
  | 0 -> ("mu", basis_mu)
  | 1 -> ("var", basis_var)
  | _ -> ("mu+3s", Sta.Ssta.mu_plus_k_sigma_seed 3.)

(* Sweep the SAME arena at a sequence of random interior points,
   asserting every snapshot and gradient bit-identical to the boxed
   golden path. *)
let run_differential ?pool ~steps ~seed name net =
  let rng = Util.Rng.create seed in
  let arena = Sta.Arena.create net in
  let n = Netlist.n_gates net in
  let maxs = Netlist.max_sizes net in
  let sizes = Array.copy (Netlist.min_sizes net) in
  for step = 1 to steps do
    for _ = 1 to 1 + Util.Rng.int rng (max 1 (n / 10)) do
      let i = Util.Rng.int rng n in
      sizes.(i) <- Util.Rng.uniform rng ~lo:1.0 ~hi:maxs.(i)
    done;
    let msg = Printf.sprintf "%s step %d" name step in
    if step mod 4 = 0 then
      check_results_identical msg
        (Sta.Ssta.Boxed.analyze ?pool ~model net ~sizes)
        (Sta.Ssta.analyze ?pool ~arena ~model net ~sizes)
    else begin
      let seed_name, seedf = seed_for step in
      let msg = Printf.sprintf "%s (%s)" msg seed_name in
      let res_b, grad_b =
        Sta.Ssta.Boxed.value_and_gradient ?pool ~model net ~sizes ~seed:seedf
      in
      let res_a, grad_a =
        Sta.Ssta.value_and_gradient ?pool ~arena ~model net ~sizes ~seed:seedf
      in
      check_results_identical msg res_b res_a;
      check_floats_identical (msg ^ ": grad") grad_b grad_a
    end
  done

let test_differential_all_circuits () =
  List.iter
    (fun (name, net) ->
      List.iter
        (fun (jobs, pool) ->
          let name = Printf.sprintf "%s jobs=%d" name jobs in
          run_differential ?pool ~steps:12 ~seed:(31 * jobs) name net)
        pools)
    (nets_under_test ())

(* Non-default primary-input arrivals exercise the pi planes. *)
let test_differential_pi_arrival () =
  let net = Generate.apex2_like () in
  let sizes = Netlist.min_sizes net in
  let pi_arrival i =
    Statdelay.Normal.make ~mu:(0.1 *. float_of_int (i mod 5)) ~sigma:0.05
  in
  let seedf = Sta.Ssta.mu_plus_k_sigma_seed 3. in
  let res_b, grad_b =
    Sta.Ssta.Boxed.value_and_gradient ~pi_arrival ~model net ~sizes ~seed:seedf
  in
  let res_a, grad_a =
    Sta.Ssta.value_and_gradient ~pi_arrival ~model net ~sizes ~seed:seedf
  in
  check_results_identical "pi arrivals" res_b res_a;
  check_floats_identical "pi arrivals: grad" grad_b grad_a

(* The satellite engines must not drift when handed an arena. *)
let test_engines_arena_identical () =
  let net = Generate.apex2_like () in
  let sizes = Netlist.min_sizes net in
  let arena = Sta.Arena.create net in
  let mc = Sta.Mcsta.sample ~seed:5 ~model net ~sizes ~n:256 in
  let mc_arena = Sta.Mcsta.sample ~arena ~seed:5 ~model net ~sizes ~n:256 in
  check_floats_identical "mcsta samples" mc mc_arena;
  let y =
    Sta.Yield.sample_circuit_delays ~rng:(Util.Rng.create 7) ~model net ~sizes
      ~n:64
  in
  let y_arena =
    Sta.Yield.sample_circuit_delays ~rng:(Util.Rng.create 7) ~arena ~model net
      ~sizes ~n:64
  in
  check_floats_identical "yield samples" y y_arena;
  let c = Sta.Crit.monte_carlo ~rng:(Util.Rng.create 11) ~model net ~sizes ~n:64 in
  let c_arena =
    Sta.Crit.monte_carlo ~rng:(Util.Rng.create 11) ~arena ~model net ~sizes ~n:64
  in
  check_floats_identical "criticalities" c.Sta.Crit.criticality
    c_arena.Sta.Crit.criticality

(* Dsta.propagate_into against its allocating wrapper. *)
let test_propagate_into_identical () =
  let net = Generate.apex2_like () in
  let sizes = Netlist.min_sizes net in
  let gate_delay = Sta.Dsta.delays net ~sizes in
  let r = Sta.Dsta.analyze_with_delays net ~gate_delay in
  let arrival = Array.make (Netlist.n_gates net) nan in
  let circuit = Sta.Dsta.propagate_into net ~gate_delay ~arrival in
  check_floats_identical "arrival" r.Sta.Dsta.arrival arrival;
  check_floats_identical "circuit" [| r.Sta.Dsta.circuit |] [| circuit |]

let test_arena_netlist_mismatch () =
  let arena = Sta.Arena.create (Generate.tree ()) in
  let net = Generate.example_fig2 () in
  Alcotest.check_raises "wrong netlist"
    (Invalid_argument "Ssta: arena was created for a different netlist")
    (fun () ->
      ignore (Sta.Ssta.analyze ~arena ~model net ~sizes:(Netlist.min_sizes net)))

let prop_random_dag_differential =
  QCheck.Test.make ~name:"arena bit-identical on random netlists" ~count:8
    (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) (int_range 80 400)))
    (fun (seed, n_gates) ->
      let net = wide_dag ~n_gates (seed + 1) in
      run_differential ~steps:6 ~seed
        (Printf.sprintf "dag%d seed=%d" n_gates seed)
        net;
      true)

(* ---- streaming loader equivalence ------------------------------------------- *)

(* Bench_stream must produce a netlist indistinguishable from
   Bench_format's record-graph path: same ids, names and CSR columns,
   and bit-identical sweep results.  Exercised on the bundled circuit
   plus a synthetic file covering the decomposition paths (wide
   AND/NAND/XOR, BUFF/NOT, DFF cut, comments, blank lines). *)

let synthetic_bench =
  {|# synthetic decomposition exercise
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)

s = DFF(w)
w = NAND(a, b, c, d, e)
x = AND(a, b, c, d)
y = XOR(x, s, c)
z = NOR(y, w, d)
o = NOT(z)
p = BUFF(o)
OUTPUT(p)
OUTPUT(y)
|}

let check_netlists_equal msg a b =
  let fa = Netlist.flat a and fb = Netlist.flat b in
  Alcotest.(check int) (msg ^ ": n_gates") (Netlist.n_gates a) (Netlist.n_gates b);
  Alcotest.(check int) (msg ^ ": n_pis") (Netlist.n_pis a) (Netlist.n_pis b);
  Alcotest.(check int) (msg ^ ": n_pos") (Netlist.n_pos a) (Netlist.n_pos b);
  for id = 0 to Netlist.n_gates a - 1 do
    let ga = Netlist.gate a id and gb = Netlist.gate b id in
    Alcotest.(check string)
      (Printf.sprintf "%s: gate %d name" msg id)
      ga.Netlist.gate_name gb.Netlist.gate_name;
    Alcotest.(check string)
      (Printf.sprintf "%s: gate %d cell" msg id)
      ga.Netlist.cell.Cell.name gb.Netlist.cell.Cell.name;
    Alcotest.(check (array (of_pp Fmt.(of_to_string (function
        | Netlist.Pi i -> "pi" ^ string_of_int i
        | Netlist.Gate g -> "g" ^ string_of_int g)))))
      (Printf.sprintf "%s: gate %d fanin" msg id)
      ga.Netlist.fanin gb.Netlist.fanin
  done;
  Alcotest.(check (array int)) (msg ^ ": perm") fa.Netlist.perm fb.Netlist.perm;
  Alcotest.(check (array int)) (msg ^ ": lvl_off") fa.Netlist.lvl_off fb.Netlist.lvl_off;
  Alcotest.(check (array int)) (msg ^ ": fi_off") fa.Netlist.fi_off fb.Netlist.fi_off;
  Alcotest.(check (array int)) (msg ^ ": fi_node") fa.Netlist.fi_node fb.Netlist.fi_node;
  Alcotest.(check (array int)) (msg ^ ": fo_off") fa.Netlist.fo_off fb.Netlist.fo_off;
  Alcotest.(check (array int))
    (msg ^ ": fo_consumer") fa.Netlist.fo_consumer fb.Netlist.fo_consumer;
  check_floats_identical (msg ^ ": fo_mult") fa.Netlist.fo_mult fb.Netlist.fo_mult;
  check_floats_identical (msg ^ ": fo_cin") fa.Netlist.fo_cin fb.Netlist.fo_cin;
  Alcotest.(check (array int)) (msg ^ ": po_node") fa.Netlist.po_node fb.Netlist.po_node;
  (* And the sweeps agree bit for bit. *)
  let sweep net =
    let arena = Sta.Arena.create net in
    Sta.Ssta.forward_raw ~model arena ~sizes:(Netlist.min_sizes net);
    (Sta.Arena.circuit_mu arena, Sta.Arena.circuit_var arena)
  in
  let mu_a, var_a = sweep a and mu_b, var_b = sweep b in
  if not (Int64.equal (bits mu_a) (bits mu_b) && Int64.equal (bits var_a) (bits var_b))
  then Alcotest.failf "%s: circuit moments differ: (%h,%h) <> (%h,%h)" msg mu_a var_a mu_b var_b

let test_stream_loader_identical () =
  let library = Cell.Library.default () in
  (match
     ( Bench_format.parse_string ~library synthetic_bench,
       Bench_stream.parse_string ~library synthetic_bench )
   with
  | Ok a, Ok b -> check_netlists_equal "synthetic" a b
  | Error e, _ | _, Error e ->
      Alcotest.failf "synthetic: %s" (Format.asprintf "%a" Bench_format.pp_error e));
  let path =
    match
      List.find_opt Sys.file_exists
        [ "../examples/cla4.bench"; "examples/cla4.bench" ]
    with
    | Some p -> p
    | None -> Alcotest.fail "examples/cla4.bench not found (is it a test dep?)"
  in
  match
    ( Bench_format.parse_file ~library path,
      Bench_stream.parse_file ~library path )
  with
  | Ok a, Ok b -> check_netlists_equal "cla4.bench" a b
  | Error e, _ | _, Error e ->
      Alcotest.failf "cla4.bench: %s" (Format.asprintf "%a" Bench_format.pp_error e)

let test_stream_loader_errors () =
  let library = Cell.Library.default () in
  let expect_error msg text =
    match Bench_stream.parse_string ~library text with
    | Ok _ -> Alcotest.failf "%s: expected an error" msg
    | Error e ->
        let reference =
          match Bench_format.parse_string ~library text with
          | Ok _ -> Alcotest.failf "%s: record loader accepted it" msg
          | Error r -> r
        in
        Alcotest.(check string) (msg ^ ": message") reference.Bench_format.message
          e.Bench_format.message
  in
  expect_error "cycle" "INPUT(a)\nx = AND(a, y)\ny = AND(a, x)\nOUTPUT(y)\n";
  expect_error "twice" "INPUT(a)\nx = NOT(a)\nx = BUFF(a)\nOUTPUT(x)\n";
  expect_error "undriven out" "INPUT(a)\nx = NOT(a)\nOUTPUT(zz)\n";
  expect_error "syntax" "INPUT(a)\nx = \nOUTPUT(x)\n"

(* ---- zero-allocation regression --------------------------------------------- *)

(* Same canary as bench/main.ml: computed float arguments to an
   in-place kernel allocate at every call unless the call was inlined
   (dev profile compiles with -opaque, which suppresses cross-library
   inlining; release inlines and the sweeps run allocation-free). *)
let kernels_inlined () =
  let out = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 2 in
  Bigarray.Array1.fill out 0.;
  let x = Sys.opaque_identity 0.5 in
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to 1000 do
    Statdelay.Clark.add_into ~mu_a:(x +. 0.5) ~var_a:(x *. 0.2) ~mu_b:(x +. 1.5)
      ~var_b:(x *. 0.4) out 0
  done;
  ignore
    (Sys.opaque_identity (Statdelay.Clark.vget out 0 +. Statdelay.Clark.vget out 1));
  Gc.minor_words () -. w0 < 64.

let words_per_eval ~reps f =
  f ();
  Gc.full_major ();
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    f ()
  done;
  (Gc.minor_words () -. w0) /. float_of_int reps

let test_steady_state_allocation () =
  let net = wide_dag ~n_gates:400 29 in
  let n = Netlist.n_gates net in
  let sizes = Netlist.min_sizes net in
  let arena = Sta.Arena.create net in
  (* Strict bound when the kernels inline: a handful of words from the
     instrumentation shims ([Gc.minor_words] itself boxes, [Instr.time]
     closes over the section).  Loose per-gate ceiling otherwise (boxed
     kernel arguments only — still far below the boxed sweeps' hundreds
     of words per gate). *)
  let ceiling = if kernels_inlined () then 256. else 128. *. float_of_int n in
  let w_fwd =
    words_per_eval ~reps:10 (fun () -> Sta.Ssta.forward_raw ~model arena ~sizes)
  in
  if w_fwd > ceiling then
    Alcotest.failf "steady-state forward sweep allocates %.0f words/eval (ceiling %.0f)"
      w_fwd ceiling;
  let w_rev =
    words_per_eval ~reps:10 (fun () ->
        Sta.Ssta.forward_raw ~model arena ~sizes;
        Sta.Ssta.reverse_raw ~model arena ~d_mu:1. ~d_var:0.)
  in
  if w_rev > 2. *. ceiling then
    Alcotest.failf
      "steady-state forward+reverse pair allocates %.0f words/eval (ceiling %.0f)"
      w_rev (2. *. ceiling)

(* ---- large-DAG smoke -------------------------------------------------------- *)

(* A 10^5-gate generated DAG swept forward and reverse on one arena.
   Only meaningful in the release profile (where the kernels inline
   and the sweep speed makes it cheap); the dev profile skips it, via
   the same inlining canary the allocation test keys on. *)
let test_large_dag_smoke () =
  if not (kernels_inlined ()) then
    Alcotest.skip ()
  else begin
    let net =
      Generate.random_dag
        {
          Generate.default_spec with
          Generate.n_gates = 120_000;
          n_pis = 300;
          target_depth = 32;
          seed = 101;
        }
    in
    let arena = Sta.Arena.create net in
    let sizes = Netlist.min_sizes net in
    Sta.Ssta.forward_raw ~model arena ~sizes;
    let mu = Sta.Arena.circuit_mu arena and var = Sta.Arena.circuit_var arena in
    if not (Float.is_finite mu && Float.is_finite var && mu > 0. && var >= 0.)
    then Alcotest.failf "degenerate circuit moments (%h, %h)" mu var;
    Sta.Ssta.reverse_raw ~model arena ~d_mu:1. ~d_var:0.;
    let grad = Array.make (Netlist.n_gates net) 0. in
    Sta.Arena.gradient_into arena grad;
    let nonzero = Array.exists (fun g -> g <> 0.) grad in
    if not nonzero then Alcotest.fail "gradient identically zero";
    if not (Array.for_all Float.is_finite grad) then
      Alcotest.fail "non-finite gradient entry"
  end

let () =
  let q = Seed_info.to_alcotest in
  Alcotest.run "arena"
    [
      ( "differential",
        [
          Alcotest.test_case "all circuits x 1/2/4 domains" `Quick
            test_differential_all_circuits;
          Alcotest.test_case "pi arrivals" `Quick test_differential_pi_arrival;
          Alcotest.test_case "satellite engines" `Quick test_engines_arena_identical;
          Alcotest.test_case "dsta propagate_into" `Quick
            test_propagate_into_identical;
          Alcotest.test_case "netlist mismatch rejected" `Quick
            test_arena_netlist_mismatch;
          q prop_random_dag_differential;
        ] );
      ( "streaming loader",
        [
          Alcotest.test_case "CSR path identical to record path" `Quick
            test_stream_loader_identical;
          Alcotest.test_case "errors match the record loader" `Quick
            test_stream_loader_errors;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "steady-state sweeps" `Quick
            test_steady_state_allocation;
        ] );
      ( "scale",
        [
          Alcotest.test_case "100k-gate smoke (release only)" `Slow
            test_large_dag_smoke;
        ] );
    ]
