(* Tests for the parallel levelized SSTA engine: the Util.Pool domain
   pool, the Netlist levelizer, the Util.Instr counters/timers, and the
   bit-identity of parallel analyze / value_and_gradient with the serial
   path. *)

open Circuit

let model = Sigma_model.paper_default

(* Long-lived pools shared by the identity tests: spawning is the
   expensive part, and reuse across many parallel_for calls is exactly
   the production usage pattern. *)
let pool2 = Util.Pool.create ~jobs:2 ()
let pool4 = Util.Pool.create ~jobs:4 ()

(* A circuit wide enough that its level buckets exceed the parallel
   threshold, so the pooled path really runs on worker domains. *)
let wide_dag ?(n_gates = 600) seed =
  Generate.random_dag
    {
      Generate.default_spec with
      Generate.n_gates;
      n_pis = 40;
      target_depth = 8;
      seed;
    }

(* ---- Util.Pool -------------------------------------------------------------- *)

let test_pool_covers_all_indices () =
  Util.Pool.with_pool ~jobs:4 (fun pool ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      Util.Pool.parallel_for pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "every index exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_pool_reuse_many_jobs () =
  Util.Pool.with_pool ~jobs:3 (fun pool ->
      for round = 1 to 100 do
        let n = 137 + round in
        let out = Array.make n 0 in
        Util.Pool.parallel_for pool ~n (fun i -> out.(i) <- i * i);
        Alcotest.(check int)
          (Printf.sprintf "round %d" round)
          (64 * 64)
          out.(64)
      done)

let test_pool_size_one_runs_inline () =
  Util.Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Util.Pool.size pool);
      let sum = ref 0 in
      (* Shared mutable state is safe here precisely because jobs = 1. *)
      Util.Pool.parallel_for pool ~n:100 (fun i -> sum := !sum + i);
      Alcotest.(check int) "sum" 4950 !sum)

let test_pool_small_n_runs_inline () =
  Util.Pool.with_pool ~jobs:4 (fun pool ->
      let sum = ref 0 in
      (* n < 2 * grain never leaves the calling domain. *)
      Util.Pool.parallel_for ~grain:64 pool ~n:100 (fun i -> sum := !sum + i);
      Alcotest.(check int) "sum" 4950 !sum)

let test_pool_propagates_exception () =
  Util.Pool.with_pool ~jobs:2 (fun pool ->
      (match Util.Pool.parallel_for pool ~n:1000 (fun i -> if i = 500 then failwith "boom") with
      | () -> Alcotest.fail "expected an exception"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
      (* The pool survives a failed job. *)
      let out = Array.make 100 0 in
      Util.Pool.parallel_for pool ~n:100 (fun i -> out.(i) <- i);
      Alcotest.(check int) "usable after failure" 99 out.(99))

let test_pool_invalid_args () =
  Alcotest.check_raises "jobs 0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Util.Pool.create ~jobs:0 ()));
  let p = Util.Pool.create ~jobs:1 () in
  Util.Pool.shutdown p;
  Util.Pool.shutdown p (* idempotent *)

(* ---- Netlist.level_buckets -------------------------------------------------- *)

let check_levelizer net =
  let buckets = Netlist.level_buckets net in
  let lvl = Netlist.levels net in
  (* Buckets partition 0 .. n-1. *)
  let seen = Array.make (Netlist.n_gates net) false in
  Array.iteri
    (fun l bucket ->
      let prev = ref (-1) in
      Array.iter
        (fun id ->
          Alcotest.(check bool) "sorted within bucket" true (id > !prev);
          prev := id;
          Alcotest.(check bool) "not seen twice" false seen.(id);
          seen.(id) <- true;
          Alcotest.(check int) "bucket matches level" (l + 1) lvl.(id);
          (* Every fanin sits at a strictly lower level. *)
          Array.iter
            (function
              | Netlist.Pi _ -> ()
              | Netlist.Gate f ->
                  Alcotest.(check bool) "fanin strictly lower" true (lvl.(f) < lvl.(id)))
            (Netlist.gate net id).Netlist.fanin)
        bucket)
    buckets;
  Alcotest.(check bool) "all gates bucketed" true (Array.for_all Fun.id seen);
  Alcotest.(check int) "depth = bucket count" (Netlist.depth net) (Array.length buckets)

let test_levelizer_invariants () =
  List.iter check_levelizer
    [
      Generate.tree ();
      Generate.chain ~length:17 ();
      Generate.example_fig2 ();
      Generate.apex2_like ();
      wide_dag 11;
    ]

let test_levelizer_cached () =
  let net = Generate.tree () in
  Alcotest.(check bool) "same array (cached)" true
    (Netlist.level_buckets net == Netlist.level_buckets net)

(* ---- Util.Instr ------------------------------------------------------------- *)

let test_instr_disabled_is_inert () =
  Util.Instr.disable ();
  Util.Instr.reset ();
  let c = Util.Instr.counter "test.counter" in
  let t = Util.Instr.timer "test.timer" in
  Util.Instr.incr c;
  Util.Instr.add c 41;
  let v = Util.Instr.time t (fun () -> 7) in
  Alcotest.(check int) "time passes value through" 7 v;
  Alcotest.(check int) "counter untouched" 0 (Util.Instr.count c);
  let s = Util.Instr.snapshot () in
  Alcotest.(check int) "no active counters" 0 (List.length s.Util.Instr.counters);
  Alcotest.(check int) "no active timers" 0 (List.length s.Util.Instr.timers)

let test_instr_enabled_counts () =
  Util.Instr.reset ();
  Util.Instr.enable ();
  Fun.protect ~finally:Util.Instr.disable (fun () ->
      let c = Util.Instr.counter "test.counter" in
      let t = Util.Instr.timer "test.timer" in
      Util.Instr.incr c;
      Util.Instr.add c 41;
      ignore (Util.Instr.time t (fun () -> Sys.opaque_identity 7));
      Alcotest.(check int) "counter" 42 (Util.Instr.count c);
      let s = Util.Instr.snapshot () in
      let timed = List.assoc "test.timer" s.Util.Instr.timers in
      Alcotest.(check int) "timer calls" 1 timed.Util.Instr.calls;
      Alcotest.(check bool) "timer nonnegative" true (timed.Util.Instr.seconds >= 0.);
      (* interning returns the same counter *)
      Util.Instr.incr (Util.Instr.counter "test.counter");
      Alcotest.(check int) "interned" 43 (Util.Instr.count c));
  Util.Instr.reset ()

let test_instr_ssta_counters () =
  Util.Instr.reset ();
  Util.Instr.enable ();
  Fun.protect ~finally:Util.Instr.disable (fun () ->
      let net = Generate.tree () in
      let sizes = Netlist.min_sizes net in
      ignore (Sta.Ssta.analyze ~model net ~sizes);
      ignore
        (Sta.Ssta.value_and_gradient ~model net ~sizes
           ~seed:(Sta.Ssta.mu_plus_k_sigma_seed 3.));
      let s = Util.Instr.snapshot () in
      Alcotest.(check int) "analyze count" 2
        (List.assoc "ssta.analyze" s.Util.Instr.counters);
      Alcotest.(check int) "gradient count" 1
        (List.assoc "ssta.gradient" s.Util.Instr.counters);
      Alcotest.(check bool) "max2 counted" true
        (List.assoc "clark.max2" s.Util.Instr.counters > 0);
      Alcotest.(check bool) "forward timed" true
        (List.mem_assoc "ssta.forward" s.Util.Instr.timers));
  Util.Instr.reset ()

let test_instr_json_shape () =
  Util.Instr.reset ();
  Util.Instr.enable ();
  Fun.protect ~finally:Util.Instr.disable (fun () ->
      Util.Instr.incr (Util.Instr.counter "test.json");
      ignore (Util.Instr.time (Util.Instr.timer "test.json_timer") (fun () -> ()));
      let json = Util.Instr.to_json (Util.Instr.snapshot ()) in
      let contains needle =
        let lh = String.length json and ln = String.length needle in
        let rec go i = i + ln <= lh && (String.sub json i ln = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "object" true (json.[0] = '{');
      Alcotest.(check bool) "counters key" true (contains "\"counters\"");
      Alcotest.(check bool) "timers key" true (contains "\"timers\"");
      Alcotest.(check bool) "counter entry" true (contains "\"test.json\": 1");
      Alcotest.(check bool) "timer fields" true (contains "\"calls\": 1"));
  Util.Instr.reset ()

(* ---- bit-identity of parallel and serial SSTA ------------------------------- *)

let bits = Int64.bits_of_float

let check_normal_identical msg (a : Statdelay.Normal.t) (b : Statdelay.Normal.t) =
  if
    not
      (Int64.equal (bits a.Statdelay.Normal.mu) (bits b.Statdelay.Normal.mu)
      && Int64.equal (bits a.Statdelay.Normal.var) (bits b.Statdelay.Normal.var))
  then
    Alcotest.failf "%s: (%h, %h) <> (%h, %h)" msg a.Statdelay.Normal.mu
      a.Statdelay.Normal.var b.Statdelay.Normal.mu b.Statdelay.Normal.var

let check_floats_identical msg (a : float array) (b : float array) =
  Alcotest.(check int) (msg ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then
        Alcotest.failf "%s: slot %d: %h <> %h" msg i x b.(i))
    a

let check_results_identical msg (a : Sta.Ssta.result) (b : Sta.Ssta.result) =
  check_normal_identical (msg ^ ": circuit") a.Sta.Ssta.circuit b.Sta.Ssta.circuit;
  Array.iteri
    (fun i x -> check_normal_identical (msg ^ ": arrival") x b.Sta.Ssta.arrival.(i))
    a.Sta.Ssta.arrival;
  Array.iteri
    (fun i x ->
      check_normal_identical (msg ^ ": gate_delay") x b.Sta.Ssta.gate_delay.(i))
    a.Sta.Ssta.gate_delay;
  check_floats_identical (msg ^ ": loads") a.Sta.Ssta.loads b.Sta.Ssta.loads

let nets_under_test () =
  [
    ("tree", Generate.tree ());
    ("chain", Generate.chain ~length:40 ());
    ("apex2*", Generate.apex2_like ());
    ("dag600", wide_dag 23);
  ]

let test_analyze_bit_identical () =
  List.iter
    (fun (name, net) ->
      let sizes =
        Array.mapi
          (fun i lo -> lo +. (0.37 *. float_of_int (i mod 3)))
          (Netlist.min_sizes net)
      in
      let serial = Sta.Ssta.analyze ~model net ~sizes in
      List.iter
        (fun (jobs, pool) ->
          let par = Sta.Ssta.analyze ~pool ~model net ~sizes in
          check_results_identical (Printf.sprintf "%s jobs=%d" name jobs) serial par)
        [ (2, pool2); (4, pool4) ])
    (nets_under_test ())

let test_gradient_bit_identical () =
  List.iter
    (fun (name, net) ->
      let sizes = Netlist.min_sizes net in
      let seed = Sta.Ssta.mu_plus_k_sigma_seed 3. in
      let res_s, grad_s = Sta.Ssta.value_and_gradient ~model net ~sizes ~seed in
      List.iter
        (fun (jobs, pool) ->
          let res_p, grad_p =
            Sta.Ssta.value_and_gradient ~pool ~model net ~sizes ~seed
          in
          let msg = Printf.sprintf "%s jobs=%d" name jobs in
          check_results_identical msg res_s res_p;
          check_floats_identical (msg ^ ": grad") grad_s grad_p)
        [ (2, pool2); (4, pool4) ])
    (nets_under_test ())

let prop_random_dags_bit_identical =
  QCheck.Test.make ~name:"parallel SSTA bit-identical on random netlists" ~count:12
    (QCheck.make QCheck.Gen.(pair (int_range 0 10_000) (int_range 120 700)))
    (fun (seed, n_gates) ->
      let net = wide_dag ~n_gates (seed + 1) in
      let sizes = Netlist.min_sizes net in
      let sfun = Sta.Ssta.sigma_seed in
      let res_s, grad_s = Sta.Ssta.value_and_gradient ~model net ~sizes ~seed:sfun in
      List.for_all
        (fun pool ->
          let res_p, grad_p =
            Sta.Ssta.value_and_gradient ~pool ~model net ~sizes ~seed:sfun
          in
          let same_normal (a : Statdelay.Normal.t) (b : Statdelay.Normal.t) =
            Int64.equal (bits a.Statdelay.Normal.mu) (bits b.Statdelay.Normal.mu)
            && Int64.equal (bits a.Statdelay.Normal.var) (bits b.Statdelay.Normal.var)
          in
          same_normal res_s.Sta.Ssta.circuit res_p.Sta.Ssta.circuit
          && Array.for_all2 same_normal res_s.Sta.Ssta.arrival res_p.Sta.Ssta.arrival
          && Array.for_all2
               (fun (a : float) b -> Int64.equal (bits a) (bits b))
               grad_s grad_p)
        [ pool2; pool4 ])

let test_engine_solution_bit_identical () =
  (* A full solver run drives thousands of pooled evaluations through the
     cache; the optimum must not move by a single bit. *)
  let net = wide_dag ~n_gates:220 41 in
  let serial = Sizing.Engine.solve ~model net (Sizing.Objective.Min_delay 3.) in
  let par = Sizing.Engine.solve ~pool:pool2 ~model net (Sizing.Objective.Min_delay 3.) in
  check_floats_identical "sizes" serial.Sizing.Engine.sizes par.Sizing.Engine.sizes;
  check_normal_identical "circuit" serial.Sizing.Engine.timing.Sta.Ssta.circuit
    par.Sizing.Engine.timing.Sta.Ssta.circuit

let () =
  let open Alcotest in
  run "parallel"
    [
      ( "pool",
        [
          test_case "covers all indices" `Quick test_pool_covers_all_indices;
          test_case "reuse across jobs" `Quick test_pool_reuse_many_jobs;
          test_case "size-1 inline" `Quick test_pool_size_one_runs_inline;
          test_case "small n inline" `Quick test_pool_small_n_runs_inline;
          test_case "exception propagation" `Quick test_pool_propagates_exception;
          test_case "invalid args" `Quick test_pool_invalid_args;
        ] );
      ( "levelizer",
        [
          test_case "invariants" `Quick test_levelizer_invariants;
          test_case "cached" `Quick test_levelizer_cached;
        ] );
      ( "instr",
        [
          test_case "disabled is inert" `Quick test_instr_disabled_is_inert;
          test_case "enabled counts" `Quick test_instr_enabled_counts;
          test_case "ssta counters" `Quick test_instr_ssta_counters;
          test_case "json shape" `Quick test_instr_json_shape;
        ] );
      ( "bit-identity",
        [
          test_case "analyze" `Quick test_analyze_bit_identical;
          test_case "value_and_gradient" `Quick test_gradient_bit_identical;
          Seed_info.to_alcotest prop_random_dags_bit_identical;
          test_case "engine solve" `Slow test_engine_solution_bit_identical;
        ] );
    ]
