(* Differential tests for the geometric-programming backend: posynomial
   log-log convexity (QCheck), GP-vs-Baseline at equal area, KKT
   certificates, determinism, and the infeasibility exits. *)

open Circuit
open Sizing

(* ---- circuits under test ---------------------------------------------------- *)

let bench_net =
  lazy
    (let path =
       match
         List.find_opt Sys.file_exists
           [ "../examples/cla4.bench"; "examples/cla4.bench" ]
       with
       | Some p -> p
       | None -> Alcotest.fail "examples/cla4.bench not found (is it a test dep?)"
     in
     match Bench_format.parse_file ~library:(Cell.Library.default ()) path with
     | Ok net -> net
     | Error e ->
         Alcotest.failf "cla4.bench: %s" (Format.asprintf "%a" Bench_format.pp_error e))

let nets_under_test () =
  [
    ("fig2", Generate.example_fig2 ());
    ("tree", Generate.tree ());
    ("cla4.bench", Lazy.force bench_net);
    ("apex2*", Generate.apex2_like ());
  ]

(* ---- posynomial properties --------------------------------------------------- *)

(* A random posynomial over [dim] log-variables: 1-5 monomials, each with
   0-3 terms, coefficients in (0, 10], exponents in [-3, 3]. *)
let posy_gen dim =
  let open QCheck.Gen in
  let term = pair (int_bound (dim - 1)) (float_range (-3.) 3.) in
  let monomial =
    map2
      (fun c terms -> { Gp.Posy.coeff = 0.01 +. (c *. 10.); terms })
      (float_bound_exclusive 1.) (list_size (int_bound 3) term)
  in
  list_size (int_range 1 5) monomial

let point_gen dim =
  QCheck.Gen.(array_size (return dim) (float_range (-2.) 2.))

let dim = 4

let arbitrary_convexity_case =
  QCheck.make
    ~print:(fun (p, y1, y2) ->
      Printf.sprintf "posy=%s y1=[%s] y2=[%s]"
        (String.concat "+"
           (List.map
              (fun m ->
                Printf.sprintf "%g*%s" m.Gp.Posy.coeff
                  (String.concat "*"
                     (List.map
                        (fun (i, e) -> Printf.sprintf "x%d^%g" i e)
                        m.Gp.Posy.terms)))
              p))
        (String.concat ";" (Array.to_list (Array.map string_of_float y1)))
        (String.concat ";" (Array.to_list (Array.map string_of_float y2))))
    QCheck.Gen.(triple (posy_gen dim) (point_gen dim) (point_gen dim))

(* log p(e^y) is convex in y: the midpoint inequality must hold for any
   pair of log-points. *)
let prop_log_log_convex =
  QCheck.Test.make ~name:"posynomial log-log convexity (midpoint)" ~count:500
    arbitrary_convexity_case (fun (p, y1, y2) ->
      let mid = Array.init dim (fun i -> 0.5 *. (y1.(i) +. y2.(i))) in
      let f1 = Gp.Posy.log_eval p y1
      and f2 = Gp.Posy.log_eval p y2
      and fm = Gp.Posy.log_eval p mid in
      fm <= (0.5 *. (f1 +. f2)) +. 1e-9)

(* log_grad is the gradient of log_eval. *)
let prop_log_grad_matches_fd =
  QCheck.Test.make ~name:"posynomial log_grad vs finite differences" ~count:200
    (QCheck.make QCheck.Gen.(pair (posy_gen dim) (point_gen dim)))
    (fun (p, y) ->
      let grad = Gp.Posy.log_grad ~dim p y in
      let h = 1e-6 in
      Array.for_all Fun.id
        (Array.init dim (fun i ->
             let yp = Array.copy y and ym = Array.copy y in
             yp.(i) <- yp.(i) +. h;
             ym.(i) <- ym.(i) -. h;
             let fd = (Gp.Posy.log_eval p yp -. Gp.Posy.log_eval p ym) /. (2. *. h) in
             Float.abs (fd -. grad.(i)) <= 1e-4 +. (1e-4 *. Float.abs fd))))

(* ---- compile sanity ---------------------------------------------------------- *)

let test_compile_shapes () =
  let net = Generate.example_fig2 () in
  let n = Netlist.n_gates net in
  let obj, cons = Gp.compile net (Gp.Min_delay { area_budget = None }) in
  (match obj with
  | [ { Gp.Posy.coeff = 1.; terms = [ (v, 1.) ] } ] ->
      Alcotest.(check int) "objective is the T variable" (2 * n) v
  | _ -> Alcotest.fail "min-delay objective should be the single monomial T");
  Alcotest.(check bool) "has constraints" true (List.length cons > 2 * n);
  List.iter
    (fun p ->
      Alcotest.(check bool) "constraint posynomials are non-empty" true (p <> []);
      List.iter
        (fun m ->
          Alcotest.(check bool) "coefficients positive" true (m.Gp.Posy.coeff > 0.))
        p)
    cons

(* ---- differential: GP vs the deterministic greedy baseline ------------------- *)

let test_gp_beats_baseline_at_equal_area () =
  List.iter
    (fun (name, net) ->
      let base = Baseline.minimize_delay net in
      let sol = Gp.solve net (Gp.Min_delay { area_budget = Some base.Baseline.area }) in
      (match sol.Gp.status with
      | Gp.Optimal -> ()
      | _ -> Alcotest.failf "%s: GP did not reach Optimal" name);
      let res = Nlp.Check.kkt_residual sol.Gp.kkt in
      if res >= 1e-6 then
        Alcotest.failf "%s: KKT residual %.3e >= 1e-6 (%s)" name res
          (Format.asprintf "%a" Nlp.Check.pp_kkt sol.Gp.kkt);
      if sol.Gp.area > base.Baseline.area *. (1. +. 1e-6) then
        Alcotest.failf "%s: GP area %.6f exceeds the budget %.6f" name sol.Gp.area
          base.Baseline.area;
      (* The GP optimum is global on the mean model: at the baseline's
         area it can never be slower. *)
      (* "never slower" up to the solver's own certificate tolerance:
         an interior-point method carries a finite duality gap, so at a
         degenerate corner (budget = the unconstrained optimum's area)
         it ties baseline only to ~1e-6 relative. *)
      if sol.Gp.mean_delay > base.Baseline.delay *. (1. +. 1e-6) then
        Alcotest.failf "%s: GP mean delay %.9f > baseline %.9f at equal area" name
          sol.Gp.mean_delay base.Baseline.delay)
    (nets_under_test ())

let test_gp_unbudgeted_beats_baseline () =
  List.iter
    (fun (name, net) ->
      let base = Baseline.minimize_delay net in
      let sol = Gp.solve net (Gp.Min_delay { area_budget = None }) in
      (match sol.Gp.status with
      | Gp.Optimal -> ()
      | _ -> Alcotest.failf "%s: GP did not reach Optimal" name);
      if sol.Gp.mean_delay > base.Baseline.delay *. (1. +. 1e-6) then
        Alcotest.failf "%s: unbudgeted GP delay %.9f > baseline %.9f" name
          sol.Gp.mean_delay base.Baseline.delay)
    (nets_under_test ())

(* The epigraph variable T must agree with the deterministic mean-model
   timing of the returned sizes (up to interior-point slack). *)
let test_gp_epigraph_tight () =
  List.iter
    (fun (name, net) ->
      let sol = Gp.solve net (Gp.Min_delay { area_budget = None }) in
      let det = Sta.Dsta.analyze net ~sizes:sol.Gp.sizes in
      let t = det.Sta.Dsta.circuit in
      if Float.abs (sol.Gp.delay -. t) > 1e-4 *. t then
        Alcotest.failf "%s: epigraph T %.9f vs timed %.9f" name sol.Gp.delay t)
    (nets_under_test ())

(* ---- min-area form ------------------------------------------------------------ *)

let test_min_area_meets_bound () =
  List.iter
    (fun (name, net) ->
      let fast = Gp.solve net (Gp.Min_delay { area_budget = None }) in
      let slack_bound = fast.Gp.mean_delay *. 1.2 in
      let sol = Gp.solve net (Gp.Min_area { delay_bound = slack_bound }) in
      (match sol.Gp.status with
      | Gp.Optimal -> ()
      | _ -> Alcotest.failf "%s: min-area GP did not reach Optimal" name);
      if sol.Gp.mean_delay > slack_bound *. (1. +. 1e-6) then
        Alcotest.failf "%s: min-area delay %.6f misses bound %.6f" name
          sol.Gp.mean_delay slack_bound;
      let res = Nlp.Check.kkt_residual sol.Gp.kkt in
      if res >= 1e-6 then Alcotest.failf "%s: KKT residual %.3e" name res;
      (* A slack delay bound should buy area back vs the unbudgeted
         min-delay sizing. *)
      if sol.Gp.area >= fast.Gp.area then
        Alcotest.failf "%s: min-area %.6f not below min-delay area %.6f" name
          sol.Gp.area fast.Gp.area)
    (nets_under_test ())

let test_min_area_infeasible_bound () =
  let net = Generate.tree () in
  let fast = Gp.solve net (Gp.Min_delay { area_budget = None }) in
  let sol = Gp.solve net (Gp.Min_area { delay_bound = fast.Gp.mean_delay /. 10. }) in
  match sol.Gp.status with
  | Gp.Infeasible -> ()
  | _ -> Alcotest.fail "impossible delay bound must report Infeasible"

let test_degenerate_area_budget () =
  let net = Generate.tree () in
  let min_area = Netlist.area net ~sizes:(Netlist.min_sizes net) in
  let pinned = Gp.solve net (Gp.Min_delay { area_budget = Some min_area }) in
  (match pinned.Gp.status with
  | Gp.Optimal -> ()
  | _ -> Alcotest.fail "budget = floor area is a single feasible point: Optimal");
  Array.iteri
    (fun i s ->
      Alcotest.(check (float 1e-12)) "pinned at the size floor"
        (Netlist.min_sizes net).(i) s)
    pinned.Gp.sizes;
  let starved = Gp.solve net (Gp.Min_delay { area_budget = Some (0.5 *. min_area) }) in
  match starved.Gp.status with
  | Gp.Infeasible -> ()
  | _ -> Alcotest.fail "budget below floor area must report Infeasible"

(* ---- determinism --------------------------------------------------------------- *)

let test_deterministic () =
  List.iter
    (fun (name, net) ->
      let a = Gp.solve net (Gp.Min_delay { area_budget = None }) in
      let b = Gp.solve net (Gp.Min_delay { area_budget = None }) in
      Array.iteri
        (fun i sa ->
          if Int64.bits_of_float sa <> Int64.bits_of_float b.Gp.sizes.(i) then
            Alcotest.failf "%s: size %d differs between identical solves" name i)
        a.Gp.sizes;
      if Int64.bits_of_float a.Gp.delay <> Int64.bits_of_float b.Gp.delay then
        Alcotest.failf "%s: delay differs between identical solves" name;
      if Int64.bits_of_float a.Gp.mean_delay <> Int64.bits_of_float b.Gp.mean_delay
      then Alcotest.failf "%s: mean delay differs between identical solves" name)
    (nets_under_test ())

(* ---- suite ---------------------------------------------------------------------- *)

let qcheck_tests =
  List.map
    (QCheck_alcotest.to_alcotest ?rand:None)
    [ prop_log_log_convex; prop_log_grad_matches_fd ]

let () =
  Alcotest.run "gp"
    [
      ("posynomial", qcheck_tests);
      ( "compile",
        [ Alcotest.test_case "shapes" `Quick test_compile_shapes ] );
      ( "differential",
        [
          Alcotest.test_case "equal-area vs baseline" `Slow
            test_gp_beats_baseline_at_equal_area;
          Alcotest.test_case "unbudgeted vs baseline" `Slow
            test_gp_unbudgeted_beats_baseline;
          Alcotest.test_case "epigraph tight" `Slow test_gp_epigraph_tight;
        ] );
      ( "min-area",
        [
          Alcotest.test_case "meets bound" `Slow test_min_area_meets_bound;
          Alcotest.test_case "infeasible bound" `Quick test_min_area_infeasible_bound;
          Alcotest.test_case "degenerate budget" `Quick test_degenerate_area_budget;
        ] );
      ( "determinism",
        [ Alcotest.test_case "bit-identical" `Slow test_deterministic ] );
    ]
