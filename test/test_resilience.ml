(* Fault-injection tests for the solver resilience layer.

   Every fault class the guards advertise (NaN objective, Inf gradient,
   stalled solves, expired budgets) is manufactured with Util.Fault and
   driven through the full Sizing.Engine stack via the [instrument]
   hook: the engine must catch it, climb the recovery ladder, and
   surface the trail in [solution.recovery] — never crash, hang, or
   silently report success.  Fault schedules use the same Rng.keyed
   discipline as the Monte Carlo engine, so every test here is
   deterministic bit for bit. *)

open Sizing

let model = Circuit.Sigma_model.paper_default

let inject plan problem =
  Nlp.Problem.map_components
    (fun ~component f ->
      Util.Fault.wrap plan ~component:(Nlp.Problem.component_index component) f)
    problem

let objective_site kind trigger =
  { Util.Fault.kind; Util.Fault.component = Some 0; Util.Fault.trigger }

let solve_faulted ?(options = Engine.default_options) plan net obj =
  Engine.solve
    ~options:{ options with Engine.instrument = Some (inject plan) }
    ~model net obj

let rungs (s : Engine.solution) =
  List.map (fun (a : Engine.attempt) -> a.Engine.rung) s.Engine.recovery

let outcomes (s : Engine.solution) =
  List.map (fun (a : Engine.attempt) -> a.Engine.outcome) s.Engine.recovery

(* A bounded-area problem whose `Low start is infeasible (all-min sizes
   are the slowest), so failed attempts have a real violation to report. *)
let bounded_setup () =
  let net = Circuit.Generate.tree () in
  let unsized, _ = Engine.evaluate ~model net ~sizes:(Circuit.Netlist.min_sizes net) in
  let bound = 0.9 *. Statdelay.Normal.mu unsized.Sta.Ssta.circuit in
  (net, Objective.Min_area_bounded { k = 0.; bound })

(* ---- clean solves: guards are observability, not behaviour ------------------- *)

let test_clean_solve_no_recovery () =
  let net, obj = bounded_setup () in
  let s = Engine.solve ~model net obj in
  Alcotest.(check bool) "converged" true s.Engine.converged;
  Alcotest.(check bool) "termination" true
    (s.Engine.termination = Nlp.Auglag.Converged);
  Alcotest.(check (list unit)) "recovery empty" []
    (List.map (fun _ -> ()) s.Engine.recovery)

let test_guard_bit_identity () =
  (* The same solve with guards disabled must produce bit-identical
     sizes: the guarded wrapper only observes. *)
  let net, obj = bounded_setup () in
  let on = Engine.solve ~model net obj in
  let off =
    Engine.solve
      ~options:
        {
          Engine.default_options with
          Engine.solver =
            {
              Engine.default_options.Engine.solver with
              Nlp.Auglag.guard = false;
            };
        }
      ~model net obj
  in
  Alcotest.(check bool) "sizes bit-identical" true (on.Engine.sizes = off.Engine.sizes);
  Alcotest.(check bool) "objective bit-identical" true
    (Int64.bits_of_float on.Engine.area = Int64.bits_of_float off.Engine.area)

(* ---- single transient fault: first ladder rung recovers ---------------------- *)

let check_recovers_via_perturbed_restart kind =
  let net, obj = bounded_setup () in
  let plan = Util.Fault.plan [ objective_site kind (Util.Fault.First 1) ] in
  let s = solve_faulted plan net obj in
  Alcotest.(check bool) "recovered" true s.Engine.converged;
  Alcotest.(check bool) "termination converged" true
    (s.Engine.termination = Nlp.Auglag.Converged);
  (match rungs s with
  | [ Engine.Initial; Engine.Perturbed_restart ] -> ()
  | r ->
      Alcotest.failf "unexpected ladder: %s"
        (String.concat ", " (List.map Engine.rung_name r)));
  (match outcomes s with
  | [ Nlp.Auglag.Breakdown; Nlp.Auglag.Converged ] -> ()
  | _ -> Alcotest.fail "expected Breakdown then Converged");
  (* the typed diagnosis of the failed attempt is preserved *)
  (match (List.hd s.Engine.recovery).Engine.breakdown with
  | Some b ->
      Alcotest.(check bool) "objective blamed" true
        (b.Nlp.Problem.b_component = Nlp.Problem.Objective)
  | None -> Alcotest.fail "expected a breakdown diagnosis on the initial attempt");
  Alcotest.(check bool) "fault actually fired" true (Util.Fault.log plan <> [])

let test_nan_objective_recovers () =
  check_recovers_via_perturbed_restart Util.Fault.Nan_value

let test_inf_objective_recovers () =
  check_recovers_via_perturbed_restart Util.Fault.Inf_value

let test_nan_gradient_recovers () =
  check_recovers_via_perturbed_restart Util.Fault.Nan_gradient

let test_inf_gradient_recovers () =
  check_recovers_via_perturbed_restart Util.Fault.Inf_gradient

(* ---- persistent fault: the whole ladder runs, the GP degrades ---------------- *)

let test_persistent_fault_reaches_gp () =
  let net, obj = bounded_setup () in
  let plan = Util.Fault.plan [ objective_site Util.Fault.Nan_value Util.Fault.Always ] in
  let s = solve_faulted plan net obj in
  Alcotest.(check bool) "not converged" false s.Engine.converged;
  Alcotest.(check bool) "breakdown surfaced" true
    (s.Engine.termination = Nlp.Auglag.Breakdown);
  (match rungs s with
  | [
   Engine.Initial; Engine.Perturbed_restart; Engine.Alternate_solver;
   Engine.Gentler_penalty; Engine.Gp_fallback;
  ] ->
      ()
  | r ->
      Alcotest.failf "unexpected ladder: %s"
        (String.concat ", " (List.map Engine.rung_name r)));
  (* The GP fallback produced usable sizes with honest numbers — the GP
     targets the mean delay, so a residual statistical violation is
     expected and must be reported, not hidden. *)
  Alcotest.(check bool) "sizes finite" true (Util.Guard.all_finite s.Engine.sizes);
  Alcotest.(check bool) "violation finite" true
    (Util.Guard.is_finite s.Engine.max_violation);
  Alcotest.(check bool) "mu finite" true (Util.Guard.is_finite s.Engine.mu);
  (match List.rev s.Engine.recovery with
  | last :: _ ->
      Alcotest.(check bool) "fallback attempt recorded as converged" true
        (last.Engine.outcome = Nlp.Auglag.Converged)
  | [] -> Alcotest.fail "empty recovery trail")

let test_gp_infeasible_falls_through_to_baseline () =
  (* A delay bound far below the circuit's floor: the GP rung certifies
     Infeasible and steps aside, and the ladder still lands on the
     deterministic greedy baseline (which returns its best effort). *)
  let net = Circuit.Generate.tree () in
  let unsized, _ = Engine.evaluate ~model net ~sizes:(Circuit.Netlist.min_sizes net) in
  let bound = 0.05 *. Statdelay.Normal.mu unsized.Sta.Ssta.circuit in
  let obj = Objective.Min_area_bounded { k = 0.; bound } in
  let plan = Util.Fault.plan [ objective_site Util.Fault.Nan_value Util.Fault.Always ] in
  let s = solve_faulted plan net obj in
  Alcotest.(check bool) "not converged" false s.Engine.converged;
  (match List.rev (rungs s) with
  | Engine.Baseline_fallback :: _ -> ()
  | r ->
      Alcotest.failf "expected a terminal baseline rung, got ladder: %s"
        (String.concat ", " (List.map Engine.rung_name (List.rev r))));
  Alcotest.(check bool) "gp rung not recorded" true
    (not (List.mem Engine.Gp_fallback (rungs s)));
  Alcotest.(check bool) "sizes finite" true (Util.Guard.all_finite s.Engine.sizes);
  Alcotest.(check bool) "violation reported" true
    (Util.Guard.is_finite s.Engine.max_violation && s.Engine.max_violation > 0.)

let test_persistent_fault_min_delay_adopts_gp () =
  (* Unconstrained Min_delay under a persistent fault: the GP rung has a
     mean-model analogue, so the trail must end at [Gp_fallback] with
     in-box sizes and a zero constraint violation. *)
  Util.Instr.enable ();
  let net = Circuit.Generate.tree () in
  let obj = Objective.Min_delay 0. in
  let plan = Util.Fault.plan [ objective_site Util.Fault.Nan_value Util.Fault.Always ] in
  let s = solve_faulted plan net obj in
  Alcotest.(check bool) "not converged" false s.Engine.converged;
  (match List.rev (rungs s) with
  | Engine.Gp_fallback :: _ -> ()
  | r ->
      Alcotest.failf "expected a terminal gp rung, got ladder: %s"
        (String.concat ", " (List.map Engine.rung_name (List.rev r))));
  let lo = Circuit.Netlist.min_sizes net and hi = Circuit.Netlist.max_sizes net in
  Array.iteri
    (fun i x ->
      if x < lo.(i) -. 1e-12 || x > hi.(i) +. 1e-12 then
        Alcotest.failf "size %d out of box: %g" i x)
    s.Engine.sizes;
  Alcotest.(check (float 0.)) "no constraint to violate" 0. s.Engine.max_violation;
  let snap = Util.Instr.snapshot () in
  let count name =
    match List.assoc_opt name snap.Util.Instr.counters with Some n -> n | None -> 0
  in
  Alcotest.(check bool) "gp fallback counted" true
    (count "engine.recovery.gp_fallback" >= 1)

let test_no_recovery_reports_typed_failure () =
  (* Same persistent fault with the ladder off: a single attempt, a typed
     Breakdown, usable diagnosis, no exception. *)
  let net, obj = bounded_setup () in
  let plan = Util.Fault.plan [ objective_site Util.Fault.Nan_value Util.Fault.Always ] in
  let s =
    solve_faulted
      ~options:{ Engine.default_options with Engine.recovery = false }
      plan net obj
  in
  Alcotest.(check bool) "not converged" false s.Engine.converged;
  Alcotest.(check bool) "breakdown" true
    (s.Engine.termination = Nlp.Auglag.Breakdown);
  Alcotest.(check (list unit)) "no ladder" [] (List.map (fun _ -> ()) s.Engine.recovery);
  Alcotest.(check bool) "sizes finite" true (Util.Guard.all_finite s.Engine.sizes);
  (* the CLI diagnosis renders *)
  let json = Report.diagnosis_json s in
  Alcotest.(check bool) "diagnosis mentions breakdown" true
    (String.length json > 0
    &&
    let rec contains i =
      i + 9 <= String.length json && (String.sub json i 9 = "breakdown" || contains (i + 1))
    in
    contains 0)

(* ---- deeper transient faults engage deeper rungs ----------------------------- *)

let test_repeated_fault_engages_deeper_rung () =
  (* Three objective faults: the initial attempt and the perturbed
     restart both die (each failed attempt consumes one extra fault in
     its diagnosis re-measurement), and a later rung recovers clean. *)
  let net, obj = bounded_setup () in
  let plan = Util.Fault.plan [ objective_site Util.Fault.Nan_value (Util.Fault.First 3) ] in
  let s = solve_faulted plan net obj in
  Alcotest.(check bool) "eventually recovered" true s.Engine.converged;
  Alcotest.(check bool) "ladder deeper than one rung" true
    (List.length s.Engine.recovery >= 3);
  (match outcomes s with
  | Nlp.Auglag.Breakdown :: rest ->
      Alcotest.(check bool) "last rung converged" true
        (List.nth rest (List.length rest - 1) = Nlp.Auglag.Converged)
  | _ -> Alcotest.fail "expected the initial attempt to break down")

(* ---- budgets ----------------------------------------------------------------- *)

let test_eval_budget_stops_ladder () =
  let net, obj = bounded_setup () in
  let plan = Util.Fault.plan [ objective_site Util.Fault.Nan_value Util.Fault.Always ] in
  let s =
    solve_faulted
      ~options:{ Engine.default_options with Engine.max_evaluations = Some 40 }
      plan net obj
  in
  (* Bounded work: the guarded evaluations across every attempt respect
     the shared budget (the ladder stops rather than burning retries). *)
  Alcotest.(check bool) "not converged" false s.Engine.converged;
  Alcotest.(check bool) "bounded evaluations" true (s.Engine.evaluations <= 40);
  Alcotest.(check bool) "sizes finite" true (Util.Guard.all_finite s.Engine.sizes)

let test_deadline_returns_best_effort () =
  (* An (almost) immediate deadline on a clean problem: Deadline
     termination, finite sizes, no recovery retries (budget is gone). *)
  let net, obj = bounded_setup () in
  let s =
    Engine.solve
      ~options:{ Engine.default_options with Engine.deadline = Some 1e-6 }
      ~model net obj
  in
  Alcotest.(check bool) "not converged" false s.Engine.converged;
  Alcotest.(check bool) "deadline" true (s.Engine.termination = Nlp.Auglag.Deadline);
  Alcotest.(check (list unit)) "no retries" []
    (List.map (fun _ -> ()) s.Engine.recovery);
  Alcotest.(check bool) "sizes finite" true (Util.Guard.all_finite s.Engine.sizes)

let test_generous_deadline_unchanged () =
  (* A deadline the solve cannot hit must not perturb the result: the
     budgeted solve is bit-identical to the unbudgeted one. *)
  let net, obj = bounded_setup () in
  let free = Engine.solve ~model net obj in
  let budgeted =
    Engine.solve
      ~options:{ Engine.default_options with Engine.deadline = Some 3600. }
      ~model net obj
  in
  Alcotest.(check bool) "converged" true budgeted.Engine.converged;
  Alcotest.(check bool) "sizes bit-identical" true
    (free.Engine.sizes = budgeted.Engine.sizes)

(* ---- determinism ------------------------------------------------------------- *)

let test_faulted_solve_deterministic () =
  (* Same plan, same problem: identical recovery trail, fault log, and
     sizes — the keyed-Rng discipline at work. *)
  let run () =
    let net, obj = bounded_setup () in
    let plan =
      Util.Fault.plan ~seed:7
        [ objective_site Util.Fault.Nan_gradient (Util.Fault.First 1) ]
    in
    let s = solve_faulted plan net obj in
    (s, Util.Fault.log plan)
  in
  let s1, log1 = run () in
  let s2, log2 = run () in
  Alcotest.(check bool) "sizes bit-identical" true (s1.Engine.sizes = s2.Engine.sizes);
  Alcotest.(check bool) "same ladder" true (rungs s1 = rungs s2);
  Alcotest.(check bool) "same fault log" true (log1 = log2)

(* ---- instrumentation --------------------------------------------------------- *)

let test_recovery_counters () =
  Util.Instr.enable ();
  let net, obj = bounded_setup () in
  let plan = Util.Fault.plan [ objective_site Util.Fault.Nan_value (Util.Fault.First 1) ] in
  let _ = solve_faulted plan net obj in
  let snap = Util.Instr.snapshot () in
  let count name =
    match List.assoc_opt name snap.Util.Instr.counters with Some n -> n | None -> 0
  in
  Alcotest.(check bool) "recovery engaged" true (count "engine.recovery.engaged" >= 1);
  Alcotest.(check bool) "perturbed restart counted" true
    (count "engine.recovery.perturbed_restart" >= 1);
  Alcotest.(check bool) "auglag breakdowns counted" true (count "auglag.breakdowns" >= 1)

let () =
  Alcotest.run "resilience"
    [
      ( "clean",
        [
          Alcotest.test_case "no recovery on healthy solve" `Quick
            test_clean_solve_no_recovery;
          Alcotest.test_case "guard bit-identity" `Quick test_guard_bit_identity;
        ] );
      ( "faults",
        [
          Alcotest.test_case "NaN objective" `Quick test_nan_objective_recovers;
          Alcotest.test_case "Inf objective" `Quick test_inf_objective_recovers;
          Alcotest.test_case "NaN gradient" `Quick test_nan_gradient_recovers;
          Alcotest.test_case "Inf gradient" `Quick test_inf_gradient_recovers;
          Alcotest.test_case "persistent fault -> gp fallback" `Quick
            test_persistent_fault_reaches_gp;
          Alcotest.test_case "gp infeasible -> baseline" `Quick
            test_gp_infeasible_falls_through_to_baseline;
          Alcotest.test_case "min-delay persistent fault adopts gp" `Quick
            test_persistent_fault_min_delay_adopts_gp;
          Alcotest.test_case "no-recovery typed failure" `Quick
            test_no_recovery_reports_typed_failure;
          Alcotest.test_case "deeper rungs" `Quick test_repeated_fault_engages_deeper_rung;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "evaluation budget" `Quick test_eval_budget_stops_ladder;
          Alcotest.test_case "immediate deadline" `Quick test_deadline_returns_best_effort;
          Alcotest.test_case "generous deadline unchanged" `Quick
            test_generous_deadline_unchanged;
        ] );
      ( "determinism",
        [ Alcotest.test_case "faulted solve" `Quick test_faulted_solve_deterministic ] );
      ( "instrumentation",
        [ Alcotest.test_case "recovery counters" `Quick test_recovery_counters ] );
    ]
